(* Quickstart: create a Tinca transactional NVM cache over a simulated
   SSD, commit a multi-block transaction, crash the machine mid-way
   through another one, recover, and observe atomicity + durability.

   Run with:  dune exec examples/quickstart.exe *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache

let block c = Bytes.make 4096 c
let show cache blkno = Char.escaped (Bytes.get (Cache.read cache blkno) 0)

let () =
  (* 1. Simulated hardware: a 4 MB PCM-like NVM and a small SSD. *)
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(4 * 1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in

  (* 2. Format the cache (ring buffer + entry table + data region). *)
  let config = { Cache.default_config with ring_slots = 1024 } in
  let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
  Printf.printf "formatted: %d cacheable blocks, metadata %.2f%% of NVM\n"
    (Cache.free_blocks cache)
    (100.0 *. Tinca_core.Layout.metadata_fraction (Cache.layout cache));

  (* 3. tinca_init_txn / tinca_commit: atomically update three blocks. *)
  let txn = Cache.Txn.init cache in
  Cache.Txn.add txn 10 (block 'A');
  Cache.Txn.add txn 11 (block 'B');
  Cache.Txn.add txn 12 (block 'C');
  Cache.Txn.commit txn;
  Printf.printf "committed txn#1: blocks 10..12 = %s %s %s\n" (show cache 10) (show cache 11)
    (show cache 12);

  (* 4. Crash the machine in the middle of the next transaction: a
     2-block commit takes 32 NVM events, so a countdown of 20 lands
     squarely inside the commit protocol. *)
  let txn2 = Cache.Txn.init cache in
  Cache.Txn.add txn2 10 (block 'X');
  Cache.Txn.add txn2 11 (block 'Y');
  Pmem.set_crash_countdown pmem (Some 20);
  (try Cache.Txn.commit txn2 with Pmem.Crash_point -> print_endline "power failure mid-commit!");
  Pmem.crash ~seed:7 ~survival:0.5 pmem;

  (* 5. Recover: the unacknowledged transaction rolls back completely —
     blocks 10 and 11 revert to their txn#1 versions. *)
  let cache = Cache.recover ~pmem ~disk ~clock ~metrics () in
  Cache.check_invariants cache;
  Printf.printf "recovered:      blocks 10..12 = %s %s %s  (txn#2 revoked, txn#1 intact)\n"
    (show cache 10) (show cache 11) (show cache 12);

  (* 6. Durability needs no disk flush: the NVM is the durable home.
     Writing back to disk happens on replacement or decommissioning. *)
  Printf.printf "disk writes so far: %d (commits are NVM-durable)\n" (Disk.writes disk);
  Cache.flush_all cache;
  Printf.printf "after flush_all:    %d\n" (Disk.writes disk);
  Printf.printf "simulated time elapsed: %.1f us; clflush issued: %d\n"
    (Clock.now_ns clock /. 1e3) (Metrics.get metrics "pmem.clflush")
