(* A crash-consistent key-value store built directly on Tinca's
   transactional primitives — the kind of storage engine the paper's
   intro motivates (database-like workloads over an NVM cache).

   Design: a hash-bucket store.  Keys hash to one of [nbuckets] 4 KB
   bucket pages; each page holds up to 63 fixed-size records
   (key u64, value 56 bytes).  A `put` batch updates several bucket
   pages and must be atomic: it uses one Tinca transaction, so a crash
   can never surface half a batch.

   Run with:  dune exec examples/kvstore.exe *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache
module Codec = Tinca_util.Codec

let nbuckets = 256
let record_size = 64
let records_per_page = 4096 / record_size - 1 (* slot 0 is the page header *)

type t = { cache : Cache.t }

let hash key = key * 2654435761 land max_int mod nbuckets

let find_slot page key =
  (* Returns (slot holding key | first free slot | None). *)
  let free = ref None in
  let hit = ref None in
  for s = 1 to records_per_page do
    let off = s * record_size in
    let k = Codec.get_u64_int page off in
    if k = key && !hit = None then hit := Some s;
    if k = 0 && !free = None then free := Some s
  done;
  match !hit with Some s -> `Hit s | None -> ( match !free with Some s -> `Free s | None -> `Full)

let get t key =
  assert (key > 0);
  let page = Cache.read t.cache (hash key) in
  match find_slot page key with
  | `Hit s -> Some (Bytes.sub page ((s * record_size) + 8) 56)
  | `Free _ | `Full -> None

(* Atomically apply a batch of (key, value) pairs. *)
let put_batch t pairs =
  let txn = Cache.Txn.init t.cache in
  let pages = Hashtbl.create 8 in
  let page_of bucket =
    match Hashtbl.find_opt pages bucket with
    | Some p -> p
    | None ->
        let p = Cache.read t.cache bucket in
        Hashtbl.add pages bucket p;
        p
  in
  List.iter
    (fun (key, value) ->
      assert (key > 0 && Bytes.length value <= 56);
      let bucket = hash key in
      let page = page_of bucket in
      let slot =
        match find_slot page key with
        | `Hit s | `Free s -> s
        | `Full -> failwith "kvstore: bucket full (static hashing demo)"
      in
      let off = slot * record_size in
      Codec.set_u64_int page off key;
      Bytes.fill page (off + 8) 56 '\000';
      Bytes.blit value 0 page (off + 8) (Bytes.length value))
    pairs;
  Hashtbl.iter (fun bucket page -> Cache.Txn.add txn bucket page) pages;
  Cache.Txn.commit txn

let () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(4 * 1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:nbuckets ~block_size:4096 in
  let config = { Cache.default_config with ring_slots = 1024 } in
  let t = { cache = Cache.format ~config ~pmem ~disk ~clock ~metrics } in

  (* A bank-transfer style batch: both sides or neither. *)
  put_batch t [ (1001, Bytes.of_string "alice: $900"); (1002, Bytes.of_string "bob: $100") ];
  Printf.printf "alice = %s\n" (Bytes.to_string (Option.get (get t 1001)));
  Printf.printf "bob   = %s\n" (Bytes.to_string (Option.get (get t 1002)));

  (* Crash in the middle of the next transfer... *)
  Pmem.set_crash_countdown pmem (Some 8);
  (try put_batch t [ (1001, Bytes.of_string "alice: $0"); (1002, Bytes.of_string "bob: $1000") ]
   with Pmem.Crash_point -> print_endline "crash mid-transfer!");
  Pmem.crash ~seed:3 ~survival:0.5 pmem;
  let t = { cache = Cache.recover ~pmem ~disk ~clock ~metrics () } in
  Cache.check_invariants t.cache;
  Printf.printf "after recovery:\n";
  Printf.printf "alice = %s\n" (Bytes.to_string (Option.get (get t 1001)));
  Printf.printf "bob   = %s\n" (Bytes.to_string (Option.get (get t 1002)));
  print_endline "(either both balances updated or neither — never money lost)";

  (* Bulk load + point lookups for flavour. *)
  let rng = Tinca_util.Rng.create 99 in
  for batch = 0 to 99 do
    let pairs =
      List.init 8 (fun i ->
          let key = 2000 + (batch * 8) + i in
          (key, Bytes.of_string (Printf.sprintf "value-%d" key)))
    in
    put_batch t pairs
  done;
  let probe = 2000 + Tinca_util.Rng.int rng 800 in
  Printf.printf "random probe key %d -> %s\n" probe
    (Bytes.to_string (Option.get (get t probe)) |> String.trim);
  Printf.printf "800 keys in %d committed transactions, write hit rate %.0f%%\n"
    (Metrics.get metrics "tinca.commits")
    (100.0 *. Cache.write_hit_rate t.cache)
