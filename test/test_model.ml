(* Model-based testing of the Tinca cache: long random interleavings of
   transactions, direct writes, reads, aborts, flushes and recoveries are
   checked against a trivial reference model (a map from disk block to
   last committed content).  Evictions, COW, ring wraparound and the
   background flusher all churn underneath while the observable contract
   must hold exactly. *)
open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let universe = 96
let block c = Bytes.make 4096 c

type world = {
  mutable cache : Cache.t;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
  model : (int, char) Hashtbl.t;
}

let mk_world seed =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~seed ~clock ~metrics ~tech:Latency.Pcm ~size:(192 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:universe ~block_size:4096 in
  let config = { Cache.default_config with ring_slots = 32 } in
  let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
  { cache; pmem; disk; clock; metrics; model = Hashtbl.create 64 }

let logical w blk =
  match Cache.peek w.cache blk with
  | Some d -> Bytes.get d 0
  | None -> Bytes.get (Disk.read_block w.disk blk) 0

let check w ctx =
  for blk = 0 to universe - 1 do
    let expect = match Hashtbl.find_opt w.model blk with Some c -> c | None -> '\000' in
    let got = logical w blk in
    if got <> expect then
      Alcotest.failf "%s: block %d holds %C, model says %C" ctx blk got expect
  done;
  Cache.check_invariants w.cache

let run_session ~seed ~steps =
  let rng = Tinca_util.Rng.create seed in
  let w = mk_world seed in
  for step = 1 to steps do
    let dice = Tinca_util.Rng.int rng 100 in
    if dice < 40 then begin
      (* multi-block transaction *)
      let h = Cache.Txn.init w.cache in
      let n = 1 + Tinca_util.Rng.int rng 5 in
      let staged = ref [] in
      for _ = 1 to n do
        let blk = Tinca_util.Rng.int rng universe in
        let c = Char.chr (33 + Tinca_util.Rng.int rng 90) in
        Cache.Txn.add h blk (block c);
        staged := (blk, c) :: !staged
      done;
      Cache.Txn.commit h;
      List.iter (fun (blk, c) -> Hashtbl.replace w.model blk c) (List.rev !staged)
    end
    else if dice < 55 then begin
      let blk = Tinca_util.Rng.int rng universe in
      let c = Char.chr (33 + Tinca_util.Rng.int rng 90) in
      Cache.write_direct w.cache blk (block c);
      Hashtbl.replace w.model blk c
    end
    else if dice < 75 then begin
      (* read must observe the model *)
      let blk = Tinca_util.Rng.int rng universe in
      let expect = match Hashtbl.find_opt w.model blk with Some c -> c | None -> '\000' in
      let got = Bytes.get (Cache.read w.cache blk) 0 in
      if got <> expect then Alcotest.failf "step %d: read %d got %C want %C" step blk got expect
    end
    else if dice < 85 then begin
      (* staged-then-aborted transaction leaves no trace *)
      let h = Cache.Txn.init w.cache in
      Cache.Txn.add h (Tinca_util.Rng.int rng universe) (block '!');
      Cache.Txn.abort h
    end
    else if dice < 92 then Cache.flush_all w.cache
    else begin
      (* quiescent crash + recovery: everything committed must persist *)
      Pmem.crash ~seed:(step * 7) ~survival:0.5 w.pmem;
      w.cache <-
        Cache.recover ~pmem:w.pmem ~disk:w.disk ~clock:w.clock ~metrics:w.metrics ()
    end;
    if step mod 50 = 0 then check w (Printf.sprintf "seed %d step %d" seed step)
  done;
  check w (Printf.sprintf "seed %d end" seed)

let test_model_sessions () =
  for seed = 1 to 8 do
    run_session ~seed ~steps:600
  done

let suite =
  [
    ( "core.model",
      [ Alcotest.test_case "random ops vs reference model" `Slow test_model_sessions ] );
  ]

(* Model-based FS content test: random pwrite/pread/append/truncate on a
   single file checked against a plain byte-array model, over a real
   Tinca stack (indirect blocks, sparse holes, bitmap churn included). *)
module Fs = Tinca_fs.Fs
module Stacks = Tinca_stacks.Stacks

let prop_fs_content_model =
  QCheck.Test.make ~name:"fs contents agree with byte model" ~count:25
    QCheck.(pair small_nat (list_of_size Gen.(int_range 1 25) (triple (int_bound 3) (int_bound 200) (int_bound 40))))
    (fun (seed, ops) ->
      let env = Stacks.make_env ~seed ~nvm_bytes:(4 * 1024 * 1024) ~disk_blocks:16384 () in
      let stack = Stacks.tinca env in
      let fs =
        Fs.format
          ~config:{ Fs.default_config with ninodes = 64; journal_len = 128 }
          stack.Stacks.backend
      in
      Fs.create fs "m";
      let limit = 700 * 1024 in
      let model = Bytes.make limit '\000' in
      let size = ref 0 in
      List.iter
        (fun (op, a, b) ->
          match op with
          | 0 ->
              (* pwrite *)
              let off = a * 997 mod (limit / 2) in
              let len = 1 + (b * 731 mod 20_000) in
              let len = min len (limit - off) in
              let c = Char.chr (33 + ((a + b) mod 90)) in
              Fs.pwrite fs "m" ~off (Bytes.make len c);
              Bytes.fill model off len c;
              size := max !size (off + len)
          | 1 ->
              (* append *)
              let len = 1 + (b * 613 mod 8_000) in
              if !size + len <= limit then begin
                let c = Char.chr (33 + (b mod 90)) in
                Fs.append fs "m" (Bytes.make len c);
                Bytes.fill model !size len c;
                size := !size + len
              end
          | 2 ->
              (* shrink truncate *)
              let newsize = if !size = 0 then 0 else a * 977 mod !size in
              Fs.truncate fs "m" newsize;
              Bytes.fill model newsize (limit - newsize) '\000';
              size := newsize
          | _ -> Fs.fsync fs)
        ops;
      Fs.fsync fs;
      Fs.fsck fs;
      (* Sizes agree and full contents agree. *)
      Fs.size fs "m" = !size
      && (!size = 0 || Bytes.equal (Fs.pread fs "m" ~off:0 ~len:!size) (Bytes.sub model 0 !size)))

let fs_model_suite =
  [ ("fs.model", [ QCheck_alcotest.to_alcotest prop_fs_content_model ]) ]
