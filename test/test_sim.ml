(* Tests for the simulated clock, latency tables and metrics registry. *)
open Tinca_sim

let test_clock_monotonic () =
  let c = Clock.create () in
  Clock.advance c 10.0;
  Clock.advance c 5.0;
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Clock.now_ns c);
  Clock.advance_to c 12.0;
  Alcotest.(check (float 1e-9)) "advance_to is monotone" 15.0 (Clock.now_ns c);
  Clock.advance_to c 20.0;
  Alcotest.(check (float 1e-9)) "advance_to moves forward" 20.0 (Clock.now_ns c);
  Alcotest.(check (float 1e-12)) "seconds" 2e-8 (Clock.seconds c);
  Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Clock.now_ns c)

let test_clock_rejects_negative () =
  let c = Clock.create () in
  Alcotest.(check bool) "assert fires" true
    (try
       Clock.advance c (-1.0);
       false
     with Assert_failure _ -> true)

let test_latency_orderings () =
  let open Latency in
  let nvdimm = nvm_of_tech Nvdimm and pcm = nvm_of_tech Pcm and stt = nvm_of_tech Stt_ram in
  Alcotest.(check bool) "pcm write slowest" true (pcm.write_ns > stt.write_ns);
  Alcotest.(check bool) "stt slower than dram" true (stt.write_ns > nvdimm.write_ns);
  Alcotest.(check bool) "read delays equal for pcm/stt" true (pcm.read_ns = stt.read_ns);
  let ssd = disk_of_kind Ssd and hdd = disk_of_kind Hdd in
  Alcotest.(check bool) "hdd seek dominates" true (hdd.seek_ns > ssd.write_block_ns)

let test_transfer_ns () =
  let open Latency in
  let net = default_network in
  let t = transfer_ns net 1_250_000 in
  (* 1.25 MB at 1.25 GB/s = 1 ms + 10 us rtt. *)
  Alcotest.(check (float 1.0)) "1.25MB" 1_010_000.0 t

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table1_renders () =
  let tbl = Latency.table1 () in
  let s = Tinca_util.Tabular.render tbl in
  Alcotest.(check bool) "mentions PCM" true (contains_substring s "PCM")

let test_metrics_incr_get () =
  let m = Metrics.create () in
  Metrics.incr m "a" ~by:2;
  Metrics.incr m "a" ~by:3;
  Alcotest.(check int) "accumulates" 5 (Metrics.get m "a");
  Alcotest.(check int) "missing is 0" 0 (Metrics.get m "nope")

let test_metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.incr m "x" ~by:10;
  let snap = Metrics.snapshot m in
  Metrics.incr m "x" ~by:5;
  Metrics.incr m "y" ~by:7;
  Alcotest.(check int) "since x" 5 (Metrics.since m snap "x");
  Alcotest.(check int) "since y" 7 (Metrics.since m snap "y");
  let d = Metrics.diff m snap in
  Alcotest.(check (list (pair string int))) "diff" [ ("x", 5); ("y", 7) ] d

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.incr m "x" ~by:1;
  Metrics.reset m;
  Alcotest.(check int) "cleared" 0 (Metrics.get m "x")

let test_metrics_diff_after_reset () =
  let m = Metrics.create () in
  Metrics.incr m "x" ~by:10;
  let snap = Metrics.snapshot m in
  Metrics.reset m;
  (* A reset drops the counters; a stale snapshot must not report
     phantom negative increments for counters that no longer exist. *)
  Alcotest.(check (list (pair string int))) "diff after reset is empty" [] (Metrics.diff m snap);
  Metrics.incr m "x" ~by:2;
  Alcotest.(check int) "since sees the reborn counter" (2 - 10) (Metrics.since m snap "x");
  Metrics.observe m "lat.x" 5.0;
  Metrics.reset m;
  Alcotest.(check bool) "histograms cleared too" true (Metrics.hists m = [])

let test_metrics_pp () =
  let m = Metrics.create () in
  Metrics.incr m "pmem.sfence" ~by:3;
  Metrics.observe m "lat.commit" 100.0;
  let s = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "pp names the counter" true (contains_substring s "pmem.sfence");
  Alcotest.(check bool) "pp shows the count" true (contains_substring s "3");
  Alcotest.(check bool) "pp names the histogram" true (contains_substring s "lat.commit")

let test_metrics_observe_hist () =
  let m = Metrics.create () in
  Alcotest.(check bool) "missing hist" true (Metrics.hist m "lat.z" = None);
  Metrics.observe m "lat.z" 10.0;
  Metrics.observe m "lat.z" 20.0;
  (match Metrics.hist m "lat.z" with
  | None -> Alcotest.fail "histogram not created"
  | Some h ->
      Alcotest.(check int) "count" 2 (Hist.count h);
      Alcotest.(check (float 1.0)) "mean" 15.0 (Hist.mean h));
  Alcotest.(check (list string)) "hists sorted by name" [ "lat.z" ]
    (List.map fst (Metrics.hists m))

(* The snapshot is hashtable-backed: since/diff over a 10k-counter
   registry must be far from the old O(n*m) assoc-list scan.  50 full
   diffs + 10k sinces over 10k counters in well under a second. *)
let test_metrics_snapshot_scale () =
  let m = Metrics.create () in
  for i = 0 to 9_999 do
    Metrics.incr m (Printf.sprintf "scale.c%04d" i) ~by:i
  done;
  let snap = Metrics.snapshot m in
  for i = 0 to 9_999 do
    Metrics.incr m (Printf.sprintf "scale.c%04d" i) ~by:1
  done;
  let t0 = Sys.time () in
  for _ = 1 to 50 do
    let d = Metrics.diff m snap in
    assert (List.length d = 10_000)
  done;
  for i = 0 to 9_999 do
    assert (Metrics.since m snap (Printf.sprintf "scale.c%04d" i) = 1)
  done;
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "50 diffs + 10k sinces over 10k counters in %.2fs < 1s" elapsed)
    true (elapsed < 1.0)

(* --- Hist ---------------------------------------------------------------- *)

let test_hist_percentiles () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.add h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  let within pct expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "p%g: %.1f within ~6%% of %.1f" pct actual expected)
      true
      (Float.abs (actual -. expected) /. expected < 0.07)
  in
  within 50.0 500.0 (Hist.percentile h 50.0);
  within 90.0 900.0 (Hist.percentile h 90.0);
  within 99.0 990.0 (Hist.percentile h 99.0);
  let s = Hist.summary h in
  within 99.9 999.0 s.Hist.p999;
  Alcotest.(check (float 1e-9)) "max exact" 1000.0 s.Hist.max;
  Alcotest.(check (float 1.0)) "mean" 500.5 s.Hist.mean;
  Alcotest.(check bool) "ladder monotone" true
    (s.Hist.p50 <= s.Hist.p90 && s.Hist.p90 <= s.Hist.p99 && s.Hist.p99 <= s.Hist.p999
   && s.Hist.p999 <= s.Hist.max)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  for v = 1 to 500 do
    Hist.add a (float_of_int v)
  done;
  for v = 501 to 1000 do
    Hist.add b (float_of_int v)
  done;
  Hist.merge ~dst:a ~src:b;
  Alcotest.(check int) "merged count" 1000 (Hist.count a);
  Alcotest.(check (float 1e-9)) "merged max" 1000.0 (Hist.max_value a);
  let p50 = Hist.percentile a 50.0 in
  Alcotest.(check bool) (Printf.sprintf "merged p50 %.1f ~ 500" p50) true
    (Float.abs (p50 -. 500.0) /. 500.0 < 0.07)

let test_hist_empty_and_reset () =
  let h = Hist.create () in
  Alcotest.(check (float 1e-9)) "empty percentile" 0.0 (Hist.percentile h 99.0);
  Hist.add h 42.0;
  Hist.add h (-5.0) (* clamped to 0 *);
  Alcotest.(check (float 1e-9)) "negative clamps to 0" 0.0 (Hist.min_value h);
  Hist.reset h;
  Alcotest.(check int) "reset clears" 0 (Hist.count h)

let suite =
  [
    ( "sim.clock",
      [
        Alcotest.test_case "monotonic accounting" `Quick test_clock_monotonic;
        Alcotest.test_case "negative rejected" `Quick test_clock_rejects_negative;
      ] );
    ( "sim.latency",
      [
        Alcotest.test_case "technology orderings" `Quick test_latency_orderings;
        Alcotest.test_case "network transfer" `Quick test_transfer_ns;
        Alcotest.test_case "table 1 renders" `Quick test_table1_renders;
      ] );
    ( "sim.metrics",
      [
        Alcotest.test_case "incr/get" `Quick test_metrics_incr_get;
        Alcotest.test_case "snapshot/diff" `Quick test_metrics_snapshot_diff;
        Alcotest.test_case "reset" `Quick test_metrics_reset;
        Alcotest.test_case "diff after reset" `Quick test_metrics_diff_after_reset;
        Alcotest.test_case "pp renders counters + hists" `Quick test_metrics_pp;
        Alcotest.test_case "observe/hist" `Quick test_metrics_observe_hist;
        Alcotest.test_case "snapshot scales to 10k counters" `Quick test_metrics_snapshot_scale;
      ] );
    ( "sim.hist",
      [
        Alcotest.test_case "percentile ladder accuracy" `Quick test_hist_percentiles;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "empty / clamp / reset" `Quick test_hist_empty_and_reset;
      ] );
  ]

let test_flush_instr_ordering () =
  let open Latency in
  Alcotest.(check bool) "clwb cheapest" true
    (flush_instr_ns Clwb < flush_instr_ns Clflushopt
    && flush_instr_ns Clflushopt < flush_instr_ns Clflush);
  (* Persisting through a pmem with clwb must cost less simulated time. *)
  let cost instr =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Tinca_pmem.Pmem.create ~flush_instr:instr ~clock ~metrics ~tech:Pcm ~size:4096 () in
    Tinca_pmem.Pmem.write pmem ~off:0 (Bytes.make 4096 'x');
    Tinca_pmem.Pmem.persist pmem ~off:0 ~len:4096;
    Clock.now_ns clock
  in
  Alcotest.(check bool) "clwb persists cheaper" true (cost Clwb < cost Clflush)

let flush_instr_suite =
  [
    ( "sim.flush_instr",
      [ Alcotest.test_case "instruction cost ordering" `Quick test_flush_instr_ordering ] );
  ]
