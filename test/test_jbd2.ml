(* Tests for the JBD2-style journal: commit format, checkpointing,
   replay recovery, revoke handling, and the double-write accounting that
   motivates the paper. *)
open Tinca_sim
module Journal = Tinca_jbd2.Journal
module Block_io = Tinca_blockdev.Block_io
module Disk = Tinca_blockdev.Disk

let mk ?(len = 64) ?(threshold = Journal.default_threshold) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let io = Block_io.of_disk disk in
  let config = { Journal.start = 1024; len; checkpoint_threshold = threshold } in
  let j = Journal.format ~config ~io ~metrics () in
  (j, config, io, disk, metrics)

let block c = Bytes.make 4096 c

let commit_blocks j pairs =
  let h = Journal.init_txn j in
  List.iter (fun (blkno, c) -> Journal.stage h blkno (block c)) pairs;
  Journal.commit h

let test_commit_logs_blocks () =
  let j, _, _, _, m = mk () in
  commit_blocks j [ (1, 'a'); (2, 'b') ];
  Alcotest.(check int) "commits" 1 (Metrics.get m "jbd2.commits");
  Alcotest.(check int) "logged" 2 (Metrics.get m "jbd2.blocks_logged");
  (* descriptor + 2 logs + commit = 4 journal blocks *)
  Alcotest.(check int) "journal used" 4 (Journal.used_blocks j);
  Alcotest.(check int) "pending" 1 (Journal.pending_txns j)

let test_checkpoint_writes_home () =
  let j, _, _, disk, m = mk () in
  commit_blocks j [ (7, 'x') ];
  Alcotest.(check char) "not home yet" '\000' (Bytes.get (Disk.read_block disk 7) 0);
  Journal.checkpoint j;
  Alcotest.(check char) "home after checkpoint" 'x' (Bytes.get (Disk.read_block disk 7) 0);
  Alcotest.(check int) "journal drained" 0 (Journal.used_blocks j);
  Alcotest.(check int) "checkpoint writes" 1 (Metrics.get m "jbd2.checkpoint_writes")

let test_checkpoint_coalesces () =
  let j, _, _, disk, m = mk () in
  commit_blocks j [ (7, 'a') ];
  commit_blocks j [ (7, 'b') ];
  Journal.checkpoint j;
  (* Two commits of the same block checkpoint once, with the newest. *)
  Alcotest.(check int) "single home write" 1 (Metrics.get m "jbd2.checkpoint_writes");
  Alcotest.(check char) "newest wins" 'b' (Bytes.get (Disk.read_block disk 7) 0)

let test_double_write_accounting () =
  (* The motivating observation: a committed + checkpointed block costs
     two device writes plus journaling metadata. *)
  let j, _, _, disk, _ = mk () in
  let w0 = Disk.writes disk in
  commit_blocks j [ (3, 'd') ];
  Journal.checkpoint j;
  let dw = Disk.writes disk - w0 in
  (* desc + log + commit + home + superblock = 5. *)
  Alcotest.(check int) "five device writes for one logical block" 5 dw

let test_auto_checkpoint_on_threshold () =
  let j, _, _, _, m = mk ~len:16 ~threshold:0.25 () in
  (* cap = 15, threshold = 3.75 blocks; one 2-block txn = 4 journal
     blocks > 3.75 -> auto checkpoint right after commit. *)
  commit_blocks j [ (1, 'a'); (2, 'b') ];
  Alcotest.(check int) "auto checkpointed" 1 (Metrics.get m "jbd2.checkpoints");
  Alcotest.(check int) "drained" 0 (Journal.used_blocks j)

let test_wraparound () =
  let j, _, _, disk, _ = mk ~len:12 ~threshold:0.6 () in
  (* Repeated commits must wrap the circular area without corruption. *)
  for round = 0 to 20 do
    commit_blocks j [ (round mod 5, Char.chr (Char.code 'a' + (round mod 26))) ]
  done;
  Journal.checkpoint j;
  Alcotest.(check char) "final content" 'u' (Bytes.get (Disk.read_block disk (20 mod 5)) 0)

let test_txn_too_large () =
  let j, _, _, _, _ = mk ~len:8 () in
  let h = Journal.init_txn j in
  for i = 0 to 9 do
    Journal.stage h i (block 'x')
  done;
  Alcotest.(check bool) "rejected" true
    (try
       Journal.commit h;
       false
     with Invalid_argument _ -> true)

let test_recovery_replays_committed () =
  let j, config, io, disk, m = mk () in
  commit_blocks j [ (5, 'p'); (6, 'q') ];
  (* No checkpoint: home locations still empty.  "Crash": recover from
     the journal alone. *)
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  Alcotest.(check char) "5 replayed" 'p' (Bytes.get (Disk.read_block disk 5) 0);
  Alcotest.(check char) "6 replayed" 'q' (Bytes.get (Disk.read_block disk 6) 0);
  Alcotest.(check int) "replay count" 2 (Metrics.get m "jbd2.replayed")

let test_recovery_ignores_uncommitted () =
  let j, config, io, disk, m = mk () in
  commit_blocks j [ (5, 'p') ];
  (* Forge a partial transaction: descriptor without commit block. *)
  let h = Journal.init_txn j in
  Journal.stage h 9 (block 'z');
  (* Simulate a torn commit by writing only the descriptor + log and no
     commit block: emulate by staging and never committing; instead write
     garbage where the next descriptor would go. *)
  ignore h;
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  Alcotest.(check char) "committed replayed" 'p' (Bytes.get (Disk.read_block disk 5) 0);
  Alcotest.(check char) "uncommitted ignored" '\000' (Bytes.get (Disk.read_block disk 9) 0)

let test_recovery_sequences () =
  let j, config, io, disk, m = mk () in
  commit_blocks j [ (1, 'a') ];
  commit_blocks j [ (2, 'b') ];
  commit_blocks j [ (1, 'c') ];
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  Alcotest.(check char) "later txn wins" 'c' (Bytes.get (Disk.read_block disk 1) 0);
  Alcotest.(check char) "middle txn applied" 'b' (Bytes.get (Disk.read_block disk 2) 0)

let test_recovery_after_checkpoint_is_noop () =
  let j, config, io, _, m = mk () in
  commit_blocks j [ (1, 'a') ];
  Journal.checkpoint j;
  let before = Metrics.get m "jbd2.replayed" in
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  Alcotest.(check int) "nothing replayed" before (Metrics.get m "jbd2.replayed")

let test_revoke_suppresses_replay () =
  let j, config, io, disk, m = mk () in
  commit_blocks j [ (4, 'o') ];
  (* A later transaction truncates block 4. *)
  let h = Journal.init_txn j in
  Journal.revoke h 4;
  Journal.stage h 8 (block 'n');
  Journal.commit h;
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  Alcotest.(check char) "revoked block not replayed" '\000' (Bytes.get (Disk.read_block disk 4) 0);
  Alcotest.(check char) "other block replayed" 'n' (Bytes.get (Disk.read_block disk 8) 0)

let test_large_txn_multiple_descriptors () =
  let j, config, io, disk, m = mk ~len:2048 () in
  let h = Journal.init_txn j in
  (* 600 blocks > 509 per descriptor: needs two descriptor blocks. *)
  for i = 0 to 599 do
    Journal.stage h i (block (Char.chr (i mod 256)))
  done;
  Journal.commit h;
  let _j2 = Journal.recover ~config ~io ~metrics:m () in
  let ok = ref true in
  for i = 0 to 599 do
    if Bytes.get (Disk.read_block disk i) 0 <> Char.chr (i mod 256) then ok := false
  done;
  Alcotest.(check bool) "all 600 replayed" true !ok

let test_stage_dedupes () =
  let j, _, _, disk, _ = mk () in
  let h = Journal.init_txn j in
  Journal.stage h 1 (block 'a');
  Journal.stage h 1 (block 'b');
  Alcotest.(check int) "deduped" 1 (Journal.block_count h);
  Journal.commit h;
  Journal.checkpoint j;
  Alcotest.(check char) "last wins" 'b' (Bytes.get (Disk.read_block disk 1) 0)

let prop_commit_checkpoint_equals_writes =
  QCheck.Test.make ~name:"jbd2: journal+checkpoint preserves final state" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_bound 100) (int_bound 255)))
    (fun writes ->
      let j, _, _, disk, _ = mk ~len:512 () in
      List.iter (fun (blk, v) -> commit_blocks j [ (blk, Char.chr v) ]) writes;
      Journal.checkpoint j;
      let expect = Hashtbl.create 16 in
      List.iter (fun (blk, v) -> Hashtbl.replace expect blk v) writes;
      Hashtbl.fold
        (fun blk v acc -> acc && Bytes.get (Disk.read_block disk blk) 0 = Char.chr v)
        expect true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "jbd2",
      [
        Alcotest.test_case "commit logs blocks" `Quick test_commit_logs_blocks;
        Alcotest.test_case "checkpoint writes home" `Quick test_checkpoint_writes_home;
        Alcotest.test_case "checkpoint coalesces" `Quick test_checkpoint_coalesces;
        Alcotest.test_case "double-write accounting" `Quick test_double_write_accounting;
        Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint_on_threshold;
        Alcotest.test_case "wraparound" `Quick test_wraparound;
        Alcotest.test_case "txn too large" `Quick test_txn_too_large;
        Alcotest.test_case "recovery replays committed" `Quick test_recovery_replays_committed;
        Alcotest.test_case "recovery ignores uncommitted" `Quick test_recovery_ignores_uncommitted;
        Alcotest.test_case "recovery sequences" `Quick test_recovery_sequences;
        Alcotest.test_case "recovery after checkpoint no-op" `Quick test_recovery_after_checkpoint_is_noop;
        Alcotest.test_case "revoke suppresses replay" `Quick test_revoke_suppresses_replay;
        Alcotest.test_case "multi-descriptor txn" `Quick test_large_txn_multiple_descriptors;
        Alcotest.test_case "stage dedupes" `Quick test_stage_dedupes;
        q prop_commit_checkpoint_equals_writes;
      ] );
  ]
