(* Unit tests for the Tinca core: entry codec, layout, ring buffer, and
   cache behaviour (reads, commits, COW, replacement, pinning). *)
open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

(* --- entry codec --- *)

let entry_eq = Alcotest.testable Entry.pp Entry.equal

let test_entry_roundtrip () =
  let e =
    { Entry.valid = true; role = Entry.Log; modified = true; disk_blkno = 123456789;
      prev = Some 77; cur = 99 }
  in
  Alcotest.check entry_eq "roundtrip" e (Entry.decode (Entry.encode e))

let test_entry_fresh () =
  let e =
    { Entry.valid = true; role = Entry.Buffer; modified = false; disk_blkno = 5;
      prev = None; cur = 1 }
  in
  let b = Entry.encode e in
  Alcotest.(check int) "FRESH on media" Entry.fresh (Tinca_util.Codec.get_u32 b 8);
  Alcotest.check entry_eq "roundtrip with FRESH" e (Entry.decode b)

let test_entry_invalid_slot () =
  let e = Entry.decode (Entry.invalid_bytes ()) in
  Alcotest.(check bool) "zeroed slot is invalid" false e.Entry.valid

let test_entry_size () =
  let e =
    { Entry.valid = true; role = Entry.Log; modified = false; disk_blkno = 1; prev = None; cur = 0 }
  in
  Alcotest.(check int) "16 bytes" 16 (Bytes.length (Entry.encode e))

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"entry roundtrip" ~count:500
    QCheck.(
      quad bool (pair bool bool)
        (int_bound ((1 lsl 56) - 1))
        (pair (option (int_bound 0xFFFFFFFE)) (int_bound 0xFFFFFFFF)))
    (fun (valid, (log, modified), disk_blkno, (prev, cur)) ->
      let e =
        { Entry.valid; role = (if log then Entry.Log else Entry.Buffer); modified; disk_blkno;
          prev; cur }
      in
      Entry.equal e (Entry.decode (Entry.encode e)))

(* --- layout --- *)

let test_layout_geometry () =
  let l = Layout.compute ~pmem_bytes:(1 lsl 20) ~block_size:4096 ~ring_slots:128 in
  Alcotest.(check bool) "fits" true (l.Layout.total_bytes <= 1 lsl 20);
  Alcotest.(check bool) "nonempty" true (l.Layout.nblocks > 0);
  Alcotest.(check int) "data aligned" 0 (l.Layout.data_off mod 4096);
  Alcotest.(check int) "entries aligned" 0 (l.Layout.entries_off mod 64);
  Alcotest.(check bool) "regions ordered" true
    (l.Layout.ring_off < l.Layout.entries_off && l.Layout.entries_off < l.Layout.data_off)

let test_layout_too_small () =
  Alcotest.(check bool) "rejects tiny pmem" true
    (try
       ignore (Layout.compute ~pmem_bytes:1024 ~block_size:4096 ~ring_slots:128);
       false
     with Invalid_argument _ -> true)

let test_layout_index_bounds () =
  (* Out-of-range indices must fail loudly even under -noassert, so the
     checks are invalid_arg, not assert. *)
  let l = Layout.compute ~pmem_bytes:(1 lsl 20) ~block_size:4096 ~ring_slots:128 in
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "entry_off -1" true (rejects (fun () -> Layout.entry_off l (-1)));
  Alcotest.(check bool) "entry_off nblocks" true
    (rejects (fun () -> Layout.entry_off l l.Layout.nblocks));
  Alcotest.(check bool) "data_block_off -1" true
    (rejects (fun () -> Layout.data_block_off l (-1)));
  Alcotest.(check bool) "data_block_off nblocks" true
    (rejects (fun () -> Layout.data_block_off l l.Layout.nblocks))

let test_layout_metadata_fraction () =
  (* With a 1 MB ring on a large cache, metadata should be a small
     fraction (paper: ~0.4 % for entries alone on 8 GB). *)
  let l = Layout.compute ~pmem_bytes:(256 * 1024 * 1024) ~block_size:4096 ~ring_slots:131072 in
  Alcotest.(check bool) "metadata under 2 %" true (Layout.metadata_fraction l < 0.02)

let prop_layout_regions_disjoint =
  QCheck.Test.make ~name:"layout regions disjoint and in bounds" ~count:200
    QCheck.(pair (int_range 65536 (1 lsl 22)) (int_range 8 4096))
    (fun (pmem_bytes, ring_slots) ->
      match Layout.compute ~pmem_bytes ~block_size:4096 ~ring_slots with
      | exception Invalid_argument _ -> true
      | l ->
          let ring_end = l.Layout.ring_off + (ring_slots * 8) in
          let entries_end = l.Layout.entries_off + (l.Layout.nblocks * Entry.size) in
          ring_end <= l.Layout.entries_off
          && entries_end <= l.Layout.data_off
          && l.Layout.total_bytes <= pmem_bytes
          && l.Layout.data_off + (l.Layout.nblocks * 4096) = l.Layout.total_bytes)

(* --- ring --- *)

let mk_ring ?(slots = 8) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Nvdimm ~size:65536 () in
  let layout = Layout.compute ~pmem_bytes:65536 ~block_size:4096 ~ring_slots:slots in
  let ring = Ring.attach ~pmem ~layout in
  Ring.format ring;
  (ring, pmem, layout)

let test_ring_record_and_commit () =
  let ring, _, _ = mk_ring () in
  Ring.record ring 101;
  Ring.record ring 102;
  Alcotest.(check int) "in flight" 2 (Ring.in_flight ring);
  Alcotest.(check (list int)) "pending" [ 101; 102 ] (Ring.pending_blknos ring);
  Ring.commit_point ring;
  Alcotest.(check int) "quiescent" 0 (Ring.in_flight ring);
  Alcotest.(check (list int)) "no pending" [] (Ring.pending_blknos ring)

let test_ring_wraparound () =
  let ring, _, _ = mk_ring ~slots:8 () in
  (* Fill and drain the ring several times so the counters exceed the
     slot count and wrap. *)
  for round = 0 to 4 do
    for i = 0 to 5 do
      Ring.record ring ((round * 100) + i)
    done;
    Alcotest.(check (list int)) "pending in order"
      (List.init 6 (fun i -> (round * 100) + i))
      (Ring.pending_blknos ring);
    Ring.commit_point ring
  done;
  Alcotest.(check bool) "counters advanced past slots" true (Ring.head ring > 8)

let test_ring_full_rejected () =
  let ring, _, _ = mk_ring ~slots:4 () in
  for i = 0 to 3 do
    Ring.record ring i
  done;
  Alcotest.(check bool) "full" true
    (try
       Ring.record ring 99;
       false
     with Invalid_argument _ -> true)

let test_ring_rewind () =
  let ring, _, _ = mk_ring () in
  Ring.record ring 7;
  Ring.rewind_head ring;
  Alcotest.(check int) "rewound" 0 (Ring.in_flight ring)

let test_ring_pointers_durable () =
  let ring, pmem, layout = mk_ring () in
  Ring.record ring 55;
  Ring.commit_point ring;
  Pmem.crash ~seed:3 ~survival:0.0 pmem;
  let ring2 = Ring.attach ~pmem ~layout in
  Alcotest.(check int) "head durable" 1 (Ring.head ring2);
  Alcotest.(check int) "tail durable" 1 (Ring.tail ring2)

(* --- cache --- *)

type env = {
  cache : Cache.t;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
}

let mk_env ?(pmem_bytes = 256 * 1024) ?(ring_slots = 64) ?(disk_blocks = 256)
    ?(mode = Cache.Write_back) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:disk_blocks ~block_size:4096 in
  let config = { Cache.default_config with ring_slots; mode } in
  let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
  { cache; pmem; disk; clock; metrics }

let block c = Bytes.make 4096 c

let commit_one env blkno data =
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h blkno data;
  Cache.Txn.commit h

let test_commit_then_read () =
  let env = mk_env () in
  commit_one env 10 (block 'a');
  Alcotest.(check char) "read committed" 'a' (Bytes.get (Cache.read env.cache 10) 0);
  Cache.check_invariants env.cache

let test_read_miss_fills () =
  let env = mk_env () in
  Disk.write_block env.disk 5 (block 'd');
  Alcotest.(check char) "from disk" 'd' (Bytes.get (Cache.read env.cache 5) 0);
  Alcotest.(check bool) "now cached" true (Cache.contains env.cache 5);
  Alcotest.(check char) "hit second time" 'd' (Bytes.get (Cache.read env.cache 5) 0);
  Alcotest.(check int) "one hit one miss" 1 (Metrics.get env.metrics "tinca.read_hits");
  Cache.check_invariants env.cache

let test_multi_block_txn () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'x');
  Cache.Txn.add h 2 (block 'y');
  Cache.Txn.add h 3 (block 'z');
  Alcotest.(check int) "three staged" 3 (Cache.Txn.block_count h);
  Cache.Txn.commit h;
  Alcotest.(check char) "1" 'x' (Bytes.get (Cache.read env.cache 1) 0);
  Alcotest.(check char) "2" 'y' (Bytes.get (Cache.read env.cache 2) 0);
  Alcotest.(check char) "3" 'z' (Bytes.get (Cache.read env.cache 3) 0);
  Cache.check_invariants env.cache

let test_same_block_twice_last_wins () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'a');
  Cache.Txn.add h 1 (block 'b');
  Alcotest.(check int) "deduped" 1 (Cache.Txn.block_count h);
  Cache.Txn.commit h;
  Alcotest.(check char) "last wins" 'b' (Bytes.get (Cache.read env.cache 1) 0)

let test_cow_reclaims_prev () =
  let env = mk_env () in
  commit_one env 1 (block 'a');
  let free_after_first = Cache.free_blocks env.cache in
  commit_one env 1 (block 'b');
  (* COW allocates a new block but frees the previous at commit end. *)
  Alcotest.(check int) "net NVM usage unchanged" free_after_first (Cache.free_blocks env.cache);
  Alcotest.(check char) "updated" 'b' (Bytes.get (Cache.read env.cache 1) 0);
  Alcotest.(check int) "one write hit" 1 (Metrics.get env.metrics "tinca.write_hits");
  Cache.check_invariants env.cache

let test_abort_running_txn () =
  let env = mk_env () in
  commit_one env 1 (block 'a');
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'b');
  Cache.Txn.abort h;
  Alcotest.(check char) "old value intact" 'a' (Bytes.get (Cache.read env.cache 1) 0);
  Cache.check_invariants env.cache

let test_empty_commit () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Cache.Txn.commit h;
  Alcotest.(check int) "counted" 1 (Metrics.get env.metrics "tinca.commits");
  Cache.check_invariants env.cache

let test_txn_reuse_rejected () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'a');
  Cache.Txn.commit h;
  Alcotest.(check bool) "commit twice rejected" true
    (try
       Cache.Txn.commit h;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "add after commit rejected" true
    (try
       Cache.Txn.add h 2 (block 'b');
       false
     with Invalid_argument _ -> true)

let test_wrong_block_size_rejected () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Alcotest.(check bool) "size checked" true
    (try
       Cache.Txn.add h 1 (Bytes.make 100 'x');
       false
     with Invalid_argument _ -> true)

let test_eviction_writes_back () =
  let env = mk_env () in
  let n = Cache.free_blocks env.cache in
  (* Commit more distinct blocks than the cache holds: evictions must
     push LRU dirty data to disk. *)
  for i = 0 to n + 8 do
    commit_one env i (block (Char.chr (Char.code 'A' + (i mod 26))))
  done;
  Alcotest.(check bool) "evictions happened" true (Metrics.get env.metrics "tinca.evictions" > 0);
  Alcotest.(check bool) "writebacks happened" true (Metrics.get env.metrics "tinca.writebacks" > 0);
  (* Early blocks were evicted: their content must be on disk. *)
  Alcotest.(check char) "evicted content on disk" 'A' (Bytes.get (Disk.read_block env.disk 0) 0);
  Cache.check_invariants env.cache

let test_read_after_eviction () =
  let env = mk_env () in
  let n = Cache.free_blocks env.cache in
  for i = 0 to n + 8 do
    commit_one env i (block (Char.chr (Char.code 'A' + (i mod 26))))
  done;
  (* Block 0 was evicted; a read must restore it from disk faithfully. *)
  Alcotest.(check bool) "evicted" false (Cache.contains env.cache 0);
  Alcotest.(check char) "read back" 'A' (Bytes.get (Cache.read env.cache 0) 0)

let test_txn_too_large_ring () =
  let env = mk_env ~ring_slots:8 () in
  let h = Cache.Txn.init env.cache in
  for i = 0 to 8 do
    Cache.Txn.add h i (block 'x')
  done;
  Alcotest.check_raises "ring bound" Cache.Transaction_too_large (fun () -> Cache.Txn.commit h);
  (* Nothing must have been written. *)
  Alcotest.(check int) "no blocks cached" 0 (Cache.cached_blocks env.cache);
  Cache.check_invariants env.cache

let test_txn_too_large_capacity () =
  let env = mk_env ~pmem_bytes:(96 * 1024) ~ring_slots:512 () in
  let cap = Cache.free_blocks env.cache in
  let h = Cache.Txn.init env.cache in
  for i = 0 to cap + 4 do
    Cache.Txn.add h i (block 'x')
  done;
  Alcotest.check_raises "capacity bound" Cache.Transaction_too_large (fun () ->
      Cache.Txn.commit h);
  Cache.check_invariants env.cache

let test_write_through_mode () =
  let env = mk_env ~mode:Cache.Write_through () in
  commit_one env 3 (block 'w');
  Alcotest.(check char) "on disk immediately" 'w' (Bytes.get (Disk.read_block env.disk 3) 0);
  Cache.check_invariants env.cache

let test_flush_all () =
  let env = mk_env () in
  commit_one env 1 (block 'p');
  commit_one env 2 (block 'q');
  Alcotest.(check int) "dirty, not on disk yet" 0 (Disk.written_blocks env.disk);
  Cache.flush_all env.cache;
  Alcotest.(check char) "1 flushed" 'p' (Bytes.get (Disk.read_block env.disk 1) 0);
  Alcotest.(check char) "2 flushed" 'q' (Bytes.get (Disk.read_block env.disk 2) 0);
  (* Idempotent: a second flush writes nothing new. *)
  let w = Disk.writes env.disk in
  Cache.flush_all env.cache;
  Alcotest.(check int) "second flush is a no-op" w (Disk.writes env.disk);
  Cache.check_invariants env.cache

let test_hit_rates () =
  let env = mk_env () in
  commit_one env 1 (block 'a');
  commit_one env 1 (block 'b');
  commit_one env 2 (block 'c');
  (* 1 write hit (second commit of block 1), 2 write misses. *)
  Alcotest.(check (float 1e-9)) "write hit rate" (1.0 /. 3.0) (Cache.write_hit_rate env.cache)

let test_txn_histogram () =
  let env = mk_env () in
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'a');
  Cache.Txn.add h 2 (block 'b');
  Cache.Txn.commit h;
  commit_one env 3 (block 'c');
  let hist = Cache.txn_size_histogram env.cache in
  Alcotest.(check int) "two commits sized" 2 (Tinca_util.Histogram.count hist);
  Alcotest.(check (float 1e-9)) "mean" 1.5 (Tinca_util.Histogram.mean hist)

let test_peak_cow () =
  let env = mk_env () in
  commit_one env 1 (block 'a');
  commit_one env 2 (block 'b');
  let h = Cache.Txn.init env.cache in
  Cache.Txn.add h 1 (block 'c');
  Cache.Txn.add h 2 (block 'd');
  Cache.Txn.commit h;
  (* Both blocks were write hits: two previous versions pinned at once. *)
  Alcotest.(check int) "peak COW" 2 (Cache.peak_cow_blocks env.cache)

let test_write_direct () =
  let env = mk_env () in
  Cache.write_direct env.cache 9 (block 'v');
  Alcotest.(check char) "visible" 'v' (Bytes.get (Cache.read env.cache 9) 0);
  Cache.check_invariants env.cache

let test_clflush_economy () =
  (* The headline mechanism: committing one 4 KB block must cost ~64 data
     line flushes plus a handful of metadata flushes — not another 64 for
     a journal copy (Classic) nor 64 for a metadata block (Flashcache). *)
  let env = mk_env () in
  let snap = Metrics.snapshot env.metrics in
  commit_one env 1 (block 'e');
  let flushes = Metrics.since env.metrics snap "pmem.clflush" in
  Alcotest.(check bool)
    (Printf.sprintf "64 data + <16 metadata flushes (got %d)" flushes)
    true
    (flushes >= 64 && flushes < 80)

let prop_committed_data_readable =
  QCheck.Test.make ~name:"cache: committed data always readable" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 40) (int_bound 255)))
    (fun writes ->
      let env = mk_env () in
      List.iter (fun (blk, v) -> commit_one env blk (block (Char.chr v))) writes;
      let expect = Hashtbl.create 16 in
      List.iter (fun (blk, v) -> Hashtbl.replace expect blk v) writes;
      Cache.check_invariants env.cache;
      Hashtbl.fold
        (fun blk v acc -> acc && Bytes.get (Cache.read env.cache blk) 0 = Char.chr v)
        expect true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "core.entry",
      [
        Alcotest.test_case "roundtrip" `Quick test_entry_roundtrip;
        Alcotest.test_case "FRESH encoding" `Quick test_entry_fresh;
        Alcotest.test_case "invalid slot" `Quick test_entry_invalid_slot;
        Alcotest.test_case "size is 16" `Quick test_entry_size;
        q prop_entry_roundtrip;
      ] );
    ( "core.layout",
      [
        Alcotest.test_case "geometry" `Quick test_layout_geometry;
        Alcotest.test_case "too small rejected" `Quick test_layout_too_small;
        Alcotest.test_case "index bounds rejected" `Quick test_layout_index_bounds;
        Alcotest.test_case "metadata fraction" `Quick test_layout_metadata_fraction;
        q prop_layout_regions_disjoint;
      ] );
    ( "core.ring",
      [
        Alcotest.test_case "record and commit" `Quick test_ring_record_and_commit;
        Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "full rejected" `Quick test_ring_full_rejected;
        Alcotest.test_case "rewind" `Quick test_ring_rewind;
        Alcotest.test_case "pointers durable" `Quick test_ring_pointers_durable;
      ] );
    ( "core.cache",
      [
        Alcotest.test_case "commit then read" `Quick test_commit_then_read;
        Alcotest.test_case "read miss fills" `Quick test_read_miss_fills;
        Alcotest.test_case "multi-block txn" `Quick test_multi_block_txn;
        Alcotest.test_case "dedupe in txn" `Quick test_same_block_twice_last_wins;
        Alcotest.test_case "COW reclaims prev" `Quick test_cow_reclaims_prev;
        Alcotest.test_case "abort running" `Quick test_abort_running_txn;
        Alcotest.test_case "empty commit" `Quick test_empty_commit;
        Alcotest.test_case "txn reuse rejected" `Quick test_txn_reuse_rejected;
        Alcotest.test_case "block size checked" `Quick test_wrong_block_size_rejected;
        Alcotest.test_case "eviction writes back" `Quick test_eviction_writes_back;
        Alcotest.test_case "read after eviction" `Quick test_read_after_eviction;
        Alcotest.test_case "txn too large (ring)" `Quick test_txn_too_large_ring;
        Alcotest.test_case "txn too large (capacity)" `Quick test_txn_too_large_capacity;
        Alcotest.test_case "write-through mode" `Quick test_write_through_mode;
        Alcotest.test_case "flush_all" `Quick test_flush_all;
        Alcotest.test_case "hit rates" `Quick test_hit_rates;
        Alcotest.test_case "txn histogram" `Quick test_txn_histogram;
        Alcotest.test_case "peak COW" `Quick test_peak_cow;
        Alcotest.test_case "write_direct" `Quick test_write_direct;
        Alcotest.test_case "clflush economy" `Quick test_clflush_economy;
        q prop_committed_data_readable;
      ] );
  ]

(* --- background flusher --- *)

let test_flusher_fires_and_preserves_data () =
  let env = mk_env () in
  let n = Cache.free_blocks env.cache in
  (* Dirty well past 70 % of capacity. *)
  let total = n - 4 in
  for i = 0 to total do
    commit_one env i (block (Char.chr (33 + (i mod 90))))
  done;
  Alcotest.(check bool) "cleaned some" true (Metrics.get env.metrics "tinca.cleaned" > 0);
  for i = 0 to total do
    Alcotest.(check char) (Printf.sprintf "blk %d" i)
      (Char.chr (33 + (i mod 90)))
      (Bytes.get (Cache.read env.cache i) 0)
  done;
  Cache.check_invariants env.cache

let test_flusher_disabled_at_one () =
  let clock = Tinca_sim.Clock.create () in
  let metrics = Tinca_sim.Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Tinca_sim.Latency.Pcm ~size:(256 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Tinca_sim.Latency.Ssd ~nblocks:256 ~block_size:4096 in
  let config = { Cache.default_config with ring_slots = 64; clean_threshold = 1.0 } in
  let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
  for i = 0 to Cache.free_blocks cache - 2 do
    Cache.write_direct cache i (block 'x')
  done;
  Alcotest.(check int) "no pre-cleaning" 0 (Metrics.get metrics "tinca.cleaned")

let test_flusher_marks_clean_persistently () =
  let env = mk_env () in
  let n = Cache.free_blocks env.cache in
  for i = 0 to n - 4 do
    commit_one env i (block 'z')
  done;
  Alcotest.(check bool) "cleaned" true (Metrics.get env.metrics "tinca.cleaned" > 0);
  (* Crash + recover: cleaned blocks must come back clean (M=0) so a
     flush_all does not rewrite them. *)
  Pmem.crash ~seed:5 ~survival:0.0 env.pmem;
  let recovered =
    Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  in
  Cache.check_invariants recovered;
  let before = Disk.writes env.disk in
  Cache.flush_all recovered;
  let rewritten = Disk.writes env.disk - before in
  Alcotest.(check bool) "cleaned blocks not rewritten" true
    (rewritten < Cache.cached_blocks recovered)

let flusher_suite =
  [
    ( "core.flusher",
      [
        Alcotest.test_case "fires and preserves data" `Quick test_flusher_fires_and_preserves_data;
        Alcotest.test_case "disabled at 1.0" `Quick test_flusher_disabled_at_one;
        Alcotest.test_case "clean bit persisted" `Quick test_flusher_marks_clean_persistently;
      ] );
  ]
