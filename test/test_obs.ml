(* Tests for the observability layer: span tracer semantics (nesting,
   counter folding, unbalanced handling, disabled-mode zero allocation),
   the pmem event -> span attribution, the Chrome trace_event JSON
   export + validator, the /proc-style renderer, the dotted metric
   naming convention over real workload runs, and the ISSUE acceptance
   pin: a traced 8-block Tinca commit whose stage-B span carries exactly
   one sfence and whose whole-commit span stays within the 6-fence
   budget — with the sanitizer attached and silent. *)

module Trace = Tinca_obs.Trace
module Jsonv = Tinca_obs.Jsonv
module Procfs = Tinca_obs.Procfs
module Cache = Tinca_core.Cache
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Psan = Tinca_checker.Psan
module Stacks = Tinca_stacks.Stacks
open Tinca_sim

(* Every test that enables tracing must disable it on ANY exit: the
   tracer is global state and a leak would slow the whole suite. *)
let traced f () = Fun.protect ~finally:Trace.disable f

(* --- Trace semantics ----------------------------------------------------- *)

let test_nesting_and_folding =
  traced (fun () ->
      Trace.enable ();
      let clock = Clock.create () in
      Trace.name_track clock "t0";
      Trace.begin_span ~clock "outer";
      Trace.attr "k" "v";
      Clock.advance clock 100.0;
      Trace.begin_span ~clock "inner";
      Trace.note "n" ~by:2;
      Clock.advance clock 50.0;
      Trace.end_span "inner";
      Clock.advance clock 25.0;
      Trace.note "n" ~by:1;
      Trace.end_span "outer";
      match Trace.completed () with
      | [ inner; outer ] ->
          Alcotest.(check string) "inner closes first" "inner" inner.Trace.name;
          Alcotest.(check string) "outer name" "outer" outer.Trace.name;
          Alcotest.(check string) "track name" "t0" outer.Trace.track;
          Alcotest.(check (float 1e-9)) "inner duration" 50.0 inner.Trace.dur_ns;
          Alcotest.(check (float 1e-9)) "outer duration" 175.0 outer.Trace.dur_ns;
          Alcotest.(check (float 1e-9)) "outer self time excludes inner" 125.0
            outer.Trace.self_ns;
          Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
          Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
          Alcotest.(check int) "inner counter" 2 (Trace.counter inner "n");
          Alcotest.(check int) "counters fold into parent" 3 (Trace.counter outer "n");
          Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ] outer.Trace.attrs
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_unbalanced =
  traced (fun () ->
      Trace.enable ();
      let clock = Clock.create () in
      (* End with nothing open: counted, ignored. *)
      Trace.end_span "phantom";
      Alcotest.(check int) "phantom end counted" 1 (Trace.unbalanced ());
      (* End naming a span deeper in the stack force-closes intervening
         spans. *)
      Trace.begin_span ~clock "a";
      Trace.begin_span ~clock "b";
      Trace.end_span "a";
      Alcotest.(check int) "force-close counted" 2 (Trace.unbalanced ());
      Alcotest.(check int) "nothing left open" 0 (Trace.open_spans ());
      Alcotest.(check int) "both spans completed" 2 (List.length (Trace.completed ()));
      (* End naming no open span leaves the stack alone. *)
      Trace.begin_span ~clock "c";
      Trace.end_span "zz";
      Alcotest.(check int) "absent name counted" 3 (Trace.unbalanced ());
      Alcotest.(check int) "c still open" 1 (Trace.open_spans ());
      Trace.end_span "c")

let test_reset_keeps_tracks =
  traced (fun () ->
      let clock = Clock.create () in
      Trace.name_track clock "named-before-enable";
      Trace.enable ();
      Trace.begin_span ~clock "s";
      Trace.end_span "s";
      Trace.reset ();
      Alcotest.(check int) "reset drops spans" 0 (List.length (Trace.completed ()));
      Trace.begin_span ~clock "s2";
      Trace.end_span "s2";
      match Trace.completed () with
      | [ s ] ->
          Alcotest.(check string) "track registration survives enable + reset"
            "named-before-enable" s.Trace.track
      | _ -> Alcotest.fail "expected one span")

(* Disabled tracing must be free: no allocation at all across
   begin/end/note/instant, so it can stay compiled into every hot
   path.  The budget of 8 words absorbs the boxed float returned by
   [Gc.minor_words] itself. *)
let test_disabled_zero_alloc () =
  Trace.disable ();
  let clock = Clock.create () in
  Trace.begin_span ~clock "z";
  Trace.note "c" ~by:1;
  Trace.end_span "z";
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.begin_span ~clock "z";
    Trace.note "c" ~by:1;
    Trace.instant ~clock "i";
    Trace.end_span "z"
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "10k disabled begin/note/instant/end allocate %.0f words" allocated)
    true (allocated <= 8.0)

let test_disabled_noops () =
  Trace.disable ();
  let clock = Clock.create () in
  Trace.begin_span ~clock "x";
  Trace.end_span "x";
  Alcotest.(check bool) "not enabled" false (Trace.enabled ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.completed ()));
  Alcotest.(check int) "nothing unbalanced" 0 (Trace.unbalanced ())

(* --- pmem event attribution ---------------------------------------------- *)

let test_pmem_attribution =
  traced (fun () ->
      Trace.enable ();
      let clock = Clock.create () in
      let metrics = Metrics.create () in
      let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:4096 () in
      Trace.begin_span ~clock "persist";
      Pmem.write pmem ~off:0 (Bytes.make 128 'x');
      Pmem.clflush pmem ~off:0 ~len:128;
      Pmem.sfence pmem;
      Trace.end_span "persist";
      (* Outside any span the events must be dropped, not crash. *)
      Pmem.write pmem ~off:0 (Bytes.make 64 'y');
      Pmem.sfence pmem;
      match Trace.find_spans "persist" with
      | [ s ] ->
          Alcotest.(check int) "store lines attributed" 2 (Trace.counter s "pmem.store_lines");
          Alcotest.(check int) "clflush attributed" 2 (Trace.counter s "pmem.clflush");
          Alcotest.(check int) "write-backs attributed" 2
            (Trace.counter s "pmem.clflush_writebacks");
          Alcotest.(check int) "sfence attributed" 1 (Trace.counter s "pmem.sfence")
      | l -> Alcotest.failf "expected one persist span, got %d" (List.length l))

(* --- acceptance pin: traced 8-block commit ------------------------------- *)

let mk_cache_env () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:256 ~block_size:4096 in
  (clock, metrics, pmem, disk)

let commit_8 cache ~base =
  let h = Cache.Txn.init cache in
  for b = 0 to 7 do
    Cache.Txn.add h (base + b) (Bytes.make 4096 'w')
  done;
  Cache.Txn.commit h

let test_traced_commit_budget =
  traced (fun () ->
      let clock, metrics, pmem, disk = mk_cache_env () in
      Trace.enable ();
      Trace.name_track clock "tinca";
      let cache =
        Cache.format ~config:{ Cache.default_config with ring_slots = 128 } ~pmem ~disk ~clock
          ~metrics
      in
      let psan = Psan.attach ~layout:(Cache.layout cache) pmem in
      for c = 0 to 3 do
        commit_8 cache ~base:(c * 8)
      done;
      (* Stage B (ring slot batch) pays exactly one sfence per commit;
         the whole write-back commit five, within the <= 6 pin. *)
      let stage_b = Trace.find_spans "tinca.commit.stage_b" in
      Alcotest.(check int) "one stage-B span per commit" 4 (List.length stage_b);
      List.iter
        (fun s -> Alcotest.(check int) "stage B = 1 sfence" 1 (Trace.counter s "pmem.sfence"))
        stage_b;
      let commits = Trace.find_spans "tinca.commit" in
      Alcotest.(check int) "one commit span per commit" 4 (List.length commits);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "commit <= 6 sfences (got %d)" (Trace.counter s "pmem.sfence"))
            true
            (Trace.counter s "pmem.sfence" <= 6);
          Alcotest.(check int) "blocks attr" 0
            (compare (List.assoc_opt "blocks" s.Trace.attrs) (Some "8")))
        commits;
      Alcotest.(check int) "balanced" 0 (Trace.unbalanced ());
      Alcotest.(check int) "no open spans" 0 (Trace.open_spans ());
      (* Tracing must not upset the sanitizer. *)
      Alcotest.(check int) "psan silent under tracing" 0 (Psan.violation_count psan);
      Psan.detach psan;
      (* The export is schema-valid Chrome JSON. *)
      match Jsonv.validate_trace (Result.get_ok (Jsonv.parse (Trace.export_json ()))) with
      | Ok st ->
          Alcotest.(check int) "one track" 1 st.Jsonv.tracks;
          Alcotest.(check bool) "events recorded" true (st.Jsonv.events > 0)
      | Error errs -> Alcotest.failf "invalid trace: %s" (String.concat "; " errs))

(* Tracing is an observer: the simulated clock must read identically
   with and without it. *)
let test_tracing_preserves_sim_time =
  traced (fun () ->
      let run ~traced =
        let clock, metrics, pmem, disk = mk_cache_env () in
        if traced then Trace.enable ();
        let cache =
          Cache.format ~config:{ Cache.default_config with ring_slots = 128 } ~pmem ~disk ~clock
            ~metrics
        in
        for c = 0 to 3 do
          commit_8 cache ~base:(c * 8)
        done;
        let ns = Clock.now_ns clock in
        if traced then Trace.disable ();
        ns
      in
      let off = run ~traced:false in
      let on = run ~traced:true in
      Alcotest.(check (float 0.0)) "identical simulated time" off on)

(* --- JSON parser + validator --------------------------------------------- *)

let test_jsonv_parse () =
  (match Jsonv.parse {| {"a": [1, 2.5, -3e2], "s": "q\"\nA", "t": true, "n": null} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc -> (
      (match Jsonv.member "a" doc with
      | Some (Jsonv.Arr [ Jsonv.Num a; Jsonv.Num b; Jsonv.Num c ]) ->
          Alcotest.(check (float 1e-9)) "int" 1.0 a;
          Alcotest.(check (float 1e-9)) "float" 2.5 b;
          Alcotest.(check (float 1e-9)) "exponent" (-300.0) c
      | _ -> Alcotest.fail "array member");
      match Jsonv.member "s" doc with
      | Some (Jsonv.Str s) -> Alcotest.(check string) "escapes" "q\"\nA" s
      | _ -> Alcotest.fail "string member"));
  List.iter
    (fun bad ->
      match Jsonv.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "tru"; "1 2"; "" ]

let test_jsonv_validator_rejects () =
  let bad ~name doc expect_sub =
    match Jsonv.validate_trace (Result.get_ok (Jsonv.parse doc)) with
    | Ok _ -> Alcotest.failf "%s: validated" name
    | Error errs ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: mentions %S in %s" name expect_sub (String.concat "; " errs))
          true
          (List.exists
             (fun e ->
               let n = String.length e and m = String.length expect_sub in
               let rec go i = i + m <= n && (String.sub e i m = expect_sub || go (i + 1)) in
               go 0)
             errs)
  in
  bad ~name:"not an object" {| [] |} "traceEvents";
  bad ~name:"unbalanced"
    {| {"traceEvents": [{"ph":"B","name":"x","pid":1,"tid":1,"ts":1}]} |}
    "unclosed";
  bad ~name:"non-monotonic"
    {| {"traceEvents": [
         {"ph":"B","name":"x","pid":1,"tid":1,"ts":5},
         {"ph":"E","name":"x","pid":1,"tid":1,"ts":3}]} |}
    "previous";
  bad ~name:"missing field" {| {"traceEvents": [{"ph":"B","pid":1,"tid":1,"ts":1}]} |} "name"

(* --- /proc renderer ------------------------------------------------------ *)

let test_procfs_render () =
  let s =
    Procfs.render
      [
        Procfs.section "cache" [ ("dirty_ratio", "0.5"); ("x", "1") ];
        Procfs.section "psan" [ ("violations", "0") ];
      ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "section headers" true (contains "[cache]" && contains "[psan]");
  Alcotest.(check bool) "key : value lines" true (contains "dirty_ratio : 0.5");
  Alcotest.(check bool) "keys aligned across sections" true (contains "violations  : 0")

(* --- naming convention over real workloads ------------------------------- *)

let test_naming_convention () =
  let module Workload = Tinca_workloads.Trace in
  let module Runner = Tinca_harness.Runner in
  let trace =
    Workload.synthesize ~seed:3 ~nblocks:512 ~ops:400 ~read_pct:0.5 ~zipf_theta:0.9 ~fsync_every:8
  in
  let check_stack ?(journaled = true) spec =
    let m =
      Runner.run_local ~spec ~journaled
        ~prealloc:(fun ops -> Workload.prealloc ~block_size:4096 trace ops)
        ~work:(fun ops -> Workload.run ~block_size:4096 trace ops)
        ()
    in
    let metrics = m.Runner.stack.Stacks.env.Stacks.metrics in
    List.iter
      (fun (name, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s counter %S follows the dotted convention" m.Runner.label name)
          true (Metrics.valid_name name))
      (Metrics.to_list metrics);
    List.iter
      (fun (name, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s histogram %S follows the dotted convention" m.Runner.label name)
          true (Metrics.valid_name name))
      (Metrics.hists metrics)
  in
  check_stack (fun env -> Stacks.tinca env);
  check_stack (fun env -> Stacks.classic ~journal_len:4096 env);
  Alcotest.(check bool) "rejects undotted" false (Metrics.valid_name "clflush");
  Alcotest.(check bool) "rejects uppercase" false (Metrics.valid_name "Pmem.clflush");
  Alcotest.(check bool) "rejects empty segment" false (Metrics.valid_name "pmem.");
  Alcotest.(check bool) "accepts multi-segment" true (Metrics.valid_name "tinca.commit.blocks")

let suite =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "nesting, durations, counter folding" `Quick test_nesting_and_folding;
        Alcotest.test_case "unbalanced begin/end handling" `Quick test_unbalanced;
        Alcotest.test_case "reset keeps track names" `Quick test_reset_keeps_tracks;
        Alcotest.test_case "disabled mode allocates nothing" `Quick test_disabled_zero_alloc;
        Alcotest.test_case "disabled mode records nothing" `Quick test_disabled_noops;
        Alcotest.test_case "pmem events land in spans" `Quick test_pmem_attribution;
      ] );
    ( "obs.acceptance",
      [
        Alcotest.test_case "traced 8-block commit meets fence budget" `Quick
          test_traced_commit_budget;
        Alcotest.test_case "tracing preserves simulated time" `Quick
          test_tracing_preserves_sim_time;
      ] );
    ( "obs.jsonv",
      [
        Alcotest.test_case "parser round-trips values, rejects garbage" `Quick test_jsonv_parse;
        Alcotest.test_case "trace validator rejects bad traces" `Quick
          test_jsonv_validator_rejects;
      ] );
    ( "obs.surface",
      [
        Alcotest.test_case "/proc renderer" `Quick test_procfs_render;
        Alcotest.test_case "metric names follow the dotted convention" `Quick
          test_naming_convention;
      ] );
  ]
