(* Aggregated test runner for the whole repository. *)
let () =
  Alcotest.run "tinca"
    (Test_util.suite @ Test_sim.suite @ Test_pmem.suite @ Test_cachelib.suite
   @ Test_blockdev.suite @ Test_tinca.suite @ Test_crash.suite @ Test_flashcache.suite @ Test_jbd2.suite @ Test_fs.suite @ Test_workloads.suite @ Test_blockdev.queue_suite @ Test_flashcache.cleaner_suite @ Test_tinca.flusher_suite
   @ Test_cachelib.policy_suite
   @ Test_cluster.suite @ Test_ubj.suite @ Test_harness.suite @ Test_trace.suite @ Test_stress.suite @ Test_fs.ordered_suite @ Test_sim.flush_instr_suite @ Test_model.suite @ Test_fs.sweep_suite @ Test_validation.suite @ Test_regression.suite @ Test_fixes.suite @ Test_fs.page_cache_suite @ Test_model.fs_model_suite @ Test_validation.shutdown_suite @ Test_psan.suite @ Test_budget.suite @ Test_obs.suite @ Test_facade.suite @ Test_shard.suite @ Test_spec.suite @ Test_lint.suite @ Test_flight.suite @ Test_page.suite)
