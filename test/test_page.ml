(* Commit-scheme ablation (ISSUE 10): the Commit_scheme interface and
   the COW paging engine behind it.

   - the logging scheme through the new interface is media- and
     cost-identical to driving Shard directly (digest, fence count and
     simulated time pinned at every tested transaction size, both
     pipelines, N=1 and N=4);
   - paging round-trips and survives recovery, with the scheme sniffed
     from the media magic;
   - scheme-aware stats: logging-only rows are absent (not zero) under
     paging and vice versa;
   - config: scheme spellings parse, validate rejects paging + group
     window and paging + write-through, the deprecated commit_pipeline
     shim still works, of_args funnels CLI arguments;
   - paging's fence budget: 2 sfences per single-shard commit of any
     size, 4 per multi-shard commit;
   - lockstep refinement of the paging engine at N=1 and N=4; a
     budgeted crash-space sweep at both; a planted torn table-entry
     swing is detected by the sweep, not trusted;
   - the cross-shard seal rolls a half-bumped multi-shard paging commit
     forward, and every crash point is all-or-nothing;
   - psan (with the paging region classes) is clean over a paging
     workload including recovery;
   - the flight recorder records under paging. *)

module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Shard = Tinca_core.Shard
module Paging = Tinca_core.Paging
module Psan = Tinca_checker.Psan
module Check = Tinca_checker.Crash_check
module Lockstep = Tinca_checker.Lockstep
open Tinca_sim

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env ?(pmem_bytes = 512 * 1024) ?(nblocks = 64) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks ~block_size:4096 in
  { pmem; disk; clock; metrics }

let payload v = Bytes.make 4096 v

let facade ?(nshards = 1) ?(scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg)
    ?(flight_slots = 0) ?(pmem_bytes = 512 * 1024) env =
  Tinca.ok_exn
    (Tinca.format
       ~config:
         {
           Tinca.Config.default with
           Tinca.Config.nvm_bytes = pmem_bytes;
           ring_slots = 128;
           nshards;
           commit_scheme = scheme;
           flight_slots;
         }
       ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)

let commit_blocks tc blocks v =
  let h = Tinca.init_txn tc in
  List.iter (fun b -> Tinca.ok_exn (Tinca.write h b (payload v))) blocks;
  Tinca.ok_exn (Tinca.commit h)

(* --- the logging scheme is the old pipeline, byte for byte --------------- *)

(* The same mixed-size commit stream (Exp_commit.measured_size, the
   stream every figure uses) through Shard directly and through the
   facade's Commit_scheme indirection: media digest, sfence count and
   simulated end time must all agree — the interface extraction cost
   nothing, at every transaction size, on both pipelines, sharded and
   not. *)
let test_media_cost_identity () =
  let universe = 48 in
  let run_direct ~pipeline ~nshards ~n =
    let env = mk_env () in
    let fc =
      match
        Tinca.Config.validate
          {
            Tinca.Config.default with
            Tinca.Config.nvm_bytes = 512 * 1024;
            ring_slots = 128;
            nshards;
            commit_scheme = Tinca.Config.Logging pipeline;
          }
      with
      | Ok c -> c
      | Error m -> Alcotest.fail m
    in
    let s =
      Shard.format ~nshards ~config:(Tinca.Config.to_cache_config fc) ~pmem:env.pmem
        ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
    in
    let next = ref 0 in
    for c = 0 to 11 do
      let h = Shard.Txn.init s in
      for _ = 1 to Tinca_harness.Exp_commit.measured_size ~n c do
        Shard.Txn.add h (!next mod universe) (payload (Char.chr (0x20 + (c land 0x5f))));
        incr next
      done;
      Shard.Txn.commit h
    done;
    (Pmem.media_digest env.pmem, Metrics.get env.metrics "pmem.sfence", Clock.now_ns env.clock)
  in
  let run_facade ~pipeline ~nshards ~n =
    let env = mk_env () in
    let tc = facade ~nshards ~scheme:(Tinca.Config.Logging pipeline) env in
    let next = ref 0 in
    for c = 0 to 11 do
      let h = Tinca.init_txn tc in
      for _ = 1 to Tinca_harness.Exp_commit.measured_size ~n c do
        Tinca.ok_exn (Tinca.write h (!next mod universe) (payload (Char.chr (0x20 + (c land 0x5f)))));
        incr next
      done;
      Tinca.ok_exn (Tinca.commit h)
    done;
    (Pmem.media_digest env.pmem, Metrics.get env.metrics "pmem.sfence", Clock.now_ns env.clock)
  in
  List.iter
    (fun pipeline ->
      List.iter
        (fun nshards ->
          List.iter
            (fun n ->
              let label =
                Printf.sprintf "%s N=%d n=%d"
                  (match pipeline with Tinca.Per_block -> "per-block" | Tinca.Batched -> "batched")
                  nshards n
              in
              let d1, sf1, ns1 = run_direct ~pipeline ~nshards ~n in
              let d2, sf2, ns2 = run_facade ~pipeline ~nshards ~n in
              Alcotest.(check bool) (label ^ ": identical media") true (Digest.equal d1 d2);
              Alcotest.(check int) (label ^ ": identical sfences") sf1 sf2;
              Alcotest.(check (float 0.0)) (label ^ ": identical sim time") ns1 ns2)
            [ 1; 2; 8 ])
        [ 1; 4 ])
    [ Tinca.Per_block; Tinca.Batched ]

(* --- paging round-trip, recovery, scheme sniffing ------------------------ *)

let test_paging_roundtrip () =
  let env = mk_env () in
  let tc = facade env in
  Alcotest.(check string) "scheme name" "paging" (Tinca.scheme_name tc);
  commit_blocks tc [ 0; 1; 2 ] 'a';
  commit_blocks tc [ 1; 3 ] 'b';
  let expect blk v =
    Alcotest.(check char)
      (Printf.sprintf "block %d" blk)
      v
      (Bytes.get (Tinca.ok_exn (Tinca.read tc blk)) 0)
  in
  expect 0 'a';
  expect 1 'b';
  expect 2 'a';
  expect 3 'b';
  (* An aborted transaction leaves no trace. *)
  let h = Tinca.init_txn tc in
  Tinca.ok_exn (Tinca.write h 0 (payload 'z'));
  Tinca.ok_exn (Tinca.abort h);
  expect 0 'a';
  (* Recovery sniffs the scheme from the media magic and rebuilds the
     same logical state. *)
  let recovered =
    Tinca.ok_exn
      (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  Alcotest.(check string) "recovered scheme" "paging" (Tinca.scheme_name recovered);
  Tinca.check_invariants recovered;
  List.iter
    (fun (blk, v) ->
      match Tinca.peek recovered blk with
      | Some data -> Alcotest.(check char) (Printf.sprintf "recovered block %d" blk) v (Bytes.get data 0)
      | None -> Alcotest.failf "block %d not cached after recovery" blk)
    [ (0, 'a'); (1, 'b'); (2, 'a'); (3, 'b') ]

(* --- scheme-aware stats: absence, not zero ------------------------------- *)

let test_stats_rows () =
  let env_l = mk_env () in
  let tc_l = facade ~scheme:(Tinca.Config.Logging Tinca.Batched) env_l in
  commit_blocks tc_l [ 0; 1 ] 'l';
  let kv_l = Tinca.stats_kv tc_l in
  List.iter
    (fun key -> Alcotest.(check bool) ("logging has " ^ key) true (List.mem_assoc key kv_l))
    [ "ring_high_water_max"; "group_batches" ];
  List.iter
    (fun key -> Alcotest.(check bool) ("logging lacks " ^ key) false (List.mem_assoc key kv_l))
    [ "table_swings"; "pool_frames"; "pool_occupancy_pct" ];
  let env_p = mk_env () in
  let tc_p = facade env_p in
  commit_blocks tc_p [ 0; 1 ] 'p';
  let kv_p = Tinca.stats_kv tc_p in
  List.iter
    (fun key -> Alcotest.(check bool) ("paging has " ^ key) true (List.mem_assoc key kv_p))
    [ "table_swings"; "pool_frames"; "pool_occupancy_pct"; "epoch_swings" ];
  List.iter
    (fun key -> Alcotest.(check bool) ("paging lacks " ^ key) false (List.mem_assoc key kv_p))
    [ "ring_high_water_max"; "role_switches"; "group_batches"; "group_pending" ];
  Alcotest.(check string) "paging scheme row" "paging" (List.assoc "scheme" kv_p);
  Alcotest.(check bool) "paging counted swings" true
    (int_of_string (List.assoc "table_swings" kv_p) >= 2);
  (* The logging-only escape hatches refuse on paging media, and the
     paging surface refuses on logging media — usage errors, not zeros. *)
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "stats raises under paging" true (raises (fun () -> Tinca.stats tc_p));
  Alcotest.(check bool) "layouts raises under paging" true (raises (fun () -> Tinca.layouts tc_p));
  Alcotest.(check bool) "peak_cow raises under paging" true
    (raises (fun () -> Tinca.peak_cow_blocks tc_p));
  Alcotest.(check bool) "page_layouts raises under logging" true
    (raises (fun () -> Tinca.page_layouts tc_l));
  (* Scheme-independent surfaces work on both. *)
  ignore (Tinca.write_hit_rate tc_p);
  ignore (Tinca.txn_size_histogram tc_p);
  ignore (Tinca.region_wear tc_p);
  Alcotest.(check bool) "page_layouts nonempty" true (Tinca.page_layouts tc_p <> [])

(* --- config: spellings, rejections, the deprecation shim ----------------- *)

let test_config_validation () =
  (match Tinca.Config.scheme_of_string "paging" with
  | Ok (Tinca.Config.Paging _) -> ()
  | _ -> Alcotest.fail "\"paging\" did not parse");
  (match Tinca.Config.scheme_of_string "per-block" with
  | Ok (Tinca.Config.Logging Tinca.Per_block) -> ()
  | _ -> Alcotest.fail "\"per-block\" did not parse");
  (match Tinca.Config.scheme_of_string "logging" with
  | Ok (Tinca.Config.Logging Tinca.Batched) -> ()
  | _ -> Alcotest.fail "\"logging\" did not parse");
  (match Tinca.Config.scheme_of_string "quantum" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus scheme accepted");
  let paging = Tinca.Config.Paging Tinca.Config.default_page_cfg in
  (* Paging has no group committer and is write-back only. *)
  (match
     Tinca.Config.validate
       { Tinca.Config.default with Tinca.Config.commit_scheme = paging; group_window_ns = 1000 }
   with
  | Error m ->
      let mentions needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "group rejection names the window" true (mentions "group_window_ns" m)
  | Ok _ -> Alcotest.fail "paging + group window validated");
  (match
     Tinca.Config.validate
       {
         Tinca.Config.default with
         Tinca.Config.commit_scheme = paging;
         write_policy = Tinca.Write_through;
       }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "paging + write-through validated");
  (* The deprecated commit_pipeline spelling still steers an untouched
     commit_scheme, and validate normalizes the two fields to agree. *)
  (match
     Tinca.Config.validate
       { Tinca.Config.default with Tinca.Config.commit_pipeline = Tinca.Per_block }
   with
  | Ok c -> (
      match Tinca.Config.effective_scheme c with
      | Tinca.Config.Logging Tinca.Per_block -> ()
      | _ -> Alcotest.fail "commit_pipeline shim ignored")
  | Error m -> Alcotest.fail m);
  (* An explicit commit_scheme wins over the deprecated field. *)
  (match
     Tinca.Config.validate
       {
         Tinca.Config.default with
         Tinca.Config.commit_scheme = paging;
         commit_pipeline = Tinca.Per_block;
       }
   with
  | Ok c -> (
      match Tinca.Config.effective_scheme c with
      | Tinca.Config.Paging _ -> ()
      | _ -> Alcotest.fail "explicit commit_scheme lost to the shim")
  | Error m -> Alcotest.fail m);
  (* The CLI funnel: parses, validates, rejects the same combinations. *)
  (match Tinca.Config.of_args ~scheme:"paging" ~shards:2 () with
  | Ok c -> (
      match Tinca.Config.effective_scheme c with
      | Tinca.Config.Paging _ -> Alcotest.(check int) "of_args shards" 2 c.Tinca.Config.nshards
      | _ -> Alcotest.fail "of_args scheme lost")
  | Error m -> Alcotest.fail m);
  (match Tinca.Config.of_args ~scheme:"paging" ~group_window:1000 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_args accepted paging + group window");
  match Tinca.Config.of_args ~scheme:"quantum" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_args accepted a bogus scheme"

(* --- the paging fence budget --------------------------------------------- *)

(* 2 sfences per single-shard commit of ANY size (stage fence + epoch
   swing), against the logging pipeline's 5; 4 for a multi-shard commit
   (stage, seal, epoch bumps, seal clear).  Measured in steady state so
   overwrites (entry re-swings) are on the path. *)
let test_paging_fence_budget () =
  let env = mk_env () in
  let tc = facade env in
  let blocks n = List.init n (fun i -> i) in
  commit_blocks tc (blocks 24) 'w';
  List.iter
    (fun n ->
      let sf0 = Metrics.get env.metrics "pmem.sfence" in
      commit_blocks tc (blocks n) 'x';
      Alcotest.(check int)
        (Printf.sprintf "%d-block single-shard commit" n)
        2
        (Metrics.get env.metrics "pmem.sfence" - sf0))
    [ 1; 4; 16 ];
  (* N=2: one block per shard. *)
  let env2 = mk_env () in
  let tc2 = facade ~nshards:2 env2 in
  let a = 0 in
  let b =
    match List.find_opt (fun b -> Shard.stripe ~nshards:2 b <> Shard.stripe ~nshards:2 a) (blocks 32) with
    | Some b -> b
    | None -> Alcotest.fail "no second-shard block found"
  in
  commit_blocks tc2 [ a; b ] 'w';
  let sf0 = Metrics.get env2.metrics "pmem.sfence" in
  commit_blocks tc2 [ a; b ] 'y';
  Alcotest.(check int) "multi-shard commit" 4 (Metrics.get env2.metrics "pmem.sfence" - sf0)

(* --- lockstep refinement and the crash-space sweep ----------------------- *)

let paging_geom nshards =
  {
    Lockstep.default_geometry with
    Lockstep.nshards;
    scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg;
  }

let test_lockstep_equiv_paging () =
  List.iter
    (fun nshards ->
      let g = paging_geom nshards in
      List.iter
        (fun seed ->
          let cmds = Lockstep.gen ~seed ~len:48 ~universe:g.Lockstep.universe in
          match Lockstep.run g cmds with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "paging N=%d seed %d diverged: %s" nshards seed
                (Format.asprintf "%a" Lockstep.pp_divergence d))
        [ 3; 11 ])
    [ 1; 4 ]

let crash_sweep nshards stride =
  let report =
    Check.explore
      {
        Check.default_config with
        Check.nshards;
        scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg;
        pmem_bytes = 512 * 1024;
        ncommits = 3;
        mask_cap = 16;
        stride;
      }
  in
  (match report.Check.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "paging crash sweep N=%d: %s" nshards
        (Format.asprintf "%a" Check.pp_violation v));
  Alcotest.(check bool) "sweep explored states" true (report.Check.states_checked > 0)

let test_paging_crash_sweep_n1 () = crash_sweep 1 4
let test_paging_crash_sweep_n4 () = crash_sweep 4 6

(* A torn 16 B indirection-table swing (first half durable alone) must
   be detected by the crash sweep: some crash-recovered state diverges
   from the spec when the fault is planted — recovery is not allowed to
   trust a half-swung entry. *)
let test_torn_swing_detected () =
  let g = paging_geom 1 in
  let caught =
    List.exists
      (fun seed ->
        let cmds = Lockstep.gen ~seed ~len:12 ~universe:g.Lockstep.universe in
        let r = Lockstep.crash_refine ~mutate:Lockstep.Torn_swing ~cap:16 ~stride:1 g cmds in
        r.Check.violations <> [])
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check bool) "planted Torn_swing caught by the sweep" true caught

(* --- cross-shard seal: roll-forward and all-or-nothing ------------------- *)

(* Crash a 2-shard paging commit at every pmem event with every line
   surviving: wherever the crash lands (between the epoch bumps, either
   side of the seal), recovery must leave BOTH blocks old or BOTH new —
   and at least one crash point must exercise the seal roll-forward. *)
let test_multi_shard_roll_forward () =
  let a = 0 in
  let b =
    match
      List.find_opt
        (fun b -> Shard.stripe ~nshards:2 b <> Shard.stripe ~nshards:2 a)
        (List.init 32 (fun i -> i + 1))
    with
    | Some b -> b
    | None -> Alcotest.fail "no second-shard block found"
  in
  let rolled = ref 0 in
  let k = ref 1 in
  let continue = ref true in
  while !continue do
    let env = mk_env ~pmem_bytes:(256 * 1024) () in
    let tc = facade ~nshards:2 ~pmem_bytes:(256 * 1024) env in
    commit_blocks tc [ a; b ] 'o';
    Pmem.set_crash_countdown env.pmem (Some !k);
    (match commit_blocks tc [ a; b ] 'n' with
    | () ->
        (* The commit completed before event k: the sweep is done. *)
        Pmem.set_crash_countdown env.pmem None;
        continue := false
    | exception Pmem.Crash_point ->
        Pmem.set_crash_countdown env.pmem None;
        Pmem.crash ~seed:1 ~survival:1.0 env.pmem;
        let recovered =
          Tinca.ok_exn
            (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
        in
        Tinca.check_invariants recovered;
        let va = Bytes.get (Tinca.ok_exn (Tinca.read recovered a)) 0 in
        let vb = Bytes.get (Tinca.ok_exn (Tinca.read recovered b)) 0 in
        if va <> vb then
          Alcotest.failf "crash@%d: torn multi-shard commit (block %d = %c, block %d = %c)" !k a
            va b vb;
        if not (va = 'o' || va = 'n') then
          Alcotest.failf "crash@%d: blocks carry neither old nor new value (%c)" !k va;
        (match List.assoc_opt "seal_roll_forwards" (Tinca.stats_kv recovered) with
        | Some n -> rolled := !rolled + int_of_string n
        | None -> Alcotest.fail "seal_roll_forwards row missing under paging");
        incr k);
    if !k > 500 then Alcotest.fail "commit never completed under the countdown sweep"
  done;
  Alcotest.(check bool) "some crash point rolled the sealed commit forward" true (!rolled > 0)

(* --- psan over a paging workload ----------------------------------------- *)

let test_psan_paging_clean () =
  let env = mk_env ~pmem_bytes:(1024 * 1024) () in
  let tc = facade ~nshards:2 ~pmem_bytes:(1024 * 1024) env in
  let san = Psan.attach ~page_layouts:(Tinca.page_layouts tc) env.pmem in
  for c = 0 to 23 do
    Psan.txn_begin san;
    commit_blocks tc [ c mod 48; (c + 17) mod 48; (c + 34) mod 48 ] (Char.chr (0x30 + (c land 15)));
    Psan.txn_end san
  done;
  let recovered =
    Tinca.ok_exn
      (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  Tinca.check_invariants recovered;
  Psan.detach san;
  (match Psan.violations san with
  | [] -> ()
  | v :: _ -> Alcotest.failf "psan: %s" (Format.asprintf "%a" Psan.pp_violation v));
  Alcotest.(check int) "no psan violations" 0 (Psan.violation_count san)

(* --- the flight recorder rides along ------------------------------------- *)

let test_flight_under_paging () =
  let env = mk_env () in
  let tc = facade ~flight_slots:64 env in
  commit_blocks tc [ 0; 1; 2 ] 'f';
  commit_blocks tc [ 1; 3 ] 'g';
  (match List.find_opt (fun (n, _, _) -> n = "flight") (Tinca.region_wear tc) with
  | Some (_, total, _) ->
      Alcotest.(check bool) "flight region written under paging" true (total > 0)
  | None -> Alcotest.fail "flight region row missing");
  (* The ring survives recovery and feeds the forensic scan. *)
  let recovered =
    Tinca.ok_exn
      (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  Tinca.check_invariants recovered;
  match Tinca.last_crash_report recovered with
  | Some _ -> ()
  | None -> Alcotest.fail "no dossier despite surviving flight records"

let suite =
  [
    ( "page",
      [
        Alcotest.test_case "logging scheme media+cost identical via Commit_scheme" `Quick
          test_media_cost_identity;
        Alcotest.test_case "paging round-trip + recovery" `Quick test_paging_roundtrip;
        Alcotest.test_case "scheme-aware stats rows" `Quick test_stats_rows;
        Alcotest.test_case "config spellings, rejections, shim" `Quick test_config_validation;
        Alcotest.test_case "paging fence budget (2 single-shard, 4 multi)" `Quick
          test_paging_fence_budget;
        Alcotest.test_case "lockstep refinement paging N=1/4" `Quick test_lockstep_equiv_paging;
        Alcotest.test_case "paging crash sweep clean at N=1" `Slow test_paging_crash_sweep_n1;
        Alcotest.test_case "paging crash sweep clean at N=4" `Slow test_paging_crash_sweep_n4;
        Alcotest.test_case "planted torn table swing detected" `Slow test_torn_swing_detected;
        Alcotest.test_case "cross-shard seal roll-forward, all-or-nothing" `Slow
          test_multi_shard_roll_forward;
        Alcotest.test_case "psan clean over paging workload" `Quick test_psan_paging_clean;
        Alcotest.test_case "flight recorder under paging" `Quick test_flight_under_paging;
      ] );
  ]
