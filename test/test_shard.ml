(* Sharded Tinca (ISSUE 5): the striping function's contract (stable,
   total, balanced under Zipf-drawn keys), N=1 byte-equivalence with the
   plain unsharded cache, multi-shard commit round-trips, and the
   cross-shard all-or-nothing guarantee under a systematic crash sweep
   of a two-shard commit — including crashes between the per-shard Head
   advances and on either side of the seal. *)

open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let pmem_bytes = 256 * 1024
let universe = 32

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:universe ~block_size:4096 in
  { pmem; disk; clock; metrics }

let config = { Cache.default_config with ring_slots = 64 }

let mk_shard ~nshards env =
  Shard.format ~nshards ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
    ~metrics:env.metrics

let payload v = Bytes.make 4096 v

(* --- striping: stable, total, balanced ----------------------------------- *)

let test_striping_properties () =
  (* Total (every block maps into [0, nshards)) and stable (pure
     function of the block number). *)
  List.iter
    (fun nshards ->
      for blk = 0 to 4095 do
        let s = Shard.stripe ~nshards blk in
        if s < 0 || s >= nshards then
          Alcotest.failf "stripe ~nshards:%d %d = %d out of range" nshards blk s;
        if s <> Shard.stripe ~nshards blk then
          Alcotest.failf "stripe ~nshards:%d %d unstable" nshards blk
      done)
    [ 1; 2; 3; 4; 8; 16 ];
  (* Degenerate case: one shard takes everything. *)
  for blk = 0 to 255 do
    Alcotest.(check int) "N=1 identity" 0 (Shard.stripe ~nshards:1 blk)
  done;
  (* Balanced: over the distinct keys of a Zipf-skewed draw (the hot-key
     shape a skewed workload actually produces), every shard holds
     within 10% of its fair share. *)
  let rng = Tinca_util.Rng.create 42 in
  let z = Tinca_util.Zipf.create ~n:100_000 ~theta:0.99 in
  let keys = Hashtbl.create 4096 in
  for _ = 1 to 50_000 do
    Hashtbl.replace keys (Tinca_util.Zipf.sample z rng) ()
  done;
  List.iter
    (fun nshards ->
      let counts = Array.make nshards 0 in
      Hashtbl.iter (fun k () -> counts.(Shard.stripe ~nshards k) <- counts.(Shard.stripe ~nshards k) + 1) keys;
      let fair = float_of_int (Hashtbl.length keys) /. float_of_int nshards in
      Array.iteri
        (fun i c ->
          if Float.abs (float_of_int c -. fair) > 0.10 *. fair then
            Alcotest.failf "N=%d shard %d holds %d of %d distinct keys (fair %.0f +-10%%)"
              nshards i c (Hashtbl.length keys) fair)
        counts)
    [ 2; 4; 8 ]

(* --- N=1: byte-identical media and cost to the unsharded cache ---------- *)

let txns =
  [
    [ (0, 'a'); (5, 'b') ];
    [ (1, 'c') ];
    [ (2, 'd'); (9, 'e'); (17, 'f') ];
    [ (0, 'g'); (31, 'h'); (12, 'i'); (3, 'j') ];
  ]

let test_n1_equivalence () =
  let run_plain () =
    let env = mk_env () in
    let cache =
      Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
    in
    List.iter
      (fun txn ->
        let h = Cache.Txn.init cache in
        List.iter (fun (b, v) -> Cache.Txn.add h b (payload v)) txn;
        Cache.Txn.commit h)
      txns;
    ignore (Cache.read cache 5);
    env
  in
  let run_sharded () =
    let env = mk_env () in
    let s = mk_shard ~nshards:1 env in
    List.iter
      (fun txn ->
        let h = Shard.Txn.init s in
        List.iter (fun (b, v) -> Shard.Txn.add h b (payload v)) txn;
        Shard.Txn.commit h)
      txns;
    ignore (Shard.read s 5);
    env
  in
  let a = run_plain () and b = run_sharded () in
  Alcotest.(check bool) "identical media" true (Pmem.media_digest a.pmem = Pmem.media_digest b.pmem);
  Alcotest.(check int) "identical sfences" (Metrics.get a.metrics "pmem.sfence")
    (Metrics.get b.metrics "pmem.sfence");
  Alcotest.(check (float 0.0)) "identical simulated time" (Clock.now_ns a.clock)
    (Clock.now_ns b.clock)

(* --- multi-shard commits ------------------------------------------------- *)

let test_multi_shard_commit () =
  let env = mk_env () in
  let s = mk_shard ~nshards:4 env in
  let h = Shard.Txn.init s in
  let shards_touched = Hashtbl.create 4 in
  for b = 0 to 15 do
    Shard.Txn.add h b (payload (Char.chr (Char.code 'A' + b)));
    Hashtbl.replace shards_touched (Shard.stripe ~nshards:4 b) ()
  done;
  Alcotest.(check bool) "blocks 0..15 stripe to several shards" true
    (Hashtbl.length shards_touched > 1);
  Shard.Txn.commit h;
  Shard.check_invariants s;
  for b = 0 to 15 do
    Alcotest.(check char) (Printf.sprintf "block %d" b)
      (Char.chr (Char.code 'A' + b))
      (Bytes.get (Shard.read s b) 0)
  done;
  let st = Shard.stats s in
  Alcotest.(check int) "one multi-shard commit" 1 st.Shard.multi_commits;
  Alcotest.(check int) "one seal issued" 1 st.Shard.seals;
  Alcotest.(check int) "nshards" 4 st.Shard.nshards;
  (* The seal retired, so a clean re-attach finds the same state. *)
  let s2 =
    Shard.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  in
  Shard.check_invariants s2;
  Alcotest.(check int) "recovered shard count" 4 (Shard.nshards s2);
  for b = 0 to 15 do
    Alcotest.(check char) (Printf.sprintf "recovered block %d" b)
      (Char.chr (Char.code 'A' + b))
      (Bytes.get (Shard.read s2 b) 0)
  done

(* --- crash sweep of one two-shard commit --------------------------------- *)

(* Two blocks that stripe to different shards at N=2. *)
let xshard_pair () =
  let a = 0 in
  let sa = Shard.stripe ~nshards:2 a in
  let b = ref 1 in
  while Shard.stripe ~nshards:2 !b = sa do incr b done;
  (a, !b)

(* Baseline: both blocks committed as '1'.  Then a second transaction
   rewrites both as '2' with a crash countdown armed; every pmem event
   of that commit is a crash point, so the sweep necessarily covers the
   window between the two per-shard Head advances and both sides of the
   seal write.  After recovery the two blocks must agree — '1'/'1'
   (rolled back, no seal) or '2'/'2' (rolled forward from the seal) —
   and the seal must have retired (check_invariants). *)
let xtorture ~crash_at ~survival =
  let env = mk_env () in
  let s = mk_shard ~nshards:2 env in
  let a, b = xshard_pair () in
  let h = Shard.Txn.init s in
  Shard.Txn.add h a (payload '1');
  Shard.Txn.add h b (payload '1');
  Shard.Txn.commit h;
  Pmem.set_crash_countdown env.pmem (Some crash_at);
  let h = Shard.Txn.init s in
  match
    Shard.Txn.add h a (payload '2');
    Shard.Txn.add h b (payload '2');
    Shard.Txn.commit h
  with
  | () ->
      Pmem.set_crash_countdown env.pmem None;
      `Completed
  | exception Pmem.Crash_point ->
      Pmem.crash ~seed:((crash_at * 31) + int_of_float (survival *. 4.0)) ~survival env.pmem;
      let s2 =
        Shard.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
      in
      Shard.check_invariants s2;
      let va = Bytes.get (Shard.read s2 a) 0 and vb = Bytes.get (Shard.read s2 b) 0 in
      if va <> vb then
        Alcotest.failf
          "crash at event %d (survival %.2f): partially committed multi-shard transaction \
           (block %d = %c, block %d = %c)"
          crash_at survival a va b vb;
      if va <> '1' && va <> '2' then
        Alcotest.failf "crash at event %d: recovered garbage %c" crash_at va;
      `Crashed (va = '2')

let xshard_span () =
  let env = mk_env () in
  let s = mk_shard ~nshards:2 env in
  let a, b = xshard_pair () in
  let h = Shard.Txn.init s in
  Shard.Txn.add h a (payload '1');
  Shard.Txn.add h b (payload '1');
  Shard.Txn.commit h;
  let before = Pmem.event_count env.pmem in
  let h = Shard.Txn.init s in
  Shard.Txn.add h a (payload '2');
  Shard.Txn.add h b (payload '2');
  Shard.Txn.commit h;
  Pmem.event_count env.pmem - before

let test_xshard_crash_sweep () =
  let span = xshard_span () in
  let rolled_forward = ref 0 and rolled_back = ref 0 in
  List.iter
    (fun survival ->
      for crash_at = 1 to span do
        match xtorture ~crash_at ~survival with
        | `Completed ->
            Alcotest.failf "countdown %d did not fire within span %d" crash_at span
        | `Crashed true -> incr rolled_forward
        | `Crashed false -> incr rolled_back
      done)
    [ 0.0; 0.5; 1.0 ];
  (* Both recovery directions must actually occur in the sweep: rollback
     (crash before the seal, incl. between the two Head advances) and
     roll-forward (seal durable, finalize unfinished). *)
  Alcotest.(check bool) "some crashes rolled back" true (!rolled_back > 0);
  Alcotest.(check bool) "some crashes rolled forward" true (!rolled_forward > 0)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "striping: stable, total, balanced" `Quick test_striping_properties;
        Alcotest.test_case "N=1 media and cost equal the plain cache" `Quick test_n1_equivalence;
        Alcotest.test_case "multi-shard commit round-trip" `Quick test_multi_shard_commit;
        Alcotest.test_case "cross-shard all-or-nothing crash sweep" `Slow test_xshard_crash_sweep;
      ] );
  ]
