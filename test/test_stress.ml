(* Stress and integration tests beyond the per-module suites: long-run
   ring wraparound, interleaved transaction handles, Classic end-to-end
   crash sweeps, cluster determinism, UBJ/Tinca cross-checks. *)
open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs

let block c = Bytes.make 4096 c

let mk_cache ?(pmem_bytes = 256 * 1024) ?(ring_slots = 16) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:512 ~block_size:4096 in
  let config = { Cache.default_config with ring_slots } in
  (Cache.format ~config ~pmem ~disk ~clock ~metrics, pmem, disk, clock, metrics)

let test_ring_wraps_many_times () =
  (* Thousands of commits through a 16-slot ring: the monotonic pointers
     must wrap cleanly and recovery must still work at any quiescent
     point. *)
  let cache, pmem, disk, clock, metrics = mk_cache () in
  let rng = Tinca_util.Rng.create 3 in
  for i = 0 to 2_000 do
    let h = Cache.Txn.init cache in
    let n = 1 + Tinca_util.Rng.int rng 4 in
    for j = 0 to n - 1 do
      Cache.Txn.add h (((i * 7) + j) mod 128) (block (Char.chr (33 + (i mod 90))))
    done;
    Cache.Txn.commit h
  done;
  Cache.check_invariants cache;
  Pmem.crash ~seed:1 ~survival:0.5 pmem;
  let r = Cache.recover ~pmem ~disk ~clock ~metrics () in
  Cache.check_invariants r

let test_interleaved_handles () =
  (* Multiple running transactions staged concurrently; commits are
     serialized but staging interleaves (the paper's "running
     transactions" are plural). *)
  let cache, _, _, _, _ = mk_cache () in
  let h1 = Cache.Txn.init cache in
  let h2 = Cache.Txn.init cache in
  Cache.Txn.add h1 1 (block 'a');
  Cache.Txn.add h2 2 (block 'b');
  Cache.Txn.add h1 3 (block 'c');
  Cache.Txn.add h2 1 (block 'd');
  (* h2 commits first: its version of block 1 lands first. *)
  Cache.Txn.commit h2;
  Alcotest.(check char) "h2's block 1" 'd' (Bytes.get (Cache.read cache 1) 0);
  Cache.Txn.commit h1;
  Alcotest.(check char) "h1 overwrote block 1" 'a' (Bytes.get (Cache.read cache 1) 0);
  Alcotest.(check char) "h2's block 2" 'b' (Bytes.get (Cache.read cache 2) 0);
  Alcotest.(check char) "h1's block 3" 'c' (Bytes.get (Cache.read cache 3) 0);
  Cache.check_invariants cache

let test_abort_interleaved () =
  let cache, _, _, _, _ = mk_cache () in
  Cache.write_direct cache 5 (block 'o');
  let keep = Cache.Txn.init cache in
  let drop = Cache.Txn.init cache in
  Cache.Txn.add keep 6 (block 'k');
  Cache.Txn.add drop 5 (block 'X');
  Cache.Txn.abort drop;
  Cache.Txn.commit keep;
  Alcotest.(check char) "aborted txn invisible" 'o' (Bytes.get (Cache.read cache 5) 0);
  Alcotest.(check char) "committed txn visible" 'k' (Bytes.get (Cache.read cache 6) 0);
  Cache.check_invariants cache

(* Classic stack systematic crash sweep under survival 1.0 (process-kill
   semantics: all issued stores drain to the NVM).  The Classic design
   only guarantees recovery when its block writes complete — Flashcache
   metadata blocks are not crash-atomic, which is exactly the paper's
   criticism — so the all-survive policy is the regime where journal
   replay must restore every fsynced round. *)
let test_classic_crash_sweep_survival_one () =
  let fs_config = { Fs.default_config with ninodes = 128; journal_len = 256 } in
  let run_once crash_at =
    let env = Stacks.make_env ~nvm_bytes:(4 * 1024 * 1024) ~disk_blocks:16384 () in
    let stack = Stacks.classic ~journal_len:fs_config.Fs.journal_len env in
    let fs = Fs.format ~config:fs_config stack.Stacks.backend in
    let synced = ref 0 in
    Pmem.set_crash_countdown env.Stacks.pmem (Some crash_at);
    (try
       for round = 0 to 15 do
         let name = Printf.sprintf "r%02d" round in
         Fs.create fs name;
         Fs.pwrite fs name ~off:0 (Bytes.make 8192 (Char.chr (65 + round)));
         Fs.fsync fs;
         synced := round + 1
       done;
       Pmem.set_crash_countdown env.Stacks.pmem None
     with Pmem.Crash_point -> ());
    Pmem.crash ~seed:crash_at ~survival:1.0 env.Stacks.pmem;
    let stack2 = Stacks.classic_recover ~journal_len:fs_config.Fs.journal_len env in
    let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
    Fs.fsck fs2;
    for round = 0 to !synced - 1 do
      let name = Printf.sprintf "r%02d" round in
      if not (Fs.exists fs2 name) then Alcotest.failf "crash@%d: %s lost" crash_at name;
      let c = Bytes.get (Fs.pread fs2 name ~off:0 ~len:1) 0 in
      if c <> Char.chr (65 + round) then Alcotest.failf "crash@%d: %s corrupt" crash_at name
    done
  in
  (* Sample crash points across the whole run. *)
  let points = List.init 30 (fun i -> 500 + (i * 1357)) in
  List.iter run_once points

let test_cluster_determinism () =
  let module Node = Tinca_cluster.Node in
  let module Hdfs = Tinca_cluster.Hdfs in
  let module Teragen = Tinca_workloads.Teragen in
  let run () =
    let nodes =
      Array.init 4 (fun id ->
          Node.make ~id
            ~config:{ Node.default_config with nvm_bytes = 4 * 1024 * 1024; disk_blocks = 16384 }
            Node.Tinca_node)
    in
    let hdfs = Hdfs.create ~replicas:2 nodes in
    let cfg = { Teragen.default with total_bytes = 4 * 1024 * 1024; chunk_bytes = 1 lsl 19 } in
    ignore (Teragen.run cfg (Hdfs.ops hdfs));
    Hdfs.execution_ns hdfs
  in
  Alcotest.(check (float 0.0)) "bit-identical execution time" (run ()) (run ())

let test_large_txn_spanning_descriptor_limit_through_fs () =
  (* An FS transaction of >509 blocks forces JBD2 to emit multiple
     descriptor blocks; end-to-end content must survive. *)
  let fs_config =
    { Fs.default_config with ninodes = 64; journal_len = 2048; max_dirty_blocks = 2000 }
  in
  let env = Stacks.make_env ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:16384 () in
  let stack = Stacks.classic ~journal_len:fs_config.Fs.journal_len env in
  let fs = Fs.format ~config:fs_config stack.Stacks.backend in
  Fs.create fs "wide";
  Fs.pwrite fs "wide" ~off:0 (Bytes.make (600 * 4096) 'W');
  Fs.fsync fs;
  Alcotest.(check char) "tail intact" 'W'
    (Bytes.get (Fs.pread fs "wide" ~off:((600 * 4096) - 1) ~len:1) 0);
  Fs.fsck fs

let test_pmem_wear_histogram () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:4096 () in
  for _ = 1 to 5 do
    Pmem.write pmem ~off:0 (Bytes.make 64 'x');
    Pmem.persist pmem ~off:0 ~len:64
  done;
  let h = Pmem.wear_histogram pmem in
  Alcotest.(check int) "one bucket per line" 64 (Tinca_util.Histogram.count h);
  Alcotest.(check (float 1e-9)) "max is the hot line" 5.0 (Tinca_util.Histogram.max_value h)

let suite =
  [
    ( "stress",
      [
        Alcotest.test_case "ring wraps 2000 txns" `Slow test_ring_wraps_many_times;
        Alcotest.test_case "interleaved handles" `Quick test_interleaved_handles;
        Alcotest.test_case "abort interleaved" `Quick test_abort_interleaved;
        Alcotest.test_case "classic crash sweep (survival 1.0)" `Slow
          test_classic_crash_sweep_survival_one;
        Alcotest.test_case "cluster determinism" `Quick test_cluster_determinism;
        Alcotest.test_case "multi-descriptor txn via fs" `Quick
          test_large_txn_spanning_descriptor_limit_through_fs;
        Alcotest.test_case "pmem wear histogram" `Quick test_pmem_wear_histogram;
      ] );
  ]
