(* Persistence-budget pins for the fence-coalesced group commit.

   The staged pipeline (Cache §4.4, stages A–D) must keep the fence count
   of a commit CONSTANT in the transaction size: stage A (all COW data +
   entry lines, one fence), stage B (all ring slots, one fence; Head, one
   persist), the batched role switch (one fence) and the Tail persist —
   5 fences for any write-back commit, 6 with the write-through tail.
   These tests pin the budget so a fence regression fails loudly, pin
   the batched rollback of a mid-allocation failure (the generalization
   of the COW data-block leak), and cover the new Pmem/Ring batch
   primitives directly. *)

module Cache = Tinca_core.Cache
module Layout = Tinca_core.Layout
module Ring = Tinca_core.Ring
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
open Tinca_sim

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env ?(pmem_bytes = 160 * 1024) ?(nblocks = 256) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks ~block_size:4096 in
  { pmem; disk; clock; metrics }

let mk_cache ?(config = { Cache.default_config with ring_slots = 128 }) env =
  Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics

let commit_n cache n ~base =
  let h = Cache.Txn.init cache in
  for b = 0 to n - 1 do
    Cache.Txn.add h (base + b) (Bytes.make 4096 'w')
  done;
  Cache.Txn.commit h

let sfences env = Metrics.get env.metrics "pmem.sfence"
let writebacks env = Metrics.get env.metrics "pmem.clflush_writebacks"

(* An n-block commit issues O(1) sfences: the same count for 1, 8 and 64
   blocks, and at most 6.  A 1 MB device (~240 data blocks) keeps all
   three sizes free of evictions, so the budget is exactly the pipeline's
   own fences. *)
let test_commit_fence_budget () =
  let budgets =
    List.map
      (fun n ->
        let env = mk_env ~pmem_bytes:(1024 * 1024) () in
        let cache = mk_cache env in
        let before = sfences env in
        commit_n cache n ~base:0;
        let miss_commit = sfences env - before in
        (* Re-writing the same blocks (all COW write hits, with prev
           reclamation) must stay within the same budget. *)
        let before = sfences env in
        commit_n cache n ~base:0;
        let hit_commit = sfences env - before in
        Alcotest.(check bool)
          (Printf.sprintf "%d-block miss commit: %d sfences <= 6" n miss_commit)
          true (miss_commit <= 6);
        Alcotest.(check bool)
          (Printf.sprintf "%d-block hit commit: %d sfences <= 6" n hit_commit)
          true (hit_commit <= 6);
        Cache.check_invariants cache;
        (miss_commit, hit_commit))
      [ 1; 8; 64 ]
  in
  match budgets with
  | (m1, h1) :: rest ->
      List.iter
        (fun (m, h) ->
          Alcotest.(check int) "miss-commit fences independent of txn size" m1 m;
          Alcotest.(check int) "hit-commit fences independent of txn size" h1 h)
        rest
  | [] -> assert false

(* The write-through tail is batched too: one extra fence, not one per
   block. *)
let test_commit_fence_budget_write_through () =
  let env = mk_env ~pmem_bytes:(1024 * 1024) () in
  let cache =
    mk_cache
      ~config:{ Cache.default_config with ring_slots = 128; mode = Cache.Write_through }
      env
  in
  let before = sfences env in
  commit_n cache 8 ~base:0;
  let fences = sfences env - before in
  Alcotest.(check bool)
    (Printf.sprintf "8-block write-through commit: %d sfences <= 6" fences)
    true (fences <= 6)

(* Flush write-backs per commit stay proportional to the data actually
   written: 64 lines per 4 KB block plus a small metadata tail (entry
   lines twice — log swing and role switch — ring slot lines, Head and
   Tail), with nothing flushed twice within a stage. *)
let test_commit_writeback_budget () =
  List.iter
    (fun n ->
      let env = mk_env ~pmem_bytes:(1024 * 1024) () in
      let cache = mk_cache env in
      let before = writebacks env in
      commit_n cache n ~base:0;
      let wb = writebacks env - before in
      let data = 64 * n in
      Alcotest.(check bool)
        (Printf.sprintf "%d-block commit: %d write-backs in [%d, %d]" n wb data
           (data + (2 * n) + 8))
        true
        (wb >= data && wb <= data + (2 * n) + 8))
    [ 1; 8; 64 ]

(* The ablation baseline really is per-block: the same 8-block commit
   under the Per_block pipeline pays a fence bill that grows with n
   (~4n + 2), so the budget assertion above is measuring the batching. *)
let test_per_block_baseline_exceeds_budget () =
  let env = mk_env ~pmem_bytes:(1024 * 1024) () in
  let cache =
    mk_cache
      ~config:{ Cache.default_config with ring_slots = 128; commit_pipeline = Cache.Per_block }
      env
  in
  let before = sfences env in
  commit_n cache 8 ~base:0;
  let fences = sfences env - before in
  Alcotest.(check bool)
    (Printf.sprintf "per-block 8-block commit: %d sfences > 6" fences)
    true (fences > 6);
  Cache.check_invariants cache

(* [flush_all] marks every written-back block clean under one batched
   entry update: one fence however many blocks were dirty. *)
let test_flush_all_single_fence () =
  let env = mk_env ~pmem_bytes:(1024 * 1024) () in
  let cache = mk_cache env in
  for b = 0 to 5 do
    commit_n cache 1 ~base:b
  done;
  let before = sfences env in
  Cache.flush_all cache;
  Alcotest.(check int) "flush_all of 6 dirty blocks is one fence" 1 (sfences env - before);
  (* Idempotent second pass: nothing dirty, nothing fenced. *)
  let before = sfences env in
  Cache.flush_all cache;
  Alcotest.(check int) "clean flush_all fences nothing" 0 (sfences env - before)

(* Regression for the commit-path allocation leak: when the group
   commit's allocation pass fails midway (replacement out of victims),
   every NVM data block AND entry slot allocated by the pass — including
   COW blocks that never reached the index, which revocation cannot see
   — must return to the free pools.  Pre-fix, the leaked references made
   [check_invariants] fail on the free-monitor accounting.

   Setup: fill the cache completely with clean blocks, then stage a
   transaction of 4 misses followed by every cached block as a hit.
   Admission control would reject it, so drive it through
   [commit_prefix]: pass 1 pins all hits, the misses consume the only 4
   evictable victims (1 data block + 1 entry each), and the first hit
   allocation runs out of victims with 4 data blocks + 4 entries already
   allocated. *)
let test_group_alloc_rollback () =
  let env = mk_env ~nblocks:128 () in
  let cache = mk_cache ~config:{ Cache.default_config with ring_slots = 64 } env in
  (* Fill the cache: read distinct blocks until the data pool is empty. *)
  let cached = ref [] in
  let next = ref 0 in
  while Cache.free_blocks cache > 0 do
    ignore (Cache.read cache !next);
    cached := !next :: !cached;
    incr next
  done;
  let all_cached = List.rev !cached in
  let capacity = List.length all_cached in
  Alcotest.(check bool) "cache filled" true (capacity > 8);
  let evictable = 4 in
  let hits = List.filteri (fun i _ -> i < capacity - evictable) all_cached in
  let h = Cache.Txn.init cache in
  (* Misses first (insertion order = commit order), then the hits. *)
  for m = 0 to evictable - 1 do
    Cache.Txn.add h (!next + m) (Bytes.make 4096 'm')
  done;
  List.iter (fun b -> Cache.Txn.add h b (Bytes.make 4096 'h')) hits;
  let evictions_before = Metrics.get env.metrics "tinca.evictions" in
  Alcotest.check_raises "allocation pass exhausts replacement" Cache.Cache_exhausted
    (fun () -> Cache.Txn.commit_prefix h (Cache.Txn.block_count h));
  Cache.Txn.abort h;
  (* The four evictions stand (they completed); everything the failed
     pass allocated was returned, so the free pool holds exactly the
     evicted blocks and the full audit passes. *)
  Alcotest.(check int) "evictions performed" (evictions_before + evictable)
    (Metrics.get env.metrics "tinca.evictions");
  Alcotest.(check int) "pass-1 allocations all returned" evictable (Cache.free_blocks cache);
  Alcotest.(check int) "cache population consistent" (capacity - evictable)
    (Cache.cached_blocks cache);
  Cache.check_invariants cache;
  (* No staged content leaked into the cache, and it still commits. *)
  List.iter
    (fun b ->
      match Cache.peek cache b with
      | Some data -> Alcotest.(check char) "hit content untouched" '\000' (Bytes.get data 0)
      | None -> ())
    hits;
  Cache.write_direct cache 0 (Bytes.make 4096 'z');
  Cache.check_invariants cache

(* --- Ring.record_batch / publish ---------------------------------------- *)

let mk_ring ?(ring_slots = 8) () =
  let env = mk_env ~pmem_bytes:(64 * 1024) () in
  let layout = Layout.compute ~pmem_bytes:(64 * 1024) ~block_size:4096 ~ring_slots in
  let ring = Ring.attach ~pmem:env.pmem ~layout in
  Ring.format ring;
  (env, ring)

let test_ring_batch_staged_invisible () =
  let env, ring = mk_ring () in
  Ring.record_batch ring [ 11; 12; 13 ];
  (* Slots are durable but unpublished: invisible to the recovery scan. *)
  Alcotest.(check (list int)) "nothing pending before publish" [] (Ring.pending_blknos ring);
  Alcotest.(check int) "head not advanced" 0 (Ring.head ring);
  Pmem.crash ~seed:3 ~survival:0.0 env.pmem;
  Ring.reload ring;
  Alcotest.(check int) "crash before publish: ring quiescent" (Ring.tail ring) (Ring.head ring);
  Alcotest.(check (list int)) "crash before publish: nothing to revoke" []
    (Ring.pending_blknos ring)

let test_ring_batch_publish () =
  let _env, ring = mk_ring () in
  Ring.record_batch ring [ 11; 12; 13 ];
  Ring.publish ring 3;
  Alcotest.(check (list int)) "published batch pending, oldest first" [ 11; 12; 13 ]
    (Ring.pending_blknos ring);
  Alcotest.(check int) "in flight" 3 (Ring.in_flight ring);
  Ring.commit_point ring;
  Alcotest.(check (list int)) "quiescent after commit point" [] (Ring.pending_blknos ring)

let test_ring_batch_wraparound () =
  let _env, ring = mk_ring ~ring_slots:8 () in
  (* Advance the counters near the slot-array end, then batch across it. *)
  for b = 1 to 6 do
    Ring.record ring b
  done;
  Ring.commit_point ring;
  Ring.record_batch ring [ 21; 22; 23; 24 ];
  Ring.publish ring 4;
  Alcotest.(check (list int)) "batch wraps the slot array" [ 21; 22; 23; 24 ]
    (Ring.pending_blknos ring);
  Ring.commit_point ring

let test_ring_batch_overflow_rejected () =
  let _env, ring = mk_ring ~ring_slots:8 () in
  Alcotest.(check bool) "oversized batch rejected" true
    (try
       Ring.record_batch ring [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad publish count rejected" true
    (try
       Ring.publish ring (-1);
       false
     with Invalid_argument _ -> true);
  Ring.publish ring 0 (* no-op *);
  Alcotest.(check int) "head untouched" 0 (Ring.head ring)

(* One batched record of n slots fences once; n singleton records fence
   2n times (slot persist + Head persist each). *)
let test_ring_batch_fence_economy () =
  let env, ring = mk_ring ~ring_slots:64 () in
  let before = sfences env in
  Ring.record_batch ring [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Ring.publish ring 8;
  let batched = sfences env - before in
  Ring.commit_point ring;
  let before = sfences env in
  for b = 11 to 18 do
    Ring.record ring b
  done;
  let per_slot = sfences env - before in
  Alcotest.(check int) "batched record+publish is two fences" 2 batched;
  Alcotest.(check int) "per-slot record is two fences per slot" 16 per_slot

(* --- Pmem.flush_lines / writev ------------------------------------------ *)

let test_flush_lines_semantics () =
  let env = mk_env ~pmem_bytes:(64 * 1024) () in
  let p = env.pmem in
  Pmem.write p ~off:(1 * 64) (Bytes.make 64 'a');
  Pmem.write p ~off:(3 * 64) (Bytes.make 64 'b');
  let flushes = Metrics.get env.metrics "pmem.clflush" in
  let wb = Metrics.get env.metrics "pmem.clflush_writebacks" in
  (* Duplicates collapse: three requests, two issued flushes. *)
  Pmem.flush_lines p [ 3; 1; 1 ];
  Alcotest.(check int) "deduplicated issue" (flushes + 2) (Metrics.get env.metrics "pmem.clflush");
  Alcotest.(check int) "both write-backs started" (wb + 2)
    (Metrics.get env.metrics "pmem.clflush_writebacks");
  Pmem.sfence p;
  Pmem.crash ~seed:5 ~survival:0.0 p;
  Alcotest.(check char) "line 1 durable" 'a' (Bytes.get (Pmem.read p ~off:(1 * 64) ~len:1) 0);
  Alcotest.(check char) "line 3 durable" 'b' (Bytes.get (Pmem.read p ~off:(3 * 64) ~len:1) 0)

let test_flush_lines_bounds () =
  let env = mk_env ~pmem_bytes:(64 * 1024) () in
  let flushes = Metrics.get env.metrics "pmem.clflush" in
  Alcotest.(check bool) "out-of-bounds line rejected" true
    (try
       Pmem.flush_lines env.pmem [ 0; 64 * 1024 / 64 ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "nothing issued" flushes (Metrics.get env.metrics "pmem.clflush")

(* The point of the batch API: under a pipelined flush instruction, one
   scatter-gather burst is cheaper than the same lines flushed through
   separate serialized calls; under classic clflush the model charges
   identically (every line pays the full instruction latency). *)
let test_flush_lines_pipelining () =
  let cost flush_instr ~batched =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let p = Pmem.create ~flush_instr ~clock ~metrics ~tech:Latency.Nvdimm ~size:4096 () in
    for l = 0 to 7 do
      Pmem.write p ~off:(l * 64) (Bytes.make 64 'x')
    done;
    let t0 = Clock.now_ns clock in
    if batched then Pmem.flush_lines p [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    else
      for l = 0 to 7 do
        Pmem.clflush p ~off:(l * 64) ~len:64
      done;
    Clock.now_ns clock -. t0
  in
  Alcotest.(check bool) "clwb batch beats serialized calls" true
    (cost Latency.Clwb ~batched:true < cost Latency.Clwb ~batched:false);
  Alcotest.(check bool) "clflushopt batch beats serialized calls" true
    (cost Latency.Clflushopt ~batched:true < cost Latency.Clflushopt ~batched:false);
  Alcotest.(check (float 0.001)) "classic clflush gains nothing from batching"
    (cost Latency.Clflush ~batched:false)
    (cost Latency.Clflush ~batched:true)

let test_writev_scatter () =
  let env = mk_env ~pmem_bytes:(64 * 1024) () in
  let p = env.pmem in
  Pmem.writev p [ (0, Bytes.of_string "alpha"); (4096, Bytes.of_string "beta") ];
  Alcotest.(check string) "chunk 1" "alpha" (Bytes.to_string (Pmem.read p ~off:0 ~len:5));
  Alcotest.(check string) "chunk 2" "beta" (Bytes.to_string (Pmem.read p ~off:4096 ~len:4))

(* --- Async group commit (ISSUE 8) ---------------------------------------- *)

module Mq_driver = Tinca_harness.Mq_driver

let mk_facade ~window () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(8 * 1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let config =
    {
      Tinca.Config.default with
      Tinca.Config.nvm_bytes = 8 * 1024 * 1024;
      ring_slots = 1024;
      group_window_ns = window;
    }
  in
  (clock, metrics, Tinca.ok_exn (Tinca.format ~config ~pmem ~disk ~clock ~metrics))

let run_group ~window ~streams =
  let clock, metrics, tc = mk_facade ~window () in
  let cfg =
    {
      Mq_driver.default with
      Mq_driver.streams;
      txns_per_stream = 16;
      txn_blocks = 2;
      universe = 2048;
      async = true;
      mixed_sizes = true;
    }
  in
  let r = Mq_driver.run ~clock ~metrics cfg tc in
  Tinca.check_invariants tc;
  r

(* The tentpole's budget: with a nonzero window and >= 8 open-loop
   commit_async streams, the standing batch amortizes the ~5-fence
   durability sequence so well that sfences PER COMMIT drops below 1 —
   the synchronous pipeline pays ~5. *)
let test_group_fence_amortization () =
  let r = run_group ~window:4_000_000 ~streams:8 in
  let spc = float_of_int r.Mq_driver.sfences /. float_of_int r.Mq_driver.commits in
  Alcotest.(check bool)
    (Printf.sprintf "8-stream async: %.2f sfences/commit <= 1" spc)
    true (spc <= 1.0);
  Alcotest.(check bool) "batches actually formed" true (r.Mq_driver.group_batches > 0);
  Alcotest.(check bool) "batches hold multiple txns" true
    (r.Mq_driver.commits > r.Mq_driver.group_batches)

(* Each batch drain publishes its whole slot run under a SINGLE Head
   advance (per touched shard; exactly one at N=1) — the per-txn Head
   persist is what the batching eliminates. *)
let test_group_one_head_advance_per_batch () =
  let r = run_group ~window:4_000_000 ~streams:8 in
  Alcotest.(check int) "one Head advance per batch at N=1" r.Mq_driver.group_batches
    r.Mq_driver.head_advances

(* window = 0 is the pinned degeneracy: commit_async + await through the
   async plumbing must be media-, cost- and fence-identical to the
   synchronous pipeline on the same stream workload. *)
let test_group_window0_equivalence () =
  let run ~async =
    let clock, metrics, tc = mk_facade ~window:0 () in
    let cfg =
      {
        Mq_driver.default with
        Mq_driver.streams = 4;
        txns_per_stream = 8;
        txn_blocks = 2;
        universe = 512;
        async;
        mixed_sizes = true;
      }
    in
    let r = Mq_driver.run ~clock ~metrics cfg tc in
    let ns = Clock.now_ns clock in
    let buf = Buffer.create (256 * 4096) in
    for blk = 0 to 255 do
      Buffer.add_bytes buf (Tinca.ok_exn (Tinca.read tc blk))
    done;
    (Digest.to_hex (Digest.string (Buffer.contents buf)), ns, r.Mq_driver.sfences)
  in
  let d_sync, ns_sync, sf_sync = run ~async:false in
  let d_async, ns_async, sf_async = run ~async:true in
  Alcotest.(check string) "media identical" d_sync d_async;
  Alcotest.(check (float 0.0)) "simulated cost identical" ns_sync ns_async;
  Alcotest.(check int) "sfence count identical" sf_sync sf_async

let test_writev_validates_before_writing () =
  let env = mk_env ~pmem_bytes:(64 * 1024) () in
  let p = env.pmem in
  Alcotest.(check bool) "bad chunk rejected" true
    (try
       Pmem.writev p [ (0, Bytes.of_string "good"); (64 * 1024 - 2, Bytes.of_string "bad") ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "no partial scatter" "\000\000\000\000"
    (Bytes.to_string (Pmem.read p ~off:0 ~len:4))

let suite =
  [
    ( "core.persistence_budget",
      [
        Alcotest.test_case "commit fences O(1) in txn size" `Quick test_commit_fence_budget;
        Alcotest.test_case "write-through commit within budget" `Quick
          test_commit_fence_budget_write_through;
        Alcotest.test_case "commit write-backs proportional to data" `Quick
          test_commit_writeback_budget;
        Alcotest.test_case "per-block baseline exceeds budget" `Quick
          test_per_block_baseline_exceeds_budget;
        Alcotest.test_case "flush_all is one fence" `Quick test_flush_all_single_fence;
        Alcotest.test_case "group-commit allocation rollback" `Quick test_group_alloc_rollback;
      ] );
    ( "core.ring_batch",
      [
        Alcotest.test_case "staged slots invisible until publish" `Quick
          test_ring_batch_staged_invisible;
        Alcotest.test_case "publish exposes the batch" `Quick test_ring_batch_publish;
        Alcotest.test_case "batch wraps the slot array" `Quick test_ring_batch_wraparound;
        Alcotest.test_case "overflow and bad counts rejected" `Quick
          test_ring_batch_overflow_rejected;
        Alcotest.test_case "batched fence economy" `Quick test_ring_batch_fence_economy;
      ] );
    ( "pmem.batch",
      [
        Alcotest.test_case "flush_lines semantics" `Quick test_flush_lines_semantics;
        Alcotest.test_case "flush_lines bounds" `Quick test_flush_lines_bounds;
        Alcotest.test_case "flush_lines pipelines clflushopt/clwb" `Quick
          test_flush_lines_pipelining;
        Alcotest.test_case "writev scatter roundtrip" `Quick test_writev_scatter;
        Alcotest.test_case "writev validates first" `Quick test_writev_validates_before_writing;
      ] );
    ( "facade.group_budget",
      [
        Alcotest.test_case "sfences/commit <= 1 at 8 async streams" `Quick
          test_group_fence_amortization;
        Alcotest.test_case "one Head advance per batch" `Quick
          test_group_one_head_advance_per_batch;
        Alcotest.test_case "window=0 equals synchronous pipeline" `Quick
          test_group_window0_equivalence;
      ] );
  ]
