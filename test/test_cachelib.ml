(* Tests for the LRU list and free-block monitor, including model-based
   property tests against reference implementations. *)
module Lru = Tinca_cachelib.Lru
module Fm = Tinca_cachelib.Free_monitor

let test_lru_order () =
  let t = Lru.create () in
  let _a = Lru.push_mru t "a" in
  let _b = Lru.push_mru t "b" in
  let _c = Lru.push_mru t "c" in
  Alcotest.(check (list string)) "lru first" [ "a"; "b"; "c" ] (Lru.to_list_lru_first t)

let test_lru_touch () =
  let t = Lru.create () in
  let a = Lru.push_mru t "a" in
  let _b = Lru.push_mru t "b" in
  Lru.touch t a;
  Alcotest.(check (list string)) "a promoted" [ "b"; "a" ] (Lru.to_list_lru_first t)

let test_lru_remove () =
  let t = Lru.create () in
  let _a = Lru.push_mru t "a" in
  let b = Lru.push_mru t "b" in
  let _c = Lru.push_mru t "c" in
  Lru.remove t b;
  Alcotest.(check (list string)) "b gone" [ "a"; "c" ] (Lru.to_list_lru_first t);
  Alcotest.(check int) "length" 2 (Lru.length t);
  Alcotest.(check bool) "double remove rejected" true
    (try
       Lru.remove t b;
       false
     with Invalid_argument _ -> true)

let test_lru_endpoints () =
  let t = Lru.create () in
  Alcotest.(check bool) "empty lru" true (Lru.lru t = None);
  let a = Lru.push_mru t 1 in
  let c = Lru.push_mru t 3 in
  Alcotest.(check int) "lru end" 1 (Lru.value (Option.get (Lru.lru t)));
  Alcotest.(check int) "mru end" 3 (Lru.value (Option.get (Lru.mru t)));
  ignore a;
  ignore c

let test_lru_find_from_lru () =
  let t = Lru.create () in
  let _ = Lru.push_mru t 1 in
  let _ = Lru.push_mru t 2 in
  let _ = Lru.push_mru t 3 in
  let found = Lru.find_from_lru t ~f:(fun v -> v mod 2 = 0) in
  Alcotest.(check int) "first even from LRU" 2 (Lru.value (Option.get found));
  Alcotest.(check bool) "no match" true (Lru.find_from_lru t ~f:(fun v -> v > 9) = None)

let test_lru_touch_singleton () =
  let t = Lru.create () in
  let a = Lru.push_mru t "a" in
  Lru.touch t a;
  Alcotest.(check (list string)) "unchanged" [ "a" ] (Lru.to_list_lru_first t)

(* Model-based property: a random sequence of push/touch/remove agrees
   with a naive list model. *)
let prop_lru_model =
  QCheck.Test.make ~name:"lru agrees with list model" ~count:200
    QCheck.(list (int_bound 2))
    (fun ops ->
      let t = Lru.create () in
      let nodes = Hashtbl.create 16 in
      let model = ref [] (* lru-first *) in
      let next = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              (* push fresh value *)
              let v = !next in
              incr next;
              Hashtbl.replace nodes v (Lru.push_mru t v);
              model := !model @ [ v ]
          | 1 -> (
              (* touch the current LRU-end element if any *)
              match !model with
              | [] -> ()
              | v :: rest ->
                  Lru.touch t (Hashtbl.find nodes v);
                  model := rest @ [ v ])
          | _ -> (
              (* remove the current MRU-end element if any *)
              match List.rev !model with
              | [] -> ()
              | v :: rest_rev ->
                  Lru.remove t (Hashtbl.find nodes v);
                  Hashtbl.remove nodes v;
                  model := List.rev rest_rev))
        ops;
      Lru.to_list_lru_first t = !model)

let test_fm_alloc_all () =
  let fm = Fm.create ~n:4 () in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 4 do
    match Fm.alloc fm with
    | Some i -> Hashtbl.replace seen i ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  Alcotest.(check int) "all distinct" 4 (Hashtbl.length seen);
  Alcotest.(check bool) "exhausted" true (Fm.alloc fm = None);
  Alcotest.(check int) "free count" 0 (Fm.free_count fm)

let test_fm_free_realloc () =
  let fm = Fm.create ~n:2 () in
  let a = Option.get (Fm.alloc fm) in
  let _b = Option.get (Fm.alloc fm) in
  Fm.free fm a;
  Alcotest.(check int) "one free" 1 (Fm.free_count fm);
  Alcotest.(check int) "realloc returns freed" a (Option.get (Fm.alloc fm))

let test_fm_double_free_rejected () =
  let fm = Fm.create ~n:2 () in
  let a = Option.get (Fm.alloc fm) in
  Fm.free fm a;
  Alcotest.(check bool) "double free rejected" true
    (try
       Fm.free fm a;
       false
     with Invalid_argument _ -> true)

let test_fm_mark_used () =
  let fm = Fm.create ~n:3 () in
  Fm.mark_used fm 1;
  Alcotest.(check bool) "1 is used" false (Fm.is_free fm 1);
  (* Allocate the remaining two; index 1 must never be handed out. *)
  let a = Option.get (Fm.alloc fm) in
  let b = Option.get (Fm.alloc fm) in
  Alcotest.(check bool) "stale entry skipped" true (a <> 1 && b <> 1);
  Alcotest.(check bool) "exhausted" true (Fm.alloc fm = None);
  Alcotest.(check bool) "mark_used twice rejected" true
    (try
       Fm.mark_used fm 1;
       false
     with Invalid_argument _ -> true)

(* Model-based property: alloc/free/mark_used sequences maintain the
   free-set exactly. *)
let prop_fm_model =
  QCheck.Test.make ~name:"free monitor agrees with set model" ~count:200
    QCheck.(pair (int_range 1 16) (list (pair (int_bound 2) (int_bound 15))))
    (fun (n, ops) ->
      let n = max 1 n in
      let fm = Fm.create ~n () in
      let free = Array.make n true in
      let nfree = ref n in
      let ok = ref true in
      List.iter
        (fun (op, arg) ->
          let i = arg mod n in
          match op with
          | 0 -> (
              match Fm.alloc fm with
              | Some j ->
                  if not free.(j) then ok := false;
                  free.(j) <- false;
                  decr nfree
              | None -> if !nfree <> 0 then ok := false)
          | 1 -> if not free.(i) then begin
                Fm.free fm i;
                free.(i) <- true;
                incr nfree
              end
          | _ -> if free.(i) then begin
                Fm.mark_used fm i;
                free.(i) <- false;
                decr nfree
              end)
        ops;
      !ok && Fm.free_count fm = !nfree
      && Array.to_list free
         = List.init n (fun i -> Fm.is_free fm i))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "cachelib.lru",
      [
        Alcotest.test_case "insertion order" `Quick test_lru_order;
        Alcotest.test_case "touch promotes" `Quick test_lru_touch;
        Alcotest.test_case "remove unlinks" `Quick test_lru_remove;
        Alcotest.test_case "endpoints" `Quick test_lru_endpoints;
        Alcotest.test_case "find_from_lru" `Quick test_lru_find_from_lru;
        Alcotest.test_case "touch singleton" `Quick test_lru_touch_singleton;
        q prop_lru_model;
      ] );
    ( "cachelib.free_monitor",
      [
        Alcotest.test_case "alloc all distinct" `Quick test_fm_alloc_all;
        Alcotest.test_case "free then realloc" `Quick test_fm_free_realloc;
        Alcotest.test_case "double free rejected" `Quick test_fm_double_free_rejected;
        Alcotest.test_case "mark_used honoured" `Quick test_fm_mark_used;
        q prop_fm_model;
      ] );
  ]

(* --- allocation policies (wear leveling) --- *)

let test_fifo_rotates () =
  let fm = Fm.create ~policy:Fm.Fifo ~n:8 () in
  (* alloc/free cycles must walk the whole pool before reuse. *)
  let seen = Hashtbl.create 8 in
  for _ = 1 to 8 do
    let i = Option.get (Fm.alloc fm) in
    Hashtbl.replace seen i ();
    Fm.free fm i
  done;
  Alcotest.(check int) "all 8 indices visited" 8 (Hashtbl.length seen)

let test_fifo_rebuild_preserves_age_order () =
  (* A lazy-deletion ring rebuild must preserve oldest-freed-first order
     (wear-leveling rotation survives recovery rebuilds) instead of the
     old re-sort-ascending behaviour.  This trace fills the ring so the
     last [free] triggers the rebuild. *)
  let fm = Fm.create ~policy:Fm.Fifo ~n:3 () in
  Fm.mark_used fm 1;
  Alcotest.(check (option int)) "fifo pops oldest" (Some 0) (Fm.alloc fm);
  Alcotest.(check (option int)) "stale entry for 1 skipped" (Some 2) (Fm.alloc fm);
  Fm.free fm 2;
  Fm.free fm 0;
  Fm.free fm 1;
  (* Age order is now 2, 0, 1.  Stale-ing 0's entry and re-freeing it
     finds the ring full, which forces the rebuild; 0 moves to the
     youngest position, 2 and 1 keep their relative age. *)
  Fm.mark_used fm 0;
  Fm.free fm 0;
  let a = Fm.alloc fm in
  let b = Fm.alloc fm in
  let c = Fm.alloc fm in
  Alcotest.(check (list (option int)))
    "post-rebuild order is oldest-freed-first, not ascending"
    [ Some 2; Some 1; Some 0 ] [ a; b; c ]

let test_fifo_order_without_staleness () =
  (* With no mark_used interference, Fifo is exactly a FIFO queue even
     across the rebuilds that long free/alloc traffic provokes. *)
  let n = 5 in
  let fm = Fm.create ~policy:Fm.Fifo ~n () in
  let q = Queue.create () in
  for i = 0 to n - 1 do
    Queue.push i q
  done;
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 500 do
    if Random.State.bool rng && Queue.length q > 0 then begin
      let expect = Queue.pop q in
      Alcotest.(check (option int)) "fifo pops oldest-freed" (Some expect) (Fm.alloc fm)
    end
    else if Queue.length q < n then begin
      (* Free the longest-allocated index (any used one works; pick the
         smallest not in the queue for determinism). *)
      let in_q = Array.make n false in
      Queue.iter (fun i -> in_q.(i) <- true) q;
      let rec first i = if in_q.(i) then first (i + 1) else i in
      let i = first 0 in
      Fm.free fm i;
      Queue.push i q
    end
  done

let test_lifo_reuses () =
  let fm = Fm.create ~policy:Fm.Lifo ~n:8 () in
  let first = Option.get (Fm.alloc fm) in
  Fm.free fm first;
  Alcotest.(check int) "hot reuse" first (Option.get (Fm.alloc fm))

let prop_fifo_model =
  QCheck.Test.make ~name:"fifo free monitor agrees with set model" ~count:200
    QCheck.(pair (int_range 1 16) (list (pair (int_bound 2) (int_bound 15))))
    (fun (n, ops) ->
      let n = max 1 n in
      let fm = Fm.create ~policy:Fm.Fifo ~n () in
      let free = Array.make n true in
      let nfree = ref n in
      let ok = ref true in
      List.iter
        (fun (op, arg) ->
          let i = arg mod n in
          match op with
          | 0 -> (
              match Fm.alloc fm with
              | Some j ->
                  if not free.(j) then ok := false;
                  free.(j) <- false;
                  decr nfree
              | None -> if !nfree <> 0 then ok := false)
          | 1 ->
              if not free.(i) then begin
                Fm.free fm i;
                free.(i) <- true;
                incr nfree
              end
          | _ ->
              if free.(i) then begin
                Fm.mark_used fm i;
                free.(i) <- false;
                decr nfree
              end)
        ops;
      !ok && Fm.free_count fm = !nfree
      && Array.to_list free = List.init n (fun i -> Fm.is_free fm i))

let test_cache_fifo_policy_spreads_wear () =
  (* Hammer the same logical block; FIFO allocation must spread the COW
     versions over the NVM while LIFO concentrates them. *)
  let module Cache = Tinca_core.Cache in
  let module Pmem = Tinca_pmem.Pmem in
  let module Disk = Tinca_blockdev.Disk in
  let open Tinca_sim in
  let wear policy =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(512 * 1024) () in
    let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:256 ~block_size:4096 in
    let config = { Cache.default_config with ring_slots = 64; alloc_policy = policy } in
    let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
    for i = 0 to 400 do
      Cache.write_direct cache 1 (Bytes.make 4096 (Char.chr (i mod 256)))
    done;
    (* Wear of the data region only: ring/pointer lines are hot under
       both policies. *)
    let layout = Cache.layout cache in
    Pmem.wear_max_in pmem ~off:layout.Tinca_core.Layout.data_off
      ~len:(layout.Tinca_core.Layout.nblocks * 4096)
  in
  Alcotest.(check bool) "fifo wears less per line" true (wear Fm.Fifo < wear Fm.Lifo / 4)

let policy_suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "cachelib.alloc_policy",
      [
        Alcotest.test_case "fifo rotates" `Quick test_fifo_rotates;
        Alcotest.test_case "fifo rebuild preserves age order" `Quick
          test_fifo_rebuild_preserves_age_order;
        Alcotest.test_case "fifo is a queue without staleness" `Quick
          test_fifo_order_without_staleness;
        Alcotest.test_case "lifo reuses" `Quick test_lifo_reuses;
        q prop_fifo_model;
        Alcotest.test_case "cache fifo spreads wear" `Quick test_cache_fifo_policy_spreads_wear;
      ] );
  ]
