(* Crash-consistency validation of Tinca (paper §4.5, §5.1).

   Strategy: run a deterministic workload of multi-block transactions
   against the cache while a countdown hook injects a crash at the k-th
   pmem event; resolve the crash with several survival policies (0 = all
   unflushed lines lost, 1 = all survive, 0.5 = adversarial mix); recover;
   then compare the logical state (cache overlaying disk) against an
   oracle.  The recovered state must equal the state as of the last
   acknowledged commit — or, exactly at the commit point, the state with
   the in-flight transaction fully applied.  Partial application is a
   failure. *)

open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let universe = 48 (* disk blocks exercised *)
let pmem_bytes = 160 * 1024 (* ~30 data blocks: forces evictions *)

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:universe ~block_size:4096 in
  { pmem; disk; clock; metrics }

let config = { Cache.default_config with ring_slots = 64 }

(* The deterministic workload: [ncommits] transactions of 1..4 blocks with
   skewed block choice (to exercise COW write hits) and occasional reads.
   Returns the oracle per committed transaction. *)
let run_workload ~seed ~ncommits cache oracle pending =
  let rng = Tinca_util.Rng.create seed in
  for _txn = 1 to ncommits do
    let n = 1 + Tinca_util.Rng.int rng 4 in
    let h = Cache.Txn.init cache in
    Hashtbl.reset pending;
    for _ = 1 to n do
      let blk = Tinca_util.Rng.int rng universe in
      let v = Char.chr (Tinca_util.Rng.int rng 256) in
      Cache.Txn.add h blk (Bytes.make 4096 v);
      Hashtbl.replace pending blk v
    done;
    (* Sprinkle reads between transactions to mix clean fills in. *)
    if Tinca_util.Rng.chance rng 0.3 then ignore (Cache.read cache (Tinca_util.Rng.int rng universe));
    Cache.Txn.commit h;
    (* Acknowledged: fold into the oracle. *)
    Hashtbl.iter (fun blk v -> Hashtbl.replace oracle blk v) pending;
    Hashtbl.reset pending
  done

(* Logical content of a disk block after recovery: cache version if
   cached, else the disk's. *)
let logical cache disk blk =
  match Cache.peek cache blk with
  | Some data -> Bytes.get data 0
  | None -> Bytes.get (Disk.read_block disk blk) 0

let matches cache disk oracle =
  let ok = ref true in
  for blk = 0 to universe - 1 do
    let expect = match Hashtbl.find_opt oracle blk with Some v -> v | None -> '\000' in
    if logical cache disk blk <> expect then ok := false
  done;
  !ok

let with_pending oracle pending =
  let o = Hashtbl.copy oracle in
  Hashtbl.iter (fun blk v -> Hashtbl.replace o blk v) pending;
  o

(* One torture run: crash at event [crash_at]; returns `Completed if the
   workload finished without reaching the countdown. *)
let torture ~seed ~ncommits ~crash_at ~survival ~survival_seed =
  let env = mk_env () in
  let cache =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  let oracle = Hashtbl.create 64 in
  let pending = Hashtbl.create 8 in
  Pmem.set_crash_countdown env.pmem (Some crash_at);
  match run_workload ~seed ~ncommits cache oracle pending with
  | () ->
      Pmem.set_crash_countdown env.pmem None;
      `Completed
  | exception Pmem.Crash_point ->
      Pmem.crash ~seed:survival_seed ~survival env.pmem;
      let recovered =
        Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
      in
      Cache.check_invariants recovered;
      let ok_old = matches recovered env.disk oracle in
      let ok_new = matches recovered env.disk (with_pending oracle pending) in
      if not (ok_old || ok_new) then
        Alcotest.failf
          "crash at event %d (survival %.1f, seed %d): recovered state matches neither the \
           pre-transaction nor the post-transaction oracle"
          crash_at survival seed;
      `Crashed

(* Count the events of a crash-free run so sweeps cover the whole span. *)
let total_events ~seed ~ncommits =
  let env = mk_env () in
  let cache =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  let oracle = Hashtbl.create 64 and pending = Hashtbl.create 8 in
  let before = Pmem.event_count env.pmem in
  run_workload ~seed ~ncommits cache oracle pending;
  Pmem.event_count env.pmem - before

let test_systematic_sweep () =
  let seed = 2024 and ncommits = 6 in
  let span = total_events ~seed ~ncommits in
  let crashes = ref 0 in
  (* The countdown is armed after formatting, so [crash_at] = k crashes
     at the k-th workload event; cover every one under the all-lost and
     adversarial-mix survival policies. *)
  List.iter
    (fun survival ->
      for crash_at = 1 to span do
        match torture ~seed ~ncommits ~crash_at ~survival ~survival_seed:(crash_at * 31) with
        | `Crashed -> incr crashes
        | `Completed -> Alcotest.failf "countdown %d did not fire within span %d" crash_at span
      done)
    [ 0.0; 0.5 ];
  Alcotest.(check bool) "sweep executed" true (!crashes = 2 * span)

let test_randomized_torture () =
  (* Many random (workload, crash point, survival outcome) triples. *)
  let rng = Tinca_util.Rng.create 77 in
  for i = 1 to 150 do
    let seed = Tinca_util.Rng.int rng 100000 in
    let ncommits = 2 + Tinca_util.Rng.int rng 10 in
    let span = total_events ~seed ~ncommits in
    let crash_at = 1 + Tinca_util.Rng.int rng span in
    let survival = [| 0.0; 0.25; 0.5; 0.75; 1.0 |].(Tinca_util.Rng.int rng 5) in
    ignore (torture ~seed ~ncommits ~crash_at ~survival ~survival_seed:i)
  done

let test_crash_before_any_txn () =
  let env = mk_env () in
  let (_ : Cache.t) =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  Pmem.crash ~seed:5 ~survival:0.0 env.pmem;
  let recovered =
    Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  in
  Cache.check_invariants recovered;
  Alcotest.(check int) "empty cache" 0 (Cache.cached_blocks recovered)

let test_recovery_preserves_committed () =
  let env = mk_env () in
  let cache =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  let h = Cache.Txn.init cache in
  Cache.Txn.add h 1 (Bytes.make 4096 'a');
  Cache.Txn.add h 2 (Bytes.make 4096 'b');
  Cache.Txn.commit h;
  Pmem.crash ~seed:5 ~survival:0.0 env.pmem;
  let recovered =
    Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  in
  Cache.check_invariants recovered;
  Alcotest.(check char) "block 1" 'a' (Bytes.get (Cache.read recovered 1) 0);
  Alcotest.(check char) "block 2" 'b' (Bytes.get (Cache.read recovered 2) 0)

let test_recovered_dirty_blocks_still_written_back () =
  let env = mk_env () in
  let cache =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  let h = Cache.Txn.init cache in
  Cache.Txn.add h 3 (Bytes.make 4096 'z');
  Cache.Txn.commit h;
  Pmem.crash ~seed:6 ~survival:0.0 env.pmem;
  let recovered =
    Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  in
  (* The dirty bit must survive recovery so the block eventually reaches
     the disk. *)
  Cache.flush_all recovered;
  Alcotest.(check char) "written back" 'z' (Bytes.get (Disk.read_block env.disk 3) 0)

let test_double_recovery_idempotent () =
  let env = mk_env () in
  let cache =
    Cache.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  in
  (* Crash mid-commit. *)
  let h = Cache.Txn.init cache in
  Cache.Txn.add h 1 (Bytes.make 4096 'n');
  Pmem.set_crash_countdown env.pmem (Some 10);
  (try Cache.Txn.commit h with Pmem.Crash_point -> ());
  Pmem.crash ~seed:7 ~survival:0.5 env.pmem;
  let r1 = Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics () in
  Cache.check_invariants r1;
  let state1 = List.init universe (fun b -> Cache.peek r1 b |> Option.map (fun d -> Bytes.get d 0)) in
  (* Crash again with nothing dirty; recover again: same state. *)
  Pmem.crash ~seed:8 ~survival:0.0 env.pmem;
  let r2 = Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics () in
  Cache.check_invariants r2;
  let state2 = List.init universe (fun b -> Cache.peek r2 b |> Option.map (fun d -> Bytes.get d 0)) in
  Alcotest.(check bool) "idempotent" true (state1 = state2)

let test_recover_unformatted_rejected () =
  let env = mk_env () in
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ());
       false
     with Cache.Corrupt _ -> true)

let suite =
  [
    ( "core.recovery",
      [
        Alcotest.test_case "crash before any txn" `Quick test_crash_before_any_txn;
        Alcotest.test_case "committed data survives" `Quick test_recovery_preserves_committed;
        Alcotest.test_case "dirty bit survives" `Quick test_recovered_dirty_blocks_still_written_back;
        Alcotest.test_case "double recovery idempotent" `Quick test_double_recovery_idempotent;
        Alcotest.test_case "unformatted rejected" `Quick test_recover_unformatted_rejected;
      ] );
    ( "core.crash_torture",
      [
        Alcotest.test_case "systematic event sweep" `Slow test_systematic_sweep;
        Alcotest.test_case "randomized torture" `Slow test_randomized_torture;
      ] );
  ]
