(* Tests of the persistence sanitizer (lib/check/psan.ml):

   - clean runs: the Tinca commit workload (including crash + recovery),
     the Classic (JBD2 + Flashcache) stack and raw Flashcache produce
     zero violations through [Stacks.instrument];
   - deliberate mutations: a test-only replay of the commit protocol
     with one step dropped (a flush, a fence, the atomicity of an entry
     write) makes each rule fire — proving the rules actually detect
     what they claim to. *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Layout = Tinca_core.Layout
module Cache = Tinca_core.Cache
module Psan = Tinca_checker.Psan
module Stacks = Tinca_stacks.Stacks
module Backend = Tinca_fs.Backend
module Rng = Tinca_util.Rng

(* --- clean runs through the real stacks --------------------------------- *)

let commit_mix ?(commits = 40) ?(universe = 96) ~seed (stack : Stacks.t) =
  let rng = Rng.create seed in
  for _ = 1 to commits do
    let n = 1 + Rng.int rng 4 in
    let blocks =
      List.init n (fun _ ->
          (Rng.int rng universe, Bytes.make 4096 (Char.chr (Rng.int rng 256))))
    in
    stack.Stacks.backend.Backend.commit_blocks blocks;
    if Rng.chance rng 0.3 then
      ignore (stack.Stacks.backend.Backend.read_block (Rng.int rng universe))
  done

let test_tinca_clean () =
  (* Small NVM (~56 data blocks) against a 96-block universe: the mix
     exercises COW write hits, evictions and the background cleaner. *)
  let env = Stacks.make_env ~nvm_bytes:(256 * 1024) ~disk_blocks:96 () in
  let config = { Tinca.Config.default with Tinca.Config.ring_slots = 64 } in
  let stack, psan = Stacks.instrument (Stacks.tinca ~config env) in
  commit_mix ~seed:7 stack;
  Alcotest.(check int) "no violations" 0 (Psan.violation_count psan);
  let r = Psan.report psan in
  Alcotest.(check bool) "fences observed" true (r.Psan.fences > 0);
  (* The hot path is flush-optimal: every issued line flush starts a
     write-back (the batched role-switch/bg-clean change; psan's
     redundant-flush diagnostic guards the property). *)
  Alcotest.(check int) "no redundant flushes on the commit path" 0 r.Psan.redundant_flushes

let test_tinca_clean_across_recovery () =
  let env = Stacks.make_env ~nvm_bytes:(256 * 1024) ~disk_blocks:96 () in
  let config = { Tinca.Config.default with Tinca.Config.ring_slots = 64 } in
  let stack, psan = Stacks.instrument (Stacks.tinca ~config env) in
  commit_mix ~commits:20 ~seed:11 stack;
  (* Crash mid-life: the sanitizer's shadow resets on the Crash event and
     then audits recovery's revocation writes and the post-recovery
     workload under the same rules. *)
  Pmem.crash ~seed:5 env.Stacks.pmem;
  let recovered = Stacks.tinca_recover env in
  let wrapped =
    let commit_blocks blocks =
      Psan.txn_begin psan;
      match recovered.Stacks.backend.Backend.commit_blocks blocks with
      | () -> Psan.txn_end psan
      | exception e ->
          Psan.txn_abort psan;
          raise e
    in
    { recovered with
      Stacks.backend = { recovered.Stacks.backend with Backend.commit_blocks } }
  in
  commit_mix ~commits:20 ~seed:13 wrapped;
  Alcotest.(check int) "no violations across crash + recovery" 0 (Psan.violation_count psan);
  Alcotest.(check bool) "crash observed" true ((Psan.report psan).Psan.crashes > 0)

let test_classic_clean () =
  let env = Stacks.make_env ~nvm_bytes:(256 * 1024) ~disk_blocks:160 () in
  let stack, psan = Stacks.instrument (Stacks.classic ~journal_len:64 env) in
  commit_mix ~seed:17 stack;
  stack.Stacks.backend.Backend.sync ();
  Alcotest.(check int) "no violations" 0 (Psan.violation_count psan)

let test_flashcache_clean () =
  let env = Stacks.make_env ~nvm_bytes:(256 * 1024) ~disk_blocks:96 () in
  let stack, psan = Stacks.instrument (Stacks.nojournal env) in
  commit_mix ~seed:19 stack;
  stack.Stacks.backend.Backend.sync ();
  Alcotest.(check int) "no violations" 0 (Psan.violation_count psan)

(* --- deliberate mutations (test-only protocol replay) -------------------- *)

(* A bare pmem + Tinca layout: the mutation harness replays the commit
   protocol's pmem operations by hand so single steps can be dropped. *)
let mk_harness ?strict () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(256 * 1024) () in
  let layout = Layout.compute ~pmem_bytes:(256 * 1024) ~block_size:4096 ~ring_slots:64 in
  let psan = Psan.attach ?strict ~layout pmem in
  (pmem, layout, psan)

let rules psan = List.map (fun v -> v.Psan.rule) (Psan.violations psan)

(* One committed block, protocol steps written out: data COW write +
   persist; entry 16 B atomic + persist; ring slot + persist; Head +
   persist; Tail + persist (the commit point).  [skip_data_flush]
   drops the data persistence step. *)
let replay_commit ?(skip_data_flush = false) pmem (l : Layout.t) =
  let data_off = Layout.data_block_off l 0 in
  Pmem.write pmem ~off:data_off (Bytes.make l.Layout.block_size 'x');
  if not skip_data_flush then Pmem.persist pmem ~off:data_off ~len:l.Layout.block_size;
  let entry_off = Layout.entry_off l 0 in
  Pmem.atomic_write16 pmem ~off:entry_off (Bytes.make 16 '\001');
  Pmem.persist pmem ~off:entry_off ~len:16;
  let slot_off = Layout.ring_slot_off l 0 in
  Pmem.atomic_write8_int pmem ~off:slot_off 42;
  Pmem.persist pmem ~off:slot_off ~len:8;
  Pmem.atomic_write8_int pmem ~off:l.Layout.head_off 1;
  Pmem.persist pmem ~off:l.Layout.head_off ~len:8;
  Pmem.atomic_write8_int pmem ~off:l.Layout.tail_off 1;
  Pmem.persist pmem ~off:l.Layout.tail_off ~len:8

let test_replay_clean () =
  let pmem, layout, psan = mk_harness () in
  replay_commit pmem layout;
  Alcotest.(check int) "faithful replay is clean" 0 (Psan.violation_count psan)

let test_missing_flush_dropped_data_flush () =
  let pmem, layout, psan = mk_harness () in
  replay_commit ~skip_data_flush:true pmem layout;
  let rs = rules psan in
  Alcotest.(check bool) "missing-flush fired" true (List.mem Psan.Missing_flush rs);
  (* the 64 lines of the never-flushed data block, caught at the Tail fence *)
  Alcotest.(check int) "one violation per volatile data line" 64 (List.length rs)

let test_missing_flush_unflushed_entry () =
  let pmem, layout, psan = mk_harness () in
  let entry_off = Layout.entry_off layout 0 in
  Pmem.atomic_write16 pmem ~off:entry_off (Bytes.make 16 '\001');
  (* no clflush, no sfence: the entry never becomes durable *)
  Pmem.atomic_write8_int pmem ~off:layout.Layout.tail_off 1;
  Pmem.persist pmem ~off:layout.Layout.tail_off ~len:8;
  (match Psan.violations psan with
  | [ v ] ->
      Alcotest.(check string) "rule" "missing-flush" (Psan.rule_name v.Psan.rule);
      Alcotest.(check string) "region" "entries" (Psan.region_name v.Psan.region)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs))

let test_unfenced_ack () =
  let pmem, layout, psan = mk_harness () in
  Psan.txn_begin psan;
  (* one line of a data block written, never flushed, then acknowledged *)
  Pmem.write pmem ~off:(Layout.data_block_off layout 0) (Bytes.make 64 'y');
  Psan.txn_end psan;
  (match Psan.violations psan with
  | [ v ] -> Alcotest.(check string) "rule" "unfenced-ack" (Psan.rule_name v.Psan.rule)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* txn_abort acknowledges nothing: same store pattern, no violation *)
  let pmem2, layout2, psan2 = mk_harness () in
  Psan.txn_begin psan2;
  Pmem.write pmem2 ~off:(Layout.data_block_off layout2 0) (Bytes.make 64 'y');
  Psan.txn_abort psan2;
  Alcotest.(check int) "abort checks nothing" 0 (Psan.violation_count psan2)

let test_torn_metadata () =
  let pmem, layout, psan = mk_harness () in
  (* non-atomic 16 B store where the protocol requires atomic_write16 *)
  Pmem.write pmem ~off:(Layout.entry_off layout 0) (Bytes.make 16 '\001');
  (match Psan.violations psan with
  | [ v ] ->
      Alcotest.(check string) "rule" "torn-metadata" (Psan.rule_name v.Psan.rule);
      Alcotest.(check string) "region" "entries" (Psan.region_name v.Psan.region)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* data blocks are COW-protected: a non-atomic store there is fine *)
  let pmem2, layout2, psan2 = mk_harness () in
  Pmem.write pmem2 ~off:(Layout.data_block_off layout2 0) (Bytes.make 4096 'z');
  Alcotest.(check int) "data store allowed" 0 (Psan.violation_count psan2)

let test_persist_race () =
  let pmem, layout, psan = mk_harness () in
  Pmem.atomic_write8_int pmem ~off:layout.Layout.head_off 1;
  Pmem.clflush pmem ~off:layout.Layout.head_off ~len:8;
  (* store into the flush-pending Head line before the fence *)
  Pmem.atomic_write8_int pmem ~off:layout.Layout.head_off 2;
  (match Psan.violations psan with
  | [ v ] ->
      Alcotest.(check string) "rule" "persist-race" (Psan.rule_name v.Psan.rule);
      Alcotest.(check string) "region" "head" (Psan.region_name v.Psan.region)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs))

let test_redundant_flush_counted () =
  let pmem, layout, psan = mk_harness () in
  Pmem.set_site pmem "mut.redundant";
  (* flush of a clean line: issued, but starts no write-back *)
  Pmem.clflush pmem ~off:(Layout.data_block_off layout 1) ~len:64;
  (* flush of an already-pending line: same *)
  Pmem.write pmem ~off:(Layout.data_block_off layout 2) (Bytes.make 64 'w');
  Pmem.clflush pmem ~off:(Layout.data_block_off layout 2) ~len:64;
  Pmem.clflush pmem ~off:(Layout.data_block_off layout 2) ~len:64;
  let r = Psan.report psan in
  Alcotest.(check int) "redundant flushes counted" 2 r.Psan.redundant_flushes;
  Alcotest.(check (list (pair string int)))
    "attributed to the call site"
    [ ("mut.redundant", 2) ]
    r.Psan.redundant_by_site;
  Alcotest.(check int) "diagnostic, not a violation" 0 (Psan.violation_count psan)

let test_strict_raises () =
  let pmem, layout, psan = mk_harness ~strict:true () in
  ignore psan;
  Alcotest.(check bool) "strict mode raises on first violation" true
    (try
       Pmem.write pmem ~off:(Layout.entry_off layout 0) (Bytes.make 16 '\001');
       false
     with Psan.Violation v -> v.Psan.rule = Psan.Torn_metadata)

let test_detach_stops_observing () =
  let pmem, layout, psan = mk_harness () in
  Psan.detach psan;
  Pmem.write pmem ~off:(Layout.entry_off layout 0) (Bytes.make 16 '\001');
  Alcotest.(check int) "no events after detach" 0 (Psan.report psan).Psan.events

let suite =
  [
    ( "psan.clean",
      [
        Alcotest.test_case "tinca commit workload" `Quick test_tinca_clean;
        Alcotest.test_case "tinca across crash+recovery" `Quick test_tinca_clean_across_recovery;
        Alcotest.test_case "classic (jbd2+flashcache)" `Quick test_classic_clean;
        Alcotest.test_case "flashcache (no journal)" `Quick test_flashcache_clean;
        Alcotest.test_case "faithful protocol replay" `Quick test_replay_clean;
      ] );
    ( "psan.mutations",
      [
        Alcotest.test_case "missing-flush: dropped data flush" `Quick
          test_missing_flush_dropped_data_flush;
        Alcotest.test_case "missing-flush: unflushed entry" `Quick
          test_missing_flush_unflushed_entry;
        Alcotest.test_case "unfenced-ack: commit without persist" `Quick test_unfenced_ack;
        Alcotest.test_case "torn-metadata: non-atomic entry write" `Quick test_torn_metadata;
        Alcotest.test_case "persist-race: store into pending head" `Quick test_persist_race;
        Alcotest.test_case "redundant-flush: counted per site" `Quick
          test_redundant_flush_counted;
        Alcotest.test_case "strict mode raises" `Quick test_strict_raises;
        Alcotest.test_case "detach stops observing" `Quick test_detach_stops_observing;
      ] );
  ]
