(* The Tinca facade (ISSUE 5 API redesign): every [Tinca.error]
   constructor is reachable through the public result-returning API and
   maps 1:1 to the retained Cache-level exceptions via [Tinca.to_exn];
   [Tinca.Config.validate] rejects each malformed field; and the basic
   init_txn/write/commit/read round-trip survives recovery. *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let nvm_bytes = 256 * 1024

let mk_env () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:64 ~block_size:4096 in
  { pmem; disk; clock; metrics }

let config ?(ring_slots = 64) ?(nshards = 1) () =
  { Tinca.Config.default with Tinca.Config.nvm_bytes; ring_slots; nshards }

let mk_tinca ?ring_slots ?nshards env =
  Tinca.ok_exn
    (Tinca.format ~config:(config ?ring_slots ?nshards ()) ~pmem:env.pmem ~disk:env.disk
       ~clock:env.clock ~metrics:env.metrics)

let payload v = Bytes.make 4096 v

let check_err name expected = function
  | Error e when e = expected -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" name (Tinca.error_message e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" name

(* --- every error constructor, through the public API -------------------- *)

let test_errors_reachable () =
  let env = mk_env () in
  let tc = mk_tinca env in
  (* Wrong_block_size *)
  let txn = Tinca.init_txn tc in
  check_err "write short block"
    (Tinca.Wrong_block_size { expected = 4096; got = 100 })
    (Tinca.write txn 0 (Bytes.make 100 'x'));
  (* Block_out_of_range: the disk has 64 blocks *)
  check_err "write past device" (Tinca.Block_out_of_range 64) (Tinca.write txn 64 (payload 'x'));
  check_err "read negative block" (Tinca.Block_out_of_range (-1)) (Tinca.read tc (-1));
  check_err "write_direct past device" (Tinca.Block_out_of_range 99)
    (Tinca.write_direct tc 99 (payload 'x'));
  (* Txn_not_running: every post-finish operation *)
  (match Tinca.write txn 0 (payload 'a') with Ok () -> () | Error _ -> Alcotest.fail "write");
  (match Tinca.commit txn with Ok () -> () | Error _ -> Alcotest.fail "commit");
  check_err "commit twice" Tinca.Txn_not_running (Tinca.commit txn);
  check_err "write after commit" Tinca.Txn_not_running (Tinca.write txn 1 (payload 'b'));
  check_err "abort after commit" Tinca.Txn_not_running (Tinca.abort txn);
  (* Transaction_too_large: a 40-block transaction into an 8-slot ring *)
  let env2 = mk_env () in
  let small = mk_tinca ~ring_slots:8 env2 in
  let big = Tinca.init_txn small in
  for b = 0 to 39 do
    match Tinca.write big b (payload 'z') with
    | Ok () -> ()
    | Error e -> Alcotest.failf "staging block %d: %s" b (Tinca.error_message e)
  done;
  check_err "oversized commit" Tinca.Transaction_too_large (Tinca.commit big);
  (* Unformatted: recovery on virgin media *)
  let env3 = mk_env () in
  (match
     Tinca.recover ~pmem:env3.pmem ~disk:env3.disk ~clock:env3.clock ~metrics:env3.metrics
   with
  | Error (Tinca.Unformatted _) -> ()
  | Error e -> Alcotest.failf "recover: wrong error %s" (Tinca.error_message e)
  | Ok _ -> Alcotest.fail "recover on virgin media succeeded");
  (* Invalid_config: rejected geometry surfaces through format *)
  match
    Tinca.format
      ~config:{ (config ()) with Tinca.Config.block_size = 100 }
      ~pmem:env3.pmem ~disk:env3.disk ~clock:env3.clock ~metrics:env3.metrics
  with
  | Error (Tinca.Invalid_config _) -> ()
  | Error e -> Alcotest.failf "format: wrong error %s" (Tinca.error_message e)
  | Ok _ -> Alcotest.fail "format accepted block_size 100"

(* --- the 1:1 error -> exception bridge ----------------------------------- *)

let test_to_exn_mapping () =
  (match Tinca.to_exn Tinca.Transaction_too_large with
  | Cache.Transaction_too_large -> ()
  | e -> Alcotest.failf "Transaction_too_large -> %s" (Printexc.to_string e));
  (match Tinca.to_exn (Tinca.Unformatted "no media") with
  | Tinca.Io_error (Tinca.Unformatted m) when m = "no media" -> ()
  | e -> Alcotest.failf "Unformatted -> %s" (Printexc.to_string e));
  List.iter
    (fun (name, err) ->
      match Tinca.to_exn err with
      | Invalid_argument _ -> ()
      | e -> Alcotest.failf "%s -> %s (wanted Invalid_argument)" name (Printexc.to_string e))
    [
      ("Txn_not_running", Tinca.Txn_not_running);
      ("Wrong_block_size", Tinca.Wrong_block_size { expected = 4096; got = 64 });
      ("Block_out_of_range", Tinca.Block_out_of_range 7);
      ("Invalid_config", Tinca.Invalid_config "bad");
    ];
  (* ok_exn is the same bridge, applied to results. *)
  Alcotest.(check int) "ok_exn Ok" 3 (Tinca.ok_exn (Ok 3));
  match Tinca.ok_exn (Error Tinca.Transaction_too_large) with
  | exception Cache.Transaction_too_large -> ()
  | _ -> Alcotest.fail "ok_exn Error did not raise"

let test_of_exn_round_trip () =
  (* The I/O-shaped errors survive a round trip through the bridge with
     their payloads intact — they no longer flatten into Failure. *)
  let io_shaped =
    [ Tinca.Transaction_too_large; Tinca.Unformatted "superblock magic 0xdead" ]
  in
  List.iter
    (fun e ->
      match Tinca.of_exn (Tinca.to_exn e) with
      | Some e' when e = e' -> ()
      | Some e' ->
          Alcotest.failf "round trip changed %s into %s" (Tinca.error_message e)
            (Tinca.error_message e')
      | None -> Alcotest.failf "round trip lost %s" (Tinca.error_message e))
    io_shaped;
  (* The raw allocator signal maps home to the same geometry class. *)
  (match Tinca.of_exn Cache.Cache_exhausted with
  | Some Tinca.Transaction_too_large -> ()
  | _ -> Alcotest.fail "Cache_exhausted did not map to Transaction_too_large");
  (* Foreign exceptions are not claimed. *)
  (match Tinca.of_exn Not_found with
  | None -> ()
  | Some e -> Alcotest.failf "of_exn claimed Not_found as %s" (Tinca.error_message e));
  (* The registered printer keeps the payload readable in logs. *)
  let s = Printexc.to_string (Tinca.to_exn (Tinca.Unformatted "bad magic")) in
  Alcotest.(check bool)
    (Printf.sprintf "printer shows payload (%s)" s)
    true
    (String.length s >= 9 && String.sub s 0 5 = "Tinca")

(* --- Config.validate rejection table ------------------------------------- *)

let test_config_validate () =
  let base = config () in
  let rejects =
    [
      ("block_size 0", { base with Tinca.Config.block_size = 0 });
      ("block_size not a multiple of 64", { base with Tinca.Config.block_size = 100 });
      ("negative block_size", { base with Tinca.Config.block_size = -4096 });
      ("ring_slots 0", { base with Tinca.Config.ring_slots = 0 });
      ("nshards 0", { base with Tinca.Config.nshards = 0 });
      ( "nshards above max",
        { base with Tinca.Config.nshards = Tinca_core.Shard.max_shards + 1 } );
      ("clean_threshold 0", { base with Tinca.Config.clean_threshold = 0.0 });
      ("clean_threshold > 1", { base with Tinca.Config.clean_threshold = 1.5 });
      ("nvm_bytes 0", { base with Tinca.Config.nvm_bytes = 0 });
      ("nvm_bytes below one layout", { base with Tinca.Config.nvm_bytes = 4096 });
      ( "span cannot host the ring",
        { base with Tinca.Config.nvm_bytes = 64 * 1024; ring_slots = 131072; nshards = 8 } );
    ]
  in
  List.iter
    (fun (what, c) ->
      match Tinca.Config.validate c with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "validate accepted %s" what)
    rejects;
  List.iter
    (fun (what, c) ->
      match Tinca.Config.validate c with
      | Ok c' -> Alcotest.(check bool) (what ^ " unchanged") true (c' = c)
      | Error m -> Alcotest.failf "validate rejected %s: %s" what m)
    [
      ("defaults", Tinca.Config.default);
      ("small sharded geometry", config ~nshards:8 ());
      ("write-through variant", { base with Tinca.Config.write_policy = Tinca.Write_through });
    ]

(* --- round-trip and recovery through the facade -------------------------- *)

let test_round_trip () =
  let env = mk_env () in
  let tc = mk_tinca env in
  Alcotest.(check int) "nshards" 1 (Tinca.nshards tc);
  Alcotest.(check int) "block_size" 4096 (Tinca.block_size tc);
  let txn = Tinca.init_txn tc in
  for b = 0 to 3 do
    Tinca.ok_exn (Tinca.write txn b (payload (Char.chr (Char.code 'a' + b))))
  done;
  Tinca.ok_exn (Tinca.commit txn);
  (* An aborted transaction leaves no trace. *)
  let dropped = Tinca.init_txn tc in
  Tinca.ok_exn (Tinca.write dropped 0 (payload '!'));
  Tinca.ok_exn (Tinca.abort dropped);
  Tinca.ok_exn (Tinca.write_direct tc 9 (payload 'd'));
  let expect b v = Alcotest.(check char) (Printf.sprintf "block %d" b) v
      (Bytes.get (Tinca.ok_exn (Tinca.read tc b)) 0)
  in
  expect 0 'a'; expect 1 'b'; expect 2 'c'; expect 3 'd'; expect 9 'd';
  Tinca.check_invariants tc;
  (* Commits are already durable: re-attach and read the same state. *)
  let tc2 =
    Tinca.ok_exn
      (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  let expect2 b v = Alcotest.(check char) (Printf.sprintf "recovered block %d" b) v
      (Bytes.get (Tinca.ok_exn (Tinca.read tc2 b)) 0)
  in
  expect2 0 'a'; expect2 3 'd'; expect2 9 'd';
  Tinca.check_invariants tc2

let suite =
  [
    ( "facade",
      [
        Alcotest.test_case "every error constructor reachable" `Quick test_errors_reachable;
        Alcotest.test_case "to_exn maps 1:1 to the old exceptions" `Quick test_to_exn_mapping;
        Alcotest.test_case "of_exn round-trips I/O-shaped errors" `Quick test_of_exn_round_trip;
        Alcotest.test_case "Config.validate rejection table" `Quick test_config_validate;
        Alcotest.test_case "round-trip incl. recovery" `Quick test_round_trip;
      ] );
  ]
