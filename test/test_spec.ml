(* The executable journal spec (lib/check/spec.ml) and the lockstep
   refinement harness around it: spec unit laws (commit/abort algebra,
   read-your-writes), generator determinism under a fixed seed, and
   shrinker minimality on a planted divergence. *)

module Spec = Tinca_checker.Spec
module L = Tinca_checker.Lockstep

let blk v = Bytes.make 4096 (Char.chr v)
let ok = function Ok v -> v | Error e -> Alcotest.failf "spec: %s" (Tinca.error_message e)

let mk () = Spec.create ~nblocks:8 ~block_size:4096

(* --- spec unit laws ------------------------------------------------------ *)

let test_spec_initial_zeros () =
  let s = mk () in
  for b = 0 to 7 do
    Alcotest.(check bytes) "all-zeros initial state" (Bytes.make 4096 '\000') (ok (Spec.read s b))
  done;
  (match Spec.read s 8 with
  | Error (Tinca.Block_out_of_range 8) -> ()
  | _ -> Alcotest.fail "read past the universe accepted")

let test_spec_commit_applies_all () =
  let s = mk () in
  let t = Spec.init_txn s in
  let t = ok (Spec.write s t 1 (blk 10)) in
  let t = ok (Spec.write s t 3 (blk 30)) in
  (* Staged writes are invisible outside the transaction... *)
  Alcotest.(check bytes) "write buffered, not applied" (blk 0) (ok (Spec.read s 1));
  (* ...but read-your-writes inside it. *)
  Alcotest.(check bytes) "read-your-writes" (blk 10) (ok (Spec.read_in s t 1));
  Alcotest.(check bytes) "read-through for unstaged" (blk 0) (ok (Spec.read_in s t 2));
  let s', t = Spec.commit s t |> ok in
  Alcotest.(check bool) "handle finished" false (Spec.live t);
  Alcotest.(check bytes) "block 1 committed" (blk 10) (ok (Spec.read s' 1));
  Alcotest.(check bytes) "block 3 committed" (blk 30) (ok (Spec.read s' 3));
  Alcotest.(check bytes) "block 2 untouched" (blk 0) (ok (Spec.read s' 2))

let test_spec_abort_identity () =
  (* abort after any writes = identity on the committed map. *)
  let s = mk () in
  let t = Spec.init_txn s in
  let t = ok (Spec.write s t 1 (blk 99)) in
  let s', t = Spec.abort s t |> ok in
  Alcotest.(check bool) "spec state unchanged by abort" true (Spec.equal s s');
  Alcotest.(check bool) "handle finished" false (Spec.live t);
  (* Commit of the finished handle is a Txn_not_running probe... *)
  (match Spec.commit s' t with
  | Error Tinca.Txn_not_running -> ()
  | _ -> Alcotest.fail "commit after abort accepted");
  (* ...and so is a write. *)
  match Spec.write s' t 1 (blk 1) with
  | Error Tinca.Txn_not_running -> ()
  | _ -> Alcotest.fail "write after abort accepted"

let test_spec_empty_commit_identity () =
  let s = mk () in
  let t = Spec.init_txn s in
  let s', _ = Spec.commit s t |> ok in
  Alcotest.(check bool) "empty commit = identity" true (Spec.equal s s')

let test_spec_reject_is_abort () =
  (* The Transaction_too_large transition: map untouched, handle dead. *)
  let s = mk () in
  let t = Spec.init_txn s in
  let t = ok (Spec.write s t 0 (blk 5)) in
  let t = Spec.reject t in
  Alcotest.(check bool) "rejected handle finished" false (Spec.live t);
  Alcotest.(check int) "no writes pending" 0 (List.length (Spec.pending t));
  Alcotest.(check bytes) "map untouched" (blk 0) (ok (Spec.read s 0))

let test_spec_last_write_wins () =
  let s = mk () in
  let t = Spec.init_txn s in
  let t = ok (Spec.write s t 2 (blk 1)) in
  let t = ok (Spec.write s t 2 (blk 2)) in
  let s', _ = Spec.commit s t |> ok in
  Alcotest.(check bytes) "second write wins" (blk 2) (ok (Spec.read s' 2));
  Alcotest.(check int) "one pending entry per block" 1
    (List.length (Spec.pending (ok (Spec.write s (Spec.init_txn s) 2 (blk 1)))))

let test_spec_validation () =
  let s = mk () in
  let t = Spec.init_txn s in
  (match Spec.write s t 0 (Bytes.make 100 'x') with
  | Error (Tinca.Wrong_block_size { expected = 4096; got = 100 }) -> ()
  | _ -> Alcotest.fail "wrong block size accepted");
  (match Spec.write s t 9 (blk 1) with
  | Error (Tinca.Block_out_of_range 9) -> ()
  | _ -> Alcotest.fail "out-of-range write accepted");
  (* write_direct is a one-block committed write. *)
  let s' = Spec.write_direct s 4 (blk 7) |> ok in
  Alcotest.(check bytes) "write_direct applied" (blk 7) (ok (Spec.read s' 4))

(* --- generator determinism ----------------------------------------------- *)

let test_gen_deterministic () =
  let a = L.gen ~seed:7 ~len:200 ~universe:48 in
  let b = L.gen ~seed:7 ~len:200 ~universe:48 in
  Alcotest.(check int) "fixed length" 200 (Array.length a);
  Alcotest.(check bool) "same seed, same sequence" true (a = b);
  let c = L.gen ~seed:8 ~len:200 ~universe:48 in
  Alcotest.(check bool) "different seed, different sequence" false (a = c);
  (* The sequence must carry real traffic, not dissolve into no-ops. *)
  let count p = Array.fold_left (fun k x -> if p x then k + 1 else k) 0 a in
  Alcotest.(check bool) "has begins" true (count (function L.Begin -> true | _ -> false) > 0);
  Alcotest.(check bool) "has commits" true (count (function L.Commit -> true | _ -> false) > 0);
  Alcotest.(check bool) "has writes" true (count (function L.Write _ -> true | _ -> false) > 0)

(* --- shrinker ------------------------------------------------------------ *)

let test_shrink_minimality () =
  (* Plant a divergence (Lose_writes) and shrink the generated sequence:
     the result must still fail, and be 1-minimal — removing any single
     command makes it pass. *)
  let g = L.default_geometry in
  let fails c = Result.is_error (L.run ~mutate:L.Lose_writes g c) in
  let cmds = L.gen ~seed:3 ~len:60 ~universe:g.L.universe in
  Alcotest.(check bool) "planted mutation diverges" true (fails cmds);
  let small = L.shrink ~fails cmds in
  Alcotest.(check bool) "shrunk sequence still fails" true (fails small);
  Alcotest.(check bool)
    (Printf.sprintf "reproducer has %d commands (<= 6)" (Array.length small))
    true
    (Array.length small <= 6);
  let without i =
    Array.append (Array.sub small 0 i) (Array.sub small (i + 1) (Array.length small - i - 1))
  in
  for i = 0 to Array.length small - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "dropping command %d makes it pass" i)
      false
      (fails (without i))
  done

let test_shrink_pure_predicate () =
  (* On a synthetic predicate the shrinker must find the exact core. *)
  let fails c =
    Array.exists (function L.Read 1 -> true | _ -> false) c
    && Array.exists (function L.Read 2 -> true | _ -> false) c
  in
  let noise = Array.init 40 (fun i -> L.Read (10 + (i mod 5))) in
  let cmds = Array.concat [ noise; [| L.Read 1 |]; noise; [| L.Read 2 |]; noise ] in
  let small = L.shrink ~fails cmds in
  Alcotest.(check bool) "exact 2-command core" true (small = [| L.Read 1; L.Read 2 |])

(* --- lockstep equivalence (quick pin; make check-spec is the full gate) --- *)

let test_lockstep_clean () =
  let g = L.default_geometry in
  match L.run g (L.gen ~seed:11 ~len:60 ~universe:g.L.universe) with
  | Ok s -> Alcotest.(check bool) "sweeps ran" true (s.L.sweeps > 0)
  | Error d -> Alcotest.failf "unexpected divergence: %s" (Format.asprintf "%a" L.pp_divergence d)

let suite =
  [
    ( "check.spec",
      [
        Alcotest.test_case "initial state all zeros" `Quick test_spec_initial_zeros;
        Alcotest.test_case "commit applies exactly the staged writes" `Quick
          test_spec_commit_applies_all;
        Alcotest.test_case "abort is identity" `Quick test_spec_abort_identity;
        Alcotest.test_case "empty commit is identity" `Quick test_spec_empty_commit_identity;
        Alcotest.test_case "reject = abort semantics" `Quick test_spec_reject_is_abort;
        Alcotest.test_case "last write wins inside a txn" `Quick test_spec_last_write_wins;
        Alcotest.test_case "validation mirrors the facade" `Quick test_spec_validation;
      ] );
    ( "check.lockstep",
      [
        Alcotest.test_case "generator deterministic under a fixed seed" `Quick
          test_gen_deterministic;
        Alcotest.test_case "shrinker 1-minimal on planted divergence" `Quick
          test_shrink_minimality;
        Alcotest.test_case "shrinker finds the exact core" `Quick test_shrink_pure_predicate;
        Alcotest.test_case "lockstep run clean on default geometry" `Quick test_lockstep_clean;
      ] );
  ]
