(* Validation-path tests: every constructor and entry point must reject
   nonsensical configuration loudly rather than corrupt state quietly. *)
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Cache = Tinca_core.Cache
module Layout = Tinca_core.Layout
module Journal = Tinca_jbd2.Journal
module Block_io = Tinca_blockdev.Block_io
module Fs = Tinca_fs.Fs
module Stacks = Tinca_stacks.Stacks

let rejects_invalid_arg name f =
  Alcotest.(check bool) name true
    (try
       f ();
       false
     with Invalid_argument _ -> true)

let mk_clock_metrics () = (Clock.create (), Metrics.create ())

let test_pmem_validation () =
  let clock, metrics = mk_clock_metrics () in
  rejects_invalid_arg "size not multiple of 64" (fun () ->
      ignore (Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:100 ()));
  rejects_invalid_arg "zero size" (fun () ->
      ignore (Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:0 ()));
  let p = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:4096 () in
  rejects_invalid_arg "negative countdown" (fun () -> Pmem.set_crash_countdown p (Some 0));
  rejects_invalid_arg "oob read" (fun () -> ignore (Pmem.read p ~off:4090 ~len:100));
  rejects_invalid_arg "oob wear query" (fun () -> ignore (Pmem.wear_max_in p ~off:0 ~len:9999))

let test_disk_validation () =
  let clock, metrics = mk_clock_metrics () in
  rejects_invalid_arg "bad geometry" (fun () ->
      ignore (Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:0 ~block_size:4096))

let test_layout_validation () =
  rejects_invalid_arg "block size not multiple of 64" (fun () ->
      ignore (Layout.compute ~pmem_bytes:(1 lsl 20) ~block_size:1000 ~ring_slots:8));
  rejects_invalid_arg "zero ring" (fun () ->
      ignore (Layout.compute ~pmem_bytes:(1 lsl 20) ~block_size:4096 ~ring_slots:0))

let test_cache_validation () =
  let clock, metrics = mk_clock_metrics () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(256 * 1024) () in
  (* Disk block size must match the cache's. *)
  let disk512 = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:64 ~block_size:512 in
  rejects_invalid_arg "disk block size mismatch" (fun () ->
      ignore
        (Cache.format
           ~config:{ Cache.default_config with ring_slots = 16 }
           ~pmem ~disk:disk512 ~clock ~metrics))

let test_journal_validation () =
  let clock, metrics = mk_clock_metrics () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:128 ~block_size:4096 in
  let io = Block_io.of_disk disk in
  rejects_invalid_arg "journal too small" (fun () ->
      ignore
        (Journal.format ~config:{ Journal.start = 0; len = 4; checkpoint_threshold = 0.25 } ~io
           ~metrics ()));
  rejects_invalid_arg "journal out of device" (fun () ->
      ignore
        (Journal.format
           ~config:{ Journal.start = 120; len = 64; checkpoint_threshold = 0.25 }
           ~io ~metrics ()))

let small_tinca env =
  Stacks.tinca ~config:{ Tinca.Config.default with Tinca.Config.ring_slots = 64 } env

let test_fs_validation () =
  let env = Stacks.make_env ~nvm_bytes:(1 lsl 20) ~disk_blocks:4096 () in
  let stack = small_tinca env in
  let fs =
    Fs.format ~config:{ Fs.default_config with ninodes = 64; journal_len = 64 }
      stack.Stacks.backend
  in
  rejects_invalid_arg "empty file name" (fun () -> Fs.create fs "");
  Fs.create fs "t";
  rejects_invalid_arg "negative truncate" (fun () -> Fs.truncate fs "t" (-1));
  (* Device too small for any data region. *)
  let tiny = Stacks.make_env ~nvm_bytes:(1 lsl 20) ~disk_blocks:128 () in
  let tiny_stack = small_tinca tiny in
  rejects_invalid_arg "device too small" (fun () ->
      ignore
        (Fs.format ~config:{ Fs.default_config with ninodes = 64; journal_len = 126 }
           tiny_stack.Stacks.backend))

let test_fs_no_space () =
  (* Exhausting the data region must raise No_space, not corrupt. *)
  let env = Stacks.make_env ~nvm_bytes:(1 lsl 20) ~disk_blocks:512 () in
  let stack = small_tinca env in
  let fs =
    Fs.format ~config:{ Fs.default_config with ninodes = 64; journal_len = 64 }
      stack.Stacks.backend
  in
  Fs.create fs "filler";
  Alcotest.(check bool) "No_space raised" true
    (try
       Fs.pwrite fs "filler" ~off:0 (Bytes.make (512 * 4096) 'x');
       false
     with Fs.No_space -> true)

let test_gluster_replica_set_properties () =
  let module Node = Tinca_cluster.Node in
  let module Gluster = Tinca_cluster.Gluster in
  let nodes =
    Array.init 4 (fun id ->
        Node.make ~id
          ~config:{ Node.default_config with nvm_bytes = 4 * 1024 * 1024; disk_blocks = 4096 }
          Node.Tinca_node)
  in
  let g = Gluster.create ~replicas:2 nodes in
  for i = 0 to 31 do
    let name = Printf.sprintf "file%d" i in
    let set = Gluster.replica_set g name in
    Alcotest.(check int) "set size" 2 (Array.length set);
    Alcotest.(check bool) "distinct nodes" true (set.(0).Node.id <> set.(1).Node.id);
    (* Deterministic. *)
    let again = Gluster.replica_set g name in
    Alcotest.(check bool) "stable" true
      (set.(0).Node.id = again.(0).Node.id && set.(1).Node.id = again.(1).Node.id)
  done;
  Alcotest.(check bool) "replica bound checked" true
    (try
       ignore (Gluster.create ~replicas:5 nodes);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "validation",
      [
        Alcotest.test_case "pmem" `Quick test_pmem_validation;
        Alcotest.test_case "disk" `Quick test_disk_validation;
        Alcotest.test_case "layout" `Quick test_layout_validation;
        Alcotest.test_case "cache" `Quick test_cache_validation;
        Alcotest.test_case "journal" `Quick test_journal_validation;
        Alcotest.test_case "fs" `Quick test_fs_validation;
        Alcotest.test_case "fs no-space" `Quick test_fs_no_space;
        Alcotest.test_case "gluster replica sets" `Quick test_gluster_replica_set_properties;
      ] );
  ]

let test_shutdown_drains () =
  let env = Stacks.make_env ~nvm_bytes:(2 * 1024 * 1024) ~disk_blocks:4096 () in
  let stack = small_tinca env in
  let fs =
    Fs.format ~config:{ Fs.default_config with ninodes = 64; journal_len = 64 }
      stack.Stacks.backend
  in
  Fs.create fs "s";
  Fs.pwrite fs "s" ~off:0 (Bytes.make 8192 's');
  Fs.shutdown fs;
  (* Everything must be on disk: a fresh Classic-free read of the raw
     disk shows the content via a re-mounted, recovered stack. *)
  Alcotest.(check bool) "disk holds data" true (Disk.written_blocks env.Stacks.disk > 0)

let shutdown_suite =
  [ ("validation.shutdown", [ Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains ]) ]
