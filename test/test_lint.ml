(* The linter's own gate: planted-violation fixtures (one per rule, each
   must be caught at the right file:line — the lint is mutation-tested,
   not trusted), the baseline round-trip, the justification-required
   check, and regression tests for the R4 burn-down conversions
   (Cache.Corrupt, Jsonv's specific-exception match). *)

open Tinca_lint

let find_all rule findings = List.filter (fun (f : Rules.finding) -> f.rule = rule) findings

let check_ok ~file src =
  match Lint.check_string ~file src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "fixture %s did not parse: %s" file msg

let has ~rule ~line ~token findings =
  List.exists
    (fun (f : Rules.finding) -> f.rule = rule && f.line = line && f.token = token)
    findings

let check_caught name ~rule ~line ~token findings =
  Alcotest.(check bool)
    (Printf.sprintf "%s caught at line %d (token %s)" name line token)
    true
    (has ~rule ~line ~token findings)

(* --- R1: toplevel mutable state ----------------------------------------- *)

let r1_fixture =
  {|
let table = Hashtbl.create 16
let counter = ref 0
let weights = [| 1; 2; 3 |]
type cursor = { mutable pos : int; src : string }
let origin = { pos = 0; src = "" }
let per_call x = ref x
module Nested = struct
  let inner = Buffer.create 64
end
|}

let test_r1_fixture () =
  let findings, _ = check_ok ~file:"lib/util/fixture_r1.ml" r1_fixture in
  let r1 = find_all Rules.R1 findings in
  check_caught "toplevel Hashtbl" ~rule:Rules.R1 ~line:2 ~token:"table" r1;
  check_caught "toplevel ref" ~rule:Rules.R1 ~line:3 ~token:"counter" r1;
  check_caught "array literal" ~rule:Rules.R1 ~line:4 ~token:"weights" r1;
  check_caught "mutable-record literal" ~rule:Rules.R1 ~line:6 ~token:"origin" r1;
  check_caught "nested module toplevel" ~rule:Rules.R1 ~line:9 ~token:"inner" r1;
  Alcotest.(check bool) "ref inside a function is per-call, not flagged" false
    (List.exists (fun (f : Rules.finding) -> f.token = "per_call") r1);
  Alcotest.(check int) "exactly the planted R1 sites" 5 (List.length r1)

(* --- R2: pmem encapsulation --------------------------------------------- *)

let r2_fixture =
  {|
let seal pm =
  Pmem.atomic_write8 pm ~off:0 1L;
  Pmem.sfence pm
|}

let test_r2_fixture () =
  let findings, _ = check_ok ~file:"lib/workloads/fixture_r2.ml" r2_fixture in
  let r2 = find_all Rules.R2 findings in
  check_caught "atomic_write8 outside the allowlist" ~rule:Rules.R2 ~line:3 ~token:"atomic_write8"
    r2;
  check_caught "sfence outside the allowlist" ~rule:Rules.R2 ~line:4 ~token:"sfence" r2;
  (* The same source under an allowlisted module is clean. *)
  let findings, _ = check_ok ~file:"lib/core/fixture_r2.ml" r2_fixture in
  Alcotest.(check int) "allowlisted module may touch Pmem" 0
    (List.length (find_all Rules.R2 findings))

(* --- R3: fence discipline ----------------------------------------------- *)

let r3_fixture =
  {|
let bad pm b = Pmem.write pm ~off:0 b

let flels pm b =
  Pmem.write pm ~off:0 b;
  Pmem.clflush pm ~off:0 ~len:64

let branchy pm b cond =
  Pmem.write pm ~off:0 b;
  if cond then Pmem.persist pm ~off:0 ~len:64

let good pm b =
  Pmem.write pm ~off:0 b;
  Pmem.persist pm ~off:0 ~len:64

let good_fence pm b =
  Pmem.write pm ~off:0 b;
  Pmem.clflush pm ~off:0 ~len:64;
  Pmem.sfence pm

let good_iter pm bs =
  List.iter (fun b -> Pmem.write pm ~off:0 b) bs;
  Pmem.clflush pm ~off:0 ~len:64;
  Pmem.sfence pm

let error_path pm b =
  if Bytes.length b <> 64 then invalid_arg "size";
  Pmem.write pm ~off:0 b;
  Pmem.persist pm ~off:0 ~len:64

let staged pm b = Pmem.write pm ~off:0 b [@@pmem.defer "caller fences at commit"]

let nojust pm b = Pmem.write pm ~off:0 b [@@pmem.defer]
|}

let test_r3_fixture () =
  let findings, deferred = check_ok ~file:"lib/core/fixture_r3.ml" r3_fixture in
  let r3 = find_all Rules.R3 findings in
  check_caught "unflushed exit" ~rule:Rules.R3 ~line:2 ~token:"bad" r3;
  check_caught "flushed but unfenced exit" ~rule:Rules.R3 ~line:4 ~token:"flels" r3;
  check_caught "one branch persists, the other leaks" ~rule:Rules.R3 ~line:8 ~token:"branchy" r3;
  check_caught "defer without justification" ~rule:Rules.R3 ~line:33 ~token:"nojust" r3;
  Alcotest.(check int) "exactly the planted R3 sites" 4 (List.length r3);
  Alcotest.(check int) "one deferred obligation reported" 1 (List.length deferred);
  let d = List.hd deferred in
  Alcotest.(check string) "deferred function" "staged" d.Rules.d_fn;
  Alcotest.(check string) "deferred reason" "caller fences at commit" d.Rules.d_reason

let test_r3_scope () =
  (* The device model itself and the checkers are out of R3 scope. *)
  let findings, _ = check_ok ~file:"lib/pmem/fixture_r3.ml" r3_fixture in
  Alcotest.(check int) "lib/pmem exempt from R3" 0 (List.length (find_all Rules.R3 findings));
  let findings, _ = check_ok ~file:"lib/check/fixture_r3.ml" r3_fixture in
  Alcotest.(check int) "lib/check exempt from R3" 0 (List.length (find_all Rules.R3 findings))

(* --- R4: error discipline ----------------------------------------------- *)

let r4_fixture =
  {|
let f () = failwith "boom"
let g () = assert false
let h x = Obj.magic x
let k job = try job () with _ -> 0
|}

let test_r4_fixture () =
  let findings, _ = check_ok ~file:"lib/core/fixture_r4.ml" r4_fixture in
  let r4 = find_all Rules.R4 findings in
  check_caught "failwith in core" ~rule:Rules.R4 ~line:2 ~token:"failwith" r4;
  check_caught "assert false in core" ~rule:Rules.R4 ~line:3 ~token:"assert_false" r4;
  check_caught "Obj.magic" ~rule:Rules.R4 ~line:4 ~token:"obj_magic" r4;
  check_caught "catch-all try" ~rule:Rules.R4 ~line:5 ~token:"catch_all" r4;
  (* Outside the result-disciplined core only Obj.magic and the
     catch-all remain banned. *)
  let findings, _ = check_ok ~file:"lib/workloads/fixture_r4.ml" r4_fixture in
  let r4 = find_all Rules.R4 findings in
  Alcotest.(check bool) "failwith tolerated outside the core" false
    (List.exists (fun (f : Rules.finding) -> f.token = "failwith") r4);
  check_caught "Obj.magic banned everywhere" ~rule:Rules.R4 ~line:4 ~token:"obj_magic" r4;
  check_caught "catch-all banned everywhere" ~rule:Rules.R4 ~line:5 ~token:"catch_all" r4

(* --- R5: interface coverage --------------------------------------------- *)

let test_r5_fixture () =
  let findings =
    Rules.r5
      ~ml_files:[ "lib/foo/covered.ml"; "lib/foo/naked.ml" ]
      ~mli_files:[ "lib/foo/covered.mli" ]
  in
  Alcotest.(check int) "one uncovered module" 1 (List.length findings);
  let f = List.hd findings in
  Alcotest.(check string) "names the module" "naked" f.Rules.token;
  Alcotest.(check string) "names the file" "lib/foo/naked.ml" f.Rules.file

(* --- baseline ------------------------------------------------------------ *)

let entries =
  [
    { Baseline.rule = Rules.R2; file = "lib/ubj/ubj.ml"; token = "write"; justification = "own stack" };
    { Baseline.rule = Rules.R1; file = "lib/obs/trace.ml"; token = "st"; justification = "tracer global" };
    { Baseline.rule = Rules.R1; file = "lib/obs/trace.ml"; token = "st"; justification = "tracer global" };
  ]

let test_baseline_roundtrip () =
  match Baseline.parse (Baseline.emit entries) with
  | Ok parsed ->
      Alcotest.(check int) "dup collapsed" 2 (List.length parsed);
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %s/%s survives the round-trip" e.Baseline.file e.Baseline.token)
            true (List.mem e parsed))
        entries;
      (* emit∘parse is a fixpoint: a second trip is byte-identical. *)
      Alcotest.(check string) "emit is canonical" (Baseline.emit entries) (Baseline.emit parsed)
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg

let test_baseline_requires_justification () =
  (match Baseline.parse "R1 lib/x.ml token \"\"\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty justification accepted");
  (match Baseline.parse "R1 lib/x.ml token \"   \"\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "blank justification accepted");
  (match Baseline.parse "R1 lib/x.ml token\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing justification accepted");
  match Baseline.parse "R9 lib/x.ml token \"why\"\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule accepted"

let test_baseline_reconcile () =
  let finding rule file token =
    { Rules.rule; file; line = 7; token; message = "m" }
  in
  let covered = finding Rules.R2 "lib/ubj/ubj.ml" "write" in
  let uncovered = finding Rules.R2 "lib/ubj/ubj.ml" "sfence" in
  let fresh, stale = Baseline.reconcile entries [ covered; uncovered ] in
  Alcotest.(check int) "only the uncovered finding is fresh" 1 (List.length fresh);
  Alcotest.(check string) "the fresh one" "sfence" (List.hd fresh).Rules.token;
  Alcotest.(check bool) "unmatched entries are stale" true
    (List.exists (fun e -> e.Baseline.token = "st") stale);
  let fresh, stale =
    Baseline.reconcile entries [ covered; finding Rules.R1 "lib/obs/trace.ml" "st" ]
  in
  Alcotest.(check int) "fully covered run has no fresh findings" 0 (List.length fresh);
  Alcotest.(check int) "no stale entries when every entry matches" 0 (List.length stale)

(* --- R4 burn-down regressions ------------------------------------------- *)

open Tinca_core
open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let mk_env () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(256 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:32 ~block_size:4096 in
  (pmem, disk, clock, metrics)

let contains msg fragment =
  let n = String.length msg and m = String.length fragment in
  let rec at i = i + m <= n && (String.sub msg i m = fragment || at (i + 1)) in
  at 0

(* Unformatted media now raises the typed Cache.Corrupt, not a bare
   Failure — callers can tell bad media from arbitrary internal errors. *)
let test_corrupt_is_typed () =
  let pmem, disk, clock, metrics = mk_env () in
  match Cache.recover ~pmem ~disk ~clock ~metrics () with
  | exception Cache.Corrupt msg ->
      Alcotest.(check bool) "diagnostic names the cache" true (contains msg "Tinca")
  | exception e -> Alcotest.failf "expected Cache.Corrupt, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "recovery accepted unformatted media"

(* The facade still maps corrupt media to Error (Unformatted _). *)
let test_facade_unformatted () =
  let pmem, disk, clock, metrics = mk_env () in
  match Tinca.recover ~pmem ~disk ~clock ~metrics with
  | Error (Tinca.Unformatted _) -> ()
  | Error e -> Alcotest.failf "expected Unformatted, got %s" (Tinca.error_message e)
  | Ok _ -> Alcotest.fail "facade accepted unformatted media"

(* Second tranche (ISSUE 8): the invariant audits now raise the typed
   Cache.Invariant_violation, never a bare Failure — the lockstep sweep
   and the crash checker key on the exception constructor instead of
   pattern-matching Failure payloads.  (The third conversion of the
   tranche, the commit-path `assert false` on a missing entry slot, was
   removed structurally: the slot now travels inside the allocation's
   [Miss] constructor, so the impossible state is unrepresentable and
   has no runtime path left to test.) *)
let test_invariant_violation_is_typed () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(512 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:64 ~block_size:4096 in
  let shard =
    Shard.format ~nshards:2
      ~config:{ Cache.default_config with Cache.ring_slots = 16 }
      ~pmem ~disk ~clock ~metrics
  in
  Shard.check_invariants shard;
  (* Plant a stuck cross-shard seal (offset 64 in the shard directory
     line): the audit must refuse it with the typed exception. *)
  Pmem.atomic_write8_int pmem ~off:64 0xBEEF;
  (match Shard.check_invariants shard with
  | exception Cache.Invariant_violation msg ->
      Alcotest.(check bool) "diagnostic names the seal" true (contains msg "seal")
  | exception e ->
      Alcotest.failf "expected Cache.Invariant_violation, got %s" (Printexc.to_string e)
  | () -> Alcotest.fail "stuck seal passed the audit");
  Pmem.atomic_write8_int pmem ~off:64 0;
  Shard.check_invariants shard

(* The typed exception registers a printer, so a violation escaping to
   the top level still prints its diagnostic. *)
let test_invariant_violation_printer () =
  Alcotest.(check bool) "printer renders the payload" true
    (contains
       (Printexc.to_string (Cache.Invariant_violation "LRU length 3 <> index size 4"))
       "LRU length 3 <> index size 4")

(* Jsonv's \u escape handler now matches only int_of_string's Failure;
   a bad escape is still a clean parse error, not a crash. *)
let test_jsonv_bad_escape () =
  match Tinca_obs.Jsonv.parse {|"\uZZZZ"|} with
  | Error msg ->
      Alcotest.(check bool) "parse failed with a diagnostic" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad \\u escape accepted"

let suite =
  [
    ( "lint.fixtures",
      [
        Alcotest.test_case "R1 planted violations caught" `Quick test_r1_fixture;
        Alcotest.test_case "R2 planted violations caught" `Quick test_r2_fixture;
        Alcotest.test_case "R3 planted violations caught" `Quick test_r3_fixture;
        Alcotest.test_case "R3 scope exemptions" `Quick test_r3_scope;
        Alcotest.test_case "R4 planted violations caught" `Quick test_r4_fixture;
        Alcotest.test_case "R5 uncovered module caught" `Quick test_r5_fixture;
      ] );
    ( "lint.baseline",
      [
        Alcotest.test_case "round-trip is identity" `Quick test_baseline_roundtrip;
        Alcotest.test_case "justification required" `Quick test_baseline_requires_justification;
        Alcotest.test_case "reconcile fresh/stale" `Quick test_baseline_reconcile;
      ] );
    ( "lint.r4_burndown",
      [
        Alcotest.test_case "corrupt media raises typed Corrupt" `Quick test_corrupt_is_typed;
        Alcotest.test_case "facade maps Corrupt to Unformatted" `Quick test_facade_unformatted;
        Alcotest.test_case "jsonv bad escape is a parse error" `Quick test_jsonv_bad_escape;
        Alcotest.test_case "invariant audits raise typed exception" `Quick
          test_invariant_violation_is_typed;
        Alcotest.test_case "Invariant_violation printer registered" `Quick
          test_invariant_violation_printer;
      ] );
  ]
