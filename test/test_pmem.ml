(* Tests of the persistent-memory simulator: store/flush/fence semantics,
   crash resolution, atomicity, counters, wear. *)
open Tinca_sim
module Pmem = Tinca_pmem.Pmem

let mk ?(tech = Latency.Pcm) ?(size = 8192) ?(seed = 1) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let p = Pmem.create ~seed ~clock ~metrics ~tech ~size () in
  (p, clock, metrics)

let bytes_of s = Bytes.of_string s

let test_read_back () =
  let p, _, _ = mk () in
  Pmem.write p ~off:100 (bytes_of "hello");
  Alcotest.(check string) "newest visible" "hello" (Bytes.to_string (Pmem.read p ~off:100 ~len:5))

let test_persist_survives_crash () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "durable!");
  Pmem.persist p ~off:0 ~len:8;
  (* Crash with survival = 0: every non-durable line is lost. *)
  Pmem.crash ~seed:9 ~survival:0.0 p;
  Alcotest.(check string) "persisted data survives" "durable!"
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_unflushed_lost_when_survival_zero () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "volatile");
  Pmem.crash ~seed:9 ~survival:0.0 p;
  Alcotest.(check string) "unflushed store lost" (String.make 8 '\000')
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_unflushed_survives_when_survival_one () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "volatile");
  Pmem.crash ~seed:9 ~survival:1.0 p;
  Alcotest.(check string) "line evicted before crash" "volatile"
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_clflush_without_fence_not_durable () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "pending!");
  Pmem.clflush p ~off:0 ~len:8;
  (* Still flush-pending: a crash with survival 0 loses it. *)
  Pmem.crash ~seed:9 ~survival:0.0 p;
  Alcotest.(check string) "clflush alone is not durability" (String.make 8 '\000')
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_fence_makes_pending_durable () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "pending!");
  Pmem.clflush p ~off:0 ~len:8;
  Pmem.sfence p;
  Alcotest.(check int) "no dirty lines" 0 (Pmem.dirty_line_count p);
  Pmem.crash ~seed:9 ~survival:0.0 p;
  Alcotest.(check string) "fenced line durable" "pending!"
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_crash_reverts_to_last_persisted () =
  let p, _, _ = mk () in
  Pmem.write p ~off:0 (bytes_of "version1");
  Pmem.persist p ~off:0 ~len:8;
  Pmem.write p ~off:0 (bytes_of "version2");
  Pmem.crash ~seed:9 ~survival:0.0 p;
  Alcotest.(check string) "reverted to last persisted" "version1"
    (Bytes.to_string (Pmem.read p ~off:0 ~len:8))

let test_crash_subset_is_per_line () =
  (* Two distinct lines dirty; with 50 % survival and many seeds we should
     observe all four outcomes, demonstrating per-line independence. *)
  let outcomes = Hashtbl.create 4 in
  for seed = 0 to 63 do
    let p, _, _ = mk () in
    Pmem.write p ~off:0 (bytes_of "AAAAAAAA");
    Pmem.write p ~off:64 (bytes_of "BBBBBBBB");
    Pmem.crash ~seed ~survival:0.5 p;
    let a = Bytes.get (Pmem.read p ~off:0 ~len:1) 0 = 'A' in
    let b = Bytes.get (Pmem.read p ~off:64 ~len:1) 0 = 'B' in
    Hashtbl.replace outcomes (a, b) ()
  done;
  Alcotest.(check int) "all four survival combinations seen" 4 (Hashtbl.length outcomes)

let test_atomic8_alignment_enforced () =
  let p, _, _ = mk () in
  Alcotest.check_raises "misaligned" (Invalid_argument "Pmem.atomic_write8: misaligned")
    (fun () -> Pmem.atomic_write8 p ~off:4 1L)

let test_atomic16_alignment_enforced () =
  let p, _, _ = mk () in
  Alcotest.check_raises "misaligned" (Invalid_argument "Pmem.atomic_write16: misaligned")
    (fun () -> Pmem.atomic_write16 p ~off:8 (Bytes.make 16 'x'))

let test_atomic8_roundtrip () =
  let p, _, _ = mk () in
  Pmem.atomic_write8 p ~off:16 0x1122334455667788L;
  Alcotest.(check int64) "roundtrip" 0x1122334455667788L (Pmem.read_u64 p ~off:16)

let test_atomic8_never_tears () =
  (* An 8 B atomic store within one line either fully survives a crash or
     fully reverts — never a byte mixture. *)
  for seed = 0 to 31 do
    let p, _, _ = mk () in
    Pmem.atomic_write8 p ~off:0 0x5555555555555555L;
    Pmem.persist p ~off:0 ~len:8;
    Pmem.atomic_write8 p ~off:0 0xAAAAAAAAAAAAAAAAL;
    Pmem.crash ~seed ~survival:0.5 p;
    let v = Pmem.read_u64 p ~off:0 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: no torn value" seed)
      true
      (Int64.equal v 0x5555555555555555L || Int64.equal v 0xAAAAAAAAAAAAAAAAL)
  done

let test_out_of_bounds_rejected () =
  let p, _, _ = mk ~size:128 () in
  Alcotest.(check bool) "raises" true
    (try
       Pmem.write p ~off:120 (bytes_of "too-long!");
       false
     with Invalid_argument _ -> true)

let test_counters () =
  let p, _, m = mk () in
  Pmem.write p ~off:0 (Bytes.make 256 'x');
  (* 256 B = 4 lines *)
  Alcotest.(check int) "store lines" 4 (Metrics.get m "pmem.store_lines");
  Pmem.clflush p ~off:0 ~len:256;
  Alcotest.(check int) "clflush count" 4 (Metrics.get m "pmem.clflush");
  Pmem.sfence p;
  Alcotest.(check int) "sfence count" 1 (Metrics.get m "pmem.sfence");
  Alcotest.(check int) "lines persisted" 4 (Metrics.get m "pmem.lines_persisted")

let test_clock_charges () =
  let p, clock, _ = mk ~tech:Latency.Pcm () in
  let t0 = Clock.now_ns clock in
  Pmem.write p ~off:0 (Bytes.make 64 'x');
  Pmem.persist p ~off:0 ~len:64;
  let dt = Clock.now_ns clock -. t0 in
  (* One line: store 10 + clflush 100 + write 195 + sfence 20 = 325 ns. *)
  Alcotest.(check (float 1.0)) "pcm line persist cost" 325.0 dt

let test_tech_affects_cost () =
  let cost tech =
    let p, clock, _ = mk ~tech () in
    Pmem.write p ~off:0 (Bytes.make 4096 'x');
    Pmem.persist p ~off:0 ~len:4096;
    Clock.now_ns clock
  in
  Alcotest.(check bool) "PCM slower than NVDIMM" true (cost Latency.Pcm > cost Latency.Nvdimm);
  Alcotest.(check bool) "STT-RAM between" true
    (cost Latency.Stt_ram > cost Latency.Nvdimm && cost Latency.Stt_ram < cost Latency.Pcm)

let test_crash_countdown () =
  let p, _, _ = mk () in
  Pmem.set_crash_countdown p (Some 3);
  Pmem.write p ~off:0 (bytes_of "a");
  (* event 1 *)
  Pmem.clflush p ~off:0 ~len:1;
  (* event 2 *)
  Alcotest.check_raises "third event crashes" Pmem.Crash_point (fun () -> Pmem.sfence p);
  (* After the raise the hook stays armed until crash is called. *)
  Pmem.crash ~seed:1 ~survival:0.0 p;
  (* Disabled after crash: no raise. *)
  Pmem.write p ~off:0 (bytes_of "b")

let test_wear_accounting () =
  let p, _, _ = mk () in
  for _ = 1 to 10 do
    Pmem.write p ~off:0 (Bytes.make 64 'x');
    Pmem.persist p ~off:0 ~len:64
  done;
  Alcotest.(check int) "total wear" 10 (Pmem.wear_total p);
  Alcotest.(check int) "max wear" 10 (Pmem.wear_max p)

let test_dirty_tracking () =
  let p, _, _ = mk () in
  Alcotest.(check bool) "clean initially" false (Pmem.is_dirty p ~off:0);
  Pmem.write p ~off:0 (bytes_of "x");
  Alcotest.(check bool) "dirty after store" true (Pmem.is_dirty p ~off:0);
  Pmem.persist p ~off:0 ~len:1;
  Alcotest.(check bool) "clean after persist" false (Pmem.is_dirty p ~off:0)

(* --- crash-space exploration hooks (lib/check's model checker) ----------- *)

let test_unfenced_lines_ordering () =
  let p, _, _ = mk ~size:4096 () in
  Alcotest.(check (list int)) "clean device" [] (Pmem.unfenced_lines p);
  (* Dirty lines 5, 1 and 3 in that order: the listing is ascending. *)
  Pmem.write p ~off:(5 * 64) (bytes_of "e");
  Pmem.write p ~off:(1 * 64) (bytes_of "a");
  Pmem.write p ~off:(3 * 64) (bytes_of "c");
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5 ] (Pmem.unfenced_lines p);
  (* A flush-pending line is still unfenced. *)
  Pmem.clflush p ~off:(3 * 64) ~len:64;
  Alcotest.(check (list int)) "pending still listed" [ 1; 3; 5 ] (Pmem.unfenced_lines p);
  Pmem.sfence p;
  (* The fence persisted line 3 only; 1 and 5 were never flushed. *)
  Alcotest.(check (list int)) "fence clears pending only" [ 1; 5 ] (Pmem.unfenced_lines p)

let test_line_torn () =
  let p, _, _ = mk ~size:4096 () in
  Pmem.write p ~off:0 (bytes_of "version1");
  Pmem.persist p ~off:0 ~len:8;
  (* Rewriting the identical bytes dirties the line without changing it:
     losing vs. keeping it is indistinguishable, so it is not torn. *)
  Pmem.write p ~off:0 (bytes_of "version1");
  Alcotest.(check (list int)) "line is unfenced" [ 0 ] (Pmem.unfenced_lines p);
  Alcotest.(check bool) "identical rewrite is not torn" false (Pmem.line_torn p 0);
  (* A genuine change is torn. *)
  Pmem.write p ~off:0 (bytes_of "version2");
  Alcotest.(check bool) "changed line is torn" true (Pmem.line_torn p 0)

let test_crash_select_verdicts () =
  let p, _, _ = mk ~size:4096 () in
  Pmem.write p ~off:0 (bytes_of "AAAAAAAA");
  Pmem.write p ~off:64 (bytes_of "BBBBBBBB");
  (* Line 0 survives, line 1 is lost — deterministically. *)
  Pmem.crash_select p ~survive:(fun idx -> idx = 0);
  Alcotest.(check string) "survivor kept" "AAAAAAAA" (Bytes.to_string (Pmem.read p ~off:0 ~len:8));
  Alcotest.(check string) "loser reverted" (String.make 8 '\000')
    (Bytes.to_string (Pmem.read p ~off:64 ~len:8));
  Alcotest.(check int) "volatile layer emptied" 0 (Pmem.dirty_line_count p)

let test_snapshot_restore_roundtrip () =
  let p, _, _ = mk ~size:4096 () in
  (* Build mixed state: a persisted line (wear), a flush-pending line and
     a dirty line. *)
  Pmem.write p ~off:0 (bytes_of "durable!");
  Pmem.persist p ~off:0 ~len:8;
  Pmem.write p ~off:64 (bytes_of "pending!");
  Pmem.clflush p ~off:64 ~len:8;
  Pmem.write p ~off:128 (bytes_of "volatile");
  let snap = Pmem.snapshot p in
  let digest0 = Pmem.media_digest p in
  let dirty0 = Pmem.dirty_line_count p in
  let unfenced0 = Pmem.unfenced_lines p in
  let wear0 = Pmem.wear_total p in
  (* Diverge: lose everything volatile, then overwrite the durable line. *)
  Pmem.crash ~seed:3 ~survival:0.0 p;
  Pmem.write p ~off:0 (bytes_of "other!!!");
  Pmem.persist p ~off:0 ~len:8;
  Alcotest.(check bool) "diverged" false (Digest.equal digest0 (Pmem.media_digest p));
  (* Restore: medium, volatile layer and wear all return. *)
  Pmem.restore p snap;
  Alcotest.(check bool) "media digest restored" true (Digest.equal digest0 (Pmem.media_digest p));
  Alcotest.(check int) "dirty lines restored" dirty0 (Pmem.dirty_line_count p);
  Alcotest.(check (list int)) "unfenced set restored" unfenced0 (Pmem.unfenced_lines p);
  Alcotest.(check int) "wear restored" wear0 (Pmem.wear_total p);
  Alcotest.(check string) "newest store visible again" "volatile"
    (Bytes.to_string (Pmem.read p ~off:128 ~len:8));
  (* The pending flag survived the round-trip: a fence persists line 1,
     after which survival-0 crash keeps it but loses line 2. *)
  Pmem.sfence p;
  Pmem.crash ~seed:4 ~survival:0.0 p;
  Alcotest.(check string) "restored pending line fenced durable" "pending!"
    (Bytes.to_string (Pmem.read p ~off:64 ~len:8));
  Alcotest.(check string) "restored dirty line lost" (String.make 8 '\000')
    (Bytes.to_string (Pmem.read p ~off:128 ~len:8))

let test_wear_max_in_ranges () =
  let p, _, _ = mk ~size:4096 () in
  (* Line 0: 5 write-backs; line 2: 2 write-backs. *)
  for _ = 1 to 5 do
    Pmem.write p ~off:0 (Bytes.make 64 'x');
    Pmem.persist p ~off:0 ~len:64
  done;
  for _ = 1 to 2 do
    Pmem.write p ~off:128 (Bytes.make 64 'y');
    Pmem.persist p ~off:128 ~len:64
  done;
  Alcotest.(check int) "whole device" 5 (Pmem.wear_max_in p ~off:0 ~len:4096);
  Alcotest.(check int) "hot line only" 5 (Pmem.wear_max_in p ~off:0 ~len:64);
  Alcotest.(check int) "excluding the hot line" 2 (Pmem.wear_max_in p ~off:64 ~len:(4096 - 64));
  Alcotest.(check int) "untouched range" 0 (Pmem.wear_max_in p ~off:1024 ~len:1024);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Pmem.wear_max_in p ~off:4032 ~len:128);
       false
     with Invalid_argument _ -> true)

(* --- event observation (lib/check's persistence sanitizer) --------------- *)

let test_observer_event_sequence () =
  let p, _, _ = mk ~size:4096 () in
  let seen = ref [] in
  Pmem.set_observer p (Some (fun ev -> seen := ev :: !seen));
  Pmem.write p ~off:0 (bytes_of "hello");
  Pmem.persist p ~off:0 ~len:5;
  Pmem.atomic_write8 p ~off:64 1L;
  Pmem.write p ~off:0 Bytes.empty;
  (* zero-length: no event *)
  Pmem.set_observer p None;
  Pmem.write p ~off:0 (bytes_of "unobserved");
  Alcotest.(check bool) "exactly one event per op, none after detach" true
    (List.rev !seen
    = [
        Pmem.Store { off = 0; len = 5 };
        Pmem.Clflush { off = 0; len = 5 };
        Pmem.Sfence;
        Pmem.Atomic_write { off = 64; len = 8 };
      ])

let test_atomic8_int_rejects_negative () =
  let p, _, _ = mk () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Pmem.atomic_write8_int: negative value") (fun () ->
      Pmem.atomic_write8_int p ~off:0 (-1))

(* Property: any prefix of (write; persist) operations followed by a crash
   preserves every persisted write. *)
let prop_persisted_prefix_survives =
  QCheck.Test.make ~name:"persisted writes survive any crash" ~count:100
    QCheck.(pair small_nat (list_of_size Gen.(int_range 1 20) (pair (int_bound 63) (int_bound 255))))
    (fun (seed, writes) ->
      let p, _, _ = mk ~size:4096 () in
      List.iter
        (fun (line, v) ->
          let b = Bytes.make 64 (Char.chr v) in
          Pmem.write p ~off:(line * 64) b;
          Pmem.persist p ~off:(line * 64) ~len:64)
        writes;
      Pmem.crash ~seed ~survival:0.0 p;
      (* The LAST persisted value for each line must be present. *)
      let expect = Hashtbl.create 16 in
      List.iter (fun (line, v) -> Hashtbl.replace expect line v) writes;
      Hashtbl.fold
        (fun line v acc ->
          acc && Bytes.get (Pmem.read p ~off:(line * 64) ~len:1) 0 = Char.chr v)
        expect true)

(* Property: a crash never invents data — every line is either its newest
   store or its last persisted content. *)
let prop_crash_no_invention =
  QCheck.Test.make ~name:"crash yields old or new content per line" ~count:100
    QCheck.(triple small_nat (int_bound 63) (pair (int_bound 255) (int_bound 255)))
    (fun (seed, line, (v1, v2)) ->
      let p, _, _ = mk ~size:4096 () in
      Pmem.write p ~off:(line * 64) (Bytes.make 64 (Char.chr v1));
      Pmem.persist p ~off:(line * 64) ~len:64;
      Pmem.write p ~off:(line * 64) (Bytes.make 64 (Char.chr v2));
      Pmem.crash ~seed ~survival:0.5 p;
      let c = Bytes.get (Pmem.read p ~off:(line * 64) ~len:1) 0 in
      c = Char.chr v1 || c = Char.chr v2)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "pmem.semantics",
      [
        Alcotest.test_case "read back newest" `Quick test_read_back;
        Alcotest.test_case "persist survives crash" `Quick test_persist_survives_crash;
        Alcotest.test_case "unflushed lost (survival 0)" `Quick test_unflushed_lost_when_survival_zero;
        Alcotest.test_case "unflushed kept (survival 1)" `Quick test_unflushed_survives_when_survival_one;
        Alcotest.test_case "clflush alone not durable" `Quick test_clflush_without_fence_not_durable;
        Alcotest.test_case "fence completes flush" `Quick test_fence_makes_pending_durable;
        Alcotest.test_case "crash reverts to persisted" `Quick test_crash_reverts_to_last_persisted;
        Alcotest.test_case "per-line independence" `Quick test_crash_subset_is_per_line;
        q prop_persisted_prefix_survives;
        q prop_crash_no_invention;
      ] );
    ( "pmem.atomics",
      [
        Alcotest.test_case "atomic8 alignment" `Quick test_atomic8_alignment_enforced;
        Alcotest.test_case "atomic16 alignment" `Quick test_atomic16_alignment_enforced;
        Alcotest.test_case "atomic8 roundtrip" `Quick test_atomic8_roundtrip;
        Alcotest.test_case "atomic8 never tears" `Quick test_atomic8_never_tears;
        Alcotest.test_case "bounds checked" `Quick test_out_of_bounds_rejected;
      ] );
    ( "pmem.accounting",
      [
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "clock charges" `Quick test_clock_charges;
        Alcotest.test_case "technology cost ordering" `Quick test_tech_affects_cost;
        Alcotest.test_case "crash countdown hook" `Quick test_crash_countdown;
        Alcotest.test_case "wear accounting" `Quick test_wear_accounting;
        Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
      ] );
    ( "pmem.exploration",
      [
        Alcotest.test_case "unfenced_lines ascending" `Quick test_unfenced_lines_ordering;
        Alcotest.test_case "line_torn clean vs torn" `Quick test_line_torn;
        Alcotest.test_case "crash_select verdicts" `Quick test_crash_select_verdicts;
        Alcotest.test_case "snapshot/restore roundtrip" `Quick test_snapshot_restore_roundtrip;
        Alcotest.test_case "wear_max_in ranges" `Quick test_wear_max_in_ranges;
      ] );
    ( "pmem.observer",
      [
        Alcotest.test_case "event per operation" `Quick test_observer_event_sequence;
        Alcotest.test_case "atomic8_int rejects negative" `Quick test_atomic8_int_rejects_negative;
      ] );
  ]
