(* Flight recorder and crash forensics (ISSUE 9).

   - the record codec detects torn records instead of trusting them;
   - flight replay is deterministic: recovering the same crashed medium
     twice yields the same medium and the same dossier;
   - the recorder adds ZERO fences to the commit pipeline (the
     test_budget pin re-run with the recorder on);
   - the Flight_check crash sweep is clean at N=1 and N=4 (recovery
     identical with replay on/off, dossier agrees with the judge);
   - the planted Drop_durable_notify fault is convicted by the dossier
     alone, with the dead tickets named;
   - region-attributed wear and the group-committer runtime stats are
     exposed through the facade. *)

module Cache = Tinca_core.Cache
module Shard = Tinca_core.Shard
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Flight = Tinca_obs.Flight
module Forensics = Tinca_obs.Forensics
module FCheck = Tinca_checker.Flight_check
open Tinca_sim

(* --- codec: torn records are detected, not trusted ----------------------- *)

let ev kind = { Flight.kind; shard = 0; cause = Flight.Sync; a = 1; b = 2; c = 3; d = 4; batch = 5; t_ns = 6 }

let test_torn_record_detected () =
  let r = Flight.encode ~seq:9 (ev Flight.Txn_seal) in
  (match Flight.decode r with
  | Some (seq, e) ->
      Alcotest.(check int) "seq round-trips" 9 seq;
      Alcotest.(check string) "kind round-trips" "txn_seal" (Flight.kind_name e.Flight.kind)
  | None -> Alcotest.fail "intact record failed decode");
  (* Flip one byte anywhere in the checksummed span: decode must refuse. *)
  for off = 0 to 55 do
    let torn = Bytes.copy r in
    Bytes.set torn off (Char.chr (Char.code (Bytes.get torn off) lxor 0x40));
    Alcotest.(check bool)
      (Printf.sprintf "byte %d flipped -> torn" off)
      true
      (Flight.decode torn = None)
  done

let test_scan_drops_only_torn_tail () =
  let slots = 8 in
  let ring = Array.init slots (fun _ -> Bytes.make Flight.record_size '\000') in
  for seq = 0 to 4 do
    ring.(seq) <- Flight.encode ~seq (ev Flight.Batch_drain)
  done;
  (* Tear the newest record (seq 4) mid-line, as a crash would. *)
  Bytes.set ring.(4) 20 'X';
  let survivors, torn = Flight.scan ~slots ~read:(fun i -> ring.(i)) in
  Alcotest.(check int) "one torn record reported" 1 torn;
  Alcotest.(check (list int)) "survivors are exactly the intact prefix" [ 0; 1; 2; 3 ]
    (List.map fst survivors);
  (* Zeroed slots are empty, not torn. *)
  let _, torn0 = Flight.scan ~slots ~read:(fun _ -> Bytes.make Flight.record_size '\000') in
  Alcotest.(check int) "all-zero ring has no torn records" 0 torn0

(* --- shared environment --------------------------------------------------- *)

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env ?(pmem_bytes = 512 * 1024) ?(nblocks = 64) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks ~block_size:4096 in
  { pmem; disk; clock; metrics }

let facade ?(nshards = 1) ?(flight_slots = 64) ?(window = 1_000_000_000) ?(max_batch = 3) env =
  Tinca.ok_exn
    (Tinca.format
       ~config:
         {
           Tinca.Config.default with
           Tinca.Config.nvm_bytes = Pmem.size env.pmem;
           ring_slots = 128;
           nshards;
           flight_slots;
           group_window_ns = window;
           group_max_batch = max_batch;
         }
       ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)

let commit_async_blocks tc blocks fill =
  let txn = Tinca.init_txn tc in
  List.iter (fun b -> Tinca.ok_exn (Tinca.write txn b (Bytes.make 4096 fill))) blocks;
  Tinca.ok_exn (Tinca.commit_async txn)

(* --- replay determinism --------------------------------------------------- *)

(* Recovering the same crashed medium twice must produce the same
   logical cache state and the same dossier.  (Raw media legitimately
   differ: recovery's own flight records carry the live clock's
   timestamp, which advances between the two recoveries.) *)
let test_replay_deterministic () =
  let env = mk_env () in
  let tc = facade env in
  ignore (commit_async_blocks tc [ 0; 1 ] 'a');
  ignore (commit_async_blocks tc [ 2 ] 'b');
  ignore (commit_async_blocks tc [ 3; 4 ] 'c');
  (* max_batch=3 drained the first three; crash mid-second-batch. *)
  Pmem.set_crash_countdown env.pmem (Some 40);
  (match commit_async_blocks tc [ 5; 1 ] 'd' with
  | _ -> ()
  | exception Pmem.Crash_point -> ());
  Pmem.set_crash_countdown env.pmem None;
  Pmem.crash ~seed:7 env.pmem;
  let snap = Pmem.snapshot env.pmem in
  let recover_once () =
    match Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics with
    | Error e -> Alcotest.fail (Tinca.error_message e)
    | Ok t2 ->
        let dossier = Tinca.last_crash_report t2 in
        let records =
          match dossier with
          | None -> []
          | Some d -> List.map (fun (s, seq, e) -> (s, seq, Flight.kind_name e.Flight.kind)) d.Forensics.records
        in
        let buf = Buffer.create (8 * 4096) in
        for blk = 0 to 7 do
          Buffer.add_bytes buf (Tinca.ok_exn (Tinca.read t2 blk))
        done;
        (Digest.string (Buffer.contents buf), records)
  in
  let d1, r1 = recover_once () in
  Pmem.restore env.pmem snap;
  let d2, r2 = recover_once () in
  Alcotest.(check bool) "recovered logical state identical" true (d1 = d2);
  Alcotest.(check bool) "dossier records identical" true (r1 = r2);
  Alcotest.(check bool) "dossier non-empty" true (r1 <> [])

(* --- fence budget with the recorder ON ------------------------------------ *)

(* test_budget's pin re-run with flight_slots > 0: the recorder folds
   its record lines into existing fences, so the sfence count of every
   commit is IDENTICAL to the recorder-off pipeline. *)
let test_fence_budget_recorder_on () =
  let commit_fences ~flight_slots n =
    let env = mk_env ~pmem_bytes:(1024 * 1024) ~nblocks:256 () in
    let cache =
      Cache.format
        ~config:{ Cache.default_config with ring_slots = 128; flight_slots }
        ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
    in
    let commit () =
      let h = Cache.Txn.init cache in
      for b = 0 to n - 1 do
        Cache.Txn.add h b (Bytes.make 4096 'w')
      done;
      Cache.Txn.commit h
    in
    let fences f =
      let before = Metrics.get env.metrics "pmem.sfence" in
      f ();
      Metrics.get env.metrics "pmem.sfence" - before
    in
    let miss = fences commit in
    let hit = fences commit in
    Cache.check_invariants cache;
    (miss, hit)
  in
  List.iter
    (fun n ->
      let m_off, h_off = commit_fences ~flight_slots:0 n in
      let m_on, h_on = commit_fences ~flight_slots:256 n in
      Alcotest.(check int)
        (Printf.sprintf "%d-block miss commit: same fences with recorder on" n)
        m_off m_on;
      Alcotest.(check int)
        (Printf.sprintf "%d-block hit commit: same fences with recorder on" n)
        h_off h_on;
      Alcotest.(check bool)
        (Printf.sprintf "%d-block commit within 6-sfence budget with recorder on" n)
        true (m_on <= 6 && h_on <= 6))
    [ 1; 8; 64 ]

(* --- crash sweeps (recorder on) ------------------------------------------- *)

let sweep_cfg nshards stride = { FCheck.default_config with FCheck.nshards; stride }

let run_sweep name cfg =
  let r = FCheck.sweep cfg in
  Alcotest.(check bool)
    (Printf.sprintf "%s: states were explored" name)
    true (r.FCheck.states_checked > 0);
  Alcotest.(check (list string)) (Printf.sprintf "%s: no violations" name) [] r.FCheck.violations

let test_crash_sweep_n1 () = run_sweep "N=1" (sweep_cfg 1 23)
let test_crash_sweep_n4 () = run_sweep "N=4" (sweep_cfg 4 41)

(* --- the planted fault, convicted by the dossier alone -------------------- *)

let test_drop_notify_convicted () =
  List.iter
    (fun nshards ->
      match FCheck.drop_notify_scenario { FCheck.default_config with FCheck.nshards } with
      | Ok dossier -> (
          match Forensics.verdict dossier with
          | `Dead_acked dead ->
              Alcotest.(check bool)
                (Printf.sprintf "N=%d: dead tickets named" nshards)
                true (dead <> []);
              (* The render names the verdict for the operator. *)
              let text = Forensics.render dossier in
              Alcotest.(check bool)
                (Printf.sprintf "N=%d: dossier text reports dead-acked" nshards)
                true
                (String.length text > 0)
          | `Clean -> Alcotest.fail "scenario returned Ok but verdict is Clean")
      | Error msg -> Alcotest.fail (Printf.sprintf "N=%d: %s" nshards msg))
    [ 1; 4 ]

(* --- region wear and group runtime stats (satellites 2 and 3) ------------- *)

let test_region_wear () =
  let env = mk_env () in
  let tc = facade env in
  for i = 0 to 5 do
    ignore (commit_async_blocks tc [ i ] 'w')
  done;
  Tinca.group_flush tc;
  let wear = Tinca.region_wear tc in
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) wear with
    | Some (_, total, peak) -> (total, peak)
    | None -> Alcotest.fail (Printf.sprintf "region %s missing from wear table" name)
  in
  List.iter
    (fun name ->
      let total, peak = find name in
      Alcotest.(check bool) (name ^ " wear sane") true (total >= peak && peak >= 0))
    [ "super"; "head"; "tail"; "ring"; "flight"; "entries"; "data" ];
  let data_total, _ = find "data" in
  let flight_total, _ = find "flight" in
  Alcotest.(check bool) "data region wears under commits" true (data_total > 0);
  Alcotest.(check bool) "flight region wears when recorder on" true (flight_total > 0);
  (* Recorder off: the flight region reports zero wear. *)
  let env0 = mk_env () in
  let tc0 = facade ~flight_slots:0 env0 in
  ignore (commit_async_blocks tc0 [ 0 ] 'x');
  Tinca.group_flush tc0;
  (match List.find_opt (fun (n, _, _) -> n = "flight") (Tinca.region_wear tc0) with
  | Some (_, total, _) -> Alcotest.(check int) "flight wear zero when disabled" 0 total
  | None -> Alcotest.fail "flight region row missing when disabled");
  (* Sharded wear is per shard plus the header row. *)
  let env2 = mk_env ~pmem_bytes:(1024 * 1024) () in
  let tc2 = facade ~nshards:2 env2 in
  ignore (commit_async_blocks tc2 [ 0; 1 ] 'y');
  Tinca.group_flush tc2;
  let wear2 = Tinca.region_wear tc2 in
  Alcotest.(check bool) "sharded wear has header row" true
    (List.exists (fun (n, _, _) -> n = "header") wear2);
  Alcotest.(check bool) "sharded wear has per-shard rows" true
    (List.exists (fun (n, _, _) -> n = "s0.ring") wear2
    && List.exists (fun (n, _, _) -> n = "s1.ring") wear2)

let test_group_stats () =
  let env = mk_env () in
  let tc = facade ~max_batch:2 env in
  ignore (commit_async_blocks tc [ 0 ] 'a');
  ignore (commit_async_blocks tc [ 1 ] 'b');
  (* max_batch=2: the second seal drained the batch. *)
  ignore (commit_async_blocks tc [ 2 ] 'c');
  let tk = commit_async_blocks tc [ 2; 3 ] 'd' in
  (* same-block conflict on 2 forced a drain before the second seal *)
  Tinca.ok_exn (Tinca.await tk);
  Alcotest.(check bool) "batches counted" true (Tinca.group_batches tc >= 2);
  let drains = Tinca.group_drains_by_cause tc in
  let count cause = match List.assoc_opt cause drains with Some n -> n | None -> 0 in
  Alcotest.(check bool) "max_batch drain counted" true (count "max_batch" >= 1);
  Alcotest.(check bool) "conflict drain counted" true (count "conflict" >= 1);
  Alcotest.(check int) "drain causes sum to batches" (Tinca.group_batches tc)
    (List.fold_left (fun a (_, n) -> a + n) 0 drains);
  Alcotest.(check bool) "pending high-water tracked" true
    (Tinca.group_pending_high_water tc >= 2);
  let kv = Tinca.stats_kv tc in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in stats_kv") true (List.mem_assoc key kv))
    [ "group_batches"; "group_pending_high_water"; "group_drains_max_batch" ]

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "torn record detected by CRC" `Quick test_torn_record_detected;
        Alcotest.test_case "scan drops only the torn tail" `Quick test_scan_drops_only_torn_tail;
        Alcotest.test_case "flight replay is deterministic" `Quick test_replay_deterministic;
        Alcotest.test_case "fence budget unchanged with recorder on" `Quick
          test_fence_budget_recorder_on;
        Alcotest.test_case "crash sweep clean at N=1 (recorder on)" `Slow test_crash_sweep_n1;
        Alcotest.test_case "crash sweep clean at N=4 (recorder on)" `Slow test_crash_sweep_n4;
        Alcotest.test_case "Drop_durable_notify convicted by dossier" `Quick
          test_drop_notify_convicted;
        Alcotest.test_case "region-attributed wear" `Quick test_region_wear;
        Alcotest.test_case "group-committer runtime stats" `Quick test_group_stats;
      ] );
  ]
