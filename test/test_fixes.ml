(* Regression tests for the commit-path bugs flushed out by the
   crash-space checker, plus a budgeted run of the checker itself.

   Each test pins a specific fix and fails on the pre-fix code:
   - a rejected (too-large) commit must be terminal: the handle moves to
     Finished (so [abort] refuses it) and the cache is untouched, rather
     than being left stuck in Committing;
   - mid-commit revocation must restore the pre-transaction modified
     bit, not leave a clean block marked dirty (which schedules a
     spurious disk write-back at the next flush);
   - a corrupt superblock must fail recovery with a clean diagnostic,
     never [Division_by_zero] out of the layout arithmetic;
   - flushing an already-persisted (clean) cache line must charge only
     the instruction latency, not a medium write-back. *)

module Cache = Tinca_core.Cache
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Check = Tinca_checker.Crash_check
open Tinca_sim

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env ?(pmem_bytes = 160 * 1024) ?(nblocks = 64) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks ~block_size:4096 in
  { pmem; disk; clock; metrics }

let mk_cache ?(ring_slots = 64) env =
  Cache.format
    ~config:{ Cache.default_config with ring_slots }
    ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics

(* A commit rejected by admission control must be terminal and leave the
   cache exactly as before: the handle is Finished (abort refuses it),
   nothing was cached, and the cache still commits normal transactions. *)
let test_too_large_rejection_is_terminal () =
  let env = mk_env () in
  let cache = mk_cache env in
  let capacity = Cache.free_blocks cache in
  let h = Cache.Txn.init cache in
  for blk = 0 to capacity + 9 do
    Cache.Txn.add h blk (Bytes.make 4096 'x')
  done;
  Alcotest.check_raises "oversized commit rejected" Cache.Transaction_too_large (fun () ->
      Cache.Txn.commit h);
  Alcotest.(check bool) "rejected handle is finished (abort refuses it)" true
    (try
       Cache.Txn.abort h;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "nothing was cached" 0 (Cache.cached_blocks cache);
  Alcotest.(check int) "no NVM blocks consumed" capacity (Cache.free_blocks cache);
  Cache.check_invariants cache;
  (* The cache must not be stuck mid-commit: a normal commit still works. *)
  Cache.write_direct cache 1 (Bytes.make 4096 'y');
  Alcotest.(check (option bytes)) "subsequent commit lands"
    (Some (Bytes.make 4096 'y'))
    (Cache.peek cache 1);
  Cache.check_invariants cache

(* Revoking a COW write hit on a clean cached block must restore the
   clean modified bit: the block's content rolls back AND no spurious
   disk write-back is scheduled for it. *)
let test_revocation_restores_clean_bit () =
  let env = mk_env () in
  let cache = mk_cache env in
  Disk.write_block env.disk 7 (Bytes.make 4096 'a');
  ignore (Cache.read cache 7);
  (* Injected mid-commit failure after the block's COW step, then the
     production revocation path. *)
  let h = Cache.Txn.init cache in
  Cache.Txn.add h 7 (Bytes.make 4096 'b');
  Cache.Txn.commit_prefix h 1;
  Cache.Txn.abort h;
  Cache.check_invariants cache;
  Alcotest.(check (option bytes)) "content rolled back"
    (Some (Bytes.make 4096 'a'))
    (Cache.peek cache 7);
  let writes_before = Disk.writes env.disk in
  Cache.flush_all cache;
  Alcotest.(check int) "no spurious write-back of the clean block" writes_before
    (Disk.writes env.disk)

(* A dirty pre-state must stay dirty through revocation: the revoked
   block's committed-but-unflushed data still needs its write-back. *)
let test_revocation_keeps_dirty_bit () =
  let env = mk_env () in
  let cache = mk_cache env in
  Cache.write_direct cache 3 (Bytes.make 4096 'a');
  let h = Cache.Txn.init cache in
  Cache.Txn.add h 3 (Bytes.make 4096 'b');
  Cache.Txn.commit_prefix h 1;
  Cache.Txn.abort h;
  Cache.check_invariants cache;
  let writes_before = Disk.writes env.disk in
  Cache.flush_all cache;
  Alcotest.(check int) "committed data still written back" (writes_before + 1)
    (Disk.writes env.disk);
  Alcotest.(check bytes) "disk carries the committed version" (Bytes.make 4096 'a')
    (Disk.read_block env.disk 3)

let contains_substring msg fragment =
  let n = String.length msg and m = String.length fragment in
  let rec at i = i + m <= n && (String.sub msg i m = fragment || at (i + 1)) in
  at 0

let recover_fails_with env fragment =
  match
    Cache.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics ()
  with
  | exception Cache.Corrupt msg ->
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic %S mentions %S" msg fragment)
        true (contains_substring msg fragment)
  | exception e ->
      Alcotest.failf "expected a typed Cache.Corrupt, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "recovery accepted corrupt media"

(* Zeroed geometry in an otherwise valid superblock must surface as a
   clean "corrupt superblock" failure, not Division_by_zero out of
   Layout.compute's alignment arithmetic. *)
let test_corrupt_superblock_block_size () =
  let env = mk_env () in
  let cache = mk_cache env in
  Cache.write_direct cache 1 (Bytes.make 4096 'x');
  (* Zero the stored block_size (u32 at offset 8). *)
  Pmem.write env.pmem ~off:8 (Bytes.make 4 '\000');
  Pmem.persist env.pmem ~off:0 ~len:64;
  recover_fails_with env "corrupt superblock"

(* Geometry that cannot fit the device (huge ring) must also fail
   cleanly, before any layout arithmetic runs off the device's end. *)
let test_corrupt_superblock_geometry () =
  let env = mk_env () in
  let cache = mk_cache env in
  Cache.write_direct cache 1 (Bytes.make 4096 'x');
  (* Stored ring_slots (u32 at offset 12) := 2^24 slots = 128 MB ring. *)
  let b = Bytes.make 4 '\000' in
  Bytes.set b 3 '\001';
  Pmem.write env.pmem ~off:12 b;
  Pmem.persist env.pmem ~off:0 ~len:64;
  recover_fails_with env "corrupt superblock"

let test_unformatted_media () =
  let env = mk_env () in
  recover_fails_with env "unformatted"

(* clflush of an already-persisted line: the instruction is issued (and
   counted) but starts no medium write-back, so it must be cheaper than
   flushing a dirty line and must not bump the write-back counter. *)
let test_clean_clflush_charges_no_writeback () =
  let env = mk_env () in
  Pmem.write env.pmem ~off:0 (Bytes.make 64 'x');
  let t0 = Clock.now_ns env.clock in
  Pmem.persist env.pmem ~off:0 ~len:64;
  let dirty_cost = Clock.now_ns env.clock -. t0 in
  let flushes = Metrics.get env.metrics "pmem.clflush" in
  let writebacks = Metrics.get env.metrics "pmem.clflush_writebacks" in
  let t1 = Clock.now_ns env.clock in
  Pmem.persist env.pmem ~off:0 ~len:64 (* the line is clean now *);
  let clean_cost = Clock.now_ns env.clock -. t1 in
  Alcotest.(check int) "flush still issued" (flushes + 1)
    (Metrics.get env.metrics "pmem.clflush");
  Alcotest.(check int) "no write-back started" writebacks
    (Metrics.get env.metrics "pmem.clflush_writebacks");
  Alcotest.(check bool)
    (Printf.sprintf "clean flush (%.0f ns) cheaper than dirty flush (%.0f ns)" clean_cost
       dirty_cost)
    true (clean_cost < dirty_cost)

(* Budgeted run of the exhaustive crash-space checker: every crash point
   of a 2-commit workload, every survival subset of the torn lines up to
   the cap.  The full 6-commit sweep is `make check-crash`. *)
let test_crash_space_quick () =
  let cfg = { Check.default_config with Check.ncommits = 2; Check.mask_cap = 48 } in
  let r = Check.explore cfg in
  Alcotest.(check bool) "workload produced events" true (r.Check.span > 0);
  Alcotest.(check int) "every crash point explored" r.Check.span r.Check.crash_points;
  Alcotest.(check bool) "multiple post-crash states per crash point" true
    (r.Check.states_checked > r.Check.crash_points);
  (match r.Check.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "crash-space violation (of %d): %a" (List.length r.Check.violations)
        Check.pp_violation v);
  Alcotest.(check int) "no violations" 0 (List.length r.Check.violations)

(* The lockstep refinement harness's headline sensitivity guarantee,
   pinned as a regression: skipping the cross-shard seal (the bug class
   the seal exists to prevent) is invisible to a crash-free run but
   must be caught by spec refinement over the crash space at N=2, on
   the known 4-command minimal reproducer.  A clean run of the same
   sequence must stay clean (no false positive). *)
let test_skip_seal_caught_by_refinement () =
  let module L = Tinca_checker.Lockstep in
  let module Check = Tinca_checker.Crash_check in
  let g = { L.default_geometry with L.nshards = 2 } in
  let cmds = [| L.Begin; L.Write (34, 86); L.Write (23, 108); L.Commit |] in
  (match L.run ~mutate:L.Skip_seal g cmds with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "seal skip visible without a crash: %s"
        (Format.asprintf "%a" L.pp_divergence d));
  let clean = L.crash_refine ~cap:16 g cmds in
  Alcotest.(check int) "unmutated run refines the spec" 0
    (List.length clean.Check.violations);
  let mutated = L.crash_refine ~mutate:L.Skip_seal ~cap:16 g cmds in
  Alcotest.(check bool) "skipped seal caught as a refinement violation" true
    (mutated.Check.violations <> [])

let suite =
  [
    ( "core.commit_path_fixes",
      [
        Alcotest.test_case "too-large rejection is terminal" `Quick
          test_too_large_rejection_is_terminal;
        Alcotest.test_case "revocation restores clean bit" `Quick
          test_revocation_restores_clean_bit;
        Alcotest.test_case "revocation keeps dirty bit" `Quick test_revocation_keeps_dirty_bit;
        Alcotest.test_case "corrupt superblock: zero block size" `Quick
          test_corrupt_superblock_block_size;
        Alcotest.test_case "corrupt superblock: oversized ring" `Quick
          test_corrupt_superblock_geometry;
        Alcotest.test_case "unformatted media" `Quick test_unformatted_media;
        Alcotest.test_case "clean clflush charges no write-back" `Quick
          test_clean_clflush_charges_no_writeback;
      ] );
    ( "check.crash_space",
      [ Alcotest.test_case "budgeted exhaustive sweep" `Quick test_crash_space_quick ] );
    ( "check.refinement_regressions",
      [
        Alcotest.test_case "skipped seal caught by spec refinement" `Quick
          test_skip_seal_caught_by_refinement;
      ] );
  ]
