lib/cluster/gluster.ml: Array Char Clock Latency Node Ops String Tinca_fs Tinca_sim Tinca_workloads
