lib/cluster/gluster.mli: Node Tinca_sim Tinca_workloads
