lib/cluster/node.mli: Tinca_fs Tinca_sim Tinca_stacks Tinca_workloads
