lib/cluster/hdfs.ml: Array Clock Float Hashtbl Latency Node Ops Tinca_fs Tinca_sim Tinca_workloads
