lib/cluster/hdfs.mli: Node Tinca_sim Tinca_workloads
