lib/cluster/node.ml: Array Tinca_fs Tinca_sim Tinca_stacks Tinca_workloads
