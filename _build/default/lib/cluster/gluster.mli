(** GlusterFS-like distributed file system model (paper §5.3.2):
    distribute + replicate translators.  Each file hashes to a replica
    set of consecutive data nodes; writes and namespace operations apply
    synchronously to every replica (AFR semantics — the client waits for
    the slowest); reads are served by the first replica. *)

type t

val create : ?net:Tinca_sim.Latency.network -> replicas:int -> Node.t array -> t

(** The replica set a file name hashes to. *)
val replica_set : t -> string -> Node.t array

(** The client's logical time (throughput denominator). *)
val client_ns : t -> float

val bytes_replicated : t -> int

(** The replicated-POSIX client as a workload target. *)
val ops : t -> Tinca_workloads.Ops.t
