(** HDFS-like distributed file system model (paper §5.3.1): one implicit
    name node, N data nodes, store-and-forward pipeline replication over
    the 10 GbE model.  The client streams chunks without waiting for
    acks (TeraGen's behaviour); execution time is when the last node
    finishes. *)

type t

(** [create ~replicas nodes] — [iosize] is the data node's local write
    granularity; [datanode_cpu_per_mb_ns] models per-MB request handling
    (HDFS checksums every packet). *)
val create :
  ?net:Tinca_sim.Latency.network ->
  ?iosize:int ->
  ?datanode_cpu_per_mb_ns:float ->
  replicas:int ->
  Node.t array ->
  t

(** Replicate one chunk through a round-robin pipeline of nodes. *)
val write_chunk : t -> string -> int -> unit

(** When the run finished: max of the client stream end and every node's
    completion. *)
val execution_ns : t -> float

val chunks_written : t -> int
val bytes_replicated : t -> int

(** An {!Tinca_workloads.Ops} view so generators (TeraGen) can drive the
    cluster unchanged: writes buffer client-side per file; fsync flushes
    each buffered chunk through the replication pipeline. *)
val ops : t -> Tinca_workloads.Ops.t
