(** A storage/data node: one full local stack (FS over Tinca or Classic
    over its own NVM + disk + clock), as in the paper's Figure 9 where
    each data node of HDFS/GlusterFS runs the local storage manager. *)

type kind = Tinca_node | Classic_node

val kind_label : kind -> string

type t = {
  id : int;
  kind : kind;
  stack : Tinca_stacks.Stacks.t;
  fs : Tinca_fs.Fs.t;
  ops : Tinca_workloads.Ops.t;
}

type config = {
  nvm_bytes : int;
  disk_blocks : int;
  fs_config : Tinca_fs.Fs.config;
  tech : Tinca_sim.Latency.nvm_tech;
  disk_kind : Tinca_sim.Latency.disk_kind;
}

val default_config : config
val make : id:int -> config:config -> kind -> t

(** The node's private simulated clock. *)
val clock : t -> Tinca_sim.Clock.t

val metrics : t -> Tinca_sim.Metrics.t
val now_ns : t -> float

(** Sum one counter across nodes. *)
val total_metric : t array -> string -> int

(** Snapshot all node metric registries. *)
val snapshot_all : t array -> Tinca_sim.Metrics.snapshot array

(** Total increment of one counter across nodes since the snapshots. *)
val since_all : t array -> Tinca_sim.Metrics.snapshot array -> string -> int
