lib/stacks/stacks.ml: Clock Latency List Metrics Tinca_blockdev Tinca_core Tinca_flashcache Tinca_fs Tinca_jbd2 Tinca_pmem Tinca_sim Tinca_ubj Tinca_util
