lib/stacks/stacks.mli: Tinca_blockdev Tinca_core Tinca_flashcache Tinca_fs Tinca_pmem Tinca_sim Tinca_ubj Tinca_util
