lib/jbd2/journal.mli: Tinca_blockdev Tinca_sim
