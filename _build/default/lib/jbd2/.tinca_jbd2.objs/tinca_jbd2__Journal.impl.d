lib/jbd2/journal.ml: Bytes Hashtbl Int32 Int64 List Logs Metrics Option Tinca_blockdev Tinca_sim Tinca_util
