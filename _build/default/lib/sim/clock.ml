type t = { mutable now : float }

let create () = { now = 0.0 }
let now_ns t = t.now

let advance t ns =
  assert (ns >= 0.0);
  t.now <- t.now +. ns

let advance_to t ns = if ns > t.now then t.now <- ns
let seconds t = t.now /. 1e9
let reset t = t.now <- 0.0
