lib/sim/latency.ml: Tabular Tinca_util
