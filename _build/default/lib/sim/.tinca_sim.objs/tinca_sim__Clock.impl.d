lib/sim/clock.ml:
