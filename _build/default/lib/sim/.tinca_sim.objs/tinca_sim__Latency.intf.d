lib/sim/latency.mli: Tinca_util
