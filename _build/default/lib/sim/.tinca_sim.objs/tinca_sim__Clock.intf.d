lib/sim/clock.mli:
