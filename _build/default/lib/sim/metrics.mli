(** Named-counter registry with snapshot/diff.

    Every simulated component (pmem, disks, caches, journals, file system,
    cluster nodes) registers its counters here so the experiment harness
    can snapshot before a workload, diff after it, and normalize per
    operation — the paper's "normalized quantity of clflush / disk
    writes" methodology (§5.1). *)

type t

val create : unit -> t

(** [incr t name ~by] bumps a counter, creating it at 0 if missing. *)
val incr : t -> string -> by:int -> unit

val get : t -> string -> int

(** All counters, sorted by name. *)
val to_list : t -> (string * int) list

type snapshot

val snapshot : t -> snapshot

(** [diff t snap] — per-counter increments since [snap]. *)
val diff : t -> snapshot -> (string * int) list

(** [since t snap name] — increment of one counter since [snap]. *)
val since : t -> snapshot -> string -> int

val reset : t -> unit
val pp : Format.formatter -> t -> unit
