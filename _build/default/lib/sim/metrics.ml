type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let incr t name ~by =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type snapshot = (string * int) list

let snapshot t : snapshot = to_list t

let diff t (snap : snapshot) =
  let old = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace old k v) snap;
  to_list t
  |> List.filter_map (fun (k, v) ->
         let before = match Hashtbl.find_opt old k with Some x -> x | None -> 0 in
         if v - before <> 0 then Some (k, v - before) else None)

let since t snap name =
  let before = match List.assoc_opt name snap with Some x -> x | None -> 0 in
  get t name - before

let reset t = Hashtbl.reset t

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@." k v) (to_list t)
