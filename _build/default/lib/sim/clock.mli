(** Simulated nanosecond clock.

    The reproduction replaces wall-clock measurement on the authors'
    NVDIMM testbed with deterministic simulated time: every modelled
    action (store, cache-line flush, fence, disk I/O, network transfer,
    fixed CPU overhead) advances a [Clock.t].  Throughput figures are then
    operations per simulated second, which preserves the *ratios* the
    paper reports independently of the host machine. *)

type t

val create : unit -> t

(** Current simulated time in nanoseconds since [create]/[reset]. *)
val now_ns : t -> float

(** Advance the clock by [ns] (>= 0). *)
val advance : t -> float -> unit

(** [advance_to t ns] moves the clock forward to absolute time [ns]; no-op
    if the clock is already past it.  Used by the cluster model when a
    node waits for a network transfer to arrive. *)
val advance_to : t -> float -> unit

val seconds : t -> float
val reset : t -> unit
