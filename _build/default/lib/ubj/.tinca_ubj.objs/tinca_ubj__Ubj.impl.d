lib/ubj/ubj.ml: Bytes Clock Hashtbl Latency List Metrics Option Queue Tinca_blockdev Tinca_cachelib Tinca_pmem Tinca_sim
