lib/ubj/ubj.mli: Tinca_blockdev Tinca_pmem Tinca_sim
