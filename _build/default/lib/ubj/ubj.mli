(** UBJ-style union of buffer cache and journal (Lee et al., FAST '13) —
    the design the paper contrasts Tinca with in §5.4.4.

    Model, following the paper's description of UBJ:
    - the NVM is the buffer cache; a transaction {e commits in place} by
      freezing its blocks (no copy at commit);
    - a later update to a frozen block cannot overwrite it: the new
      version goes to a fresh NVM block via a memcpy on the critical
      path (the cost Tinca's role switch avoids);
    - freeing NVM space requires {e checkpointing} whole committed
      transactions to disk, oldest first, each potentially thousands of
      blocks (Tinca instead evicts block-by-block via LRU).

    This module is a cost-model comparator used by the `ubj_compare`
    ablation experiment; it reproduces UBJ's write paths and checkpoint
    policy, not its full crash-recovery procedure.

    Counters: ["ubj.commits"], ["ubj.frozen_copies"],
    ["ubj.checkpoints"], ["ubj.checkpoint_writes"], ["ubj.evictions"]. *)

type t

type config = {
  block_size : int;
  checkpoint_low_water : float;
      (** checkpoint oldest transactions when free space falls below this
          fraction of the cache (default 0.25) *)
}

val default_config : config

val create :
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

val read : t -> int -> bytes

module Txn : sig
  type handle

  val init : t -> handle
  val add : handle -> int -> bytes -> unit
  val commit : handle -> unit
end

(** Checkpoint every committed transaction and write back all dirty
    state. *)
val flush_all : t -> unit

val cached_blocks : t -> int
val frozen_blocks : t -> int
val free_blocks : t -> int
