(** Flashcache-style NVM cache — the middle layer of the Classic stack
    (paper §3.2, §5.1).

    Faithful to the two properties the paper criticizes:
    - cache metadata is organized in {e block format}: 16 B per slot,
      256 slots per 4 KB metadata block;
    - metadata is updated {e synchronously}: every cached write also
      rewrites the whole 4 KB metadata block that holds the slot (64
      cache-line flushes on top of the 64 for the data block).

    Set-associative placement with per-set LRU, write-back by default,
    like Facebook's Flashcache.  Two ablation knobs reproduce the
    motivation experiments: [metadata_sync = false] waives metadata
    updates entirely (Fig 4) and [flush_writes = false] drops
    clflush/sfence from the write path (Fig 3b).

    Counters: ["flashcache.read_hits"/"read_misses"],
    ["flashcache.write_hits"/"write_misses"], ["flashcache.evictions"],
    ["flashcache.writebacks"], ["flashcache.md_writes"]. *)

type t

type config = {
  block_size : int;      (** default 4096 *)
  associativity : int;   (** slots per set, default 512 (Flashcache's) *)
  metadata_sync : bool;  (** default true *)
  flush_writes : bool;   (** default true *)
  dirty_threshold : float;
      (** per-set dirty fraction beyond which the background cleaner
          writes dirty blocks to disk (Flashcache's dirty_thresh_pct,
          default 0.2).  Cleaning uses background device time: it does
          not block the foreground op but does occupy the disk. *)
}

val default_config : config

(** [create ~config ~pmem ~disk ~clock ~metrics] lays the cache out over
    all of [pmem] (metadata region + data region). *)
val create :
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** Re-attach after a crash: rebuild the DRAM mirror from the persistent
    metadata region; dirty blocks stay dirty. *)
val recover :
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** Cache slots available. *)
val nslots : t -> int

val read : t -> int -> bytes
val write : t -> int -> bytes -> unit

(** Write back all dirty blocks. *)
val flush_all : t -> unit

val contains : t -> int -> bool
val write_hit_rate : t -> float
val read_hit_rate : t -> float
val cached_blocks : t -> int
