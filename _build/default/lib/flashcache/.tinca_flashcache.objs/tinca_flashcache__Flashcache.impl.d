lib/flashcache/flashcache.ml: Array Bytes Clock Hashtbl Latency List Metrics Tinca_blockdev Tinca_pmem Tinca_sim Tinca_util
