lib/flashcache/flashcache.mli: Tinca_blockdev Tinca_pmem Tinca_sim
