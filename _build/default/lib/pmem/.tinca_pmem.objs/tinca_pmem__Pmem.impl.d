lib/pmem/pmem.ml: Array Bytes Char Clock Digest Hashtbl Int64 Latency List Metrics Printf Tinca_sim Tinca_util
