lib/pmem/pmem.ml: Array Bytes Char Clock Hashtbl Int64 Latency List Metrics Printf Tinca_sim Tinca_util
