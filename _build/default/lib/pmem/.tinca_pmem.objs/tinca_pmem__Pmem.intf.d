lib/pmem/pmem.mli: Tinca_sim Tinca_util
