lib/pmem/pmem.mli: Digest Tinca_sim Tinca_util
