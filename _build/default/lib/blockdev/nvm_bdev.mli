(** NVM-based block device — the low layer of the Classic stack (§5.1:
    "an NVM-based block device with clflush and sfence").

    Presents a region of a {!Tinca_pmem.Pmem} as a 4 KB block device: a
    block write stores the whole block and persists it with one clflush
    per cache line plus an sfence; a block read loads the whole block.
    This is where the Classic stack's write amplification is paid.

    Counters: ["nvmbdev.reads"], ["nvmbdev.writes"]. *)

type t

(** [create ~pmem ~metrics ~base ~nblocks ~block_size] — [base] is the
    byte offset of the region inside [pmem]. *)
val create :
  pmem:Tinca_pmem.Pmem.t ->
  metrics:Tinca_sim.Metrics.t ->
  base:int ->
  nblocks:int ->
  block_size:int ->
  t

val nblocks : t -> int
val block_size : t -> int
val read_block : t -> int -> bytes
val read_block_into : t -> int -> buf:bytes -> unit
val write_block : t -> int -> bytes -> unit

(** Byte offset of a block inside the underlying pmem. *)
val block_off : t -> int -> int
