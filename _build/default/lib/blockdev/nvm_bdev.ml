open Tinca_sim
module Pmem = Tinca_pmem.Pmem

type t = {
  pmem : Pmem.t;
  metrics : Metrics.t;
  base : int;
  nblocks : int;
  block_size : int;
}

let create ~pmem ~metrics ~base ~nblocks ~block_size =
  if base < 0 || nblocks <= 0 || block_size <= 0 then invalid_arg "Nvm_bdev.create";
  if base + (nblocks * block_size) > Pmem.size pmem then
    invalid_arg "Nvm_bdev.create: region exceeds pmem size";
  if base mod Pmem.line_size <> 0 || block_size mod Pmem.line_size <> 0 then
    invalid_arg "Nvm_bdev.create: region must be line-aligned";
  { pmem; metrics; base; nblocks; block_size }

let nblocks t = t.nblocks
let block_size t = t.block_size

let block_off t blkno =
  if blkno < 0 || blkno >= t.nblocks then
    invalid_arg (Printf.sprintf "Nvm_bdev: block %d out of range" blkno);
  t.base + (blkno * t.block_size)

let read_block t blkno =
  Metrics.incr t.metrics "nvmbdev.reads" ~by:1;
  Pmem.read t.pmem ~off:(block_off t blkno) ~len:t.block_size

let read_block_into t blkno ~buf =
  Metrics.incr t.metrics "nvmbdev.reads" ~by:1;
  Pmem.read_into t.pmem ~off:(block_off t blkno) ~buf ~pos:0 ~len:t.block_size

let write_block t blkno data =
  if Bytes.length data <> t.block_size then
    invalid_arg "Nvm_bdev.write_block: wrong block size";
  let off = block_off t blkno in
  Metrics.incr t.metrics "nvmbdev.writes" ~by:1;
  Pmem.write t.pmem ~off data;
  Pmem.persist t.pmem ~off ~len:t.block_size
