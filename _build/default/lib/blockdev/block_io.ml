(** A plain block-device interface, used to stack layers (journal over
    cache over NVM/disk) without introducing dependency cycles.  Layers
    construct one of these records over themselves. *)

type t = {
  block_size : int;
  nblocks : int;
  read_block : int -> bytes;
  write_block : int -> bytes -> unit;
}

let of_disk disk =
  {
    block_size = Disk.block_size disk;
    nblocks = Disk.nblocks disk;
    read_block = (fun blkno -> Disk.read_block disk blkno);
    write_block = (fun blkno data -> Disk.write_block disk blkno data);
  }

let of_nvm_bdev bdev =
  {
    block_size = Nvm_bdev.block_size bdev;
    nblocks = Nvm_bdev.nblocks bdev;
    read_block = (fun blkno -> Nvm_bdev.read_block bdev blkno);
    write_block = (fun blkno data -> Nvm_bdev.write_block bdev blkno data);
  }
