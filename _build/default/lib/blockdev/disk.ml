open Tinca_sim

type t = {
  clock : Clock.t;
  metrics : Metrics.t;
  lat : Latency.disk;
  nblocks : int;
  block_size : int;
  store : (int, bytes) Hashtbl.t;
  mutable head : int; (* last accessed block, for HDD seek distance *)
  mutable busy_until : float; (* device queue: when the last access completes *)
  mutable reads : int;
  mutable writes : int;
}

let create ~clock ~metrics ~kind ~nblocks ~block_size =
  if nblocks <= 0 || block_size <= 0 then invalid_arg "Disk.create: bad geometry";
  {
    clock;
    metrics;
    lat = Latency.disk_of_kind kind;
    nblocks;
    block_size;
    store = Hashtbl.create 4096;
    head = 0;
    busy_until = 0.0;
    reads = 0;
    writes = 0;
  }

let kind t = t.lat.Latency.kind
let block_size t = t.block_size
let nblocks t = t.nblocks

let check t blkno =
  if blkno < 0 || blkno >= t.nblocks then
    invalid_arg (Printf.sprintf "Disk: block %d out of range [0, %d)" blkno t.nblocks)

(* Positioning cost: nothing when the access is sequential; otherwise for
   an HDD a distance-scaled seek plus average half-rotation folded into
   [seek_ns]; SSDs have no positioning cost beyond the per-block figure. *)
let position_cost t blkno =
  let sequential = blkno = t.head + 1 || blkno = t.head in
  let cost =
    match t.lat.Latency.kind with
    | Latency.Ssd -> 0.0
    | Latency.Hdd ->
        if sequential then 0.0
        else
          let dist = float_of_int (abs (blkno - t.head)) /. float_of_int t.nblocks in
          t.lat.Latency.seek_ns *. (0.25 +. (0.75 *. sqrt dist))
  in
  t.head <- blkno;
  (cost, sequential)

(* One queued device access: it starts when both the caller issues it and
   the device is free, and occupies the device for [cost].  Foreground
   callers wait for completion; background (cleaner) accesses only
   reserve device time. *)
let access t ~background cost =
  let start = Float.max (Clock.now_ns t.clock) t.busy_until in
  let finish = start +. cost in
  t.busy_until <- finish;
  if not background then Clock.advance_to t.clock finish

let read_block t blkno =
  check t blkno;
  let pos_cost, sequential = position_cost t blkno in
  let xfer =
    if sequential then t.lat.Latency.seq_block_ns else t.lat.Latency.read_block_ns
  in
  access t ~background:false (pos_cost +. xfer);
  t.reads <- t.reads + 1;
  Metrics.incr t.metrics "disk.reads" ~by:1;
  match Hashtbl.find_opt t.store blkno with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.block_size '\000'

let write_block ?(background = false) t blkno data =
  check t blkno;
  if Bytes.length data <> t.block_size then
    invalid_arg "Disk.write_block: wrong block size";
  let pos_cost, sequential = position_cost t blkno in
  let xfer =
    if sequential then t.lat.Latency.seq_block_ns else t.lat.Latency.write_block_ns
  in
  access t ~background (pos_cost +. xfer);
  t.writes <- t.writes + 1;
  Metrics.incr t.metrics "disk.writes" ~by:1;
  if sequential then Metrics.incr t.metrics "disk.seq_writes" ~by:1;
  Hashtbl.replace t.store blkno (Bytes.copy data)

let written_blocks t = Hashtbl.length t.store
let reads t = t.reads
let writes t = t.writes
