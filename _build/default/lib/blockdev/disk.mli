(** Latency-modelled disk (the cache's backing store).

    Two media are modelled, matching the paper's testbed (§5.1, §5.4.1):
    a SATA SSD (fixed per-4 KB cost) and a 7200 rpm HDD (distance-scaled
    seek + rotation + transfer, with sequential-access detection).  The
    backing store is sparse so multi-GB simulated datasets cost only the
    blocks actually written.

    Counters: ["disk.reads"], ["disk.writes"], ["disk.seq_writes"]. *)

type t

val create :
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  kind:Tinca_sim.Latency.disk_kind ->
  nblocks:int ->
  block_size:int ->
  t

val kind : t -> Tinca_sim.Latency.disk_kind
val block_size : t -> int
val nblocks : t -> int

(** [read_block t blkno] — blocks never written read as zeros. *)
val read_block : t -> int -> bytes

(** [write_block ?background t blkno data].  The device is a single
    queue: every access occupies it for the modelled duration.
    Foreground accesses (the default) block the caller — the clock
    advances past any queued work.  [~background:true] models an
    asynchronous cleaner thread: the write consumes device time (and so
    delays later foreground accesses) without advancing the caller's
    clock. *)
val write_block : ?background:bool -> t -> int -> bytes -> unit

(** Number of distinct blocks ever written (sparse footprint). *)
val written_blocks : t -> int

val reads : t -> int
val writes : t -> int
