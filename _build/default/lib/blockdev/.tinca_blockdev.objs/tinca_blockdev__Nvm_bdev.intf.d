lib/blockdev/nvm_bdev.mli: Tinca_pmem Tinca_sim
