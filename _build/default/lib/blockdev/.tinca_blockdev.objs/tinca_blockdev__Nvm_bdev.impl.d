lib/blockdev/nvm_bdev.ml: Bytes Metrics Printf Tinca_pmem Tinca_sim
