lib/blockdev/block_io.ml: Disk Nvm_bdev
