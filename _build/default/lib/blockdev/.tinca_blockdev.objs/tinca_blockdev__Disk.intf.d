lib/blockdev/disk.mli: Tinca_sim
