lib/blockdev/disk.ml: Bytes Clock Float Hashtbl Latency Metrics Printf Tinca_sim
