lib/check/crash_check.mli: Format Tinca_util
