lib/check/crash_check.ml: Array Bytes Char Clock Format Hashtbl Latency List Logs Metrics Printexc Printf String Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim Tinca_util
