(** Streaming histogram for latency / size distributions.

    Used by the harness to report transaction-size distributions (paper
    Fig 13) and by the wear model to summarize per-line flush counts. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val stddev : t -> float

(** [percentile t p] with [p] in [\[0, 100\]].  Exact (keeps samples);
    raises [Invalid_argument] on an empty histogram. *)
val percentile : t -> float -> float

(** One-line summary: count/mean/p50/p95/max. *)
val pp : Format.formatter -> t -> unit
