(** Zipfian sampler over [\[0, n)].

    Storage workloads (TPC-C row access, web-proxy object popularity) are
    highly skewed; the paper's benchmarks inherit that skew from HammerDB
    and Filebench.  We use a precomputed-CDF sampler: exact, O(log n) per
    draw. *)

type t

(** [create ~n ~theta] builds a sampler over ranks [0..n-1] with skew
    [theta] (0.0 = uniform; 0.99 = classic YCSB-style skew).
    Requires [n > 0] and [theta >= 0]. *)
val create : n:int -> theta:float -> t

(** Number of ranks. *)
val cardinality : t -> int

(** Draw one rank. *)
val sample : t -> Rng.t -> int
