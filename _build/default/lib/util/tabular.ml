type t = { title : string; headers : string list; mutable rows : string list list }

let create ~title headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tabular.add_row: arity mismatch";
  t.rows <- t.rows @ [ row ]

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v

let render t =
  let all = t.headers :: t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row row =
    List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row
  in
  List.iter note_row all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let extra = widths.(i) - String.length cell in
    cell ^ String.make extra ' '
  in
  let emit_row row =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let rule = Array.fold_left (fun acc w -> acc + w + 2) 0 widths in
  Buffer.add_string buf ("  " ^ String.make rule '-' ^ "\n");
  List.iter emit_row t.rows;
  Buffer.contents buf

let print t = print_string (render t)

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (row t.headers :: List.map row t.rows) ^ "\n"
