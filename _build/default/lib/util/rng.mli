(** Deterministic pseudo-random number generator (xoshiro256starstar).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments and crash-injection tests are exactly
    reproducible from a seed. *)

type t

(** [create seed] builds a generator from a 64-bit seed.  Two generators
    built from the same seed yield identical streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [pick t arr] selects a uniform random element.  Requires a non-empty
    array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
