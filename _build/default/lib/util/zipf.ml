type t = { n : int; cdf : float array }

let create ~n ~theta =
  assert (n > 0 && theta >= 0.0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. ((float_of_int (i + 1)) ** theta));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; cdf }

let cardinality t = t.n

let sample t rng =
  let u = Rng.float rng in
  (* First index whose cdf >= u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (t.n - 1)
