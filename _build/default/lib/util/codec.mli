(** Little-endian fixed-width integer codecs over [Bytes.t].

    All persistent structures (cache entries, ring-buffer slots, journal
    records, inodes, directory entries) are serialized with these helpers
    so their exact byte layout is testable. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit

val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit

(** 48-bit unsigned, used for on-disk block numbers inside 7-byte fields. *)
val get_u48 : bytes -> int -> int
val set_u48 : bytes -> int -> int -> unit

(** 56-bit unsigned (fits OCaml's native [int]). *)
val get_u56 : bytes -> int -> int
val set_u56 : bytes -> int -> int -> unit

val get_u64 : bytes -> int -> int64
val set_u64 : bytes -> int -> int64 -> unit

(** [get_u64_int]/[set_u64_int] treat the field as a non-negative OCaml
    [int] (63-bit); raises [Invalid_argument] on overflow when reading. *)
val get_u64_int : bytes -> int -> int
val set_u64_int : bytes -> int -> int -> unit

(** [crc32 b ~pos ~len] — CRC-32 (IEEE polynomial) used to checksum
    persistent superblocks and journal blocks. *)
val crc32 : bytes -> pos:int -> len:int -> int32
