(** Plain-text table rendering for the experiment harness.

    Each figure/table of the paper is rendered as an aligned text table so
    that `bench/main.exe` output can be compared side-by-side with the
    paper's reported series. *)

type t

(** [create ~title headers] starts a table. *)
val create : title:string -> string list -> t

(** Append one row; must have the same arity as the header. *)
val add_row : t -> string list -> unit

(** Convenience for numeric cells. *)
val cell_f : ?decimals:int -> float -> string

val cell_i : int -> string

(** Render with box-drawing-free ASCII alignment. *)
val render : t -> string

val print : t -> unit

(** CSV rendering (RFC-4180-style quoting) for post-processing/plotting. *)
val to_csv : t -> string
