lib/util/tabular.ml: Array Buffer List Printf String
