lib/util/codec.ml: Array Bytes Char Int32 Int64 Lazy
