lib/util/rng.mli:
