lib/util/codec.mli:
