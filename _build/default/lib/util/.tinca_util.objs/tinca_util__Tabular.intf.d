lib/util/tabular.mli:
