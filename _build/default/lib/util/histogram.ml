type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : bool;
}

let create () =
  { samples = Array.make 16 0.0; len = 0; sum = 0.0; sumsq = 0.0;
    lo = infinity; hi = neg_infinity; sorted = true }

let add t v =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sum <- t.sum +. v;
  t.sumsq <- t.sumsq +. (v *. v);
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v;
  t.sorted <- false

let count t = t.len
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len
let min_value t = t.lo
let max_value t = t.hi

let stddev t =
  if t.len < 2 then 0.0
  else
    let n = float_of_int t.len in
    let var = (t.sumsq /. n) -. ((t.sum /. n) ** 2.0) in
    sqrt (Float.max var 0.0)

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  ensure_sorted t;
  let rank = p /. 100.0 *. float_of_int (t.len - 1) in
  let lo_idx = int_of_float (Float.floor rank) in
  let hi_idx = int_of_float (Float.ceil rank) in
  if lo_idx = hi_idx then t.samples.(lo_idx)
  else
    let frac = rank -. float_of_int lo_idx in
    t.samples.(lo_idx) +. (frac *. (t.samples.(hi_idx) -. t.samples.(lo_idx)))

let pp ppf t =
  if t.len = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f max=%.1f"
      t.len (mean t) (percentile t 50.0) (percentile t 95.0) t.hi
