let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_u48 b off = get_u32 b off lor (get_u16 b (off + 4) lsl 32)

let set_u48 b off v =
  set_u32 b off (v land 0xffffffff);
  set_u16 b (off + 4) ((v lsr 32) land 0xffff)

let get_u56 b off = get_u48 b off lor (get_u8 b (off + 6) lsl 48)

let set_u56 b off v =
  set_u48 b off v;
  set_u8 b (off + 6) ((v lsr 48) land 0xff)

let get_u64 b off = Bytes.get_int64_le b off
let set_u64 b off v = Bytes.set_int64_le b off v

let get_u64_int b off =
  let v = get_u64 b off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Codec.get_u64_int: out of int range";
  Int64.to_int v

let set_u64_int b off v =
  assert (v >= 0);
  set_u64 b off (Int64.of_int v)

let crc_table =
  lazy
    (let table = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       table.(n) <- !c
     done;
     table)

let crc32 b ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xffl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
