type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand the seed into the xoshiro state so that
   low-entropy seeds (0, 1, 2, ...) still give well-mixed streams. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (next64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let float t =
  (* 53 high bits -> [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int v /. 9007199254740992.0

let bool t = Int64.compare (Int64.logand (next64 t) 1L) 0L <> 0
let chance t p = float t < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
