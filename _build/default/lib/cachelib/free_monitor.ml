type policy = Lifo | Fifo

(* The pool is a ring of capacity n+1 so head = tail distinguishes empty
   from full; Lifo pops where it last pushed, Fifo pops the oldest
   entry.  Lazy deletion: stale entries are skipped at pop. *)
type t = {
  n : int;
  policy : policy;
  free : bool array;
  ring : int array;
  mutable head : int; (* push position *)
  mutable tail : int; (* oldest entry *)
  mutable nfree : int;
}

let create ?(policy = Lifo) ~n () =
  if n <= 0 then invalid_arg "Free_monitor.create";
  let ring = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    ring.(i) <- i
  done;
  { n; policy; free = Array.make n true; ring; head = n; tail = 0; nfree = n }

let capacity t = t.n
let free_count t = t.nfree

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Free_monitor: index out of range"

let is_free t i =
  check t i;
  t.free.(i)

let cap t = Array.length t.ring

let ring_full t = (t.head + 1) mod cap t = t.tail

(* Rebuild the ring from the free bitmap: one occurrence per free index,
   ascending.  Run when lazy deletion has bloated or emptied the ring.

   Deliberate semantics quirk (pinned by test_cachelib): a rebuild
   discards the pool's recency/age order and re-sorts it ascending by
   index, so after a rebuild [Fifo] hands out indices in ascending order
   rather than oldest-freed-first.  That is harmless for both users of
   the policy — wear leveling only needs the pool to keep rotating, and
   correctness never depends on allocation order — and it keeps
   [mark_used] O(1) during recovery rebuild. *)
let rebuild t =
  let head = ref 0 in
  for j = 0 to t.n - 1 do
    if t.free.(j) then begin
      t.ring.(!head) <- j;
      incr head
    end
  done;
  t.tail <- 0;
  t.head <- !head

let rec alloc t =
  if t.nfree = 0 then None
  else if t.head = t.tail then begin
    (* Every live entry was consumed as a stale duplicate. *)
    rebuild t;
    alloc t
  end
  else begin
    let i =
      match t.policy with
      | Lifo ->
          t.head <- (t.head + cap t - 1) mod cap t;
          t.ring.(t.head)
      | Fifo ->
          let i = t.ring.(t.tail) in
          t.tail <- (t.tail + 1) mod cap t;
          i
    in
    (* Stale entries (marked used out-of-band) are skipped. *)
    if t.free.(i) then begin
      t.free.(i) <- false;
      t.nfree <- t.nfree - 1;
      Some i
    end
    else alloc t
  end

let push t i =
  (* The caller marks [i] free before pushing, so a rebuild includes it. *)
  if ring_full t then rebuild t
  else begin
    t.ring.(t.head) <- i;
    t.head <- (t.head + 1) mod cap t
  end

let free t i =
  check t i;
  if t.free.(i) then invalid_arg "Free_monitor.free: already free";
  t.free.(i) <- true;
  t.nfree <- t.nfree + 1;
  push t i

let mark_used t i =
  check t i;
  if not t.free.(i) then invalid_arg "Free_monitor.mark_used: already used";
  t.free.(i) <- false;
  t.nfree <- t.nfree - 1
