lib/cachelib/free_monitor.mli:
