lib/cachelib/free_monitor.ml: Array
