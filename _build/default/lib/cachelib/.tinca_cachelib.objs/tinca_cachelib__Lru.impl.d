lib/cachelib/lru.ml: List
