lib/cachelib/lru.mli:
