(** Intrusive doubly-linked LRU list.

    The DRAM-resident replacement structure of both Tinca (§4.6) and
    Flashcache.  Callers hold onto the ['a node] returned at insertion so
    [touch]/[remove] are O(1). *)

type 'a t
type 'a node

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Insert as most-recently-used; returns the handle. *)
val push_mru : 'a t -> 'a -> 'a node

(** Move an existing node to the MRU end. *)
val touch : 'a t -> 'a node -> unit

(** Unlink a node.  Safe to call once; a second call raises
    [Invalid_argument]. *)
val remove : 'a t -> 'a node -> unit

val value : 'a node -> 'a

(** Least-recently-used node, if any. *)
val lru : 'a t -> 'a node option

(** Most-recently-used node, if any. *)
val mru : 'a t -> 'a node option

(** [find_from_lru t ~f] — first node from the LRU end whose value
    satisfies [f] (victim selection that skips pinned blocks). *)
val find_from_lru : 'a t -> f:('a -> bool) -> 'a node option

(** Iterate values from LRU to MRU. *)
val iter : ('a -> unit) -> 'a t -> unit

val to_list_lru_first : 'a t -> 'a list

(** [next node] — the neighbour towards the MRU end, if any. *)
val next : 'a node -> 'a node option

(** [prev node] — the neighbour towards the LRU end, if any. *)
val prev : 'a node -> 'a node option
