type 'a node = {
  v : 'a;
  mutable prev : 'a node option; (* towards LRU end *)
  mutable next : 'a node option; (* towards MRU end *)
  mutable linked : bool;
}

type 'a t = {
  mutable head : 'a node option; (* LRU end *)
  mutable tail : 'a node option; (* MRU end *)
  mutable len : int;
}

let create () = { head = None; tail = None; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push_mru t v =
  let node = { v; prev = t.tail; next = None; linked = true } in
  (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
  t.tail <- Some node;
  t.len <- t.len + 1;
  node

let remove t node =
  if not node.linked then invalid_arg "Lru.remove: node not linked";
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None;
  node.linked <- false;
  t.len <- t.len - 1

let touch t node =
  if not node.linked then invalid_arg "Lru.touch: node not linked";
  if t.tail != Some node then begin
    remove t node;
    node.linked <- true;
    node.prev <- t.tail;
    node.next <- None;
    (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
    t.tail <- Some node;
    t.len <- t.len + 1
  end

let value node = node.v
let lru t = t.head
let mru t = t.tail

let find_from_lru t ~f =
  let rec go = function
    | None -> None
    | Some node -> if f node.v then Some node else go node.next
  in
  go t.head

let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
        let next = node.next in
        f node.v;
        go next
  in
  go t.head

let to_list_lru_first t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let next node = node.next
let prev node = node.prev
