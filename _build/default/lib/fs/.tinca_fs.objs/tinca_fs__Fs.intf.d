lib/fs/fs.mli: Backend
