lib/fs/backend.ml:
