lib/fs/fs.ml: Backend Bytes Char Hashtbl Int64 List Printf String Tinca_util
