(** TinFS — an Ext4-like block file system simulator.

    Purpose: generate the same {e block-level traffic shape} as Ext4 in
    [data=journal] mode on top of a cache stack, so the paper's
    experiments measure realistic mixes of file data, inode, bitmap and
    directory-block writes.

    On-disk format (4 KB blocks):
    - block 0 — superblock (magic, geometry, root inode);
    - inode table — 128 B inodes (kind, size, mtime, 12 direct pointers,
      single and double indirect);
    - block bitmap — one bit per data-region block;
    - data region;
    - a reserved journal region, used only by the Classic backend's JBD2
      (Tinca needs none — that is the point of the paper).

    Namespace: a single root directory with 64 B entries.  That matches
    the benchmarks, which address files by name in one flat set.

    Transaction model: every operation stages its modified blocks in a
    DRAM running transaction; {!fsync} (or the [max_dirty_blocks]
    auto-commit threshold, standing in for JBD2's 5 s timer) hands them
    to {!Backend.t.commit_blocks}.  Reads see staged blocks first
    (read-your-writes). *)

type t

type config = {
  ninodes : int;          (** files + root (default 4096) *)
  journal_len : int;      (** blocks reserved for the Classic journal (default 1024) *)
  max_dirty_blocks : int; (** auto-commit threshold (default 256) *)
  journaled : bool;       (** false = no-journal mode: transactions are
                              replaced by plain cached writes *)
  ordered : bool;         (** Ext4 data=ordered analogue: file data is
                              written in place before the metadata
                              transaction commits.  Cheaper than full data
                              journaling on the Classic stack but gives up
                              the paper's data-consistency level (data
                              writes are not atomic).  Default false =
                              data=journal. *)
  page_cache_pages : int; (** capacity of the volatile DRAM page cache of
                              clean blocks above the NVM cache — the DRAM
                              buffer cache of the paper's Fig 1(c).  0
                              (default) disables it, sending every read to
                              the cache layer. *)
}

val default_config : config

exception File_exists of string
exception No_such_file of string
exception No_space

(** [format ~config backend] writes a fresh file system and returns it
    mounted. *)
val format : config:config -> Backend.t -> t

(** [mount ~config backend] attaches to a previously formatted file
    system (e.g. after crash recovery of the cache underneath).  Raises
    [Failure] on bad magic. *)
val mount : config:config -> Backend.t -> t

(** Geometry introspection. *)
val journal_start : t -> int

val journal_len : t -> int

(** {1 Files} *)

val create : t -> string -> unit
val exists : t -> string -> bool
val delete : t -> string -> unit
val size : t -> string -> int

(** [pwrite t name ~off data] writes [data] at byte offset [off],
    extending the file as needed. *)
val pwrite : t -> string -> off:int -> bytes -> unit

(** [pread t name ~off ~len] — bytes beyond EOF read as zeros. *)
val pread : t -> string -> off:int -> len:int -> bytes

(** Append at EOF. *)
val append : t -> string -> bytes -> unit

(** [rename t old_name new_name] — raises [No_such_file] / [File_exists]. *)
val rename : t -> string -> string -> unit

(** [truncate t name size] — shrinking frees blocks past the new EOF
    (including emptied indirection blocks); extending leaves a hole. *)
val truncate : t -> string -> int -> unit

(** All file names (sorted). *)
val list_files : t -> string list

val file_count : t -> int

(** {1 Durability} *)

(** Commit the running transaction (maps to tinca_commit / JBD2 commit /
    plain writes depending on the backend and [journaled]). *)
val fsync : t -> unit

(** Number of blocks in the running transaction. *)
val dirty_blocks : t -> int

(** fsync, then drain the cache to disk. *)
val shutdown : t -> unit

(** {1 Integrity} *)

(** Full structural check: superblock sane, directory entries point to
    live inodes, block pointers in range and unshared, bitmap consistent
    with reachability.  Raises [Failure] describing the first violation.
    Used by crash-consistency tests after recovery. *)
val fsck : t -> unit
