module Codec = Tinca_util.Codec

type config = {
  ninodes : int;
  journal_len : int;
  max_dirty_blocks : int;
  journaled : bool;
  ordered : bool;
  page_cache_pages : int;
}

let default_config =
  { ninodes = 4096; journal_len = 1024; max_dirty_blocks = 256; journaled = true;
    ordered = false; page_cache_pages = 0 }

exception File_exists of string
exception No_such_file of string
exception No_space

let magic = 0x54494E46_53563100L (* "TINFSV1" *)
let bs = 4096
let inode_size = 128
let inodes_per_block = bs / inode_size
let dirent_size = 64
let dirents_per_block = bs / dirent_size
let max_name = 58
let ndirect = 12
let ptrs_per_block = bs / 4
let root_ino = 0

type geometry = {
  nblocks : int;
  inode_table_start : int;
  inode_blocks : int;
  bitmap_start : int;
  bitmap_blocks : int;
  data_start : int;
  data_blocks : int;
  journal_start : int;
  journal_len : int;
}

type t = {
  cfg : config;
  backend : Backend.t;
  geo : geometry;
  (* Running transaction: staged blocks, newest content; the flag marks
     file data (as opposed to metadata) for ordered mode. *)
  dirty : (int, bool * bytes) Hashtbl.t;
  mutable dirty_order : int list; (* reversed *)
  (* DRAM caches, rebuildable from media. *)
  bitmap : Bytes.t; (* shadow of the bitmap region *)
  mutable free_inodes : int list;
  names : (string, int) Hashtbl.t; (* name -> inode *)
  dirent_of : (string, int) Hashtbl.t; (* name -> dirent index in root dir *)
  mutable free_dirents : int list;
  mutable rotor : int; (* data allocation rotor (bit index) *)
  mutable tick : int; (* logical mtime *)
  (* Volatile DRAM page cache of clean blocks (Fig 1(c)'s buffer cache
     above the NVM cache); disabled when page_cache_pages = 0. *)
  page_cache : (int, bytes) Hashtbl.t;
  mutable page_lru : int list; (* mru first; small, rebuilt lazily *)
}

(* --- geometry ----------------------------------------------------------- *)

let compute_geometry ~(config : config) ~nblocks =
  let inode_blocks = (config.ninodes + inodes_per_block - 1) / inodes_per_block in
  let bitmap_start = 1 + inode_blocks in
  let journal_start = nblocks - config.journal_len in
  (* Find the smallest bitmap that covers the remaining data region. *)
  let bits_per_block = bs * 8 in
  let rec fit bitmap_blocks =
    let data_start = bitmap_start + bitmap_blocks in
    let data_blocks = journal_start - data_start in
    if data_blocks <= 0 then invalid_arg "Fs: device too small";
    if bitmap_blocks * bits_per_block >= data_blocks then (bitmap_blocks, data_start, data_blocks)
    else fit (bitmap_blocks + 1)
  in
  let bitmap_blocks, data_start, data_blocks = fit 1 in
  {
    nblocks;
    inode_table_start = 1;
    inode_blocks;
    bitmap_start;
    bitmap_blocks;
    data_start;
    data_blocks;
    journal_start;
    journal_len = config.journal_len;
  }

(* --- block staging ------------------------------------------------------ *)

(* Bounded, coarse LRU for the page cache: cheap because the cache is
   small and eviction is rare relative to hits. *)
let page_cache_insert t blkno b =
  if t.cfg.page_cache_pages > 0 then begin
    if not (Hashtbl.mem t.page_cache blkno) then begin
      if Hashtbl.length t.page_cache >= t.cfg.page_cache_pages then begin
        (* Evict the LRU entry. *)
        match List.rev t.page_lru with
        | victim :: _ ->
            Hashtbl.remove t.page_cache victim;
            t.page_lru <- List.filter (fun b -> b <> victim) t.page_lru
        | [] -> Hashtbl.reset t.page_cache
      end;
      t.page_lru <- blkno :: t.page_lru
    end;
    Hashtbl.replace t.page_cache blkno (Bytes.copy b)
  end

let page_cache_touch t blkno =
  if t.cfg.page_cache_pages > 0 then
    t.page_lru <- blkno :: List.filter (fun b -> b <> blkno) t.page_lru

let read_blk t blkno =
  match Hashtbl.find_opt t.dirty blkno with
  | Some (_, b) -> Bytes.copy b
  | None -> (
      match Hashtbl.find_opt t.page_cache blkno with
      | Some b ->
          page_cache_touch t blkno;
          Bytes.copy b
      | None ->
          let b = t.backend.Backend.read_block blkno in
          page_cache_insert t blkno b;
          b)

let stage ?(data = false) t blkno block =
  if not (Hashtbl.mem t.dirty blkno) then t.dirty_order <- blkno :: t.dirty_order;
  Hashtbl.replace t.dirty blkno (data, block)

let dirty_blocks t = Hashtbl.length t.dirty

let fsync t =
  if Hashtbl.length t.dirty > 0 then begin
    let blocks = List.rev_map (fun blkno -> (blkno, Hashtbl.find t.dirty blkno)) t.dirty_order in
    let blocks = List.rev blocks in
    (if not t.cfg.journaled then
       t.backend.Backend.write_blocks (List.map (fun (blkno, (_, b)) -> (blkno, b)) blocks)
    else if t.cfg.ordered then begin
      (* Ext4 data=ordered: file data reaches its home location before
         the metadata commits, so metadata never points at stale blocks —
         but data writes themselves are not atomic. *)
      let data = List.filter_map (fun (blkno, (d, b)) -> if d then Some (blkno, b) else None) blocks in
      let meta = List.filter_map (fun (blkno, (d, b)) -> if d then None else Some (blkno, b)) blocks in
      t.backend.Backend.write_blocks data;
      t.backend.Backend.commit_blocks meta
    end
    else t.backend.Backend.commit_blocks (List.map (fun (blkno, (_, b)) -> (blkno, b)) blocks));
    (* Committed blocks become clean page-cache residents. *)
    List.iter (fun (blkno, (_, b)) -> page_cache_insert t blkno b) blocks;
    Hashtbl.reset t.dirty;
    t.dirty_order <- []
  end

let maybe_commit t = if Hashtbl.length t.dirty >= t.cfg.max_dirty_blocks then fsync t

let shutdown t =
  fsync t;
  t.backend.Backend.sync ()

(* --- superblock --------------------------------------------------------- *)

let write_super t =
  let b = Bytes.make bs '\000' in
  Codec.set_u64 b 0 magic;
  Codec.set_u32 b 8 t.geo.nblocks;
  Codec.set_u32 b 12 t.cfg.ninodes;
  Codec.set_u32 b 16 t.geo.inode_table_start;
  Codec.set_u32 b 20 t.geo.inode_blocks;
  Codec.set_u32 b 24 t.geo.bitmap_start;
  Codec.set_u32 b 28 t.geo.bitmap_blocks;
  Codec.set_u32 b 32 t.geo.data_start;
  Codec.set_u32 b 36 t.geo.data_blocks;
  Codec.set_u32 b 40 t.geo.journal_start;
  Codec.set_u32 b 44 t.geo.journal_len;
  stage t 0 b

let journal_start t = t.geo.journal_start
let journal_len t = t.geo.journal_len

(* --- inode accessors ----------------------------------------------------- *)

let inode_block t ino = t.geo.inode_table_start + (ino / inodes_per_block)
let inode_off ino = ino mod inodes_per_block * inode_size

let kind_free = 0
let kind_file = 1
let kind_dir = 2

(* Read-modify-write one inode; [f] receives the 4 KB inode-table block
   and the inode's byte offset inside it, mutates, and the block is
   staged. *)
let with_inode t ino f =
  let blkno = inode_block t ino in
  let b = read_blk t blkno in
  let r = f b (inode_off ino) in
  stage t blkno b;
  r

let inode_peek t ino f =
  let b = read_blk t (inode_block t ino) in
  f b (inode_off ino)

let get_kind b off = Codec.get_u8 b off
let set_kind b off v = Codec.set_u8 b off v
let get_size b off = Codec.get_u64_int b (off + 8)
let set_size b off v = Codec.set_u64_int b (off + 8) v
let set_mtime b off v = Codec.set_u64_int b (off + 16) v
let get_direct b off i = Codec.get_u32 b (off + 24 + (i * 4))
let set_direct b off i v = Codec.set_u32 b (off + 24 + (i * 4)) v
let get_ind b off = Codec.get_u32 b (off + 24 + (ndirect * 4))
let set_ind b off v = Codec.set_u32 b (off + 24 + (ndirect * 4)) v
let get_dind b off = Codec.get_u32 b (off + 24 + (ndirect * 4) + 4)
let set_dind b off v = Codec.set_u32 b (off + 24 + (ndirect * 4) + 4) v

(* --- data block allocation ---------------------------------------------- *)

let bit_get bytes i = Char.code (Bytes.get bytes (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bytes i v =
  let c = Char.code (Bytes.get bytes (i / 8)) in
  let c = if v then c lor (1 lsl (i mod 8)) else c land lnot (1 lsl (i mod 8)) in
  Bytes.set bytes (i / 8) (Char.chr c)

let stage_bitmap_bit t bit =
  (* Propagate one shadow bit into its staged bitmap block. *)
  let byte = bit / 8 in
  let blk_idx = byte / bs in
  let blkno = t.geo.bitmap_start + blk_idx in
  let b = read_blk t blkno in
  Bytes.set b (byte mod bs) (Bytes.get t.bitmap byte);
  stage t blkno b

let alloc_data t =
  let n = t.geo.data_blocks in
  let rec scan tries i =
    if tries >= n then raise No_space
    else if not (bit_get t.bitmap i) then i
    else scan (tries + 1) ((i + 1) mod n)
  in
  let bit = scan 0 t.rotor in
  t.rotor <- (bit + 1) mod n;
  bit_set t.bitmap bit true;
  stage_bitmap_bit t bit;
  t.geo.data_start + bit

let free_data t blkno =
  let bit = blkno - t.geo.data_start in
  assert (bit >= 0 && bit < t.geo.data_blocks);
  bit_set t.bitmap bit false;
  stage_bitmap_bit t bit

(* Allocate a zeroed data block and stage its content. *)
let alloc_zeroed t =
  let blkno = alloc_data t in
  stage t blkno (Bytes.make bs '\000');
  blkno

(* --- block mapping (bmap) ------------------------------------------------ *)

let max_fbi = ndirect + ptrs_per_block + (ptrs_per_block * ptrs_per_block)

(* Map file block index [fbi] of inode [ino] to a device block, allocating
   missing levels when [alloc].  Returns 0 when unmapped and not
   allocating. *)
let bmap t ino fbi ~alloc =
  if fbi < 0 || fbi >= max_fbi then raise No_space;
  let get_slot container_blkno idx =
    let b = read_blk t container_blkno in
    Codec.get_u32 b (idx * 4)
  in
  let set_slot container_blkno idx v =
    let b = read_blk t container_blkno in
    Codec.set_u32 b (idx * 4) v;
    stage t container_blkno b
  in
  let ensure_slot container_blkno idx =
    let cur = get_slot container_blkno idx in
    if cur <> 0 then cur
    else if not alloc then 0
    else begin
      let fresh = alloc_zeroed t in
      set_slot container_blkno idx fresh;
      fresh
    end
  in
  if fbi < ndirect then
    with_inode t ino (fun b off ->
        let cur = get_direct b off fbi in
        if cur <> 0 then cur
        else if not alloc then 0
        else begin
          let fresh = alloc_zeroed t in
          set_direct b off fbi fresh;
          fresh
        end)
  else if fbi < ndirect + ptrs_per_block then begin
    let ind =
      with_inode t ino (fun b off ->
          let cur = get_ind b off in
          if cur <> 0 then cur
          else if not alloc then 0
          else begin
            let fresh = alloc_zeroed t in
            set_ind b off fresh;
            fresh
          end)
    in
    if ind = 0 then 0 else ensure_slot ind (fbi - ndirect)
  end
  else begin
    let dind =
      with_inode t ino (fun b off ->
          let cur = get_dind b off in
          if cur <> 0 then cur
          else if not alloc then 0
          else begin
            let fresh = alloc_zeroed t in
            set_dind b off fresh;
            fresh
          end)
    in
    if dind = 0 then 0
    else begin
      let rel = fbi - ndirect - ptrs_per_block in
      let l1 = ensure_slot dind (rel / ptrs_per_block) in
      if l1 = 0 then 0 else ensure_slot l1 (rel mod ptrs_per_block)
    end
  end

(* --- directory ------------------------------------------------------------ *)

let dirent_blkno t dirent_idx ~alloc =
  bmap t root_ino (dirent_idx / dirents_per_block) ~alloc

let read_dirent_block t dirent_idx ~alloc =
  let blkno = dirent_blkno t dirent_idx ~alloc in
  if blkno = 0 then None else Some (blkno, read_blk t blkno)

let write_dirent t dirent_idx ~ino ~name =
  if String.length name > max_name || name = "" then invalid_arg "Fs: bad file name";
  match read_dirent_block t dirent_idx ~alloc:true with
  | None -> raise No_space
  | Some (blkno, b) ->
      let off = dirent_idx mod dirents_per_block * dirent_size in
      Bytes.fill b off dirent_size '\000';
      Codec.set_u32 b off ino;
      Codec.set_u8 b (off + 4) kind_file;
      Codec.set_u8 b (off + 5) (String.length name);
      Bytes.blit_string name 0 b (off + 6) (String.length name);
      stage t blkno b

let clear_dirent t dirent_idx =
  match read_dirent_block t dirent_idx ~alloc:false with
  | None -> ()
  | Some (blkno, b) ->
      let off = dirent_idx mod dirents_per_block * dirent_size in
      Bytes.fill b off dirent_size '\000';
      stage t blkno b

(* Grow the root directory by one block's worth of entries; returns the
   first fresh dirent index. *)
let grow_directory t =
  let nents =
    inode_peek t root_ino (fun b off -> get_size b off) / dirent_size
  in
  let fbi = nents / dirents_per_block in
  ignore (bmap t root_ino fbi ~alloc:true);
  with_inode t root_ino (fun b off ->
      set_size b off ((nents + dirents_per_block) * dirent_size);
      set_mtime b off t.tick);
  List.init dirents_per_block (fun i -> nents + i)

(* --- construction ---------------------------------------------------------- *)

let mk ~config ~backend ~geo =
  {
    cfg = config;
    backend;
    geo;
    dirty = Hashtbl.create 512;
    dirty_order = [];
    bitmap = Bytes.make (geo.bitmap_blocks * bs) '\000';
    free_inodes = [];
    names = Hashtbl.create 4096;
    dirent_of = Hashtbl.create 4096;
    free_dirents = [];
    rotor = 0;
    tick = 0;
    page_cache = Hashtbl.create 256;
    page_lru = [];
  }

let format ~config backend =
  if backend.Backend.block_size <> bs then invalid_arg "Fs.format: block size must be 4096";
  let geo = compute_geometry ~config ~nblocks:backend.Backend.nblocks in
  let t = mk ~config ~backend ~geo in
  write_super t;
  (* Zero the inode table and bitmap. *)
  for i = 0 to geo.inode_blocks - 1 do
    stage t (geo.inode_table_start + i) (Bytes.make bs '\000')
  done;
  for i = 0 to geo.bitmap_blocks - 1 do
    stage t (geo.bitmap_start + i) (Bytes.make bs '\000')
  done;
  (* Root directory inode. *)
  with_inode t root_ino (fun b off ->
      set_kind b off kind_dir;
      set_size b off 0;
      set_mtime b off 0);
  t.free_inodes <- List.init (config.ninodes - 1) (fun i -> i + 1);
  fsync t;
  t

let mount ~config backend =
  if backend.Backend.block_size <> bs then invalid_arg "Fs.mount: block size must be 4096";
  let sb = backend.Backend.read_block 0 in
  if not (Int64.equal (Codec.get_u64 sb 0) magic) then failwith "Fs.mount: bad magic";
  let geo =
    {
      nblocks = Codec.get_u32 sb 8;
      inode_table_start = Codec.get_u32 sb 16;
      inode_blocks = Codec.get_u32 sb 20;
      bitmap_start = Codec.get_u32 sb 24;
      bitmap_blocks = Codec.get_u32 sb 28;
      data_start = Codec.get_u32 sb 32;
      data_blocks = Codec.get_u32 sb 36;
      journal_start = Codec.get_u32 sb 40;
      journal_len = Codec.get_u32 sb 44;
    }
  in
  if Codec.get_u32 sb 12 <> config.ninodes then failwith "Fs.mount: ninodes mismatch";
  let t = mk ~config ~backend ~geo in
  (* Load the bitmap shadow. *)
  for i = 0 to geo.bitmap_blocks - 1 do
    let b = backend.Backend.read_block (geo.bitmap_start + i) in
    Bytes.blit b 0 t.bitmap (i * bs) bs
  done;
  (* Free inode list. *)
  for ino = config.ninodes - 1 downto 1 do
    let free = inode_peek t ino (fun b off -> get_kind b off = kind_free) in
    if free then t.free_inodes <- ino :: t.free_inodes
  done;
  (* Directory scan: name cache + free dirent slots. *)
  let nents = inode_peek t root_ino (fun b off -> get_size b off) / dirent_size in
  for idx = nents - 1 downto 0 do
    match read_dirent_block t idx ~alloc:false with
    | None -> t.free_dirents <- idx :: t.free_dirents
    | Some (_, b) ->
        let off = idx mod dirents_per_block * dirent_size in
        let name_len = Codec.get_u8 b (off + 5) in
        if name_len = 0 then t.free_dirents <- idx :: t.free_dirents
        else begin
          let name = Bytes.sub_string b (off + 6) name_len in
          Hashtbl.replace t.names name (Codec.get_u32 b off);
          Hashtbl.replace t.dirent_of name idx
        end
  done;
  t

(* --- file operations -------------------------------------------------------- *)

let exists t name = Hashtbl.mem t.names name

let lookup t name =
  match Hashtbl.find_opt t.names name with
  | Some ino -> ino
  | None -> raise (No_such_file name)

let create t name =
  if exists t name then raise (File_exists name);
  let ino =
    match t.free_inodes with
    | [] -> raise No_space
    | ino :: rest ->
        t.free_inodes <- rest;
        ino
  in
  t.tick <- t.tick + 1;
  with_inode t ino (fun b off ->
      Bytes.fill b off inode_size '\000';
      set_kind b off kind_file;
      set_size b off 0;
      set_mtime b off t.tick);
  let dirent_idx =
    match t.free_dirents with
    | idx :: rest ->
        t.free_dirents <- rest;
        idx
    | [] -> (
        match grow_directory t with
        | idx :: rest ->
            t.free_dirents <- rest;
            idx
        | [] -> raise No_space)
  in
  write_dirent t dirent_idx ~ino ~name;
  Hashtbl.replace t.names name ino;
  Hashtbl.replace t.dirent_of name dirent_idx;
  maybe_commit t

let size t name = inode_peek t (lookup t name) (fun b off -> get_size b off)

let pwrite t name ~off data =
  let ino = lookup t name in
  let len = Bytes.length data in
  if len > 0 then begin
    t.tick <- t.tick + 1;
    let first = off / bs and last = (off + len - 1) / bs in
    for fbi = first to last do
      let blkno = bmap t ino fbi ~alloc:true in
      let blk_start = fbi * bs in
      let copy_from = max off blk_start in
      let copy_to = min (off + len) (blk_start + bs) in
      let b =
        if copy_from = blk_start && copy_to = blk_start + bs then Bytes.create bs
        else read_blk t blkno
      in
      Bytes.blit data (copy_from - off) b (copy_from - blk_start) (copy_to - copy_from);
      stage ~data:true t blkno b
    done;
    with_inode t ino (fun b ioff ->
        if off + len > get_size b ioff then set_size b ioff (off + len);
        set_mtime b ioff t.tick);
    maybe_commit t
  end

let pread t name ~off ~len =
  let ino = lookup t name in
  let out = Bytes.make len '\000' in
  if len > 0 then begin
    let first = off / bs and last = (off + len - 1) / bs in
    for fbi = first to last do
      let blkno = bmap t ino fbi ~alloc:false in
      if blkno <> 0 then begin
        let b = read_blk t blkno in
        let blk_start = fbi * bs in
        let copy_from = max off blk_start in
        let copy_to = min (off + len) (blk_start + bs) in
        Bytes.blit b (copy_from - blk_start) out (copy_from - off) (copy_to - copy_from)
      end
    done
  end;
  out

let append t name data = pwrite t name ~off:(size t name) data

let delete t name =
  let ino = lookup t name in
  (* Free all mapped blocks, including indirection blocks. *)
  let free_ptr_block blkno depth =
    let rec go blkno depth =
      if blkno <> 0 then begin
        if depth > 0 then begin
          let b = read_blk t blkno in
          for i = 0 to ptrs_per_block - 1 do
            go (Codec.get_u32 b (i * 4)) (depth - 1)
          done
        end;
        free_data t blkno
      end
    in
    go blkno depth
  in
  t.tick <- t.tick + 1;
  with_inode t ino (fun b off ->
      for i = 0 to ndirect - 1 do
        let blk = get_direct b off i in
        if blk <> 0 then free_data t blk
      done;
      free_ptr_block (get_ind b off) 1;
      free_ptr_block (get_dind b off) 2;
      Bytes.fill b off inode_size '\000');
  t.free_inodes <- ino :: t.free_inodes;
  let dirent_idx = Hashtbl.find t.dirent_of name in
  clear_dirent t dirent_idx;
  t.free_dirents <- dirent_idx :: t.free_dirents;
  Hashtbl.remove t.names name;
  Hashtbl.remove t.dirent_of name;
  maybe_commit t

let rename t old_name new_name =
  let ino = lookup t old_name in
  if exists t new_name then raise (File_exists new_name);
  if String.length new_name > max_name || new_name = "" then invalid_arg "Fs: bad file name";
  let dirent_idx = Hashtbl.find t.dirent_of old_name in
  t.tick <- t.tick + 1;
  write_dirent t dirent_idx ~ino ~name:new_name;
  Hashtbl.remove t.names old_name;
  Hashtbl.remove t.dirent_of old_name;
  Hashtbl.replace t.names new_name ino;
  Hashtbl.replace t.dirent_of new_name dirent_idx;
  maybe_commit t

let truncate t name new_size =
  if new_size < 0 then invalid_arg "Fs.truncate: negative size";
  let ino = lookup t name in
  let old_size = inode_peek t ino (fun b off -> get_size b off) in
  t.tick <- t.tick + 1;
  if new_size < old_size then begin
    (* Zero the tail of the boundary block (POSIX: bytes between the new
       EOF and the block edge must read as zeros if the file grows
       again). *)
    (if new_size mod bs <> 0 then
       let blkno = bmap t ino (new_size / bs) ~alloc:false in
       if blkno <> 0 then begin
         let b = read_blk t blkno in
         Bytes.fill b (new_size mod bs) (bs - (new_size mod bs)) '\000';
         stage ~data:true t blkno b
       end);
    (* First file-block index that must go away. *)
    let first_dead = (new_size + bs - 1) / bs in
    (* Free one pointer tree: depth 0 = data, 1 = indirect, 2 = double
       indirect; [base] is the file-block index of the subtree's first
       leaf, [span] the leaves it covers.  Returns true when the whole
       subtree was freed (so the parent pointer can be cleared). *)
    let rec prune blkno depth base span =
      if blkno = 0 then true
      else if base >= first_dead then begin
        (* Entire subtree dead. *)
        if depth > 0 then begin
          let b = read_blk t blkno in
          let child_span = span / ptrs_per_block in
          for i = 0 to ptrs_per_block - 1 do
            ignore (prune (Codec.get_u32 b (i * 4)) (depth - 1) (base + (i * child_span)) child_span)
          done
        end;
        free_data t blkno;
        true
      end
      else if base + span <= first_dead then false (* untouched *)
      else begin
        (* Straddles the cut: recurse and clear dead child pointers. *)
        let b = read_blk t blkno in
        let child_span = span / ptrs_per_block in
        let changed = ref false in
        for i = 0 to ptrs_per_block - 1 do
          let child = Codec.get_u32 b (i * 4) in
          if child <> 0 && prune child (depth - 1) (base + (i * child_span)) child_span then begin
            Codec.set_u32 b (i * 4) 0;
            changed := true
          end
        done;
        if !changed then stage t blkno b;
        false
      end
    in
    with_inode t ino (fun b off ->
        for i = 0 to ndirect - 1 do
          let blk = get_direct b off i in
          if blk <> 0 && i >= first_dead then begin
            free_data t blk;
            set_direct b off i 0
          end
        done;
        let ind = get_ind b off in
        if ind <> 0 && prune ind 1 ndirect ptrs_per_block then set_ind b off 0;
        let dind = get_dind b off in
        if
          dind <> 0
          && prune dind 2 (ndirect + ptrs_per_block) (ptrs_per_block * ptrs_per_block)
        then set_dind b off 0;
        set_size b off new_size;
        set_mtime b off t.tick)
  end
  else
    with_inode t ino (fun b off ->
        set_size b off new_size;
        set_mtime b off t.tick);
  maybe_commit t

let list_files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.names [] |> List.sort String.compare

let file_count t = Hashtbl.length t.names

(* --- fsck --------------------------------------------------------------------- *)

let fsck t =
  let fail fmt = Printf.ksprintf failwith ("fsck: " ^^ fmt) in
  let sb = read_blk t 0 in
  if not (Int64.equal (Codec.get_u64 sb 0) magic) then fail "bad superblock magic";
  let claimed = Hashtbl.create 1024 in
  let claim blkno who =
    if blkno < t.geo.data_start || blkno >= t.geo.journal_start then
      fail "block %d (%s) outside data region" blkno who;
    (match Hashtbl.find_opt claimed blkno with
    | Some other -> fail "block %d claimed by both %s and %s" blkno who other
    | None -> ());
    Hashtbl.replace claimed blkno who;
    if not (bit_get t.bitmap (blkno - t.geo.data_start)) then
      fail "block %d (%s) not marked in bitmap" blkno who
  in
  (* claim a pointer tree: depth 0 = data block, depth 1 = indirect
     block over data, depth 2 = double indirect. *)
  let rec walk_tree blkno depth who =
    if blkno <> 0 then begin
      claim blkno who;
      if depth > 0 then begin
        let pb = read_blk t blkno in
        for i = 0 to ptrs_per_block - 1 do
          walk_tree (Codec.get_u32 pb (i * 4)) (depth - 1) who
        done
      end
    end
  in
  let walk_inode ino who =
    inode_peek t ino (fun b off ->
        for i = 0 to ndirect - 1 do
          walk_tree (get_direct b off i) 0 who
        done;
        walk_tree (get_ind b off) 1 who;
        walk_tree (get_dind b off) 2 who)
  in
  (* Root directory first. *)
  if inode_peek t root_ino (fun b off -> get_kind b off) <> kind_dir then
    fail "root inode is not a directory";
  walk_inode root_ino "rootdir";
  (* Directory entries point at live file inodes. *)
  Hashtbl.iter
    (fun name ino ->
      if ino <= 0 || ino >= t.cfg.ninodes then fail "dirent %s -> bad inode %d" name ino;
      let kind = inode_peek t ino (fun b off -> get_kind b off) in
      if kind <> kind_file then fail "dirent %s -> inode %d of kind %d" name ino kind;
      walk_inode ino name)
    t.names;
  (* Bitmap agreement: every set bit must be claimed. *)
  for bit = 0 to t.geo.data_blocks - 1 do
    let set = bit_get t.bitmap bit in
    let used = Hashtbl.mem claimed (t.geo.data_start + bit) in
    if set && not used then fail "bitmap leak at data bit %d" bit;
    if used && not set then fail "bitmap lost block at data bit %d" bit
  done
