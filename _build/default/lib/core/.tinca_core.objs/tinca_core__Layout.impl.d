lib/core/layout.ml: Entry
