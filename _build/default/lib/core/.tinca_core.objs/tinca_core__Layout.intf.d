lib/core/layout.mli:
