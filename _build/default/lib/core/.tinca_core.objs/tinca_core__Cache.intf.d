lib/core/cache.mli: Entry Layout Tinca_blockdev Tinca_cachelib Tinca_pmem Tinca_sim Tinca_util
