lib/core/ring.ml: Layout Tinca_pmem
