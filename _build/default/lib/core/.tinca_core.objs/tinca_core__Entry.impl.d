lib/core/entry.ml: Bytes Codec Format Tinca_util
