lib/core/ring.mli: Layout Tinca_pmem
