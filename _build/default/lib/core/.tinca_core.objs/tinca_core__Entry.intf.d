lib/core/entry.mli: Format
