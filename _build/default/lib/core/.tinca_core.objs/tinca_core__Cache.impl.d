lib/core/cache.ml: Bytes Clock Entry Format Hashtbl Latency Layout List Logs Metrics Printf Ring Tinca_blockdev Tinca_cachelib Tinca_pmem Tinca_sim Tinca_util
