(** The 16-byte Tinca cache entry (paper Fig 5, §4.2).

    Layout (little-endian):
    - byte 0: flags — bit 0 [V]alid (ours: distinguishes free slots),
      bit 1 [R]ole (1 = log block, 0 = buffer block), bit 2 [M]odified;
    - bytes 1..7: on-disk block number (56 bits);
    - bytes 8..11: {e previous} NVM block number (32 bits,
      [fresh] = 0xFFFFFFFF when the block had no prior cached version);
    - bytes 12..15: {e current} NVM block number (32 bits).

    An entry always fits one [cmpxchg16b]-style atomic write, which is
    what makes fine-grained metadata updates crash-atomic. *)

type role = Log | Buffer

type t = {
  valid : bool;
  role : role;
  modified : bool;
  disk_blkno : int;
  prev : int option; (** [None] encodes FRESH *)
  cur : int;
}

(** The FRESH sentinel as stored on media. *)
val fresh : int

(** Size in bytes (16). *)
val size : int

(** [encode t] — 16-byte representation. *)
val encode : t -> bytes

(** [decode b] — [b] must be exactly 16 bytes.  An all-invalid slot
    decodes with [valid = false]. *)
val decode : bytes -> t

(** A zeroed, invalid slot. *)
val invalid_bytes : unit -> bytes

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
