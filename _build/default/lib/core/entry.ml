open Tinca_util

type role = Log | Buffer

type t = {
  valid : bool;
  role : role;
  modified : bool;
  disk_blkno : int;
  prev : int option;
  cur : int;
}

let fresh = 0xFFFFFFFF
let size = 16

let flag_valid = 0b001
let flag_log = 0b010
let flag_modified = 0b100

let encode t =
  let b = Bytes.make size '\000' in
  let flags =
    (if t.valid then flag_valid else 0)
    lor (match t.role with Log -> flag_log | Buffer -> 0)
    lor (if t.modified then flag_modified else 0)
  in
  Codec.set_u8 b 0 flags;
  Codec.set_u56 b 1 t.disk_blkno;
  Codec.set_u32 b 8 (match t.prev with Some p -> p | None -> fresh);
  Codec.set_u32 b 12 t.cur;
  b

let decode b =
  if Bytes.length b <> size then invalid_arg "Entry.decode: need 16 bytes";
  let flags = Codec.get_u8 b 0 in
  let prev_raw = Codec.get_u32 b 8 in
  {
    valid = flags land flag_valid <> 0;
    role = (if flags land flag_log <> 0 then Log else Buffer);
    modified = flags land flag_modified <> 0;
    disk_blkno = Codec.get_u56 b 1;
    prev = (if prev_raw = fresh then None else Some prev_raw);
    cur = Codec.get_u32 b 12;
  }

let invalid_bytes () = Bytes.make size '\000'

let pp ppf t =
  Format.fprintf ppf "{V=%b R=%s M=%b disk=%d prev=%s cur=%d}" t.valid
    (match t.role with Log -> "log" | Buffer -> "buf")
    t.modified t.disk_blkno
    (match t.prev with Some p -> string_of_int p | None -> "FRESH")
    t.cur

let equal a b =
  a.valid = b.valid && a.role = b.role && a.modified = b.modified
  && a.disk_blkno = b.disk_blkno && a.prev = b.prev && a.cur = b.cur
