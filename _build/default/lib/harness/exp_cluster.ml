(** Figures 10 and 11: the 4-node cluster experiments (paper §5.3).

    Fig 10: TeraGen over the HDFS-like DFS with 1/2/3 replicas —
    execution time (paper: Tinca 29 % / 54 % / 60 % faster), clflush per
    MB and disk blocks per MB (paper: −80.7 % clflush, −38.3 % disk
    writes at 3 replicas).

    Fig 11: Filebench over the GlusterFS-like DFS with 2 replicas —
    OPs/s (paper: Tinca 1.8x fileserver, 1.2x webproxy, 1.5x varmail),
    clflush per op, disk blocks per op. *)

module Node = Tinca_cluster.Node
module Hdfs = Tinca_cluster.Hdfs
module Gluster = Tinca_cluster.Gluster
module Teragen = Tinca_workloads.Teragen
module Filebench = Tinca_workloads.Filebench
module Ops = Tinca_workloads.Ops
module Tabular = Tinca_util.Tabular

let node_config =
  { Node.default_config with nvm_bytes = 8 * 1024 * 1024; disk_blocks = 65536 }

let teragen_cfg = { Teragen.default with total_bytes = 48 * 1024 * 1024; chunk_bytes = 1 lsl 20 }

let mk_nodes kind = Array.init 4 (fun id -> Node.make ~id ~config:node_config kind)

type cluster_run = {
  seconds : float;
  clflush : int;
  disk_writes : int;
  ops : int;
}

let run_teragen kind replicas =
  let nodes = mk_nodes kind in
  let hdfs = Hdfs.create ~replicas nodes in
  let snaps = Node.snapshot_all nodes in
  ignore (Teragen.run teragen_cfg (Hdfs.ops hdfs));
  Array.iter (fun n -> Tinca_fs.Fs.fsync n.Node.fs) nodes;
  {
    seconds = Hdfs.execution_ns hdfs /. 1e9;
    clflush = Node.since_all nodes snaps "pmem.clflush";
    disk_writes = Node.since_all nodes snaps "disk.writes";
    ops = 0;
  }

let fig10 () =
  let time_t =
    Tabular.create ~title:"Fig 10(a): TeraGen execution time on HDFS-like DFS (4 nodes)"
      [ "Replicas"; "Classic s"; "Tinca s"; "Tinca saves" ]
  in
  let cl_t =
    Tabular.create ~title:"Fig 10(b): clflush per MB generated"
      [ "Replicas"; "Classic"; "Tinca"; "reduction" ]
  in
  let dw_t =
    Tabular.create ~title:"Fig 10(c): disk blocks written per MB generated"
      [ "Replicas"; "Classic"; "Tinca"; "reduction" ]
  in
  let mbs = Runner.mb teragen_cfg.Teragen.total_bytes in
  List.iter
    (fun replicas ->
      let tinca = run_teragen Node.Tinca_node replicas in
      let classic = run_teragen Node.Classic_node replicas in
      Tabular.add_row time_t
        [ string_of_int replicas;
          Tabular.cell_f classic.seconds;
          Tabular.cell_f tinca.seconds;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (tinca.seconds /. classic.seconds))) ];
      let per_mb v = float_of_int v /. mbs in
      Tabular.add_row cl_t
        [ string_of_int replicas;
          Tabular.cell_f ~decimals:0 (per_mb classic.clflush);
          Tabular.cell_f ~decimals:0 (per_mb tinca.clflush);
          Printf.sprintf "-%.1f%%" (100.0 *. (1.0 -. (float_of_int tinca.clflush /. float_of_int classic.clflush))) ];
      Tabular.add_row dw_t
        [ string_of_int replicas;
          Tabular.cell_f ~decimals:1 (per_mb classic.disk_writes);
          Tabular.cell_f ~decimals:1 (per_mb tinca.disk_writes);
          Printf.sprintf "-%.1f%%" (100.0 *. (1.0 -. (float_of_int tinca.disk_writes /. float_of_int classic.disk_writes))) ])
    [ 1; 2; 3 ];
  [ time_t; cl_t; dw_t ]

(* 300 us/op of client RPC + server request handling (FUSE + translator
   stack): GlusterFS's per-op software cost, paid identically by both
   systems. *)
let fb_cfg p =
  { (Filebench.default p) with nfiles = 400; mean_file_kb = 24; ops = 3_000;
    op_cpu_ns = 300_000.0 }

let run_filebench kind personality =
  let nodes = mk_nodes kind in
  let g = Gluster.create ~replicas:2 nodes in
  let ops = Gluster.ops g in
  let cfg = fb_cfg personality in
  let t = Filebench.prealloc cfg ops in
  let t0 = Gluster.client_ns g in
  let snaps = Node.snapshot_all nodes in
  let stats = Filebench.run t ops in
  {
    seconds = (Gluster.client_ns g -. t0) /. 1e9;
    clflush = Node.since_all nodes snaps "pmem.clflush";
    disk_writes = Node.since_all nodes snaps "disk.writes";
    ops = stats.Ops.ops;
  }

let fig11 () =
  let ops_t =
    Tabular.create ~title:"Fig 11(a): Filebench OPs/s on GlusterFS-like DFS (2 replicas)"
      [ "Workload"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  let cl_t =
    Tabular.create ~title:"Fig 11(b): clflush per file operation"
      [ "Workload"; "Classic"; "Tinca"; "reduction" ]
  in
  let dw_t =
    Tabular.create ~title:"Fig 11(c): disk blocks written per file operation"
      [ "Workload"; "Classic"; "Tinca"; "reduction" ]
  in
  List.iter
    (fun p ->
      let tinca = run_filebench Node.Tinca_node p in
      let classic = run_filebench Node.Classic_node p in
      let opsps r = float_of_int r.ops /. r.seconds in
      let per_op r v = float_of_int v /. float_of_int (max 1 r.ops) in
      Tabular.add_row ops_t
        [ Filebench.personality_name p;
          Tabular.cell_f ~decimals:0 (opsps classic);
          Tabular.cell_f ~decimals:0 (opsps tinca);
          Runner.ratio_str (opsps tinca) (opsps classic) ];
      Tabular.add_row cl_t
        [ Filebench.personality_name p;
          Tabular.cell_f ~decimals:1 (per_op classic classic.clflush);
          Tabular.cell_f ~decimals:1 (per_op tinca tinca.clflush);
          Printf.sprintf "-%.1f%%"
            (100.0 *. (1.0 -. (per_op tinca tinca.clflush /. per_op classic classic.clflush))) ];
      Tabular.add_row dw_t
        [ Filebench.personality_name p;
          Tabular.cell_f ~decimals:2 (per_op classic classic.disk_writes);
          Tabular.cell_f ~decimals:2 (per_op tinca tinca.disk_writes);
          Printf.sprintf "-%.1f%%"
            (100.0
            *. (1.0 -. (per_op tinca tinca.disk_writes /. per_op classic classic.disk_writes))) ])
    [ Filebench.Fileserver; Filebench.Webproxy; Filebench.Varmail ];
  [ ops_t; cl_t; dw_t ]
