(** Motivation experiments (paper §3): Fig 3(a) journaling write traffic,
    Fig 3(b) journaling + clflush bandwidth staircase, Fig 4 synchronous
    cache-metadata update cost. *)

val fig3a : unit -> Tinca_util.Tabular.t list
val fig3b : unit -> Tinca_util.Tabular.t list
val fig4 : unit -> Tinca_util.Tabular.t list
