(** §5.1 Recoverability: randomized crash + recovery trials over
    FS-on-Tinca (power-cut and process-kill analogues), verifying cache
    invariants, fsck and every acknowledged write. *)

val run : unit -> Tinca_util.Tabular.t list
