(** Figures 8 and 12: TPC-C on Classic vs Tinca (paper §5.2.2, §5.4.1,
    §5.4.2) — TPM / clflush / disk blocks vs user count, SSD vs HDD,
    NVM technology sweep, and cache write hit rates. *)

val fig8 : unit -> Tinca_util.Tabular.t list
val fig12a : unit -> Tinca_util.Tabular.t list
val fig12b : unit -> Tinca_util.Tabular.t list
val fig12c : unit -> Tinca_util.Tabular.t list
