(** The experiment registry: every table and figure of the paper (plus
    extension/ablation experiments), addressable by id from the CLI and
    the benchmark executable. *)

type experiment = {
  id : string;
  title : string;
  paper_ref : string;  (** what the paper reports, for eyeball comparison *)
  run : unit -> Tinca_util.Tabular.t list;
}

val all : experiment list
val find : string -> experiment option

(** Run one experiment and render its header + tables as text. *)
val run_experiment : experiment -> string

(** CSV form of one result table (for the CLI's [--csv]). *)
val csv_of : Tinca_util.Tabular.t -> string
