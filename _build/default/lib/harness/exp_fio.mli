(** Fig 7: Fio micro-benchmark, Classic vs Tinca (paper §5.2.1) — write
    IOPS, clflush per write op and disk blocks per write op across the
    three read/write ratios. *)

val fig7 : unit -> Tinca_util.Tabular.t list
