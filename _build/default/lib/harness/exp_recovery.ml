(** §5.1 Recoverability: the paper validates Tinca by repeatedly pulling
    the power cable and killing the process, then checking that the
    system always recovers consistently.

    Analogue here: run an Fio workload over FS-on-Tinca, crash at a
    random pmem event with a random survival policy (power-cut ~ low
    survival, process kill ~ survival 1.0), recover the cache, re-mount
    the file system, and check (a) the cache's structural invariants,
    (b) fsck, and (c) that every fsync'd prefix of the data is intact.
    Reports trials vs successes. *)

module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs
module Pmem = Tinca_pmem.Pmem
module Tabular = Tinca_util.Tabular

let trials = 40

let fs_config = { Fs.default_config with ninodes = 512; journal_len = 256 }

(* One trial: write files in synced rounds, crash somewhere, recover,
   verify all rounds that were acknowledged. *)
let trial ~seed =
  let rng = Tinca_util.Rng.create seed in
  let env = Stacks.make_env ~seed ~nvm_bytes:(4 * 1024 * 1024) ~disk_blocks:16384 () in
  let stack = Stacks.tinca env in
  let fs = Fs.format ~config:fs_config stack.Stacks.backend in
  let synced_rounds = ref 0 in
  let crash_at = 200 + Tinca_util.Rng.int rng 20_000 in
  let survival = [| 0.0; 0.25; 0.5; 0.75; 1.0 |].(Tinca_util.Rng.int rng 5) in
  Pmem.set_crash_countdown env.Stacks.pmem (Some crash_at);
  (try
     for round = 0 to 30 do
       let name = Printf.sprintf "round%02d" round in
       Fs.create fs name;
       Fs.pwrite fs name ~off:0 (Bytes.make (4096 * (1 + (round mod 5))) (Char.chr (65 + (round mod 26))));
       Fs.fsync fs;
       synced_rounds := round + 1
     done;
     Pmem.set_crash_countdown env.Stacks.pmem None
   with Pmem.Crash_point -> ());
  Pmem.crash ~seed:(seed * 13) ~survival env.Stacks.pmem;
  let stack2 = Stacks.tinca_recover env in
  let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
  Fs.fsck fs2;
  (* Every synced round must be fully present. *)
  for round = 0 to !synced_rounds - 1 do
    let name = Printf.sprintf "round%02d" round in
    if not (Fs.exists fs2 name) then failwith (name ^ " lost after recovery");
    let expect = Char.chr (65 + (round mod 26)) in
    let data = Fs.pread fs2 name ~off:0 ~len:(Fs.size fs2 name) in
    Bytes.iter (fun c -> if c <> expect then failwith (name ^ " corrupt after recovery")) data
  done

let run () =
  let ok = ref 0 in
  let failures = ref [] in
  for seed = 1 to trials do
    match trial ~seed with
    | () -> incr ok
    | exception e -> failures := (seed, Printexc.to_string e) :: !failures
  done;
  let table =
    Tabular.create ~title:"5.1 Recoverability: random crash + recovery trials (Fio-style rounds)"
      [ "Trials"; "Recovered consistently"; "Failures" ]
  in
  Tabular.add_row table
    [ Tabular.cell_i trials; Tabular.cell_i !ok; Tabular.cell_i (List.length !failures) ];
  List.iter
    (fun (seed, msg) -> Tabular.add_row table [ Printf.sprintf "seed %d" seed; "FAILED"; msg ])
    !failures;
  [ table ]
