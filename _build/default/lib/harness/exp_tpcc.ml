(** Figures 8 and 12: TPC-C on Classic vs Tinca (paper §5.2.2, §5.4.1,
    §5.4.2).

    Fig 8: throughput in TPM across 5..60 users (paper: Tinca ~1.8x /
    1.7x Classic; both decline with users), clflush per transaction
    (paper: Tinca at 29.8–36.2 % of Classic) and disk blocks per
    transaction (paper: 4.2 vs 1.9 at 5 users; 7.0 vs 3.0 at 60).

    Fig 12(a): SSD vs HDD at 20 users (paper: gap widens 1.7x -> 2.8x on
    HDD).  Fig 12(b): PCM vs NVDIMM vs STT-RAM (paper: gap narrows
    slightly, 1.7x -> 1.6x).  Fig 12(c): cache write hit rate (paper:
    Classic 80 %, Tinca 93 %). *)

open Tinca_sim
module Stacks = Tinca_stacks.Stacks
module Tpcc = Tinca_workloads.Tpcc
module Tabular = Tinca_util.Tabular

let nvm_bytes = 5 * 1024 * 1024
let warehouses = 32

let cfg users = { Tpcc.default with warehouses; users; txns = 3_000 }

let run ?tech ?disk_kind ~users spec =
  Runner.run_local ~nvm_bytes ?tech ?disk_kind ~spec
    ~prealloc:(fun ops -> Tpcc.prealloc (cfg users) ops)
    ~work:(fun ops -> Tpcc.run (cfg users) ops)
    ()

let tpm m = float_of_int m.Runner.ops /. (m.Runner.sim_seconds /. 60.0)

let fig8 () =
  let tpm_t =
    Tabular.create ~title:"Fig 8(a): TPC-C throughput (TPM)"
      [ "Users"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  let cl_t =
    Tabular.create ~title:"Fig 8(b): clflush per TPC-C transaction"
      [ "Users"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  let dw_t =
    Tabular.create ~title:"Fig 8(c): disk blocks written per TPC-C transaction"
      [ "Users"; "Classic"; "Tinca" ]
  in
  List.iter
    (fun users ->
      let tinca = run ~users Stacks.tinca in
      let classic = run ~users (fun env -> Stacks.classic ~journal_len:4096 env) in
      Tabular.add_row tpm_t
        [ string_of_int users; Tabular.cell_f ~decimals:0 (tpm classic);
          Tabular.cell_f ~decimals:0 (tpm tinca); Runner.ratio_str (tpm tinca) (tpm classic) ];
      Tabular.add_row cl_t
        [ string_of_int users;
          Tabular.cell_f ~decimals:1 classic.Runner.clflush_per_op;
          Tabular.cell_f ~decimals:1 tinca.Runner.clflush_per_op;
          Printf.sprintf "%.1f%%" (100.0 *. tinca.Runner.clflush_per_op /. classic.Runner.clflush_per_op) ];
      Tabular.add_row dw_t
        [ string_of_int users;
          Tabular.cell_f ~decimals:2 classic.Runner.disk_writes_per_op;
          Tabular.cell_f ~decimals:2 tinca.Runner.disk_writes_per_op ])
    [ 5; 10; 15; 20; 40; 60 ];
  [ tpm_t; cl_t; dw_t ]

let fig12a () =
  let table =
    Tabular.create ~title:"Fig 12(a): TPC-C (20 users) on SSD vs HDD"
      [ "Disk"; "Classic TPM"; "Tinca TPM"; "Tinca/Classic" ]
  in
  List.iter
    (fun disk_kind ->
      let tinca = run ~disk_kind ~users:20 Stacks.tinca in
      let classic = run ~disk_kind ~users:20 (fun env -> Stacks.classic ~journal_len:4096 env) in
      Tabular.add_row table
        [ Latency.disk_kind_name disk_kind;
          Tabular.cell_f ~decimals:0 (tpm classic);
          Tabular.cell_f ~decimals:0 (tpm tinca);
          Runner.ratio_str (tpm tinca) (tpm classic) ])
    [ Latency.Ssd; Latency.Hdd ];
  [ table ]

let fig12b () =
  let table =
    Tabular.create ~title:"Fig 12(b): TPC-C (20 users) across NVM technologies"
      [ "NVM"; "Classic TPM"; "Tinca TPM"; "Tinca/Classic" ]
  in
  List.iter
    (fun tech ->
      let tinca = run ~tech ~users:20 Stacks.tinca in
      let classic = run ~tech ~users:20 (fun env -> Stacks.classic ~journal_len:4096 env) in
      Tabular.add_row table
        [ Latency.nvm_tech_name tech;
          Tabular.cell_f ~decimals:0 (tpm classic);
          Tabular.cell_f ~decimals:0 (tpm tinca);
          Runner.ratio_str (tpm tinca) (tpm classic) ])
    [ Latency.Pcm; Latency.Nvdimm; Latency.Stt_ram ];
  [ table ]

let fig12c () =
  let tinca = run ~users:20 Stacks.tinca in
  let classic = run ~users:20 (fun env -> Stacks.classic ~journal_len:4096 env) in
  let table =
    Tabular.create ~title:"Fig 12(c): cache write hit rate, TPC-C 20 users"
      [ "System"; "Write hit rate" ]
  in
  Tabular.add_row table
    [ "Classic"; Printf.sprintf "%.1f%%" (100.0 *. classic.Runner.write_hit_rate) ];
  Tabular.add_row table
    [ "Tinca"; Printf.sprintf "%.1f%%" (100.0 *. tinca.Runner.write_hit_rate) ];
  [ table ]
