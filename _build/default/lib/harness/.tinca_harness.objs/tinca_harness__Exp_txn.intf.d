lib/harness/exp_txn.mli: Tinca_util
