lib/harness/exp_ablation.mli: Tinca_util
