lib/harness/runner.ml: Clock Latency Metrics Printf Tinca_fs Tinca_sim Tinca_stacks Tinca_workloads
