lib/harness/exp_check.mli: Tinca_util
