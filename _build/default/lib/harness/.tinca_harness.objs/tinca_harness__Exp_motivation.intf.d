lib/harness/exp_motivation.mli: Tinca_util
