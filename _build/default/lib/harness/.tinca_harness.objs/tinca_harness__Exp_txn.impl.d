lib/harness/exp_txn.ml: List Option Printf Runner Tinca_core Tinca_fs Tinca_stacks Tinca_util Tinca_workloads
