lib/harness/exp_cluster.mli: Tinca_util
