lib/harness/exp_cluster.ml: Array List Printf Runner Tinca_cluster Tinca_fs Tinca_util Tinca_workloads
