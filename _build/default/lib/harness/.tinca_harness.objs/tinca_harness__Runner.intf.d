lib/harness/runner.mli: Tinca_fs Tinca_sim Tinca_stacks Tinca_workloads
