lib/harness/exp_tpcc.mli: Tinca_util
