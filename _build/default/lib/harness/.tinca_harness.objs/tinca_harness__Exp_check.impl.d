lib/harness/exp_check.ml: Format List Tinca_checker Tinca_util
