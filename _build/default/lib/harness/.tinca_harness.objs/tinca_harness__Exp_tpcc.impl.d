lib/harness/exp_tpcc.ml: Latency List Printf Runner Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
