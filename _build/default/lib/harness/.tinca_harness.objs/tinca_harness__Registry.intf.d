lib/harness/registry.mli: Tinca_util
