lib/harness/exp_fio.mli: Tinca_util
