lib/harness/exp_motivation.ml: List Option Printf Runner Tinca_flashcache Tinca_stacks Tinca_util Tinca_workloads
