lib/harness/exp_fio.ml: List Printf Runner Tinca_stacks Tinca_util Tinca_workloads
