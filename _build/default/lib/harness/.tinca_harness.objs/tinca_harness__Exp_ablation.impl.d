lib/harness/exp_ablation.ml: Latency List Option Printf Runner Tinca_cachelib Tinca_core Tinca_fs Tinca_pmem Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
