lib/harness/registry.ml: Buffer Exp_ablation Exp_check Exp_cluster Exp_fio Exp_motivation Exp_recovery Exp_tpcc Exp_txn List Printf Tinca_sim Tinca_util Tinca_workloads
