lib/harness/exp_recovery.ml: Array Bytes Char List Printexc Printf Tinca_fs Tinca_pmem Tinca_stacks Tinca_util
