lib/harness/exp_recovery.mli: Tinca_util
