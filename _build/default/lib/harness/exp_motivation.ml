(** Motivation experiments (paper §3).

    Fig 3(a): write traffic into the NVM cache with Ext4 journaling vs
    without, on three Filebench workloads (paper: journaling causes
    ~195–290 % of the no-journal traffic).

    Fig 3(b): Fio random-write bandwidth: no journal & no clflush -> with
    journaling -> with journaling + clflush/sfence (paper: −31.5 % then a
    further −28.3 %).

    Fig 4: impact of Flashcache's synchronous block-format metadata
    updates (paper: waiving them improves throughput by 45.2 % with
    journaling, 65.5 % without). *)

module Stacks = Tinca_stacks.Stacks
module Fc = Tinca_flashcache.Flashcache
module Filebench = Tinca_workloads.Filebench
module Fio = Tinca_workloads.Fio
module Tabular = Tinca_util.Tabular
module Ops = Tinca_workloads.Ops

(* Population sized to mostly fit the cache so Fig 3(a) measures the
   journaling write amplification, not read-miss fill traffic. *)
let fb_cfg p = { (Filebench.default p) with nfiles = 200; mean_file_kb = 16; ops = 3_000 }

let fig3a () =
  let table =
    Tabular.create ~title:"Fig 3(a): NVM write traffic, Ext4 journal vs no-journal (Filebench)"
      [ "Workload"; "Journal MB"; "NoJournal MB"; "Journal/NoJournal" ]
  in
  List.iter
    (fun p ->
      let run spec journaled =
        let cfg = fb_cfg p in
        let st = ref None in
        let m =
          Runner.run_local ~spec ~journaled
            ~prealloc:(fun ops -> st := Some (Filebench.prealloc cfg ops))
            ~work:(fun ops -> Filebench.run (Option.get !st) ops)
            ()
        in
        Runner.mb m.Runner.nvm_bytes_stored
      in
      let with_journal = run (fun env -> Stacks.classic ~journal_len:4096 env) true in
      let without = run (fun env -> Stacks.nojournal env) false in
      Tabular.add_row table
        [
          Filebench.personality_name p;
          Tabular.cell_f with_journal;
          Tabular.cell_f without;
          Printf.sprintf "%.0f%%" (100.0 *. with_journal /. without);
        ])
    [ Filebench.Fileserver; Filebench.Webproxy; Filebench.Varmail ];
  [ table ]

let fio_write_cfg = { Fio.default with file_size = 16 * 1024 * 1024; read_pct = 0.0; ops = 6_000 }

let fig3b () =
  let run spec journaled =
    let m =
      Runner.run_local ~spec ~journaled
        ~prealloc:(fun ops -> Fio.prealloc fio_write_cfg ops)
        ~work:(fun ops -> Fio.run fio_write_cfg ops)
        ()
    in
    (* Bandwidth of logical writes. *)
    Runner.mb m.Runner.stats.Ops.bytes_written /. m.Runner.sim_seconds
  in
  let noflush = { Fc.default_config with flush_writes = false } in
  let no_journal_no_flush = run (fun env -> Stacks.nojournal ~fc_config:noflush env) false in
  let journal_no_flush = run (fun env -> Stacks.classic ~fc_config:noflush ~journal_len:4096 env) true in
  let journal_flush = run (fun env -> Stacks.classic ~journal_len:4096 env) true in
  let table =
    Tabular.create ~title:"Fig 3(b): Fio write bandwidth under journaling and clflush"
      [ "Configuration"; "MB/s"; "vs left bar" ]
  in
  Tabular.add_row table
    [ "Ext4 no journal, no clflush"; Tabular.cell_f no_journal_no_flush; "100%" ];
  Tabular.add_row table
    [
      "Ext4 + journaling (no clflush)";
      Tabular.cell_f journal_no_flush;
      Printf.sprintf "%.0f%%" (100.0 *. journal_no_flush /. no_journal_no_flush);
    ];
  Tabular.add_row table
    [
      "Ext4 + journaling + clflush/sfence";
      Tabular.cell_f journal_flush;
      Printf.sprintf "%.0f%%" (100.0 *. journal_flush /. no_journal_no_flush);
    ];
  [ table ]

let fig4 () =
  let run ~journaled ~metadata_sync =
    let fc_config = { Fc.default_config with metadata_sync } in
    let spec =
      if journaled then Stacks.classic ~fc_config ~journal_len:4096
      else Stacks.nojournal ~fc_config
    in
    let m =
      Runner.run_local ~spec ~journaled
        ~prealloc:(fun ops -> Fio.prealloc fio_write_cfg ops)
        ~work:(fun ops -> Fio.run fio_write_cfg ops)
        ()
    in
    m.Runner.throughput
  in
  let j_md = run ~journaled:true ~metadata_sync:true in
  let j_nomd = run ~journaled:true ~metadata_sync:false in
  let nj_md = run ~journaled:false ~metadata_sync:true in
  let nj_nomd = run ~journaled:false ~metadata_sync:false in
  let table =
    Tabular.create ~title:"Fig 4: impact of synchronous cache-metadata updates (Fio random write)"
      [ "Configuration"; "IOPS"; "waiving metadata" ]
  in
  Tabular.add_row table
    [ "Ext4 journal + metadata sync"; Tabular.cell_f ~decimals:0 j_md; "-" ];
  Tabular.add_row table
    [
      "Ext4 journal, metadata waived";
      Tabular.cell_f ~decimals:0 j_nomd;
      Printf.sprintf "+%.1f%%" (100.0 *. ((j_nomd /. j_md) -. 1.0));
    ];
  Tabular.add_row table
    [ "Ext4 no-journal + metadata sync"; Tabular.cell_f ~decimals:0 nj_md; "-" ];
  Tabular.add_row table
    [
      "Ext4 no-journal, metadata waived";
      Tabular.cell_f ~decimals:0 nj_nomd;
      Printf.sprintf "+%.1f%%" (100.0 *. ((nj_nomd /. nj_md) -. 1.0));
    ];
  [ table ]
