(** Fig 7: Fio micro-benchmark, Classic vs Tinca (paper §5.2.1).

    Three read/write ratios (3/7, 5/5, 7/3) over a dataset 2.5x the NVM
    cache; reported per ratio: write IOPS (paper: Tinca 2.5x / 2.1x /
    1.7x Classic), clflush per write op (paper: −73..76 %), and disk
    blocks written per write op (paper: −60..65 %). *)

module Stacks = Tinca_stacks.Stacks
module Fio = Tinca_workloads.Fio
module Tabular = Tinca_util.Tabular

let nvm_bytes = 8 * 1024 * 1024
let dataset = 20 * 1024 * 1024 (* = 2.5x cache, like 20 GB vs 8 GB *)

(* fio issues no fsync of its own; Ext4's periodic commit (the 5 s JBD2
   timer) batches writes into transactions.  fsync_every = 32 stands in
   for that batching. *)
let cfg read_pct =
  { Fio.default with file_size = dataset; read_pct; ops = 8_000; fsync_every = 32 }

let run_pair read_pct =
  let run spec =
    Runner.run_local ~nvm_bytes ~spec
      ~prealloc:(fun ops -> Fio.prealloc (cfg read_pct) ops)
      ~work:(fun ops -> Fio.run (cfg read_pct) ops)
      ()
  in
  (run (fun env -> Stacks.tinca env), run (fun env -> Stacks.classic ~journal_len:4096 env))

let fig7 () =
  let iops =
    Tabular.create ~title:"Fig 7(a): Fio write IOPS"
      [ "R/W ratio"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  let clflush =
    Tabular.create ~title:"Fig 7(b): clflush per write operation"
      [ "R/W ratio"; "Classic"; "Tinca"; "reduction" ]
  in
  let dwrites =
    Tabular.create ~title:"Fig 7(c): disk blocks written per write operation"
      [ "R/W ratio"; "Classic"; "Tinca"; "reduction" ]
  in
  List.iter
    (fun (label, read_pct) ->
      let tinca, classic = run_pair read_pct in
      let t_cl, t_dw, t_iops = Runner.per_write tinca in
      let c_cl, c_dw, c_iops = Runner.per_write classic in
      Tabular.add_row iops
        [ label; Tabular.cell_f ~decimals:0 c_iops; Tabular.cell_f ~decimals:0 t_iops;
          Runner.ratio_str t_iops c_iops ];
      Tabular.add_row clflush
        [ label; Tabular.cell_f ~decimals:1 c_cl; Tabular.cell_f ~decimals:1 t_cl;
          Printf.sprintf "-%.1f%%" (100.0 *. (1.0 -. (t_cl /. c_cl))) ];
      Tabular.add_row dwrites
        [ label; Tabular.cell_f ~decimals:2 c_dw; Tabular.cell_f ~decimals:2 t_dw;
          Printf.sprintf "-%.1f%%" (100.0 *. (1.0 -. (t_dw /. c_dw))) ])
    [ ("3/7", 0.3); ("5/5", 0.5); ("7/3", 0.7) ];
  [ iops; clflush; dwrites ]
