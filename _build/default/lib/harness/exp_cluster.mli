(** Figures 10 and 11: the 4-node cluster experiments (paper §5.3) —
    TeraGen over the HDFS-like DFS across replica counts, and Filebench
    over the GlusterFS-like DFS with 2 replicas. *)

val fig10 : unit -> Tinca_util.Tabular.t list
val fig11 : unit -> Tinca_util.Tabular.t list
