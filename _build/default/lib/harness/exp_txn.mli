(** Fig 13 and §5.4.3: blocks per committed transaction (fileserver vs
    webproxy) and the worst-case COW spatial overhead. *)

val fig13 : unit -> Tinca_util.Tabular.t list
