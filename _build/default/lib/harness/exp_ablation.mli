(** Extension experiments beyond the paper's figures, probing the design
    choices DESIGN.md calls out. *)

(** §5.4.4 quantified: Tinca vs UBJ vs Classic on Fio and Varmail. *)
val ubj_compare : unit -> Tinca_util.Tabular.t list

(** Write-back (role switch) vs write-through (forced per-commit disk
    write). *)
val writeback_ablation : unit -> Tinca_util.Tabular.t list

(** Transaction coalescing: fsync-interval sweep on both stacks. *)
val batching_ablation : unit -> Tinca_util.Tabular.t list

(** NVM lines persisted per logical MB — the §1 endurance argument. *)
val wear : unit -> Tinca_util.Tabular.t list

(** LIFO vs FIFO NVM block allocation (wear leveling). *)
val wear_leveling : unit -> Tinca_util.Tabular.t list

(** clflush vs clflushopt vs clwb (paper §2.1/§5.1). *)
val flush_instr : unit -> Tinca_util.Tabular.t list

(** §2.3's consistency-level spectrum: data=journal vs data=ordered vs
    no journal, on both stacks. *)
val consistency_levels : unit -> Tinca_util.Tabular.t list

(** Fig 1(c)'s DRAM buffer cache above the NVM cache: capacity sweep on a
    read-heavy workload. *)
val page_cache : unit -> Tinca_util.Tabular.t list
