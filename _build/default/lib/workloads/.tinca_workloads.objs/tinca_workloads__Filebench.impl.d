lib/workloads/filebench.ml: Array Ops Printf Tinca_util
