lib/workloads/ops.ml: Bytes Char Lazy Tinca_fs
