lib/workloads/tpcc.ml: List Ops Tinca_util
