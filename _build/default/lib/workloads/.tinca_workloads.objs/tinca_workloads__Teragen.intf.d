lib/workloads/teragen.mli: Ops
