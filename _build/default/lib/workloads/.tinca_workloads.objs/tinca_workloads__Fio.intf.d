lib/workloads/fio.mli: Ops
