lib/workloads/tpcc.mli: Ops
