lib/workloads/trace.ml: Fun List Ops Printf String Tinca_util
