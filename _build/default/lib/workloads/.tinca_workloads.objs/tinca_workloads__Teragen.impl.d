lib/workloads/teragen.ml: Ops Printf
