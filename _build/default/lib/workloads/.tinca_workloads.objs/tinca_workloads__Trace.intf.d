lib/workloads/trace.mli: Ops
