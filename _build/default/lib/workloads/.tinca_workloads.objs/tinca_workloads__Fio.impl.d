lib/workloads/fio.ml: Ops Tinca_util
