lib/workloads/catalogue.ml: Tabular Tinca_util
