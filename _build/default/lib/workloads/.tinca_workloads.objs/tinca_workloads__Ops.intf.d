lib/workloads/ops.mli: Tinca_fs
