lib/workloads/catalogue.mli: Tinca_util
