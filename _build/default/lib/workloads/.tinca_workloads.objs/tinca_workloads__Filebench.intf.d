lib/workloads/filebench.mli: Ops
