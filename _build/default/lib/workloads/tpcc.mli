(** TPC-C-like OLTP generator (paper §5.2.2: HammerDB driving MySQL,
    350 warehouses ≈ 32 GB, 5–60 users, throughput in TPM).

    Reproduces the traffic shape, not SQL: the five TPC-C transaction
    profiles (new-order 45 %, payment 43 %, order-status 4 %, delivery
    4 %, stock-level 4 %) issue reads and writes over per-table files
    with home-warehouse locality (1 % remote stock, 15 % remote
    customers), zipf-skewed item access, and an fsync at every commit
    (innodb_flush_log_at_trx_commit = 1).  More users touch more
    warehouses concurrently, growing the working set — which is what
    degrades throughput in the paper's Figure 8. *)

type config = {
  warehouses : int;
  users : int;
  txns : int;          (** transactions to run *)
  txn_cpu_ns : float;  (** SQL-processing CPU per transaction *)
  seed : int;
}

val default : config

(** Per-table file names and sizes for a configuration. *)
val table_sizes : config -> (string * int) list

(** Create and fill the tables (unmeasured). *)
val prealloc : config -> Ops.t -> unit

(** Run the measured phase; one fsync per transaction (the commit). *)
val run : config -> Ops.t -> Ops.stats
