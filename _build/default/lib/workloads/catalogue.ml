(** Paper Table 2: the benchmark catalogue, with the paper's parameters
    and this reproduction's scaled defaults side by side. *)

let table2 () =
  let open Tinca_util in
  let t =
    Tabular.create ~title:"Table 2: Benchmarks Used to Evaluate Tinca and Classic"
      [ "Scope"; "Benchmark"; "R/W Ratio"; "Request"; "Paper Dataset"; "Scaled Dataset"; "Description" ]
  in
  Tabular.add_row t
    [ "Local"; "Fio"; "3/7, 5/5, 7/3"; "4KB"; "20GB"; "64MB";
      "Varied ratios of mixed random write and read" ];
  Tabular.add_row t
    [ "Local"; "TPC-C"; "typical TPC-C"; "typical"; "32GB (350 wh)"; "~128MB (32 wh)";
      "OLTP workload issued by HammerDB-like driver" ];
  Tabular.add_row t
    [ "Cluster"; "TeraGen"; "all writes"; "100B rows"; "100GB"; "128MB";
      "Generates input data for TeraSort over HDFS-like DFS" ];
  Tabular.add_row t
    [ "Cluster"; "Fileserver"; "1/2"; "16KB"; "51.2GB"; "~64MB";
      "File server operating on a large number of files" ];
  Tabular.add_row t
    [ "Cluster"; "Webproxy"; "5/1"; "16KB"; "32GB"; "~50MB";
      "Web proxy server in the Internet" ];
  Tabular.add_row t
    [ "Cluster"; "Varmail"; "1/1"; "16KB"; "32GB"; "~25MB";
      "Email server operating on a large number of emails" ];
  t
