(** The file-operation interface workloads are written against.

    Local experiments bind it to a {!Tinca_fs.Fs} instance; cluster
    experiments bind it to a replicating client, so the same generators
    drive both (paper §5.2 vs §5.3).  Write content is synthesized
    deterministically — the benchmarks only care about traffic shape. *)

type t = {
  create : string -> unit;
  delete : string -> unit;
  exists : string -> bool;
  size : string -> int;
  pwrite : string -> off:int -> len:int -> unit;
  pread : string -> off:int -> len:int -> unit;
  fsync : unit -> unit;
  compute : float -> unit;
      (** charge [ns] of application CPU time to the local clock (SQL
          processing, request handling); drives throughput realism *)
}

(* One shared pattern buffer; windows of it stand in for file payloads. *)
let pattern_pool = lazy (Bytes.init (1 lsl 20) (fun i -> Char.chr (((i * 131) + (i lsr 8)) land 0xff)))

let payload len =
  let pool = Lazy.force pattern_pool in
  if len <= Bytes.length pool then Bytes.sub pool 0 len
  else Bytes.init len (fun i -> Char.chr ((i * 131) land 0xff))

let of_fs ?(compute = fun (_ : float) -> ()) fs =
  let module Fs = Tinca_fs.Fs in
  {
    create = (fun name -> Fs.create fs name);
    delete = (fun name -> Fs.delete fs name);
    exists = (fun name -> Fs.exists fs name);
    size = (fun name -> Fs.size fs name);
    pwrite = (fun name ~off ~len -> Fs.pwrite fs name ~off (payload len));
    pread = (fun name ~off ~len -> ignore (Fs.pread fs name ~off ~len));
    fsync = (fun () -> Fs.fsync fs);
    compute;
  }

(** Aggregate logical activity of a workload run (device-level activity
    is read from the stack's metrics instead). *)
type stats = {
  mutable ops : int;            (** benchmark-level operations *)
  mutable logical_reads : int;
  mutable logical_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let new_stats () =
  { ops = 0; logical_reads = 0; logical_writes = 0; bytes_read = 0; bytes_written = 0 }

let note_read s len =
  s.logical_reads <- s.logical_reads + 1;
  s.bytes_read <- s.bytes_read + len

let note_write s len =
  s.logical_writes <- s.logical_writes + 1;
  s.bytes_written <- s.bytes_written + len

let note_op s = s.ops <- s.ops + 1
