(** TeraGen-like data generator (paper §5.3.1): sequential all-write
    stream of 100-byte rows, batched into HDFS-style chunk files; an
    fsync closes each chunk (block finalization). *)

type config = {
  total_bytes : int;   (** data set size (paper: 100 GB, scaled) *)
  row_bytes : int;     (** default 100 *)
  chunk_bytes : int;   (** per-chunk file size (HDFS block, scaled: 1 MB) *)
  buffer_rows : int;   (** rows buffered per write call (client batching) *)
}

val default : config
val chunk_name : int -> string
val chunk_count : config -> int

(** Generate the data set through [ops] (a local FS or a replicating
    cluster client).  The whole run is the measured phase. *)
val run : config -> Ops.t -> Ops.stats
