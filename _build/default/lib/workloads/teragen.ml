(** TeraGen-like data generator (paper §5.3.1): sequential all-write
    stream of 100-byte rows, batched into HDFS-style chunk files; an
    fsync closes each chunk (block finalization). *)

type config = {
  total_bytes : int;   (** data set size (paper: 100 GB, scaled) *)
  row_bytes : int;     (** default 100 *)
  chunk_bytes : int;   (** per-chunk file size (HDFS block, scaled: 1 MB) *)
  buffer_rows : int;   (** rows buffered per write call (client batching) *)
}

let default =
  { total_bytes = 32 * 1024 * 1024; row_bytes = 100; chunk_bytes = 1 lsl 20; buffer_rows = 512 }

let chunk_name i = Printf.sprintf "teragen_part_%05d" i

let chunk_count cfg = (cfg.total_bytes + cfg.chunk_bytes - 1) / cfg.chunk_bytes

(** Generate the data set through [ops] (which may be a local FS or a
    replicating cluster client).  The whole run is the measured phase. *)
let run cfg (ops : Ops.t) =
  let stats = Ops.new_stats () in
  let nchunks = chunk_count cfg in
  for c = 0 to nchunks - 1 do
    let name = chunk_name c in
    ops.Ops.create name;
    let this_chunk = min cfg.chunk_bytes (cfg.total_bytes - (c * cfg.chunk_bytes)) in
    let batch = cfg.buffer_rows * cfg.row_bytes in
    let rec fill off =
      if off < this_chunk then begin
        let len = min batch (this_chunk - off) in
        ops.Ops.pwrite name ~off ~len;
        Ops.note_write stats len;
        Ops.note_op stats;
        fill (off + len)
      end
    in
    fill 0;
    ops.Ops.fsync ()
  done;
  stats
