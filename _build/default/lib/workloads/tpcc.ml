(** TPC-C-like OLTP generator (paper §5.2.2: HammerDB driving MySQL,
    350 warehouses ≈ 32 GB, 5–60 users, throughput in TPM).

    We reproduce the traffic shape, not SQL: the five TPC-C transaction
    profiles issue reads and writes over per-table files with the
    standard mix, a home-warehouse locality model, zipf-skewed item
    access, and an fsync at every commit
    (innodb_flush_log_at_trx_commit = 1).  More users touch more
    warehouses concurrently, growing the working set — which is what
    degrades throughput in the paper's Figure 8. *)

type config = {
  warehouses : int;
  users : int;
  txns : int;          (** transactions to run *)
  txn_cpu_ns : float;  (** SQL-processing CPU per transaction *)
  seed : int;
}

let default = { warehouses = 32; users = 10; txns = 5_000; txn_cpu_ns = 250_000.0; seed = 11 }

(* Scaled per-warehouse footprint in 4 KB blocks. *)
let stock_blocks_per_wh = 24
let customer_blocks_per_wh = 12
let district_blocks_per_wh = 2
let item_blocks = 64 (* shared read-mostly catalogue *)
let order_log_cap_blocks_per_wh = 64

let bs = 4096

type t = {
  cfg : config;
  rng : Tinca_util.Rng.t;
  item_zipf : Tinca_util.Zipf.t;
  mutable order_head : int; (* append cursor for the order log, in blocks *)
}

let table_sizes cfg =
  [
    ("tpcc_warehouse.tbl", cfg.warehouses * bs);
    ("tpcc_district.tbl", cfg.warehouses * district_blocks_per_wh * bs);
    ("tpcc_stock.tbl", cfg.warehouses * stock_blocks_per_wh * bs);
    ("tpcc_customer.tbl", cfg.warehouses * customer_blocks_per_wh * bs);
    ("tpcc_item.tbl", item_blocks * bs);
    ("tpcc_orders.tbl", cfg.warehouses * order_log_cap_blocks_per_wh * bs);
    ("tpcc_history.tbl", cfg.warehouses * order_log_cap_blocks_per_wh * bs);
  ]

(** Create and fill the tables (unmeasured). *)
let prealloc cfg (ops : Ops.t) =
  List.iter
    (fun (name, size) ->
      ops.Ops.create name;
      let chunk = 1 lsl 18 in
      let rec fill off =
        if off < size then begin
          let len = min chunk (size - off) in
          ops.Ops.pwrite name ~off ~len;
          ops.Ops.fsync ();
          fill (off + len)
        end
      in
      fill 0)
    (table_sizes cfg)

let make cfg =
  {
    cfg;
    rng = Tinca_util.Rng.create cfg.seed;
    item_zipf = Tinca_util.Zipf.create ~n:item_blocks ~theta:0.9;
    order_head = 0;
  }

(* A user's home warehouse; users beyond the warehouse count share. *)
let home_wh t user = user mod t.cfg.warehouses

let read_blk (ops : Ops.t) stats name blk =
  ops.Ops.pread name ~off:(blk * bs) ~len:bs;
  Ops.note_read stats bs

let write_blk (ops : Ops.t) stats name blk =
  ops.Ops.pwrite name ~off:(blk * bs) ~len:bs;
  Ops.note_write stats bs

let stock_blk t wh = (wh * stock_blocks_per_wh) + Tinca_util.Rng.int t.rng stock_blocks_per_wh
let customer_blk t wh = (wh * customer_blocks_per_wh) + Tinca_util.Rng.int t.rng customer_blocks_per_wh
let district_blk t wh = (wh * district_blocks_per_wh) + Tinca_util.Rng.int t.rng district_blocks_per_wh

let order_append_blk t wh =
  t.order_head <- t.order_head + 1;
  (wh * order_log_cap_blocks_per_wh) + (t.order_head mod order_log_cap_blocks_per_wh)

(* The five transaction profiles.  Block counts follow the TPC-C row
   footprints collapsed onto scaled tables. *)
let new_order t (ops : Ops.t) stats wh =
  for _ = 1 to 5 do
    read_blk ops stats "tpcc_item.tbl" (Tinca_util.Zipf.sample t.item_zipf t.rng)
  done;
  (* 1 % of stock lines hit a remote warehouse (TPC-C 2.4.1.5).  All five
     stock rows are read; under a buffer pool only a couple of the dirty
     pages reach the storage engine's flush per commit. *)
  for i = 1 to 5 do
    let w = if Tinca_util.Rng.chance t.rng 0.01 then Tinca_util.Rng.int t.rng t.cfg.warehouses else wh in
    let blk = stock_blk t w in
    read_blk ops stats "tpcc_stock.tbl" blk;
    if i <= 2 then write_blk ops stats "tpcc_stock.tbl" blk
  done;
  read_blk ops stats "tpcc_district.tbl" (district_blk t wh);
  write_blk ops stats "tpcc_district.tbl" (district_blk t wh);
  write_blk ops stats "tpcc_orders.tbl" (order_append_blk t wh)

let payment t ops stats wh =
  read_blk ops stats "tpcc_warehouse.tbl" wh;
  write_blk ops stats "tpcc_warehouse.tbl" wh;
  let d = district_blk t wh in
  read_blk ops stats "tpcc_district.tbl" d;
  write_blk ops stats "tpcc_district.tbl" d;
  (* 15 % of payments are for remote customers (TPC-C 2.5.1.2). *)
  let cw = if Tinca_util.Rng.chance t.rng 0.15 then Tinca_util.Rng.int t.rng t.cfg.warehouses else wh in
  let c = customer_blk t cw in
  read_blk ops stats "tpcc_customer.tbl" c;
  write_blk ops stats "tpcc_customer.tbl" c;
  write_blk ops stats "tpcc_history.tbl" (order_append_blk t wh)

let order_status t ops stats wh =
  read_blk ops stats "tpcc_customer.tbl" (customer_blk t wh);
  for _ = 1 to 3 do
    read_blk ops stats "tpcc_orders.tbl"
      ((wh * order_log_cap_blocks_per_wh) + Tinca_util.Rng.int t.rng order_log_cap_blocks_per_wh)
  done

let delivery t ops stats wh =
  for i = 1 to 5 do
    let o = (wh * order_log_cap_blocks_per_wh) + Tinca_util.Rng.int t.rng order_log_cap_blocks_per_wh in
    read_blk ops stats "tpcc_orders.tbl" o;
    if i <= 3 then write_blk ops stats "tpcc_orders.tbl" o
  done;
  let c = customer_blk t wh in
  read_blk ops stats "tpcc_customer.tbl" c;
  write_blk ops stats "tpcc_customer.tbl" c

let stock_level t ops stats wh =
  read_blk ops stats "tpcc_district.tbl" (district_blk t wh);
  for _ = 1 to 12 do
    read_blk ops stats "tpcc_stock.tbl" (stock_blk t wh)
  done

(** Run the measured phase; one fsync per transaction (the commit). *)
let run cfg (ops : Ops.t) =
  let t = make cfg in
  let stats = Ops.new_stats () in
  for i = 0 to cfg.txns - 1 do
    let user = i mod max 1 cfg.users in
    let wh = home_wh t user in
    let dice = Tinca_util.Rng.float t.rng in
    if dice < 0.45 then new_order t ops stats wh
    else if dice < 0.88 then payment t ops stats wh
    else if dice < 0.92 then order_status t ops stats wh
    else if dice < 0.96 then delivery t ops stats wh
    else stock_level t ops stats wh;
    ops.Ops.compute cfg.txn_cpu_ns;
    ops.Ops.fsync ();
    Ops.note_op stats
  done;
  stats
