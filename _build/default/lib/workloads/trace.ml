(** Block-trace replay.

    Lets users drive the stacks with captured or synthesized block-level
    traces instead of the built-in generators — the standard way storage
    papers compare against production workloads (the paper's §2.2
    motivation).  The text format is one operation per line:

    {v
    R <blkno>     read one block
    W <blkno>     write one block
    F             fsync (commit boundary)
    # comment
    v} *)

type op = Read of int | Write of int | Fsync

let op_to_string = function
  | Read b -> Printf.sprintf "R %d" b
  | Write b -> Printf.sprintf "W %d" b
  | Fsync -> "F"

let to_string ops = String.concat "\n" (List.map op_to_string ops) ^ "\n"

exception Parse_error of int * string

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "F" ] -> Some Fsync
    | [ "R"; n ] | [ "W"; n ] -> (
        match int_of_string_opt n with
        | Some b when b >= 0 ->
            Some (if line.[0] = 'R' then Read b else Write b)
        | Some _ | None -> raise (Parse_error (lineno, line)))
    | _ -> raise (Parse_error (lineno, line))

(** [parse text] — raises {!Parse_error} with the offending line. *)
let parse text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

(** Largest block number referenced (sizing the target file). *)
let max_blkno ops =
  List.fold_left (fun acc -> function Read b | Write b -> max acc b | Fsync -> acc) 0 ops

(** Deterministically synthesize a trace: zipf-skewed block popularity,
    [read_pct] reads, an [Fsync] every [fsync_every] writes. *)
let synthesize ~seed ~nblocks ~ops ~read_pct ~zipf_theta ~fsync_every =
  let rng = Tinca_util.Rng.create seed in
  let zipf = Tinca_util.Zipf.create ~n:nblocks ~theta:zipf_theta in
  let acc = ref [] in
  let writes = ref 0 in
  for _ = 1 to ops do
    let blk = Tinca_util.Zipf.sample zipf rng in
    if Tinca_util.Rng.float rng < read_pct then acc := Read blk :: !acc
    else begin
      acc := Write blk :: !acc;
      incr writes;
      if !writes mod fsync_every = 0 then acc := Fsync :: !acc
    end
  done;
  List.rev (Fsync :: !acc)

let file_name = "trace.dat"

(** Create and fill the target file covering the trace's block range
    (unmeasured). *)
let prealloc ~block_size ops_list (ops : Ops.t) =
  let size = (max_blkno ops_list + 1) * block_size in
  ops.Ops.create file_name;
  let chunk = 1 lsl 18 in
  let rec fill off =
    if off < size then begin
      let len = min chunk (size - off) in
      ops.Ops.pwrite file_name ~off ~len;
      ops.Ops.fsync ();
      fill (off + len)
    end
  in
  fill 0

(** Replay the trace (the measured phase). *)
let run ~block_size ops_list (ops : Ops.t) =
  let stats = Ops.new_stats () in
  List.iter
    (fun op ->
      match op with
      | Read b ->
          ops.Ops.pread file_name ~off:(b * block_size) ~len:block_size;
          Ops.note_read stats block_size;
          Ops.note_op stats
      | Write b ->
          ops.Ops.pwrite file_name ~off:(b * block_size) ~len:block_size;
          Ops.note_write stats block_size;
          Ops.note_op stats
      | Fsync -> ops.Ops.fsync ())
    ops_list;
  ops.Ops.fsync ();
  stats
