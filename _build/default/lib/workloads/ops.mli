(** The file-operation interface all workload generators are written
    against.

    Local experiments bind it to a {!Tinca_fs.Fs} instance via {!of_fs};
    cluster experiments bind it to a replicating DFS client
    ({!Tinca_cluster.Hdfs.ops}, {!Tinca_cluster.Gluster.ops}), so the
    same generators drive both (paper §5.2 vs §5.3).  Write payloads are
    synthesized deterministically — the benchmarks only care about
    traffic shape. *)

type t = {
  create : string -> unit;
  delete : string -> unit;
  exists : string -> bool;
  size : string -> int;
  pwrite : string -> off:int -> len:int -> unit;
  pread : string -> off:int -> len:int -> unit;
  fsync : unit -> unit;
  compute : float -> unit;
      (** charge [ns] of application CPU time to the local clock (SQL
          processing, request handling); drives throughput realism *)
}

(** Deterministic pattern payload of [len] bytes. *)
val payload : int -> bytes

(** [of_fs ?compute fs] — bind to a local file system; [compute] should
    advance the owning stack's clock (default: no-op). *)
val of_fs : ?compute:(float -> unit) -> Tinca_fs.Fs.t -> t

(** Aggregate logical activity of a workload run (device-level activity
    is read from the stack's metrics instead). *)
type stats = {
  mutable ops : int;  (** benchmark-level operations *)
  mutable logical_reads : int;
  mutable logical_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

val new_stats : unit -> stats
val note_read : stats -> int -> unit
val note_write : stats -> int -> unit
val note_op : stats -> unit
