(** Filebench-like macro-benchmarks (paper Table 2): Fileserver (R/W 1/2,
    16 KB requests), Webproxy (R/W 5/1, zipf-popular objects) and Varmail
    (R/W 1/1, fsync-heavy mail store). *)

type personality = Fileserver | Webproxy | Varmail

val personality_name : personality -> string

type config = {
  personality : personality;
  nfiles : int;        (** preallocated population *)
  mean_file_kb : int;  (** mean file size *)
  iosize : int;        (** request size (paper: 16 KB) *)
  ops : int;           (** measured operations *)
  op_cpu_ns : float;
      (** request-handling CPU charged per benchmark op (0 locally; set
          to the RPC/server cost when the ops target is a DFS client) *)
  commit_every_ops : int;
      (** stand-in for the 5 s periodic commit: fsync every N benchmark
          ops (0 = rely on the file system's size threshold alone) *)
  seed : int;
}

(** Sensible defaults per personality (population, file sizes). *)
val default : personality -> config

type t

(** Build the file population (unmeasured); returns the runnable state. *)
val prealloc : config -> Ops.t -> t

(** Measured phase over a preallocated population. *)
val run : t -> Ops.t -> Ops.stats
