(** Fio-like micro-benchmark: mixed random 4 KB reads and writes over one
    preallocated file (paper §5.2.1, Table 2: read/write 3/7, 5/5, 7/3;
    request 4 KB; dataset 2.5x the cache). *)

type config = {
  file_size : int;     (** dataset bytes (paper: 20 GB, scaled) *)
  request_size : int;  (** default 4096 *)
  read_pct : float;    (** fraction of operations that are reads *)
  ops : int;           (** mixed operations to run *)
  fsync_every : int;   (** fsync after every n writes (1 = O_SYNC-like) *)
  seed : int;
}

let default =
  { file_size = 64 * 1024 * 1024; request_size = 4096; read_pct = 0.5; ops = 20_000;
    fsync_every = 1; seed = 7 }

let file_name = "fio.dat"

(** Lay out the dataset file (not part of the measured phase). *)
let prealloc cfg (ops : Ops.t) =
  ops.Ops.create file_name;
  let chunk = 1 lsl 18 in
  let rec fill off =
    if off < cfg.file_size then begin
      let len = min chunk (cfg.file_size - off) in
      ops.Ops.pwrite file_name ~off ~len;
      ops.Ops.fsync ();
      fill (off + len)
    end
  in
  fill 0

(** The measured phase.  Returns (stats, write_ops). *)
let run cfg (ops : Ops.t) =
  let rng = Tinca_util.Rng.create cfg.seed in
  let stats = Ops.new_stats () in
  let nreq = cfg.file_size / cfg.request_size in
  let writes_since_sync = ref 0 in
  for _ = 1 to cfg.ops do
    let off = Tinca_util.Rng.int rng nreq * cfg.request_size in
    Ops.note_op stats;
    if Tinca_util.Rng.float rng < cfg.read_pct then begin
      ops.Ops.pread file_name ~off ~len:cfg.request_size;
      Ops.note_read stats cfg.request_size
    end
    else begin
      ops.Ops.pwrite file_name ~off ~len:cfg.request_size;
      Ops.note_write stats cfg.request_size;
      incr writes_since_sync;
      if !writes_since_sync >= cfg.fsync_every then begin
        ops.Ops.fsync ();
        writes_since_sync := 0
      end
    end
  done;
  ops.Ops.fsync ();
  stats
