(** Paper Table 2: the benchmark catalogue, with the paper's parameters
    and this reproduction's scaled defaults side by side. *)

val table2 : unit -> Tinca_util.Tabular.t
