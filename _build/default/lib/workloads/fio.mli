(** Fio-like micro-benchmark: mixed random 4 KB reads and writes over one
    preallocated file (paper §5.2.1, Table 2: read/write 3/7, 5/5, 7/3;
    request 4 KB; dataset 2.5x the cache). *)

type config = {
  file_size : int;     (** dataset bytes (paper: 20 GB, scaled) *)
  request_size : int;  (** default 4096 *)
  read_pct : float;    (** fraction of operations that are reads *)
  ops : int;           (** mixed operations to run *)
  fsync_every : int;   (** fsync after every n writes (1 = O_SYNC-like;
                           larger values stand in for Ext4's periodic
                           commit batching) *)
  seed : int;
}

val default : config

(** Name of the dataset file. *)
val file_name : string

(** Lay out the dataset file (not part of the measured phase). *)
val prealloc : config -> Ops.t -> unit

(** The measured phase. *)
val run : config -> Ops.t -> Ops.stats
