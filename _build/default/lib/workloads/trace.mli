(** Block-trace replay.

    Drive the stacks with captured or synthesized block-level traces —
    the standard way storage papers compare against production workloads
    (the paper's §2.2 motivation).  Text format, one operation per line:

    {v
    R <blkno>     read one block
    W <blkno>     write one block
    F             fsync (commit boundary)
    # comment
    v} *)

type op = Read of int | Write of int | Fsync

val op_to_string : op -> string
val to_string : op list -> string

(** Raised by {!parse} with (line number, offending line). *)
exception Parse_error of int * string

val parse : string -> op list

(** Largest block number referenced (sizes the target file). *)
val max_blkno : op list -> int

(** Deterministically synthesize a trace: zipf-skewed block popularity,
    [read_pct] reads, an [Fsync] every [fsync_every] writes. *)
val synthesize :
  seed:int ->
  nblocks:int ->
  ops:int ->
  read_pct:float ->
  zipf_theta:float ->
  fsync_every:int ->
  op list

(** The target file the replayer operates on. *)
val file_name : string

(** Create and fill the target file covering the trace's block range
    (unmeasured). *)
val prealloc : block_size:int -> op list -> Ops.t -> unit

(** Replay the trace (the measured phase). *)
val run : block_size:int -> op list -> Ops.t -> Ops.stats
