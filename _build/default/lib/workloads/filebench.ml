(** Filebench-like macro-benchmarks (paper Table 2): Fileserver (R/W 1/2,
    16 KB requests), Webproxy (R/W 5/1, zipf-popular objects) and Varmail
    (R/W 1/1, fsync-heavy mail store).

    Each personality preallocates a file population, then runs its
    characteristic op mix; throughput is benchmark operations per
    simulated second. *)

type personality = Fileserver | Webproxy | Varmail

let personality_name = function
  | Fileserver -> "fileserver"
  | Webproxy -> "webproxy"
  | Varmail -> "varmail"

type config = {
  personality : personality;
  nfiles : int;        (** preallocated population *)
  mean_file_kb : int;  (** mean file size *)
  iosize : int;        (** request size (paper: 16 KB) *)
  ops : int;           (** measured operations *)
  op_cpu_ns : float;   (** request-handling CPU charged per benchmark op
                           (0 locally; set to the RPC/server cost when the
                           ops target is a DFS client) *)
  commit_every_ops : int;
      (** stand-in for the 5 s periodic commit: fsync every N benchmark
          ops (0 = rely on the file system's size threshold alone) *)
  seed : int;
}

let default personality =
  let nfiles, mean_file_kb =
    match personality with
    | Fileserver -> (500, 64)
    | Webproxy -> (800, 32)
    | Varmail -> (800, 16)
  in
  { personality; nfiles; mean_file_kb; iosize = 16 * 1024; ops = 10_000; op_cpu_ns = 0.0;
    commit_every_ops = 0; seed = 23 }

type t = {
  cfg : config;
  rng : Tinca_util.Rng.t;
  zipf : Tinca_util.Zipf.t;
  mutable live : string array; (* current population *)
  mutable next_id : int;
}

let fname id = Printf.sprintf "fb_%s_%06d" "f" id

(* File sizes follow a two-point mix around the mean (filebench uses a
   gamma distribution; a small/large mix captures the same skew). *)
let sample_size t =
  let mean = t.cfg.mean_file_kb * 1024 in
  if Tinca_util.Rng.chance t.rng 0.8 then max 1024 (mean / 2) else mean * 3

let make cfg =
  {
    cfg;
    rng = Tinca_util.Rng.create cfg.seed;
    zipf = Tinca_util.Zipf.create ~n:cfg.nfiles ~theta:0.9;
    live = [||];
    next_id = 0;
  }

(** Build the file population (unmeasured). *)
let prealloc cfg (ops : Ops.t) =
  let t = make cfg in
  let names =
    Array.init cfg.nfiles (fun i ->
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        let name = fname id in
        ops.Ops.create name;
        let size = sample_size t in
        ops.Ops.pwrite name ~off:0 ~len:size;
        (* Bound the setup transactions regardless of the file system's
           auto-commit threshold. *)
        if i mod 16 = 15 then ops.Ops.fsync ();
        name)
  in
  ops.Ops.fsync ();
  t.live <- names;
  t

let pick_file t = t.live.(Tinca_util.Rng.int t.rng (Array.length t.live))
let pick_popular t = t.live.(Tinca_util.Zipf.sample t.zipf t.rng)

let whole_file_read (ops : Ops.t) stats t name =
  let size = max 1 (ops.Ops.size name) in
  let io = t.cfg.iosize in
  let rec go off =
    if off < size then begin
      ops.Ops.pread name ~off ~len:(min io (size - off));
      Ops.note_read stats (min io (size - off));
      go (off + io)
    end
  in
  go 0

let replace_file (ops : Ops.t) stats t slot =
  (* Delete a file and write a fresh one in its place. *)
  let old_name = t.live.(slot) in
  if ops.Ops.exists old_name then ops.Ops.delete old_name;
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let name = fname id in
  ops.Ops.create name;
  let size = sample_size t in
  let io = t.cfg.iosize in
  let rec go off =
    if off < size then begin
      ops.Ops.pwrite name ~off ~len:(min io (size - off));
      Ops.note_write stats (min io (size - off));
      go (off + io)
    end
  in
  go 0;
  t.live.(slot) <- name

let append_chunk (ops : Ops.t) stats t name =
  let size = ops.Ops.size name in
  ops.Ops.pwrite name ~off:size ~len:t.cfg.iosize;
  Ops.note_write stats t.cfg.iosize

(* One benchmark op per personality. *)
let step t (ops : Ops.t) stats =
  let dice = Tinca_util.Rng.float t.rng in
  (match t.cfg.personality with
  | Fileserver ->
      (* writes dominate 2:1 over reads: create/whole-write, append,
         whole-read, delete+recreate, stat *)
      if dice < 0.30 then replace_file ops stats t (Tinca_util.Rng.int t.rng (Array.length t.live))
      else if dice < 0.60 then append_chunk ops stats t (pick_file t)
      else if dice < 0.90 then whole_file_read ops stats t (pick_file t)
      else ignore (ops.Ops.size (pick_file t))
  | Webproxy ->
      (* 5 reads : 1 write, popularity-skewed *)
      if dice < 0.833 then whole_file_read ops stats t (pick_popular t)
      else replace_file ops stats t (Tinca_util.Zipf.sample t.zipf t.rng)
  | Varmail ->
      (* mail delivery (append+fsync), mail read, delete — R/W 1/1 *)
      if dice < 0.45 then begin
        append_chunk ops stats t (pick_file t);
        ops.Ops.fsync ()
      end
      else if dice < 0.90 then whole_file_read ops stats t (pick_file t)
      else begin
        replace_file ops stats t (Tinca_util.Rng.int t.rng (Array.length t.live));
        ops.Ops.fsync ()
      end);
  if t.cfg.op_cpu_ns > 0.0 then ops.Ops.compute t.cfg.op_cpu_ns;
  Ops.note_op stats

(** Measured phase over a preallocated population. *)
let run t (ops : Ops.t) =
  let stats = Ops.new_stats () in
  for i = 1 to t.cfg.ops do
    step t ops stats;
    if t.cfg.commit_every_ops > 0 && i mod t.cfg.commit_every_ops = 0 then ops.Ops.fsync ()
  done;
  ops.Ops.fsync ();
  stats
