examples/cluster_demo.ml: Array List Printf String Tinca_cluster Tinca_fs Tinca_workloads
