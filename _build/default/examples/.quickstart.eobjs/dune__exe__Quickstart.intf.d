examples/quickstart.mli:
