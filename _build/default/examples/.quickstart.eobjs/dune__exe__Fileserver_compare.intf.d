examples/fileserver_compare.mli:
