examples/cluster_demo.mli:
