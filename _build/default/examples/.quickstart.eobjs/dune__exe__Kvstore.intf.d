examples/kvstore.mli:
