examples/kvstore.ml: Bytes Clock Hashtbl Latency List Metrics Option Printf String Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim Tinca_util
