examples/protocol_walkthrough.ml: Bytes Cache Clock Entry Format Latency Layout List Metrics Printf Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim
