examples/protocol_walkthrough.mli:
