examples/fileserver_compare.ml: Clock Metrics Printf Tinca_fs Tinca_sim Tinca_stacks Tinca_workloads
