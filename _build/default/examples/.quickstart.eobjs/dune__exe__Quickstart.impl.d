examples/quickstart.ml: Bytes Char Clock Latency Metrics Printf Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim
