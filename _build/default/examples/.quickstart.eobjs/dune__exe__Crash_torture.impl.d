examples/crash_torture.ml: Array Bytes Char Printexc Printf Tinca_fs Tinca_pmem Tinca_stacks Tinca_util
