(* A guided replay of the paper's Figure 6: committing a transaction of
   three blocks, step by step, dumping the actual NVM state (ring
   buffer, Head/Tail pointers, cache entries) after each phase of the
   commit protocol.

   Run with:  dune exec examples/protocol_walkthrough.exe *)

open Tinca_sim
open Tinca_core
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let block c = Bytes.make 4096 c

let dump_state pmem layout title =
  let head = Pmem.read_u64_int pmem ~off:layout.Layout.head_off in
  let tail = Pmem.read_u64_int pmem ~off:layout.Layout.tail_off in
  Printf.printf "--- %s\n    Head=%d Tail=%d  ring[Tail..Head) = [" title head tail;
  for c = tail to head - 1 do
    if c > tail then print_string "; ";
    print_int (Pmem.read_u64_int pmem ~off:(Layout.ring_slot_off layout c))
  done;
  print_string "]\n";
  for i = 0 to layout.Layout.nblocks - 1 do
    let e = Entry.decode (Pmem.read pmem ~off:(Layout.entry_off layout i) ~len:Entry.size) in
    if e.Entry.valid then
      Printf.printf "    entry[%d] = %s  data[cur]=%C\n" i
        (Format.asprintf "%a" Entry.pp e)
        (Bytes.get (Pmem.read pmem ~off:(Layout.data_block_off layout e.Entry.cur) ~len:1) 0)
  done

let () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(256 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let config = { Cache.default_config with ring_slots = 16 } in
  let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
  let layout = Cache.layout cache in

  print_endline "Paper Figure 6: committing a transaction of Tinca\n";
  print_endline "Setup: blocks 1001 and 1003 are already cached (buffer role);";
  print_endline "the file system then commits {1001=A', 1002=B', 1003=C'}.\n";

  (* Pre-populate 1001 and 1003 so the commit exercises COW (write hits). *)
  Cache.write_direct cache 1001 (block 'a');
  Cache.write_direct cache 1003 (block 'c');
  dump_state pmem layout "before committing (Head = Tail; all entries buffer role)";

  (* The running transaction lives in DRAM (tinca_init_txn). *)
  let txn = Cache.Txn.init cache in
  Cache.Txn.add txn 1001 (block 'A');
  Cache.Txn.add txn 1002 (block 'B');
  Cache.Txn.add txn 1003 (block 'C');
  print_endline "\ntinca_init_txn: running transaction holds 1001,1002,1003 in DRAM;";
  print_endline "nothing has touched the NVM yet.\n";

  (* Use the crash countdown as a single-stepper: run the commit until
     the k-th NVM event, snapshot, undo nothing (survival 1.0 keeps all
     issued stores), and re-drive a fresh commit a little further. *)
  (* Committing one block costs 12 NVM events (data write+persist, entry
     write+persist, ring slot, Head advance); a countdown of k stops
     after k-1 events. *)
  let steps =
    [
      (13, "after committing block 1001 (COW: entry has prev AND cur; ring records 1001; Head moved)");
      (25, "after committing block 1002 (write miss: prev = FRESH)");
      (37, "after committing all three blocks (all entries log role; Head = Tail + 3)");
      (43, "after the role switches (entries back to buffer role; Tail not yet moved)");
    ]
  in
  List.iter
    (fun (k, title) ->
      (* Replay on a fresh environment each time so steps are independent. *)
      let clock = Clock.create () in
      let metrics = Metrics.create () in
      let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(256 * 1024) () in
      let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
      let cache = Cache.format ~config ~pmem ~disk ~clock ~metrics in
      let layout = Cache.layout cache in
      Cache.write_direct cache 1001 (block 'a');
      Cache.write_direct cache 1003 (block 'c');
      let txn = Cache.Txn.init cache in
      Cache.Txn.add txn 1001 (block 'A');
      Cache.Txn.add txn 1002 (block 'B');
      Cache.Txn.add txn 1003 (block 'C');
      Pmem.set_crash_countdown pmem (Some k);
      (try Cache.Txn.commit txn with Pmem.Crash_point -> ());
      Pmem.set_crash_countdown pmem None;
      print_newline ();
      dump_state pmem layout (Printf.sprintf "step (%d NVM events in): %s" k title))
    steps;

  (* And the complete commit on the original cache. *)
  Cache.Txn.commit txn;
  print_newline ();
  dump_state pmem layout
    "commit complete (Tail = Head again; prev versions reclaimed; entries buffer role)";
  print_endline "\nThe second write of classical journaling never happened: each block";
  print_endline "was written once and switched roles in place."
