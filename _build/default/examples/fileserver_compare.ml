(* Side-by-side comparison on one machine: the same Filebench-style
   fileserver workload over the three local stacks the paper discusses —
   Tinca, Classic (Ext4+JBD2 over Flashcache) and UBJ — with the
   evaluation metrics of §5.1 (throughput, clflush per op, disk writes
   per op, write hit rate).

   Run with:  dune exec examples/fileserver_compare.exe *)

open Tinca_sim
module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs
module Filebench = Tinca_workloads.Filebench
module Ops = Tinca_workloads.Ops

let fs_config = { Fs.default_config with ninodes = 2048; journal_len = 4096 }

let run label spec =
  let env = Stacks.make_env ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack = spec env in
  let fs = Fs.format ~config:fs_config stack.Stacks.backend in
  let ops = Ops.of_fs ~compute:(Clock.advance env.Stacks.clock) fs in
  let cfg =
    { (Filebench.default Filebench.Fileserver) with nfiles = 300; mean_file_kb = 32; ops = 4_000 }
  in
  let t = Filebench.prealloc cfg ops in
  Fs.fsync fs;
  let t0 = Clock.now_ns env.Stacks.clock in
  let snap = Metrics.snapshot env.Stacks.metrics in
  let stats = Filebench.run t ops in
  let seconds = (Clock.now_ns env.Stacks.clock -. t0) /. 1e9 in
  let per_op name = float_of_int (Metrics.since env.Stacks.metrics snap name) /. float_of_int stats.Ops.ops in
  Printf.printf "  %-8s %9.0f ops/s %10.1f clflush/op %8.2f disk-writes/op %8.0f%% write-hit\n"
    label
    (float_of_int stats.Ops.ops /. seconds)
    (per_op "pmem.clflush") (per_op "disk.writes")
    (100.0 *. stack.Stacks.cache_write_hit_rate ())

let () =
  Printf.printf "Fileserver workload (16 KB ops, R/W 1/2) on three local stacks:\n\n";
  run "Tinca" (fun env -> Stacks.tinca env);
  run "Classic" (fun env -> Stacks.classic ~journal_len:fs_config.Fs.journal_len env);
  run "UBJ" (fun env -> Stacks.ubj env);
  print_newline ();
  print_endline "Tinca commits once per transaction (no double write, fine-grained";
  print_endline "metadata); Classic journals + checkpoints through block-format";
  print_endline "metadata; UBJ commits in place but pays memcpy on frozen blocks";
  print_endline "and transaction-sized checkpoints."
