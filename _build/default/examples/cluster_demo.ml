(* Distributed-storage demo (paper §5.3, Fig 9): four data nodes, each
   running a full local stack (file system over Tinca over NVM + SSD),
   behind two distributed file system models:

   - an HDFS-like pipeline writer generating a TeraGen dataset with
     1..3 replicas;
   - a GlusterFS-like replicate/distribute client serving a mail-server
     (varmail) workload.

   Prints the replica placement, per-node load balance, aggregate
   write-amplification counters and the simulated execution times.

   Run with:  dune exec examples/cluster_demo.exe *)

module Node = Tinca_cluster.Node
module Hdfs = Tinca_cluster.Hdfs
module Gluster = Tinca_cluster.Gluster
module Teragen = Tinca_workloads.Teragen
module Filebench = Tinca_workloads.Filebench
module Fs = Tinca_fs.Fs

let node_config =
  { Node.default_config with nvm_bytes = 8 * 1024 * 1024; disk_blocks = 32768 }

let mk_nodes kind = Array.init 4 (fun id -> Node.make ~id ~config:node_config kind)

let () =
  print_endline "== HDFS-like TeraGen, 16 MB dataset, pipeline replication ==";
  List.iter
    (fun replicas ->
      let nodes = mk_nodes Node.Tinca_node in
      let hdfs = Hdfs.create ~replicas nodes in
      let cfg = { Teragen.default with total_bytes = 16 * 1024 * 1024; chunk_bytes = 1 lsl 20 } in
      ignore (Teragen.run cfg (Hdfs.ops hdfs));
      let per_node = Array.map (fun n -> Fs.file_count n.Node.fs) nodes in
      Printf.printf
        "  replicas=%d: %2d chunks, %3.0f MB replicated, exec %6.1f ms, chunks/node = [%s]\n"
        replicas (Hdfs.chunks_written hdfs)
        (float_of_int (Hdfs.bytes_replicated hdfs) /. 1048576.0)
        (Hdfs.execution_ns hdfs /. 1e6)
        (String.concat "; " (Array.to_list (Array.map string_of_int per_node))))
    [ 1; 2; 3 ];

  print_endline "\n== GlusterFS-like varmail, 2 replicas, Tinca vs Classic nodes ==";
  List.iter
    (fun kind ->
      let nodes = mk_nodes kind in
      let g = Gluster.create ~replicas:2 nodes in
      let ops = Gluster.ops g in
      let cfg =
        { (Filebench.default Filebench.Varmail) with nfiles = 200; mean_file_kb = 16; ops = 1_500 }
      in
      let t = Filebench.prealloc cfg ops in
      let t0 = Gluster.client_ns g in
      let stats = Filebench.run t ops in
      let seconds = (Gluster.client_ns g -. t0) /. 1e9 in
      let clflush = Node.total_metric nodes "pmem.clflush" in
      let disk_writes = Node.total_metric nodes "disk.writes" in
      Array.iter (fun n -> Fs.fsck n.Node.fs) nodes;
      Printf.printf
        "  %-8s nodes: %5.0f ops/s, %7d clflush total, %6d disk writes, files/node = [%s]\n"
        (Node.kind_label kind)
        (float_of_int stats.Tinca_workloads.Ops.ops /. seconds)
        clflush disk_writes
        (String.concat "; "
           (Array.to_list (Array.map (fun n -> string_of_int (Fs.file_count n.Node.fs)) nodes))))
    [ Node.Tinca_node; Node.Classic_node ];
  print_endline "\n(all four node file systems pass fsck after each run)"
