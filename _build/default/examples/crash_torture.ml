(* Crash-torture demonstration (paper §5.1 "Recoverability").

   Runs a file-system workload over FS-on-Tinca and injects power
   failures at random points — including in the middle of commits —
   under several survival policies (0.0 ~ power cable pulled with
   everything volatile lost, 1.0 ~ process kill where stores drain).
   After every crash it recovers the cache, re-mounts the file system,
   runs fsck plus the cache's structural audit, and verifies every
   acknowledged round of data.

   Run with:  dune exec examples/crash_torture.exe *)

module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs
module Pmem = Tinca_pmem.Pmem

let fs_config = { Fs.default_config with ninodes = 512; journal_len = 256 }
let trials = 25

let () =
  Printf.printf "%-8s %-10s %-10s %-9s %s\n" "trial" "crash@evt" "survival" "rounds-ok" "verdict";
  let rng = Tinca_util.Rng.create 2017 in
  let failures = ref 0 in
  for trial = 1 to trials do
    let env = Stacks.make_env ~seed:trial ~nvm_bytes:(4 * 1024 * 1024) ~disk_blocks:16384 () in
    let stack = Stacks.tinca env in
    let fs = Fs.format ~config:fs_config stack.Stacks.backend in
    let crash_at = 100 + Tinca_util.Rng.int rng 30_000 in
    let survival = [| 0.0; 0.25; 0.5; 0.75; 1.0 |].(Tinca_util.Rng.int rng 5) in
    let synced = ref 0 in
    Pmem.set_crash_countdown env.Stacks.pmem (Some crash_at);
    (try
       for round = 0 to 40 do
         let name = Printf.sprintf "f%02d" round in
         Fs.create fs name;
         Fs.pwrite fs name ~off:0
           (Bytes.make (4096 * (1 + (round mod 4))) (Char.chr (97 + (round mod 26))));
         Fs.fsync fs;
         synced := round + 1
       done;
       Pmem.set_crash_countdown env.Stacks.pmem None
     with Pmem.Crash_point -> ());
    Pmem.crash ~seed:(trial * 31) ~survival env.Stacks.pmem;
    let verdict =
      try
        let stack2 = Stacks.tinca_recover env in
        let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
        Fs.fsck fs2;
        for round = 0 to !synced - 1 do
          let name = Printf.sprintf "f%02d" round in
          if not (Fs.exists fs2 name) then failwith (name ^ " lost");
          let expect = Char.chr (97 + (round mod 26)) in
          Bytes.iter
            (fun c -> if c <> expect then failwith (name ^ " corrupt"))
            (Fs.pread fs2 name ~off:0 ~len:(Fs.size fs2 name))
        done;
        "consistent"
      with e ->
        incr failures;
        "FAILED: " ^ Printexc.to_string e
    in
    Printf.printf "%-8d %-10d %-10.2f %-9d %s\n" trial crash_at survival !synced verdict
  done;
  Printf.printf "\n%d/%d trials recovered with full consistency.\n" (trials - !failures) trials;
  if !failures > 0 then exit 1
