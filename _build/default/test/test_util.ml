(* Unit + property tests for tinca_util. *)
open Tinca_util

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next64 a) (Rng.next64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.next64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let test_rng_split_differs () =
  let a = Rng.create 6 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Int64.equal (Rng.next64 a) (Rng.next64 b))

let test_rng_shuffle_permutation () =
  let r = Rng.create 8 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let r = Rng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Zipf.sample z r in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (abs (c - 5000) < 700))
    counts

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let r = Rng.create 10 in
  let hot = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Zipf.sample z r < 10 then incr hot
  done;
  (* With theta=0.99 the top-1% of ranks absorbs a large share. *)
  Alcotest.(check bool) "head is hot" true (!hot > n / 4)

let test_codec_roundtrips () =
  let b = Bytes.make 32 '\000' in
  Codec.set_u8 b 0 0xAB;
  Alcotest.(check int) "u8" 0xAB (Codec.get_u8 b 0);
  Codec.set_u16 b 2 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Codec.get_u16 b 2);
  Codec.set_u32 b 4 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.get_u32 b 4);
  Codec.set_u48 b 8 0xABCDEF012345;
  Alcotest.(check int) "u48" 0xABCDEF012345 (Codec.get_u48 b 8);
  Codec.set_u56 b 16 0xA1B2C3D4E5F607;
  Alcotest.(check int) "u56" 0xA1B2C3D4E5F607 (Codec.get_u56 b 16);
  Codec.set_u64 b 24 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Codec.get_u64 b 24)

let test_codec_u64_int () =
  let b = Bytes.make 8 '\000' in
  Codec.set_u64_int b 0 max_int;
  Alcotest.(check int) "max_int" max_int (Codec.get_u64_int b 0);
  Codec.set_u64 b 0 (-1L);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Codec.get_u64_int: out of int range")
    (fun () -> ignore (Codec.get_u64_int b 0))

let test_crc32_known () =
  (* CRC-32 of "123456789" is 0xCBF43926 (IEEE). *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int32) "crc" 0xCBF43926l (Codec.crc32 b ~pos:0 ~len:9)

let test_crc32_detects_change () =
  let b = Bytes.of_string "hello world, this is a block" in
  let c1 = Codec.crc32 b ~pos:0 ~len:(Bytes.length b) in
  Bytes.set b 5 'X';
  let c2 = Codec.crc32 b ~pos:0 ~len:(Bytes.length b) in
  Alcotest.(check bool) "crc changed" false (Int32.equal c1 c2)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Histogram.max_value h)

let test_histogram_percentile_interp () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "p25" 2.5 (Histogram.percentile h 25.0)

let test_histogram_stddev () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-6)) "stddev" 2.0 (Histogram.stddev h)

let test_tabular_render () =
  let t = Tabular.create ~title:"T" [ "a"; "bb" ] in
  Tabular.add_row t [ "1"; "2" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.check_raises "arity enforced" (Invalid_argument "Tabular.add_row: arity mismatch")
    (fun () -> Tabular.add_row t [ "only-one" ])

(* Property tests *)

let prop_codec_u56_roundtrip =
  QCheck.Test.make ~name:"codec u56 roundtrip" ~count:500
    QCheck.(int_bound ((1 lsl 56) - 1))
    (fun v ->
      let b = Bytes.make 7 '\000' in
      Tinca_util.Codec.set_u56 b 0 v;
      Tinca_util.Codec.get_u56 b 0 = v)

let prop_codec_u32_roundtrip =
  QCheck.Test.make ~name:"codec u32 roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFFF)
    (fun v ->
      let b = Bytes.make 4 '\000' in
      Tinca_util.Codec.set_u32 b 0 v;
      Tinca_util.Codec.get_u32 b 0 = v)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let p25 = Histogram.percentile h 25.0
      and p50 = Histogram.percentile h 50.0
      and p75 = Histogram.percentile h 75.0 in
      p25 <= p50 && p50 <= p75)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf samples in range" ~count:200
    QCheck.(pair (int_range 1 500) (float_bound_inclusive 1.5))
    (fun (n, theta) ->
      let z = Zipf.create ~n ~theta in
      let r = Rng.create (n + int_of_float (theta *. 100.0)) in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Zipf.sample z r in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "split differs" `Quick test_rng_split_differs;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
      ] );
    ( "util.zipf",
      [
        Alcotest.test_case "uniform when theta=0" `Quick test_zipf_uniform;
        Alcotest.test_case "skewed when theta=0.99" `Quick test_zipf_skew;
        q prop_zipf_in_range;
      ] );
    ( "util.codec",
      [
        Alcotest.test_case "roundtrips" `Quick test_codec_roundtrips;
        Alcotest.test_case "u64 int guard" `Quick test_codec_u64_int;
        Alcotest.test_case "crc32 known value" `Quick test_crc32_known;
        Alcotest.test_case "crc32 detects change" `Quick test_crc32_detects_change;
        q prop_codec_u56_roundtrip;
        q prop_codec_u32_roundtrip;
      ] );
    ( "util.histogram",
      [
        Alcotest.test_case "basic stats" `Quick test_histogram_basic;
        Alcotest.test_case "percentile interpolation" `Quick test_histogram_percentile_interp;
        Alcotest.test_case "stddev" `Quick test_histogram_stddev;
        q prop_histogram_percentile_monotone;
      ] );
    ("util.tabular", [ Alcotest.test_case "render + arity" `Quick test_tabular_render ]);
  ]
