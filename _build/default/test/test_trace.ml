(* Tests for the block-trace workload (parse/print, synthesis, replay)
   and the new FS operations (rename, truncate) plus CSV rendering. *)
module Trace = Tinca_workloads.Trace
module Ops = Tinca_workloads.Ops
module Fs = Tinca_fs.Fs
module Stacks = Tinca_stacks.Stacks
module Tabular = Tinca_util.Tabular

(* --- trace --- *)

let test_trace_parse () =
  let text = "# a comment\nR 5\nW 7\n\nF\nW 5\n" in
  Alcotest.(check bool) "parsed" true
    (Trace.parse text = [ Trace.Read 5; Trace.Write 7; Trace.Fsync; Trace.Write 5 ])

let test_trace_parse_errors () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (try
           ignore (Trace.parse bad);
           false
         with Trace.Parse_error _ -> true))
    [ "X 5\n"; "R\n"; "W abc\n"; "R -3\n"; "R 1 2\n" ]

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace print/parse roundtrip" ~count:200
    QCheck.(list (pair (int_bound 2) (int_bound 1000)))
    (fun spec ->
      let ops =
        List.map
          (fun (k, b) ->
            match k with 0 -> Trace.Read b | 1 -> Trace.Write b | _ -> Trace.Fsync)
          spec
      in
      Trace.parse (Trace.to_string ops) = ops)

let test_trace_synthesize_deterministic () =
  let mk () =
    Trace.synthesize ~seed:4 ~nblocks:100 ~ops:500 ~read_pct:0.4 ~zipf_theta:0.9 ~fsync_every:8
  in
  Alcotest.(check bool) "deterministic" true (mk () = mk ());
  let ops = mk () in
  Alcotest.(check bool) "in range" true (Trace.max_blkno ops < 100);
  let reads = List.length (List.filter (function Trace.Read _ -> true | _ -> false) ops) in
  Alcotest.(check bool) "read mix ~40%" true (reads > 140 && reads < 260)

let test_trace_replay_over_tinca () =
  let env = Stacks.make_env ~nvm_bytes:(2 * 1024 * 1024) ~disk_blocks:8192 () in
  let stack = Stacks.tinca env in
  let fs =
    Fs.format ~config:{ Fs.default_config with ninodes = 64; journal_len = 128 } stack.Stacks.backend
  in
  let ops = Ops.of_fs fs in
  let trace =
    Trace.synthesize ~seed:9 ~nblocks:64 ~ops:400 ~read_pct:0.3 ~zipf_theta:0.8 ~fsync_every:4
  in
  Trace.prealloc ~block_size:4096 trace ops;
  let stats = Trace.run ~block_size:4096 trace ops in
  Alcotest.(check int) "all ops replayed" 400 stats.Ops.ops;
  Alcotest.(check bool) "commits happened" true
    (Tinca_sim.Metrics.get env.Stacks.metrics "tinca.commits" > 0);
  Fs.fsck fs

(* --- fs rename / truncate --- *)

let mk_fs () =
  let env = Stacks.make_env ~nvm_bytes:(4 * 1024 * 1024) ~disk_blocks:16384 () in
  let stack = Stacks.tinca env in
  (Fs.format ~config:{ Fs.default_config with ninodes = 128; journal_len = 128 } stack.Stacks.backend, env)

let test_rename () =
  let fs, _ = mk_fs () in
  Fs.create fs "old";
  Fs.pwrite fs "old" ~off:0 (Bytes.of_string "payload");
  Fs.rename fs "old" "new";
  Fs.fsync fs;
  Alcotest.(check bool) "old gone" false (Fs.exists fs "old");
  Alcotest.(check string) "content follows" "payload"
    (Bytes.to_string (Fs.pread fs "new" ~off:0 ~len:7));
  Fs.fsck fs;
  Alcotest.(check bool) "rename to existing rejected" true
    (try
       Fs.create fs "other";
       Fs.rename fs "other" "new";
       false
     with Fs.File_exists _ -> true);
  Alcotest.(check bool) "rename missing rejected" true
    (try
       Fs.rename fs "ghost" "x";
       false
     with Fs.No_such_file _ -> true)

let test_rename_survives_remount () =
  let fs, env = mk_fs () in
  Fs.create fs "a";
  Fs.pwrite fs "a" ~off:0 (Bytes.of_string "zz");
  Fs.rename fs "a" "b";
  Fs.fsync fs;
  ignore env;
  let stack2 = Stacks.tinca_recover env in
  ignore stack2;
  (* remount via a fresh mount on the same backend *)
  let fs2 =
    Fs.mount ~config:{ Fs.default_config with ninodes = 128; journal_len = 128 }
      stack2.Stacks.backend
  in
  Alcotest.(check bool) "renamed name persists" true (Fs.exists fs2 "b");
  Alcotest.(check bool) "old name gone" false (Fs.exists fs2 "a")

let test_truncate_shrink () =
  let fs, _ = mk_fs () in
  Fs.create fs "t";
  Fs.pwrite fs "t" ~off:0 (Bytes.make 200_000 'q');
  Fs.fsync fs;
  Fs.fsck fs;
  Fs.truncate fs "t" 10_000;
  Fs.fsync fs;
  Alcotest.(check int) "size shrunk" 10_000 (Fs.size fs "t");
  Alcotest.(check char) "kept data" 'q' (Bytes.get (Fs.pread fs "t" ~off:9_999 ~len:1) 0);
  (* fsck verifies the freed blocks (incl. indirect) left no bitmap leaks. *)
  Fs.fsck fs;
  (* Old content beyond the cut must read as zeros (blocks freed). *)
  Alcotest.(check char) "beyond eof zero" '\000' (Bytes.get (Fs.pread fs "t" ~off:150_000 ~len:1) 0)

let test_truncate_to_zero_and_reuse () =
  let fs, _ = mk_fs () in
  Fs.create fs "t";
  Fs.pwrite fs "t" ~off:0 (Bytes.make 300_000 'r');
  Fs.truncate fs "t" 0;
  Fs.fsync fs;
  Alcotest.(check int) "empty" 0 (Fs.size fs "t");
  Fs.fsck fs;
  (* Freed space must be reusable. *)
  Fs.create fs "u";
  Fs.pwrite fs "u" ~off:0 (Bytes.make 300_000 's');
  Fs.fsync fs;
  Fs.fsck fs

let test_truncate_extend () =
  let fs, _ = mk_fs () in
  Fs.create fs "t";
  Fs.pwrite fs "t" ~off:0 (Bytes.of_string "abc");
  Fs.truncate fs "t" 100_000;
  Fs.fsync fs;
  Alcotest.(check int) "extended" 100_000 (Fs.size fs "t");
  Alcotest.(check char) "hole zero" '\000' (Bytes.get (Fs.pread fs "t" ~off:50_000 ~len:1) 0);
  Fs.fsck fs

let test_truncate_double_indirect () =
  let fs, _ = mk_fs () in
  Fs.create fs "big";
  let off = (12 + 1024 + 50) * 4096 in
  Fs.pwrite fs "big" ~off (Bytes.of_string "tail");
  Fs.fsync fs;
  Fs.fsck fs;
  Fs.truncate fs "big" 4096;
  Fs.fsync fs;
  (* The double-indirect tree must be fully reclaimed. *)
  Fs.fsck fs;
  Alcotest.(check int) "size" 4096 (Fs.size fs "big")

(* --- csv --- *)

let test_csv_rendering () =
  let t = Tabular.create ~title:"x" [ "a"; "b" ] in
  Tabular.add_row t [ "1,5"; "say \"hi\"" ];
  Tabular.add_row t [ "plain"; "2" ];
  Alcotest.(check string) "quoted csv" "a,b\n\"1,5\",\"say \"\"hi\"\"\"\nplain,2\n"
    (Tabular.to_csv t)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "workloads.trace",
      [
        Alcotest.test_case "parse" `Quick test_trace_parse;
        Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
        q prop_trace_roundtrip;
        Alcotest.test_case "synthesize deterministic" `Quick test_trace_synthesize_deterministic;
        Alcotest.test_case "replay over tinca" `Quick test_trace_replay_over_tinca;
      ] );
    ( "fs.rename_truncate",
      [
        Alcotest.test_case "rename" `Quick test_rename;
        Alcotest.test_case "rename survives remount" `Quick test_rename_survives_remount;
        Alcotest.test_case "truncate shrink" `Quick test_truncate_shrink;
        Alcotest.test_case "truncate to zero + reuse" `Quick test_truncate_to_zero_and_reuse;
        Alcotest.test_case "truncate extend" `Quick test_truncate_extend;
        Alcotest.test_case "truncate double indirect" `Quick test_truncate_double_indirect;
      ] );
    ("util.csv", [ Alcotest.test_case "csv quoting" `Quick test_csv_rendering ]);
  ]
