test/test_validation.ml: Alcotest Array Bytes Clock Latency Metrics Printf Tinca_blockdev Tinca_cluster Tinca_core Tinca_fs Tinca_jbd2 Tinca_pmem Tinca_sim Tinca_stacks
