test/test_stress.ml: Alcotest Array Bytes Cache Char Clock Latency List Metrics Printf Tinca_blockdev Tinca_cluster Tinca_core Tinca_fs Tinca_pmem Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
