test/test_pmem.ml: Alcotest Bytes Char Clock Gen Hashtbl Int64 Latency List Metrics Printf QCheck QCheck_alcotest String Tinca_pmem Tinca_sim
