test/test_sim.ml: Alcotest Bytes Clock Latency Metrics String Tinca_pmem Tinca_sim Tinca_util
