test/test_cluster.ml: Alcotest Array Bytes List Printf Tinca_cluster Tinca_fs Tinca_workloads
