test/test_model.ml: Alcotest Bytes Cache Char Clock Gen Hashtbl Latency List Metrics Printf QCheck QCheck_alcotest Tinca_blockdev Tinca_core Tinca_fs Tinca_pmem Tinca_sim Tinca_stacks Tinca_util
