test/test_blockdev.ml: Alcotest Bytes Char Clock Hashtbl Latency List Metrics QCheck QCheck_alcotest Tinca_blockdev Tinca_pmem Tinca_sim Tinca_util
