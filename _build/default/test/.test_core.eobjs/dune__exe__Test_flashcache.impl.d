test/test_flashcache.ml: Alcotest Bytes Char Clock Gen Hashtbl Latency List Metrics Printf QCheck QCheck_alcotest Tinca_blockdev Tinca_flashcache Tinca_pmem Tinca_sim
