test/test_crash.ml: Alcotest Array Bytes Cache Char Clock Hashtbl Latency List Metrics Option Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim Tinca_util
