test/test_workloads.ml: Alcotest List String Tinca_fs Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
