test/test_trace.ml: Alcotest Bytes List QCheck QCheck_alcotest Tinca_fs Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
