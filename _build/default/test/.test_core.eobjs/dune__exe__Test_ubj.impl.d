test/test_ubj.ml: Alcotest Bytes Char Clock Latency Metrics Printf Tinca_blockdev Tinca_core Tinca_fs Tinca_pmem Tinca_sim Tinca_stacks Tinca_ubj
