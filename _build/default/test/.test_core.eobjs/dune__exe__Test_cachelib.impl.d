test/test_cachelib.ml: Alcotest Array Bytes Char Clock Hashtbl Latency List Metrics Option QCheck QCheck_alcotest Tinca_blockdev Tinca_cachelib Tinca_core Tinca_pmem Tinca_sim
