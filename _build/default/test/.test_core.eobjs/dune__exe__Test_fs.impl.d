test/test_fs.ml: Alcotest Bytes Char Gen List Metrics Printf QCheck QCheck_alcotest String Tinca_blockdev Tinca_fs Tinca_pmem Tinca_sim Tinca_stacks
