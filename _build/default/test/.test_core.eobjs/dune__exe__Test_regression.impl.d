test/test_regression.ml: Alcotest List Printf Tinca_harness Tinca_stacks Tinca_workloads
