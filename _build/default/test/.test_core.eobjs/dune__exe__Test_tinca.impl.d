test/test_tinca.ml: Alcotest Bytes Cache Char Clock Entry Gen Hashtbl Latency Layout List Metrics Printf QCheck QCheck_alcotest Ring Tinca_blockdev Tinca_core Tinca_pmem Tinca_sim Tinca_util
