test/test_jbd2.ml: Alcotest Bytes Char Clock Gen Hashtbl Latency List Metrics QCheck QCheck_alcotest Tinca_blockdev Tinca_jbd2 Tinca_sim
