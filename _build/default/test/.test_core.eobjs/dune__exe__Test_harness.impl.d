test/test_harness.ml: Alcotest List Option String Tinca_fs Tinca_harness Tinca_sim Tinca_stacks Tinca_util Tinca_workloads
