test/test_fixes.ml: Alcotest Bytes Clock Latency List Metrics Printexc Printf String Tinca_blockdev Tinca_checker Tinca_core Tinca_pmem Tinca_sim
