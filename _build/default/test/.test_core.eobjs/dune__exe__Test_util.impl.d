test/test_util.ml: Alcotest Array Bytes Codec Fun Gen Histogram Int32 Int64 List QCheck QCheck_alcotest Rng String Tabular Tinca_util Zipf
