(* Tests of the Ext4-like file system over all three stack backends, plus
   end-to-end crash-consistency tests of FS-on-Tinca. *)
open Tinca_sim
module Fs = Tinca_fs.Fs
module Stacks = Tinca_stacks.Stacks
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let nvm_bytes = 2 * 1024 * 1024
let disk_blocks = 8192

let fs_config = { Fs.default_config with ninodes = 512; journal_len = 256 }

let make_stack kind =
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  match kind with
  | `Tinca -> Stacks.tinca env
  | `Classic -> Stacks.classic ~journal_len:fs_config.Fs.journal_len env
  | `Nojournal -> Stacks.nojournal env

let mk kind =
  let stack = make_stack kind in
  let journaled = kind <> `Nojournal in
  let fs = Fs.format ~config:{ fs_config with journaled } stack.Stacks.backend in
  (fs, stack)

let pattern n c = Bytes.make n c

let each_backend f () = List.iter (fun kind -> f (mk kind)) [ `Tinca; `Classic; `Nojournal ]

let test_create_write_read (fs, _) =
  Fs.create fs "hello.txt";
  Fs.pwrite fs "hello.txt" ~off:0 (Bytes.of_string "hello, tinca!");
  Fs.fsync fs;
  Alcotest.(check string) "read back" "hello, tinca!"
    (Bytes.to_string (Fs.pread fs "hello.txt" ~off:0 ~len:13));
  Alcotest.(check int) "size" 13 (Fs.size fs "hello.txt");
  Fs.fsck fs

let test_sparse_and_eof (fs, _) =
  Fs.create fs "sparse";
  Fs.pwrite fs "sparse" ~off:100_000 (Bytes.of_string "end");
  Alcotest.(check int) "size" 100_003 (Fs.size fs "sparse");
  (* The hole reads as zeros. *)
  Alcotest.(check string) "hole" (String.make 4 '\000')
    (Bytes.to_string (Fs.pread fs "sparse" ~off:50_000 ~len:4));
  Alcotest.(check string) "tail" "end" (Bytes.to_string (Fs.pread fs "sparse" ~off:100_000 ~len:3));
  (* Reads beyond EOF are zeros. *)
  Alcotest.(check string) "beyond eof" (String.make 2 '\000')
    (Bytes.to_string (Fs.pread fs "sparse" ~off:200_000 ~len:2));
  Fs.fsck fs

let test_overwrite_partial (fs, _) =
  Fs.create fs "f";
  Fs.pwrite fs "f" ~off:0 (pattern 10000 'a');
  Fs.pwrite fs "f" ~off:5000 (pattern 100 'b');
  let out = Fs.pread fs "f" ~off:4999 ~len:102 in
  Alcotest.(check char) "before" 'a' (Bytes.get out 0);
  Alcotest.(check char) "mid" 'b' (Bytes.get out 1);
  Alcotest.(check char) "mid end" 'b' (Bytes.get out 100);
  Alcotest.(check char) "after" 'a' (Bytes.get out 101);
  Alcotest.(check int) "size unchanged" 10000 (Fs.size fs "f");
  Fs.fsck fs

let test_append (fs, _) =
  Fs.create fs "log";
  Fs.append fs "log" (Bytes.of_string "one");
  Fs.append fs "log" (Bytes.of_string "two");
  Alcotest.(check string) "appended" "onetwo" (Bytes.to_string (Fs.pread fs "log" ~off:0 ~len:6))

let test_large_file_indirect (fs, _) =
  (* 12 direct blocks = 48 KB; this file needs single-indirect blocks. *)
  Fs.create fs "big";
  Fs.pwrite fs "big" ~off:0 (pattern 300_000 'z');
  Fs.fsync fs;
  Alcotest.(check char) "direct part" 'z' (Bytes.get (Fs.pread fs "big" ~off:1000 ~len:1) 0);
  Alcotest.(check char) "indirect part" 'z' (Bytes.get (Fs.pread fs "big" ~off:250_000 ~len:1) 0);
  Fs.fsck fs

let test_double_indirect (fs, _) =
  (* Beyond 12 + 1024 blocks (= 4,243,456 bytes) needs double indirect. *)
  Fs.create fs "huge";
  let off = (12 + 1024 + 5) * 4096 in
  Fs.pwrite fs "huge" ~off (Bytes.of_string "deep");
  Fs.fsync fs;
  Alcotest.(check string) "double indirect" "deep" (Bytes.to_string (Fs.pread fs "huge" ~off ~len:4));
  Fs.fsck fs

let test_delete_frees_space (fs, _) =
  Fs.create fs "a";
  Fs.pwrite fs "a" ~off:0 (pattern 100_000 'x');
  Fs.fsync fs;
  Fs.delete fs "a";
  Fs.fsync fs;
  Alcotest.(check bool) "gone" false (Fs.exists fs "a");
  Fs.fsck fs;
  (* Space must be reusable: create enough files to reuse it. *)
  Fs.create fs "b";
  Fs.pwrite fs "b" ~off:0 (pattern 100_000 'y');
  Fs.fsync fs;
  Fs.fsck fs

let test_many_files (fs, _) =
  for i = 0 to 199 do
    let name = Printf.sprintf "file%03d" i in
    Fs.create fs name;
    Fs.pwrite fs name ~off:0 (pattern 512 (Char.chr (33 + (i mod 90))))
  done;
  Fs.fsync fs;
  Alcotest.(check int) "count" 200 (Fs.file_count fs);
  Alcotest.(check int) "listing" 200 (List.length (Fs.list_files fs));
  for i = 0 to 199 do
    let name = Printf.sprintf "file%03d" i in
    Alcotest.(check char) name
      (Char.chr (33 + (i mod 90)))
      (Bytes.get (Fs.pread fs name ~off:0 ~len:1) 0)
  done;
  Fs.fsck fs

let test_create_delete_churn (fs, _) =
  for round = 0 to 4 do
    for i = 0 to 49 do
      Fs.create fs (Printf.sprintf "r%d_%d" round i);
      Fs.pwrite fs (Printf.sprintf "r%d_%d" round i) ~off:0 (pattern 8192 'c')
    done;
    for i = 0 to 49 do
      if i mod 2 = 0 then Fs.delete fs (Printf.sprintf "r%d_%d" round i)
    done;
    Fs.fsync fs
  done;
  Fs.fsck fs;
  Alcotest.(check int) "survivors" (5 * 25) (Fs.file_count fs)

let test_errors (fs, _) =
  Fs.create fs "dup";
  Alcotest.(check bool) "create twice" true
    (try
       Fs.create fs "dup";
       false
     with Fs.File_exists _ -> true);
  Alcotest.(check bool) "missing file" true
    (try
       ignore (Fs.pread fs "ghost" ~off:0 ~len:1);
       false
     with Fs.No_such_file _ -> true);
  Alcotest.(check bool) "long name" true
    (try
       Fs.create fs (String.make 100 'n');
       false
     with Invalid_argument _ -> true)

let test_mount_rebuilds (fs_and_stack : Fs.t * Stacks.t) =
  let fs, stack = fs_and_stack in
  Fs.create fs "persisted";
  Fs.pwrite fs "persisted" ~off:0 (Bytes.of_string "still here");
  Fs.fsync fs;
  (* Re-mount on the same backend: DRAM caches must rebuild from media. *)
  let journaled = Fs.journal_len fs > 0 in
  ignore journaled;
  let fs2 = Fs.mount ~config:{ fs_config with journaled = true } stack.Stacks.backend in
  Alcotest.(check bool) "exists after mount" true (Fs.exists fs2 "persisted");
  Alcotest.(check string) "content after mount" "still here"
    (Bytes.to_string (Fs.pread fs2 "persisted" ~off:0 ~len:10));
  Fs.fsck fs2

let test_auto_commit_threshold () =
  let stack = make_stack `Tinca in
  let fs =
    Fs.format ~config:{ fs_config with max_dirty_blocks = 8 } stack.Stacks.backend
  in
  Fs.create fs "auto";
  (* 64 KB = 16 data blocks: must cross the 8-block threshold and
     auto-commit at least once. *)
  Fs.pwrite fs "auto" ~off:0 (pattern 65536 'q');
  Alcotest.(check bool) "auto-committed" true (Fs.dirty_blocks fs < 16);
  Alcotest.(check bool) "tinca commits happened" true
    (Metrics.get stack.Stacks.env.Stacks.metrics "tinca.commits" > 0)

(* --- FS-level crash consistency over Tinca ------------------------------- *)

let test_fs_crash_consistency () =
  (* fsync'd state must survive a crash; the trailing unsynced op may be
     fully present or fully absent (it was one transaction), never torn. *)
  for seed = 1 to 10 do
    let env = Stacks.make_env ~seed ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.tinca env in
    let fs = Fs.format ~config:fs_config stack.Stacks.backend in
    Fs.create fs "a";
    Fs.pwrite fs "a" ~off:0 (pattern 20_000 'A');
    Fs.create fs "b";
    Fs.pwrite fs "b" ~off:0 (pattern 9_000 'B');
    Fs.fsync fs;
    (* Unsynced tail work. *)
    Fs.create fs "c";
    Fs.pwrite fs "c" ~off:0 (pattern 5_000 'C');
    (* Crash without fsync. *)
    Pmem.crash ~seed:(seed * 101) ~survival:0.5 env.Stacks.pmem;
    let stack2 = Stacks.tinca_recover env in
    let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
    Fs.fsck fs2;
    Alcotest.(check bool) "a exists" true (Fs.exists fs2 "a");
    Alcotest.(check bool) "b exists" true (Fs.exists fs2 "b");
    Alcotest.(check char) "a content" 'A' (Bytes.get (Fs.pread fs2 "a" ~off:19_000 ~len:1) 0);
    Alcotest.(check char) "b content" 'B' (Bytes.get (Fs.pread fs2 "b" ~off:8_000 ~len:1) 0);
    (* c was never synced and its blocks never hit a commit: gone. *)
    Alcotest.(check bool) "c rolled back" false (Fs.exists fs2 "c")
  done

let test_fs_crash_mid_commit () =
  (* Inject the crash inside the commit itself: the synced prefix must
     survive; the in-flight transaction is all-or-nothing. *)
  for countdown = 1 to 40 do
    let env = Stacks.make_env ~seed:countdown ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.tinca env in
    let fs = Fs.format ~config:fs_config stack.Stacks.backend in
    Fs.create fs "stable";
    Fs.pwrite fs "stable" ~off:0 (pattern 10_000 'S');
    Fs.fsync fs;
    Fs.create fs "victim";
    Fs.pwrite fs "victim" ~off:0 (pattern 10_000 'V');
    Pmem.set_crash_countdown env.Stacks.pmem (Some countdown);
    let crashed = try Fs.fsync fs; false with Pmem.Crash_point -> true in
    Pmem.crash ~seed:(countdown * 7) ~survival:0.5 env.Stacks.pmem;
    let stack2 = Stacks.tinca_recover env in
    let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
    Fs.fsck fs2;
    Alcotest.(check bool) "stable exists" true (Fs.exists fs2 "stable");
    Alcotest.(check char) "stable content" 'S' (Bytes.get (Fs.pread fs2 "stable" ~off:9_000 ~len:1) 0);
    (* All-or-nothing for the victim transaction. *)
    if Fs.exists fs2 "victim" then begin
      Alcotest.(check int) "victim size" 10_000 (Fs.size fs2 "victim");
      Alcotest.(check char) "victim content" 'V' (Bytes.get (Fs.pread fs2 "victim" ~off:9_999 ~len:1) 0)
    end;
    ignore crashed
  done

let test_fs_crash_classic_journal_replay () =
  (* The Classic stack achieves the same consistency via journal replay:
     commit the journal, crash with survival 1.0 (pure process-kill:
     everything stored reaches NVM), replay, verify. *)
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  let stack = Stacks.classic ~journal_len:fs_config.Fs.journal_len env in
  let fs = Fs.format ~config:fs_config stack.Stacks.backend in
  Fs.create fs "j";
  Fs.pwrite fs "j" ~off:0 (pattern 6_000 'J');
  Fs.fsync fs;
  Pmem.crash ~seed:3 ~survival:1.0 env.Stacks.pmem;
  let stack2 = Stacks.classic_recover ~journal_len:fs_config.Fs.journal_len env in
  let fs2 = Fs.mount ~config:fs_config stack2.Stacks.backend in
  Fs.fsck fs2;
  Alcotest.(check char) "replayed" 'J' (Bytes.get (Fs.pread fs2 "j" ~off:5_000 ~len:1) 0)

let prop_fs_random_ops =
  QCheck.Test.make ~name:"fs: random op sequences keep fsck clean" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 40) (triple (int_bound 2) (int_bound 9) (int_bound 30)))
    (fun ops ->
      let fs, _ = mk `Tinca in
      let name i = Printf.sprintf "f%d" i in
      List.iter
        (fun (op, i, blocks) ->
          match op with
          | 0 -> if not (Fs.exists fs (name i)) then Fs.create fs (name i)
          | 1 ->
              if Fs.exists fs (name i) then
                Fs.pwrite fs (name i) ~off:(blocks * 100) (pattern ((blocks * 137) + 1) 'p')
          | _ -> if Fs.exists fs (name i) then Fs.delete fs (name i))
        ops;
      Fs.fsync fs;
      Fs.fsck fs;
      true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  let on_all name f = Alcotest.test_case name `Quick (each_backend f) in
  [
    ( "fs.ops",
      [
        on_all "create/write/read" test_create_write_read;
        on_all "sparse + EOF" test_sparse_and_eof;
        on_all "partial overwrite" test_overwrite_partial;
        on_all "append" test_append;
        on_all "indirect blocks" test_large_file_indirect;
        on_all "double indirect" test_double_indirect;
        on_all "delete frees space" test_delete_frees_space;
        on_all "many files" test_many_files;
        on_all "create/delete churn" test_create_delete_churn;
        on_all "errors" test_errors;
        on_all "mount rebuilds caches" test_mount_rebuilds;
        Alcotest.test_case "auto-commit threshold" `Quick test_auto_commit_threshold;
        q prop_fs_random_ops;
      ] );
    ( "fs.crash",
      [
        Alcotest.test_case "fsync durability over Tinca" `Quick test_fs_crash_consistency;
        Alcotest.test_case "crash mid-commit over Tinca" `Slow test_fs_crash_mid_commit;
        Alcotest.test_case "classic journal replay" `Quick test_fs_crash_classic_journal_replay;
      ] );
  ]

(* --- ordered journaling mode --- *)

let test_ordered_mode_works () =
  let stack = make_stack `Classic in
  let fs = Fs.format ~config:{ fs_config with journaled = true; ordered = true } stack.Stacks.backend in
  Fs.create fs "o";
  Fs.pwrite fs "o" ~off:0 (pattern 20_000 'o');
  Fs.fsync fs;
  Alcotest.(check char) "content" 'o' (Bytes.get (Fs.pread fs "o" ~off:19_000 ~len:1) 0);
  Fs.fsck fs

let test_ordered_journals_less () =
  (* Ordered mode must log only metadata: far fewer journal blocks than
     data=journal for the same writes. *)
  let logged ordered =
    let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.classic ~journal_len:fs_config.Fs.journal_len env in
    let fs = Fs.format ~config:{ fs_config with ordered } stack.Stacks.backend in
    Fs.create fs "f";
    for i = 0 to 19 do
      Fs.pwrite fs "f" ~off:(i * 100_000) (pattern 50_000 'x');
      Fs.fsync fs
    done;
    Tinca_sim.Metrics.get env.Stacks.metrics "jbd2.blocks_logged"
  in
  let journal = logged false and ordered = logged true in
  Alcotest.(check bool)
    (Printf.sprintf "ordered logs much less (%d vs %d)" ordered journal)
    true
    (ordered * 3 < journal)

let test_ordered_crash_keeps_structure () =
  (* After a crash, ordered mode guarantees fsck-clean structure (the
     paper's lower consistency level), even though data writes are not
     atomic. *)
  for seed = 1 to 6 do
    let env = Stacks.make_env ~seed ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.tinca env in
    let cfg = { fs_config with ordered = true } in
    let fs = Fs.format ~config:cfg stack.Stacks.backend in
    Fs.create fs "base";
    Fs.pwrite fs "base" ~off:0 (pattern 30_000 'b');
    Fs.fsync fs;
    Tinca_pmem.Pmem.set_crash_countdown env.Stacks.pmem (Some (50 * seed));
    (try
       for i = 0 to 10 do
         Fs.pwrite fs "base" ~off:(i * 3000) (pattern 2500 'n');
         Fs.fsync fs
       done;
       Tinca_pmem.Pmem.set_crash_countdown env.Stacks.pmem None
     with Tinca_pmem.Pmem.Crash_point -> ());
    Tinca_pmem.Pmem.crash ~seed:(seed * 17) ~survival:0.5 env.Stacks.pmem;
    let stack2 = Stacks.tinca_recover env in
    let fs2 = Fs.mount ~config:cfg stack2.Stacks.backend in
    (* Structure intact; data content may legitimately be mixed old/new. *)
    Fs.fsck fs2;
    Alcotest.(check bool) "file survives" true (Fs.exists fs2 "base")
  done

let ordered_suite =
  [
    ( "fs.ordered",
      [
        Alcotest.test_case "ordered mode roundtrip" `Quick test_ordered_mode_works;
        Alcotest.test_case "ordered journals less" `Quick test_ordered_journals_less;
        Alcotest.test_case "ordered crash keeps structure" `Quick test_ordered_crash_keeps_structure;
      ] );
  ]

(* Exhaustive FS-level crash sweep over Tinca: a short workload of synced
   rounds, crashed at every 3rd NVM event across its whole span. *)
let test_fs_full_event_sweep () =
  let cfg = { fs_config with ninodes = 64 } in
  let workload fs synced =
    for round = 0 to 3 do
      let name = Printf.sprintf "s%d" round in
      Fs.create fs name;
      Fs.pwrite fs name ~off:0 (pattern 6_000 (Char.chr (65 + round)));
      Fs.fsync fs;
      synced := round + 1
    done
  in
  (* Measure the span. *)
  let span =
    let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.tinca env in
    let fs = Fs.format ~config:cfg stack.Stacks.backend in
    let e0 = Pmem.event_count env.Stacks.pmem in
    workload fs (ref 0);
    Pmem.event_count env.Stacks.pmem - e0
  in
  let crash_at = ref 1 in
  while !crash_at <= span do
    let env = Stacks.make_env ~seed:!crash_at ~nvm_bytes ~disk_blocks () in
    let stack = Stacks.tinca env in
    let fs = Fs.format ~config:cfg stack.Stacks.backend in
    let synced = ref 0 in
    Pmem.set_crash_countdown env.Stacks.pmem (Some !crash_at);
    (try
       workload fs synced;
       Pmem.set_crash_countdown env.Stacks.pmem None
     with Pmem.Crash_point -> ());
    Pmem.crash ~seed:(!crash_at * 13) ~survival:0.5 env.Stacks.pmem;
    let stack2 = Stacks.tinca_recover env in
    let fs2 = Fs.mount ~config:cfg stack2.Stacks.backend in
    Fs.fsck fs2;
    for round = 0 to !synced - 1 do
      let name = Printf.sprintf "s%d" round in
      if not (Fs.exists fs2 name) then Alcotest.failf "crash@%d: %s lost" !crash_at name;
      let data = Fs.pread fs2 name ~off:0 ~len:6_000 in
      Bytes.iter
        (fun c ->
          if c <> Char.chr (65 + round) then Alcotest.failf "crash@%d: %s corrupt" !crash_at name)
        data
    done;
    crash_at := !crash_at + 3
  done

let sweep_suite =
  [
    ( "fs.crash_sweep",
      [ Alcotest.test_case "exhaustive event sweep over tinca" `Slow test_fs_full_event_sweep ] );
  ]

(* --- DRAM page cache (paper Fig 1(c)'s buffer cache) --- *)

let test_page_cache_serves_reads () =
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  let stack = Stacks.tinca env in
  let fs =
    Fs.format ~config:{ fs_config with page_cache_pages = 256 } stack.Stacks.backend
  in
  Fs.create fs "pc";
  Fs.pwrite fs "pc" ~off:0 (pattern 40_000 'p');
  Fs.fsync fs;
  (* First read may go to the cache layer; repeated reads must be
     absorbed by the DRAM page cache: NVM read traffic stops growing. *)
  ignore (Fs.pread fs "pc" ~off:0 ~len:40_000);
  let before = Metrics.get env.Stacks.metrics "pmem.read_lines" in
  for _ = 1 to 10 do
    ignore (Fs.pread fs "pc" ~off:0 ~len:40_000)
  done;
  let after = Metrics.get env.Stacks.metrics "pmem.read_lines" in
  Alcotest.(check int) "reads absorbed by DRAM" before after;
  Alcotest.(check char) "content correct" 'p' (Bytes.get (Fs.pread fs "pc" ~off:39_999 ~len:1) 0);
  Fs.fsck fs

let test_page_cache_coherent_with_writes () =
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  let stack = Stacks.tinca env in
  let fs =
    Fs.format ~config:{ fs_config with page_cache_pages = 64 } stack.Stacks.backend
  in
  Fs.create fs "c";
  Fs.pwrite fs "c" ~off:0 (pattern 4096 'a');
  Fs.fsync fs;
  ignore (Fs.pread fs "c" ~off:0 ~len:4096);
  (* Overwrite, then read: must see the new content, not the cached page. *)
  Fs.pwrite fs "c" ~off:0 (pattern 4096 'b');
  Alcotest.(check char) "read-your-writes" 'b' (Bytes.get (Fs.pread fs "c" ~off:0 ~len:1) 0);
  Fs.fsync fs;
  Alcotest.(check char) "after fsync too" 'b' (Bytes.get (Fs.pread fs "c" ~off:0 ~len:1) 0);
  Fs.fsck fs

let test_page_cache_bounded () =
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  let stack = Stacks.tinca env in
  let fs =
    Fs.format ~config:{ fs_config with page_cache_pages = 16 } stack.Stacks.backend
  in
  Fs.create fs "big";
  Fs.pwrite fs "big" ~off:0 (pattern (200 * 4096) 'z');
  Fs.fsync fs;
  (* Stream through far more blocks than the page cache holds. *)
  for i = 0 to 199 do
    ignore (Fs.pread fs "big" ~off:(i * 4096) ~len:4096)
  done;
  Alcotest.(check char) "content fine" 'z' (Bytes.get (Fs.pread fs "big" ~off:0 ~len:1) 0);
  Fs.fsck fs

let test_page_cache_crash_safe () =
  (* The page cache is volatile; crash + recovery must be unaffected. *)
  let env = Stacks.make_env ~nvm_bytes ~disk_blocks () in
  let stack = Stacks.tinca env in
  let cfg = { fs_config with page_cache_pages = 128 } in
  let fs = Fs.format ~config:cfg stack.Stacks.backend in
  Fs.create fs "d";
  Fs.pwrite fs "d" ~off:0 (pattern 12_288 'd');
  Fs.fsync fs;
  ignore (Fs.pread fs "d" ~off:0 ~len:12_288);
  Pmem.crash ~seed:9 ~survival:0.5 env.Stacks.pmem;
  let stack2 = Stacks.tinca_recover env in
  let fs2 = Fs.mount ~config:cfg stack2.Stacks.backend in
  Fs.fsck fs2;
  Alcotest.(check char) "data survives" 'd' (Bytes.get (Fs.pread fs2 "d" ~off:12_000 ~len:1) 0)

let page_cache_suite =
  [
    ( "fs.page_cache",
      [
        Alcotest.test_case "serves repeated reads" `Quick test_page_cache_serves_reads;
        Alcotest.test_case "coherent with writes" `Quick test_page_cache_coherent_with_writes;
        Alcotest.test_case "bounded" `Quick test_page_cache_bounded;
        Alcotest.test_case "crash safe" `Quick test_page_cache_crash_safe;
      ] );
  ]
