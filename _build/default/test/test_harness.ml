(* Smoke tests for the experiment harness: the runner's measurement
   plumbing, registry integrity, and a miniature end-to-end experiment
   asserting the paper's headline inequality (Tinca beats Classic). *)
module Runner = Tinca_harness.Runner
module Registry = Tinca_harness.Registry
module Stacks = Tinca_stacks.Stacks
module Fio = Tinca_workloads.Fio
module Ops = Tinca_workloads.Ops

let mini_cfg = { Fio.default with file_size = 2 * 1024 * 1024; ops = 800; read_pct = 0.3 }

let run_mini spec =
  Runner.run_local ~nvm_bytes:(2 * 1024 * 1024) ~disk_blocks:16384 ~spec
    ~prealloc:(fun ops -> Fio.prealloc mini_cfg ops)
    ~work:(fun ops -> Fio.run mini_cfg ops)
    ()

let test_runner_measures () =
  let m = run_mini (fun env -> Stacks.tinca env) in
  Alcotest.(check int) "ops counted" 800 m.Runner.ops;
  Alcotest.(check bool) "time advanced" true (m.Runner.sim_seconds > 0.0);
  Alcotest.(check bool) "throughput positive" true (m.Runner.throughput > 0.0);
  Alcotest.(check bool) "clflush counted" true (m.Runner.clflush > 0);
  Alcotest.(check bool) "stores counted" true (m.Runner.nvm_bytes_stored > 0)

let test_headline_inequality () =
  (* The reproduction's reason to exist: Tinca outperforms Classic with
     fewer flushes on the same workload. *)
  let tinca = run_mini (fun env -> Stacks.tinca env) in
  let classic = run_mini (fun env -> Stacks.classic ~journal_len:4096 env) in
  Alcotest.(check bool) "tinca faster" true (tinca.Runner.throughput > classic.Runner.throughput);
  Alcotest.(check bool) "tinca flushes less" true (tinca.Runner.clflush < classic.Runner.clflush)

let test_runner_deterministic () =
  let a = run_mini (fun env -> Stacks.tinca env) in
  let b = run_mini (fun env -> Stacks.tinca env) in
  Alcotest.(check (float 0.0)) "same simulated time" a.Runner.sim_seconds b.Runner.sim_seconds;
  Alcotest.(check int) "same clflush" a.Runner.clflush b.Runner.clflush

let test_registry_complete () =
  (* Every table and figure of the paper must be present. *)
  let required =
    [ "table1"; "table2"; "fig3a"; "fig3b"; "fig4"; "fig7"; "fig8"; "fig10"; "fig11";
      "fig12a"; "fig12b"; "fig12c"; "fig13"; "recoverability" ]
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (Registry.find id <> None))
    required;
  (* ids are unique *)
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_static_tables_render () =
  let out = Registry.run_experiment (Option.get (Registry.find "table1")) in
  Alcotest.(check bool) "table1 output" true (String.length out > 100);
  let out2 = Registry.run_experiment (Option.get (Registry.find "table2")) in
  Alcotest.(check bool) "table2 output" true (String.length out2 > 100)

let test_ops_compute_charges_clock () =
  let env = Stacks.make_env ~nvm_bytes:(2 * 1024 * 1024) ~disk_blocks:1024 () in
  let stack = Stacks.tinca env in
  let fs =
    Tinca_fs.Fs.format
      ~config:{ Tinca_fs.Fs.default_config with ninodes = 64; journal_len = 64 }
      stack.Stacks.backend
  in
  let ops = Ops.of_fs ~compute:(Tinca_sim.Clock.advance env.Stacks.clock) fs in
  let t0 = Tinca_sim.Clock.now_ns env.Stacks.clock in
  ops.Ops.compute 12345.0;
  Alcotest.(check (float 1e-9)) "charged" 12345.0 (Tinca_sim.Clock.now_ns env.Stacks.clock -. t0)

let test_filebench_commit_cadence () =
  (* With commit_every_ops the fileserver's transactions scale with its
     write intensity rather than the FS size threshold. *)
  let module Filebench = Tinca_workloads.Filebench in
  let env = Stacks.make_env ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack = Stacks.tinca env in
  let fs =
    Tinca_fs.Fs.format
      ~config:{ Tinca_fs.Fs.default_config with ninodes = 1024; max_dirty_blocks = 100_000 }
      stack.Stacks.backend
  in
  let ops = Ops.of_fs fs in
  let cfg =
    { (Filebench.default Filebench.Fileserver) with nfiles = 60; mean_file_kb = 16; ops = 400;
      commit_every_ops = 20 }
  in
  let t = Filebench.prealloc cfg ops in
  ignore (Filebench.run t ops);
  let hist = Option.get (stack.Stacks.txn_size_histogram ()) in
  Alcotest.(check bool) "about ops/cadence commits" true
    (Tinca_util.Histogram.count hist >= 400 / 20)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "runner measures" `Quick test_runner_measures;
        Alcotest.test_case "headline: tinca beats classic" `Quick test_headline_inequality;
        Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
        Alcotest.test_case "registry complete" `Quick test_registry_complete;
        Alcotest.test_case "static tables render" `Quick test_static_tables_render;
        Alcotest.test_case "ops.compute charges clock" `Quick test_ops_compute_charges_clock;
        Alcotest.test_case "filebench commit cadence" `Quick test_filebench_commit_cadence;
      ] );
  ]
