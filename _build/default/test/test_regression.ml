(* Regression guards on the reproduced result shapes: if a calibration or
   protocol change pushes a headline figure out of its plausible band
   (relative to both the paper and the recorded EXPERIMENTS.md values),
   these tests fail before the bench output quietly drifts. *)
module Stacks = Tinca_stacks.Stacks
module Runner = Tinca_harness.Runner
module Fio = Tinca_workloads.Fio
module Tpcc = Tinca_workloads.Tpcc

let fio_cfg read_pct =
  { Fio.default with file_size = 20 * 1024 * 1024; read_pct; ops = 4_000; fsync_every = 32 }

let run_fio read_pct spec =
  Runner.run_local ~spec
    ~prealloc:(fun ops -> Fio.prealloc (fio_cfg read_pct) ops)
    ~work:(fun ops -> Fio.run (fio_cfg read_pct) ops)
    ()

let in_band name lo v hi =
  Alcotest.(check bool) (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" name v lo hi) true
    (v >= lo && v <= hi)

let test_fig7_bands () =
  (* Paper: 2.5x / 1.7x at the extremes; we accept [1.4, 3.5]. *)
  List.iter
    (fun read_pct ->
      let tinca = run_fio read_pct (fun env -> Stacks.tinca env) in
      let classic = run_fio read_pct (fun env -> Stacks.classic ~journal_len:4096 env) in
      let _, _, t_iops = Runner.per_write tinca in
      let _, _, c_iops = Runner.per_write classic in
      in_band (Printf.sprintf "IOPS ratio @%.1f" read_pct) 1.4 (t_iops /. c_iops) 3.5;
      let t_cl, _, _ = Runner.per_write tinca in
      let c_cl, _, _ = Runner.per_write classic in
      (* Paper: 73-76 % fewer flushes; accept 50-90 %. *)
      in_band "clflush reduction" 0.50 (1.0 -. (t_cl /. c_cl)) 0.90)
    [ 0.3; 0.7 ]

let test_fig8_declines_with_users () =
  let tpm users spec =
    let cfg = { Tpcc.default with warehouses = 32; users; txns = 1_500 } in
    let m =
      Runner.run_local ~nvm_bytes:(5 * 1024 * 1024) ~spec
        ~prealloc:(fun ops -> Tpcc.prealloc cfg ops)
        ~work:(fun ops -> Tpcc.run cfg ops)
        ()
    in
    m.Runner.throughput
  in
  let t5 = tpm 5 (fun env -> Stacks.tinca env) in
  let t60 = tpm 60 (fun env -> Stacks.tinca env) in
  let c5 = tpm 5 (fun env -> Stacks.classic ~journal_len:4096 env) in
  let c60 = tpm 60 (fun env -> Stacks.classic ~journal_len:4096 env) in
  Alcotest.(check bool) "tinca declines with users" true (t60 < t5);
  Alcotest.(check bool) "classic declines with users" true (c60 < c5);
  in_band "tpcc ratio @5 users" 1.4 (t5 /. c5) 3.5;
  in_band "tpcc ratio @60 users" 1.4 (t60 /. c60) 3.5

let suite =
  [
    ( "regression",
      [
        Alcotest.test_case "fig7 headline bands" `Slow test_fig7_bands;
        Alcotest.test_case "fig8 user decline + bands" `Slow test_fig8_declines_with_users;
      ] );
  ]
