(* Tests for the simulated clock, latency tables and metrics registry. *)
open Tinca_sim

let test_clock_monotonic () =
  let c = Clock.create () in
  Clock.advance c 10.0;
  Clock.advance c 5.0;
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Clock.now_ns c);
  Clock.advance_to c 12.0;
  Alcotest.(check (float 1e-9)) "advance_to is monotone" 15.0 (Clock.now_ns c);
  Clock.advance_to c 20.0;
  Alcotest.(check (float 1e-9)) "advance_to moves forward" 20.0 (Clock.now_ns c);
  Alcotest.(check (float 1e-12)) "seconds" 2e-8 (Clock.seconds c);
  Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Clock.now_ns c)

let test_clock_rejects_negative () =
  let c = Clock.create () in
  Alcotest.(check bool) "assert fires" true
    (try
       Clock.advance c (-1.0);
       false
     with Assert_failure _ -> true)

let test_latency_orderings () =
  let open Latency in
  let nvdimm = nvm_of_tech Nvdimm and pcm = nvm_of_tech Pcm and stt = nvm_of_tech Stt_ram in
  Alcotest.(check bool) "pcm write slowest" true (pcm.write_ns > stt.write_ns);
  Alcotest.(check bool) "stt slower than dram" true (stt.write_ns > nvdimm.write_ns);
  Alcotest.(check bool) "read delays equal for pcm/stt" true (pcm.read_ns = stt.read_ns);
  let ssd = disk_of_kind Ssd and hdd = disk_of_kind Hdd in
  Alcotest.(check bool) "hdd seek dominates" true (hdd.seek_ns > ssd.write_block_ns)

let test_transfer_ns () =
  let open Latency in
  let net = default_network in
  let t = transfer_ns net 1_250_000 in
  (* 1.25 MB at 1.25 GB/s = 1 ms + 10 us rtt. *)
  Alcotest.(check (float 1.0)) "1.25MB" 1_010_000.0 t

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table1_renders () =
  let tbl = Latency.table1 () in
  let s = Tinca_util.Tabular.render tbl in
  Alcotest.(check bool) "mentions PCM" true (contains_substring s "PCM")

let test_metrics_incr_get () =
  let m = Metrics.create () in
  Metrics.incr m "a" ~by:2;
  Metrics.incr m "a" ~by:3;
  Alcotest.(check int) "accumulates" 5 (Metrics.get m "a");
  Alcotest.(check int) "missing is 0" 0 (Metrics.get m "nope")

let test_metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.incr m "x" ~by:10;
  let snap = Metrics.snapshot m in
  Metrics.incr m "x" ~by:5;
  Metrics.incr m "y" ~by:7;
  Alcotest.(check int) "since x" 5 (Metrics.since m snap "x");
  Alcotest.(check int) "since y" 7 (Metrics.since m snap "y");
  let d = Metrics.diff m snap in
  Alcotest.(check (list (pair string int))) "diff" [ ("x", 5); ("y", 7) ] d

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.incr m "x" ~by:1;
  Metrics.reset m;
  Alcotest.(check int) "cleared" 0 (Metrics.get m "x")

let suite =
  [
    ( "sim.clock",
      [
        Alcotest.test_case "monotonic accounting" `Quick test_clock_monotonic;
        Alcotest.test_case "negative rejected" `Quick test_clock_rejects_negative;
      ] );
    ( "sim.latency",
      [
        Alcotest.test_case "technology orderings" `Quick test_latency_orderings;
        Alcotest.test_case "network transfer" `Quick test_transfer_ns;
        Alcotest.test_case "table 1 renders" `Quick test_table1_renders;
      ] );
    ( "sim.metrics",
      [
        Alcotest.test_case "incr/get" `Quick test_metrics_incr_get;
        Alcotest.test_case "snapshot/diff" `Quick test_metrics_snapshot_diff;
        Alcotest.test_case "reset" `Quick test_metrics_reset;
      ] );
  ]

let test_flush_instr_ordering () =
  let open Latency in
  Alcotest.(check bool) "clwb cheapest" true
    (flush_instr_ns Clwb < flush_instr_ns Clflushopt
    && flush_instr_ns Clflushopt < flush_instr_ns Clflush);
  (* Persisting through a pmem with clwb must cost less simulated time. *)
  let cost instr =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Tinca_pmem.Pmem.create ~flush_instr:instr ~clock ~metrics ~tech:Pcm ~size:4096 () in
    Tinca_pmem.Pmem.write pmem ~off:0 (Bytes.make 4096 'x');
    Tinca_pmem.Pmem.persist pmem ~off:0 ~len:4096;
    Clock.now_ns clock
  in
  Alcotest.(check bool) "clwb persists cheaper" true (cost Clwb < cost Clflush)

let flush_instr_suite =
  [
    ( "sim.flush_instr",
      [ Alcotest.test_case "instruction cost ordering" `Quick test_flush_instr_ordering ] );
  ]
