(* Tests of the workload generators: determinism, mix ratios, dataset
   shapes, and that they run cleanly over a real Tinca stack. *)
module Fs = Tinca_fs.Fs
module Stacks = Tinca_stacks.Stacks
module Ops = Tinca_workloads.Ops
module Fio = Tinca_workloads.Fio
module Tpcc = Tinca_workloads.Tpcc
module Filebench = Tinca_workloads.Filebench
module Teragen = Tinca_workloads.Teragen

let fs_config = { Fs.default_config with ninodes = 2048; journal_len = 256 }

let mk_fs ?(nvm = 4 * 1024 * 1024) ?(disk_blocks = 32768) () =
  let env = Stacks.make_env ~nvm_bytes:nvm ~disk_blocks () in
  let stack = Stacks.tinca env in
  let fs = Fs.format ~config:fs_config stack.Stacks.backend in
  (fs, Ops.of_fs fs, env)

let test_fio_runs_and_mix () =
  let fs, ops, _ = mk_fs () in
  let cfg = { Fio.default with file_size = 4 * 1024 * 1024; ops = 2_000; read_pct = 0.3 } in
  Fio.prealloc cfg ops;
  let stats = Fio.run cfg ops in
  Alcotest.(check int) "op count" 2_000 stats.Ops.ops;
  let reads = float_of_int stats.Ops.logical_reads /. 2000.0 in
  Alcotest.(check bool) "read fraction ~0.3" true (reads > 0.25 && reads < 0.35);
  Alcotest.(check int) "dataset intact" (4 * 1024 * 1024) (Fs.size fs Fio.file_name);
  Fs.fsck fs

let test_fio_deterministic () =
  let run () =
    let _, ops, env = mk_fs () in
    let cfg = { Fio.default with file_size = 2 * 1024 * 1024; ops = 500 } in
    Fio.prealloc cfg ops;
    ignore (Fio.run cfg ops);
    Tinca_sim.Clock.now_ns env.Stacks.clock
  in
  Alcotest.(check (float 0.0)) "identical simulated time" (run ()) (run ())

let test_tpcc_runs () =
  let fs, ops, _ = mk_fs () in
  let cfg = { Tpcc.default with warehouses = 4; users = 4; txns = 500 } in
  Tpcc.prealloc cfg ops;
  let stats = Tpcc.run cfg ops in
  Alcotest.(check int) "txns" 500 stats.Ops.ops;
  Alcotest.(check bool) "reads and writes happen" true
    (stats.Ops.logical_reads > 0 && stats.Ops.logical_writes > 0);
  Fs.fsck fs

let test_tpcc_mix_is_write_heavy () =
  (* New-order + payment = 88 % of transactions; both write. *)
  let _, ops, _ = mk_fs () in
  let cfg = { Tpcc.default with warehouses = 4; users = 8; txns = 2_000 } in
  Tpcc.prealloc cfg ops;
  let stats = Tpcc.run cfg ops in
  let w = float_of_int stats.Ops.logical_writes in
  let r = float_of_int stats.Ops.logical_reads in
  Alcotest.(check bool) "writes within 2x of reads" true (w > r /. 2.0 && w < r *. 2.0)

let test_filebench_personalities () =
  List.iter
    (fun p ->
      let fs, ops, _ = mk_fs () in
      let cfg = { (Filebench.default p) with nfiles = 50; mean_file_kb = 16; ops = 300 } in
      let t = Filebench.prealloc cfg ops in
      let stats = Filebench.run t ops in
      Alcotest.(check int) (Filebench.personality_name p ^ " ops") 300 stats.Ops.ops;
      Fs.fsck fs)
    [ Filebench.Fileserver; Filebench.Webproxy; Filebench.Varmail ]

let test_filebench_ratios () =
  let ratio p =
    let _, ops, _ = mk_fs () in
    let cfg = { (Filebench.default p) with nfiles = 60; mean_file_kb = 16; ops = 2_000 } in
    let t = Filebench.prealloc cfg ops in
    let stats = Filebench.run t ops in
    float_of_int stats.Ops.bytes_read /. float_of_int (max 1 stats.Ops.bytes_written)
  in
  let webproxy = ratio Filebench.Webproxy in
  let fileserver = ratio Filebench.Fileserver in
  Alcotest.(check bool) "webproxy read-heavy" true (webproxy > 2.0);
  Alcotest.(check bool) "fileserver write-heavy" true (fileserver < 1.5)

let test_teragen_all_writes () =
  let fs, ops, _ = mk_fs () in
  let cfg = { Teragen.default with total_bytes = 4 * 1024 * 1024 } in
  let stats = Teragen.run cfg ops in
  Alcotest.(check int) "no reads" 0 stats.Ops.logical_reads;
  Alcotest.(check int) "all bytes written" (4 * 1024 * 1024) stats.Ops.bytes_written;
  Alcotest.(check int) "chunk files" (Teragen.chunk_count cfg) (Fs.file_count fs);
  Fs.fsck fs

let test_table2_renders () =
  let s = Tinca_util.Tabular.render (Tinca_workloads.Catalogue.table2 ()) in
  Alcotest.(check bool) "non-empty" true (String.length s > 200)

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "fio mix + dataset" `Quick test_fio_runs_and_mix;
        Alcotest.test_case "fio deterministic" `Quick test_fio_deterministic;
        Alcotest.test_case "tpcc runs" `Quick test_tpcc_runs;
        Alcotest.test_case "tpcc write-heavy" `Quick test_tpcc_mix_is_write_heavy;
        Alcotest.test_case "filebench personalities" `Quick test_filebench_personalities;
        Alcotest.test_case "filebench ratios" `Quick test_filebench_ratios;
        Alcotest.test_case "teragen all writes" `Quick test_teragen_all_writes;
        Alcotest.test_case "table 2 renders" `Quick test_table2_renders;
      ] );
  ]
