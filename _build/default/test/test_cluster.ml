(* Tests for the cluster models: node stacks, HDFS-like pipeline
   replication, GlusterFS-like replicate-distribute. *)
module Node = Tinca_cluster.Node
module Hdfs = Tinca_cluster.Hdfs
module Gluster = Tinca_cluster.Gluster
module Fs = Tinca_fs.Fs
module Teragen = Tinca_workloads.Teragen
module Filebench = Tinca_workloads.Filebench
module Ops = Tinca_workloads.Ops

let node_config =
  { Node.default_config with nvm_bytes = 4 * 1024 * 1024; disk_blocks = 16384 }

let mk_nodes ?(n = 4) kind = Array.init n (fun id -> Node.make ~id ~config:node_config kind)

let test_node_stack_works () =
  List.iter
    (fun kind ->
      let node = Node.make ~id:0 ~config:node_config kind in
      Fs.create node.Node.fs "x";
      Fs.pwrite node.Node.fs "x" ~off:0 (Bytes.of_string "node data");
      Fs.fsync node.Node.fs;
      Alcotest.(check string)
        (Node.kind_label kind ^ " roundtrip")
        "node data"
        (Bytes.to_string (Fs.pread node.Node.fs "x" ~off:0 ~len:9));
      Alcotest.(check bool) "clock advanced" true (Node.now_ns node > 0.0))
    [ Node.Tinca_node; Node.Classic_node ]

let test_hdfs_replication_count () =
  List.iter
    (fun replicas ->
      let nodes = mk_nodes Node.Tinca_node in
      let hdfs = Hdfs.create ~replicas nodes in
      let chunk = 256 * 1024 in
      for c = 0 to 7 do
        Hdfs.write_chunk hdfs (Printf.sprintf "part%d" c) chunk
      done;
      Alcotest.(check int)
        (Printf.sprintf "replicated bytes with %d replicas" replicas)
        (8 * chunk * replicas) (Hdfs.bytes_replicated hdfs);
      (* Each chunk must exist on exactly [replicas] nodes. *)
      let copies name =
        Array.fold_left (fun acc n -> if Fs.exists n.Node.fs name then acc + 1 else acc) 0 nodes
      in
      for c = 0 to 7 do
        Alcotest.(check int) "copies" replicas (copies (Printf.sprintf "part%d" c))
      done)
    [ 1; 2; 3 ]

let test_hdfs_more_replicas_cost_more () =
  let time replicas =
    let nodes = mk_nodes Node.Tinca_node in
    let hdfs = Hdfs.create ~replicas nodes in
    for c = 0 to 15 do
      Hdfs.write_chunk hdfs (Printf.sprintf "part%d" c) (256 * 1024)
    done;
    Hdfs.execution_ns hdfs
  in
  let t1 = time 1 and t2 = time 2 and t3 = time 3 in
  Alcotest.(check bool) "monotone in replicas" true (t1 < t2 && t2 < t3)

let test_hdfs_teragen_via_ops () =
  let nodes = mk_nodes Node.Tinca_node in
  let hdfs = Hdfs.create ~replicas:2 nodes in
  let cfg = { Teragen.default with total_bytes = 2 * 1024 * 1024; chunk_bytes = 256 * 1024 } in
  let stats = Teragen.run cfg (Hdfs.ops hdfs) in
  Alcotest.(check int) "chunks" (Teragen.chunk_count cfg) (Hdfs.chunks_written hdfs);
  Alcotest.(check int) "bytes replicated" (2 * 2 * 1024 * 1024) (Hdfs.bytes_replicated hdfs);
  Alcotest.(check bool) "stats counted" true (stats.Ops.bytes_written = 2 * 1024 * 1024)

let test_hdfs_tinca_faster_than_classic () =
  let time kind =
    let nodes = mk_nodes kind in
    let hdfs = Hdfs.create ~replicas:3 nodes in
    let cfg = { Teragen.default with total_bytes = 4 * 1024 * 1024; chunk_bytes = 256 * 1024 } in
    ignore (Teragen.run cfg (Hdfs.ops hdfs));
    Hdfs.execution_ns hdfs
  in
  Alcotest.(check bool) "tinca faster" true (time Node.Tinca_node < time Node.Classic_node)

let test_gluster_replicas_and_content () =
  let nodes = mk_nodes Node.Tinca_node in
  let g = Gluster.create ~replicas:2 nodes in
  let ops = Gluster.ops g in
  ops.Ops.create "alpha";
  ops.Ops.pwrite "alpha" ~off:0 ~len:8192;
  ops.Ops.fsync ();
  let copies =
    Array.fold_left (fun acc n -> if Fs.exists n.Node.fs "alpha" then acc + 1 else acc) 0 nodes
  in
  Alcotest.(check int) "two replicas" 2 copies;
  Alcotest.(check int) "size visible" 8192 (ops.Ops.size "alpha");
  ops.Ops.delete "alpha";
  let copies_after =
    Array.fold_left (fun acc n -> if Fs.exists n.Node.fs "alpha" then acc + 1 else acc) 0 nodes
  in
  Alcotest.(check int) "deleted everywhere" 0 copies_after

let test_gluster_time_advances () =
  let nodes = mk_nodes Node.Tinca_node in
  let g = Gluster.create ~replicas:2 nodes in
  let ops = Gluster.ops g in
  ops.Ops.create "f";
  ops.Ops.pwrite "f" ~off:0 ~len:65536;
  ops.Ops.fsync ();
  Alcotest.(check bool) "client time advanced" true (Gluster.client_ns g > 0.0);
  ops.Ops.pread "f" ~off:0 ~len:4096;
  Alcotest.(check bool) "read advances time" true (Gluster.client_ns g > 65536.0 /. 1.25)

let test_gluster_filebench_runs () =
  let nodes = mk_nodes Node.Tinca_node in
  let g = Gluster.create ~replicas:2 nodes in
  let ops = Gluster.ops g in
  let cfg =
    { (Filebench.default Filebench.Varmail) with nfiles = 40; mean_file_kb = 8; ops = 200 }
  in
  let t = Filebench.prealloc cfg ops in
  let stats = Filebench.run t ops in
  Alcotest.(check int) "ops" 200 stats.Ops.ops;
  Array.iter (fun n -> Fs.fsck n.Node.fs) nodes

let test_gluster_distributes () =
  (* With replicas = 1, files should spread across nodes. *)
  let nodes = mk_nodes Node.Tinca_node in
  let g = Gluster.create ~replicas:1 nodes in
  let ops = Gluster.ops g in
  for i = 0 to 63 do
    ops.Ops.create (Printf.sprintf "spread%d" i)
  done;
  ops.Ops.fsync ();
  let counts = Array.map (fun n -> Fs.file_count n.Node.fs) nodes in
  Array.iter
    (fun c -> Alcotest.(check bool) "each node holds some files" true (c > 0))
    counts

let suite =
  [
    ( "cluster",
      [
        Alcotest.test_case "node stacks" `Quick test_node_stack_works;
        Alcotest.test_case "hdfs replication count" `Quick test_hdfs_replication_count;
        Alcotest.test_case "hdfs replica cost monotone" `Quick test_hdfs_more_replicas_cost_more;
        Alcotest.test_case "hdfs teragen adapter" `Quick test_hdfs_teragen_via_ops;
        Alcotest.test_case "hdfs tinca beats classic" `Quick test_hdfs_tinca_faster_than_classic;
        Alcotest.test_case "gluster replication" `Quick test_gluster_replicas_and_content;
        Alcotest.test_case "gluster time model" `Quick test_gluster_time_advances;
        Alcotest.test_case "gluster filebench" `Quick test_gluster_filebench_runs;
        Alcotest.test_case "gluster distributes" `Quick test_gluster_distributes;
      ] );
  ]
