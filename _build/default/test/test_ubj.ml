(* Tests for the UBJ comparator: commit-in-place, frozen-block copies,
   transaction-granularity checkpointing. *)
open Tinca_sim
module Ubj = Tinca_ubj.Ubj
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs

let mk ?(pmem_bytes = 128 * 1024) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:1024 ~block_size:4096 in
  let u = Ubj.create ~config:Ubj.default_config ~pmem ~disk ~clock ~metrics in
  (u, disk, metrics)

let block c = Bytes.make 4096 c

let commit_one u blkno data =
  let h = Ubj.Txn.init u in
  Ubj.Txn.add h blkno data;
  Ubj.Txn.commit h

let test_commit_and_read () =
  let u, _, m = mk () in
  commit_one u 5 (block 'u');
  Alcotest.(check char) "read back" 'u' (Bytes.get (Ubj.read u 5) 0);
  Alcotest.(check int) "one commit" 1 (Metrics.get m "ubj.commits");
  Alcotest.(check int) "frozen" 1 (Ubj.frozen_blocks u)

let test_update_frozen_costs_copy () =
  let u, _, m = mk () in
  commit_one u 1 (block 'a');
  Alcotest.(check int) "no copies yet" 0 (Metrics.get m "ubj.frozen_copies");
  (* The block is frozen by the uncheckpointed txn: updating it must go
     out of place. *)
  commit_one u 1 (block 'b');
  Alcotest.(check int) "copy on frozen update" 1 (Metrics.get m "ubj.frozen_copies");
  Alcotest.(check char) "newest visible" 'b' (Bytes.get (Ubj.read u 1) 0)

let test_checkpoint_whole_txn () =
  let u, disk, m = mk () in
  let h = Ubj.Txn.init u in
  Ubj.Txn.add h 1 (block 'x');
  Ubj.Txn.add h 2 (block 'y');
  Ubj.Txn.add h 3 (block 'z');
  Ubj.Txn.commit h;
  Ubj.flush_all u;
  Alcotest.(check int) "one checkpoint" 1 (Metrics.get m "ubj.checkpoints");
  Alcotest.(check int) "three writes" 3 (Metrics.get m "ubj.checkpoint_writes");
  Alcotest.(check char) "on disk" 'y' (Bytes.get (Disk.read_block disk 2) 0);
  Alcotest.(check int) "nothing frozen" 0 (Ubj.frozen_blocks u)

let test_checkpoint_writes_frozen_version () =
  let u, disk, _ = mk () in
  commit_one u 7 (block 'o');
  commit_one u 7 (block 'n');
  (* Checkpointing txn 1 writes the OLD frozen copy; txn 2 then writes
     the new one: disk must end with the newest. *)
  Ubj.flush_all u;
  Alcotest.(check char) "newest on disk" 'n' (Bytes.get (Disk.read_block disk 7) 0);
  Alcotest.(check char) "cache newest" 'n' (Bytes.get (Ubj.read u 7) 0)

let test_space_pressure_checkpoints () =
  let u, _, m = mk ~pmem_bytes:(64 * 1024) () in
  (* 15 data blocks; write enough distinct blocks to force checkpoints. *)
  for i = 0 to 40 do
    commit_one u i (block (Char.chr (65 + (i mod 26))))
  done;
  Alcotest.(check bool) "checkpoints happened" true (Metrics.get m "ubj.checkpoints" > 0);
  (* All blocks still readable with correct content. *)
  for i = 0 to 40 do
    Alcotest.(check char) (Printf.sprintf "block %d" i)
      (Char.chr (65 + (i mod 26)))
      (Bytes.get (Ubj.read u i) 0)
  done

let test_ubj_stack_with_fs () =
  let env = Stacks.make_env ~nvm_bytes:(2 * 1024 * 1024) ~disk_blocks:8192 () in
  let stack = Stacks.ubj env in
  let fs =
    Fs.format ~config:{ Fs.default_config with ninodes = 256; journal_len = 128 }
      stack.Stacks.backend
  in
  Fs.create fs "ubj.txt";
  Fs.pwrite fs "ubj.txt" ~off:0 (Bytes.of_string "via ubj stack");
  Fs.fsync fs;
  Alcotest.(check string) "roundtrip" "via ubj stack"
    (Bytes.to_string (Fs.pread fs "ubj.txt" ~off:0 ~len:13));
  Fs.fsck fs

let test_tinca_beats_ubj_on_hot_blocks () =
  (* The §5.4.4 argument: hot blocks re-updated before checkpoint cost
     UBJ an extra memcpy each time; Tinca's role switch avoids that.
     Compare simulated time on a hot-block overwrite loop. *)
  let hot_loop commit =
    for round = 0 to 200 do
      commit (round mod 4) (block (Char.chr (33 + (round mod 90))))
    done
  in
  let ubj_time =
    let clock = Clock.create () in
    let m = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics:m ~tech:Latency.Pcm ~size:(512 * 1024) () in
    let disk = Disk.create ~clock ~metrics:m ~kind:Latency.Ssd ~nblocks:1024 ~block_size:4096 in
    let u = Ubj.create ~config:Ubj.default_config ~pmem ~disk ~clock ~metrics:m in
    hot_loop (fun b d -> commit_one u b d);
    Clock.now_ns clock
  in
  let tinca_time =
    let module Cache = Tinca_core.Cache in
    let clock = Clock.create () in
    let m = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics:m ~tech:Latency.Pcm ~size:(512 * 1024) () in
    let disk = Disk.create ~clock ~metrics:m ~kind:Latency.Ssd ~nblocks:1024 ~block_size:4096 in
    let cache =
      Cache.format
        ~config:{ Cache.default_config with ring_slots = 64 }
        ~pmem ~disk ~clock ~metrics:m
    in
    hot_loop (fun b d -> Cache.write_direct cache b d);
    Clock.now_ns clock
  in
  Alcotest.(check bool)
    (Printf.sprintf "tinca (%.0f ns) <= ubj (%.0f ns)" tinca_time ubj_time)
    true (tinca_time <= ubj_time)

let suite =
  [
    ( "ubj",
      [
        Alcotest.test_case "commit and read" `Quick test_commit_and_read;
        Alcotest.test_case "frozen update copies" `Quick test_update_frozen_costs_copy;
        Alcotest.test_case "txn-unit checkpoint" `Quick test_checkpoint_whole_txn;
        Alcotest.test_case "checkpoint ordering" `Quick test_checkpoint_writes_frozen_version;
        Alcotest.test_case "space pressure" `Quick test_space_pressure_checkpoints;
        Alcotest.test_case "ubj stack + fs" `Quick test_ubj_stack_with_fs;
        Alcotest.test_case "tinca beats ubj on hot blocks" `Quick test_tinca_beats_ubj_on_hot_blocks;
      ] );
  ]
