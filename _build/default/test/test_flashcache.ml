(* Tests for the Flashcache-style baseline cache: mapping, write-back,
   synchronous block-format metadata, recovery and the ablation knobs. *)
open Tinca_sim
module Fc = Tinca_flashcache.Flashcache
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

type env = { fc : Fc.t; pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk ?(cfg = { Fc.default_config with associativity = 8 }) ?(pmem_bytes = 256 * 1024)
    ?(disk_blocks = 1024) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:pmem_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:disk_blocks ~block_size:4096 in
  let fc = Fc.create ~config:cfg ~pmem ~disk ~clock ~metrics in
  { fc; pmem; disk; clock; metrics }

let block c = Bytes.make 4096 c

let test_write_read () =
  let e = mk () in
  Fc.write e.fc 10 (block 'a');
  Alcotest.(check char) "hit" 'a' (Bytes.get (Fc.read e.fc 10) 0);
  Alcotest.(check int) "no disk io yet" 0 (Disk.writes e.disk)

let test_read_miss_fill () =
  let e = mk () in
  Disk.write_block e.disk 5 (block 'd');
  Alcotest.(check char) "filled" 'd' (Bytes.get (Fc.read e.fc 5) 0);
  Alcotest.(check bool) "cached" true (Fc.contains e.fc 5);
  ignore (Fc.read e.fc 5);
  Alcotest.(check int) "second read hits" 1 (Metrics.get e.metrics "flashcache.read_hits")

let test_metadata_write_amplification () =
  (* The motivation: every cached write costs a data block write (64
     flushes) PLUS a metadata block write (64 flushes). *)
  let e = mk () in
  let snap = Metrics.snapshot e.metrics in
  Fc.write e.fc 1 (block 'x');
  Alcotest.(check int) "128 flushes per cached write" 128
    (Metrics.since e.metrics snap "pmem.clflush");
  Alcotest.(check int) "md write counted" 1 (Metrics.since e.metrics snap "flashcache.md_writes")

let test_metadata_sync_off () =
  let cfg = { Fc.default_config with associativity = 8; metadata_sync = false } in
  let e = mk ~cfg () in
  let snap = Metrics.snapshot e.metrics in
  Fc.write e.fc 1 (block 'x');
  Alcotest.(check int) "only data flushes" 64 (Metrics.since e.metrics snap "pmem.clflush");
  Alcotest.(check int) "no md writes" 0 (Metrics.since e.metrics snap "flashcache.md_writes")

let test_flush_writes_off () =
  let cfg = { Fc.default_config with associativity = 8; flush_writes = false } in
  let e = mk ~cfg () in
  let snap = Metrics.snapshot e.metrics in
  Fc.write e.fc 1 (block 'x');
  Alcotest.(check int) "no flushes at all" 0 (Metrics.since e.metrics snap "pmem.clflush")

let test_eviction_and_writeback () =
  let e = mk () in
  let n = Fc.nslots e.fc in
  for i = 0 to (2 * n) - 1 do
    Fc.write e.fc i (block (Char.chr (Char.code 'A' + (i mod 26))))
  done;
  Alcotest.(check bool) "evictions" true (Metrics.get e.metrics "flashcache.evictions" > 0);
  Alcotest.(check bool) "writebacks" true (Metrics.get e.metrics "flashcache.writebacks" > 0);
  (* All data must be readable with correct content afterwards. *)
  for i = 0 to (2 * n) - 1 do
    let expect = Char.chr (Char.code 'A' + (i mod 26)) in
    Alcotest.(check char) (Printf.sprintf "block %d" i) expect (Bytes.get (Fc.read e.fc i) 0)
  done

let test_flush_all () =
  let e = mk () in
  Fc.write e.fc 3 (block 'p');
  Fc.flush_all e.fc;
  Alcotest.(check char) "on disk" 'p' (Bytes.get (Disk.read_block e.disk 3) 0);
  let w = Disk.writes e.disk in
  Fc.flush_all e.fc;
  Alcotest.(check int) "idempotent" w (Disk.writes e.disk)

let test_recovery_preserves_dirty () =
  let e = mk () in
  Fc.write e.fc 9 (block 'r');
  Pmem.crash ~seed:4 ~survival:0.0 e.pmem;
  let fc2 =
    Fc.recover
      ~config:{ Fc.default_config with associativity = 8 }
      ~pmem:e.pmem ~disk:e.disk ~clock:e.clock ~metrics:e.metrics
  in
  Alcotest.(check bool) "still cached" true (Fc.contains fc2 9);
  Alcotest.(check char) "content" 'r' (Bytes.get (Fc.read fc2 9) 0);
  Fc.flush_all fc2;
  Alcotest.(check char) "dirty bit survived" 'r' (Bytes.get (Disk.read_block e.disk 9) 0)

let test_hit_rate () =
  let e = mk () in
  Fc.write e.fc 1 (block 'a');
  Fc.write e.fc 1 (block 'b');
  Fc.write e.fc 2 (block 'c');
  Alcotest.(check (float 1e-9)) "write hit rate" (1.0 /. 3.0) (Fc.write_hit_rate e.fc)

let prop_last_write_wins =
  QCheck.Test.make ~name:"flashcache: last write wins through evictions" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 100) (pair (int_bound 200) (int_bound 255)))
    (fun writes ->
      let e = mk () in
      List.iter (fun (blk, v) -> Fc.write e.fc blk (block (Char.chr v))) writes;
      let expect = Hashtbl.create 16 in
      List.iter (fun (blk, v) -> Hashtbl.replace expect blk v) writes;
      Hashtbl.fold
        (fun blk v acc -> acc && Bytes.get (Fc.read e.fc blk) 0 = Char.chr v)
        expect true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "flashcache",
      [
        Alcotest.test_case "write then read" `Quick test_write_read;
        Alcotest.test_case "read miss fill" `Quick test_read_miss_fill;
        Alcotest.test_case "metadata write amplification" `Quick test_metadata_write_amplification;
        Alcotest.test_case "metadata_sync off" `Quick test_metadata_sync_off;
        Alcotest.test_case "flush_writes off" `Quick test_flush_writes_off;
        Alcotest.test_case "eviction + writeback" `Quick test_eviction_and_writeback;
        Alcotest.test_case "flush_all" `Quick test_flush_all;
        Alcotest.test_case "recovery preserves dirty" `Quick test_recovery_preserves_dirty;
        Alcotest.test_case "hit rate" `Quick test_hit_rate;
        q prop_last_write_wins;
      ] );
  ]

(* --- dirty-threshold cleaner --- *)

let test_cleaner_fires_at_threshold () =
  let cfg = { Fc.default_config with associativity = 8; dirty_threshold = 0.25 } in
  let e = mk ~cfg () in
  (* Dirty far more blocks than 25 % of any set can hold. *)
  for i = 0 to 63 do
    Fc.write e.fc i (block 'd')
  done;
  Alcotest.(check bool) "cleaned" true (Metrics.get e.metrics "flashcache.cleaned" > 0);
  (* Cleaned blocks stay cached with correct content. *)
  for i = 0 to 63 do
    Alcotest.(check char) (Printf.sprintf "blk %d" i) 'd' (Bytes.get (Fc.read e.fc i) 0)
  done

let test_cleaner_disabled_at_one () =
  let cfg = { Fc.default_config with associativity = 8; dirty_threshold = 1.0 } in
  let e = mk ~cfg () in
  for i = 0 to 63 do
    Fc.write e.fc i (block 'd')
  done;
  Alcotest.(check int) "no cleaning" 0 (Metrics.get e.metrics "flashcache.cleaned")

let cleaner_suite =
  [
    ( "flashcache.cleaner",
      [
        Alcotest.test_case "fires at threshold" `Quick test_cleaner_fires_at_threshold;
        Alcotest.test_case "disabled at 1.0" `Quick test_cleaner_disabled_at_one;
      ] );
  ]
