(* Tests for the SSD/HDD disk models and the NVM block device. *)
open Tinca_sim
module Disk = Tinca_blockdev.Disk
module Nvm_bdev = Tinca_blockdev.Nvm_bdev
module Pmem = Tinca_pmem.Pmem

let mk_disk ?(kind = Latency.Ssd) ?(nblocks = 1024) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  (Disk.create ~clock ~metrics ~kind ~nblocks ~block_size:4096, clock, metrics)

let block c = Bytes.make 4096 c

let test_disk_roundtrip () =
  let d, _, _ = mk_disk () in
  Disk.write_block d 7 (block 'x');
  Alcotest.(check char) "read back" 'x' (Bytes.get (Disk.read_block d 7) 0)

let test_disk_unwritten_zero () =
  let d, _, _ = mk_disk () in
  Alcotest.(check char) "zeros" '\000' (Bytes.get (Disk.read_block d 3) 0)

let test_disk_counts () =
  let d, _, m = mk_disk () in
  Disk.write_block d 0 (block 'a');
  Disk.write_block d 1 (block 'b');
  ignore (Disk.read_block d 0);
  Alcotest.(check int) "writes" 2 (Disk.writes d);
  Alcotest.(check int) "reads" 1 (Disk.reads d);
  Alcotest.(check int) "metric writes" 2 (Metrics.get m "disk.writes");
  Alcotest.(check int) "sparse footprint" 2 (Disk.written_blocks d)

let test_disk_bounds () =
  let d, _, _ = mk_disk ~nblocks:8 () in
  Alcotest.(check bool) "oob write" true
    (try
       Disk.write_block d 8 (block 'x');
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong size" true
    (try
       Disk.write_block d 0 (Bytes.make 100 'x');
       false
     with Invalid_argument _ -> true)

let test_hdd_random_slower_than_seq () =
  let seq_time =
    let d, clock, _ = mk_disk ~kind:Latency.Hdd () in
    for i = 0 to 63 do
      Disk.write_block d i (block 'x')
    done;
    Clock.now_ns clock
  in
  let rand_time =
    let d, clock, _ = mk_disk ~kind:Latency.Hdd () in
    let r = Tinca_util.Rng.create 5 in
    for _ = 0 to 63 do
      Disk.write_block d (Tinca_util.Rng.int r 1024) (block 'x')
    done;
    Clock.now_ns clock
  in
  Alcotest.(check bool) "random >> sequential on HDD" true (rand_time > 10.0 *. seq_time)

let test_hdd_slower_than_ssd_random () =
  let run kind =
    let d, clock, _ = mk_disk ~kind () in
    let r = Tinca_util.Rng.create 5 in
    for _ = 0 to 63 do
      Disk.write_block d (Tinca_util.Rng.int r 1024) (block 'x')
    done;
    Clock.now_ns clock
  in
  Alcotest.(check bool) "hdd slower" true (run Latency.Hdd > run Latency.Ssd)

let mk_nvm_bdev () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(64 * 4096) () in
  (Nvm_bdev.create ~pmem ~metrics ~base:4096 ~nblocks:32 ~block_size:4096, pmem, metrics)

let test_nvm_bdev_roundtrip () =
  let b, _, _ = mk_nvm_bdev () in
  Nvm_bdev.write_block b 3 (block 'z');
  Alcotest.(check char) "read back" 'z' (Bytes.get (Nvm_bdev.read_block b 3) 0)

let test_nvm_bdev_writes_are_durable () =
  let b, pmem, _ = mk_nvm_bdev () in
  Nvm_bdev.write_block b 0 (block 'q');
  Pmem.crash ~seed:3 ~survival:0.0 pmem;
  Alcotest.(check char) "block write persisted" 'q' (Bytes.get (Nvm_bdev.read_block b 0) 0)

let test_nvm_bdev_flush_cost () =
  (* A 4 KB block write must flush 64 cache lines — this is the Classic
     stack's fundamental cost unit. *)
  let b, _, m = mk_nvm_bdev () in
  Nvm_bdev.write_block b 1 (block 'w');
  Alcotest.(check int) "64 clflush per block" 64 (Metrics.get m "pmem.clflush");
  Alcotest.(check int) "one sfence" 1 (Metrics.get m "pmem.sfence")

let test_nvm_bdev_bounds () =
  let b, _, _ = mk_nvm_bdev () in
  Alcotest.(check bool) "oob" true
    (try
       ignore (Nvm_bdev.read_block b 32);
       false
     with Invalid_argument _ -> true)

let prop_disk_last_write_wins =
  QCheck.Test.make ~name:"disk: last write wins" ~count:100
    QCheck.(list (pair (int_bound 31) (int_bound 255)))
    (fun writes ->
      let d, _, _ = mk_disk ~nblocks:32 () in
      List.iter (fun (blk, v) -> Disk.write_block d blk (block (Char.chr v))) writes;
      let expect = Hashtbl.create 16 in
      List.iter (fun (blk, v) -> Hashtbl.replace expect blk v) writes;
      Hashtbl.fold
        (fun blk v acc -> acc && Bytes.get (Disk.read_block d blk) 0 = Char.chr v)
        expect true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "blockdev.disk",
      [
        Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
        Alcotest.test_case "unwritten reads zero" `Quick test_disk_unwritten_zero;
        Alcotest.test_case "counters" `Quick test_disk_counts;
        Alcotest.test_case "bounds + size checks" `Quick test_disk_bounds;
        Alcotest.test_case "hdd random vs sequential" `Quick test_hdd_random_slower_than_seq;
        Alcotest.test_case "hdd slower than ssd" `Quick test_hdd_slower_than_ssd_random;
        q prop_disk_last_write_wins;
      ] );
    ( "blockdev.nvm_bdev",
      [
        Alcotest.test_case "roundtrip" `Quick test_nvm_bdev_roundtrip;
        Alcotest.test_case "durable writes" `Quick test_nvm_bdev_writes_are_durable;
        Alcotest.test_case "flush cost model" `Quick test_nvm_bdev_flush_cost;
        Alcotest.test_case "bounds" `Quick test_nvm_bdev_bounds;
      ] );
  ]

(* --- device queue model (background cleaner writes) --- *)

let test_background_write_does_not_block () =
  let d, clock, _ = mk_disk () in
  let t0 = Clock.now_ns clock in
  Disk.write_block ~background:true d 100 (block 'q');
  Alcotest.(check (float 1e-9)) "caller clock unchanged" t0 (Clock.now_ns clock);
  Alcotest.(check int) "write counted" 1 (Disk.writes d);
  Alcotest.(check char) "data stored" 'q' (Bytes.get (Disk.read_block d 100) 0)

let test_background_write_occupies_device () =
  (* A foreground read issued right after a burst of background writes
     must wait for the queue to drain. *)
  let burst d n =
    for i = 0 to n - 1 do
      Disk.write_block ~background:true d ((i * 37) mod 1024) (block 'b')
    done
  in
  let with_burst =
    let d, clock, _ = mk_disk () in
    burst d 32;
    ignore (Disk.read_block d 512);
    Clock.now_ns clock
  in
  let without =
    let d, clock, _ = mk_disk () in
    ignore (Disk.read_block d 512);
    Clock.now_ns clock
  in
  Alcotest.(check bool) "queued behind cleaner" true (with_burst > 10.0 *. without)

let queue_suite =
  [
    ( "blockdev.queue",
      [
        Alcotest.test_case "background write non-blocking" `Quick test_background_write_does_not_block;
        Alcotest.test_case "background write occupies device" `Quick
          test_background_write_occupies_device;
      ] );
  ]
