bin/tinca_bench.ml: Arg Clock Cmd Cmdliner Filename List Logs Metrics Printf Sys Term Tinca_fs Tinca_harness Tinca_sim Tinca_stacks Tinca_workloads Unix
