bin/tinca_bench.mli:
