(* Exhaustive crash-space model checker CLI.

   tinca_check                     - full sweep: every crash point of the
                                     default 6-commit workload, every
                                     survival subset of the torn lines
   tinca_check --commits 3 --cap 64  - quicker budgeted run

   Exit status 0 when every explored post-crash state recovers to a
   consistent prefix of the commit history; 1 when any violation is
   found (each is printed). *)

open Cmdliner
module Check = Tinca_checker.Crash_check

let run commits seed universe ring_slots pmem_kb cap sample_seed from stride verbose quiet =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let cfg =
    {
      Check.ncommits = commits;
      seed;
      universe;
      ring_slots;
      pmem_bytes = pmem_kb * 1024;
      mask_cap = cap;
      sample_seed;
      first_event = from;
      stride;
    }
  in
  let progress =
    if quiet then fun _ _ -> ()
    else fun k span ->
      if k mod 50 = 0 || k = span then Printf.eprintf "\rcrash point %d/%d%!" k span
  in
  let t0 = Unix.gettimeofday () in
  let report =
    try Check.explore ~progress cfg
    with Invalid_argument msg ->
      (* Misconfiguration (bad --from/--stride, NVM too small for the
         ring, ...) — report it as a usage error, not a crash. *)
      Printf.eprintf "tinca_check: %s\n" msg;
      exit 2
  in
  if not quiet then Printf.eprintf "\r%!";
  Tinca_util.Tabular.print (Check.report_table report);
  if report.Check.capped_points > 0 then
    Printf.printf
      "note: %d of %d crash points exceeded the %d-subset cap; those were explored by seeded \
       sample (always including the all-lost and all-survive corners).  Raise --cap for full \
       coverage.\n"
      report.Check.capped_points report.Check.crash_points cap
  else
    Printf.printf "coverage: exhaustive — every survival subset of every crash point explored.\n";
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  match report.Check.violations with
  | [] -> 0
  | vs ->
      Printf.printf "\n%d VIOLATION(S):\n" (List.length vs);
      List.iter (fun v -> Format.printf "  %a@." Check.pp_violation v) vs;
      1

let cmd =
  let doc =
    "Exhaustively model-check the Tinca commit protocol's crash space: every pmem event of a \
     deterministic workload is taken as a crash point, and at each one every survival subset \
     of the torn (dirtied-but-unfenced) cache lines is recovered and audited."
  in
  let commits =
    Arg.(value & opt int 6 & info [ "commits" ] ~docv:"N" ~doc:"Transactions in the workload.")
  in
  let seed =
    Arg.(value & opt int Check.default_config.Check.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Workload RNG seed.")
  in
  let universe =
    Arg.(value & opt int Check.default_config.Check.universe
         & info [ "universe" ] ~docv:"N" ~doc:"Disk blocks the workload touches.")
  in
  let ring_slots =
    Arg.(value & opt int Check.default_config.Check.ring_slots
         & info [ "ring-slots" ] ~docv:"N" ~doc:"Ring buffer slots.")
  in
  let pmem_kb =
    Arg.(value & opt int (Check.default_config.Check.pmem_bytes / 1024)
         & info [ "pmem-kb" ] ~docv:"KB" ~doc:"NVM size in KiB (small forces evictions).")
  in
  let cap =
    Arg.(value & opt int Check.default_config.Check.mask_cap
         & info [ "cap" ] ~docv:"N"
             ~doc:"Max survival subsets per crash point before falling back to seeded sampling.")
  in
  let sample_seed =
    Arg.(value & opt int Check.default_config.Check.sample_seed
         & info [ "sample-seed" ] ~docv:"SEED" ~doc:"Seed for the capped-sampling fallback.")
  in
  let from =
    Arg.(value & opt int 1
         & info [ "from" ] ~docv:"K" ~doc:"First crash point (1-based), for sub-range sweeps.")
  in
  let stride =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S" ~doc:"Explore every S-th crash point.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log per-crash-point detail.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress line on stderr.") in
  let info = Cmd.info "tinca_check" ~doc in
  Cmd.v info
    Term.(
      const run $ commits $ seed $ universe $ ring_slots $ pmem_kb $ cap $ sample_seed $ from
      $ stride $ verbose $ quiet)

let () = exit (Cmd.eval' cmd)
