bin/tinca_check.ml: Arg Cmd Cmdliner Format List Logs Printf Term Tinca_checker Tinca_util Unix
