bin/tinca_check.mli:
