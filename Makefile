# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint lint-update check-crash check-crash-budget check-spec check-psan check-obs check-shard check-group check-page check-flight ci bench bench-json experiments examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis (tinca-lint, DESIGN.md §9): pmem encapsulation, fence
# discipline, domain-readiness inventory, error discipline, .mli
# coverage.  Fails on any finding not in lint.baseline (and on stale
# baseline entries); every baseline entry carries a justification.
lint:
	dune exec bin/tinca_lint.exe -- --root . --baseline lint.baseline

# Rewrite lint.baseline from the current findings, preserving existing
# justifications; new entries get a TODO placeholder you must fill in.
lint-update:
	dune exec bin/tinca_lint.exe -- --root . --baseline lint.baseline --update

# Exhaustive crash-space model check of the commit protocol: every pmem
# event of the default 6-commit workload is a crash point; at each one,
# every survival subset of the torn cache lines is recovered and audited
# (see `tinca_check --help` for budget/seed/workload flags).
check-crash:
	dune exec bin/tinca_check.exe

# The budgeted flavour of check-crash that gates ci: a 3-commit workload
# with a 64-subset cap (any cap shortfall is reported, never silent).
check-crash-budget:
	dune exec bin/tinca_check.exe -- -q --commits 3 --cap 64

# Executable-spec refinement gate: drive the pure journal spec and a
# real Tinca in lockstep at 1, 2 and 4 shards (observational equivalence
# after every command), judge every crash-recovered state by spec
# refinement, and self-validate by planting commit-path mutations that
# must be caught with small shrunk reproducers.  Budgeted by seed count
# and the crash-state cap/stride; coverage is printed per shard count.
check-spec:
	dune exec bin/tinca_check.exe -- --lockstep --lockstep-seeds 3 --lockstep-len 80 --cap 16 --stride 5 -q

# Persistence sanitizer: run the Tinca (incl. crash + recovery), Classic
# (JBD2 + Flashcache) and raw-Flashcache stacks with the flush/fence
# sanitizer attached; reports ordering violations and per-call-site
# redundant-flush counts.
check-psan:
	dune exec bin/tinca_check.exe -- --psan --commits 200 --universe 160

# Observability gate: export a span trace of an 8-block-commit workload,
# validate the Chrome trace_event JSON (monotonic timestamps, balanced
# B/E nesting), pin the per-span fence attribution to the persistence
# budget (stage B = 1 sfence, commit <= 6) and bound the disabled-mode
# tracing overhead at 2% of commit wall time.
check-obs:
	dune exec bin/tinca_bench.exe -- check-obs

# Sharding gate: a budgeted crash-space sweep and a sanitizer pass on a
# 4-shard cache (covering crashes between per-shard Head advances and on
# either side of the cross-shard seal), then the N=1 equivalence pin
# against BENCH_commit.json plus the scaling sanity check.
check-shard:
	dune exec bin/tinca_check.exe -- -q --commits 2 --cap 48 --shards 4 --pmem-kb 256
	dune exec bin/tinca_check.exe -- --psan --commits 100 --universe 160 --shards 4
	dune exec bin/tinca_bench.exe -- check-shard

# Group-commit gate (ISSUE 8): the sanitizer pass with an async
# batch-scoped phase (commit_async streams drained under one fence
# sequence per batch), then tinca_bench's three-property verdict — the
# window=0 async path is media-, cost- and fence-identical to the
# synchronous pipeline, sfences/commit < 1 at >= 8 streams, and p99
# ack-to-durable latency stays within the configured window.  (The
# lockstep side — gen_async equivalence, grouped crash refinement and
# the planted Drop_durable_notify fault — already runs in check-spec.)
check-group:
	dune exec bin/tinca_check.exe -- --psan --commits 120 --universe 160 --group-window 400000
	dune exec bin/tinca_bench.exe -- check-group

# Commit-scheme gate (ISSUE 10): tinca_bench's five-property verdict —
# paging's fence budget flat in transaction size (2 sfences/commit at
# any size), the commit_scheme/commit_pipeline config shim media- and
# cost-identical on the logging path, a budgeted paging crash-space
# sweep and lockstep spec refinement at N=1 and N=4, and a psan-clean
# paging workload — then a sanitizer pass and a denser standalone
# paging sweep through tinca_check.
check-page:
	dune exec bin/tinca_bench.exe -- check-page
	dune exec bin/tinca_check.exe -- --psan --scheme paging --commits 150 --universe 160 --shards 2
	dune exec bin/tinca_check.exe -- -q --scheme paging --commits 3 --cap 32 --stride 3

# Flight-recorder gate (ISSUE 9): tinca_bench's five-property verdict —
# zero added fences and <= 2% aggregate commit overhead on
# fig_commit_batch's stream, a recorder-on group workload psan-clean at
# N=1 and N=4, the crash sweep's recovery-semantics pin (flight replay
# on/off recovers identical logical state) with the dossier agreeing
# with the acked-durability oracle at every explored state, and the
# planted Drop_durable_notify fault convicted by the dossier alone —
# then a denser standalone sweep at N=1 and N=4.
check-flight:
	dune exec bin/tinca_bench.exe -- check-flight
	dune exec bin/tinca_check.exe -- --flight --stride 9 -q
	dune exec bin/tinca_check.exe -- --flight --stride 13 --shards 4 -q

# Everything a gate should run: build, unit tests, the lint, the budgeted
# crash-space sweep, the spec-refinement gate, the sanitizer pass, the
# observability gate, the commit-protocol benchmark artifact, the
# sharding gate, the group-commit gate and the commit-scheme gate.  (The crash sweep used to
# hide as an unnamed recipe line here — as a prerequisite it is now
# visible in `make -n ci`, runnable on its own, and not silently
# skipped when a prerequisite fails earlier in the recipe.)
ci: build test lint check-crash-budget check-spec check-psan check-obs bench-json check-shard check-group check-page check-flight

# Full paper reproduction + Bechamel micro-benchmarks.
bench:
	dune exec bench/main.exe

# Machine-readable commit-protocol benchmark (sfences, flush write-backs
# and simulated ns per commit across pipeline x flush instruction x txn
# size, plus trace-replay throughput per stack).
bench-json:
	dune exec bin/tinca_bench.exe -- bench-json --out BENCH_commit.json

# Just the paper's tables and figures (see `tinca_bench list`).
experiments:
	dune exec bin/tinca_bench.exe -- run all

examples:
	dune exec examples/quickstart.exe
	dune exec examples/protocol_walkthrough.exe
	dune exec examples/kvstore.exe
	dune exec examples/crash_torture.exe
	dune exec examples/cluster_demo.exe
	dune exec examples/fileserver_compare.exe

clean:
	dune clean
