(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper (the simulated
   experiments of the registry), printing the same rows/series the paper
   reports alongside the paper's numbers.

   Part 2 runs Bechamel wall-clock micro-benchmarks of the hot code paths
   behind each table/figure — one Test.make per experiment — plus the
   core-library primitives. *)

open Bechamel
open Toolkit
module Registry = Tinca_harness.Registry
module Stacks = Tinca_stacks.Stacks
module Cache = Tinca_core.Cache
module Entry = Tinca_core.Entry
module Fc = Tinca_flashcache.Flashcache
module Journal = Tinca_jbd2.Journal
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Lru = Tinca_cachelib.Lru
open Tinca_sim

(* --- part 1: the paper's tables and figures --- *)

let run_experiments () =
  print_endline "==============================================================";
  print_endline " Part 1: reproduction of the paper's tables and figures";
  print_endline "==============================================================\n";
  List.iter (fun e -> print_string (Registry.run_experiment e); print_newline ()) Registry.all

(* --- part 2: bechamel micro-benchmarks --- *)

let mk_env ?(nvm = 8 * 1024 * 1024) () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:65536 ~block_size:4096 in
  (pmem, disk, clock, metrics)

let block = Bytes.make 4096 'b'

(* table1/table2: table rendering. *)
let bench_tables =
  Test.make ~name:"table1+2: render"
    (Staged.stage (fun () ->
         ignore (Tinca_util.Tabular.render (Latency.table1 ()));
         ignore (Tinca_util.Tabular.render (Tinca_workloads.Catalogue.table2 ()))))

(* fig3/fig4: the Classic write path — a journalled commit through
   Flashcache (data + synchronous metadata). *)
let bench_classic_commit =
  let pmem, disk, clock, metrics = mk_env () in
  let fc = Fc.create ~config:Fc.default_config ~pmem ~disk ~clock ~metrics in
  let io =
    { Tinca_blockdev.Block_io.block_size = 4096; nblocks = 65536;
      read_block = (fun b -> Fc.read fc b); write_block = (fun b d -> Fc.write fc b d) }
  in
  let j =
    Journal.format ~config:{ Journal.start = 61440; len = 4096; checkpoint_threshold = 0.25 }
      ~io ~metrics ()
  in
  let n = ref 0 in
  Test.make ~name:"fig3/4: classic journalled commit (2 blocks)"
    (Staged.stage (fun () ->
         incr n;
         let h = Journal.init_txn j in
         Journal.stage h (!n mod 4096) block;
         Journal.stage h (4096 + (!n mod 4096)) block;
         Journal.commit h))

(* fig7: Tinca's transactional write path. *)
let bench_tinca_commit =
  let pmem, disk, clock, metrics = mk_env () in
  let cache = Cache.format ~config:Cache.default_config ~pmem ~disk ~clock ~metrics in
  let n = ref 0 in
  Test.make ~name:"fig7: tinca commit (2 blocks, COW)"
    (Staged.stage (fun () ->
         incr n;
         let h = Cache.Txn.init cache in
         Cache.Txn.add h (!n mod 512) block;
         Cache.Txn.add h (512 + (!n mod 512)) block;
         Cache.Txn.commit h))

(* fig8: one TPC-C transaction over a live Tinca stack. *)
let bench_tpcc_txn =
  let env = Stacks.make_env ~nvm_bytes:(8 * 1024 * 1024) ~disk_blocks:65536 () in
  let stack = Stacks.tinca env in
  let fs =
    Tinca_fs.Fs.format
      ~config:{ Tinca_fs.Fs.default_config with ninodes = 256; journal_len = 256 }
      stack.Stacks.backend
  in
  let ops = Tinca_workloads.Ops.of_fs fs in
  let cfg = { Tinca_workloads.Tpcc.default with warehouses = 4; users = 4; txns = 1 } in
  Tinca_workloads.Tpcc.prealloc cfg ops;
  Test.make ~name:"fig8: one tpcc transaction on tinca"
    (Staged.stage (fun () -> ignore (Tinca_workloads.Tpcc.run cfg ops)))

(* fig10: one replicated chunk through the HDFS-like pipeline. *)
let bench_hdfs_chunk =
  let nodes =
    Array.init 4 (fun id ->
        Tinca_cluster.Node.make ~id
          ~config:
            { Tinca_cluster.Node.default_config with nvm_bytes = 4 * 1024 * 1024;
              disk_blocks = 16384 }
          Tinca_cluster.Node.Tinca_node)
  in
  let hdfs = Tinca_cluster.Hdfs.create ~replicas:3 nodes in
  let n = ref 0 in
  Test.make ~name:"fig10: hdfs chunk write (3 replicas)"
    (Staged.stage (fun () ->
         incr n;
         Tinca_cluster.Hdfs.write_chunk hdfs (Printf.sprintf "c%d" (!n mod 64)) 65536))

(* fig11: one replicated file op through the GlusterFS-like client. *)
let bench_gluster_op =
  let nodes =
    Array.init 4 (fun id ->
        Tinca_cluster.Node.make ~id
          ~config:
            { Tinca_cluster.Node.default_config with nvm_bytes = 4 * 1024 * 1024;
              disk_blocks = 16384 }
          Tinca_cluster.Node.Tinca_node)
  in
  let g = Tinca_cluster.Gluster.create ~replicas:2 nodes in
  let ops = Tinca_cluster.Gluster.ops g in
  let n = ref 0 in
  ops.Tinca_workloads.Ops.create "bench";
  Test.make ~name:"fig11: gluster replicated 16KB write"
    (Staged.stage (fun () ->
         incr n;
         ops.Tinca_workloads.Ops.pwrite "bench" ~off:(!n mod 64 * 16384) ~len:16384;
         ops.Tinca_workloads.Ops.fsync ()))

(* fig12: the persistence primitive per NVM technology. *)
let bench_persist tech =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech ~size:(1 lsl 20) () in
  let n = ref 0 in
  Test.make ~name:(Printf.sprintf "fig12: persist 4KB (%s)" (Latency.nvm_tech_name tech))
    (Staged.stage (fun () ->
         incr n;
         let off = !n mod 128 * 4096 in
         Pmem.write pmem ~off block;
         Pmem.persist pmem ~off ~len:4096))

(* fig13: transaction-size accounting (multi-block commit). *)
let bench_big_commit =
  let pmem, disk, clock, metrics = mk_env () in
  let cache = Cache.format ~config:Cache.default_config ~pmem ~disk ~clock ~metrics in
  let n = ref 0 in
  Test.make ~name:"fig13: tinca commit (32 blocks)"
    (Staged.stage (fun () ->
         incr n;
         let h = Cache.Txn.init cache in
         for i = 0 to 31 do
           Cache.Txn.add h (((!n * 31) mod 997) + (i * 7)) block
         done;
         Cache.Txn.commit h))

(* recoverability: a full recovery scan (entry table + ring). *)
let bench_recovery =
  let pmem, disk, clock, metrics = mk_env ~nvm:(2 * 1024 * 1024) () in
  let cache = Cache.format ~config:Cache.default_config ~pmem ~disk ~clock ~metrics in
  for i = 0 to 200 do
    Cache.write_direct cache i block
  done;
  Test.make ~name:"recoverability: cache recovery scan"
    (Staged.stage (fun () -> ignore (Cache.recover ~pmem ~disk ~clock ~metrics ())))

(* core primitives *)
let bench_entry_codec =
  let e =
    { Entry.valid = true; role = Entry.Log; modified = true; disk_blkno = 123456;
      prev = Some 42; cur = 77 }
  in
  Test.make ~name:"core: entry encode+decode"
    (Staged.stage (fun () -> ignore (Entry.decode (Entry.encode e))))

let bench_lru =
  let lru = Lru.create () in
  let nodes = Array.init 1024 (fun i -> Lru.push_mru lru i) in
  let n = ref 0 in
  Test.make ~name:"core: lru touch"
    (Staged.stage (fun () ->
         incr n;
         Lru.touch lru nodes.(!n land 1023)))

let run_benchmarks () =
  print_endline "==============================================================";
  print_endline " Part 2: Bechamel wall-clock micro-benchmarks (host machine)";
  print_endline "==============================================================";
  let tests =
    [
      bench_tables;
      bench_classic_commit;
      bench_tinca_commit;
      bench_tpcc_txn;
      bench_hdfs_chunk;
      bench_gluster_op;
      bench_persist Latency.Pcm;
      bench_persist Latency.Nvdimm;
      bench_persist Latency.Stt_ram;
      bench_big_commit;
      bench_recovery;
      bench_entry_codec;
      bench_lru;
    ]
  in
  let grouped = Test.make_grouped ~name:"tinca" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ ns ] -> Printf.printf "  %-55s %12.1f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-55s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  run_experiments ();
  run_benchmarks ();
  print_endline "\nbench: done."
