(* HDR-style log-bucketed histogram: SUB sub-buckets per power of two.
   A value v = m * 2^e (m in [1,2)) lands in bucket
   (e + EXP_MIN_NEG) * SUB + floor((m - 1) * SUB); exponents are clamped
   to [-EXP_MIN_NEG, EXP_MAX], which spans ~1.5e-5 ns to ~9e18 ns —
   far beyond anything the simulation produces — so recording never
   fails and never allocates. *)

let sub = 16
let exp_min_neg = 16 (* smallest representable exponent = -16 *)
let exp_max = 63
let nbuckets = (exp_min_neg + exp_max + 1) * sub

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max : float;
  mutable min : float;
}

let create () = { counts = Array.make nbuckets 0; total = 0; sum = 0.0; max = 0.0; min = infinity }

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* frexp: v = m * 2^e, m in [0.5, 1) -> normalize to [1, 2). *)
    let exp = e - 1 and m = m *. 2.0 in
    let exp = if exp < -exp_min_neg then -exp_min_neg else if exp > exp_max then exp_max else exp in
    let s = int_of_float ((m -. 1.0) *. float_of_int sub) in
    let s = if s < 0 then 0 else if s >= sub then sub - 1 else s in
    ((exp + exp_min_neg) * sub) + s
  end

(* Geometric midpoint of a bucket, the value {!percentile} reports. *)
let rep_of idx =
  let exp = (idx / sub) - exp_min_neg and s = idx mod sub in
  let base = Float.ldexp 1.0 exp in
  let width = base /. float_of_int sub in
  (base +. (float_of_int s *. width)) +. (width /. 2.0)

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v;
  if v < t.min then t.min <- v

let count t = t.total
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_value t = t.max
let min_value t = if t.total = 0 then 0.0 else t.min

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 and idx = ref 0 and found = ref (nbuckets - 1) in
    (try
       while !idx < nbuckets do
         cum := !cum + t.counts.(!idx);
         if !cum >= rank then begin
           found := !idx;
           raise Exit
         end;
         incr idx
       done
     with Exit -> ());
    let v = rep_of !found in
    if v > t.max then t.max else if v < t.min then t.min else v
  end

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let summary t =
  {
    count = t.total;
    mean = mean t;
    p50 = percentile t 50.0;
    p90 = percentile t 90.0;
    p99 = percentile t 99.0;
    p999 = percentile t 99.9;
    max = t.max;
  }

let merge ~dst ~src =
  Array.iteri (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max;
  if src.min < dst.min then dst.min <- src.min

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max <- 0.0;
  t.min <- infinity

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.0f p50=%.0f p90=%.0f p99=%.0f p999=%.0f max=%.0f" t.total
    (mean t) (percentile t 50.0) (percentile t 90.0) (percentile t 99.0) (percentile t 99.9)
    t.max

let to_string t = Format.asprintf "%a" pp t
