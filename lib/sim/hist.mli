(** Log-bucketed (HDR-style) latency histogram.

    Fixed-size, allocation-free recording: a value lands in one of
    [16] sub-buckets per power of two, so any recorded value is
    reproduced by {!percentile} with at most ~6% relative error while
    the whole histogram is a single small int array (no samples are
    retained, unlike {!Tinca_util.Histogram}).  Values are simulated
    nanoseconds by convention, but any non-negative float works. *)

type t

val create : unit -> t

(** Record one value.  Negative values are clamped to 0. *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float

(** Exact largest / smallest recorded value (0 when empty). *)
val max_value : t -> float

val min_value : t -> float

(** [percentile t p] for [p] in [0, 100]: smallest bucket-representative
    value covering [p]% of the recorded population, clamped into
    [[min_value, max_value]].  0 when empty. *)
val percentile : t -> float -> float

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

val summary : t -> summary

(** Merge [src] into [dst] (e.g. per-node histograms into a cluster
    total). *)
val merge : dst:t -> src:t -> unit

val reset : t -> unit

(** One-line rendering: count, mean and the percentile ladder. *)
val pp : Format.formatter -> t -> unit

(** [pp] as a string, for tables and the /proc-style stats surface. *)
val to_string : t -> string
