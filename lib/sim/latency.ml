type nvm_tech = Nvdimm | Stt_ram | Pcm | Reram

let nvm_tech_name = function
  | Nvdimm -> "NVDIMM"
  | Stt_ram -> "STT-RAM"
  | Pcm -> "PCM"
  | Reram -> "ReRAM"

let all_techs = [ Nvdimm; Stt_ram; Pcm; Reram ]

type nvm = {
  read_ns : float;
  write_ns : float;
  clflush_ns : float;
  sfence_ns : float;
  store_ns : float;
}

(* DRAM-speed base: ~60 ns load, ~15 ns store per line; clflush ~100 ns of
   instruction + writeback overhead; sfence ~20 ns (measured orders of
   magnitude from Dulloor et al., EuroSys'14, the paper's ref [7]).  The
   technology delay is *added* on top, exactly like the prototype adds
   write/read delays to the NVDIMM. *)
let base_read_ns = 60.0
let base_write_ns = 15.0
let sfence_ns = 20.0
let store_ns = 10.0

type flush_instr = Clflush | Clflushopt | Clwb

let flush_instr_name = function
  | Clflush -> "clflush"
  | Clflushopt -> "clflushopt"
  | Clwb -> "clwb"

(* clflush serializes against other clflushes (~100 ns each end to end);
   clflushopt pipelines (~40 ns of issue overhead per line); clwb is
   clflushopt without the invalidation (~30 ns). *)
let flush_instr_ns = function Clflush -> 100.0 | Clflushopt -> 40.0 | Clwb -> 30.0

(* Incremental cost of each additional line in a back-to-back flush
   sequence.  clflush is implicitly ordered against other clflushes, so
   every line pays the full end-to-end latency; clflushopt/clwb overlap —
   after the first line only the issue slot (~5 ns, one store-port uop)
   is exposed, the write-backs drain concurrently. *)
let flush_issue_ns = function Clflush -> 100.0 | Clflushopt -> 5.0 | Clwb -> 5.0

let flush_batch_ns instr n =
  if n <= 0 then 0.0
  else flush_instr_ns instr +. (flush_issue_ns instr *. float_of_int (n - 1))

let added_delays = function
  | Nvdimm -> (0.0, 0.0) (* read, write *)
  | Stt_ram -> (50.0, 50.0)
  | Pcm -> (50.0, 180.0)
  | Reram -> (50.0, 200.0)

let nvm_of_tech ?(flush_instr = Clflush) tech =
  let added_read, added_write = added_delays tech in
  {
    read_ns = base_read_ns +. added_read;
    write_ns = base_write_ns +. added_write;
    clflush_ns = flush_instr_ns flush_instr;
    sfence_ns;
    store_ns;
  }

type disk_kind = Ssd | Hdd

let disk_kind_name = function Ssd -> "SSD" | Hdd -> "HDD"

type disk = {
  kind : disk_kind;
  read_block_ns : float;
  write_block_ns : float;
  seq_block_ns : float;
  seek_ns : float;
}

(* SATA SSD: ~60/80 us random 4 KB read/write, ~500 MB/s sequential.
   7200 rpm HDD: ~4 ms seek + 4.17 ms half rotation, ~150 MB/s transfer. *)
let disk_of_kind = function
  | Ssd ->
      { kind = Ssd; read_block_ns = 60_000.0; write_block_ns = 80_000.0;
        seq_block_ns = 8_000.0; seek_ns = 0.0 }
  | Hdd ->
      { kind = Hdd; read_block_ns = 27_000.0; write_block_ns = 27_000.0;
        seq_block_ns = 27_000.0; seek_ns = 8_170_000.0 }

type cpu = {
  op_overhead_ns : float;
  memcpy_4k_ns : float;
  hash_lookup_ns : float;
  lock_ns : float;
}

let default_cpu =
  { op_overhead_ns = 2_000.0; memcpy_4k_ns = 400.0; hash_lookup_ns = 100.0; lock_ns = 50.0 }

type network = { rtt_ns : float; bytes_per_ns : float }

(* 10 GbE: ~10 us one-way software latency, 1.25 GB/s. *)
let default_network = { rtt_ns = 10_000.0; bytes_per_ns = 1.25 }

let transfer_ns net bytes = net.rtt_ns +. (float_of_int bytes /. net.bytes_per_ns)

let table1 () =
  let open Tinca_util in
  let t =
    Tabular.create ~title:"Table 1: Typical DRAM and NVM Technologies"
      [ "Parameter"; "DRAM"; "STT-RAM"; "ReRAM"; "PCM" ]
  in
  Tabular.add_row t [ "Density"; "1x"; "1x"; "2x-4x"; "2x-4x" ];
  Tabular.add_row t [ "Read Latency"; "60ns"; "100ns"; "200-300ns"; "200-300ns" ];
  Tabular.add_row t [ "Write Speed"; "~1GB/s"; "~1GB/s"; "~140MB/s"; "~100MB/s" ];
  Tabular.add_row t [ "Write Endurance"; "1e16"; "1e16"; "1e6"; "1e6-1e8" ];
  Tabular.add_row t
    [ "Simulated line write (+delay)"; "15ns (+0)"; "65ns (+50)"; "215ns (+200)"; "195ns (+180)" ];
  t
