type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; hists = Hashtbl.create 16 }

let incr t name ~by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot is a hashtable copy of the counters, so [since] is one
   O(1) lookup and [diff] is O(current counters) — not the O(n*m)
   association-list scans the first implementation paid on every
   normalized-per-op metric of the harness. *)
type snapshot = (string, int) Hashtbl.t

let snapshot t : snapshot =
  let s = Hashtbl.create (Hashtbl.length t.counters) in
  Hashtbl.iter (fun k v -> Hashtbl.replace s k !v) t.counters;
  s

let diff t (snap : snapshot) =
  to_list t
  |> List.filter_map (fun (k, v) ->
         let before = match Hashtbl.find_opt snap k with Some x -> x | None -> 0 in
         if v - before <> 0 then Some (k, v - before) else None)

let since t (snap : snapshot) name =
  let before = match Hashtbl.find_opt snap name with Some x -> x | None -> 0 in
  get t name - before

(* --- latency histograms (observability layer) -------------------------- *)

let observe t name v =
  match Hashtbl.find_opt t.hists name with
  | Some h -> Hist.add h v
  | None ->
      let h = Hist.create () in
      Hist.add h v;
      Hashtbl.add t.hists name h

let hist t name = Hashtbl.find_opt t.hists name

let hists t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.hists

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %d@." k v) (to_list t);
  List.iter (fun (k, h) -> Format.fprintf ppf "%s : %a@." k Hist.pp h) (hists t)

(* --- naming convention -------------------------------------------------- *)

(* Counter and histogram names are dotted paths: at least two segments,
   each starting with a lowercase letter followed by [a-z0-9_]
   ("pmem.clflush", "tinca.commit.blocks", "lat.pwrite").  Enforced by
   the test suite over every registry a workload run populates, not by
   [incr] itself (tests legitimately use throwaway local names). *)
let valid_name name =
  let seg_ok s =
    String.length s > 0
    && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
    && String.for_all (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false) s
  in
  let segs = String.split_on_char '.' name in
  List.length segs >= 2 && List.for_all seg_ok segs
