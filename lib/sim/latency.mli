(** Latency model: NVM technologies (paper Table 1 and §5.1), disk media
    and fixed software costs.

    The paper's prototype emulates PCM by adding 180 ns write / 50 ns read
    delays to an NVDIMM, and STT-RAM with 50 ns / 50 ns; the NVDIMM itself
    runs at DRAM speed.  We reproduce exactly those knobs. *)

type nvm_tech =
  | Nvdimm   (** DRAM-speed NVDIMM (the prototype's base medium) *)
  | Stt_ram  (** +50 ns write, +50 ns read per cache line *)
  | Pcm      (** +180 ns write, +50 ns read per cache line (default) *)
  | Reram    (** PCM-like; included for Table 1 completeness *)

val nvm_tech_name : nvm_tech -> string
val all_techs : nvm_tech list

type nvm = {
  read_ns : float;    (** per 64 B cache-line load from the medium *)
  write_ns : float;   (** per 64 B cache-line write into the medium (charged at flush) *)
  clflush_ns : float; (** instruction overhead of one cache-line flush *)
  sfence_ns : float;  (** cost of one sfence *)
  store_ns : float;   (** CPU store into the (volatile) cache, per line *)
}

(** Cache-line flush instruction (paper §2.1).  The prototype's Xeon only
    supports [Clflush]; [Clflushopt] drops the implicit serialization
    between consecutive flushes, and [Clwb] additionally leaves the line
    valid in the CPU cache.  Modelled as decreasing per-line instruction
    overhead. *)
type flush_instr = Clflush | Clflushopt | Clwb

val flush_instr_name : flush_instr -> string

(** Per-line instruction overhead of a flush instruction. *)
val flush_instr_ns : flush_instr -> float

(** Incremental cost of each additional line in a back-to-back flush
    sequence.  [Clflush] is implicitly serializing, so this equals
    {!flush_instr_ns}; [Clflushopt]/[Clwb] pipeline and expose only the
    issue slot (~5 ns) per extra line. *)
val flush_issue_ns : flush_instr -> float

(** [flush_batch_ns instr n] — instruction time of [n] back-to-back
    flushes: [flush_instr_ns + (n-1) * flush_issue_ns] (0 for [n <= 0]).
    For [Clflush] this degenerates to [n * flush_instr_ns]. *)
val flush_batch_ns : flush_instr -> int -> float

(** Cache-line latencies for a technology (with [Clflush] overhead by
    default; pass [flush_instr] to model the newer instructions). *)
val nvm_of_tech : ?flush_instr:flush_instr -> nvm_tech -> nvm

type disk_kind = Ssd | Hdd

val disk_kind_name : disk_kind -> string

type disk = {
  kind : disk_kind;
  read_block_ns : float;      (** 4 KB random read *)
  write_block_ns : float;     (** 4 KB random write *)
  seq_block_ns : float;       (** 4 KB sequential transfer *)
  seek_ns : float;            (** average positioning cost (HDD only) *)
}

val disk_of_kind : disk_kind -> disk

type cpu = {
  op_overhead_ns : float;     (** per storage op: syscall + block-layer software path *)
  memcpy_4k_ns : float;       (** one 4 KB DRAM memcpy *)
  hash_lookup_ns : float;     (** DRAM index lookup *)
  lock_ns : float;            (** lock acquire/release pair *)
}

val default_cpu : cpu

type network = {
  rtt_ns : float;             (** one-way latency, 10 GbE *)
  bytes_per_ns : float;       (** bandwidth, 10 GbE = 1.25 GB/s *)
}

val default_network : network

(** [transfer_ns net bytes] — one-way time to move [bytes]. *)
val transfer_ns : network -> int -> float

(** Render paper Table 1 (typical DRAM and NVM technologies). *)
val table1 : unit -> Tinca_util.Tabular.t
