(** Named-counter registry with snapshot/diff.

    Every simulated component (pmem, disks, caches, journals, file system,
    cluster nodes) registers its counters here so the experiment harness
    can snapshot before a workload, diff after it, and normalize per
    operation — the paper's "normalized quantity of clflush / disk
    writes" methodology (§5.1). *)

type t

val create : unit -> t

(** [incr t name ~by] bumps a counter, creating it at 0 if missing. *)
val incr : t -> string -> by:int -> unit

val get : t -> string -> int

(** All counters, sorted by name. *)
val to_list : t -> (string * int) list

type snapshot

(** O(counters); the snapshot is hashtable-backed, so {!since} is O(1)
    per counter and {!diff} is linear in the current registry. *)
val snapshot : t -> snapshot

(** [diff t snap] — per-counter increments since [snap]. *)
val diff : t -> snapshot -> (string * int) list

(** [since t snap name] — increment of one counter since [snap]. *)
val since : t -> snapshot -> string -> int

(** {1 Latency histograms}

    Log-bucketed distributions (see {!Hist}) live in the same registry
    so per-op-type latencies ride the same snapshot/report plumbing as
    the counters.  By convention names are ["lat.<op>"] in simulated
    nanoseconds. *)

(** [observe t name v] records [v] into the named histogram, creating
    it on first use. *)
val observe : t -> string -> float -> unit

val hist : t -> string -> Hist.t option

(** All histograms, sorted by name. *)
val hists : t -> (string * Hist.t) list

val reset : t -> unit
val pp : Format.formatter -> t -> unit

(** The dotted naming convention every counter and histogram a library
    emits must satisfy: two or more [.]-separated segments, each
    matching [[a-z][a-z0-9_]*] — e.g. ["pmem.clflush"],
    ["tinca.commit.blocks"].  Checked by the test suite over the
    registries real workloads populate. *)
val valid_name : string -> bool
