(* The checked-in debt ledger: existing findings stay visible here (one
   line each, with a mandatory justification) while anything not listed
   fails the lint.  Matching is by (rule, file, token), not line number,
   so unrelated edits to a file do not invalidate its entries. *)

type entry = { rule : Rules.rule; file : string; token : string; justification : string }

type t = entry list

let header =
  [
    "# tinca-lint baseline — accepted findings, one per line:";
    "#   <rule> <file> <token> \"<justification>\"";
    "# A finding not listed here fails `make lint`; a listed entry with no";
    "# matching finding is stale and also fails (delete it).  Justifications";
    "# are mandatory and must not be empty.";
  ]

let is_comment line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

(* `R2 lib/x.ml token "justification"` — justification is everything
   between the first and last double quote; embedded quotes are not
   supported (rejected at emit time too). *)
let parse_line lineno line =
  match String.index_opt line '"' with
  | None -> Error (Printf.sprintf "line %d: missing quoted justification" lineno)
  | Some q ->
      let head = String.trim (String.sub line 0 q) in
      let close = String.rindex line '"' in
      if close = q then Error (Printf.sprintf "line %d: unterminated justification" lineno)
      else if String.trim (String.sub line (close + 1) (String.length line - close - 1)) <> ""
      then Error (Printf.sprintf "line %d: trailing garbage after justification" lineno)
      else
        let justification = String.sub line (q + 1) (close - q - 1) in
        if String.trim justification = "" then
          Error (Printf.sprintf "line %d: empty justification — every baseline entry must say why"
                   lineno)
        else
          match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
          | [ rule; file; token ] -> (
              match Rules.rule_of_string rule with
              | Some rule -> Ok { rule; file; token; justification }
              | None -> Error (Printf.sprintf "line %d: unknown rule %S" lineno rule))
          | _ ->
              Error
                (Printf.sprintf "line %d: expected `<rule> <file> <token> \"...\"`, got %S" lineno
                   line)

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if is_comment line then go (lineno + 1) acc rest
        else (
          match parse_line lineno line with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error _ as e -> e)
  in
  go 1 [] lines

let compare_entry a b =
  match compare (Rules.rule_name a.rule) (Rules.rule_name b.rule) with
  | 0 -> ( match compare a.file b.file with 0 -> compare a.token b.token | c -> c)
  | c -> c

let emit entries =
  let body =
    List.sort_uniq compare_entry entries
    |> List.map (fun e ->
           if String.contains e.justification '"' then
             invalid_arg "Baseline.emit: justification must not contain double quotes";
           Printf.sprintf "%s %s %s \"%s\"" (Rules.rule_name e.rule) e.file e.token
             (String.trim e.justification))
  in
  String.concat "\n" (header @ body) ^ "\n"

let covers entries (f : Rules.finding) =
  List.find_opt (fun e -> e.rule = f.rule && e.file = f.file && e.token = f.token) entries

(* Split a run's findings against the ledger: [fresh] findings have no
   entry; [stale] entries matched no finding this run. *)
let reconcile entries findings =
  let fresh = List.filter (fun f -> covers entries f = None) findings in
  let stale =
    List.filter
      (fun e ->
        not
          (List.exists
             (fun (f : Rules.finding) -> e.rule = f.rule && e.file = f.file && e.token = f.token)
             findings))
      entries
  in
  (fresh, stale)
