(** The five pmem-discipline lint rules, as purely syntactic passes over
    a parsed implementation ({!Parsetree.structure}).  No typing
    environment is consulted; each rule's approximations are documented
    in DESIGN.md §9.

    - {b R1 domain-readiness} — every module-toplevel mutable value
      ([ref], [Hashtbl.create], [Buffer.create], arrays/bytes, literals
      of in-file mutable record types) is shared state once shards run
      on real domains; the full finding list {e is} the shared-state
      inventory ROADMAP item 1 starts from.
    - {b R2 pmem encapsulation} — [Pmem] mutation/persistence calls
      ([write*], [atomic_write*], [fill], [clflush], [flush_lines],
      [sfence], [persist]) are allowed only under {!pmem_allowlist};
      everyone else must go through [Cache]/[Ring].
    - {b R3 fence discipline} — per toplevel function of a pmem-touching
      module: any path that mutates pmem and falls off the end must
      reach flush + fence (or [persist]); otherwise the binding needs
      [\[@@pmem.defer "why"\]], and every deferral is reported.
    - {b R4 error discipline} — [Obj.magic] and catch-all
      [try ... with _ ->] everywhere; [failwith] / bare [assert false]
      additionally in [lib/core] + [lib/tinca.ml] (result discipline:
      [Tinca.error] exists).
    - {b R5 interface coverage} — every [lib/] module has an [.mli]. *)

type rule = R1 | R2 | R3 | R4 | R5

val rule_name : rule -> string
val rule_of_string : string -> rule option

(** One-line human description of what the rule enforces. *)
val rule_title : rule -> string

type finding = {
  rule : rule;
  file : string;  (** repo-relative path, forward slashes *)
  line : int;
  token : string;
      (** stable baseline-matching key: the flagged identifier, function
          name, Pmem operation or violation class — line numbers are
          reported but not matched on, so unrelated edits do not
          invalidate the baseline *)
  message : string;
}

type deferred = {
  d_file : string;
  d_line : int;
  d_fn : string;
  d_reason : string;  (** the [\[@@pmem.defer "..."\]] justification *)
}

(** Modules allowed to call [Pmem] mutation primitives directly
    (directory prefixes). *)
val pmem_allowlist : string list

(** Run R1–R4 on one parsed implementation.  [file] must be the
    repo-relative path (rule scoping switches on it).  Returns the
    findings plus R3's deferred fence obligations. *)
val check_impl : file:string -> Parsetree.structure -> finding list * deferred list

(** R5 over the scanned file lists (both repo-relative). *)
val r5 : ml_files:string list -> mli_files:string list -> finding list
