(* Orchestration: scan lib/ for sources, parse each with compiler-libs,
   run the rules, and reconcile against the baseline.  Kept free of any
   tinca dependency so the linter never depends on the code it judges. *)

type report = {
  files : string list;
  findings : Rules.finding list;
  deferred : Rules.deferred list;
  errors : (string * string) list;
}

(* --- parsing ------------------------------------------------------------ *)

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception Syntaxerr.Error _ ->
      Error (Printf.sprintf "%s: syntax error (not valid OCaml)" file)
  | exception Lexer.Error (_, loc) ->
      Error (Printf.sprintf "%s:%d: lexer error" file loc.Location.loc_start.Lexing.pos_lnum)

let check_string ~file src =
  match parse_string ~file src with
  | Ok str -> Ok (Rules.check_impl ~file str)
  | Error _ as e -> e

(* --- filesystem scan ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Repo-relative path with forward slashes, assuming [path] extends
   [root]. *)
let relativize ~root path =
  let prefix = (if root = "" || root = "." then "." else root) ^ "/" in
  let n = String.length prefix in
  if String.length path >= n && String.sub path 0 n = prefix then
    String.sub path n (String.length path - n)
  else path

let rec scan_dir dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then acc @ scan_dir path
          else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli" then
            acc @ [ path ]
          else acc)
        [] entries
  | exception Sys_error _ -> []

(* --- the run ------------------------------------------------------------ *)

let run ~root =
  let sources = scan_dir (Filename.concat root "lib") |> List.map (relativize ~root) in
  let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") sources in
  let mli_files = List.filter (fun f -> Filename.check_suffix f ".mli") sources in
  let findings, deferred, errors =
    List.fold_left
      (fun (fs, ds, es) file ->
        match check_string ~file (read_file (Filename.concat root file)) with
        | Ok (f, d) -> (fs @ f, ds @ d, es)
        | Error msg -> (fs, ds, es @ [ (file, msg) ]))
      ([], [], []) ml_files
  in
  let findings = findings @ Rules.r5 ~ml_files ~mli_files in
  { files = ml_files; findings; deferred; errors }

let inventory report = List.filter (fun (f : Rules.finding) -> f.rule = Rules.R1) report.findings

(* --- rendering ---------------------------------------------------------- *)

let pp_finding (f : Rules.finding) =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line (Rules.rule_name f.rule) f.message

let pp_deferred (d : Rules.deferred) =
  Printf.sprintf "%s:%d: %s — %s" d.d_file d.d_line d.d_fn d.d_reason

(* Current findings folded into baseline entries, keeping the ledger's
   existing justifications and marking new ones for a human to fill in. *)
let to_baseline ~old report =
  List.map
    (fun (f : Rules.finding) ->
      match Baseline.covers old f with
      | Some e -> e
      | None ->
          {
            Baseline.rule = f.rule;
            file = f.file;
            token = f.token;
            justification = "TODO: justify this suppression";
          })
    report.findings
