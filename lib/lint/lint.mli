(** `Tinca_lint` entry points: scan [lib/] under a repo root, parse every
    implementation with compiler-libs, run {!Rules} R1–R5 and reconcile
    against the checked-in {!Baseline}.  Deliberately free of any tinca
    dependency: the linter must never depend on the code it judges. *)

type report = {
  files : string list;  (** .ml files scanned, repo-relative *)
  findings : Rules.finding list;  (** R1–R5, baselined or not *)
  deferred : Rules.deferred list;  (** R3 [\[@@pmem.defer\]] obligations *)
  errors : (string * string) list;  (** (file, parse error) *)
}

(** Parse one implementation from a string ([file] only labels
    locations and drives rule scoping). *)
val parse_string : file:string -> string -> (Parsetree.structure, string) result

(** Parse + run R1–R4 — the fixture-suite entry point. *)
val check_string :
  file:string -> string -> (Rules.finding list * Rules.deferred list, string) result

(** Scan [root/lib] recursively and lint every [.ml] (R5 additionally
    sees the [.mli] list). *)
val run : root:string -> report

(** The R1 subset of the findings: the module-toplevel shared-mutable-
    state inventory the domains migration (ROADMAP item 1) starts from. *)
val inventory : report -> Rules.finding list

val pp_finding : Rules.finding -> string
val pp_deferred : Rules.deferred -> string

(** Fold the run's findings into baseline entries, keeping [old]'s
    justifications for entries that already exist and a
    ["TODO: justify this suppression"] placeholder for new ones (which a
    human must edit — the placeholder is deliberately conspicuous). *)
val to_baseline : old:Baseline.t -> report -> Baseline.t
