(** The checked-in debt ledger ([lint.baseline] at the repo root):
    existing findings stay visible — one line each, with a mandatory
    non-empty justification — while any finding not listed fails the
    lint, and any entry matching no current finding is stale and fails
    too.  Matching is by (rule, file, token), never by line number, so
    unrelated edits do not invalidate entries. *)

type entry = {
  rule : Rules.rule;
  file : string;
  token : string;
  justification : string;  (** why this finding is accepted; never empty *)
}

type t = entry list

(** Parse the baseline file format: [#]-comments and blank lines are
    skipped; every other line must be
    [<rule> <file> <token> "<justification>"].  Fails on unknown rules,
    malformed lines and {e empty} justifications. *)
val parse : string -> (t, string) result

(** Canonical serialization: header comment + entries sorted by
    (rule, file, token).  [parse (emit t)] returns exactly
    [List.sort_uniq] of [t] — the round-trip pinned by [test_lint].
    Raises [Invalid_argument] on justifications containing a double quote. *)
val emit : t -> string

(** The entry accepting this finding, if any. *)
val covers : t -> Rules.finding -> entry option

(** [reconcile t findings] = [(fresh, stale)]: findings with no entry,
    and entries with no finding this run.  Both must be empty for the
    lint to pass. *)
val reconcile : t -> Rules.finding list -> Rules.finding list * t
