(* The five lint rules, each a purely syntactic pass over one parsed
   implementation (compiler-libs Parsetree).  No typing information is
   available, so every rule errs on the side of "flag it and let the
   baseline carry a justification" — see DESIGN.md §9 for the precise
   approximations each rule makes. *)

open Parsetree

type rule = R1 | R2 | R3 | R4 | R5

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

let rule_of_string = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | _ -> None

let rule_title = function
  | R1 -> "domain-readiness: module-toplevel mutable state"
  | R2 -> "pmem encapsulation: direct Pmem mutation outside the core"
  | R3 -> "fence discipline: pmem mutation not followed by flush+fence"
  | R4 -> "error discipline: Obj.magic / failwith / assert false / catch-all"
  | R5 -> "interface coverage: lib module without an .mli"

type finding = {
  rule : rule;
  file : string;  (* repo-relative, forward slashes *)
  line : int;
  token : string;  (* baseline-matching key: ident / function / symbol *)
  message : string;
}

type deferred = {
  d_file : string;
  d_line : int;
  d_fn : string;
  d_reason : string;  (* the [@@pmem.defer "..."] justification *)
}

(* --- path classification ------------------------------------------------ *)

let under dir file =
  String.length file >= String.length dir && String.sub file 0 (String.length dir) = dir

(* R2: the only modules allowed to touch Pmem's mutation/persistence
   surface directly; everything else must go through Cache/Ring. *)
let pmem_allowlist = [ "lib/core/"; "lib/jbd2/"; "lib/check/"; "lib/pmem/" ]

let r2_allowed file = List.exists (fun d -> under d file) pmem_allowlist

(* R3 judges every pmem-touching module except the device model itself
   and the checkers (which replay/shadow events rather than owning a
   persistence protocol). *)
let r3_applies file = (not (under "lib/pmem/" file)) && not (under "lib/check/" file)

(* R4's failwith / assert-false ban applies to the result-disciplined
   core ([Tinca.error] exists); Obj.magic and catch-alls are banned
   everywhere. *)
let r4_strict file = under "lib/core/" file || file = "lib/tinca.ml"

(* --- Parsetree helpers -------------------------------------------------- *)

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let line_of e = line_of_loc e.pexp_loc

(* Longident.flatten raises on [Lapply]; this one never does. *)
let rec flat acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flat (s :: acc) l
  | Longident.Lapply (_, l) -> flat acc l

let ident_path e =
  match e.pexp_desc with Pexp_ident { Location.txt; _ } -> Some (flat [] txt) | _ -> None

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { Location.txt; _ } -> [ txt ]
  | Ppat_alias (p, { Location.txt; _ }) -> txt :: pat_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_open (_, p)
  | Ppat_lazy p
  | Ppat_exception p ->
      pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | _ -> []

let binding_name vb = match pat_vars vb.pvb_pat with n :: _ -> n | [] -> "_"

(* Walk every module-toplevel value binding, descending into nested
   [module M = struct ... end] (and functor bodies / constrained module
   expressions) but never into expressions. *)
let rec walk_bindings ~on_vb str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter on_vb vbs
      | Pstr_module mb -> walk_mod ~on_vb mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> walk_mod ~on_vb mb.pmb_expr) mbs
      | Pstr_include { pincl_mod = me; _ } -> walk_mod ~on_vb me
      | _ -> ())
    str

and walk_mod ~on_vb me =
  match me.pmod_desc with
  | Pmod_structure s -> walk_bindings ~on_vb s
  | Pmod_constraint (me, _) | Pmod_functor (_, me) -> walk_mod ~on_vb me
  | _ -> ()

(* --- R1: domain-readiness ----------------------------------------------- *)

(* Function/lazy boundaries stop the scan: [let f x = ref x] allocates
   per call, not at module init.  Mutable-record literals are detected
   via the record type declarations of the *same file* (a literal
   mentioning a field that some in-file record type declares [mutable]);
   cross-module mutable records need the type environment we do not
   have. *)

let mutable_call path =
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref cell"
  | [ "Hashtbl"; ("create" | "copy" | "of_seq") ] -> Some "Hashtbl"
  | [ "Buffer"; "create" ] -> Some "Buffer"
  | [ "Queue"; "create" ] -> Some "Queue"
  | [ "Stack"; "create" ] -> Some "Stack"
  | [ "Atomic"; "make" ] -> Some "Atomic"
  | [ "Array"; ("make" | "create" | "init" | "make_matrix" | "copy" | "of_list" | "sub" | "append" | "concat") ]
    ->
      Some "array"
  | [ "Bytes"; ("create" | "make" | "init" | "of_string" | "copy" | "sub") ] -> Some "bytes"
  | _ -> None

let mutable_field_names str =
  let acc = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun d ->
              match d.ptype_kind with
              | Ptype_record labels ->
                  if List.exists (fun l -> l.pld_mutable = Mutable) labels then
                    List.iter (fun l -> acc := l.pld_name.Location.txt :: !acc) labels
              | _ -> ())
            decls
      | _ -> ())
    str;
  !acc

let mutable_ctors ~mutable_fields e =
  let acc = ref [] in
  let record_is_mutable fields =
    List.exists
      (fun ({ Location.txt; _ }, _) ->
        match flat [] txt with [ n ] -> List.mem n mutable_fields | _ -> false)
      fields
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          match ex.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | Pexp_apply ({ pexp_desc = Pexp_ident { Location.txt; _ }; _ }, args) ->
              (match mutable_call (flat [] txt) with
              | Some what -> acc := (line_of ex, what) :: !acc
              | None -> ());
              List.iter (fun (_, a) -> self.expr self a) args
          | Pexp_array _ ->
              acc := (line_of ex, "array literal") :: !acc;
              Ast_iterator.default_iterator.expr self ex
          | Pexp_record (fields, _) when record_is_mutable fields ->
              acc := (line_of ex, "mutable-record literal") :: !acc;
              Ast_iterator.default_iterator.expr self ex
          | _ -> Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  List.rev !acc

let r1 ~file str =
  let mutable_fields = mutable_field_names str in
  let acc = ref [] in
  walk_bindings str ~on_vb:(fun vb ->
      let name = binding_name vb in
      List.iter
        (fun (line, what) ->
          acc :=
            {
              rule = R1;
              file;
              line;
              token = name;
              message =
                Printf.sprintf "toplevel mutable state: `%s` holds a %s (shared across domains)"
                  name what;
            }
            :: !acc)
        (mutable_ctors ~mutable_fields vb.pvb_expr));
  List.rev !acc

(* --- R2 + R4: expression-level scans ------------------------------------ *)

type pmem_op = Mutate | Flush | Fence | Persist_op

let pmem_op_of_path = function
  | [ "Pmem"; fn ] | [ "Tinca_pmem"; "Pmem"; fn ] -> (
      match fn with
      | "write" | "write_sub" | "writev" | "fill" | "atomic_write8" | "atomic_write8_int"
      | "atomic_write16" ->
          Some (fn, Mutate)
      | "clflush" | "flush_lines" -> Some (fn, Flush)
      | "sfence" -> Some (fn, Fence)
      | "persist" -> Some (fn, Persist_op)
      | _ -> None)
  | _ -> None

let expr_findings ~file str =
  let acc = ref [] in
  let add rule line token message = acc := { rule; file; line; token; message } :: !acc in
  let on_ident e path =
    (match pmem_op_of_path path with
    | Some (fn, _) when not (r2_allowed file) ->
        add R2 (line_of e) fn
          (Printf.sprintf
             "direct Pmem.%s outside %s — go through Cache/Ring" fn
             (String.concat "," pmem_allowlist))
    | _ -> ());
    match path with
    | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] ->
        add R4 (line_of e) "obj_magic" "Obj.magic is forbidden"
    | [ "failwith" ] | [ "Stdlib"; "failwith" ] when r4_strict file ->
        add R4 (line_of e) "failwith"
          "failwith in the result-disciplined core — use a typed error (Tinca.error) or a \
           dedicated exception"
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { Location.txt; _ } -> on_ident e (flat [] txt)
          | Pexp_assert { pexp_desc = Pexp_construct ({ Location.txt = Lident "false"; _ }, None); _ }
            when r4_strict file ->
              add R4 (line_of e) "assert_false"
                "bare `assert false` in the result-disciplined core — use a typed error or a \
                 dedicated exception"
          | Pexp_try (_, cases) ->
              List.iter
                (fun c ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | (Ppat_any | Ppat_alias ({ ppat_desc = Ppat_any; _ }, _)), None ->
                      add R4 (line_of_loc c.pc_lhs.ppat_loc) "catch_all"
                        "catch-all `try ... with _ ->` swallows every exception (including \
                         Out_of_memory and Stack_overflow) — match the specific exceptions"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.rev !acc

(* --- R3: fence discipline ----------------------------------------------- *)

(* Intraprocedural, syntactic: walk each toplevel function body tracking
   a three-point persistence state —

     Clean    no unpersisted pmem mutation on this path
     Dirty    a mutation with no subsequent flush
     Flushed  flushed but not yet fenced

   joined across branches worst-first (Dirty > Flushed > Clean).
   [Pmem.persist] returns to Clean (its sfence also orders any earlier
   flushes); a lone [sfence] only clears Flushed (it does not write back
   unflushed lines).  Approximations: a lambda's body is accounted where
   the lambda appears (right for the [List.iter (fun ...) ...; fence]
   idiom); loops join {0, 1} executions; a path ending in
   raise/failwith/invalid_arg is exempt.  A function that exits non-Clean
   needs [@@pmem.defer "why"], and every such deferral is reported. *)

type pstate = Clean | Flushed | Dirty

let pstate_name = function Clean -> "clean" | Flushed -> "flushed-unfenced" | Dirty -> "unflushed"

let join a b =
  match (a, b) with
  | Dirty, _ | _, Dirty -> Dirty
  | Flushed, _ | _, Flushed -> Flushed
  | Clean, Clean -> Clean

let is_raise_path = function
  | [ "raise" ] | [ "raise_notrace" ] | [ "failwith" ] | [ "invalid_arg" ]
  | [ "Stdlib"; ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] ->
      true
  | _ -> false

let rec eval st e =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_extension _ | Pexp_pack _ | Pexp_object _ | Pexp_new _
  | Pexp_unreachable ->
      st
  | Pexp_let (_, vbs, body) ->
      let st = List.fold_left (fun st vb -> eval st vb.pvb_expr) st vbs in
      eval st body
  | Pexp_fun (_, default, _, body) ->
      let st = match default with Some d -> eval st d | None -> st in
      eval st body
  | Pexp_function cases -> eval_cases st cases
  | Pexp_apply (f, args) ->
      if (match ident_path f with Some p -> is_raise_path p | None -> false) then Clean
      else
        let st = eval st f in
        let st = List.fold_left (fun st (_, a) -> eval st a) st args in (
        match ident_path f with
        | Some p -> (
            match pmem_op_of_path p with
            | Some (_, Mutate) -> Dirty
            | Some (_, Flush) -> ( match st with Dirty -> Flushed | s -> s)
            | Some (_, Fence) -> ( match st with Flushed -> Clean | s -> s)
            | Some (_, Persist_op) -> Clean
            | None -> st)
        | None -> st)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> eval_cases (eval st scrut) cases
  | Pexp_tuple es | Pexp_array es -> List.fold_left eval st es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> eval st a | None -> st)
  | Pexp_record (fields, base) ->
      let st = match base with Some b -> eval st b | None -> st in
      List.fold_left (fun st (_, fe) -> eval st fe) st fields
  | Pexp_field (e, _) -> eval st e
  | Pexp_setfield (a, _, b) -> eval (eval st a) b
  | Pexp_ifthenelse (c, t, e) ->
      let st = eval st c in
      join (eval st t) (match e with Some e -> eval st e | None -> st)
  | Pexp_sequence (a, b) -> eval (eval st a) b
  | Pexp_while (c, body) ->
      let st = eval st c in
      join st (eval st body)
  | Pexp_for (_, lo, hi, _, body) ->
      let st = eval (eval st lo) hi in
      join st (eval st body)
  | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _)
  | Pexp_poly (e, _)
  | Pexp_newtype (_, e)
  | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e)
  | Pexp_letexception (_, e)
  | Pexp_lazy e
  | Pexp_send (e, _)
  | Pexp_setinstvar (_, e) ->
      eval st e
  | Pexp_assert e -> (
      match e.pexp_desc with
      | Pexp_construct ({ Location.txt = Lident "false"; _ }, None) -> Clean
      | _ -> eval st e)
  | Pexp_override fields -> List.fold_left (fun st (_, fe) -> eval st fe) st fields
  | Pexp_letop { let_; ands; body } ->
      let st = eval st let_.pbop_exp in
      let st = List.fold_left (fun st a -> eval st a.pbop_exp) st ands in
      eval st body

and eval_cases st cases =
  match cases with
  | [] -> st
  | _ ->
      List.map
        (fun c ->
          let st = match c.pc_guard with Some g -> eval st g | None -> st in
          eval st c.pc_rhs)
        cases
      |> List.fold_left join Clean

let defer_attr attrs =
  List.find_map
    (fun a ->
      if a.attr_name.Location.txt = "pmem.defer" then
        Some
          (match a.attr_payload with
          | PStr
              [ { pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _); _ } ]
            ->
              s
          | _ -> "")
      else None)
    attrs

let r3 ~file str =
  if not (r3_applies file) then ([], [])
  else begin
    let findings = ref [] and deferred = ref [] in
    walk_bindings str ~on_vb:(fun vb ->
        let fn = binding_name vb in
        let line = line_of_loc vb.pvb_loc in
        let st = eval Clean vb.pvb_expr in
        match (st, defer_attr vb.pvb_attributes) with
        | Clean, None -> ()
        | Clean, Some _ ->
            findings :=
              {
                rule = R3;
                file;
                line;
                token = fn;
                message =
                  Printf.sprintf
                    "`%s` carries [@@pmem.defer] but every path already persists — drop the \
                     stale attribute"
                    fn;
              }
              :: !findings
        | (Dirty | Flushed), Some reason when String.trim reason <> "" ->
            deferred := { d_file = file; d_line = line; d_fn = fn; d_reason = reason } :: !deferred
        | (Dirty | Flushed), Some _ ->
            findings :=
              {
                rule = R3;
                file;
                line;
                token = fn;
                message =
                  Printf.sprintf
                    "`%s` defers its fence obligation but [@@pmem.defer] carries no \
                     justification string"
                    fn;
              }
              :: !findings
        | (Dirty | Flushed), None ->
            findings :=
              {
                rule = R3;
                file;
                line;
                token = fn;
                message =
                  Printf.sprintf
                    "`%s` can exit with %s pmem writes — flush_lines/clflush + sfence (or \
                     persist) before returning, or annotate [@@pmem.defer \"why\"]"
                    fn (pstate_name st);
              }
              :: !findings);
    (List.rev !findings, List.rev !deferred)
  end

(* --- R5: interface coverage --------------------------------------------- *)

let r5 ~ml_files ~mli_files =
  let has_mli f = List.mem (f ^ "i") mli_files in
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" && not (has_mli f) then
        Some
          {
            rule = R5;
            file = f;
            line = 1;
            token = Filename.remove_extension (Filename.basename f);
            message =
              Printf.sprintf "module `%s` has no .mli — every lib/ module must declare its \
                              public surface"
                (String.capitalize_ascii (Filename.remove_extension (Filename.basename f)));
          }
      else None)
    ml_files

(* --- per-file entry point ----------------------------------------------- *)

let check_impl ~file str =
  let f1 = r1 ~file str in
  let f24 = expr_findings ~file str in
  let f3, deferred = r3 ~file str in
  (f1 @ f24 @ f3, deferred)
