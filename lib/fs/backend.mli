(** The pluggable storage backend of the file system.

    The file system batches its modified blocks (data and metadata
    alike: the paper's data-consistency level journals both) into
    transactions and hands them to one of these records:

    - the {e Tinca} backend maps [commit_blocks] to
      [tinca_init_txn]/[tinca_commit] — no journal, no checkpoint;
    - the {e Classic} backend maps it to a JBD2 transaction over a
      Flashcache-managed NVM cache — commit writes the journal copies,
      checkpointing later writes the home copies (the double write);
    - the {e no-journal} backend writes blocks straight through the
      cache (crash-inconsistent; used by the motivation experiments);
    - the {e UBJ} backend commits in place in an NVM buffer cache
      (§5.4.4 comparison).

    Constructors live in [Tinca_stacks] to keep this library free of
    cache dependencies. *)

type t = {
  name : string;  (** stack label used in experiment tables *)
  block_size : int;
  nblocks : int;
  read_block : int -> bytes;
      (** newest version of a block (cache overlay included) *)
  commit_blocks : (int * bytes) list -> unit;
      (** atomically and durably apply a set of block writes *)
  write_blocks : (int * bytes) list -> unit;
      (** apply block writes with no atomicity/durability promise *)
  sync : unit -> unit;  (** drain the cache to disk (decommissioning) *)
}
