(** Post-crash forensic dossiers built from flight-recorder survivors
    (ISSUE 9).

    After recovery scans each shard's flight ring ({!Flight.scan}),
    [build] reconstructs the pre-crash story:

    - a {e batch ledger}: every commit batch the records mention, with
      its drain cause, member transactions, and status — [`Durable]
      (its [Tail_persist] record survived), [`In_flight] (newest
      activity on its shard: the crash window, legitimately lost), or
      [`Dead_acked] (a {e later} batch's durable drain/tail evidence
      survived on the same shard, proving the committer acked this batch
      and moved on, yet this batch's own durability record never reached
      the medium — the {!Shard} fault [Drop_durable_notify] made
      visible without a model checker);
    - an {e acked-vs-survived reconciliation}: for each dead batch's
      transactions, the recovered cache contents are probed against the
      payload checksum recorded at seal time, naming the acked tickets
      whose writes demonstrably died;
    - a {e timeline}: the surviving records re-exported as Chrome
      [trace_event] JSON (one track per shard, instant events), the
      same schema {!Trace} emits and {!Jsonv.validate_trace} checks.

    The inference is sound for the serial group committer: batch [B+1]'s
    drain record is flushed under batch [B+1]'s own stage-A fence, which
    a correct committer only reaches after batch [B]'s Tail fence — so a
    surviving later drain without [B]'s tail record convicts the
    committer of acknowledging [B] without making it durable. *)

type status = [ `Durable | `In_flight | `Dead_acked ]

(** A transaction sealed into a batch, as recorded at seal time. *)
type txn = {
  x_shard : int;
  ticket : int;  (** facade ticket id; -1 for sync-path commits *)
  blocks : int;
  first_blkno : int;
  payload_crc : int;  (** CRC-32 of the first block's payload at seal *)
  seal_ns : int;
  confirmed_missing : bool option;
      (** probe result for dead txns: [Some true] = the recovered block
          does not carry the sealed payload; [None] = not probed *)
}

type batch = {
  b_shard : int;
  id : int;
  cause : Flight.cause option;  (** [None] when the drain record died *)
  txns : txn list;
  drained_ns : int option;
  durable_ns : int option;
  status : status;
}

type t = {
  nshards : int;
  torn : int;  (** torn (checksum-failed) records across all rings *)
  record_count : int;
  records : (int * int * Flight.event) list;  (** (shard, seq, event) *)
  batches : batch list;
  recovery : (int * Flight.event) list;  (** recovery-time records *)
  timeline_json : string;
}

(** [build ~shards ?probe ()] — [shards.(i)] is shard [i]'s scan result
    [(records, torn)].  [probe ~shard ~blkno ~crc] asks the recovered
    cache whether block [blkno] currently carries a payload with
    checksum [crc] (used to confirm dead writes); omit it to leave
    [confirmed_missing = None]. *)
val build :
  shards:((int * Flight.event) list * int) array ->
  ?probe:(shard:int -> blkno:int -> crc:int -> bool) ->
  unit ->
  t

(** The reconciliation verdict: [`Dead_acked] lists [(shard, batch id,
    ticket)] for every transaction of every dead batch. *)
val verdict : t -> [ `Clean | `Dead_acked of (int * int * int) list ]

(** Human-readable dossier: batch ledger, verdict, torn-record count,
    recovery decisions. *)
val render : t -> string
