(** /proc-style text rendering for stats snapshots.

    The [tinca_bench stats] command and [fig_obs] experiment print
    sectioned key/value dumps modeled on Linux's [/proc] files:

    {v
    [cache]
    cached_blocks        : 412
    dirty_ratio          : 0.37
    v} *)

type section = { title : string; entries : (string * string) list }

val section : string -> (string * string) list -> section

(** Render sections as ["[title]"] headers followed by aligned
    [key : value] lines. *)
val render : section list -> string
