(* Crash dossiers from flight-recorder survivors.  See forensics.mli for
   the inference argument; this file is pure bookkeeping over the
   decoded records. *)

type status = [ `Durable | `In_flight | `Dead_acked ]

type txn = {
  x_shard : int;
  ticket : int;
  blocks : int;
  first_blkno : int;
  payload_crc : int;
  seal_ns : int;
  confirmed_missing : bool option;
}

type batch = {
  b_shard : int;
  id : int;
  cause : Flight.cause option;
  txns : txn list;
  drained_ns : int option;
  durable_ns : int option;
  status : status;
}

type t = {
  nshards : int;
  torn : int;
  record_count : int;
  records : (int * int * Flight.event) list;
  batches : batch list;
  recovery : (int * Flight.event) list;
  timeline_json : string;
}

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace_event JSON: one track (tid) per shard, every surviving
   record an instant event at its recorded simulated timestamp.  Same
   object format Trace.export_json emits, so Jsonv.validate_trace and
   chrome://tracing both accept it. *)
let timeline records nshards =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  for s = 0 to nshards - 1 do
    if s > 0 then Buffer.add_string buf ",\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": %d, \"args\": \
          {\"name\": \"flight-shard%d\"}}"
         s s)
  done;
  List.iter
    (fun (shard, seq, (e : Flight.event)) ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"ph\": \"i\", \"name\": \"%s\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"s\": \
            \"t\", \"args\": {\"seq\": \"%d\", \"cause\": \"%s\", \"batch\": \"%d\", \"a\": \
            \"%d\", \"b\": \"%d\", \"c\": \"%d\", \"d\": \"%d\"}}"
           (json_escape (Flight.kind_name e.Flight.kind))
           shard
           (float_of_int e.Flight.t_ns /. 1000.0)
           seq
           (json_escape (Flight.cause_name e.Flight.cause))
           e.Flight.batch e.Flight.a e.Flight.b e.Flight.c e.Flight.d))
    records;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let build ~shards ?probe () =
  let nshards = Array.length shards in
  let torn = Array.fold_left (fun acc (_, t) -> acc + t) 0 shards in
  (* Merge to (shard, seq, event), globally ordered by timestamp then
     sequence so the timeline reads chronologically across tracks. *)
  let records =
    Array.to_list shards
    |> List.concat_map (fun i ->
           List.map (fun (seq, e) -> (e.Flight.shard, seq, e)) (fst i))
    |> List.sort (fun (_, s1, (e1 : Flight.event)) (_, s2, (e2 : Flight.event)) ->
           compare (e1.Flight.t_ns, s1) (e2.Flight.t_ns, s2))
  in
  let recovery =
    List.filter_map
      (fun (_, seq, (e : Flight.event)) ->
        match e.Flight.kind with
        | Flight.Recovery_start | Flight.Recovery_decision -> Some (seq, e)
        | _ -> None)
      records
  in
  (* Per-shard batch ledger.  A batch exists if any pre-crash record
     names it; ids are per-shard monotone (the shard's drain counter). *)
  let batches = ref [] in
  for s = 0 to nshards - 1 do
    let recs, _ = shards.(s) in
    let pre_crash =
      List.filter
        (fun (_, (e : Flight.event)) ->
          match e.Flight.kind with
          | Flight.Recovery_start | Flight.Recovery_decision -> false
          | _ -> true)
        recs
    in
    let ids =
      List.filter_map
        (fun (_, (e : Flight.event)) -> if e.Flight.batch >= 0 then Some e.Flight.batch else None)
        pre_crash
      |> List.sort_uniq compare
    in
    (* The newest batch on this shard whose drain or tail evidence
       survived: anything older without a tail record was provably
       passed over while acked. *)
    let newest_progress =
      List.fold_left
        (fun acc (_, (e : Flight.event)) ->
          match e.Flight.kind with
          | Flight.Batch_drain | Flight.Tail_persist -> max acc e.Flight.batch
          | _ -> acc)
        (-1) pre_crash
    in
    List.iter
      (fun id ->
        let of_kind k =
          List.find_opt
            (fun (_, (e : Flight.event)) -> e.Flight.kind = k && e.Flight.batch = id)
            pre_crash
        in
        let drain = of_kind Flight.Batch_drain in
        let tail = of_kind Flight.Tail_persist in
        let txns =
          List.filter_map
            (fun (_, (e : Flight.event)) ->
              if e.Flight.kind = Flight.Txn_seal && e.Flight.batch = id then
                Some
                  {
                    x_shard = s;
                    ticket = e.Flight.a - 1;
                    blocks = e.Flight.b;
                    first_blkno = e.Flight.c;
                    payload_crc = e.Flight.d;
                    seal_ns = e.Flight.t_ns;
                    confirmed_missing = None;
                  }
              else None)
            pre_crash
        in
        let status =
          if tail <> None then `Durable
          else if id < newest_progress then `Dead_acked
          else `In_flight
        in
        let txns =
          match (status, probe) with
          | `Dead_acked, Some probe ->
              List.map
                (fun tx ->
                  {
                    tx with
                    confirmed_missing =
                      Some (not (probe ~shard:s ~blkno:tx.first_blkno ~crc:tx.payload_crc));
                  })
                txns
          | _ -> txns
        in
        batches :=
          {
            b_shard = s;
            id;
            cause = Option.map (fun (_, (e : Flight.event)) -> e.Flight.cause) drain;
            txns;
            drained_ns = Option.map (fun (_, (e : Flight.event)) -> e.Flight.t_ns) drain;
            durable_ns = Option.map (fun (_, (e : Flight.event)) -> e.Flight.t_ns) tail;
            status;
          }
          :: !batches)
      ids
  done;
  let batches = List.sort (fun b1 b2 -> compare (b1.b_shard, b1.id) (b2.b_shard, b2.id)) !batches in
  {
    nshards;
    torn;
    record_count = List.length records;
    records;
    batches;
    recovery;
    timeline_json = timeline records nshards;
  }

let verdict t =
  let dead =
    List.concat_map
      (fun b ->
        if b.status <> `Dead_acked then []
        else
          match b.txns with
          | [] -> [ (b.b_shard, b.id, -1) ]
          | txns -> List.map (fun tx -> (b.b_shard, b.id, tx.ticket)) txns)
      t.batches
  in
  if dead = [] then `Clean else `Dead_acked dead

let status_name = function
  | `Durable -> "durable"
  | `In_flight -> "in-flight at crash"
  | `Dead_acked -> "DEAD (acked, never durable)"

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "crash dossier: %d surviving records, %d torn, %d shard track(s)\n"
       t.record_count t.torn t.nshards);
  Buffer.add_string buf "batch ledger:\n";
  if t.batches = [] then Buffer.add_string buf "  (no batch activity recorded)\n";
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  shard %d batch %-4d cause=%-13s txns=%-3d %s\n" b.b_shard b.id
           (match b.cause with Some c -> Flight.cause_name c | None -> "?")
           (List.length b.txns) (status_name b.status));
      if b.status = `Dead_acked then
        List.iter
          (fun tx ->
            Buffer.add_string buf
              (Printf.sprintf
                 "    ticket %-4d %d block(s), first blkno %d, sealed at %d ns%s\n"
                 tx.ticket tx.blocks tx.first_blkno tx.seal_ns
                 (match tx.confirmed_missing with
                 | Some true -> " — payload confirmed missing from recovered cache"
                 | Some false -> " — payload coincidentally present"
                 | None -> "")))
          b.txns)
    t.batches;
  (match verdict t with
  | `Clean -> Buffer.add_string buf "verdict: clean — every acked batch survived\n"
  | `Dead_acked dead ->
      Buffer.add_string buf
        (Printf.sprintf "verdict: %d acked transaction(s) DIED before reaching the medium\n"
           (List.length dead)));
  if t.recovery <> [] then begin
    Buffer.add_string buf "recovery decisions:\n";
    List.iter
      (fun (_, (e : Flight.event)) ->
        match e.Flight.kind with
        | Flight.Recovery_start ->
            Buffer.add_string buf
              (Printf.sprintf "  shard %d: recovery start (head %d, tail %d, %d records seen)\n"
                 e.Flight.shard e.Flight.a e.Flight.b e.Flight.c)
        | Flight.Recovery_decision ->
            Buffer.add_string buf
              (Printf.sprintf "  shard %d: %s blkno %d\n" e.Flight.shard
                 (if e.Flight.a = 0 then "roll-forward replay of" else "revoke")
                 e.Flight.b)
        | _ -> ())
      t.recovery
  end;
  Buffer.contents buf
