(** Minimal JSON parser + Chrome [trace_event] schema validator.

    The toolchain has no JSON dependency, so [make check-obs] carries
    its own strict little parser: full JSON values (objects, arrays,
    strings with the common escapes, numbers, booleans, null), rejecting
    trailing garbage.  Built for validating the artifacts this repo
    emits (trace exports, BENCH_commit.json), not as a general library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

(** Object member lookup ([None] on non-objects too). *)
val member : string -> t -> t option

type trace_stats = {
  events : int;  (** B/E/i events (metadata excluded) *)
  tracks : int;
  max_depth : int;  (** deepest B/E nesting seen on any track *)
}

(** Validate a parsed document against the Chrome [trace_event] schema
    subset the tracer emits: a ["traceEvents"] array whose events carry
    [ph]/[name]/[pid]/[tid]/[ts]; per track, timestamps must be
    monotonically non-decreasing and B/E pairs properly nested and
    balanced.  Returns all problems found, not just the first. *)
val validate_trace : t -> (trace_stats, string list) result

(** [parse] + [validate_trace] over a file's contents. *)
val validate_trace_file : string -> (trace_stats, string list) result
