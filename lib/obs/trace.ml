module Clock = Tinca_sim.Clock

type done_span = {
  name : string;
  track : string;
  start_ns : float;
  dur_ns : float;
  self_ns : float;
  depth : int;
  attrs : (string * string) list;
  counters : (string * int) list;
}

type open_span = {
  sp_name : string;
  sp_tid : int;
  sp_clock : Clock.t;
  sp_start : float;
  sp_depth : int;
  mutable sp_attrs : (string * string) list; (* reversed *)
  mutable sp_counts : (string * int) list;
  mutable sp_child_ns : float;
}

type ev = {
  ev_ph : char; (* 'B' | 'E' | 'i' *)
  ev_name : string;
  ev_tid : int;
  ev_ts : float; (* simulated ns *)
  ev_args : (string * string) list;
}

type state = {
  mutable events : ev list; (* newest first *)
  mutable stack : open_span list; (* innermost first *)
  mutable dones : done_span list; (* newest first *)
  mutable unbalanced : int;
  mutable clocks : (Clock.t * int) list; (* physical clock -> tid *)
  mutable tid_names : (int * string) list;
  mutable next_tid : int;
}

(* Track display names survive enable/disable: components register their
   clocks at construction time, which may precede [enable]. *)
let registry : (Clock.t * string) list ref = ref []

let st : state option ref = ref None

let enabled () = match !st with None -> false | Some _ -> true

let fresh () =
  { events = []; stack = []; dones = []; unbalanced = 0; clocks = []; tid_names = [];
    next_tid = 1 }

let enable () = st := Some (fresh ())
let disable () = st := None
let reset () = if enabled () then st := Some (fresh ())

let name_track clock name =
  registry := (clock, name) :: List.filter (fun (c, _) -> c != clock) !registry

let registered_name clock =
  let rec find = function
    | [] -> None
    | (c, n) :: _ when c == clock -> Some n
    | _ :: rest -> find rest
  in
  find !registry

let tid_of s clock =
  let rec find = function
    | [] ->
        let tid = s.next_tid in
        s.next_tid <- tid + 1;
        s.clocks <- (clock, tid) :: s.clocks;
        let name =
          match registered_name clock with
          | Some n -> n
          | None -> "track-" ^ string_of_int tid
        in
        s.tid_names <- (tid, name) :: s.tid_names;
        tid
    | (c, tid) :: _ when c == clock -> tid
    | _ :: rest -> find rest
  in
  find s.clocks

let track_name s tid =
  match List.assoc_opt tid s.tid_names with Some n -> n | None -> "track-" ^ string_of_int tid

let begin_span ~clock name =
  match !st with
  | None -> ()
  | Some s ->
      let tid = tid_of s clock in
      let ts = Clock.now_ns clock in
      s.events <- { ev_ph = 'B'; ev_name = name; ev_tid = tid; ev_ts = ts; ev_args = [] } :: s.events;
      s.stack <-
        { sp_name = name; sp_tid = tid; sp_clock = clock; sp_start = ts;
          sp_depth = List.length s.stack; sp_attrs = []; sp_counts = []; sp_child_ns = 0.0 }
        :: s.stack

let rec bump counts k by =
  match counts with
  | [] -> [ (k, by) ]
  | (k', v) :: rest -> if String.equal k k' then (k', v + by) :: rest else (k', v) :: bump rest k by

let note name ~by =
  match !st with
  | None -> ()
  | Some s -> (
      match s.stack with
      | [] -> ()
      | sp :: _ -> sp.sp_counts <- bump sp.sp_counts name by)

let attr k v =
  match !st with
  | None -> ()
  | Some s -> (
      match s.stack with [] -> () | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs)

(* Close [sp]; the stack must already be popped past it so the parent
   (if any) is at the head for counter/self-time folding. *)
let close s sp =
  let ts = Clock.now_ns sp.sp_clock in
  let dur = ts -. sp.sp_start in
  (match s.stack with
  | parent :: _ ->
      parent.sp_child_ns <- parent.sp_child_ns +. dur;
      List.iter (fun (k, v) -> parent.sp_counts <- bump parent.sp_counts k v) sp.sp_counts
  | [] -> ());
  let counters = List.sort (fun (a, _) (b, _) -> String.compare a b) sp.sp_counts in
  let args =
    List.rev sp.sp_attrs @ List.map (fun (k, v) -> (k, string_of_int v)) counters
  in
  s.events <-
    { ev_ph = 'E'; ev_name = sp.sp_name; ev_tid = sp.sp_tid; ev_ts = ts; ev_args = args }
    :: s.events;
  s.dones <-
    { name = sp.sp_name; track = track_name s sp.sp_tid; start_ns = sp.sp_start; dur_ns = dur;
      self_ns = dur -. sp.sp_child_ns; depth = sp.sp_depth; attrs = List.rev sp.sp_attrs;
      counters }
    :: s.dones

let end_span name =
  match !st with
  | None -> ()
  | Some s -> (
      match s.stack with
      | [] -> s.unbalanced <- s.unbalanced + 1
      | top :: rest when String.equal top.sp_name name ->
          s.stack <- rest;
          close s top
      | stack ->
          if List.exists (fun sp -> String.equal sp.sp_name name) stack then begin
            (* Force-close the misnested inner spans, then the named one. *)
            let rec pop () =
              match s.stack with
              | [] -> ()
              | sp :: rest ->
                  s.stack <- rest;
                  if String.equal sp.sp_name name then close s sp
                  else begin
                    s.unbalanced <- s.unbalanced + 1;
                    close s sp;
                    pop ()
                  end
            in
            pop ()
          end
          else s.unbalanced <- s.unbalanced + 1)

let instant ~clock name =
  match !st with
  | None -> ()
  | Some s ->
      let tid = tid_of s clock in
      s.events <-
        { ev_ph = 'i'; ev_name = name; ev_tid = tid; ev_ts = Clock.now_ns clock; ev_args = [] }
        :: s.events

let open_spans () = match !st with None -> 0 | Some s -> List.length s.stack
let unbalanced () = match !st with None -> 0 | Some s -> s.unbalanced
let completed () = match !st with None -> [] | Some s -> List.rev s.dones

let find_spans name =
  List.filter (fun d -> String.equal d.name name) (completed ())

let counter d name = match List.assoc_opt name d.counters with Some v -> v | None -> 0

(* --- Chrome trace_event export ------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string buf "}"

let export_json () =
  match !st with
  | None -> "{\"traceEvents\": []}\n"
  | Some s ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\"traceEvents\": [\n";
      let first = ref true in
      let emit line =
        if not !first then Buffer.add_string buf ",\n";
        first := false;
        Buffer.add_string buf line
      in
      List.iter
        (fun (tid, name) ->
          emit
            (Printf.sprintf
               "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": %d, \
                \"args\": {\"name\": \"%s\"}}"
               tid (json_escape name)))
        (List.sort compare s.tid_names);
      List.iter
        (fun e ->
          let b = Buffer.create 128 in
          Buffer.add_string b
            (Printf.sprintf
               "  {\"ph\": \"%c\", \"name\": \"%s\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f"
               e.ev_ph (json_escape e.ev_name) e.ev_tid (e.ev_ts /. 1000.0));
          if e.ev_ph = 'i' then Buffer.add_string b ", \"s\": \"t\"";
          if e.ev_args <> [] then begin
            Buffer.add_string b ", \"args\": ";
            add_args b e.ev_args
          end;
          Buffer.add_string b "}";
          emit (Buffer.contents b))
        (List.rev s.events);
      Buffer.add_string buf "\n], \"displayTimeUnit\": \"ns\"}\n";
      Buffer.contents buf

let export_to_file path =
  let oc = open_out path in
  output_string oc (export_json ());
  close_out oc

(* --- flame summary ------------------------------------------------------ *)

let flame_rows () =
  let agg = Hashtbl.create 32 in
  List.iter
    (fun d ->
      let n, total, self, sf, wb =
        match Hashtbl.find_opt agg d.name with Some x -> x | None -> (0, 0.0, 0.0, 0, 0)
      in
      Hashtbl.replace agg d.name
        ( n + 1,
          total +. d.dur_ns,
          self +. d.self_ns,
          sf + counter d "pmem.sfence",
          wb + counter d "pmem.clflush_writebacks" ))
    (completed ());
  Hashtbl.fold (fun name (n, total, self, sf, wb) acc -> (name, n, total, self, sf, wb) :: acc)
    agg []
  |> List.sort (fun (_, _, a, _, _, _) (_, _, b, _, _, _) -> compare b a)

let flame () =
  let rows = flame_rows () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %12s %8s %8s\n" "span" "count" "total_us" "self_us"
       "sfence" "flushwb");
  List.iter
    (fun (name, n, total, self, sf, wb) ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %12.2f %12.2f %8d %8d\n" name n (total /. 1000.0)
           (self /. 1000.0) sf wb))
    rows;
  Buffer.contents buf
