(** Transaction-lifecycle span tracer.

    A global, process-wide tracer (the simulation is single-threaded)
    that is {e near-zero-cost when disabled}: every entry point first
    reads one ref cell and returns — no allocation, no clock read — so
    the instrumentation can stay compiled into every stack
    unconditionally (verified by the disabled-mode zero-allocation test
    and the [check-obs] overhead gate).

    When enabled, {!begin_span}/{!end_span} build a nesting span tree
    timestamped from the simulated {!Tinca_sim.Clock} of the component
    that owns the span.  Each distinct clock becomes one {e track}
    (Chrome: one [tid]); {!name_track} gives tracks stable display names
    ("tinca", "node0-classic", ...).  {!note} counters — fed by the
    {!Tinca_pmem.Pmem} event stream — accumulate on the innermost open
    span and fold into the parent when it closes, giving per-span
    fence/write-back attribution: the stage-B span of a Tinca commit
    carries exactly its own sfence count, and the whole-commit span the
    protocol's total.

    Exports: Chrome [trace_event] JSON ([chrome://tracing], Perfetto)
    and a text flame summary aggregated by span name. *)

(** {1 Lifecycle} *)

(** Start tracing (fresh state; previous spans and events are dropped). *)
val enable : unit -> unit

(** Stop tracing and drop all state.  Export before disabling. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Drop recorded spans/events but keep tracing enabled. *)
val reset : unit -> unit

(** {1 Recording} *)

(** Give the track of [clock] a display name (latest registration wins).
    Works before {!enable}; registrations persist across
    enable/disable cycles. *)
val name_track : Tinca_sim.Clock.t -> string -> unit

(** Open a span named [name], timestamped now on [clock]'s track. *)
val begin_span : clock:Tinca_sim.Clock.t -> string -> unit

(** Close the innermost open span named [name].  Closing out of order
    force-closes (and counts as unbalanced) any spans nested inside it;
    an end with no matching begin is counted and ignored. *)
val end_span : string -> unit

(** Attach a key:value attribute to the innermost open span. *)
val attr : string -> string -> unit

(** Bump a named counter on the innermost open span (no-op when no span
    is open).  Counters fold into the parent span on close. *)
val note : string -> by:int -> unit

(** Zero-duration instant event on [clock]'s track (e.g.
    [tinca_init_txn]). *)
val instant : clock:Tinca_sim.Clock.t -> string -> unit

(** {1 Introspection} *)

val open_spans : unit -> int

(** Unbalanced begin/end pairs detected so far. *)
val unbalanced : unit -> int

type done_span = {
  name : string;
  track : string;
  start_ns : float;
  dur_ns : float;
  self_ns : float;  (** [dur_ns] minus directly-nested child spans *)
  depth : int;  (** nesting depth at open time (0 = top level) *)
  attrs : (string * string) list;
  counters : (string * int) list;  (** own + children's, sorted by name *)
}

(** Closed spans, in completion order. *)
val completed : unit -> done_span list

(** Closed spans with the given name, completion order. *)
val find_spans : string -> done_span list

(** Counter value on a closed span (0 when absent). *)
val counter : done_span -> string -> int

(** {1 Export} *)

(** Chrome [trace_event] JSON (object format: ["traceEvents"] array of
    B/E/i events plus thread-name metadata; [ts] in microseconds). *)
val export_json : unit -> string

val export_to_file : string -> unit

(** Flame-style text summary: per span name, the call count, total and
    self time, and the attributed sfence / write-back totals. *)
val flame : unit -> string

(** The rows behind {!flame}:
    [(name, count, total_ns, self_ns, sfences, writebacks)], sorted by
    total time descending. *)
val flame_rows : unit -> (string * int * float * float * int * int) list
