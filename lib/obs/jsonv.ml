type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* Recursive-descent parser over the input string; [pos] is the cursor. *)
type parser_state = { src : string; mutable pos : int }

let error p fmt = Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" p.pos m))) fmt

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance p;
        true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> error p "expected %c, found %c" c c'
  | None -> error p "expected %c, found end of input" c

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else error p "bad literal (expected %s)" lit

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> error p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance p; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then error p "truncated \\u escape";
            let hex = String.sub p.src p.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> error p "bad \\u escape %S" hex
            in
            p.pos <- p.pos + 4;
            (* Encode the BMP code point as UTF-8 (surrogates land as-is;
               good enough for validation). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error p "bad escape")
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  match float_of_string_opt s with Some f -> f | None -> error p "bad number %S" s

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> error p "unexpected end of input"
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          members := (k, v) :: !members;
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; go ()
          | Some '}' -> advance p
          | _ -> error p "expected , or } in object"
        in
        go ();
        Obj (List.rev !members)
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value p in
          items := v :: !items;
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; go ()
          | Some ']' -> advance p
          | _ -> error p "expected , or ] in array"
        in
        go ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number p)
  | Some c -> error p "unexpected character %c" c

let parse src =
  let p = { src; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length src then Error (Printf.sprintf "trailing garbage at %d" p.pos)
      else Ok v
  | exception Parse_error m -> Error m

let member k = function Obj members -> List.assoc_opt k members | _ -> None

(* --- Chrome trace_event validation -------------------------------------- *)

type trace_stats = { events : int; tracks : int; max_depth : int }

let validate_trace doc =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let nevents = ref 0 and max_depth = ref 0 in
  (match member "traceEvents" doc with
  | None -> err "missing traceEvents array"
  | Some (Arr events) ->
      List.iteri
        (fun i ev ->
          let str k = match member k ev with Some (Str s) -> Some s | _ -> None in
          let num k = match member k ev with Some (Num n) -> Some n | _ -> None in
          match str "ph" with
          | None -> err "event %d: missing ph" i
          | Some "M" -> () (* metadata: no ts/pairing requirements *)
          | Some (("B" | "E" | "i") as ph) -> (
              incr nevents;
              match (str "name", num "tid", num "ts", num "pid") with
              | None, _, _, _ -> err "event %d: missing name" i
              | _, None, _, _ -> err "event %d: missing tid" i
              | _, _, None, _ -> err "event %d: missing ts" i
              | _, _, _, None -> err "event %d: missing pid" i
              | Some name, Some tid, Some ts, Some _ -> (
                  let tid = int_of_float tid in
                  (match Hashtbl.find_opt last_ts tid with
                  | Some prev when ts < prev ->
                      err "event %d (%s): ts %.3f < previous %.3f on tid %d" i name ts prev tid
                  | _ -> ());
                  Hashtbl.replace last_ts tid ts;
                  let stack =
                    match Hashtbl.find_opt stacks tid with
                    | Some s -> s
                    | None ->
                        let s = ref [] in
                        Hashtbl.add stacks tid s;
                        s
                  in
                  match ph with
                  | "B" ->
                      stack := name :: !stack;
                      if List.length !stack > !max_depth then max_depth := List.length !stack
                  | "E" -> (
                      match !stack with
                      | top :: rest when String.equal top name -> stack := rest
                      | top :: _ ->
                          err "event %d: E %S does not match open span %S on tid %d" i name top
                            tid
                      | [] -> err "event %d: E %S with no open span on tid %d" i name tid)
                  | _ -> ()))
          | Some ph -> err "event %d: unknown ph %S" i ph)
        events;
      Hashtbl.iter
        (fun tid stack ->
          List.iter (fun name -> err "unclosed span %S on tid %d" name tid) !stack)
        stacks
  | Some _ -> err "traceEvents is not an array");
  match !errors with
  | [] -> Ok { events = !nevents; tracks = Hashtbl.length last_ts; max_depth = !max_depth }
  | errs -> Error (List.rev errs)

let validate_trace_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with Ok doc -> validate_trace doc | Error m -> Error [ "parse error: " ^ m ]
