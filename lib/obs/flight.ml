(* Flight-recorder record codec (ISSUE 9).  See flight.mli for the
   contract; the byte layout is:

     off  0  u8   kind
     off  1  u8   shard
     off  2  u8   cause
     off  3  u8   reserved (0)
     off  4  u32  a
     off  8  u56  b
     off 16  u56  c
     off 24  u56  d
     off 32  u64  t_ns (as non-negative OCaml int)
     off 40  u56  batch + 1 (0 encodes "no batch")
     off 48  u56  seq
     off 56  u32  crc32 over bytes [0, 56)
     off 60  u32  reserved (0)

   Everything the checksum does not cover is required to be zero, so a
   record is valid iff the CRC matches AND the reserved bytes are clean
   — an all-zero (never written) slot fails because CRC-32 of 56 zero
   bytes is nonzero. *)

module Codec = Tinca_util.Codec

let record_size = 64

type cause = Sync | Deadline | Conflict | Ring_pressure | Max_batch | Await | Barrier

let cause_name = function
  | Sync -> "sync"
  | Deadline -> "deadline"
  | Conflict -> "conflict"
  | Ring_pressure -> "ring_pressure"
  | Max_batch -> "max_batch"
  | Await -> "await"
  | Barrier -> "barrier"

let cause_tag = function
  | Sync -> 0
  | Deadline -> 1
  | Conflict -> 2
  | Ring_pressure -> 3
  | Max_batch -> 4
  | Await -> 5
  | Barrier -> 6

let cause_of_tag = function
  | 0 -> Some Sync
  | 1 -> Some Deadline
  | 2 -> Some Conflict
  | 3 -> Some Ring_pressure
  | 4 -> Some Max_batch
  | 5 -> Some Await
  | 6 -> Some Barrier
  | _ -> None

type kind =
  | Txn_seal
  | Batch_drain
  | Head_advance
  | Seal_epoch
  | Role_switch
  | Tail_persist
  | Recovery_start
  | Recovery_decision

let kind_name = function
  | Txn_seal -> "txn_seal"
  | Batch_drain -> "batch_drain"
  | Head_advance -> "head_advance"
  | Seal_epoch -> "seal_epoch"
  | Role_switch -> "role_switch"
  | Tail_persist -> "tail_persist"
  | Recovery_start -> "recovery_start"
  | Recovery_decision -> "recovery_decision"

(* Tags start at 1 so a zeroed slot cannot even alias a valid kind. *)
let kind_tag = function
  | Txn_seal -> 1
  | Batch_drain -> 2
  | Head_advance -> 3
  | Seal_epoch -> 4
  | Role_switch -> 5
  | Tail_persist -> 6
  | Recovery_start -> 7
  | Recovery_decision -> 8

let kind_of_tag = function
  | 1 -> Some Txn_seal
  | 2 -> Some Batch_drain
  | 3 -> Some Head_advance
  | 4 -> Some Seal_epoch
  | 5 -> Some Role_switch
  | 6 -> Some Tail_persist
  | 7 -> Some Recovery_start
  | 8 -> Some Recovery_decision
  | _ -> None

type event = {
  kind : kind;
  shard : int;
  cause : cause;
  a : int;
  b : int;
  c : int;
  d : int;
  batch : int;
  t_ns : int;
}

let mask56 = (1 lsl 56) - 1
let mask32 = 0xFFFF_FFFF

let encode ~seq e =
  if seq < 0 then invalid_arg "Flight.encode: negative sequence number";
  let b = Bytes.make record_size '\000' in
  Codec.set_u8 b 0 (kind_tag e.kind);
  Codec.set_u8 b 1 (e.shard land 0xFF);
  Codec.set_u8 b 2 (cause_tag e.cause);
  Codec.set_u32 b 4 (e.a land mask32);
  Codec.set_u56 b 8 (e.b land mask56);
  Codec.set_u56 b 16 (e.c land mask56);
  Codec.set_u56 b 24 (e.d land mask56);
  Codec.set_u64_int b 32 (max 0 e.t_ns);
  Codec.set_u56 b 40 ((e.batch + 1) land mask56);
  Codec.set_u56 b 48 (seq land mask56);
  Codec.set_u32 b 56 (Int32.to_int (Codec.crc32 b ~pos:0 ~len:56) land mask32);
  b

let decode b =
  if Bytes.length b <> record_size then None
  else
    let stored = Codec.get_u32 b 56 in
    let crc = Int32.to_int (Codec.crc32 b ~pos:0 ~len:56) land mask32 in
    if stored <> crc then None
    else if Codec.get_u8 b 3 <> 0 || Codec.get_u32 b 60 <> 0 then None
    else
      match (kind_of_tag (Codec.get_u8 b 0), cause_of_tag (Codec.get_u8 b 2)) with
      | Some kind, Some cause ->
          Some
            ( Codec.get_u56 b 48,
              {
                kind;
                shard = Codec.get_u8 b 1;
                cause;
                a = Codec.get_u32 b 4;
                b = Codec.get_u56 b 8;
                c = Codec.get_u56 b 16;
                d = Codec.get_u56 b 24;
                batch = Codec.get_u56 b 40 - 1;
                t_ns = Codec.get_u64_int b 32;
              } )
      | _ -> None

let is_zero b =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = '\000' && go (i + 1)) in
  go 0

let scan ~slots ~read =
  let records = ref [] and torn = ref 0 in
  for i = 0 to slots - 1 do
    let b = read i in
    match decode b with
    | Some r -> records := r :: !records
    | None -> if not (is_zero b) then incr torn
  done;
  (List.sort (fun (s1, _) (s2, _) -> compare s1 s2) !records, !torn)

type cursor = { slots : int; mutable seq : int }

let cursor ~slots =
  if slots <= 0 then invalid_arg "Flight.cursor: slots must be positive";
  { slots; seq = 0 }

let slot_of c = c.seq mod c.slots
