type section = { title : string; entries : (string * string) list }

let section title entries = { title; entries }

let render sections =
  let buf = Buffer.create 512 in
  let width =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (k, _) -> max acc (String.length k)) acc s.entries)
      0 sections
  in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (Printf.sprintf "[%s]\n" s.title);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-*s : %s\n" width k v))
        s.entries)
    sections;
  Buffer.contents buf
