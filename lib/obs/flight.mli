(** Flight recorder: the crash-surviving event record format (ISSUE 9).

    A Tinca instance keeps a small NVM-resident ring of fixed-size 64 B
    event records — one cache line each — written with the data path's
    own clflush/sfence discipline and overwritten oldest-first.  This
    module is the {e pure} half: the record codec, the ring scan that
    recovers the surviving records after a crash, and the event
    vocabulary shared by the writers (lib/core, lib/tinca) and the
    post-crash reader ({!Forensics}).  It never touches NVM itself: the
    storage layer hands [scan] a slot-read closure and serializes
    [encode]'s bytes, so this module can sit below [Tinca_pmem] in the
    dependency order.

    Self-delimiting records: each record carries its sequence number and
    a CRC-32 over the first 56 bytes (sequence included).  A record torn
    by a crash — or a never-written zeroed slot — fails the checksum and
    is {e detected, not trusted}: [scan] drops it and reports it as
    torn.  Valid records order totally by sequence number, so the
    surviving set replays into a timeline without any further framing. *)

(** Bytes per record (= one cache line, = [Layout.flight_record_size]). *)
val record_size : int

(** Why a group batch drained (also stamped on sync-path records). *)
type cause =
  | Sync  (** synchronous commit — a batch of one *)
  | Deadline  (** group window expired *)
  | Conflict  (** same-block write collided with the standing batch *)
  | Ring_pressure  (** commit ring too full for the next transaction *)
  | Max_batch  (** batch reached [group_max_batch] *)
  | Await  (** an awaiter forced the drain *)
  | Barrier  (** sync/write_direct/recover flushed the batch *)

val cause_name : cause -> string

type kind =
  | Txn_seal  (** a transaction sealed into a batch (async ack point) *)
  | Batch_drain  (** a batch began draining, with its {!cause} *)
  | Head_advance  (** per-shard ring Head published over the batch *)
  | Seal_epoch  (** cross-shard seal epoch written (sharded media) *)
  | Role_switch  (** Log->Buffer role switches of the batch *)
  | Tail_persist  (** Tail persisted: the batch's durability record *)
  | Recovery_start  (** recovery began on this shard *)
  | Recovery_decision  (** recovery replayed or revoked a block *)

val kind_name : kind -> string

(** One recorded event.  Field use per {!kind}:
    - [Txn_seal]: [a] ticket id, [b] blocks in txn, [c] first blkno,
      [d] CRC-32 of the first block's payload, [batch] the batch sealed
      into, [cause] the commit mode.
    - [Batch_drain]: [a] txn count, [cause] drain cause, [batch] id.
    - [Head_advance]: [a] slots published, [batch] id.
    - [Seal_epoch]: [a] epoch, [b] shard mask, [batch] id.
    - [Role_switch]: [a] entries switched, [batch] id.
    - [Tail_persist]: [a] txns finalized, [batch] id.
    - [Recovery_start]: [a] ring Head found, [b] ring Tail found,
      [c] surviving flight records seen.
    - [Recovery_decision]: [a] 0 = roll-forward replay, 1 = revoke,
      [b] blkno. *)
type event = {
  kind : kind;
  shard : int;
  cause : cause;
  a : int;
  b : int;
  c : int;
  d : int;
  batch : int;  (** batch id the event belongs to (-1 when none) *)
  t_ns : int;  (** simulated-clock timestamp *)
}

(** [encode ~seq e] serializes [e] with sequence number [seq] into a
    fresh [record_size]-byte record (checksum included). *)
val encode : seq:int -> event -> bytes

(** [decode b] returns [Some (seq, event)] when [b] is a whole record
    with a valid checksum, [None] for torn, corrupt or never-written
    slots. *)
val decode : bytes -> (int * event) option

(** [scan ~slots ~read] decodes every slot of a flight ring ([read i]
    returns slot [i]'s [record_size] bytes) and returns the surviving
    records sorted by sequence number, plus the count of non-empty slots
    that failed the checksum (torn records).  All-zero slots count as
    empty, not torn. *)
val scan : slots:int -> read:(int -> bytes) -> (int * event) list * int

(** Writer cursor: the volatile per-instance state (next sequence
    number) of a flight ring with [slots] records.  [slot_of] maps the
    cursor's next sequence to its ring slot. *)
type cursor = { slots : int; mutable seq : int }

val cursor : slots:int -> cursor
val slot_of : cursor -> int
