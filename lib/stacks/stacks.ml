open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Block_io = Tinca_blockdev.Block_io
module Fc = Tinca_flashcache.Flashcache
module Journal = Tinca_jbd2.Journal
module Backend = Tinca_fs.Backend
module Trace = Tinca_obs.Trace

type env = { clock : Clock.t; metrics : Metrics.t; pmem : Pmem.t; disk : Disk.t }

let make_env ?(seed = 42) ?(tech = Latency.Pcm) ?(disk_kind = Latency.Ssd)
    ?(flush_instr = Latency.Clflush) ~nvm_bytes ~disk_blocks () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~seed ~flush_instr ~clock ~metrics ~tech ~size:nvm_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:disk_kind ~nblocks:disk_blocks ~block_size:4096 in
  { clock; metrics; pmem; disk }

type t = {
  label : string;
  env : env;
  backend : Backend.t;
  layouts : Tinca_core.Layout.t list;
      (* NVM space partition, one layout per shard, for the persistence
         sanitizer's region classifier (Tinca logging stacks only). *)
  page_layouts : Tinca_core.Paging.region_layout list;
      (* Same, for Tinca paging stacks: epoch/table/pool regions. *)
  cache_write_hit_rate : unit -> float;
  txn_size_histogram : unit -> Tinca_util.Histogram.t option;
  peak_cow_blocks : unit -> int;
  proc_stats : unit -> (string * string) list;
}

(* Observe the simulated latency of every backend operation into per-op
   histograms ("lat.commit", ...), so each stack reports percentile
   latencies through the same Metrics registry the counters use. *)
let with_latency env (b : Backend.t) =
  let timed name f =
    let t0 = Clock.now_ns env.clock in
    let r = f () in
    Metrics.observe env.metrics name (Clock.now_ns env.clock -. t0);
    r
  in
  {
    b with
    Backend.read_block =
      (fun blkno -> timed "lat.read_block" (fun () -> b.Backend.read_block blkno));
    commit_blocks = (fun blocks -> timed "lat.commit" (fun () -> b.Backend.commit_blocks blocks));
    write_blocks = (fun blocks -> timed "lat.write" (fun () -> b.Backend.write_blocks blocks));
    sync = (fun () -> timed "lat.sync" b.Backend.sync);
  }

(* --- Tinca stack --------------------------------------------------------- *)

(* The stack programs against the Tinca facade; the Backend contract is
   exception-based, so results are unwrapped with [Tinca.ok_exn] (whose
   exception mapping matches the old Cache-level ones 1:1). *)
let tinca_of_facade env tc =
  let backend =
    {
      Backend.name = "tinca";
      block_size = 4096;
      nblocks = Disk.nblocks env.disk;
      read_block = (fun blkno -> Tinca.ok_exn (Tinca.read tc blkno));
      commit_blocks =
        (fun blocks ->
          let txn = Tinca.init_txn tc in
          List.iter (fun (blkno, data) -> Tinca.ok_exn (Tinca.write txn blkno data)) blocks;
          Tinca.ok_exn (Tinca.commit txn));
      write_blocks =
        (fun blocks ->
          List.iter (fun (blkno, data) -> Tinca.ok_exn (Tinca.write_direct tc blkno data)) blocks);
      sync = (fun () -> Tinca.sync tc);
    }
  in
  Trace.name_track env.clock "tinca";
  let paging = Tinca.scheme_name tc = "paging" in
  {
    label = "Tinca";
    env;
    backend = with_latency env backend;
    layouts = (if paging then [] else Tinca.layouts tc);
    page_layouts = (if paging then Tinca.page_layouts tc else []);
    cache_write_hit_rate = (fun () -> Tinca.write_hit_rate tc);
    txn_size_histogram = (fun () -> Some (Tinca.txn_size_histogram tc));
    peak_cow_blocks = (fun () -> if paging then 0 else Tinca.peak_cow_blocks tc);
    proc_stats =
      (fun () ->
        Tinca.stats_kv tc
        @ List.map
            (fun (region, total, peak) ->
              ("wear." ^ region, Printf.sprintf "%d (peak %d)" total peak))
            (Tinca.region_wear tc));
  }

let tinca ?(config = Tinca.Config.default) env =
  (* The env owns the device, so its geometry fields are authoritative:
     validation must see the device actually being formatted. *)
  let config = { config with Tinca.Config.nvm_bytes = Pmem.size env.pmem } in
  let tc =
    Tinca.ok_exn
      (Tinca.format ~config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  tinca_of_facade env tc

let tinca_recover env =
  let tc =
    Tinca.ok_exn
      (Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics)
  in
  tinca_of_facade env tc

(* --- Classic stack -------------------------------------------------------- *)

let io_of_fc fc ~nblocks =
  {
    Block_io.block_size = 4096;
    nblocks;
    read_block = (fun blkno -> Fc.read fc blkno);
    write_block = (fun blkno data -> Fc.write fc blkno data);
  }

let classic_of ~label env fc journal =
  let backend =
    {
      Backend.name = "classic";
      block_size = 4096;
      nblocks = Disk.nblocks env.disk;
      read_block =
        (fun blkno ->
          match Journal.read_cached journal blkno with
          | Some data -> data
          | None -> Fc.read fc blkno);
      commit_blocks =
        (fun blocks ->
          let h = Journal.init_txn journal in
          List.iter (fun (blkno, data) -> Journal.stage h blkno data) blocks;
          Journal.commit h);
      write_blocks = (fun blocks -> List.iter (fun (blkno, data) -> Fc.write fc blkno data) blocks);
      sync =
        (fun () ->
          Journal.checkpoint journal;
          Fc.flush_all fc);
    }
  in
  Trace.name_track env.clock "classic";
  {
    label;
    env;
    backend = with_latency env backend;
    layouts = [];
    page_layouts = [];
    cache_write_hit_rate = (fun () -> Fc.write_hit_rate fc);
    txn_size_histogram = (fun () -> None);
    peak_cow_blocks = (fun () -> 0);
    proc_stats =
      (fun () ->
        [
          ("fc_write_hit_ratio", Printf.sprintf "%.3f" (Fc.write_hit_rate fc));
          ("journal_used_blocks", string_of_int (Journal.used_blocks journal));
          ("journal_capacity_blocks", string_of_int (Journal.capacity_blocks journal));
          ("journal_pending_txns", string_of_int (Journal.pending_txns journal));
        ]);
  }

let journal_config ~journal_len ~disk_blocks =
  {
    Journal.start = disk_blocks - journal_len;
    len = journal_len;
    checkpoint_threshold = Journal.default_threshold;
  }

let classic ?(fc_config = Fc.default_config) ?(journal_len = 1024) env =
  let fc =
    Fc.create ~config:fc_config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
      ~metrics:env.metrics
  in
  let io = io_of_fc fc ~nblocks:(Disk.nblocks env.disk) in
  let config = journal_config ~journal_len ~disk_blocks:(Disk.nblocks env.disk) in
  let journal = Journal.format ~clock:env.clock ~config ~io ~metrics:env.metrics () in
  classic_of ~label:"Classic" env fc journal

let classic_recover ?(fc_config = Fc.default_config) ?(journal_len = 1024) env =
  let fc =
    Fc.recover ~config:fc_config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
      ~metrics:env.metrics
  in
  let io = io_of_fc fc ~nblocks:(Disk.nblocks env.disk) in
  let config = journal_config ~journal_len ~disk_blocks:(Disk.nblocks env.disk) in
  let journal = Journal.recover ~clock:env.clock ~config ~io ~metrics:env.metrics () in
  classic_of ~label:"Classic" env fc journal

(* --- UBJ stack -------------------------------------------------------------- *)

let ubj ?(ubj_config = Tinca_ubj.Ubj.default_config) env =
  let module Ubj = Tinca_ubj.Ubj in
  let u =
    Ubj.create ~config:ubj_config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
      ~metrics:env.metrics
  in
  let commit_blocks blocks =
    let h = Ubj.Txn.init u in
    List.iter (fun (blkno, data) -> Ubj.Txn.add h blkno data) blocks;
    Ubj.Txn.commit h
  in
  let backend =
    {
      Backend.name = "ubj";
      block_size = 4096;
      nblocks = Disk.nblocks env.disk;
      read_block = (fun blkno -> Ubj.read u blkno);
      commit_blocks;
      write_blocks = commit_blocks;
      sync = (fun () -> Ubj.flush_all u);
    }
  in
  Trace.name_track env.clock "ubj";
  {
    label = "UBJ";
    env;
    backend = with_latency env backend;
    layouts = [];
    page_layouts = [];
    cache_write_hit_rate = (fun () -> 0.0);
    txn_size_histogram = (fun () -> None);
    peak_cow_blocks = (fun () -> 0);
    proc_stats = (fun () -> []);
  }

(* --- No-journal stack ------------------------------------------------------ *)

let nojournal ?(fc_config = Fc.default_config) env =
  let fc =
    Fc.create ~config:fc_config ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
      ~metrics:env.metrics
  in
  let write_blocks blocks = List.iter (fun (blkno, data) -> Fc.write fc blkno data) blocks in
  let backend =
    {
      Backend.name = "nojournal";
      block_size = 4096;
      nblocks = Disk.nblocks env.disk;
      read_block = (fun blkno -> Fc.read fc blkno);
      commit_blocks = write_blocks;
      write_blocks;
      sync = (fun () -> Fc.flush_all fc);
    }
  in
  Trace.name_track env.clock "nojournal";
  {
    label = "NoJournal";
    env;
    backend = with_latency env backend;
    layouts = [];
    page_layouts = [];
    cache_write_hit_rate = (fun () -> Fc.write_hit_rate fc);
    txn_size_histogram = (fun () -> None);
    peak_cow_blocks = (fun () -> 0);
    proc_stats =
      (fun () -> [ ("fc_write_hit_ratio", Printf.sprintf "%.3f" (Fc.write_hit_rate fc)) ]);
  }

(* --- persistence sanitizer wiring ---------------------------------------- *)

module Psan = Tinca_checker.Psan

let instrument ?strict ?max_violations stack =
  let psan =
    Psan.attach ?strict ?max_violations ~layouts:stack.layouts ~page_layouts:stack.page_layouts
      stack.env.pmem
  in
  (* Bracket every acknowledged commit so psan can enforce unfenced-ack:
     at commit return, all lines the transaction stored must be durable.
     A commit that raises acknowledged nothing, so the scope is dropped
     without the durability check. *)
  let commit_blocks blocks =
    Psan.txn_begin psan;
    match stack.backend.Backend.commit_blocks blocks with
    | () -> Psan.txn_end psan
    | exception e ->
        Psan.txn_abort psan;
        raise e
  in
  ({ stack with backend = { stack.backend with Backend.commit_blocks } }, psan)
