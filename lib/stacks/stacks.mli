(** Stack builders: assemble the two systems the paper compares (plus the
    motivation variants) from the substrate libraries.

    - {b Tinca}: Ext4-like FS -> Tinca transactional NVM cache -> disk
      (paper Fig 1(c)).
    - {b Classic}: Ext4-like FS -> JBD2 journal -> Flashcache over an NVM
      block device -> disk (paper Fig 1(a), §5.1).
    - {b No-journal}: FS writing straight through Flashcache (the
      motivation experiments' baseline without crash consistency).

    Every stack owns its simulated clock, metrics registry, pmem and
    disk, so experiments can run stacks side by side and diff their
    counters. *)

type env = {
  clock : Tinca_sim.Clock.t;
  metrics : Tinca_sim.Metrics.t;
  pmem : Tinca_pmem.Pmem.t;
  disk : Tinca_blockdev.Disk.t;
}

(** [make_env ~nvm_bytes ~disk_blocks ()] — defaults: PCM, SSD, clflush,
    seed 42. *)
val make_env :
  ?seed:int ->
  ?tech:Tinca_sim.Latency.nvm_tech ->
  ?disk_kind:Tinca_sim.Latency.disk_kind ->
  ?flush_instr:Tinca_sim.Latency.flush_instr ->
  nvm_bytes:int ->
  disk_blocks:int ->
  unit ->
  env

type t = {
  label : string;
  env : env;
  backend : Tinca_fs.Backend.t;
  layouts : Tinca_core.Layout.t list;
      (** NVM space partition for the persistence sanitizer's region
          classifier — one layout per shard (Tinca logging stacks only;
          [[]] elsewhere). *)
  page_layouts : Tinca_core.Paging.region_layout list;
      (** Same for Tinca paging stacks: one epoch/table/pool region
          layout per shard; [[]] elsewhere. *)
  cache_write_hit_rate : unit -> float;
      (** Write hit rate of the cache layer (paper Fig 12c). *)
  txn_size_histogram : unit -> Tinca_util.Histogram.t option;
      (** Blocks-per-transaction histogram where the stack tracks one
          (Tinca only; Fig 13). *)
  peak_cow_blocks : unit -> int;
      (** Peak NVM blocks pinned as COW previous versions (Tinca only;
          paper §5.4.3); 0 for other stacks. *)
  proc_stats : unit -> (string * string) list;
      (** /proc-style health snapshot of the stack's cache layer:
          [Cache.stats_kv] for Tinca, Flashcache/journal occupancy for
          the classic stacks, empty where nothing applies.  Render with
          {!Tinca_obs.Procfs.render}. *)
}

(** Build a Tinca stack through the {!Tinca} facade (validates the
    config, formats the — possibly sharded — cache).  [config.nvm_bytes]
    is overridden with the env's actual device size; the other geometry
    and policy fields apply as given.  Raises the facade's
    [Invalid_argument] mapping if {!Tinca.Config.validate} rejects the
    config. *)
val tinca : ?config:Tinca.Config.t -> env -> t

(** Re-attach a Tinca stack after {!Tinca_pmem.Pmem.crash} (runs the
    facade recovery: shard directory, cross-shard roll-forward or
    rollback, per-shard recovery). *)
val tinca_recover : env -> t

(** Build a Classic stack (formats cache + journal).  [journal_len]
    must match the file system's [journal_len] (the journal lives in the
    last [journal_len] blocks of the disk, as laid out by
    {!Tinca_fs.Fs.format}). *)
val classic :
  ?fc_config:Tinca_flashcache.Flashcache.config -> ?journal_len:int -> env -> t

(** Re-attach a Classic stack after a crash: rebuild the Flashcache
    mirror, then replay the journal. *)
val classic_recover :
  ?fc_config:Tinca_flashcache.Flashcache.config -> ?journal_len:int -> env -> t

(** Flashcache with no journaling above it; [fc_config] exposes the
    metadata_sync / flush_writes ablation knobs of the motivation
    figures. *)
val nojournal : ?fc_config:Tinca_flashcache.Flashcache.config -> env -> t

(** UBJ-style union of buffer cache and journal (paper §5.4.4
    comparison). *)
val ubj : ?ubj_config:Tinca_ubj.Ubj.config -> env -> t

(** [instrument stack] attaches the persistence sanitizer
    ({!Tinca_checker.Psan}) to the stack's pmem — with the region
    classifier when the stack carries {!t.layouts} — and returns the
    stack with [commit_blocks] bracketed by the sanitizer's transaction
    scope, so acknowledged commits are checked for unfenced writes.
    Call on a freshly built stack (after format, before the workload).
    [strict]/[max_violations] are passed to {!Tinca_checker.Psan.attach}. *)
val instrument : ?strict:bool -> ?max_violations:int -> t -> t * Tinca_checker.Psan.t
