(** The Tinca facade: the paper's public primitives by name —
    [tinca_init_txn] / [tinca_commit] / [tinca_abort] plus block read
    and write — over an abstract cache handle, returning
    [(_, error) result] instead of exceptions.

    This is the single entry point the stacks, the harness and [bin/]
    program against; {!Tinca_core.Cache} keeps its exception-based
    interface underneath (the {!to_exn} bridge maps each [error]
    constructor to exactly one of the old exceptions).  The handle is a
    {!Tinca_core.Commit_scheme.engine} (ISSUE 10): the logging scheme's
    {!Tinca_core.Shard} — one cache for [nshards = 1], the striped
    multi-ring layer otherwise — or the paging scheme's
    {!Tinca_core.Paging} indirection-table engine. *)

(** Re-exported from {!Tinca_core.Cache} with a type equation, so both
    APIs share constructors. *)
type write_policy = Tinca_core.Cache.mode = Write_back | Write_through

type pipeline = Tinca_core.Cache.pipeline = Per_block | Batched

module Config : sig
  (** Knobs specific to the paging commit scheme. *)
  type page_cfg = {
    page_headroom : int;
        (** free page frames admission keeps in reserve beyond a
            transaction's own demand; >= 0, default 0 *)
  }

  val default_page_cfg : page_cfg

  (** The one validated commit-scheme choice (ISSUE 10): the logging
      ring pipeline (in its [Per_block] or [Batched] variant), or COW
      paging through a persistent indirection table. *)
  type scheme = Logging of pipeline | Paging of page_cfg

  (** The one labelled configuration record: geometry, commit scheme,
      flush instruction, shard count and write policy.  Replaces the
      positional/ad-hoc config arguments previously scattered across
      [Cache.format] / [Stacks] / [Runner].

      The geometry fields ([nvm_bytes], [flush_instr]) describe the NVM
      device and are consumed by whoever creates it (e.g.
      [Runner.run_local]); the rest shape the cache itself. *)
  type t = {
    nvm_bytes : int;  (** simulated NVM size, default 8 MiB *)
    block_size : int;  (** positive multiple of 64; default 4096 *)
    ring_slots : int;  (** ring slots {e per shard} (logging); default 131072 *)
    nshards : int;  (** 1 (default) .. {!Tinca_core.Shard.max_shards} *)
    commit_scheme : scheme;  (** default [Logging Batched] *)
    commit_pipeline : pipeline;
        (** DEPRECATED pre-ISSUE-10 spelling of [Logging pipeline]; still
            honoured when [commit_scheme] is left at its default, and
            normalized by {!validate} so the two fields agree.  New code
            sets [commit_scheme]. *)
    flush_instr : Tinca_sim.Latency.flush_instr;  (** default [Clflush] *)
    write_policy : write_policy;  (** default [Write_back]; paging is write-back only *)
    clean_threshold : float;  (** in (0, 1]; default 0.7 *)
    alloc_policy : Tinca_cachelib.Free_monitor.policy;  (** default [Lifo] *)
    group_window_ns : int;
        (** async group-commit window: transactions sealed by
            {!commit_async} within this many simulated ns share ONE
            durability sequence.  [0] (default) = fully synchronous —
            {!commit_async} degenerates to today's {!commit}, byte for
            byte.  Requires the [Batched] logging pipeline when nonzero
            (the paging scheme has no group committer). *)
    group_max_batch : int;
        (** drain the pending batch at this many transactions even if
            the window has not elapsed; >= 1, default 32 *)
    flight_slots : int;
        (** NVM flight-recorder ring capacity {e per shard} in 64 B
            records; 0 (default) disables the recorder and keeps the
            historical media layout byte for byte.  See
            {!last_crash_report}. *)
  }

  val default : t

  (** The scheme {!validate} will resolve [c] to: the deprecation shim
      defers an untouched [commit_scheme] to [commit_pipeline]. *)
  val effective_scheme : t -> scheme

  val scheme_name : scheme -> string

  (** Full validation, subsuming the ad-hoc geometry checks: block size
      and ring shape, shard count bounds, threshold range, that the
      per-shard span actually hosts a layout, and the scheme-specific
      combination rules (paging rejects a group window and
      write-through).  Returns the config with [commit_scheme] /
      [commit_pipeline] normalized to agree. *)
  val validate : t -> (t, string) result

  (** The per-shard cache configuration this facade config induces
      (logging scheme). *)
  val to_cache_config : t -> Tinca_core.Cache.config

  (** The paging-engine configuration this facade config induces. *)
  val to_page_config : t -> page_cfg -> Tinca_core.Paging.config

  (** CLI spelling of a scheme: ["logging"] (or ["batched"]),
      ["per-block"], ["paging"]. *)
  val scheme_of_string : string -> (scheme, string) result

  (** Central CLI-to-config funnel (ISSUE 10 satellite): every
      tinca_bench / tinca_check subcommand builds its config through
      this one helper, so they all accept the same [--scheme] /
      [--shards] / [--group-window] / [--flight-slots] (and
      [--ring-slots] / NVM-size) vocabulary and reject the same invalid
      combinations.  Unset arguments keep [base]'s values (default
      {!default}); the result is {!validate}d. *)
  val of_args :
    ?base:t ->
    ?scheme:string ->
    ?shards:int ->
    ?group_window:int ->
    ?flight_slots:int ->
    ?ring_slots:int ->
    ?nvm_bytes:int ->
    unit ->
    (t, string) result
end

type t

type error =
  | Transaction_too_large
      (** the cache geometry cannot host the transaction (ring, data
          region or entry table); maps to
          [Cache.Transaction_too_large] *)
  | Txn_not_running
      (** operation on a committed/aborted transaction handle *)
  | Wrong_block_size of { expected : int; got : int }
  | Block_out_of_range of int  (** disk block number outside the device *)
  | Unformatted of string  (** recovery found no (or corrupt) Tinca media *)
  | Invalid_config of string  (** rejected by {!Config.validate} *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

(** I/O-shaped failures crossing the exception bridge: the error is
    environmental (media, geometry pressure), not a misuse of the API,
    so {!to_exn} must not flatten it into [Failure]/[Invalid_argument]
    — callers need to distinguish "the medium is bad" from "your
    arguments are bad" and can recover the original [error] via
    {!of_exn}. *)
exception Io_error of error

(** Map each error to exactly one exception of the retained Cache-level
    interface (pinned by the facade round-trip tests):
    [Transaction_too_large] -> {!Tinca_core.Cache.Transaction_too_large},
    [Unformatted] -> {!Io_error} (it used to flatten into [Failure],
    losing the payload), everything else (API misuse) ->
    [Invalid_argument]. *)
val to_exn : error -> exn

(** Partial inverse of {!to_exn}: recover the [error] from a bridge
    exception.  [of_exn (to_exn e) = Some e] for every I/O-shaped [e]
    ([Transaction_too_large], [Unformatted]); Cache-level
    [Cache_exhausted]-class exceptions also map home
    ({!Tinca_core.Cache.Transaction_too_large} ->
    [Some Transaction_too_large]).  [None] for foreign exceptions. *)
val of_exn : exn -> error option

(** [ok_exn r] unwraps [Ok] or raises {!to_exn} of the error — the
    bridge for exception-based callers (the stack backends). *)
val ok_exn : ('a, error) result -> 'a

(** {1 Construction} *)

(** Validate the config and format the device for the configured commit
    scheme (logging: partition into [config.nshards] shards and format
    each ring; paging: directory + per-shard indirection table and page
    pool). *)
val format :
  config:Config.t ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  (t, error) result

(** Re-attach after a crash.  The commit scheme is read back from the
    media's magic (first 8 bytes), so recovery needs no config: logging
    media runs the shard-directory roll-forward/rollback plus per-shard
    ring recovery; paging media rebuilds the volatile index from the
    indirection table (rolling its staged generation back, or forward
    under a durable seal).  [Error (Unformatted _)] on unformatted or
    corrupt media.  The group-commit policy is volatile (not recorded on
    media), so a recovered handle is synchronous
    ([group_window_ns = 0]). *)
val recover :
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  (t, error) result

(** The post-crash forensic dossier built by the last {!recover} on this
    handle: the flight recorder's surviving records reconstructed into a
    batch ledger, a Chrome-trace timeline and an acked-vs-survived
    reconciliation ({!Tinca_obs.Forensics}).  [None] when the media
    carried no flight ring (or no records survived). *)
val last_crash_report : t -> Tinca_obs.Forensics.t option

(** {1 The paper's primitives} *)

type txn

(** [tinca_init_txn]. *)
val init_txn : t -> txn

(** [tinca_write]: stage one block write into the transaction. *)
val write : txn -> int -> bytes -> (unit, error) result

(** [tinca_commit]: atomically and durably apply the transaction.
    Equal to {!commit_async} followed by {!await} — with
    [group_window_ns = 0] (the default) that is exactly the classic
    synchronous pipeline. *)
val commit : txn -> (unit, error) result

(** {1 Async group commit (ISSUE 8)}

    [commit_async] validates and {e volatilely seals} the transaction
    immediately — subsequent reads see it, no flush or fence is paid —
    and returns a {!ticket}.  A group committer drains every
    transaction sealed within [Config.group_window_ns] (or
    [group_max_batch], whichever comes first) with ONE stage-A
    flush+fence, one slot flush+fence, a single Head advance, one
    batched role switch and one Tail persist per touched shard, so
    sfences-per-commit falls like [1/K] with batch size [K].

    Ack vs durable: a sealed-unacked transaction (ticket returned,
    batch not yet drained) may roll back at a crash; once {!await}
    returns (or {!on_durable} fires) the transaction is durable and
    must survive any later crash.  Batches are atomic: a crash
    recovers either none or all of a batch's transactions.

    Logging-scheme only when the window is nonzero; under paging (or
    with the default zero window) {!commit_async} IS the synchronous
    commit. *)

type ticket

(** Seal now, become durable with the next batch drain.  Returns an
    already-durable ticket when [group_window_ns = 0] (synchronous
    path) and for empty transactions. *)
val commit_async : txn -> (ticket, error) result

(** Block (in simulated time: drain the pending batch) until the
    ticket's transaction is durable. *)
val await : ticket -> (unit, error) result

(** [on_durable tk f] runs [f] once [tk]'s transaction is durable —
    immediately if it already is, else from the batch drain.
    Callbacks run in registration order. *)
val on_durable : ticket -> (unit -> unit) -> unit

val ticket_durable : ticket -> bool

(** The durable-notification ticket id (issued in seal order; this is
    the id the flight recorder's [Txn_seal] records carry, so a crash
    dossier can name exactly which acked tickets died). *)
val ticket_id : ticket -> int

(** Sealed-to-durable latency of a drained ticket in simulated ns
    ([None] while still pending). *)
val ticket_latency_ns : ticket -> float option

(** Transactions sealed but not yet drained (the standing batch). *)
val group_pending : t -> int

(** Drain the standing batch now (also implied by {!await} on a
    pending ticket, {!write_direct}, {!sync}, window expiry, a
    same-block conflict, ring pressure and [group_max_batch]). *)
val group_flush : t -> unit

(** Ack-to-durable latency distribution (ns) across all drained
    tickets — the [fig_group] p50/p99 source. *)
val group_ack_to_durable : t -> Tinca_util.Histogram.t

(** {2 Group-committer runtime stats}

    Batches drained, drains split by cause (deadline / conflict /
    ring-pressure / max-batch / await / sync / barrier — the same cause
    vocabulary the flight recorder stamps on [Batch_drain] records) and
    the standing batch's population high-water mark.  All three also
    appear in {!stats_kv} as [group_*] keys (logging scheme). *)

val group_batches : t -> int
val group_drains_by_cause : t -> (string * int) list
val group_pending_high_water : t -> int

(** [tinca_abort]. *)
val abort : txn -> (unit, error) result

(** Read the newest committed (or cached) version of a block. *)
val read : t -> int -> (bytes, error) result

(** Single-block atomic write outside any transaction. *)
val write_direct : t -> int -> bytes -> (unit, error) result

(** Write all dirty blocks back to disk (decommissioning only; commits
    are already durable in NVM). *)
val sync : t -> unit

(** {1 Introspection} *)

val nshards : t -> int
val block_size : t -> int

(** The commit scheme this handle runs (constructor only — the payload
    carries defaults, not the formatted values). *)
val scheme : t -> Config.scheme

(** ["logging"] or ["paging"]. *)
val scheme_name : t -> string

(** The cached content of a block without touching the disk or the
    replacement state — the crash checkers' post-recovery probe.
    Scheme-independent. *)
val peek : t -> int -> bytes option

val contains : t -> int -> bool

(** The underlying sharded logging layer — escape hatch for the
    harness, the checkers and tests.  Raises [Invalid_argument] on a
    paging handle. *)
val shard : t -> Tinca_core.Shard.t

(** The underlying paging engine.  Raises [Invalid_argument] on a
    logging handle. *)
val paging : t -> Tinca_core.Paging.t

(** One layout per shard, for the persistence sanitizer's region
    classifier.  Logging scheme only (raises [Invalid_argument] on a
    paging handle — use {!page_layouts}). *)
val layouts : t -> Tinca_core.Layout.t list

(** One region layout per shard of a paging handle, for psan's paging
    region classifier.  Raises [Invalid_argument] on a logging
    handle. *)
val page_layouts : t -> Tinca_core.Paging.region_layout list

(** Logging scheme only (raises [Invalid_argument] under paging —
    paging's surface is {!stats_kv}). *)
val stats : t -> Tinca_core.Shard.stats

(** Scheme-aware stats (ISSUE 10 satellite): the engine's own rows —
    logging media reports {!Tinca_core.Shard.stats_kv} plus the
    group-committer [group_*] keys; paging media reports the paging
    vocabulary ([table_swings], [pool_occupancy_pct], ...) with the
    logging-only rows (ring high water, role switches, group counters)
    {e absent}, not zero. *)
val stats_kv : t -> (string * string) list

(** Region-attributed NVM wear: [(region, total line write-backs, max
    on one line)].  Region names are scheme-specific (logging:
    superblock/pointers/ring/...; paging: super/epoch/table/pool/...). *)
val region_wear : t -> (string * int * int) list

val write_hit_rate : t -> float

(** Peak COW chain depth — a logging-pipeline concept (raises
    [Invalid_argument] under paging). *)
val peak_cow_blocks : t -> int

(** Cross-shard blocks-per-commit distribution (paper Fig 13). *)
val txn_size_histogram : t -> Tinca_util.Histogram.t

val check_invariants : t -> unit
