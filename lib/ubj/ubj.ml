open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Lru = Tinca_cachelib.Lru
module Free_monitor = Tinca_cachelib.Free_monitor

type config = { block_size : int; checkpoint_low_water : float }

let default_config = { block_size = 4096; checkpoint_low_water = 0.25 }

type info = {
  disk_blkno : int;
  mutable active : int; (* NVM block holding the newest version *)
  mutable frozen : bool; (* newest version is committed-in-place *)
  mutable node : info Lru.node option;
}

type txn_record = { blocks : (int * int) list (* disk blkno, frozen NVM block *) }

type t = {
  cfg : config;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
  cpu : Latency.cpu;
  nblocks : int;
  data_off : int;
  record_off : int; (* commit-record area, written circularly *)
  index : (int, info) Hashtbl.t;
  lru : info Lru.t;
  free : Free_monitor.t;
  queue : txn_record Queue.t; (* committed, not yet checkpointed; oldest first *)
  mutable record_cursor : int;
}

let create ~config:cfg ~pmem ~disk ~clock ~metrics =
  if Disk.block_size disk <> cfg.block_size then invalid_arg "Ubj: disk block size mismatch";
  let data_off = cfg.block_size in
  let nblocks = (Pmem.size pmem - data_off) / cfg.block_size in
  if nblocks <= 0 then invalid_arg "Ubj: pmem too small";
  {
    cfg;
    pmem;
    disk;
    clock;
    metrics;
    cpu = Latency.default_cpu;
    nblocks;
    data_off;
    record_off = 0;
    index = Hashtbl.create 4096;
    lru = Lru.create ();
    free = Free_monitor.create ~n:nblocks ();
    queue = Queue.create ();
    record_cursor = 0;
  }

let block_off t nvm_blk = t.data_off + (nvm_blk * t.cfg.block_size)
let node_exn info = Option.get info.node

let read_block t nvm_blk = Pmem.read t.pmem ~off:(block_off t nvm_blk) ~len:t.cfg.block_size

(* Checkpoint the oldest committed transaction: write every frozen copy
   to disk as one unit (UBJ's transaction-granularity checkpoint), then
   release or unfreeze the NVM blocks. *)
let checkpoint_oldest t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some txn ->
      List.iter
        (fun (disk_blkno, nvm_blk) ->
          Disk.write_block t.disk disk_blkno (read_block t nvm_blk);
          Metrics.incr t.metrics "ubj.checkpoint_writes" ~by:1;
          match Hashtbl.find_opt t.index disk_blkno with
          | Some info when info.active = nvm_blk ->
              (* Not updated since the freeze: becomes a clean cached
                 block. *)
              info.frozen <- false
          | Some _ | None ->
              (* Superseded (or evicted): the frozen copy is dead weight
                 now that it is on disk. *)
              Free_monitor.free t.free nvm_blk)
        txn.blocks;
      Metrics.incr t.metrics "ubj.checkpoints" ~by:1;
      true

let evict_clean t =
  match Lru.find_from_lru t.lru ~f:(fun info -> not info.frozen) with
  | None -> false
  | Some node ->
      let info = Lru.value node in
      (* Clean by construction: unfrozen means checkpointed. *)
      Lru.remove t.lru node;
      info.node <- None;
      Hashtbl.remove t.index info.disk_blkno;
      Free_monitor.free t.free info.active;
      Metrics.incr t.metrics "ubj.evictions" ~by:1;
      true

let rec alloc t =
  match Free_monitor.alloc t.free with
  | Some i -> i
  | None ->
      (* Prefer dropping a clean block; otherwise a whole transaction
         must be checkpointed to make room — UBJ's coarse unit. *)
      if evict_clean t || checkpoint_oldest t then alloc t
      else failwith "Ubj: NVM exhausted with nothing checkpointable"

let charge_op t =
  Clock.advance t.clock (t.cpu.Latency.op_overhead_ns +. t.cpu.Latency.hash_lookup_ns)

let read t blkno =
  charge_op t;
  match Hashtbl.find_opt t.index blkno with
  | Some info ->
      Metrics.incr t.metrics "ubj.read_hits" ~by:1;
      Lru.touch t.lru (node_exn info);
      read_block t info.active
  | None ->
      Metrics.incr t.metrics "ubj.read_misses" ~by:1;
      let data = Disk.read_block t.disk blkno in
      let nvm = alloc t in
      Pmem.write t.pmem ~off:(block_off t nvm) data;
      let info = { disk_blkno = blkno; active = nvm; frozen = false; node = None } in
      info.node <- Some (Lru.push_mru t.lru info);
      Hashtbl.replace t.index blkno info;
      data
[@@pmem.defer
  "read-miss fill of a clean block: its durable home is the disk, so the NVM copy carries no \
   persistence obligation until a write freezes it into a commit"]

let write_nvm_block t nvm data =
  let off = block_off t nvm in
  Pmem.write t.pmem ~off data;
  Pmem.persist t.pmem ~off ~len:t.cfg.block_size

(* Persist one small commit record (freeze marks + block list digest):
   one cache line, circularly over the record area. *)
let persist_commit_record t =
  let off = t.record_off + (t.record_cursor mod (t.cfg.block_size / 64) * 64) in
  t.record_cursor <- t.record_cursor + 1;
  Pmem.write t.pmem ~off (Bytes.make 64 '\001');
  Pmem.persist t.pmem ~off ~len:64

let low_water t =
  float_of_int (Free_monitor.free_count t.free) /. float_of_int t.nblocks
  < t.cfg.checkpoint_low_water

module Txn = struct
  type handle = {
    ubj : t;
    staged : (int, bytes) Hashtbl.t;
    mutable order : int list;
    mutable finished : bool;
  }

  let init ubj = { ubj; staged = Hashtbl.create 16; order = []; finished = false }

  let add h blkno data =
    if h.finished then invalid_arg "Ubj.Txn.add: finished";
    let t = h.ubj in
    if Bytes.length data <> t.cfg.block_size then invalid_arg "Ubj.Txn.add: wrong block size";
    Clock.advance t.clock t.cpu.Latency.memcpy_4k_ns;
    if not (Hashtbl.mem h.staged blkno) then h.order <- blkno :: h.order;
    Hashtbl.replace h.staged blkno (Bytes.copy data)

  let commit h =
    if h.finished then invalid_arg "Ubj.Txn.commit: finished";
    h.finished <- true;
    let t = h.ubj in
    let ids = List.rev h.order in
    if ids <> [] then begin
      charge_op t;
      let frozen_list = ref [] in
      List.iter
        (fun blkno ->
          let data = Hashtbl.find h.staged blkno in
          (match Hashtbl.find_opt t.index blkno with
          | Some info when not info.frozen ->
              (* Commit-in-place: overwrite the cached version. *)
              write_nvm_block t info.active data;
              Lru.touch t.lru (node_exn info)
          | Some info ->
              (* Frozen by an earlier uncheckpointed transaction: the
                 update must go out of place via a memcpy — UBJ's
                 critical-path cost. *)
              Clock.advance t.clock t.cpu.Latency.memcpy_4k_ns;
              Metrics.incr t.metrics "ubj.frozen_copies" ~by:1;
              let fresh = alloc t in
              write_nvm_block t fresh data;
              info.active <- fresh;
              info.frozen <- false;
              Lru.touch t.lru (node_exn info)
          | None ->
              let fresh = alloc t in
              write_nvm_block t fresh data;
              let info = { disk_blkno = blkno; active = fresh; frozen = false; node = None } in
              info.node <- Some (Lru.push_mru t.lru info);
              Hashtbl.replace t.index blkno info);
          let info = Hashtbl.find t.index blkno in
          info.frozen <- true;
          frozen_list := (blkno, info.active) :: !frozen_list)
        ids;
      persist_commit_record t;
      Queue.add { blocks = List.rev !frozen_list } t.queue;
      Metrics.incr t.metrics "ubj.commits" ~by:1;
      (* Background space pressure: checkpoint oldest transactions until
         above the low-water mark. *)
      while low_water t && checkpoint_oldest t do
        ()
      done
    end
end

let flush_all t =
  while checkpoint_oldest t do
    ()
  done

let cached_blocks t = Hashtbl.length t.index

let frozen_blocks t =
  Hashtbl.fold (fun _ info acc -> if info.frozen then acc + 1 else acc) t.index 0

let free_blocks t = Free_monitor.free_count t.free
