type policy = Lifo | Fifo

(* The pool is a ring of capacity n+1 so head = tail distinguishes empty
   from full; Lifo pops where it last pushed, Fifo pops the oldest
   entry.  Lazy deletion: stale entries are skipped at pop. *)
type t = {
  n : int;
  policy : policy;
  free : bool array;
  ring : int array;
  mutable head : int; (* push position *)
  mutable tail : int; (* oldest entry *)
  mutable nfree : int;
}

let create ?(policy = Lifo) ~n () =
  if n <= 0 then invalid_arg "Free_monitor.create";
  let ring = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    ring.(i) <- i
  done;
  { n; policy; free = Array.make n true; ring; head = n; tail = 0; nfree = n }

let capacity t = t.n
let free_count t = t.nfree

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Free_monitor: index out of range"

let is_free t i =
  check t i;
  t.free.(i)

let cap t = Array.length t.ring

let ring_full t = (t.head + 1) mod cap t = t.tail

(* Rebuild the ring when lazy deletion has bloated or emptied it.
   Order-preserving: compact the existing ring oldest-first, dropping
   stale entries (marked used out-of-band) and duplicate occurrences,
   so [Fifo] keeps handing out oldest-freed-first across rebuilds and
   wear-leveling rotation survives recovery.  A bitmap scan then
   appends (ascending) any free index the ring lost track of — a
   safety net that keeps [alloc] total even if the one-occurrence
   invariant is ever broken.  [mark_used] stays O(1); rebuild is O(n),
   amortized over the pushes that filled the ring. *)
let rebuild t =
  let seen = Array.make t.n false in
  let kept = Array.make (cap t) 0 in
  let nkept = ref 0 in
  let j = ref t.tail in
  while !j <> t.head do
    let i = t.ring.(!j) in
    if t.free.(i) && not seen.(i) then begin
      seen.(i) <- true;
      kept.(!nkept) <- i;
      incr nkept
    end;
    j := (!j + 1) mod cap t
  done;
  for i = 0 to t.n - 1 do
    if t.free.(i) && not seen.(i) then begin
      kept.(!nkept) <- i;
      incr nkept
    end
  done;
  Array.blit kept 0 t.ring 0 !nkept;
  t.tail <- 0;
  t.head <- !nkept

let rec alloc t =
  if t.nfree = 0 then None
  else if t.head = t.tail then begin
    (* Every live entry was consumed as a stale duplicate. *)
    rebuild t;
    alloc t
  end
  else begin
    let i =
      match t.policy with
      | Lifo ->
          t.head <- (t.head + cap t - 1) mod cap t;
          t.ring.(t.head)
      | Fifo ->
          let i = t.ring.(t.tail) in
          t.tail <- (t.tail + 1) mod cap t;
          i
    in
    (* Stale entries (marked used out-of-band) are skipped. *)
    if t.free.(i) then begin
      t.free.(i) <- false;
      t.nfree <- t.nfree - 1;
      Some i
    end
    else alloc t
  end

let push t i =
  if ring_full t then rebuild t;
  (* After a rebuild the ring holds at most [nfree] distinct entries and
     [i] is still marked used (see [free]), so there is always a slot. *)
  t.ring.(t.head) <- i;
  t.head <- (t.head + 1) mod cap t

let free t i =
  check t i;
  if t.free.(i) then invalid_arg "Free_monitor.free: already free";
  (* Push before flipping the bit: if the push compacts the ring, [i]'s
     stale copies are filtered out (still marked used), and the one
     occurrence lands at the head — the youngest age, where a just-freed
     index belongs. *)
  push t i;
  t.free.(i) <- true;
  t.nfree <- t.nfree + 1

let mark_used t i =
  check t i;
  if not t.free.(i) then invalid_arg "Free_monitor.mark_used: already used";
  t.free.(i) <- false;
  t.nfree <- t.nfree - 1
