(** Free-block monitor (paper §4.6): tracks vacant NVM blocks.

    DRAM-only; rebuilt from the persistent cache-entry table on recovery.
    Lazy-deletion stack so that [mark_used] (during recovery rebuild) is
    O(1). *)

type t

(** Allocation order.  [Lifo] (default) reuses the most recently freed
    index — cache-friendly but concentrates NVM wear on a few hot
    blocks.  [Fifo] hands indices out round-robin, spreading write wear
    evenly over the medium (wear leveling for endurance-limited NVM,
    paper 1's PCM endurance concern).

    [Fifo] order is oldest-freed-first and survives the internal ring
    rebuilds lazy deletion occasionally forces: a rebuild compacts the
    pool in place of its age order rather than re-sorting it, so
    wear-leveling rotation carries across rebuilds (and thus across
    recovery).  An index freed while a stale copy of it is still queued
    keeps the stale copy's (older) position — the usual lazy-deletion
    approximation. *)
type policy = Lifo | Fifo

(** [create ~n] — all of [0..n-1] free. *)
val create : ?policy:policy -> n:int -> unit -> t

val capacity : t -> int
val free_count : t -> int
val is_free : t -> int -> bool

(** Pop a vacant index, or [None] when full. *)
val alloc : t -> int option

(** Return an index to the pool.  Raises [Invalid_argument] if already
    free. *)
val free : t -> int -> unit

(** Claim a specific index (recovery rebuild).  Raises [Invalid_argument]
    if already used. *)
val mark_used : t -> int -> unit
