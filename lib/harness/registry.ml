(** The experiment registry: every table and figure of the paper (plus
    extension/ablation experiments), addressable by id from the CLI and
    the benchmark executable. *)

module Tabular = Tinca_util.Tabular

type experiment = {
  id : string;
  title : string;
  paper_ref : string;  (** what the paper reports, for eyeball comparison *)
  run : unit -> Tabular.t list;
}

let all : experiment list =
  [
    {
      id = "table1";
      title = "NVM technology characteristics";
      paper_ref = "Table 1";
      run = (fun () -> [ Tinca_sim.Latency.table1 () ]);
    };
    {
      id = "table2";
      title = "Benchmark catalogue";
      paper_ref = "Table 2";
      run = (fun () -> [ Tinca_workloads.Catalogue.table2 () ]);
    };
    {
      id = "fig3a";
      title = "Write traffic of journaling (Filebench)";
      paper_ref = "Fig 3(a): journaling causes ~195-290% of no-journal traffic";
      run = Exp_motivation.fig3a;
    };
    {
      id = "fig3b";
      title = "Journaling and clflush cost (Fio)";
      paper_ref = "Fig 3(b): journaling -31.5%, +clflush a further -28.3%";
      run = Exp_motivation.fig3b;
    };
    {
      id = "fig4";
      title = "Synchronous cache-metadata update cost";
      paper_ref = "Fig 4: waiving metadata +45.2% (journal) / +65.5% (no journal)";
      run = Exp_motivation.fig4;
    };
    {
      id = "fig7";
      title = "Fio: IOPS, clflush/op, disk writes/op";
      paper_ref = "Fig 7: Tinca 2.5x/2.1x/1.7x IOPS; -73..76% clflush; -60..65% disk writes";
      run = Exp_fio.fig7;
    };
    {
      id = "fig8";
      title = "TPC-C: TPM, clflush/txn, disk blocks/txn vs users";
      paper_ref = "Fig 8: Tinca ~1.7-1.8x TPM; clflush 30-36% of Classic; 4.2->1.9 / 7.0->3.0 blocks";
      run = Exp_tpcc.fig8;
    };
    {
      id = "fig10";
      title = "HDFS TeraGen: time, clflush/MB, disk writes/MB vs replicas";
      paper_ref = "Fig 10: Tinca 29%/54%/60% less time; -80.7% clflush; -38.3% disk writes @3 replicas";
      run = Exp_cluster.fig10;
    };
    {
      id = "fig11";
      title = "GlusterFS Filebench: OPs/s, clflush/op, disk writes/op";
      paper_ref = "Fig 11: Tinca 1.8x fileserver, 1.2x webproxy, 1.5x varmail";
      run = Exp_cluster.fig11;
    };
    {
      id = "fig12a";
      title = "TPC-C on SSD vs HDD";
      paper_ref = "Fig 12(a): gap widens 1.7x (SSD) -> 2.8x (HDD)";
      run = Exp_tpcc.fig12a;
    };
    {
      id = "fig12b";
      title = "TPC-C across NVM technologies";
      paper_ref = "Fig 12(b): gap narrows slightly 1.7x (PCM) -> 1.6x (NVDIMM/STT-RAM)";
      run = Exp_tpcc.fig12b;
    };
    {
      id = "fig12c";
      title = "Cache write hit rate";
      paper_ref = "Fig 12(c): Classic 80%, Tinca 93%";
      run = Exp_tpcc.fig12c;
    };
    {
      id = "fig13";
      title = "Blocks per transaction + COW overhead";
      paper_ref = "Fig 13 / 5.4.3: fileserver ~2x webproxy; COW overhead ~0.4% of cache";
      run = Exp_txn.fig13;
    };
    {
      id = "recoverability";
      title = "Crash + recovery trials";
      paper_ref = "5.1: crash consistency never impaired across repeated failures";
      run = Exp_recovery.run;
    };
    {
      id = "crash_space";
      title = "Exhaustive crash-space model check of the commit protocol";
      paper_ref = "5.1 strengthened: every crash point x every torn-line survival subset";
      run = Exp_check.run;
    };
    {
      id = "ubj_compare";
      title = "Tinca vs UBJ vs Classic";
      paper_ref = "5.4.4 (qualitative in the paper; quantified here)";
      run = Exp_ablation.ubj_compare;
    };
    {
      id = "writeback_ablation";
      title = "Write-back vs write-through Tinca";
      paper_ref = "extension (role-switch value)";
      run = Exp_ablation.writeback_ablation;
    };
    {
      id = "batching_ablation";
      title = "Transaction coalescing sweep";
      paper_ref = "extension (commit amortization)";
      run = Exp_ablation.batching_ablation;
    };
    {
      id = "page_cache";
      title = "DRAM buffer cache above Tinca";
      paper_ref = "extension (Fig 1(c)'s DRAM tier, capacity sweep)";
      run = Exp_ablation.page_cache;
    };
    {
      id = "consistency_levels";
      title = "data=journal vs data=ordered vs no journal";
      paper_ref = "extension (2.3: consistency-level spectrum)";
      run = Exp_ablation.consistency_levels;
    };
    {
      id = "flush_instr";
      title = "clflush vs clflushopt vs clwb";
      paper_ref = "extension (2.1: newer flush instructions the testbed lacked)";
      run = Exp_ablation.flush_instr;
    };
    {
      id = "fig_commit_batch";
      title = "Fence-coalesced group commit vs per-block protocol";
      paper_ref = "extension (4.4 commit protocol, O(1) fences per txn)";
      run = Exp_commit.fig_commit_batch;
    };
    {
      id = "fig_shard";
      title = "Sharded Tinca: commit-throughput and fence scaling at N=1/2/4/8";
      paper_ref = "extension (ISSUE 5: per-shard rings + striped commit scheduler)";
      run = Exp_shard.fig_shard;
    };
    {
      id = "fig_log_vs_page";
      title = "Commit-scheme ablation: logging ring vs COW paging";
      paper_ref = "extension (ISSUE 10: Commit_scheme interface, crossover by write size)";
      run = Exp_page.fig_log_vs_page;
    };
    {
      id = "fig_group";
      title = "Async group commit: fences amortized over the standing batch";
      paper_ref = "extension (ISSUE 8: one durability sequence per ~K-txn batch)";
      run = Exp_group.fig_group;
    };
    {
      id = "fig_flight";
      title = "NVM flight recorder: zero added fences, <= 2% commit overhead";
      paper_ref = "extension (ISSUE 9: crash-surviving forensics; beyond the paper)";
      run = Exp_flight.fig_flight;
    };
    {
      id = "fig_obs";
      title = "Observability surface: /proc snapshot, latency ladders, span flame";
      paper_ref = "extension (observability; beyond the paper)";
      run = Exp_obs.run;
    };
    {
      id = "wear_leveling";
      title = "FIFO vs LIFO NVM allocation (wear leveling)";
      paper_ref = "extension (endurance; beyond the paper)";
      run = Exp_ablation.wear_leveling;
    };
    {
      id = "wear";
      title = "NVM endurance: lines persisted per MB";
      paper_ref = "extension (the 1 write-endurance argument)";
      run = Exp_ablation.wear;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_experiment e =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" e.id e.title);
  Buffer.add_string buf (Printf.sprintf "paper: %s\n" e.paper_ref);
  List.iter
    (fun t ->
      Buffer.add_string buf (Tabular.render t);
      Buffer.add_char buf '\n')
    (e.run ());
  Buffer.contents buf

(** CSV form of one result table (for the CLI's [--csv]). *)
let csv_of table = Tabular.to_csv table
