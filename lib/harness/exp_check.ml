(* Crash-space model-checking experiment: a budgeted run of the
   exhaustive checker (lib/check) as a registry entry, so `tinca_bench
   run crash_space` reports the explored state-space size alongside the
   paper's tables.  The full sweep lives behind `make check-crash` /
   `tinca_check`; this entry uses a moderate cap to stay in experiment
   wall-time territory. *)

module Check = Tinca_checker.Crash_check
module Tabular = Tinca_util.Tabular

let run () =
  let report = Check.explore { Check.default_config with Check.mask_cap = 128 } in
  let t = Check.report_table report in
  (match report.Check.violations with
  | [] -> ()
  | vs ->
      List.iter
        (fun v -> Tabular.add_row t [ "VIOLATION"; Format.asprintf "%a" Check.pp_violation v ])
        vs);
  [ t ]
