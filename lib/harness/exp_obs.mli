(** fig_obs: the observability surface exercised end to end — a
    /proc-style health snapshot of an instrumented Tinca stack, latency
    percentile ladders per stack and op type, and a flame summary of a
    traced run with per-span fence attribution. *)

val run : unit -> Tinca_util.Tabular.t list
