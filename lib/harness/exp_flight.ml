(* fig_flight: the flight recorder's cost, quantified (ISSUE 9).

   The recorder's contract is "one extra line write per event, zero
   extra fences": every record is a volatile 64 B store whose flush is
   folded into a protocol fence the commit pipeline was paying anyway.
   This experiment prices that claim on the exact commit micro-benchmark
   behind fig_commit_batch — the same mixed-size stream, same universe,
   same device — once with the recorder off (flight_slots = 0, the
   historical media layout) and once on, reporting sfences/commit (must
   be bit-identical), flush write-backs/commit (the folded record
   lines) and simulated ns/commit (the gate: <= 2% aggregate overhead).

   `tinca_bench check-flight` additionally runs the persistence
   sanitizer over a recorder-on group-commit workload (the recorder's
   own flush discipline must be psan-clean) and the Flight_check crash
   sweep at N=1 and N=4 (recovery-semantics pin + dossier-vs-judge
   agreement + the planted Drop_durable_notify conviction). *)

module Cache = Tinca_core.Cache
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Tabular = Tinca_util.Tabular
module Psan = Tinca_checker.Psan
module FCheck = Tinca_checker.Flight_check
open Tinca_sim

let flight_slots = 256

type sample = {
  txn_blocks : int;
  sfences_off : float;
  sfences_on : float;  (** must equal [sfences_off] — the recorder adds no fences *)
  writebacks_off : float;
  writebacks_on : float;
  ns_off : float;
  ns_on : float;
  overhead_pct : float;
}

(* Exp_commit.micro's stream (same warm-up, same measured_size walk,
   same 256-block universe) with the recorder as the only variable. *)
let run_stream ~flight_slots ~n =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(8 * 1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let cache =
    Cache.format
      ~config:{ Cache.default_config with ring_slots = 4096; flight_slots }
      ~pmem ~disk ~clock ~metrics
  in
  let universe = 256 in
  let payload = Bytes.make 4096 'f' in
  let next = ref 0 in
  let commit size =
    let h = Cache.Txn.init cache in
    for _ = 1 to size do
      Cache.Txn.add h (!next mod universe) payload;
      incr next
    done;
    Cache.Txn.commit h
  in
  let warmup = 4 and measured = 32 in
  for _ = 1 to warmup do
    commit n
  done;
  let t0 = Clock.now_ns clock in
  let sf0 = Metrics.get metrics "pmem.sfence" in
  let wb0 = Metrics.get metrics "pmem.clflush_writebacks" in
  for c = 0 to measured - 1 do
    commit (Exp_commit.measured_size ~n c)
  done;
  let per x = float_of_int x /. float_of_int measured in
  ( per (Metrics.get metrics "pmem.sfence" - sf0),
    per (Metrics.get metrics "pmem.clflush_writebacks" - wb0),
    (Clock.now_ns clock -. t0) /. float_of_int measured )

let overhead_point ~n =
  let sf_off, wb_off, ns_off = run_stream ~flight_slots:0 ~n in
  let sf_on, wb_on, ns_on = run_stream ~flight_slots ~n in
  {
    txn_blocks = n;
    sfences_off = sf_off;
    sfences_on = sf_on;
    writebacks_off = wb_off;
    writebacks_on = wb_on;
    ns_off;
    ns_on;
    overhead_pct = 100.0 *. ((ns_on /. ns_off) -. 1.0);
  }

let sweep () = List.map (fun n -> overhead_point ~n) [ 1; 8; 64 ]

let table samples =
  let t =
    Tabular.create
      ~title:
        "fig_flight: NVM flight recorder priced on the commit micro-benchmark (ISSUE 9)"
      [
        "txn blocks"; "sfences/commit off"; "sfences/commit on"; "flush WB/commit off";
        "flush WB/commit on"; "ns/commit off"; "ns/commit on"; "overhead %";
      ]
  in
  List.iter
    (fun s ->
      Tabular.add_row t
        [
          Tabular.cell_i s.txn_blocks;
          Tabular.cell_f ~decimals:2 s.sfences_off;
          Tabular.cell_f ~decimals:2 s.sfences_on;
          Tabular.cell_f ~decimals:1 s.writebacks_off;
          Tabular.cell_f ~decimals:1 s.writebacks_on;
          Tabular.cell_f ~decimals:0 s.ns_off;
          Tabular.cell_f ~decimals:0 s.ns_on;
          Tabular.cell_f ~decimals:2 s.overhead_pct;
        ])
    samples;
  t

let fig_flight () = [ table (sweep ()) ]

(* --- the CI gate behind `tinca_bench check-flight` ----------------------- *)

(* The recorder's flush discipline audited live: a recorder-on async
   group-commit workload under the persistence sanitizer (full region
   classification, Flight region rules included) must stay
   violation-free.  Returns (violations, events observed). *)
let psan_clean ~nshards =
  let module Stacks = Tinca_stacks.Stacks in
  let module Rng = Tinca_util.Rng in
  let env = Stacks.make_env ~seed:9 ~nvm_bytes:(512 * 1024) ~disk_blocks:96 () in
  let config =
    {
      Tinca.Config.default with
      Tinca.Config.nvm_bytes = Pmem.size env.Stacks.pmem;
      ring_slots = 256;
      nshards;
      flight_slots = 64;
      group_window_ns = 1_000_000;
      group_max_batch = 8;
    }
  in
  let tc =
    Tinca.ok_exn
      (Tinca.format ~config ~pmem:env.Stacks.pmem ~disk:env.Stacks.disk ~clock:env.Stacks.clock
         ~metrics:env.Stacks.metrics)
  in
  let psan = Psan.attach ~layouts:(Tinca.layouts tc) env.Stacks.pmem in
  let rng = Rng.create 11 in
  for _ = 1 to 24 do
    Psan.txn_begin psan;
    let tickets =
      List.init
        (1 + Rng.int rng 4)
        (fun _ ->
          let txn = Tinca.init_txn tc in
          for _ = 1 to 1 + Rng.int rng 3 do
            Tinca.ok_exn (Tinca.write txn (Rng.int rng 96) (Bytes.make 4096 'p'))
          done;
          Tinca.ok_exn (Tinca.commit_async txn))
    in
    List.iter (fun tk -> Tinca.ok_exn (Tinca.await tk)) tickets;
    Psan.txn_end psan
  done;
  Tinca.sync tc;
  let r = Psan.report psan in
  Psan.detach psan;
  (r.Psan.violations, r.Psan.events)

let check () =
  let samples = sweep () in
  let fences_ok = List.for_all (fun s -> s.sfences_on = s.sfences_off) samples in
  let tot_off = List.fold_left (fun a s -> a +. s.ns_off) 0.0 samples in
  let tot_on = List.fold_left (fun a s -> a +. s.ns_on) 0.0 samples in
  let overhead = (tot_on /. tot_off) -. 1.0 in
  let overhead_ok = overhead <= 0.02 in
  let psan_v1, ev1 = psan_clean ~nshards:1 in
  let psan_v4, ev4 = psan_clean ~nshards:4 in
  let psan_ok = psan_v1 = [] && psan_v4 = [] in
  let sweep_of nshards stride =
    FCheck.sweep { FCheck.default_config with FCheck.nshards; stride; universe = 48 }
  in
  let s1 = sweep_of 1 17 and s4 = sweep_of 4 29 in
  let pin_ok = s1.FCheck.violations = [] && s4.FCheck.violations = [] in
  let drop_of nshards =
    FCheck.drop_notify_scenario { FCheck.default_config with FCheck.nshards; universe = 48 }
  in
  let drop1 = drop_of 1 and drop4 = drop_of 4 in
  let drop_ok = Result.is_ok drop1 && Result.is_ok drop4 in
  let verdict = Tabular.create ~title:"check-flight verdict" [ "property"; "value"; "ok" ] in
  Tabular.add_row verdict
    [
      "recorder adds zero fences (sfences/commit identical)";
      String.concat ", "
        (List.map
           (fun s -> Printf.sprintf "n=%d: %.2f vs %.2f" s.txn_blocks s.sfences_off s.sfences_on)
           samples);
      (if fences_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "aggregate ns overhead <= 2% on fig_commit_batch's stream";
      Printf.sprintf "%.2f%%" (100.0 *. overhead);
      (if overhead_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "recorder-on group workload psan-clean (N=1, N=4)";
      Printf.sprintf "%d + %d events, %d + %d violations" ev1 ev4 (List.length psan_v1)
        (List.length psan_v4);
      (if psan_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "crash sweep: replay on/off pin + dossier agrees with judge";
      Printf.sprintf "N=1: %d states, N=4: %d states, %d violations" s1.FCheck.states_checked
        s4.FCheck.states_checked
        (List.length s1.FCheck.violations + List.length s4.FCheck.violations);
      (if pin_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "planted Drop_durable_notify convicted by dossier alone";
      (match (drop1, drop4) with
      | Ok _, Ok _ -> "N=1 and N=4 convicted"
      | Error e, _ | _, Error e -> e);
      (if drop_ok then "ok" else "FAIL");
    ];
  let errs =
    List.map (Printf.sprintf "psan N=1: %s")
      (List.map (fun v -> Format.asprintf "%a" Psan.pp_violation v) psan_v1)
    @ List.map (Printf.sprintf "psan N=4: %s")
        (List.map (fun v -> Format.asprintf "%a" Psan.pp_violation v) psan_v4)
    @ List.map (Printf.sprintf "sweep N=1: %s") s1.FCheck.violations
    @ List.map (Printf.sprintf "sweep N=4: %s") s4.FCheck.violations
  in
  ( [ table samples; verdict ],
    errs,
    fences_ok && overhead_ok && psan_ok && pin_ok && drop_ok )
