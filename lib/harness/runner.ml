(** Shared measurement machinery for the experiments: build a stack +
    file system, run a workload's unmeasured prealloc phase, snapshot the
    metric registries, run the measured phase, and derive the paper's
    normalized quantities (§5.1 evaluation metrics: throughput from the
    simulated clock, clflush and disk writes normalized per operation). *)

open Tinca_sim
module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs
module Ops = Tinca_workloads.Ops

type measurement = {
  label : string;
  ops : int;
  sim_seconds : float;
  throughput : float;          (** benchmark ops per simulated second *)
  clflush : int;
  disk_writes : int;
  clflush_per_op : float;
  disk_writes_per_op : float;
  nvm_bytes_stored : int;      (** write traffic into NVM (store lines x 64 B) *)
  lines_persisted : int;       (** cache lines actually written back to the NVM medium *)
  write_hit_rate : float;
  stack : Stacks.t;
  fs : Fs.t;
  stats : Ops.stats;
}

type stack_spec = Stacks.env -> Stacks.t

let default_fs_config = { Fs.default_config with ninodes = 4096; journal_len = 4096 }

(* Observe per-file-op simulated latency into the env's histograms, the
   FS-level counterpart of [Stacks.with_latency]'s block-level timing. *)
let instrument_ops ~clock ~metrics (ops : Ops.t) =
  let timed name f =
    let t0 = Clock.now_ns clock in
    let r = f () in
    Metrics.observe metrics name (Clock.now_ns clock -. t0);
    r
  in
  {
    ops with
    Ops.create = (fun name -> timed "lat.create" (fun () -> ops.Ops.create name));
    pwrite = (fun name ~off ~len -> timed "lat.pwrite" (fun () -> ops.Ops.pwrite name ~off ~len));
    pread = (fun name ~off ~len -> timed "lat.pread" (fun () -> ops.Ops.pread name ~off ~len));
    fsync = (fun () -> timed "lat.fsync" ops.Ops.fsync);
  }

(** [run_local ~spec ~prealloc ~work ()] builds one stack, runs the two
    phases and measures the second. *)
let run_local ?(nvm_bytes = 8 * 1024 * 1024) ?(disk_blocks = 65536)
    ?(tech = Latency.Pcm) ?(disk_kind = Latency.Ssd) ?(flush_instr = Latency.Clflush)
    ?(seed = 42) ?(fs_config = default_fs_config) ?(journaled = true) ~spec ~prealloc ~work () =
  let env = Stacks.make_env ~seed ~tech ~disk_kind ~flush_instr ~nvm_bytes ~disk_blocks () in
  let stack = spec env in
  let fs = Fs.format ~config:{ fs_config with Fs.journaled } stack.Stacks.backend in
  let ops =
    instrument_ops ~clock:env.Stacks.clock ~metrics:env.Stacks.metrics
      (Ops.of_fs ~compute:(Clock.advance env.Stacks.clock) fs)
  in
  prealloc ops;
  Fs.fsync fs;
  let t0 = Clock.now_ns env.Stacks.clock in
  let snap = Metrics.snapshot env.Stacks.metrics in
  let stats = work ops in
  Fs.fsync fs;
  let sim_seconds = (Clock.now_ns env.Stacks.clock -. t0) /. 1e9 in
  let clflush = Metrics.since env.Stacks.metrics snap "pmem.clflush" in
  let disk_writes = Metrics.since env.Stacks.metrics snap "disk.writes" in
  let store_lines = Metrics.since env.Stacks.metrics snap "pmem.store_lines" in
  let n = max 1 stats.Ops.ops in
  {
    label = stack.Stacks.label;
    ops = stats.Ops.ops;
    sim_seconds;
    throughput = float_of_int stats.Ops.ops /. sim_seconds;
    clflush;
    disk_writes;
    clflush_per_op = float_of_int clflush /. float_of_int n;
    disk_writes_per_op = float_of_int disk_writes /. float_of_int n;
    nvm_bytes_stored = store_lines * 64;
    lines_persisted = Metrics.since env.Stacks.metrics snap "pmem.lines_persisted";
    write_hit_rate = stack.Stacks.cache_write_hit_rate ();
    stack;
    fs;
    stats;
  }

(** Normalize against write operations instead of all operations
    (Fig 7's "per write operation"). *)
let per_write m =
  let w = max 1 m.stats.Ops.logical_writes in
  ( float_of_int m.clflush /. float_of_int w,
    float_of_int m.disk_writes /. float_of_int w,
    float_of_int m.stats.Ops.logical_writes /. m.sim_seconds )

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let ratio_str a b = Printf.sprintf "%.2fx" (a /. b)

(** Latency distribution of one op type recorded during the run
    (["lat.commit"], ["lat.pwrite"], ...). *)
let lat_summary m name =
  Option.map Hist.summary (Metrics.hist m.stack.Stacks.env.Stacks.metrics name)
