(** fig_shard: sharded Tinca scaling (ISSUE 5) — commit-throughput and
    fence-count scaling at N = 1/2/4/8 shards under the multi-queue
    driver, plus the N=1 equivalence pin against the single-ring
    [BENCH_commit.json] commit-point numbers. *)

(** Exp_commit.micro's exact workload replayed through the facade with
    [nshards] shards. *)
val micro_facade :
  nshards:int ->
  pipeline:Tinca_core.Cache.pipeline ->
  instr:Tinca_sim.Latency.flush_instr ->
  n:int ->
  Exp_commit.sample

(** [pin ~json_path] replays every commit point of the artifact at
    [json_path] through the one-shard facade and compares sfences, flush
    write-backs and ns per commit to the artifact's printed precision.
    Returns the comparison table and whether every point matched. *)
val pin : json_path:string -> Tinca_util.Tabular.t * bool

(** The registry experiment: the scaling table (and, when
    [BENCH_commit.json] exists in the working directory, the pin
    table). *)
val fig_shard : unit -> Tinca_util.Tabular.t list

(** The `tinca_bench check-shard` gate: (tables, pin_ok, scaling_ok)
    where [scaling_ok] requires the N=4 makespan to be strictly below
    N=1. *)
val check : json_path:string -> Tinca_util.Tabular.t list * bool * bool
