(** fig_group: the async group-commit experiment (ISSUE 8) — K open-loop
    [Tinca.commit_async] streams against one facade, reporting
    sfences-per-commit (amortized to ~6/K by the batch drain), batch
    sizes, Head advances and the p50/p99 sealed-to-durable (ack)
    latency, for window 0 (synchronous baseline) and a nonzero window
    at each stream count. *)

(** One (streams, window) point of the sweep. *)
type sample = {
  streams : int;
  window_ns : int;
  commits : int;
  sfences_per_commit : float;
  batches : int;  (** group drains (tinca.shard.group_commits) *)
  txns_per_batch : float;
  head_advances : int;  (** one per batch per touched shard *)
  ns_per_commit : float;
  ack_p50_ns : float;  (** sealed-to-durable latency percentiles *)
  ack_p99_ns : float;
  pending_high_water : int;  (** peak standing-batch population *)
  drains : (string * int) list;  (** batch drains split by cause *)
}

val stream_counts : int list
val default_window_ns : int

val run_point : streams:int -> window:int -> sample

(** The full sweep: every stream count, window 0 and [window]
    (default {!default_window_ns}). *)
val sweep : ?window:int -> unit -> sample list

val fig_group : unit -> Tinca_util.Tabular.t list

(** The CI gate behind [tinca_bench check-group]: window=0 async is
    media- and cost-identical to the synchronous pipeline, sfences per
    commit < 1 at >= 8 streams under the window, and p99 ack latency
    is bounded by the window.  Returns the report tables and the
    verdict. *)
val check : ?window:int -> unit -> Tinca_util.Tabular.t list * bool

(** The ["group"] block of [BENCH_commit.json] (no surrounding
    braces/comma), emitted by [make bench-json]. *)
val json_block : unit -> string
