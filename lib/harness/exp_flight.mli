(** fig_flight: the NVM flight recorder priced on the commit
    micro-benchmark (ISSUE 9) — the same mixed-size stream as
    fig_commit_batch, recorder off vs on, reporting fences (must be
    identical), flush write-backs (the folded record lines) and
    simulated ns per commit. *)

type sample = {
  txn_blocks : int;
  sfences_off : float;
  sfences_on : float;  (** must equal [sfences_off] — the recorder adds no fences *)
  writebacks_off : float;
  writebacks_on : float;
  ns_off : float;
  ns_on : float;
  overhead_pct : float;
}

(** Recorder ring capacity used for the "on" runs (records per shard). *)
val flight_slots : int

val overhead_point : n:int -> sample
val sweep : unit -> sample list
val fig_flight : unit -> Tinca_util.Tabular.t list

(** The CI gate behind [tinca_bench check-flight]: zero added fences,
    <= 2% aggregate ns overhead, a recorder-on group-commit workload
    psan-clean at N=1 and N=4, the Flight_check crash sweep clean
    (recovery-semantics pin + dossier-vs-judge agreement) and the
    planted [Drop_durable_notify] convicted by the dossier alone.
    Returns (report tables, failure detail lines, verdict). *)
val check : unit -> Tinca_util.Tabular.t list * string list * bool
