(** Shared measurement machinery for the experiments: build a stack +
    file system, run a workload's unmeasured prealloc phase, snapshot the
    metric registries, run the measured phase, and derive the paper's
    normalized quantities (§5.1 evaluation metrics: throughput from the
    simulated clock, clflush and disk writes normalized per operation). *)

type measurement = {
  label : string;
  ops : int;
  sim_seconds : float;
  throughput : float;          (** benchmark ops per simulated second *)
  clflush : int;
  disk_writes : int;
  clflush_per_op : float;
  disk_writes_per_op : float;
  nvm_bytes_stored : int;      (** write traffic into NVM (store lines x 64 B) *)
  lines_persisted : int;       (** cache lines actually written back to the NVM medium *)
  write_hit_rate : float;
  stack : Tinca_stacks.Stacks.t;
  fs : Tinca_fs.Fs.t;
  stats : Tinca_workloads.Ops.stats;
}

type stack_spec = Tinca_stacks.Stacks.env -> Tinca_stacks.Stacks.t

val default_fs_config : Tinca_fs.Fs.config

(** [run_local ~spec ~prealloc ~work ()] builds one stack, runs the two
    phases and measures the second. *)
val run_local :
  ?nvm_bytes:int ->
  ?disk_blocks:int ->
  ?tech:Tinca_sim.Latency.nvm_tech ->
  ?disk_kind:Tinca_sim.Latency.disk_kind ->
  ?flush_instr:Tinca_sim.Latency.flush_instr ->
  ?seed:int ->
  ?fs_config:Tinca_fs.Fs.config ->
  ?journaled:bool ->
  spec:stack_spec ->
  prealloc:(Tinca_workloads.Ops.t -> unit) ->
  work:(Tinca_workloads.Ops.t -> Tinca_workloads.Ops.stats) ->
  unit ->
  measurement

(** Normalize against write operations instead of all operations (Fig 7's
    "per write operation"): (clflush/write, disk writes/write, write
    IOPS). *)
val per_write : measurement -> float * float * float

val mb : int -> float
val ratio_str : float -> float -> string

(** Wrap an {!Tinca_workloads.Ops.t} so create/pwrite/pread/fsync
    latencies land in ["lat.*"] histograms of [metrics].  [run_local]
    applies this automatically. *)
val instrument_ops :
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  Tinca_workloads.Ops.t ->
  Tinca_workloads.Ops.t

(** [lat_summary m "lat.commit"] — latency distribution of one op type
    recorded during the run, if any was observed. *)
val lat_summary : measurement -> string -> Tinca_sim.Hist.summary option
