(** Registry wrapper for the exhaustive crash-space model checker
    (lib/check): a budgeted sweep of the default deterministic workload,
    reporting crash points, explored/deduped post-crash states and any
    consistency violations. *)

val run : unit -> Tinca_util.Tabular.t list
