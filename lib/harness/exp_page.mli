(** fig_log_vs_page: the commit-scheme ablation (ISSUE 10) — the same
    facade workload against the logging ring pipeline (both variants)
    and the COW paging engine, reporting ns/commit, sfences/commit, NVM
    write amplification (via {!Tinca.region_wear}) and recovery time by
    transaction size, plus the crossover point where paging's constant
    fence budget beats batched logging. *)

type sample = {
  scheme : string;  (** ["log/per-block"], ["log/batched"] or ["paging"] *)
  txn_blocks : int;  (** mean transaction size of the mixed stream *)
  commits : int;
  ns_per_commit : float;
  sfences_per_commit : float;
  nvm_write_amp : float;
      (** media line write-backs x line size per committed payload
          byte, measured-phase only (format and warm-up excluded) *)
  recovery_ns : float;  (** simulated time of {!Tinca.recover} *)
}

val sweep : unit -> sample list

(** Smallest transaction size at which paging's ns/commit matches or
    beats batched logging; [None] when logging wins everywhere. *)
val crossover : sample list -> int option

(** The registry entry. *)
val fig_log_vs_page : unit -> Tinca_util.Tabular.t list

(** The [tinca_bench check-page] CI gate: paging's fence budget is flat
    in transaction size, the [commit_scheme] and deprecated
    [commit_pipeline] spellings of the logging pipeline are media- and
    cost-identical, a budgeted crash-space sweep and lockstep spec
    refinement hold for paging at N=1 and N=4 (logging N=4 rides
    along), and a psan-observed paging workload (N=2, with recovery) is
    violation-free.  Returns the result tables and the verdict. *)
val check : unit -> Tinca_util.Tabular.t list * bool

(** The ["log_vs_page"] block of BENCH_commit.json (injected into
    {!Exp_commit.bench_json} via its [page_block] argument). *)
val json_block : unit -> string
