(* fig_log_vs_page: the commit-scheme ablation quantified (ISSUE 10).

   The same facade workload — Exp_commit's mixed-size commit stream —
   runs against the logging ring pipeline (both variants) and the COW
   paging engine, and the figure reports the three axes the two designs
   trade against each other:

   - ns/commit and sfences/commit by transaction size: the paging
     scheme's fence budget is a size-independent constant (stage fence,
     epoch swing, table unstage) where the per-block pipeline pays ~4n+2
     and the batched pipeline a larger constant;
   - NVM write amplification (media line write-backs per committed
     byte, attributed via {!Tinca.region_wear}): paging rewrites a full
     page per dirtied block plus a 16 B table entry, logging pays ring
     entries plus Head/Tail pointer churn on top of the data;
   - recovery time: paging rebuilds the volatile index with one table
     scan, logging replays the ring.

   The crossover by write size — the smallest transaction at which
   paging's constant fence budget beats batched logging's — is computed
   from the sweep and reported in both the table and the JSON block.

   `tinca_bench check-page` gates CI on the scheme contract: paging's
   fence budget is flat in transaction size, the commit_scheme spelling
   of the logging pipeline is media- and cost-identical to the
   deprecated commit_pipeline spelling, a budgeted crash-space sweep and
   the lockstep spec hold for paging at N=1 and N=4, and a psan-observed
   paging run is violation-free. *)

module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Tabular = Tinca_util.Tabular
module Psan = Tinca_checker.Psan
module Check = Tinca_checker.Crash_check
module Lockstep = Tinca_checker.Lockstep
open Tinca_sim

let nvm_bytes = 8 * 1024 * 1024

type sample = {
  scheme : string;
  txn_blocks : int;
  commits : int;
  ns_per_commit : float;
  sfences_per_commit : float;
  nvm_write_amp : float;  (** media line write-backs x 64 / committed bytes *)
  recovery_ns : float;
}

let txn_sizes = [ 1; 2; 4; 8; 16 ]

let schemes =
  [
    ("log/per-block", Tinca.Config.Logging Tinca.Per_block);
    ("log/batched", Tinca.Config.Logging Tinca.Batched);
    ("paging", Tinca.Config.Paging Tinca.Config.default_page_cfg);
  ]

(* One fresh world per point, like Exp_commit's micro: 4 warm-up commits
   walk the universe so measured commits overwrite live pages (the
   paging engine's unstage path and the logging engine's COW chains are
   both on), then 32 measured commits of Exp_commit.measured_size mixed
   sizes.  Wear is snapshotted around the measured phase only, so the
   amplification excludes format and warm-up traffic. *)
let run_point ~label ~scheme ~n =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let config =
    { Tinca.Config.default with Tinca.Config.nvm_bytes; ring_slots = 4096; commit_scheme = scheme }
  in
  let tc = Tinca.ok_exn (Tinca.format ~config ~pmem ~disk ~clock ~metrics) in
  let universe = 256 in
  let payload = Bytes.make 4096 'p' in
  let next = ref 0 in
  let commit size =
    let h = Tinca.init_txn tc in
    for _ = 1 to size do
      Tinca.ok_exn (Tinca.write h (!next mod universe) payload);
      incr next
    done;
    Tinca.ok_exn (Tinca.commit h)
  in
  let warmup = 4 and measured = 32 in
  for _ = 1 to warmup do
    commit n
  done;
  let wear_lines () =
    List.fold_left (fun acc (_, total, _) -> acc + total) 0 (Tinca.region_wear tc)
  in
  let t0 = Clock.now_ns clock in
  let sf0 = Metrics.get metrics "pmem.sfence" in
  let w0 = wear_lines () in
  let blocks = ref 0 in
  for c = 0 to measured - 1 do
    let sz = Exp_commit.measured_size ~n c in
    blocks := !blocks + sz;
    commit sz
  done;
  let elapsed = Clock.now_ns clock -. t0 in
  let sfences = Metrics.get metrics "pmem.sfence" - sf0 in
  let worn = wear_lines () - w0 in
  let r0 = Clock.now_ns clock in
  (match Tinca.recover ~pmem ~disk ~clock ~metrics with
  | Ok recovered -> Tinca.check_invariants recovered
  | Error e -> failwith (Tinca.error_message e));
  {
    scheme = label;
    txn_blocks = n;
    commits = measured;
    ns_per_commit = elapsed /. float_of_int measured;
    sfences_per_commit = float_of_int sfences /. float_of_int measured;
    nvm_write_amp = float_of_int (worn * Pmem.line_size) /. float_of_int (!blocks * 4096);
    recovery_ns = Clock.now_ns clock -. r0;
  }

let sweep () =
  List.concat_map
    (fun n -> List.map (fun (label, scheme) -> run_point ~label ~scheme ~n) schemes)
    txn_sizes

(* The smallest transaction size at which paging's simulated commit cost
   matches or beats batched logging — [None] if logging keeps winning
   across the sweep. *)
let crossover samples =
  let at label n = List.find_opt (fun s -> s.scheme = label && s.txn_blocks = n) samples in
  List.find_opt
    (fun n ->
      match (at "paging" n, at "log/batched" n) with
      | Some p, Some l -> p.ns_per_commit <= l.ns_per_commit
      | _ -> false)
    txn_sizes

let table samples =
  let t =
    Tabular.create
      ~title:"fig_log_vs_page: logging ring vs COW paging, end to end (ISSUE 10)"
      [
        "scheme"; "txn blocks"; "commits"; "ns/commit"; "sfences/commit"; "NVM write amp";
        "recovery ns";
      ]
  in
  List.iter
    (fun s ->
      Tabular.add_row t
        [
          s.scheme;
          Tabular.cell_i s.txn_blocks;
          Tabular.cell_i s.commits;
          Tabular.cell_f ~decimals:0 s.ns_per_commit;
          Tabular.cell_f ~decimals:2 s.sfences_per_commit;
          Tabular.cell_f ~decimals:3 s.nvm_write_amp;
          Tabular.cell_f ~decimals:0 s.recovery_ns;
        ])
    samples;
  Tabular.add_row t
    [
      "crossover";
      (match crossover samples with Some n -> Printf.sprintf "%d blocks" n | None -> "none");
      "paging <= log/batched (ns/commit)"; ""; ""; ""; "";
    ];
  t

let fig_log_vs_page () = [ table (sweep ()) ]

(* --- the deprecation-shim identity pin ----------------------------------- *)

(* The same workload through [commit_scheme = Logging p] and through the
   deprecated [commit_pipeline = p] spelling must leave byte-identical
   media, equal simulated time and equal fence counts: the Commit_scheme
   indirection and the config shim cost nothing on the classic path. *)
let shim_pin ~pipeline ~n =
  let run config_of =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm_bytes () in
    let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
    let tc = Tinca.ok_exn (Tinca.format ~config:(config_of ()) ~pmem ~disk ~clock ~metrics) in
    let payload = Bytes.make 4096 's' in
    let next = ref 0 in
    for c = 0 to 15 do
      let h = Tinca.init_txn tc in
      for _ = 1 to Exp_commit.measured_size ~n c do
        Tinca.ok_exn (Tinca.write h (!next mod 256) payload);
        incr next
      done;
      Tinca.ok_exn (Tinca.commit h)
    done;
    (Pmem.media_digest pmem, Clock.now_ns clock, Metrics.get metrics "pmem.sfence")
  in
  let base = { Tinca.Config.default with Tinca.Config.nvm_bytes; ring_slots = 4096 } in
  let via_scheme =
    run (fun () -> { base with Tinca.Config.commit_scheme = Tinca.Config.Logging pipeline })
  in
  let via_shim = run (fun () -> { base with Tinca.Config.commit_pipeline = pipeline }) in
  via_scheme = via_shim

(* --- the CI gate (tinca_bench check-page) -------------------------------- *)

(* A paging workload observed end to end by psan (with the paging region
   classes attached): commits, overwrites, then recovery — zero
   violations expected. *)
let psan_paging_clean () =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:(1024 * 1024) () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let config =
    {
      Tinca.Config.default with
      Tinca.Config.nvm_bytes = 1024 * 1024;
      commit_scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg;
      nshards = 2;
    }
  in
  let tc = Tinca.ok_exn (Tinca.format ~config ~pmem ~disk ~clock ~metrics) in
  let san = Psan.attach ~page_layouts:(Tinca.page_layouts tc) pmem in
  let payload = Bytes.make 4096 'q' in
  for c = 0 to 23 do
    Psan.txn_begin san;
    let h = Tinca.init_txn tc in
    for i = 0 to 2 do
      Tinca.ok_exn (Tinca.write h ((c + (i * 17)) mod 48) payload)
    done;
    Tinca.ok_exn (Tinca.commit h);
    Psan.txn_end san
  done;
  (match Tinca.recover ~pmem ~disk ~clock ~metrics with
  | Ok recovered -> Tinca.check_invariants recovered
  | Error e -> failwith (Tinca.error_message e));
  Psan.detach san;
  Psan.violation_count san

let paging_geom n =
  {
    Lockstep.default_geometry with
    Lockstep.nshards = n;
    scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg;
  }

let check () =
  let samples = sweep () in
  let paging = List.filter (fun s -> s.scheme = "paging") samples in
  let fences = List.map (fun s -> s.sfences_per_commit) paging in
  let fmax = List.fold_left max neg_infinity fences in
  let fmin = List.fold_left min infinity fences in
  let flat_ok = paging <> [] && fmax -. fmin <= 0.10 && fmax <= 4.0 in
  let shim_ok = shim_pin ~pipeline:Tinca.Batched ~n:8 && shim_pin ~pipeline:Tinca.Per_block ~n:2 in
  (* Budgeted crash-space sweep of the paging protocol: every stride-th
     crash point, capped survival subsets, at N=1 and N=4. *)
  let crash_report n stride =
    Check.explore
      {
        Check.default_config with
        Check.nshards = n;
        scheme = Tinca.Config.Paging Tinca.Config.default_page_cfg;
        pmem_bytes = 512 * 1024;
        ncommits = 4;
        mask_cap = 32;
        stride;
      }
  in
  let r1 = crash_report 1 3 and r4 = crash_report 4 5 in
  let crash_ok = r1.Check.violations = [] && r4.Check.violations = [] in
  (* Lockstep spec refinement (no crash injection here — the sweep above
     covers crashes): both schemes, N=1 and N=4, a pinned seed each. *)
  let lockstep_ok g =
    let cmds = Lockstep.gen ~seed:11 ~len:64 ~universe:g.Lockstep.universe in
    match Lockstep.run g cmds with Ok _ -> true | Error _ -> false
  in
  let refine_ok =
    lockstep_ok (paging_geom 1) && lockstep_ok (paging_geom 4)
    && lockstep_ok { Lockstep.default_geometry with Lockstep.nshards = 4 }
  in
  let psan_violations = psan_paging_clean () in
  let psan_ok = psan_violations = 0 in
  let verdict = Tabular.create ~title:"check-page verdict" [ "property"; "value"; "ok" ] in
  Tabular.add_row verdict
    [
      "paging fence budget flat in txn size";
      Printf.sprintf "sfences/commit in [%.2f, %.2f] over %s blocks" fmin fmax
        (String.concat "," (List.map string_of_int txn_sizes));
      (if flat_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "commit_scheme == commit_pipeline spelling (media + cost)";
      "batched n=8, per-block n=2";
      (if shim_ok then "ok" else "MISMATCH");
    ];
  Tabular.add_row verdict
    [
      "paging crash-space sweep clean (N=1, N=4)";
      Printf.sprintf "%d + %d states checked" r1.Check.states_checked r4.Check.states_checked;
      (if crash_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "lockstep refinement (paging N=1/4, logging N=4)";
      "seed 11, 64 commands";
      (if refine_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "psan clean on paging workload (N=2 + recovery)";
      Printf.sprintf "%d violations" psan_violations;
      (if psan_ok then "ok" else "FAIL");
    ];
  ( [ table samples; verdict ],
    flat_ok && shim_ok && crash_ok && refine_ok && psan_ok )

(* --- machine-readable dump (the log_vs_page block of BENCH_commit.json) -- *)

let json_block () =
  let samples = sweep () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "  \"log_vs_page\": {\n    \"samples\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"scheme\": \"%s\", \"txn_blocks\": %d, \"commits\": %d, \
            \"sim_ns_per_commit\": %.1f, \"sfences_per_commit\": %.2f, \
            \"nvm_write_amp\": %.4f, \"recovery_ns\": %.1f}"
           s.scheme s.txn_blocks s.commits s.ns_per_commit s.sfences_per_commit s.nvm_write_amp
           s.recovery_ns))
    samples;
  Buffer.add_string buf "\n    ],\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"crossover_txn_blocks\": %s\n  }"
       (match crossover samples with Some n -> string_of_int n | None -> "null"));
  Buffer.contents buf
