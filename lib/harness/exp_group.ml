(* fig_group: async group commit quantified (ISSUE 8).

   The multi-queue driver runs K open-loop commit_async streams
   (pipeline depth 1 per stream) against one facade with a nonzero
   group window, so every round's ~K transactions drain under ONE
   stage-A flush+fence, one slot publish with a single Head advance,
   one batched role switch and one Tail persist — sfences-per-commit
   falls like ~6/K where the synchronous pipeline pays ~6 per commit.
   The price is the ack-to-durable window: a sealed transaction is
   visible at once but durable only at the batch drain, so the figure
   reports p50/p99 sealed-to-durable latency next to the fence counts
   (acceptance: p99 bounded by the configured window).

   `tinca_bench check-group` gates CI on three properties: the window=0
   async path is media- and cost-identical to the synchronous pipeline,
   sfences/commit < 1 at >= 8 streams, and p99 ack latency <= window. *)

module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Tabular = Tinca_util.Tabular
module Histogram = Tinca_util.Histogram
open Tinca_sim

let nvm_bytes = 8 * 1024 * 1024

type sample = {
  streams : int;
  window_ns : int;
  commits : int;
  sfences_per_commit : float;
  batches : int;
  txns_per_batch : float;
  head_advances : int;
  ns_per_commit : float;
  ack_p50_ns : float;
  ack_p99_ns : float;
  pending_high_water : int;
  drains : (string * int) list;
}

let stream_counts = [ 1; 2; 4; 8; 16; 32 ]

(* The window is the worst-case ack-to-durable bound, so it must
   dominate a full round of submissions PLUS the batch drain's own
   flush burst (~42 us per txn serial; 32 streams ~ 2.2 ms end to
   end).  In steady state the depth-1 awaiters drain every batch long
   before the deadline — the deadline path is exercised by the unit
   tests and the lockstep sweep — and the check gates p99 ack latency
   (queue wait + drain execution) against this bound. *)
let default_window_ns = 4_000_000

(* Mixed-size transactions (mean 2 blocks, Exp_commit.measured_size)
   over a 2048-block universe: the spread feeds the latency percentiles
   while same-block conflicts (which force an early batch drain) stay
   rare even at 32 streams, so the figure isolates the window/batch
   mechanics. *)
let mq_config ~streams ~async =
  {
    Mq_driver.default with
    Mq_driver.streams;
    txns_per_stream = 16;
    txn_blocks = 2;
    universe = 2048;
    async;
    mixed_sizes = true;
  }

(* A fresh facade per point: the ack-to-durable histogram and the fence
   counters then cover exactly this run (no warm-up phase — batching
   delay does not depend on cache warmth). *)
let run_point ~streams ~window =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm_bytes () in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let config =
    {
      Tinca.Config.default with
      Tinca.Config.nvm_bytes;
      ring_slots = 4096;
      group_window_ns = window;
      group_max_batch = 64;
    }
  in
  let tc = Tinca.ok_exn (Tinca.format ~config ~pmem ~disk ~clock ~metrics) in
  let cfg = mq_config ~streams ~async:(window > 0) in
  let t0 = Clock.now_ns clock in
  let r = Mq_driver.run ~clock ~metrics cfg tc in
  let ack = Tinca.group_ack_to_durable tc in
  let pctl p = if Histogram.count ack = 0 then 0.0 else Histogram.percentile ack p in
  {
    streams;
    window_ns = window;
    commits = r.Mq_driver.commits;
    sfences_per_commit = float_of_int r.Mq_driver.sfences /. float_of_int r.Mq_driver.commits;
    batches = r.Mq_driver.group_batches;
    txns_per_batch =
      (if r.Mq_driver.group_batches = 0 then 0.0
       else float_of_int r.Mq_driver.commits /. float_of_int r.Mq_driver.group_batches);
    head_advances = r.Mq_driver.head_advances;
    ns_per_commit = (Clock.now_ns clock -. t0) /. float_of_int r.Mq_driver.commits;
    ack_p50_ns = pctl 50.0;
    ack_p99_ns = pctl 99.0;
    pending_high_water = Tinca.group_pending_high_water tc;
    drains = Tinca.group_drains_by_cause tc;
  }

let sweep ?(window = default_window_ns) () =
  List.concat_map
    (fun streams -> [ run_point ~streams ~window:0; run_point ~streams ~window ])
    stream_counts

let table samples =
  let t =
    Tabular.create
      ~title:
        "fig_group: async group commit — fences amortized over the standing batch (ISSUE 8)"
      [
        "streams"; "window ns"; "commits"; "sfences/commit"; "batches"; "txns/batch";
        "head advances"; "ns/commit"; "ack p50 ns"; "ack p99 ns"; "peak pending"; "drain causes";
      ]
  in
  List.iter
    (fun s ->
      Tabular.add_row t
        [
          Tabular.cell_i s.streams;
          Tabular.cell_i s.window_ns;
          Tabular.cell_i s.commits;
          Tabular.cell_f ~decimals:2 s.sfences_per_commit;
          Tabular.cell_i s.batches;
          Tabular.cell_f ~decimals:1 s.txns_per_batch;
          Tabular.cell_i s.head_advances;
          Tabular.cell_f ~decimals:0 s.ns_per_commit;
          Tabular.cell_f ~decimals:0 s.ack_p50_ns;
          Tabular.cell_f ~decimals:0 s.ack_p99_ns;
          Tabular.cell_i s.pending_high_water;
          String.concat " "
            (List.map (fun (cause, n) -> Printf.sprintf "%s:%d" cause n) s.drains);
        ])
    samples;
  t

let fig_group () = [ table (sweep ()) ]

(* --- the window=0 equivalence pin and the CI gate ------------------------ *)

(* Run the same stream workload twice — synchronous commits vs
   commit_async/await with window 0 — and require identical media
   content, identical simulated cost and identical fence counts: the
   async plumbing must be byte-free on the classic path. *)
let window0_pin ~streams =
  let run ~async =
    let clock = Clock.create () in
    let metrics = Metrics.create () in
    let pmem = Pmem.create ~clock ~metrics ~tech:Latency.Pcm ~size:nvm_bytes () in
    let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
    let config =
      { Tinca.Config.default with Tinca.Config.nvm_bytes; ring_slots = 4096 }
    in
    let tc = Tinca.ok_exn (Tinca.format ~config ~pmem ~disk ~clock ~metrics) in
    let r = Mq_driver.run ~clock ~metrics (mq_config ~streams ~async) tc in
    let ns = Clock.now_ns clock in
    let buf = Buffer.create (512 * 4096) in
    for blk = 0 to 511 do
      Buffer.add_bytes buf (Tinca.ok_exn (Tinca.read tc blk))
    done;
    (Digest.string (Buffer.contents buf), ns, r.Mq_driver.sfences)
  in
  let d_sync, ns_sync, sf_sync = run ~async:false in
  let d_async, ns_async, sf_async = run ~async:true in
  (d_sync = d_async && ns_sync = ns_async && sf_sync = sf_async, ns_sync, ns_async)

let check ?(window = default_window_ns) () =
  let samples = sweep ~window () in
  let pin_ok, ns_sync, ns_async = window0_pin ~streams:8 in
  let grouped = List.filter (fun s -> s.window_ns > 0 && s.streams >= 8) samples in
  let fences_ok = grouped <> [] && List.for_all (fun s -> s.sfences_per_commit < 1.0) grouped in
  let latency_ok =
    List.for_all (fun s -> s.ack_p99_ns <= float_of_int s.window_ns)
      (List.filter (fun s -> s.window_ns > 0) samples)
  in
  let verdict =
    Tabular.create ~title:"check-group verdict" [ "property"; "value"; "ok" ]
  in
  Tabular.add_row verdict
    [
      "window=0 media + cost equivalence (8 streams)";
      Printf.sprintf "sync %.0f ns vs async %.0f ns" ns_sync ns_async;
      (if pin_ok then "ok" else "MISMATCH");
    ];
  Tabular.add_row verdict
    [
      "sfences/commit < 1 at >= 8 streams";
      String.concat ", "
        (List.map (fun s -> Printf.sprintf "K=%d: %.2f" s.streams s.sfences_per_commit) grouped);
      (if fences_ok then "ok" else "FAIL");
    ];
  Tabular.add_row verdict
    [
      "p99 ack latency <= window";
      String.concat ", "
        (List.filter_map
           (fun s ->
             if s.window_ns = 0 then None
             else Some (Printf.sprintf "K=%d: %.0f" s.streams s.ack_p99_ns))
           samples);
      (if latency_ok then "ok" else "FAIL");
    ];
  ([ table samples; verdict ], pin_ok && fences_ok && latency_ok)

(* --- machine-readable dump (the fig_group block of BENCH_commit.json) ---- *)

let json_block () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "  \"group\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"streams\": %d, \"group_window_ns\": %d, \"commits\": %d, \
            \"sfences_per_commit\": %.3f, \"batches\": %d, \"txns_per_batch\": %.1f, \
            \"head_advances\": %d, \"sim_ns_per_commit\": %.1f, \"ack_p50_ns\": %.1f, \
            \"ack_p99_ns\": %.1f, \"pending_high_water\": %d, \"drains_by_cause\": {%s}}"
           s.streams s.window_ns s.commits s.sfences_per_commit s.batches s.txns_per_batch
           s.head_advances s.ns_per_commit s.ack_p50_ns s.ack_p99_ns s.pending_high_water
           (String.concat ", "
              (List.map (fun (cause, n) -> Printf.sprintf "\"%s\": %d" cause n) s.drains))))
    (sweep ());
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf
