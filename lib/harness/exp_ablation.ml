(** Extension experiments beyond the paper's figures, probing the design
    choices DESIGN.md calls out.

    - [ubj_compare] (§5.4.4 quantified): Tinca vs UBJ vs Classic on Fio
      and Varmail.
    - [writeback_ablation]: Tinca's write-back default vs write-through
      (what role switch buys once checkpointing is forced back in:
      write-through pays a disk write per committed block, like
      checkpointing would).
    - [batching_ablation]: fsync interval sweep — how transaction
      coalescing amortizes the per-commit overheads in both systems.
    - [wear]: NVM lines persisted per logical MB written — the endurance
      argument of §1 (double writes ~halve NVM cache lifetime). *)

module Stacks = Tinca_stacks.Stacks
module Cache = Tinca_core.Cache
module Fio = Tinca_workloads.Fio
module Filebench = Tinca_workloads.Filebench
module Ops = Tinca_workloads.Ops
module Tabular = Tinca_util.Tabular

let fio_cfg = { Fio.default with file_size = 16 * 1024 * 1024; read_pct = 0.3; ops = 6_000 }

let ubj_compare () =
  let run_fio spec =
    Runner.run_local ~spec
      ~prealloc:(fun ops -> Fio.prealloc fio_cfg ops)
      ~work:(fun ops -> Fio.run fio_cfg ops)
      ()
  in
  let run_varmail spec =
    let cfg = { (Filebench.default Filebench.Varmail) with nfiles = 300; mean_file_kb = 16; ops = 3_000 } in
    let st = ref None in
    Runner.run_local ~spec
      ~prealloc:(fun ops -> st := Some (Filebench.prealloc cfg ops))
      ~work:(fun ops -> Filebench.run (Option.get !st) ops)
      ()
  in
  let table =
    Tabular.create ~title:"5.4.4 quantified: Tinca vs UBJ vs Classic throughput (ops/s)"
      [ "Workload"; "Classic"; "UBJ"; "Tinca"; "Tinca/UBJ" ]
  in
  List.iter
    (fun (label, run) ->
      let classic = run (fun env -> Stacks.classic ~journal_len:4096 env) in
      let ubj = run (fun env -> Stacks.ubj env) in
      let tinca = run (fun env -> Stacks.tinca env) in
      Tabular.add_row table
        [
          label;
          Tabular.cell_f ~decimals:0 classic.Runner.throughput;
          Tabular.cell_f ~decimals:0 ubj.Runner.throughput;
          Tabular.cell_f ~decimals:0 tinca.Runner.throughput;
          Runner.ratio_str tinca.Runner.throughput ubj.Runner.throughput;
        ])
    [ ("fio 3/7", run_fio); ("varmail", run_varmail) ];
  [ table ]

let writeback_ablation () =
  let run mode =
    let spec = Stacks.tinca ~config:{ Tinca.Config.default with Tinca.Config.write_policy = mode } in
    Runner.run_local ~spec
      ~prealloc:(fun ops -> Fio.prealloc fio_cfg ops)
      ~work:(fun ops -> Fio.run fio_cfg ops)
      ()
  in
  let wb = run Cache.Write_back in
  let wt = run Cache.Write_through in
  let table =
    Tabular.create
      ~title:"Ablation: write-back (role switch, no checkpoint) vs write-through (forced disk write per commit)"
      [ "Mode"; "IOPS"; "disk writes/op" ]
  in
  Tabular.add_row table
    [ "write-back"; Tabular.cell_f ~decimals:0 wb.Runner.throughput;
      Tabular.cell_f wb.Runner.disk_writes_per_op ];
  Tabular.add_row table
    [ "write-through"; Tabular.cell_f ~decimals:0 wt.Runner.throughput;
      Tabular.cell_f wt.Runner.disk_writes_per_op ];
  [ table ]

let batching_ablation () =
  let table =
    Tabular.create ~title:"Ablation: transaction coalescing (fsync every N writes), Fio write IOPS"
      [ "fsync interval"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  List.iter
    (fun interval ->
      let cfg = { fio_cfg with Fio.fsync_every = interval; read_pct = 0.0 } in
      let run spec =
        Runner.run_local ~spec
          ~prealloc:(fun ops -> Fio.prealloc cfg ops)
          ~work:(fun ops -> Fio.run cfg ops)
          ()
      in
      let tinca = run (fun env -> Stacks.tinca env) in
      let classic = run (fun env -> Stacks.classic ~journal_len:4096 env) in
      Tabular.add_row table
        [
          string_of_int interval;
          Tabular.cell_f ~decimals:0 classic.Runner.throughput;
          Tabular.cell_f ~decimals:0 tinca.Runner.throughput;
          Runner.ratio_str tinca.Runner.throughput classic.Runner.throughput;
        ])
    [ 1; 8; 64 ];
  [ table ]

let wear () =
  let run spec =
    let env_holder = ref None in
    let m =
      Runner.run_local
        ~spec:(fun env ->
          env_holder := Some env;
          spec env)
        ~prealloc:(fun ops -> Fio.prealloc fio_cfg ops)
        ~work:(fun ops -> Fio.run fio_cfg ops)
        ()
    in
    (m, Tinca_pmem.Pmem.wear_max (Option.get !env_holder).Stacks.pmem)
  in
  let t_m, t_max = run (fun env -> Stacks.tinca env) in
  let c_m, c_max = run (fun env -> Stacks.classic ~journal_len:4096 env) in
  let per_mb m = float_of_int m.Runner.lines_persisted /. Runner.mb m.Runner.stats.Ops.bytes_written in
  let table =
    Tabular.create ~title:"Extension: NVM wear (lines persisted) per logical MB written — endurance (§1)"
      [ "System"; "lines/MB"; "max line wear"; "relative" ]
  in
  Tabular.add_row table
    [ "Classic"; Tabular.cell_f ~decimals:0 (per_mb c_m); Tabular.cell_i c_max; "1.00x" ];
  Tabular.add_row table
    [ "Tinca"; Tabular.cell_f ~decimals:0 (per_mb t_m); Tabular.cell_i t_max;
      Runner.ratio_str (per_mb t_m) (per_mb c_m) ];
  [ table ]

let wear_leveling () =
  (* Extension: FIFO (round-robin) NVM block allocation spreads COW write
     wear across the whole data region; LIFO reuse concentrates it.  The
     effect shows on a hot working set that fits the cache (no eviction
     churn): every page is repeatedly COW-updated in place. *)
  let module Fm = Tinca_cachelib.Free_monitor in
  let hot_cfg =
    { Fio.default with file_size = 1 lsl 20; read_pct = 0.0; ops = 6_000; fsync_every = 8 }
  in
  let run policy =
    let env_holder = ref None in
    let m =
      Runner.run_local
        ~spec:(fun env ->
          env_holder := Some env;
          Stacks.tinca ~config:{ Tinca.Config.default with Tinca.Config.alloc_policy = policy } env)
        ~prealloc:(fun ops -> Fio.prealloc hot_cfg ops)
        ~work:(fun ops -> Fio.run hot_cfg ops)
        ()
    in
    let env = Option.get !env_holder in
    let pmem = env.Stacks.pmem in
    (* Measure over the data region only: the ring, pointers and entry
       table are hot under any allocation policy. *)
    let layout =
      Tinca_core.Layout.compute ~pmem_bytes:(Tinca_pmem.Pmem.size pmem) ~block_size:4096
        ~ring_slots:Cache.default_config.Cache.ring_slots
    in
    let data_max =
      Tinca_pmem.Pmem.wear_max_in pmem ~off:layout.Tinca_core.Layout.data_off
        ~len:(layout.Tinca_core.Layout.nblocks * 4096)
    in
    (m, data_max)
  in
  let lifo_m, lifo_max = run Fm.Lifo in
  let fifo_m, fifo_max = run Fm.Fifo in
  let table =
    Tabular.create
      ~title:"Extension: wear leveling via FIFO block allocation (Fio 100% write)"
      [ "Allocation"; "IOPS"; "max data-line wear"; "lifetime gain" ]
  in
  Tabular.add_row table
    [ "LIFO (hot reuse)"; Tabular.cell_f ~decimals:0 lifo_m.Runner.throughput;
      Tabular.cell_i lifo_max; "1.0x" ];
  Tabular.add_row table
    [ "FIFO (round-robin)"; Tabular.cell_f ~decimals:0 fifo_m.Runner.throughput;
      Tabular.cell_i fifo_max;
      Printf.sprintf "%.1fx" (float_of_int lifo_max /. float_of_int (max 1 fifo_max)) ];
  [ table ]

let flush_instr () =
  (* Extension (paper §2.1/§5.1): the prototype's Xeon only supported
     clflush; clflushopt and clwb were "proposed to substitute clflush
     but still bring in overheads".  Model them and measure both
     stacks. *)
  let open Tinca_sim in
  let run instr spec =
    let m =
      Runner.run_local ~flush_instr:instr ~spec
        ~prealloc:(fun ops -> Fio.prealloc fio_cfg ops)
        ~work:(fun ops -> Fio.run fio_cfg ops)
        ()
    in
    m.Runner.throughput
  in
  let table =
    Tabular.create
      ~title:"Extension: cache-line flush instruction (Fio 3/7, IOPS)"
      [ "Instruction"; "Classic"; "Tinca"; "Tinca/Classic" ]
  in
  List.iter
    (fun instr ->
      let classic = run instr (fun env -> Stacks.classic ~journal_len:4096 env) in
      let tinca = run instr (fun env -> Stacks.tinca env) in
      Tabular.add_row table
        [ Latency.flush_instr_name instr; Tabular.cell_f ~decimals:0 classic;
          Tabular.cell_f ~decimals:0 tinca; Runner.ratio_str tinca classic ])
    [ Latency.Clflush; Latency.Clflushopt; Latency.Clwb ];
  [ table ]

let consistency_levels () =
  (* Extension (paper §2.3): the consistency-level spectrum.  On the
     Classic stack, data=ordered dodges the double write of file data
     and beats data=journal; on Tinca the full data-consistency level is
     already cheap, so giving it up buys little — the thesis of the
     paper, measured. *)
  let run spec ~journaled ~ordered =
    let fs_config = { Runner.default_fs_config with Tinca_fs.Fs.ordered } in
    let m =
      Runner.run_local ~spec ~journaled ~fs_config
        ~prealloc:(fun ops -> Fio.prealloc fio_cfg ops)
        ~work:(fun ops -> Fio.run fio_cfg ops)
        ()
    in
    m.Runner.throughput
  in
  let table =
    Tabular.create
      ~title:"Extension: consistency levels (Fio 3/7, IOPS) — 2.3's spectrum"
      [ "Mode"; "Classic"; "Tinca"; "consistency" ]
  in
  let classic = (fun env -> Stacks.classic ~journal_len:4096 env) in
  let tinca = (fun env -> Stacks.tinca env) in
  Tabular.add_row table
    [ "data=journal (paper's level)";
      Tabular.cell_f ~decimals:0 (run classic ~journaled:true ~ordered:false);
      Tabular.cell_f ~decimals:0 (run tinca ~journaled:true ~ordered:false);
      "metadata + data" ];
  Tabular.add_row table
    [ "data=ordered";
      Tabular.cell_f ~decimals:0 (run classic ~journaled:true ~ordered:true);
      Tabular.cell_f ~decimals:0 (run tinca ~journaled:true ~ordered:true);
      "metadata only" ];
  Tabular.add_row table
    [ "no journal";
      Tabular.cell_f ~decimals:0 (run (fun env -> Stacks.nojournal env) ~journaled:false ~ordered:false);
      Tabular.cell_f ~decimals:0 (run tinca ~journaled:false ~ordered:false);
      "none" ];
  [ table ]

let page_cache () =
  (* Extension (Fig 1(c)): a DRAM buffer cache above the NVM cache.  A
     read-heavy workload (webproxy) shows how much NVM read traffic the
     DRAM tier absorbs, and what it does to throughput. *)
  let run pages =
    let cfg =
      { (Filebench.default Filebench.Webproxy) with nfiles = 300; mean_file_kb = 24; ops = 3_000 }
    in
    let fs_config = { Runner.default_fs_config with Tinca_fs.Fs.page_cache_pages = pages } in
    let st = ref None in
    Runner.run_local ~fs_config
      ~spec:(fun env -> Stacks.tinca env)
      ~prealloc:(fun ops -> st := Some (Filebench.prealloc cfg ops))
      ~work:(fun ops -> Filebench.run (Option.get !st) ops)
      ()
  in
  let table =
    Tabular.create
      ~title:"Extension: DRAM buffer cache above Tinca (webproxy, read-heavy)"
      [ "Page-cache pages"; "OPs/s"; "clflush/op"; "relative throughput" ]
  in
  let base = run 0 in
  List.iter
    (fun pages ->
      let m = if pages = 0 then base else run pages in
      Tabular.add_row table
        [
          string_of_int pages;
          Tabular.cell_f ~decimals:0 m.Runner.throughput;
          Tabular.cell_f ~decimals:1 m.Runner.clflush_per_op;
          Runner.ratio_str m.Runner.throughput base.Runner.throughput;
        ])
    [ 0; 512; 2048; 8192 ];
  [ table ]
