(* Multi-queue workload driver (ISSUE 5): K concurrent transaction
   streams issued round-robin against one Tinca facade.

   The simulation is single-threaded, so "concurrent" means: the streams
   interleave their transactions round-robin on the shared simulated
   clock, and the parallelism a per-shard-threaded execution would buy
   is modelled by the sharded layer's lane accounting — each sub-
   commit's clock delta is attributed to its shard's lane, cross-shard
   sync points equalize lanes, and the makespan (max lane) is the
   parallel wall-clock.  [serial_ns] is the plain single-threaded clock
   time of the same run, so serial_ns / makespan_ns is the modelled
   speedup. *)

module Shard = Tinca_core.Shard
module Rng = Tinca_util.Rng
open Tinca_sim

type config = {
  streams : int;  (* K concurrent streams *)
  txns_per_stream : int;
  txn_blocks : int;  (* block writes per transaction *)
  universe : int;  (* disk blocks the streams draw from *)
  zipf_theta : float;  (* 0.0 = uniform *)
  seed : int;
  async : bool;  (* open-loop commit_async streams (ISSUE 8) *)
  mixed_sizes : bool;  (* per-txn size from Exp_commit.measured_size *)
}

let default =
  {
    streams = 8;
    txns_per_stream = 32;
    txn_blocks = 8;
    universe = 256;
    zipf_theta = 0.0;
    seed = 11;
    async = false;
    mixed_sizes = false;
  }

type result = {
  commits : int;
  block_writes : int;
  multi_shard_commits : int;
  sfences : int;
  head_advances : int;
  group_batches : int;
  serial_ns : float;
  makespan_ns : float;
}

(* Per-stream block choice: uniform, or Zipf-skewed with a per-stream
   permutation offset so hot keys differ between streams. *)
let block_picker cfg k rng =
  if cfg.zipf_theta <= 0.0 then fun () -> Rng.int rng cfg.universe
  else begin
    let z = Tinca_util.Zipf.create ~n:cfg.universe ~theta:cfg.zipf_theta in
    fun () -> (Tinca_util.Zipf.sample z rng + (k * 17)) mod cfg.universe
  end

let run ~clock ~metrics cfg tc =
  if cfg.streams < 1 then invalid_arg "Mq_driver.run: streams must be >= 1";
  let shard = Tinca.shard tc in
  let nshards = Tinca.nshards tc in
  let payload = Bytes.make (Tinca.block_size tc) 'm' in
  let pick =
    Array.init cfg.streams (fun k -> block_picker cfg k (Rng.create (cfg.seed + (31 * k))))
  in
  Shard.reset_lanes shard;
  let sf0 = Metrics.get metrics "pmem.sfence" in
  let ha0 = Metrics.get metrics "tinca.head_advance" in
  let gb0 = Metrics.get metrics "tinca.shard.group_commits" in
  let t0 = Clock.now_ns clock in
  let commits = ref 0 and block_writes = ref 0 and multi = ref 0 in
  (* Open-loop async streams run at pipeline depth 1: a stream awaits
     its previous ticket before submitting the next transaction, so the
     oldest waiter of each round drains the whole standing batch (~K
     transactions) with one fence sequence — the JBD2 group-commit
     shape on the NVM side. *)
  let tickets = Array.make cfg.streams None in
  let issued = Array.make cfg.streams 0 in
  for _round = 1 to cfg.txns_per_stream do
    for k = 0 to cfg.streams - 1 do
      (match tickets.(k) with
      | Some tk ->
          Tinca.ok_exn (Tinca.await tk);
          tickets.(k) <- None
      | None -> ());
      let size =
        if cfg.mixed_sizes then Exp_commit.measured_size ~n:cfg.txn_blocks issued.(k)
        else cfg.txn_blocks
      in
      issued.(k) <- issued.(k) + 1;
      let txn = Tinca.init_txn tc in
      let touched = Hashtbl.create 8 in
      for _ = 1 to size do
        let blk = pick.(k) () in
        Tinca.ok_exn (Tinca.write txn blk payload);
        incr block_writes;
        Hashtbl.replace touched (Shard.stripe ~nshards blk) ()
      done;
      if cfg.async then tickets.(k) <- Some (Tinca.ok_exn (Tinca.commit_async txn))
      else Tinca.ok_exn (Tinca.commit txn);
      incr commits;
      if Hashtbl.length touched > 1 then incr multi
    done
  done;
  Array.iter (function Some tk -> Tinca.ok_exn (Tinca.await tk) | None -> ()) tickets;
  {
    commits = !commits;
    block_writes = !block_writes;
    multi_shard_commits = !multi;
    sfences = Metrics.get metrics "pmem.sfence" - sf0;
    head_advances = Metrics.get metrics "tinca.head_advance" - ha0;
    group_batches = Metrics.get metrics "tinca.shard.group_commits" - gb0;
    serial_ns = Clock.now_ns clock -. t0;
    makespan_ns = Shard.makespan_ns shard;
  }
