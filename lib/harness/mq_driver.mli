(** Multi-queue workload driver: K concurrent transaction streams issued
    round-robin against one {!Tinca} facade (ISSUE 5).

    The simulation is single-threaded; parallelism across shards is
    modelled by {!Tinca_core.Shard}'s lane accounting.  [serial_ns] is
    the plain simulated clock time of the run; [makespan_ns] is the
    lane-model wall-clock a per-shard-threaded execution would take
    (equal to the shard-op serial time at N=1), so commit throughput
    under sharding is [commits / makespan_ns]. *)

type config = {
  streams : int;  (** K concurrent streams *)
  txns_per_stream : int;
  txn_blocks : int;  (** block writes per transaction *)
  universe : int;  (** disk blocks the streams draw from *)
  zipf_theta : float;  (** 0.0 = uniform; 0.99 = YCSB-style skew *)
  seed : int;
  async : bool;
      (** open-loop [Tinca.commit_async] streams at pipeline depth 1
          (ISSUE 8): each stream awaits its previous ticket before
          submitting the next transaction, so the oldest waiter drains
          the standing ~K-transaction batch once per round.  Requires a
          facade with [Config.group_window_ns > 0] to actually batch;
          with window 0 it degenerates to the synchronous path. *)
  mixed_sizes : bool;
      (** draw each transaction's block count from
          [Exp_commit.measured_size] (uniform over [1, 2n-1], mean
          [txn_blocks]) instead of the fixed [txn_blocks], so latency
          percentiles carry real spread *)
}

(** 8 streams x 32 txns of 8 blocks over a 256-block universe, uniform,
    synchronous. *)
val default : config

type result = {
  commits : int;
  block_writes : int;
  multi_shard_commits : int;  (** commits whose blocks striped to > 1 shard *)
  sfences : int;  (** pmem.sfence delta over the run *)
  head_advances : int;  (** tinca.head_advance delta (one per batch per shard) *)
  group_batches : int;  (** tinca.shard.group_commits delta (async drains) *)
  serial_ns : float;
  makespan_ns : float;
}

(** Run the driver.  [clock]/[metrics] must be the ones the facade was
    built on.  Resets the shard lanes first, so [makespan_ns] covers
    exactly this run. *)
val run : clock:Tinca_sim.Clock.t -> metrics:Tinca_sim.Metrics.t -> config -> Tinca.t -> result
