(** Multi-queue workload driver: K concurrent transaction streams issued
    round-robin against one {!Tinca} facade (ISSUE 5).

    The simulation is single-threaded; parallelism across shards is
    modelled by {!Tinca_core.Shard}'s lane accounting.  [serial_ns] is
    the plain simulated clock time of the run; [makespan_ns] is the
    lane-model wall-clock a per-shard-threaded execution would take
    (equal to the shard-op serial time at N=1), so commit throughput
    under sharding is [commits / makespan_ns]. *)

type config = {
  streams : int;  (** K concurrent streams *)
  txns_per_stream : int;
  txn_blocks : int;  (** block writes per transaction *)
  universe : int;  (** disk blocks the streams draw from *)
  zipf_theta : float;  (** 0.0 = uniform; 0.99 = YCSB-style skew *)
  seed : int;
}

(** 8 streams x 32 txns of 8 blocks over a 256-block universe, uniform. *)
val default : config

type result = {
  commits : int;
  block_writes : int;
  multi_shard_commits : int;  (** commits whose blocks striped to > 1 shard *)
  sfences : int;  (** pmem.sfence delta over the run *)
  serial_ns : float;
  makespan_ns : float;
}

(** Run the driver.  [clock]/[metrics] must be the ones the facade was
    built on.  Resets the shard lanes first, so [makespan_ns] covers
    exactly this run. *)
val run : clock:Tinca_sim.Clock.t -> metrics:Tinca_sim.Metrics.t -> config -> Tinca.t -> result
