(* fig_commit_batch: the fence-coalesced group commit quantified.

   A commit-path micro-benchmark drives Cache.Txn directly (no file
   system above it, so the numbers isolate the protocol itself) and
   sweeps transaction size x flush instruction x pipeline, reporting the
   paper's §5.1-style normalized quantities: sfences per commit, clflush
   write-backs per commit, and simulated nanoseconds per commit.  The
   per-block pipeline is the paper's literal §4.4 protocol (~4n + 2
   fences for an n-block transaction); the batched pipeline is the
   staged group commit (constant fences).  clflushopt/clwb give the
   batched pipeline a second lever: overlapping write-backs make the one
   big flush burst cheap, where serializing clflush pays full latency
   per line either way. *)

module Cache = Tinca_core.Cache
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Tabular = Tinca_util.Tabular
open Tinca_sim

type sample = {
  sfences_per_commit : float;
  writebacks_per_commit : float;
  ns_per_commit : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
}

let txn_sizes = [ 1; 8; 64 ]
let instrs = [ Latency.Clflush; Latency.Clflushopt; Latency.Clwb ]

(* Measured commit sizes form a mixed stream around the config size [n]:
   commit [c] writes [1 + (c * 7919 mod (2n - 1))] blocks (uniform over
   [1, 2n-1], mean n), so the latency histogram carries real spread
   instead of the degenerate p50 == p99 == max a single repeated commit
   produced.  [n = 1] stays a pure single-block stream.  Exported so
   Exp_shard's facade replay (the N=1 pin) and Exp_group use the exact
   same stream. *)
let measured_size ~n c = if n <= 1 then 1 else 1 + (c * 7919 mod ((2 * n) - 1))

(* 4 warm-up commits walk the whole 256-block universe once (at n = 64),
   so measured commits mix COW write hits with misses like a steady-state
   workload; 32 measured commits keep the sweep fast. *)
let micro ~pipeline ~instr ~n =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem =
    Pmem.create ~flush_instr:instr ~clock ~metrics ~tech:Latency.Pcm ~size:(8 * 1024 * 1024) ()
  in
  let disk = Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:4096 ~block_size:4096 in
  let cache =
    Cache.format
      ~config:{ Cache.default_config with ring_slots = 4096; commit_pipeline = pipeline }
      ~pmem ~disk ~clock ~metrics
  in
  let universe = 256 in
  let payload = Bytes.make 4096 'c' in
  (* The stream walks the universe sequentially; [next] carries the
     block cursor across commits so varying sizes shift transaction
     boundaries without changing the footprint. *)
  let next = ref 0 in
  let commit size =
    let h = Cache.Txn.init cache in
    for _ = 1 to size do
      Cache.Txn.add h (!next mod universe) payload;
      incr next
    done;
    Cache.Txn.commit h
  in
  let warmup = 4 and measured = 32 in
  for _ = 1 to warmup do
    commit n
  done;
  let t0 = Clock.now_ns clock in
  let sf0 = Metrics.get metrics "pmem.sfence" in
  let wb0 = Metrics.get metrics "pmem.clflush_writebacks" in
  let lat = Hist.create () in
  for c = 0 to measured - 1 do
    let c0 = Clock.now_ns clock in
    commit (measured_size ~n c);
    Hist.add lat (Clock.now_ns clock -. c0)
  done;
  let per x = float_of_int x /. float_of_int measured in
  let s = Hist.summary lat in
  {
    sfences_per_commit = per (Metrics.get metrics "pmem.sfence" - sf0);
    writebacks_per_commit = per (Metrics.get metrics "pmem.clflush_writebacks" - wb0);
    ns_per_commit = (Clock.now_ns clock -. t0) /. float_of_int measured;
    p50_ns = s.Hist.p50;
    p99_ns = s.Hist.p99;
    max_ns = s.Hist.max;
  }

let fig_commit_batch () =
  let table =
    Tabular.create
      ~title:
        "Ablation: fence-coalesced group commit vs per-block protocol (commit micro-benchmark)"
      [
        "txn blocks"; "flush instr"; "sfences/commit"; "flush WB/commit"; "ns/commit per-block";
        "ns/commit batched"; "speedup";
      ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun instr ->
          let pb = micro ~pipeline:Cache.Per_block ~instr ~n in
          let b = micro ~pipeline:Cache.Batched ~instr ~n in
          Tabular.add_row table
            [
              Tabular.cell_i n;
              Latency.flush_instr_name instr;
              Printf.sprintf "%.0f -> %.0f" pb.sfences_per_commit b.sfences_per_commit;
              Printf.sprintf "%.0f -> %.0f" pb.writebacks_per_commit b.writebacks_per_commit;
              Tabular.cell_f ~decimals:0 pb.ns_per_commit;
              Tabular.cell_f ~decimals:0 b.ns_per_commit;
              Printf.sprintf "%.2fx" (pb.ns_per_commit /. b.ns_per_commit);
            ])
        instrs)
    txn_sizes;
  [ table ]

(* --- machine-readable benchmark dump (make bench-json) ------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let trace_throughput () =
  let module Stacks = Tinca_stacks.Stacks in
  let module Trace = Tinca_workloads.Trace in
  let trace =
    Trace.synthesize ~seed:7 ~nblocks:4096 ~ops:8000 ~read_pct:0.5 ~zipf_theta:0.9 ~fsync_every:8
  in
  let run ?(journaled = true) spec =
    let m =
      Runner.run_local ~spec ~journaled
        ~prealloc:(fun ops -> Trace.prealloc ~block_size:4096 trace ops)
        ~work:(fun ops -> Trace.run ~block_size:4096 trace ops)
        ()
    in
    (m.Runner.throughput, Runner.lat_summary m "lat.fsync")
  in
  [
    ("tinca", run (fun env -> Stacks.tinca env));
    ("classic", run (fun env -> Stacks.classic ~journal_len:4096 env));
    ("ubj", run (fun env -> Stacks.ubj env));
    ("nojournal", run ~journaled:false (fun env -> Stacks.nojournal env));
  ]

(* The CI benchmark artifact: commit-protocol cost for every (pipeline,
   flush instruction, transaction size) point, the async group-commit
   sweep and the logging-vs-paging scheme ablation ([group_block] /
   [page_block], injected by the caller — usually [Exp_group.json_block]
   and [Exp_page.json_block] — because those modules sit above this
   one), plus end-to-end trace-replay throughput per stack so a
   regression anywhere in the write path shows up in the JSON diff. *)
let bench_json ~group_block ~page_block () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"commit\": [\n";
  let first = ref true in
  List.iter
    (fun pipeline ->
      let pname = match pipeline with Cache.Per_block -> "per_block" | Cache.Batched -> "batched" in
      List.iter
        (fun instr ->
          List.iter
            (fun n ->
              let s = micro ~pipeline ~instr ~n in
              if not !first then Buffer.add_string buf ",\n";
              first := false;
              Buffer.add_string buf
                (Printf.sprintf
                   "    {\"pipeline\": \"%s\", \"flush_instr\": \"%s\", \"txn_blocks\": %d, \
                    \"sim_ns_per_commit\": %.1f, \"sfences_per_commit\": %.2f, \
                    \"flush_writebacks_per_commit\": %.2f, \"p50_ns\": %.1f, \"p99_ns\": %.1f, \
                    \"max_ns\": %.1f}"
                   pname
                   (json_escape (Latency.flush_instr_name instr))
                   n s.ns_per_commit s.sfences_per_commit s.writebacks_per_commit s.p50_ns s.p99_ns
                   s.max_ns))
            txn_sizes)
        instrs)
    [ Cache.Per_block; Cache.Batched ];
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf (group_block ());
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (page_block ());
  Buffer.add_string buf ",\n  \"trace_replay\": [\n";
  let tput = trace_throughput () in
  List.iteri
    (fun i (stack, (ops_per_s, lat)) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let lat_fields =
        match lat with
        | None -> ""
        | Some s ->
            Printf.sprintf ", \"fsync_p50_ns\": %.1f, \"fsync_p99_ns\": %.1f, \"fsync_max_ns\": %.1f"
              s.Hist.p50 s.Hist.p99 s.Hist.max
      in
      Buffer.add_string buf
        (Printf.sprintf "    {\"stack\": \"%s\", \"throughput_ops_per_s\": %.0f%s}"
           (json_escape stack) ops_per_s lat_fields))
    tput;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
