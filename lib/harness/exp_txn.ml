(** Fig 13 and §5.4.3: transaction footprint and COW spatial overhead.

    Fig 13: number of data blocks per committed transaction for
    Fileserver vs Webproxy (paper: Fileserver commits roughly 2x the
    blocks of Webproxy).  §5.4.3: worst-case COW overhead = peak number
    of simultaneously pinned previous versions x 4 KB, as a fraction of
    the NVM cache (paper: ~0.4 %). *)

module Stacks = Tinca_stacks.Stacks
module Filebench = Tinca_workloads.Filebench
module Tabular = Tinca_util.Tabular
module Histogram = Tinca_util.Histogram

let nvm_bytes = 8 * 1024 * 1024

let run personality =
  (* Commit on a per-op cadence (the 5 s JBD2 timer stand-in) with the
     size threshold effectively off, so the transaction footprint
     reflects each workload's write intensity — the quantity Fig 13
     reports. *)
  let cfg =
    { (Filebench.default personality) with nfiles = 300; mean_file_kb = 32; ops = 3_000;
      commit_every_ops = 40 }
  in
  let fs_config = { Runner.default_fs_config with Tinca_fs.Fs.max_dirty_blocks = 100_000 } in
  let st = ref None in
  Runner.run_local ~nvm_bytes ~fs_config
    ~spec:(fun env -> Stacks.tinca env)
    ~prealloc:(fun ops -> st := Some (Filebench.prealloc cfg ops))
    ~work:(fun ops -> Filebench.run (Option.get !st) ops)
    ()

let fig13 () =
  let table =
    Tabular.create ~title:"Fig 13: data blocks per committed transaction (Tinca)"
      [ "Workload"; "commits"; "mean blk/txn"; "p50"; "p95"; "max" ]
  in
  let cow =
    Tabular.create ~title:"5.4.3: COW spatial overhead (worst-case two versions per block)"
      [ "Workload"; "peak COW blocks"; "bytes"; "% of NVM cache" ]
  in
  let footprints =
    List.map
      (fun p ->
        let m = run p in
        let hist = Option.get (m.Runner.stack.Stacks.txn_size_histogram ()) in
        Tabular.add_row table
          [
            Filebench.personality_name p;
            Tabular.cell_i (Histogram.count hist);
            Tabular.cell_f (Histogram.mean hist);
            Tabular.cell_f (Histogram.percentile hist 50.0);
            Tabular.cell_f (Histogram.percentile hist 95.0);
            Tabular.cell_f ~decimals:0 (Histogram.max_value hist);
          ];
        (p, m, Histogram.mean hist))
      [ Filebench.Fileserver; Filebench.Webproxy ]
  in
  (match footprints with
  | [ (_, _, fileserver_mean); (_, _, webproxy_mean) ] ->
      Tabular.add_row table
        [ "fileserver/webproxy"; "-"; Runner.ratio_str fileserver_mean webproxy_mean; "-"; "-"; "-" ]
  | _ -> ());
  List.iter
    (fun (p, m, _) ->
      let peak = m.Runner.stack.Stacks.peak_cow_blocks () in
      Tabular.add_row cow
        [
          Filebench.personality_name p;
          Tabular.cell_i peak;
          Tabular.cell_i (peak * 4096);
          Printf.sprintf "%.2f%%" (100.0 *. float_of_int (peak * 4096) /. float_of_int nvm_bytes);
        ])
    footprints;
  [ table; cow ]
