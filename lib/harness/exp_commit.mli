(** Commit-protocol micro-benchmark: the fence-coalesced group commit
    ablation and the machine-readable benchmark dump behind
    [make bench-json]. *)

(** Sweep transaction size x flush instruction x pipeline over
    [Cache.Txn.commit] and report sfences/commit, flush write-backs per
    commit and simulated ns/commit for the per-block baseline vs the
    batched group commit. *)
val fig_commit_batch : unit -> Tinca_util.Tabular.t list

(** Render the same sweep (plus trace-replay throughput per stack) as a
    JSON document — the [BENCH_commit.json] CI artifact. *)
val bench_json : unit -> string
