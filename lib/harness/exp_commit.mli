(** Commit-protocol micro-benchmark: the fence-coalesced group commit
    ablation and the machine-readable benchmark dump behind
    [make bench-json]. *)

(** One point of the commit micro-benchmark (normalized per commit). *)
type sample = {
  sfences_per_commit : float;
  writebacks_per_commit : float;
  ns_per_commit : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
}

(** Size of measured commit [c] in a config-[n] stream: uniform over
    [1, 2n-1] (mean [n]) by a fixed multiplicative walk, so percentile
    columns carry real spread; [n <= 1] stays a single-block stream.
    Shared by {!micro}, {!Exp_shard}'s N=1 pin replay and
    {!Exp_group}. *)
val measured_size : n:int -> int -> int

(** [micro ~pipeline ~instr ~n] — the single-ring commit-path
    micro-benchmark: a mixed-size stream (mean [n] blocks, see
    {!measured_size}) against an 8 MiB PCM device, 4 warm-up + 32
    measured commits walking a 256-block universe.  This is the exact
    workload behind [BENCH_commit.json]'s commit points; {!Exp_shard}
    replays it through the sharded facade for the N=1 equivalence
    pin. *)
val micro :
  pipeline:Tinca_core.Cache.pipeline ->
  instr:Tinca_sim.Latency.flush_instr ->
  n:int ->
  sample

(** Sweep transaction size x flush instruction x pipeline over
    [Cache.Txn.commit] and report sfences/commit, flush write-backs per
    commit and simulated ns/commit for the per-block baseline vs the
    batched group commit. *)
val fig_commit_batch : unit -> Tinca_util.Tabular.t list

(** Render the same sweep (plus [group_block ()] and [page_block ()] —
    normally [Exp_group.json_block] and [Exp_page.json_block], injected
    to avoid dependency cycles — and trace-replay throughput per stack)
    as a JSON document: the [BENCH_commit.json] CI artifact. *)
val bench_json : group_block:(unit -> string) -> page_block:(unit -> string) -> unit -> string
