(* fig_obs: the observability tentpole demonstrated end to end on one
   synthetic trace.

   Three tables come out of the same workload: (1) the /proc-style
   stats snapshot of a psan-instrumented Tinca stack (cache health +
   sanitizer redundant-flush attribution), (2) latency percentile
   ladders per stack and op type from the always-on histograms, and
   (3) a flame summary of a span-traced Tinca run showing where the
   commit protocol spends its simulated time and which stage pays
   which fences. *)

module Stacks = Tinca_stacks.Stacks
module Tabular = Tinca_util.Tabular
module Psan = Tinca_checker.Psan
module Trace = Tinca_obs.Trace
module Workload = Tinca_workloads.Trace
open Tinca_sim

let block_size = 4096

let workload () =
  Workload.synthesize ~seed:7 ~nblocks:4096 ~ops:4000 ~read_pct:0.5 ~zipf_theta:0.9 ~fsync_every:8

let run_stack ?(journaled = true) spec =
  let trace = workload () in
  Runner.run_local ~spec ~journaled
    ~prealloc:(fun ops -> Workload.prealloc ~block_size trace ops)
    ~work:(fun ops -> Workload.run ~block_size trace ops)
    ()

(* --- table 1: /proc-style snapshot ------------------------------------- *)

let proc_table () =
  let psan = ref None in
  let m =
    run_stack (fun env ->
        let stack, p = Stacks.instrument (Stacks.tinca env) in
        psan := Some p;
        stack)
  in
  let table =
    Tabular.create ~title:"/proc/tinca: stats snapshot after 4000-op synthetic trace"
      [ "key"; "value" ]
  in
  List.iter (fun (k, v) -> Tabular.add_row table [ k; v ]) (m.Runner.stack.Stacks.proc_stats ());
  (match !psan with
  | None -> ()
  | Some p ->
      let r = Psan.report p in
      Tabular.add_row table [ "psan.violations"; Tabular.cell_i (List.length r.Psan.violations) ];
      Tabular.add_row table [ "psan.redundant_flushes"; Tabular.cell_i r.Psan.redundant_flushes ];
      List.iter
        (fun (site, n) ->
          Tabular.add_row table [ "psan.redundant." ^ site; Tabular.cell_i n ])
        r.Psan.redundant_by_site);
  table

(* --- table 2: latency percentile ladders ------------------------------- *)

let lat_ops = [ "lat.pwrite"; "lat.fsync"; "lat.commit" ]

let lat_table () =
  let table =
    Tabular.create ~title:"Simulated latency percentiles per stack and op (us)"
      [ "stack"; "op"; "count"; "p50"; "p90"; "p99"; "p999"; "max" ]
  in
  let us ns = ns /. 1000.0 in
  let add m =
    List.iter
      (fun op ->
        match Runner.lat_summary m op with
        | None -> ()
        | Some s ->
            Tabular.add_row table
              [
                m.Runner.label; op; Tabular.cell_i s.Hist.count;
                Tabular.cell_f ~decimals:2 (us s.Hist.p50);
                Tabular.cell_f ~decimals:2 (us s.Hist.p90);
                Tabular.cell_f ~decimals:2 (us s.Hist.p99);
                Tabular.cell_f ~decimals:2 (us s.Hist.p999);
                Tabular.cell_f ~decimals:2 (us s.Hist.max);
              ])
      lat_ops
  in
  add (run_stack (fun env -> Stacks.tinca env));
  add (run_stack (fun env -> Stacks.classic ~journal_len:4096 env));
  add (run_stack (fun env -> Stacks.ubj env));
  add (run_stack ~journaled:false (fun env -> Stacks.nojournal env));
  table

(* --- table 3: flame summary of a traced run ---------------------------- *)

let flame_table () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      ignore (run_stack (fun env -> Stacks.tinca env));
      let table =
        Tabular.create
          ~title:"Span flame summary of the traced Tinca run (fence/write-back attribution)"
          [ "span"; "count"; "total us"; "self us"; "sfences"; "flush WBs" ]
      in
      List.iter
        (fun (name, count, total_ns, self_ns, sfences, writebacks) ->
          Tabular.add_row table
            [
              name; Tabular.cell_i count;
              Tabular.cell_f ~decimals:1 (total_ns /. 1000.0);
              Tabular.cell_f ~decimals:1 (self_ns /. 1000.0);
              Tabular.cell_i sfences; Tabular.cell_i writebacks;
            ])
        (Trace.flame_rows ());
      table)

let run () = [ proc_table (); lat_table (); flame_table () ]
