(** Byte-addressable persistent-memory simulator.

    Models the NVM the paper's prototype runs on (NVDIMM with added
    PCM/STT-RAM delays) together with the volatile CPU cache in front of
    it, because Tinca's correctness argument lives exactly in that gap:

    - regular stores land in a volatile cache-line layer (64 B lines) and
      are NOT durable;
    - [clflush] marks a line for write-back; it only becomes durable at
      the next [sfence] (matching x86 ordering of clflush);
    - at a crash, every line that is dirty or flush-pending independently
      either reaches the medium or is lost — an adversarial model of
      write-back reordering;
    - 8 B and 16 B aligned atomic writes model [mov]/[cmpxchg16b LOCK]:
      they cannot tear (a line either carries the whole value or the
      previous whole value after a crash).

    Reads always observe the newest stores (CPU reads hit its own cache).
    Every operation charges simulated time to the owning {!Tinca_sim.Clock}
    and bumps counters in the owning {!Tinca_sim.Metrics}:
    ["pmem.stores"], ["pmem.store_lines"], ["pmem.clflush"],
    ["pmem.sfence"], ["pmem.lines_persisted"], ["pmem.read_lines"],
    ["pmem.atomic_writes"]. *)

type t

(** Raised when the systematic crash-injection countdown expires; see
    {!set_crash_countdown}. *)
exception Crash_point

(** Cache-line size in bytes (64). *)
val line_size : int

(** [create ~clock ~metrics ~tech ~size ()] — [size] must be a multiple of
    [line_size].  [seed] drives crash-time nondeterminism resolution;
    [flush_instr] selects the modelled cache-line flush instruction
    (default [Clflush], the only one the paper's testbed supports). *)
val create :
  ?seed:int ->
  ?flush_instr:Tinca_sim.Latency.flush_instr ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  tech:Tinca_sim.Latency.nvm_tech ->
  size:int ->
  unit ->
  t

val size : t -> int
val tech : t -> Tinca_sim.Latency.nvm_tech

(** The modelled cache-line flush instruction (fixed at {!create}). *)
val flush_instr : t -> Tinca_sim.Latency.flush_instr

(** {1 Volatile stores} *)

(** [write t ~off src] stores all of [src] at [off]. *)
val write : t -> off:int -> bytes -> unit

(** [write_sub t ~off src ~pos ~len] stores [len] bytes of [src] starting
    at [pos]. *)
val write_sub : t -> off:int -> bytes -> pos:int -> len:int -> unit

(** [writev t chunks] — vectored store: each [(off, src)] chunk as one
    {!write}, in list order.  All ranges are validated before any byte is
    stored, so a bad chunk raises [Invalid_argument] without a partial
    scatter.  One [Store] event per non-empty chunk. *)
val writev : t -> (int * bytes) list -> unit

(** [fill t ~off ~len c] stores [len] copies of [c]. *)
val fill : t -> off:int -> len:int -> char -> unit

(** [atomic_write8 t ~off v] — 8 B aligned atomic store. *)
val atomic_write8 : t -> off:int -> int64 -> unit

(** [atomic_write8_int t ~off v] — non-negative [int] convenience.
    Raises [Invalid_argument] when [v] is negative. *)
val atomic_write8_int : t -> off:int -> int -> unit

(** [atomic_write16 t ~off v] — 16 B aligned atomic store ([cmpxchg16b]
    with LOCK); [v] must be exactly 16 bytes. *)
val atomic_write16 : t -> off:int -> bytes -> unit

(** {1 Reads} *)

val read : t -> off:int -> len:int -> bytes
val read_into : t -> off:int -> buf:bytes -> pos:int -> len:int -> unit
val read_u8 : t -> off:int -> int
val read_u64 : t -> off:int -> int64
val read_u64_int : t -> off:int -> int

(** {1 Persistence primitives} *)

(** [clflush t ~off ~len] issues clflush for every line intersecting the
    range.  Lines become durable at the next {!sfence}.  Every issued
    flush pays the instruction latency; only lines that are actually
    dirty (and not already flush-pending) start a medium write-back and
    pay the medium's write latency — a flush of a clean line is a no-op
    and must not inflate the modelled NVM write traffic.
    ["pmem.clflush"] counts issued flushes per line;
    ["pmem.clflush_writebacks"] counts the write-backs they started.

    One call is charged as one back-to-back flush burst: serializing
    [Clflush] pays the full instruction latency per line, while
    [Clflushopt]/[Clwb] pipeline (first line full, each further line only
    the issue slot — {!Tinca_sim.Latency.flush_batch_ns}). *)
val clflush : t -> off:int -> len:int -> unit

(** [flush_lines t lines] — scatter-gather flush: one pipelined burst of
    per-line flushes over an arbitrary line-index set (deduplicated and
    sorted internally).  Semantically identical to one [clflush] per
    line — each line is its own instruction, crash-countdown event and
    observer [Clflush] event — but the burst is charged with the batch
    cost, so [Clflushopt]/[Clwb] callers stop paying the serialized
    per-call latency.  Raises [Invalid_argument] on an out-of-bounds
    line index (before issuing anything). *)
val flush_lines : t -> int list -> unit

(** Ordering + durability point: all flush-pending lines reach the medium. *)
val sfence : t -> unit

(** [persist t ~off ~len] = [clflush]; [sfence] — the paper's write idiom. *)
val persist : t -> off:int -> len:int -> unit

(** {1 Crash injection} *)

(** [crash ?seed ?survival t] simulates power loss: each dirty or
    flush-pending line independently survives (its newest content reaches
    the medium) with probability [survival] (default 0.5) or reverts to
    its last persisted content; then the volatile layer is emptied.
    [seed] overrides the internal RNG for reproducible outcomes. *)
val crash : ?seed:int -> ?survival:float -> t -> unit

(** [set_crash_countdown t (Some k)] raises {!Crash_point} out of the
    [k]-th subsequent mutation/persistence event (store, atomic write,
    clflush or sfence), leaving that event not performed.  [None] disables
    the hook.  Used by systematic crash-sweep tests. *)
val set_crash_countdown : t -> int option -> unit

(** {1 Crash-space exploration (lib/check)}

    Hooks for the exhaustive crash-space model checker: instead of
    sampling one random survival outcome per crash, it enumerates every
    survival subset of the unfenced lines, re-entering the same pre-crash
    device state via {!snapshot}/{!restore}. *)

(** Indices of the cache lines dirtied since the last fence, ascending.
    At a crash, each may independently reach the medium or be lost. *)
val unfenced_lines : t -> int list

(** [line_torn t idx] — does losing vs. keeping line [idx] change the
    medium?  [false] when the line's volatile content equals its durable
    backup (such lines need not be enumerated). *)
val line_torn : t -> int -> bool

(** [crash_select t ~survive] resolves a crash with an explicit verdict
    per unfenced line: [survive idx] means the line's newest content
    reached the medium.  Empties the volatile layer and disarms any
    crash countdown. *)
val crash_select : t -> survive:(int -> bool) -> unit

type snapshot

(** Capture the full device state (medium + volatile line layer). *)
val snapshot : t -> snapshot

(** Reinstate a {!snapshot} taken on this device (sizes must match):
    medium, volatile line layer and wear counters return to the
    snapshot's values; the crash countdown is disarmed.  Simulated time
    and metrics are left untouched. *)
val restore : t -> snapshot -> unit

(** Digest of the durable medium, for deduplicating post-crash images. *)
val media_digest : t -> Digest.t

(** {1 Event observation (lib/check's persistence sanitizer)}

    A lightweight hook called after every mutation/persistence operation
    completes, so an external checker can shadow the device's
    flush/fence state without the device knowing about it.  Exactly one
    event is emitted per public operation ([write] = one [Store] for the
    whole range; [persist] = [Clflush] then [Sfence]); zero-length
    stores and flushes emit nothing.  When no observer is attached
    there is no allocation and no behaviour change.

    The same event stream also feeds the span tracer: when
    {!Tinca_obs.Trace} is enabled, every Store/Clflush/Sfence lands as a
    counter on the enclosing span ([pmem.store_lines], [pmem.clflush],
    [pmem.clflush_writebacks], [pmem.sfence]), giving per-span
    fence/write-back attribution without disturbing the observer. *)

type event =
  | Store of { off : int; len : int }  (** non-atomic store: [write]/[write_sub]/[fill] *)
  | Atomic_write of { off : int; len : int }  (** [atomic_write8]/[atomic_write16] *)
  | Clflush of { off : int; len : int }  (** one [clflush] call, whole issued range *)
  | Sfence  (** ordering + durability point *)
  | Crash  (** power loss resolved ([crash] or [crash_select]) *)

(** [set_observer t (Some f)] attaches [f]; [None] detaches.  An
    exception raised by [f] propagates out of the triggering operation
    (strict sanitizer mode relies on this). *)
val set_observer : t -> (event -> unit) option -> unit

(** {2 Call-site labels}

    A free-form label the instrumented client (cache, ring, Flashcache)
    sets before issuing pmem operations, so observers can attribute
    events — e.g. per-call-site redundant-flush counts — without stack
    inspection.  Purely advisory: one mutable field, no effect on
    behaviour or timing. *)

val set_site : t -> string -> unit

(** The most recently set call-site label ([""] initially). *)
val site : t -> string

(** Number of mutation/persistence events so far (for sizing sweeps). *)
val event_count : t -> int

(** Lines currently not durable. *)
val dirty_line_count : t -> int

(** [is_dirty t ~off] — is the line containing [off] not durable? *)
val is_dirty : t -> off:int -> bool

(** {1 Wear accounting} *)

(** Total line write-backs to the medium. *)
val wear_total : t -> int

(** Maximum write-backs over any single line. *)
val wear_max : t -> int

(** [wear_histogram t] folds per-line wear into a histogram. *)
val wear_histogram : t -> Tinca_util.Histogram.t

(** [wear_max_in t ~off ~len] — maximum per-line write-backs within a
    byte range (e.g. just the data region, excluding hot pointer lines). *)
val wear_max_in : t -> off:int -> len:int -> int

(** [wear_sum_in t ~off ~len] — total line write-backs within a byte
    range; with {!wear_max_in} this attributes wear to Layout regions
    (superblock / pointers / ring / flight / entries / data). *)
val wear_sum_in : t -> off:int -> len:int -> int
