open Tinca_sim

exception Crash_point

let line_size = 64

type line = { backup : Bytes.t; mutable pending : bool }

type event =
  | Store of { off : int; len : int }
  | Atomic_write of { off : int; len : int }
  | Clflush of { off : int; len : int }
  | Sfence
  | Crash

type t = {
  media : Bytes.t;
  lines : (int, line) Hashtbl.t;
  clock : Clock.t;
  metrics : Metrics.t;
  tech : Latency.nvm_tech;
  flush_instr : Latency.flush_instr;
  lat : Latency.nvm;
  rng : Tinca_util.Rng.t;
  wear : int array;
  mutable countdown : int option;
  mutable events : int;
  mutable observer : (event -> unit) option;
  mutable site : string;
}

let create ?(seed = 42) ?(flush_instr = Latency.Clflush) ~clock ~metrics ~tech ~size () =
  if size <= 0 || size mod line_size <> 0 then
    invalid_arg "Pmem.create: size must be a positive multiple of 64";
  {
    media = Bytes.make size '\000';
    lines = Hashtbl.create 4096;
    clock;
    metrics;
    tech;
    flush_instr;
    lat = Latency.nvm_of_tech ~flush_instr tech;
    rng = Tinca_util.Rng.create seed;
    wear = Array.make (size / line_size) 0;
    countdown = None;
    events = 0;
    observer = None;
    site = "";
  }

let size t = Bytes.length t.media
let tech t = t.tech
let flush_instr t = t.flush_instr

(* --- event observation (lib/check's persistence sanitizer) -------------- *)

let set_observer t obs = t.observer <- obs
let set_site t s = t.site <- s
let site t = t.site

let event t =
  t.events <- t.events + 1;
  match t.countdown with
  | None -> ()
  | Some k -> if k <= 1 then raise Crash_point else t.countdown <- Some (k - 1)

let check_range t off len =
  if off < 0 || len < 0 || off + len > Bytes.length t.media then
    invalid_arg
      (Printf.sprintf "Pmem: range [%d, %d) out of bounds (size %d)" off (off + len)
         (Bytes.length t.media))

(* Make sure the line exists in the volatile layer before mutating it,
   snapshotting the currently-durable content as rollback state.  A store
   into a flush-pending line resolves the in-flight write-back
   adversarially: it may or may not have reached the medium. *)
let dirty_line t idx =
  match Hashtbl.find_opt t.lines idx with
  | Some line ->
      if line.pending then begin
        if Tinca_util.Rng.bool t.rng then
          Bytes.blit t.media (idx * line_size) line.backup 0 line_size;
        line.pending <- false
      end
  | None ->
      let backup = Bytes.create line_size in
      Bytes.blit t.media (idx * line_size) backup 0 line_size;
      Hashtbl.add t.lines idx { backup; pending = false }

let lines_of_range off len =
  let first = off / line_size in
  let last = (off + len - 1) / line_size in
  (first, last)

(* Every hardware event fans out to the attached observer (the
   persistence sanitizer keeps sole ownership of [set_observer]) and,
   when span tracing is on, to the tracer as per-span counters.
   Write-back attribution is noted separately at the flush sites, where
   the dirty-line count is known. *)
let emit t ev =
  (match t.observer with Some f -> f ev | None -> ());
  if Tinca_obs.Trace.enabled () then
    match ev with
    | Store { off; len } ->
        let first, last = lines_of_range off len in
        Tinca_obs.Trace.note "pmem.store_lines" ~by:(last - first + 1)
    | Atomic_write _ -> Tinca_obs.Trace.note "pmem.atomic_writes" ~by:1
    | Clflush { off; len } ->
        let first, last = lines_of_range off len in
        Tinca_obs.Trace.note "pmem.clflush" ~by:(last - first + 1)
    | Sfence -> Tinca_obs.Trace.note "pmem.sfence" ~by:1
    | Crash -> ()

let store_range t off len =
  event t;
  if len > 0 then begin
    let first, last = lines_of_range off len in
    for idx = first to last do
      dirty_line t idx
    done;
    let nlines = last - first + 1 in
    Clock.advance t.clock (t.lat.store_ns *. float_of_int nlines);
    Metrics.incr t.metrics "pmem.stores" ~by:1;
    Metrics.incr t.metrics "pmem.store_lines" ~by:nlines
  end

let write_sub t ~off src ~pos ~len =
  check_range t off len;
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Pmem.write_sub: bad source range";
  store_range t off len;
  Bytes.blit src pos t.media off len;
  if len > 0 then emit t (Store { off; len })

let write t ~off src = write_sub t ~off src ~pos:0 ~len:(Bytes.length src)

(* Vectored write: all ranges are validated before any byte is stored, so
   a bad chunk cannot leave a partial scatter behind. *)
let writev t chunks =
  List.iter (fun (off, src) -> check_range t off (Bytes.length src)) chunks;
  List.iter (fun (off, src) -> write t ~off src) chunks

let fill t ~off ~len c =
  check_range t off len;
  store_range t off len;
  Bytes.fill t.media off len c;
  if len > 0 then emit t (Store { off; len })

let atomic_write8 t ~off v =
  check_range t off 8;
  if off mod 8 <> 0 then invalid_arg "Pmem.atomic_write8: misaligned";
  store_range t off 8;
  Metrics.incr t.metrics "pmem.atomic_writes" ~by:1;
  Bytes.set_int64_le t.media off v;
  emit t (Atomic_write { off; len = 8 })

let atomic_write8_int t ~off v =
  if v < 0 then invalid_arg "Pmem.atomic_write8_int: negative value";
  atomic_write8 t ~off (Int64.of_int v)

let atomic_write16 t ~off v =
  check_range t off 16;
  if off mod 16 <> 0 then invalid_arg "Pmem.atomic_write16: misaligned";
  if Bytes.length v <> 16 then invalid_arg "Pmem.atomic_write16: value must be 16 bytes";
  store_range t off 16;
  Metrics.incr t.metrics "pmem.atomic_writes" ~by:1;
  Bytes.blit v 0 t.media off 16;
  emit t (Atomic_write { off; len = 16 })

let charge_read t off len =
  if len > 0 then begin
    let first, last = lines_of_range off len in
    let nlines = last - first + 1 in
    Clock.advance t.clock (t.lat.read_ns *. float_of_int nlines);
    Metrics.incr t.metrics "pmem.read_lines" ~by:nlines
  end

let read t ~off ~len =
  check_range t off len;
  charge_read t off len;
  Bytes.sub t.media off len

let read_into t ~off ~buf ~pos ~len =
  check_range t off len;
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Pmem.read_into: bad destination range";
  charge_read t off len;
  Bytes.blit t.media off buf pos len

let read_u8 t ~off =
  check_range t off 1;
  charge_read t off 1;
  Char.code (Bytes.get t.media off)

let read_u64 t ~off =
  check_range t off 8;
  charge_read t off 8;
  Bytes.get_int64_le t.media off

let read_u64_int t ~off =
  let v = read_u64 t ~off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Pmem.read_u64_int: out of int range";
  Int64.to_int v

let clflush t ~off ~len =
  check_range t off len;
  event t;
  if len > 0 then begin
    let first, last = lines_of_range off len in
    (* A flush of a clean (or already flush-pending) line is issued but
       initiates no medium write-back, so it must not be charged the
       medium's write latency — only the dirty lines whose write-back
       this flush actually starts pay [write_ns]. *)
    let dirtied = ref 0 in
    for idx = first to last do
      match Hashtbl.find_opt t.lines idx with
      | Some line ->
          if not line.pending then begin
            line.pending <- true;
            incr dirtied
          end
      | None -> () (* clean line: the flush is issued but is a no-op *)
    done;
    let nlines = last - first + 1 in
    Metrics.incr t.metrics "pmem.clflush" ~by:nlines;
    Metrics.incr t.metrics "pmem.clflush_writebacks" ~by:!dirtied;
    (* One call = one back-to-back flush burst over the range: clflush
       serializes (full latency per line), clflushopt/clwb pipeline. *)
    Clock.advance t.clock
      (Latency.flush_batch_ns t.flush_instr nlines
      +. (t.lat.write_ns *. float_of_int !dirtied));
    if !dirtied > 0 then Tinca_obs.Trace.note "pmem.clflush_writebacks" ~by:!dirtied;
    emit t (Clflush { off; len })
  end

(* Scatter-gather flush: one back-to-back burst of per-line flushes over
   an arbitrary (deduplicated) line set, so batched callers stop paying
   a separate serialized [clflush] call per line.  Each line is its own
   instruction — its own crash-countdown event and observer event — but
   the burst is charged with the pipelined batch cost. *)
let flush_lines t lines =
  let lines = List.sort_uniq compare lines in
  let total = Bytes.length t.media / line_size in
  List.iter
    (fun idx ->
      if idx < 0 || idx >= total then
        invalid_arg (Printf.sprintf "Pmem.flush_lines: line %d out of bounds (device has %d)" idx total))
    lines;
  let dirtied = ref 0 and issued = ref 0 in
  List.iter
    (fun idx ->
      event t;
      incr issued;
      (match Hashtbl.find_opt t.lines idx with
      | Some line ->
          if not line.pending then begin
            line.pending <- true;
            incr dirtied
          end
      | None -> () (* clean line: the flush is issued but is a no-op *));
      emit t (Clflush { off = idx * line_size; len = line_size }))
    lines;
  if !issued > 0 then begin
    Metrics.incr t.metrics "pmem.clflush" ~by:!issued;
    Metrics.incr t.metrics "pmem.clflush_writebacks" ~by:!dirtied;
    Clock.advance t.clock
      (Latency.flush_batch_ns t.flush_instr !issued
      +. (t.lat.write_ns *. float_of_int !dirtied));
    if !dirtied > 0 then Tinca_obs.Trace.note "pmem.clflush_writebacks" ~by:!dirtied
  end

let sfence t =
  event t;
  Metrics.incr t.metrics "pmem.sfence" ~by:1;
  Clock.advance t.clock t.lat.sfence_ns;
  let persisted = ref [] in
  Hashtbl.iter (fun idx line -> if line.pending then persisted := idx :: !persisted) t.lines;
  List.iter
    (fun idx ->
      Hashtbl.remove t.lines idx;
      t.wear.(idx) <- t.wear.(idx) + 1;
      Metrics.incr t.metrics "pmem.lines_persisted" ~by:1)
    !persisted;
  emit t Sfence

let persist t ~off ~len =
  clflush t ~off ~len;
  sfence t

let crash ?seed ?(survival = 0.5) t =
  let rng = match seed with Some s -> Tinca_util.Rng.create s | None -> t.rng in
  let entries = Hashtbl.fold (fun idx line acc -> (idx, line) :: acc) t.lines [] in
  List.iter
    (fun (idx, line) ->
      if Tinca_util.Rng.chance rng survival then begin
        (* The line's newest content reached the medium before power loss. *)
        t.wear.(idx) <- t.wear.(idx) + 1
      end
      else Bytes.blit line.backup 0 t.media (idx * line_size) line_size)
    entries;
  Hashtbl.reset t.lines;
  t.countdown <- None;
  emit t Crash

(* --- crash-space exploration hooks (lib/check) ------------------------- *)

(* Cache lines dirtied since the last fence, ascending.  At a crash each
   of these may independently reach the medium or be lost, so they span
   the survival-subset space the model checker enumerates. *)
let unfenced_lines t =
  List.sort compare (Hashtbl.fold (fun idx _ acc -> idx :: acc) t.lines [])

(* Whether losing/keeping [idx] changes the medium: a line whose volatile
   content equals its durable backup is unaffected by the crash outcome. *)
let line_torn t idx =
  match Hashtbl.find_opt t.lines idx with
  | None -> false
  | Some line ->
      not (Bytes.equal line.backup (Bytes.sub t.media (idx * line_size) line_size))

(* Resolve a crash with an explicit survival verdict per unfenced line
   ([survive idx] = the line's newest content reached the medium), instead
   of [crash]'s random sampling.  Leaves the device quiescent. *)
let crash_select t ~survive =
  let entries = Hashtbl.fold (fun idx line acc -> (idx, line) :: acc) t.lines [] in
  List.iter
    (fun (idx, line) ->
      if survive idx then t.wear.(idx) <- t.wear.(idx) + 1
      else Bytes.blit line.backup 0 t.media (idx * line_size) line_size)
    entries;
  Hashtbl.reset t.lines;
  t.countdown <- None;
  emit t Crash

type snapshot = {
  snap_media : Bytes.t;
  snap_lines : (int * Bytes.t * bool) list; (* line idx, backup, pending *)
  snap_wear : int array;
}

(* Capture / reinstate the full device state (medium + volatile line
   layer), so the checker can re-enter the same pre-crash state once per
   survival subset without replaying the workload.  [restore] disarms any
   crash countdown; simulated time and metrics are left untouched. *)
let snapshot t =
  {
    snap_media = Bytes.copy t.media;
    snap_lines =
      Hashtbl.fold (fun idx l acc -> (idx, Bytes.copy l.backup, l.pending) :: acc) t.lines [];
    snap_wear = Array.copy t.wear;
  }

let restore t s =
  if Bytes.length s.snap_media <> Bytes.length t.media then
    invalid_arg "Pmem.restore: snapshot from a different-sized device";
  Bytes.blit s.snap_media 0 t.media 0 (Bytes.length t.media);
  Hashtbl.reset t.lines;
  List.iter
    (fun (idx, backup, pending) ->
      Hashtbl.add t.lines idx { backup = Bytes.copy backup; pending })
    s.snap_lines;
  Array.blit s.snap_wear 0 t.wear 0 (Array.length t.wear);
  t.countdown <- None

(* Digest of the durable medium, for deduplicating post-crash images. *)
let media_digest t = Digest.bytes t.media

let set_crash_countdown t c =
  (match c with
  | Some k when k < 1 -> invalid_arg "Pmem.set_crash_countdown: k must be >= 1"
  | _ -> ());
  t.countdown <- c

let event_count t = t.events
let dirty_line_count t = Hashtbl.length t.lines
let is_dirty t ~off = Hashtbl.mem t.lines (off / line_size)
let wear_total t = Array.fold_left ( + ) 0 t.wear
let wear_max t = Array.fold_left max 0 t.wear

let wear_histogram t =
  let h = Tinca_util.Histogram.create () in
  Array.iter (fun w -> Tinca_util.Histogram.add h (float_of_int w)) t.wear;
  h

let wear_max_in t ~off ~len =
  check_range t off len;
  let first = off / line_size and last = (off + len - 1) / line_size in
  let m = ref 0 in
  for i = first to last do
    if t.wear.(i) > !m then m := t.wear.(i)
  done;
  !m

let wear_sum_in t ~off ~len =
  check_range t off len;
  let first = off / line_size and last = (off + len - 1) / line_size in
  let s = ref 0 in
  for i = first to last do
    s := !s + t.wear.(i)
  done;
  !s
