(** GlusterFS-like distributed file system model (paper §5.3.2):
    distribute + replicate translators.

    Each file hashes to a replica set of [replicas] consecutive data
    nodes.  Writes (and namespace operations) are applied synchronously
    to every replica — AFR semantics: the client waits for the slowest
    replica.  Reads are served by the first replica.  Exposed as an
    {!Tinca_workloads.Ops} so Filebench drives the cluster unchanged. *)

open Tinca_sim

type t = {
  nodes : Node.t array;
  replicas : int;
  net : Latency.network;
  mutable client_ns : float;
  mutable bytes_replicated : int;
}

let create ?(net = Latency.default_network) ~replicas nodes =
  if replicas < 1 || replicas > Array.length nodes then
    invalid_arg "Gluster.create: bad replica count";
  { nodes; replicas; net; client_ns = 0.0; bytes_replicated = 0 }

let hash_name name =
  (* FNV-1a over the file name: the distribute translator. *)
  let h = ref 0x3f29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land max_int) name;
  !h

let replica_set t name =
  let n = Array.length t.nodes in
  let first = hash_name name mod n in
  Array.init t.replicas (fun i -> t.nodes.((first + i) mod n))

(* Run [f] on every replica synchronously: each replica starts when the
   request (of [req_bytes]) reaches it; the client resumes at the slowest
   completion plus the reply latency. *)
let on_replicas t name ~req_bytes f =
  let arrival = t.client_ns +. Latency.transfer_ns t.net req_bytes in
  let slowest = ref arrival in
  Array.iter
    (fun node ->
      Clock.advance_to (Node.clock node) arrival;
      Tinca_obs.Trace.begin_span ~clock:(Node.clock node) "gluster.replica_op";
      f node;
      Tinca_obs.Trace.end_span "gluster.replica_op";
      let completion = Node.now_ns node in
      if completion > !slowest then slowest := completion)
    (replica_set t name);
  t.client_ns <- !slowest +. t.net.Latency.rtt_ns

(* Reads hit the first replica only. *)
let on_first_replica t name ~resp_bytes f =
  let arrival = t.client_ns +. t.net.Latency.rtt_ns in
  let node = (replica_set t name).(0) in
  Clock.advance_to (Node.clock node) arrival;
  f node;
  t.client_ns <- Node.now_ns node +. Latency.transfer_ns t.net resp_bytes

let client_ns t = t.client_ns
let bytes_replicated t = t.bytes_replicated

let ops t : Tinca_workloads.Ops.t =
  let open Tinca_workloads in
  let module Fs = Tinca_fs.Fs in
  {
    Ops.create = (fun name -> on_replicas t name ~req_bytes:256 (fun n -> Fs.create n.Node.fs name));
    delete = (fun name -> on_replicas t name ~req_bytes:256 (fun n -> Fs.delete n.Node.fs name));
    exists = (fun name -> Fs.exists (replica_set t name).(0).Node.fs name);
    size =
      (fun name ->
        let node = (replica_set t name).(0) in
        if Fs.exists node.Node.fs name then Fs.size node.Node.fs name else 0);
    pwrite =
      (fun name ~off ~len ->
        t.bytes_replicated <- t.bytes_replicated + (len * t.replicas);
        on_replicas t name ~req_bytes:len (fun n ->
            Fs.pwrite n.Node.fs name ~off (Ops.payload len)));
    pread =
      (fun name ~off ~len ->
        on_first_replica t name ~resp_bytes:len (fun n -> ignore (Fs.pread n.Node.fs name ~off ~len)));
    compute = (fun ns -> t.client_ns <- t.client_ns +. ns);
    fsync = (fun () ->
        (* Commit on every node that has dirty state. *)
        let slowest = ref t.client_ns in
        Array.iter
          (fun node ->
            Clock.advance_to (Node.clock node) t.client_ns;
            Tinca_obs.Trace.begin_span ~clock:(Node.clock node) "gluster.fsync_node";
            Fs.fsync node.Node.fs;
            Tinca_obs.Trace.end_span "gluster.fsync_node";
            let completion = Node.now_ns node in
            if completion > !slowest then slowest := completion)
          t.nodes;
        t.client_ns <- !slowest +. t.net.Latency.rtt_ns);
  }
