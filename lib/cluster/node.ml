(** A storage/data node: one full local stack (FS over Tinca or Classic
    over its own NVM + disk + clock), as in the paper's Figure 9 where
    each data node of HDFS/GlusterFS runs the local storage manager. *)

module Stacks = Tinca_stacks.Stacks
module Fs = Tinca_fs.Fs

type kind = Tinca_node | Classic_node

let kind_label = function Tinca_node -> "Tinca" | Classic_node -> "Classic"

type t = {
  id : int;
  kind : kind;
  stack : Stacks.t;
  fs : Fs.t;
  ops : Tinca_workloads.Ops.t;
}

type config = {
  nvm_bytes : int;
  disk_blocks : int;
  fs_config : Fs.config;
  tech : Tinca_sim.Latency.nvm_tech;
  disk_kind : Tinca_sim.Latency.disk_kind;
}

let default_config =
  {
    nvm_bytes = 16 * 1024 * 1024;
    disk_blocks = 65536;
    fs_config = { Fs.default_config with ninodes = 4096; journal_len = 512 };
    tech = Tinca_sim.Latency.Pcm;
    disk_kind = Tinca_sim.Latency.Ssd;
  }

let make ~id ~config kind =
  let env =
    Stacks.make_env ~seed:(1000 + id) ~tech:config.tech ~disk_kind:config.disk_kind
      ~nvm_bytes:config.nvm_bytes ~disk_blocks:config.disk_blocks ()
  in
  let stack =
    match kind with
    | Tinca_node -> Stacks.tinca env
    | Classic_node -> Stacks.classic ~journal_len:config.fs_config.Fs.journal_len env
  in
  let fs = Fs.format ~config:config.fs_config stack.Stacks.backend in
  let clock = stack.Stacks.env.Stacks.clock in
  Tinca_obs.Trace.name_track clock (Printf.sprintf "node%d-%s" id (kind_label kind));
  let compute ns = Tinca_sim.Clock.advance clock ns in
  { id; kind; stack; fs; ops = Tinca_workloads.Ops.of_fs ~compute fs }

let clock t = t.stack.Stacks.env.Stacks.clock
let metrics t = t.stack.Stacks.env.Stacks.metrics
let now_ns t = Tinca_sim.Clock.now_ns (clock t)

(** Sum one counter across nodes. *)
let total_metric nodes name =
  Array.fold_left (fun acc n -> acc + Tinca_sim.Metrics.get (metrics n) name) 0 nodes

(** Snapshot all node metric registries. *)
let snapshot_all nodes = Array.map (fun n -> Tinca_sim.Metrics.snapshot (metrics n)) nodes

let since_all nodes snaps name =
  let acc = ref 0 in
  Array.iteri (fun i n -> acc := !acc + Tinca_sim.Metrics.since (metrics n) snaps.(i) name) nodes;
  !acc
