(** HDFS-like distributed file system model (paper §5.3.1): one name
    node (implicit), N data nodes, pipeline replication.

    A chunk write picks a pipeline of [replicas] data nodes round-robin;
    data flows client -> n1 -> n2 -> ... store-and-forward over the
    10 GbE model; each node then writes the chunk through its own local
    stack (create + sequential writes + fsync = block finalization).  The
    client is bandwidth-bound on its uplink and does not wait for acks
    (TeraGen's streaming behaviour); the run's execution time is when the
    last node finishes. *)

open Tinca_sim

type t = {
  nodes : Node.t array;
  replicas : int;
  net : Latency.network;
  iosize : int; (* local write granularity on a data node *)
  datanode_cpu_per_mb_ns : float;
      (* per-MB request-handling CPU on each data node: HDFS checksums
         every packet (CRC32C per 512 B chunk) and tracks block metadata *)
  mutable client_ns : float;
  mutable done_ns : float;
  mutable rotor : int;
  mutable chunks_written : int;
  mutable bytes_replicated : int;
}

let create ?(net = Latency.default_network) ?(iosize = 64 * 1024)
    ?(datanode_cpu_per_mb_ns = 4.0e6) ~replicas nodes =
  if replicas < 1 || replicas > Array.length nodes then invalid_arg "Hdfs.create: bad replica count";
  { nodes; replicas; net; iosize; datanode_cpu_per_mb_ns; client_ns = 0.0; done_ns = 0.0;
    rotor = 0; chunks_written = 0; bytes_replicated = 0 }

(* Write one chunk on one node's local FS; returns the node-local
   duration. *)
let local_write t node name size iosize =
  let fs = node.Node.fs in
  let t0 = Node.now_ns node in
  Tinca_obs.Trace.begin_span ~clock:(Node.clock node) "hdfs.local_write";
  let module Fs = Tinca_fs.Fs in
  if Fs.exists fs name then Fs.delete fs name;
  Fs.create fs name;
  let rec go off =
    if off < size then begin
      let len = min iosize (size - off) in
      Fs.pwrite fs name ~off (Tinca_workloads.Ops.payload len);
      go (off + len)
    end
  in
  go 0;
  Fs.fsync fs;
  Tinca_sim.Clock.advance (Node.clock node)
    (t.datanode_cpu_per_mb_ns *. float_of_int size /. 1048576.0);
  Tinca_obs.Trace.end_span "hdfs.local_write";
  Node.now_ns node -. t0

let write_chunk t name size =
  let n = Array.length t.nodes in
  let pipeline = Array.init t.replicas (fun i -> t.nodes.((t.rotor + i) mod n)) in
  t.rotor <- (t.rotor + 1) mod n;
  (* The client streams the chunk onto the wire once. *)
  let xfer = Latency.transfer_ns t.net size in
  t.client_ns <- t.client_ns +. xfer;
  (* Store-and-forward along the pipeline. *)
  let arrival = ref t.client_ns in
  Array.iter
    (fun node ->
      Clock.advance_to (Node.clock node) !arrival;
      let dur = local_write t node name size t.iosize in
      t.bytes_replicated <- t.bytes_replicated + size;
      ignore dur;
      let completion = Node.now_ns node in
      if completion > t.done_ns then t.done_ns <- completion;
      arrival := !arrival +. xfer)
    pipeline;
  t.chunks_written <- t.chunks_written + 1

(** When the run finished: max of the client stream end and every node's
    completion. *)
let execution_ns t =
  Array.fold_left (fun acc node -> Float.max acc (Node.now_ns node)) (Float.max t.client_ns t.done_ns)
    t.nodes

let chunks_written t = t.chunks_written
let bytes_replicated t = t.bytes_replicated

(** An {!Tinca_workloads.Ops} view so the TeraGen generator can drive the
    cluster unchanged: writes are buffered client-side per file and the
    fsync flushes each buffered chunk through the replication pipeline. *)
let ops t : Tinca_workloads.Ops.t =
  let open Tinca_workloads in
  let sizes : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let pending : (string, int) Hashtbl.t = Hashtbl.create 16 in
  {
    Ops.create =
      (fun name ->
        Hashtbl.replace sizes name 0;
        Hashtbl.replace pending name 0);
    delete = (fun name -> Hashtbl.remove sizes name);
    exists = (fun name -> Hashtbl.mem sizes name);
    size = (fun name -> match Hashtbl.find_opt sizes name with Some s -> s | None -> 0);
    pwrite =
      (fun name ~off ~len ->
        let newsize = max (off + len) (try Hashtbl.find sizes name with Not_found -> 0) in
        Hashtbl.replace sizes name newsize;
        Hashtbl.replace pending name newsize);
    pread = (fun _ ~off:_ ~len:_ -> ());
    compute = (fun ns -> t.client_ns <- t.client_ns +. ns);
    fsync =
      (fun () ->
        Hashtbl.iter (fun name size -> if size > 0 then write_chunk t name size) pending;
        Hashtbl.reset pending);
  }
