(* Always-on persistence sanitizer (psan).

   The crash-space model checker (crash_check.ml) proves the commit
   protocol correct by brute force, but it is exponential in torn lines
   and runs one small deterministic workload.  This module is the
   complementary linear-time tool in the pmemcheck/PMTest tradition: it
   attaches to a live {!Tinca_pmem.Pmem.t} through the event-observer
   hook and shadows every store/flush/fence with a per-cache-line state
   machine

     Clean -> Dirty -> Flush_pending -> Persisted

   (implemented sparsely: a hash table holds only the not-yet-durable
   lines), plus a {!Tinca_core.Layout}-driven region classifier, and
   flags protocol violations as they happen — on any workload, at a cost
   linear in the number of pmem events.

   Rules (see DESIGN.md §6.2):
   1. missing-flush   — the commit-point write (ring Tail advance) is
                        fenced while dependent data/entry/ring/head
                        lines are still volatile; a crash just before
                        that fence could persist Tail without them.
   2. unfenced-ack    — a transaction is acknowledged (txn_end) while
                        lines written inside it are not yet durable.
   3. torn-metadata   — a non-atomic store (write/write_sub/fill)
                        overlaps a metadata region the protocol updates
                        only with atomic_write8/16.
   4. persist-race    — a store lands in a flush-pending metadata line,
                        making the in-flight write-back's outcome
                        adversarial (see Pmem.dirty_line).
   5. redundant-flush — clflush of a line that is clean or already
                        flush-pending; not a correctness violation but a
                        wasted medium round-trip, counted per call-site
                        label as a performance diagnostic. *)

module Pmem = Tinca_pmem.Pmem
module Layout = Tinca_core.Layout
module Entry = Tinca_core.Entry
module Paging = Tinca_core.Paging

let log_src = Logs.Src.create "tinca.psan" ~doc:"Tinca persistence sanitizer"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* [Epoch]/[Table]/[Pool] are the paging scheme's region classes
   (ISSUE 10): the per-shard epoch word (the commit point), the
   indirection table (16 B atomic swings only) and the COW page pool. *)
type region =
  | Superblock
  | Head
  | Tail
  | Ring
  | Flight
  | Entries
  | Data
  | Epoch
  | Table
  | Pool
  | Other

let region_name = function
  | Superblock -> "superblock"
  | Head -> "head"
  | Tail -> "tail"
  | Ring -> "ring"
  | Flight -> "flight"
  | Entries -> "entries"
  | Data -> "data"
  | Epoch -> "epoch"
  | Table -> "table"
  | Pool -> "pool"
  | Other -> "other"

type rule = Missing_flush | Unfenced_ack | Torn_metadata | Persist_race

let rule_name = function
  | Missing_flush -> "missing-flush"
  | Unfenced_ack -> "unfenced-ack"
  | Torn_metadata -> "torn-metadata"
  | Persist_race -> "persist-race"

type violation = {
  rule : rule;
  line : int;  (** offending cache line *)
  region : region;
  site : string;  (** call-site label current when detected *)
  event : int;  (** ordinal of the triggering pmem event *)
  message : string;
}

exception Violation of violation

type report = {
  events : int;
  stores : int;
  atomic_writes : int;
  flush_calls : int;
  line_flushes : int;
  redundant_flushes : int;
  redundant_by_site : (string * int) list;  (* descending by count *)
  fences : int;
  crashes : int;
  violations : violation list;  (* oldest first *)
  violations_dropped : int;
}

type state = Dirty | Flush_pending

type t = {
  pmem : Pmem.t;
  layouts : Layout.t list;
      (* one per shard on a partitioned device; [] = layoutless *)
  page_layouts : Paging.region_layout list;
      (* one per shard of a paging device (ISSUE 10); [] = not paging *)
  strict : bool;
  max_violations : int;
  (* Lines that are not durable; absent = Clean/Persisted. *)
  volatile : (int, state) Hashtbl.t;
  (* Lines stored while inside txn_begin..txn_end. *)
  txn_lines : (int, unit) Hashtbl.t;
  mutable in_txn : bool;
  redundant_by_site : (string, int ref) Hashtbl.t;
  mutable events : int;
  mutable stores : int;
  mutable atomic_writes : int;
  mutable flush_calls : int;
  mutable line_flushes : int;
  mutable redundant_flushes : int;
  mutable fences : int;
  mutable crashes : int;
  mutable violations : violation list;  (* newest first *)
  mutable dropped : int;  (* violations past max_violations *)
}

(* --- region classification --------------------------------------------- *)

(* [off] must lie inside [l]'s span. *)
let region_in (l : Layout.t) off =
  if off < l.Layout.head_off then Superblock
  else if off < l.Layout.tail_off then Head
  else if off < l.Layout.ring_off then Tail
  else if off < l.Layout.flight_off then Ring
  else if off < l.Layout.entries_off then Flight
  else if off < l.Layout.entries_off + (l.Layout.nblocks * Entry.size) then Entries
  else if off < l.Layout.data_off then Other (* alignment padding *)
  else Data

let layout_of_line t idx =
  let off = idx * Pmem.line_size in
  List.find_opt (fun l -> off >= l.Layout.super_off && off < l.Layout.total_bytes) t.layouts

(* [off] must lie inside [r]'s span. *)
let page_region_in (r : Paging.region_layout) off =
  if off < r.Paging.r_base + 64 then Superblock
  else if off >= r.Paging.r_epoch_off && off < r.Paging.r_epoch_off + 64 then Epoch
  else if off >= r.Paging.r_flight_off && off < r.Paging.r_flight_off + r.Paging.r_flight_bytes
  then Flight
  else if off >= r.Paging.r_table_off && off < r.Paging.r_table_off + r.Paging.r_table_bytes then
    Table
  else if off >= r.Paging.r_pool_off && off < r.Paging.r_pool_off + r.Paging.r_pool_bytes then
    Pool
  else Other (* alignment padding *)

let page_layout_of_line t idx =
  let off = idx * Pmem.line_size in
  List.find_opt
    (fun (r : Paging.region_layout) -> off >= r.Paging.r_base && off < r.Paging.r_base + r.Paging.r_total)
    t.page_layouts

let region_of_line t idx =
  match (t.layouts, t.page_layouts) with
  | [], [] -> Data (* no layout: every line is payload; only rules 2+5 apply *)
  | _ -> (
      match layout_of_line t idx with
      | Some l -> region_in l (idx * Pmem.line_size)
      | None -> (
          match page_layout_of_line t idx with
          | Some r -> page_region_in r (idx * Pmem.line_size)
          | None ->
              (* Between/outside the shard layouts: the shard directory,
                 the cross-shard seal (updated only with fenced atomic
                 writes) and inter-shard padding. *)
              Other))

(* Regions whose torn or racing update breaks recovery.  Data blocks and
   page-pool frames are exempt: they are protected by COW, not by
   atomicity.  Flight records are exempt too: each is self-delimited by
   a sequence/CRC word, so a torn record is detected at scan time rather
   than trusted. *)
let is_metadata = function
  | Superblock | Head | Tail | Ring | Entries | Epoch | Table -> true
  | Flight | Data | Pool | Other -> false

let lines_of_range off len =
  let first = off / Pmem.line_size in
  let last = (off + len - 1) / Pmem.line_size in
  (first, last)

(* --- violation plumbing ------------------------------------------------- *)

let violate t rule line fmt =
  Printf.ksprintf
    (fun message ->
      let v =
        { rule; line; region = region_of_line t line; site = Pmem.site t.pmem;
          event = t.events; message }
      in
      if List.length t.violations >= t.max_violations then t.dropped <- t.dropped + 1
      else begin
        t.violations <- v :: t.violations;
        Log.warn (fun m ->
            m "%s: line %d (%s)%s: %s" (rule_name rule) v.line (region_name v.region)
              (if v.site = "" then "" else " at " ^ v.site)
              v.message)
      end;
      if t.strict then raise (Violation v))
    fmt

(* --- the shadow state machine ------------------------------------------- *)

let note_store t ~off ~len ~atomic =
  let first, last = lines_of_range off len in
  for idx = first to last do
    let region = region_of_line t idx in
    if (not atomic) && is_metadata region then
      violate t Torn_metadata idx
        "non-atomic %d-byte store into the %s region (protocol requires atomic_write8/16)" len
        (region_name region);
    (* Paging swing discipline: an indirection-table entry is 16 B and
       must change in ONE atomic swing — an 8 B atomic into the table is
       half an entry, exactly the durably-torn frankenstein the recovery
       validator must otherwise catch. *)
    if atomic && len < 16 && region = Table then
      violate t Torn_metadata idx
        "%d-byte atomic into the table region (an indirection entry swings as one 16 B atomic)"
        len;
    (match Hashtbl.find_opt t.volatile idx with
    | Some Flush_pending ->
        if is_metadata region then
          violate t Persist_race idx
            "store into a flush-pending %s line: the in-flight write-back's outcome becomes \
             adversarial"
            (region_name region);
        Hashtbl.replace t.volatile idx Dirty
    | Some Dirty -> ()
    | None -> Hashtbl.replace t.volatile idx Dirty);
    if t.in_txn then Hashtbl.replace t.txn_lines idx ()
  done

let note_clflush t ~off ~len =
  t.flush_calls <- t.flush_calls + 1;
  let first, last = lines_of_range off len in
  for idx = first to last do
    t.line_flushes <- t.line_flushes + 1;
    match Hashtbl.find_opt t.volatile idx with
    | Some Dirty -> Hashtbl.replace t.volatile idx Flush_pending
    | Some Flush_pending | None ->
        (* Clean, persisted or already pending: the flush is issued but
           starts no write-back — pure overhead on the hot path. *)
        t.redundant_flushes <- t.redundant_flushes + 1;
        let site = Pmem.site t.pmem in
        (match Hashtbl.find_opt t.redundant_by_site site with
        | Some r -> incr r
        | None -> Hashtbl.add t.redundant_by_site site (ref 1))
  done

let note_sfence t =
  t.fences <- t.fences + 1;
  (* Missing-flush: this fence makes the ring Tail advance durable (the
     commit point).  Every line the committed transaction depends on —
     data, entries, ring slots, Head — must already be durable; a line
     still Dirty here was never flushed, and a line still Flush_pending
     shares this fence's pre-fence crash window with Tail, so in either
     case a crash can surface the commit point without its dependencies. *)
  (* The check is per shard layout: a Tail fence commits only its own
     shard's sub-transaction, whose dependencies all live inside that
     shard's span (cross-shard ordering is the seal's job, checked by
     the sharded crash sweep). *)
  List.iter
    (fun (l : Layout.t) ->
      let tail_line = l.Layout.tail_off / Pmem.line_size in
      if Hashtbl.find_opt t.volatile tail_line = Some Flush_pending then
        Hashtbl.iter
          (fun idx state ->
            let off = idx * Pmem.line_size in
            if idx <> tail_line && off >= l.Layout.super_off && off < l.Layout.total_bytes then
              match region_in l off with
              | (Data | Entries | Ring | Head) as region ->
                  violate t Missing_flush idx
                    "commit-point (Tail) fence while %s line is still %s" (region_name region)
                    (match state with Dirty -> "dirty (never flushed)"
                    | Flush_pending -> "flush-pending (same fence as Tail)")
              | Flight ->
                  (* Recorder discipline: every flight record written
                     during the commit must have been flushed by the
                     commit point.  Sharing the Tail fence is fine — a
                     record is not a recovery dependency (torn ones are
                     detected by CRC) — but a still-dirty record line
                     means the recorder skipped its fold-into-fence. *)
                  if state = Dirty then
                    violate t Missing_flush idx
                      "commit-point (Tail) fence while a flight-recorder line is still dirty \
                       (record was never folded into a protocol fence)"
              | Superblock | Tail | Other | Epoch | Table | Pool -> ())
          t.volatile)
    t.layouts;
  (* Paging analogue: an epoch-word fence is the commit point of a
     paging shard.  Every staged table swing and COW page the epoch bump
     publishes must have been made durable by the earlier stage fence —
     a table line still volatile here (or a pool line sharing this
     fence) means the commit point can surface without its mapping or
     its data.  A {e dirty} pool line is exempt: clean fills are
     legitimately volatile (they map nothing). *)
  List.iter
    (fun (r : Paging.region_layout) ->
      let epoch_line = r.Paging.r_epoch_off / Pmem.line_size in
      if Hashtbl.find_opt t.volatile epoch_line = Some Flush_pending then
        Hashtbl.iter
          (fun idx state ->
            let off = idx * Pmem.line_size in
            if idx <> epoch_line && off >= r.Paging.r_base && off < r.Paging.r_base + r.Paging.r_total
            then
              match page_region_in r off with
              | Table ->
                  violate t Missing_flush idx
                    "commit-point (epoch) fence while a table line is still %s"
                    (match state with
                    | Dirty -> "dirty (never flushed)"
                    | Flush_pending -> "flush-pending (same fence as the epoch word)")
              | Pool ->
                  if state = Flush_pending then
                    violate t Missing_flush idx
                      "commit-point (epoch) fence while a pool line is flush-pending (staged page \
                       shares the commit fence)"
              | Flight ->
                  if state = Dirty then
                    violate t Missing_flush idx
                      "commit-point (epoch) fence while a flight-recorder line is still dirty \
                       (record was never folded into a protocol fence)"
              | Superblock | Head | Tail | Ring | Entries | Data | Epoch | Other -> ())
          t.volatile)
    t.page_layouts;
  (* All pending lines reach the medium: Flush_pending -> Persisted. *)
  let persisted =
    Hashtbl.fold (fun idx s acc -> if s = Flush_pending then idx :: acc else acc) t.volatile []
  in
  List.iter (Hashtbl.remove t.volatile) persisted

let note_crash t =
  t.crashes <- t.crashes + 1;
  (* Power loss: the volatile layer is resolved (one way or the other);
     whatever the medium now holds is the durable state. *)
  Hashtbl.reset t.volatile;
  Hashtbl.reset t.txn_lines;
  t.in_txn <- false

let on_event t ev =
  t.events <- t.events + 1;
  match (ev : Pmem.event) with
  | Pmem.Store { off; len } ->
      t.stores <- t.stores + 1;
      note_store t ~off ~len ~atomic:false
  | Pmem.Atomic_write { off; len } ->
      t.atomic_writes <- t.atomic_writes + 1;
      note_store t ~off ~len ~atomic:true
  | Pmem.Clflush { off; len } -> note_clflush t ~off ~len
  | Pmem.Sfence -> note_sfence t
  | Pmem.Crash -> note_crash t

(* --- public API ---------------------------------------------------------- *)

let attach ?(strict = false) ?(max_violations = 1000) ?layout ?(layouts = []) ?(page_layouts = [])
    pmem =
  let t =
    {
      pmem;
      layouts = (match layout with Some l -> l :: layouts | None -> layouts);
      page_layouts;
      strict;
      max_violations;
      volatile = Hashtbl.create 256;
      txn_lines = Hashtbl.create 64;
      in_txn = false;
      redundant_by_site = Hashtbl.create 16;
      events = 0;
      stores = 0;
      atomic_writes = 0;
      flush_calls = 0;
      line_flushes = 0;
      redundant_flushes = 0;
      fences = 0;
      crashes = 0;
      violations = [];
      dropped = 0;
    }
  in
  Pmem.set_observer pmem (Some (on_event t));
  t

let detach t = Pmem.set_observer t.pmem None

let txn_begin t =
  t.in_txn <- true;
  Hashtbl.reset t.txn_lines

let txn_abort t =
  t.in_txn <- false;
  Hashtbl.reset t.txn_lines

let txn_end t =
  Hashtbl.iter
    (fun idx () ->
      match Hashtbl.find_opt t.volatile idx with
      | None -> ()
      | Some state ->
          violate t Unfenced_ack idx
            "transaction acknowledged while %s line written inside it is still %s"
            (region_name (region_of_line t idx))
            (match state with Dirty -> "dirty" | Flush_pending -> "flush-pending"))
    t.txn_lines;
  txn_abort t

let violations t = List.rev t.violations
let violation_count t = List.length t.violations + t.dropped

let report t : report =
  let by_site =
    Hashtbl.fold (fun site r acc -> (site, !r) :: acc) t.redundant_by_site []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    events = t.events;
    stores = t.stores;
    atomic_writes = t.atomic_writes;
    flush_calls = t.flush_calls;
    line_flushes = t.line_flushes;
    redundant_flushes = t.redundant_flushes;
    redundant_by_site = by_site;
    fences = t.fences;
    crashes = t.crashes;
    violations = List.rev t.violations;
    violations_dropped = t.dropped;
  }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] event %d, line %d (%s)%s: %s" (rule_name v.rule) v.event v.line
    (region_name v.region)
    (if v.site = "" then "" else ", site " ^ v.site)
    v.message

let report_table (r : report) =
  let t = Tinca_util.Tabular.create ~title:"Persistence sanitizer (psan)" [ "metric"; "value" ] in
  let add k v = Tinca_util.Tabular.add_row t [ k; v ] in
  add "pmem events observed" (string_of_int r.events);
  add "stores / atomic writes" (Printf.sprintf "%d / %d" r.stores r.atomic_writes);
  add "clflush calls (line flushes)" (Printf.sprintf "%d (%d)" r.flush_calls r.line_flushes);
  add "sfences" (string_of_int r.fences);
  add "redundant line flushes"
    (Printf.sprintf "%d (%.1f%% of line flushes)" r.redundant_flushes
       (if r.line_flushes = 0 then 0.0
        else 100.0 *. float_of_int r.redundant_flushes /. float_of_int r.line_flushes));
  List.iter
    (fun (site, n) ->
      add (Printf.sprintf "  redundant @ %s" (if site = "" then "<unlabelled>" else site))
        (string_of_int n))
    r.redundant_by_site;
  add "violations"
    (string_of_int (List.length r.violations + r.violations_dropped)
    ^ if r.violations_dropped > 0 then Printf.sprintf " (%d dropped)" r.violations_dropped
      else "");
  t
