(* Pure executable model of the transactional cache: a block -> bytes
   map plus an in-flight transaction buffer.  See spec.mli for the
   obligations; Lockstep drives this and the real Tinca facade in
   lockstep and fails on the first observable difference. *)

module M = Map.Make (Int)

type t = {
  nblocks : int;
  block_size : int;
  committed : bytes M.t;
  sealed : bytes M.t list;
      (* write-sets acknowledged by commit_async but not yet drained by
         the group committer, oldest first.  Reads see them (they are
         applied volatilely); a crash may drop the whole queue. *)
}

type txn = { writes : bytes M.t; is_live : bool }

let create ~nblocks ~block_size =
  if nblocks <= 0 || block_size <= 0 then invalid_arg "Spec.create";
  { nblocks; block_size; committed = M.empty; sealed = [] }

let nblocks t = t.nblocks
let block_size t = t.block_size

let zeros t = Bytes.make t.block_size '\000'

let apply committed writes = M.union (fun _blk staged _old -> Some staged) writes committed

(* The image reads observe: committed overlaid by every sealed
   write-set, oldest first (so the newest seal wins). *)
let visible t = List.fold_left apply t.committed t.sealed

let block t blk =
  match M.find_opt blk (visible t) with
  | Some data -> Bytes.copy data
  | None -> zeros t

let durable_block t blk =
  match M.find_opt blk t.committed with
  | Some data -> Bytes.copy data
  | None -> zeros t

let in_range t blk = blk >= 0 && blk < t.nblocks

let read t blk =
  if in_range t blk then Ok (block t blk) else Error (Tinca.Block_out_of_range blk)

let init_txn _t = { writes = M.empty; is_live = true }

let live txn = txn.is_live

(* Validation order mirrors the facade: liveness, then size, then range. *)
let write t txn blk data =
  if not txn.is_live then Error Tinca.Txn_not_running
  else if Bytes.length data <> t.block_size then
    Error (Tinca.Wrong_block_size { expected = t.block_size; got = Bytes.length data })
  else if not (in_range t blk) then Error (Tinca.Block_out_of_range blk)
  else Ok { txn with writes = M.add blk (Bytes.copy data) txn.writes }

let read_in t txn blk =
  if not txn.is_live then Error Tinca.Txn_not_running
  else if not (in_range t blk) then Error (Tinca.Block_out_of_range blk)
  else
    match M.find_opt blk txn.writes with
    | Some data -> Ok (Bytes.copy data)
    | None -> Ok (block t blk)

let sealed_count t = List.length t.sealed

(* Fold the oldest sealed write-sets into the committed map, keeping the
   newest [keep] still sealed — the model of a group-committer drain
   (which always drains the whole standing batch, so the executor
   reconciles [keep] with the real [Tinca.group_pending]). *)
let flush_sealed ?(keep = 0) t =
  if keep < 0 || keep > List.length t.sealed then invalid_arg "Spec.flush_sealed";
  let ndrain = List.length t.sealed - keep in
  let rec drain committed sealed n =
    match sealed with
    | ws :: rest when n > 0 -> drain (apply committed ws) rest (n - 1)
    | _ -> (committed, sealed)
  in
  let committed, sealed = drain t.committed t.sealed ndrain in
  { t with committed; sealed }

(* A crash drops every sealed-unacked write-set: nothing of the standing
   batch was fenced durable. *)
let drop_sealed t = { t with sealed = [] }

(* [seal] = Tinca.commit_async under a nonzero window: the write-set is
   acknowledged and becomes visible at once, but its durability is
   deferred to a later drain. *)
let seal t txn =
  if not txn.is_live then Error Tinca.Txn_not_running
  else
    Ok
      ( { t with sealed = t.sealed @ [ txn.writes ] },
        { writes = M.empty; is_live = false } )

(* [commit] = the synchronous path (window 0, or commit_async + await):
   the facade drains the standing batch before the transaction itself
   becomes durable, so the whole sealed queue folds in first. *)
let commit t txn =
  if not txn.is_live then Error Tinca.Txn_not_running
  else
    let t = flush_sealed t in
    Ok
      ( { t with committed = apply t.committed txn.writes },
        { writes = M.empty; is_live = false } )

let abort t txn =
  if not txn.is_live then Error Tinca.Txn_not_running
  else Ok (t, { writes = M.empty; is_live = false })

let reject _txn = { writes = M.empty; is_live = false }

(* [write_direct] commits synchronously through the ring, so it too
   drains the standing batch first. *)
let write_direct t blk data =
  if Bytes.length data <> t.block_size then
    Error (Tinca.Wrong_block_size { expected = t.block_size; got = Bytes.length data })
  else if not (in_range t blk) then Error (Tinca.Block_out_of_range blk)
  else
    let t = flush_sealed t in
    Ok { t with committed = M.add blk (Bytes.copy data) t.committed }

let pending txn = M.bindings txn.writes

let apply_pending t txn =
  { t with committed = apply t.committed txn.writes }

(* Structural equality up to the zero-block default: a block explicitly
   written to zeros equals an absent one.  Compares the {e visible}
   image — two states with different sealed-queue factorizations of the
   same content are equal. *)
let equal a b =
  a.nblocks = b.nblocks && a.block_size = b.block_size
  &&
  let rec all blk =
    blk >= a.nblocks || (Bytes.equal (block a blk) (block b blk) && all (blk + 1))
  in
  all 0

let pp_diff ppf (a, b) =
  let rec first blk =
    if blk >= a.nblocks then Format.fprintf ppf "states equal"
    else
      let da = block a blk and db = block b blk in
      if Bytes.equal da db then first (blk + 1)
      else
        Format.fprintf ppf "block %d: %C vs %C" blk (Bytes.get da 0) (Bytes.get db 0)
  in
  first 0
