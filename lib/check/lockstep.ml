(* Lockstep refinement harness: the executable Spec and a real Tinca
   facade driven through the same command sequence, with observational
   equivalence checked after every command and — via Crash_check's
   driver hook — after every recovered state of every crash point.
   See lockstep.mli. *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Shard = Tinca_core.Shard
module Rng = Tinca_util.Rng
module Check = Crash_check

type cmd =
  | Begin
  | Write of int * int
  | Commit
  | Abort
  | Read of int
  | Write_direct of int * int
  | Bad_size_write of int
  | Commit_async
  | Await

let pp_cmd ppf = function
  | Begin -> Format.pp_print_string ppf "Begin"
  | Write (b, v) -> Format.fprintf ppf "Write (%d, %d)" b v
  | Commit -> Format.pp_print_string ppf "Commit"
  | Abort -> Format.pp_print_string ppf "Abort"
  | Read b -> Format.fprintf ppf "Read %d" b
  | Write_direct (b, v) -> Format.fprintf ppf "Write_direct (%d, %d)" b v
  | Bad_size_write b -> Format.fprintf ppf "Bad_size_write %d" b
  | Commit_async -> Format.pp_print_string ppf "Commit_async"
  | Await -> Format.pp_print_string ppf "Await"

let pp_cmds ppf cmds =
  Format.fprintf ppf "[| ";
  Array.iteri
    (fun i c -> Format.fprintf ppf "%s%a" (if i = 0 then "" else "; ") pp_cmd c)
    cmds;
  Format.fprintf ppf " |]"

type geometry = {
  nvm_kb : int;
  ring_slots : int;
  nshards : int;
  universe : int;
  group_window_ns : int;
  scheme : Tinca.Config.scheme;
}

let default_geometry =
  {
    nvm_kb = 160;
    ring_slots = 64;
    nshards = 1;
    universe = 48;
    group_window_ns = 0;
    scheme = Tinca.Config.Logging Tinca.Batched;
  }

type mutation = Lose_writes | Abort_commits | Skip_seal | Drop_durable_notify | Torn_swing

type divergence = { step : int; cmd : cmd; reason : string }

let pp_divergence ppf d =
  Format.fprintf ppf "step %d (%a): %s" d.step pp_cmd d.cmd d.reason

type run_stats = { ops : int; sweeps : int; blocks_compared : int }

(* --- generator ----------------------------------------------------------- *)

let gen_with ~async ~seed ~len ~universe =
  let rng = Rng.create seed in
  let out = ref [] in
  let n = ref 0 in
  let emit c =
    if !n < len then begin
      out := c :: !out;
      incr n
    end
  in
  let blk () = Rng.int rng universe in
  let byte () = Rng.int rng 256 in
  (* Track (approximately) whether a transaction is open, so short
     sequences still carry real commit traffic instead of dissolving
     into no-ops — while keeping a deliberate trickle of no-handle /
     finished-handle probes. *)
  let open_ = ref false in
  while !n < len do
    let r = Rng.float rng in
    if not !open_ then begin
      if r < 0.35 then begin
        emit Begin;
        open_ := true
      end
      else if r < 0.55 then emit (Write_direct (blk (), byte ()))
      else if r < 0.75 then emit (Read (blk ()))
      else if r < 0.81 then emit (Write (blk (), byte ())) (* finished-handle probe *)
      else if r < 0.86 then emit (if async then Await else Commit) (* no-handle / drain probe *)
      else if r < 0.91 then emit Abort (* no-handle probe *)
      else if len - !n > universe then begin
        (* Transaction_too_large probe: one transaction touching (almost)
           the whole universe, which exceeds the small default geometry's
           data region.  Only emitted when the length budget has room. *)
        emit Begin;
        let k = (universe / 2) + Rng.int rng (universe / 2) in
        let start = blk () in
        for j = 0 to k - 1 do
          emit (Write ((start + j) mod universe, byte ()))
        done;
        emit Commit
      end
      else emit (Read (blk ()))
    end
    else if r < 0.50 then
      (* Mostly in-range writes, with the occasional out-of-range probe. *)
      let b = if Rng.chance rng 0.06 then universe + Rng.int rng 4 else blk () in
      emit (Write (b, byte ()))
    else if r < 0.70 then begin
      emit (if async && Rng.chance rng 0.75 then Commit_async else Commit);
      open_ := false
    end
    else if r < 0.78 then begin
      emit Abort;
      open_ := false
    end
    else if r < 0.84 then emit (Bad_size_write (blk ()))
    else if r < 0.90 then emit (Read (blk ()))
    else if r < 0.96 then emit (Write_direct (blk (), byte ()))
    else emit Begin (* abandon-handle probe *)
  done;
  Array.of_list (List.rev !out)

let gen ~seed ~len ~universe = gen_with ~async:false ~seed ~len ~universe
let gen_async ~seed ~len ~universe = gen_with ~async:true ~seed ~len ~universe

let multi_shard_commits g cmds =
  let shards = Hashtbl.create 8 in
  let in_txn = ref false in
  let count = ref 0 in
  Array.iter
    (function
      | Begin ->
          in_txn := true;
          Hashtbl.reset shards
      | Write (b, _) when !in_txn && b < g.universe ->
          Hashtbl.replace shards (Shard.stripe ~nshards:g.nshards b) ()
      | Commit | Commit_async ->
          if !in_txn && Hashtbl.length shards >= 2 then incr count;
          in_txn := false;
          Hashtbl.reset shards
      | Abort ->
          in_txn := false;
          Hashtbl.reset shards
      | _ -> ())
    cmds;
  !count

(* --- environment --------------------------------------------------------- *)

let mk_env g =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem =
    Pmem.create ~seed:7 ~clock ~metrics ~tech:Latency.Pcm ~size:(g.nvm_kb * 1024) ()
  in
  let disk =
    Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:g.universe ~block_size:4096
  in
  { Check.pmem; disk; clock; metrics }

let tinca_config g =
  {
    Tinca.Config.default with
    Tinca.Config.nvm_bytes = g.nvm_kb * 1024;
    ring_slots = g.ring_slots;
    nshards = g.nshards;
    group_window_ns = g.group_window_ns;
    commit_scheme = g.scheme;
  }

let mk_tinca g (env : Check.env) =
  Tinca.ok_exn
    (Tinca.format ~config:(tinca_config g) ~pmem:env.Check.pmem ~disk:env.Check.disk
       ~clock:env.Check.clock ~metrics:env.Check.metrics)

let with_fault mutate f =
  match mutate with
  | Some Skip_seal ->
      Shard.set_fault (Some `Skip_seal);
      Fun.protect ~finally:(fun () -> Shard.set_fault None) f
  | Some Drop_durable_notify ->
      Shard.set_fault (Some `Drop_durable_notify);
      Fun.protect ~finally:(fun () -> Shard.set_fault None) f
  | Some Torn_swing ->
      Tinca_core.Paging.set_fault (Some `Torn_swing);
      Fun.protect ~finally:(fun () -> Tinca_core.Paging.set_fault None) f
  | _ -> f ()

(* --- the lockstep executor ----------------------------------------------- *)

let show = function
  | Ok _ -> "Ok"
  | Error e -> Printf.sprintf "Error (%s)" (Tinca.error_message e)

let fill v = Bytes.make 4096 (Char.chr (v land 0xFF))

type state = {
  tc : Tinca.t;
  mutable spec : Spec.t;
  mutable cur : (Tinca.txn * Spec.txn) option;
  mutable tickets : Tinca.ticket list; (* outstanding, oldest first *)
}

(* The group committer drains oldest-first and always drains the whole
   standing batch, so after any command the spec's sealed queue need
   only be folded down to the real [group_pending] count — whatever
   trigger fired (window expiry, conflict, capacity, max-batch, await)
   is thereby modeled without re-implementing the trigger policy. *)
let reconcile st = st.spec <- Spec.flush_sealed ~keep:(Tinca.group_pending st.tc) st.spec

(* Execute one command on both systems; Error reason on divergence.
   [Transaction_too_large] is the one real outcome the spec cannot
   predict (geometry): it is accepted wherever the spec would have
   succeeded, and the spec then takes the rejection transition (the
   map untouched, the handle finished) — which the subsequent sweep
   verifies against the real rollback. *)
let exec_cmd ?mutate st cmd =
  let mismatch what real spec =
    Error (Printf.sprintf "%s: real %s vs spec %s" what (show real) (show spec))
  in
  match cmd with
  | Begin ->
      st.cur <- Some (Tinca.init_txn st.tc, Spec.init_txn st.spec);
      Ok ()
  | (Write _ | Bad_size_write _ | Commit | Commit_async | Abort) when st.cur = None -> Ok ()
  | Write (b, v) ->
      let rtxn, stxn = Option.get st.cur in
      let data = fill v in
      let spec = Spec.write st.spec stxn b data in
      (* Lose_writes only swallows writes that would have succeeded —
         error paths stay honest, so the divergence it plants is the
         durability loss itself, not a masked validation error. *)
      let real =
        if mutate = Some Lose_writes && Spec.live stxn && Result.is_ok spec then Ok ()
        else Tinca.write rtxn b data
      in
      (match (real, spec) with
      | Ok (), Ok stxn' ->
          st.cur <- Some (rtxn, stxn');
          Ok ()
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch (Printf.sprintf "write %d" b) real spec)
  | Bad_size_write b -> (
      let rtxn, stxn = Option.get st.cur in
      let data = Bytes.make 100 'x' in
      match (Tinca.write rtxn b data, Spec.write st.spec stxn b data) with
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch (Printf.sprintf "bad-size write %d" b) real spec)
  | Commit -> (
      let rtxn, stxn = Option.get st.cur in
      let real =
        if mutate = Some Abort_commits && Spec.live stxn then Tinca.abort rtxn
        else Tinca.commit rtxn
      in
      match (real, Spec.commit st.spec stxn) with
      | Ok (), Ok (spec', stxn') ->
          st.spec <- spec';
          st.cur <- Some (rtxn, stxn');
          Ok ()
      | Error Tinca.Transaction_too_large, Ok _ ->
          st.cur <- Some (rtxn, Spec.reject stxn);
          Ok ()
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch "commit" real spec)
  | Abort -> (
      let rtxn, stxn = Option.get st.cur in
      match (Tinca.abort rtxn, Spec.abort st.spec stxn) with
      | Ok (), Ok (spec', stxn') ->
          st.spec <- spec';
          st.cur <- Some (rtxn, stxn');
          Ok ()
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch "abort" real spec)
  | Read b -> (
      match (Tinca.read st.tc b, Spec.read st.spec b) with
      | Ok d, Ok d' when Bytes.equal d d' -> Ok ()
      | (Ok _ as real), (Ok _ as spec) ->
          mismatch (Printf.sprintf "read %d: content differs —" b) real spec
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch (Printf.sprintf "read %d" b) real spec)
  | Write_direct (b, v) -> (
      let data = fill v in
      match (Tinca.write_direct st.tc b data, Spec.write_direct st.spec b data) with
      | Ok (), Ok spec' ->
          st.spec <- spec';
          Ok ()
      | Error Tinca.Transaction_too_large, Ok _ -> Ok ()
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch (Printf.sprintf "write_direct %d" b) real spec)
  | Commit_async -> (
      let rtxn, stxn = Option.get st.cur in
      match (Tinca.commit_async rtxn, Spec.seal st.spec stxn) with
      | Ok tk, Ok (spec', stxn') ->
          st.spec <- spec';
          st.cur <- Some (rtxn, stxn');
          if not (Tinca.ticket_durable tk) then st.tickets <- st.tickets @ [ tk ];
          Ok ()
      | Error Tinca.Transaction_too_large, Ok _ ->
          st.cur <- Some (rtxn, Spec.reject stxn);
          Ok ()
      | Error e, Error e' when e = e' -> Ok ()
      | real, spec -> mismatch "commit_async" real spec)
  | Await -> (
      match st.tickets with
      | [] -> Ok ()
      | tk :: rest -> (
          st.tickets <- rest;
          match Tinca.await tk with
          | Ok () ->
              if not (Tinca.ticket_durable tk) then
                Error "await: ticket still not durable after await"
              else Ok ()
          | Error e -> Error (Printf.sprintf "await: %s" (Tinca.error_message e))))

(* Full observational equivalence: every block read through the facade
   equals the spec map, and the media invariant audit holds. *)
let sweep g st =
  let rec go blk =
    if blk >= g.universe then Ok g.universe
    else
      match (Tinca.read st.tc blk, Spec.read st.spec blk) with
      | Ok d, Ok d' when Bytes.equal d d' -> go (blk + 1)
      | Ok d, Ok d' ->
          Error
            (Printf.sprintf "sweep: block %d is %C on media, %C in the spec" blk
               (Bytes.get d 0) (Bytes.get d' 0))
      | real, spec ->
          Error (Printf.sprintf "sweep: read %d: real %s vs spec %s" blk (show real) (show spec))
  in
  match Tinca.check_invariants st.tc with
  | exception Tinca_core.Cache.Invariant_violation m ->
      Error (Printf.sprintf "sweep: invariant audit: %s" m)
  | exception Failure m -> Error (Printf.sprintf "sweep: invariant audit: %s" m)
  | () -> go 0

let run ?mutate g cmds =
  with_fault mutate @@ fun () ->
  let env = mk_env g in
  let st =
    {
      tc = mk_tinca g env;
      spec = Spec.create ~nblocks:g.universe ~block_size:4096;
      cur = None;
      tickets = [];
    }
  in
  let stats = ref { ops = 0; sweeps = 0; blocks_compared = 0 } in
  let diverged = ref None in
  (try
     Array.iteri
       (fun step cmd ->
         let fail reason =
           diverged := Some { step; cmd; reason };
           raise Exit
         in
         (match exec_cmd ?mutate st cmd with
         | Ok () -> reconcile st
         | Error reason -> fail reason
         | exception e -> fail (Printf.sprintf "raised %s" (Printexc.to_string e)));
         (match sweep g st with
         | Ok compared ->
             stats :=
               {
                 ops = !stats.ops + 1;
                 sweeps = !stats.sweeps + 1;
                 blocks_compared = !stats.blocks_compared + compared;
               }
         | Error reason -> fail reason
         | exception e -> fail (Printf.sprintf "sweep raised %s" (Printexc.to_string e))))
       cmds
   with Exit -> ());
  match !diverged with Some d -> Error d | None -> Ok !stats

(* --- shrinking ----------------------------------------------------------- *)

(* Delta debugging: repeatedly try to delete chunks (halving the chunk
   size down to 1) as long as the candidate still fails.  Terminates at
   a 1-minimal sequence: no single remaining command can be removed. *)
let shrink ~fails cmds =
  let remove arr i len =
    Array.append (Array.sub arr 0 i) (Array.sub arr (i + len) (Array.length arr - i - len))
  in
  let arr = ref cmds in
  let changed = ref true in
  while !changed do
    changed := false;
    let size = ref (max 1 (Array.length !arr / 2)) in
    while !size >= 1 do
      let i = ref 0 in
      while !i + !size <= Array.length !arr do
        let cand = remove !arr !i !size in
        if Array.length cand < Array.length !arr && fails cand then begin
          arr := cand;
          changed := true
        end
        else i := !i + !size
      done;
      size := !size / 2
    done
  done;
  !arr

(* --- crash-space integration --------------------------------------------- *)

(* Crash_check driver: run the command sequence against a fresh facade,
   tracking a spec whose sealed queue mirrors the real standing batch
   (reconciled against [Tinca.group_pending] after every command) plus
   (around every commit window) the in-flight image.  The judge then
   demands that a recovered state equal one of

   - the durable image (sealed queue dropped — an undrained batch and
     any sealed-unacked transactions legitimately roll back),
   - the durable image with the WHOLE batch drained (a crash during or
     after the drain: the batch is all-or-nothing, so acked-durable
     transactions must survive together and partial batches are a
     violation),
   - the in-flight image (a synchronous commit window, fully applied —
     the batch drained and the committing transaction applied on top),

   at every recovered state of every survival subset of every crash
   point.  Command outcomes are not compared here (the plain lockstep
   run covers that); geometry rejections just leave the spec alone. *)
let crash_driver g cmds =
  {
    Check.fresh =
      (fun (env : Check.env) ->
        let tc = mk_tinca g env in
        let spec = ref (Spec.create ~nblocks:g.universe ~block_size:4096) in
        let in_flight = ref None in
        let cur = ref None in
        let tickets = ref [] in
        let reconcile () = spec := Spec.flush_sealed ~keep:(Tinca.group_pending tc) !spec in
        let exec cmd =
          (match cmd with
          | Begin -> cur := Some (Tinca.init_txn tc, Spec.init_txn !spec)
          | Write (b, v) -> (
              match !cur with
              | None -> ()
              | Some (rtxn, stxn) -> (
                  let data = fill v in
                  ignore (Tinca.write rtxn b data);
                  match Spec.write !spec stxn b data with
                  | Ok stxn' -> cur := Some (rtxn, stxn')
                  | Error _ -> ()))
          | Bad_size_write b -> (
              match !cur with
              | None -> ()
              | Some (rtxn, _) -> ignore (Tinca.write rtxn b (Bytes.make 100 'x')))
          | Commit -> (
              match !cur with
              | None -> ()
              | Some (rtxn, stxn) when Spec.live stxn -> (
                  let post = Spec.apply_pending (Spec.flush_sealed !spec) stxn in
                  in_flight := Some post;
                  cur := Some (rtxn, Spec.reject stxn);
                  match Tinca.commit rtxn with
                  | Ok () ->
                      spec := post;
                      in_flight := None
                  | Error _ -> in_flight := None)
              | Some (rtxn, _) -> ignore (Tinca.commit rtxn))
          | Commit_async -> (
              match !cur with
              | None -> ()
              | Some (rtxn, stxn) when Spec.live stxn -> (
                  (* A drain triggered inside commit_async (window,
                     conflict, capacity, max-batch) can cover the new
                     transaction too, so the in-flight candidate is
                     "everything drained, this transaction included". *)
                  in_flight := Some (Spec.apply_pending (Spec.flush_sealed !spec) stxn);
                  match Tinca.commit_async rtxn with
                  | Ok tk -> (
                      in_flight := None;
                      if not (Tinca.ticket_durable tk) then tickets := !tickets @ [ tk ];
                      match Spec.seal !spec stxn with
                      | Ok (spec', stxn') ->
                          spec := spec';
                          cur := Some (rtxn, stxn')
                      | Error _ -> cur := Some (rtxn, Spec.reject stxn))
                  | Error _ ->
                      in_flight := None;
                      cur := Some (rtxn, Spec.reject stxn))
              | Some (rtxn, _) -> ignore (Tinca.commit_async rtxn))
          | Await -> (
              match !tickets with
              | [] -> ()
              | tk :: rest ->
                  tickets := rest;
                  ignore (Tinca.await tk))
          | Abort -> (
              match !cur with
              | None -> ()
              | Some (rtxn, stxn) ->
                  ignore (Tinca.abort rtxn);
                  cur := Some (rtxn, Spec.reject stxn))
          | Read b -> ignore (Tinca.read tc b)
          | Write_direct (b, v) -> (
              let data = fill v in
              match Spec.write_direct !spec b data with
              | Error _ -> ignore (Tinca.write_direct tc b data)
              | Ok post -> (
                  in_flight := Some post;
                  match Tinca.write_direct tc b data with
                  | Ok () ->
                      spec := post;
                      in_flight := None
                  | Error _ -> in_flight := None)));
          reconcile ()
        in
        let workload () = Array.iter exec cmds in
        let judge recovered =
          let logical blk =
            match Tinca.peek recovered blk with
            | Some data -> data
            | None -> Disk.read_block env.Check.disk blk
          in
          let matches spec =
            let rec go blk =
              blk >= g.universe
              || (Bytes.equal (logical blk) (Spec.block spec blk) && go (blk + 1))
            in
            go 0
          in
          let durable = Spec.drop_sealed !spec in
          let drained = Spec.flush_sealed !spec in
          if matches durable then Ok ()
          else if matches drained then Ok ()
          else
            match !in_flight with
            | Some post when matches post -> Ok ()
            | _ ->
                let rec first blk =
                  if blk >= g.universe then "unreachable"
                  else
                    let d = logical blk and e = Spec.block durable blk in
                    if Bytes.equal d e then first (blk + 1)
                    else
                      Printf.sprintf
                        "spec refinement: block %d is %C (durable spec %C, batch-drained %C%s) — \
                         recovered state matches neither the durable image, nor the whole \
                         batch drained, nor the in-flight commit fully applied"
                        blk (Bytes.get d 0) (Bytes.get e 0)
                        (Bytes.get (Spec.block drained blk) 0)
                        (match !in_flight with
                        | Some post ->
                            Printf.sprintf ", in-flight %C" (Bytes.get (Spec.block post blk) 0)
                        | None -> "")
                in
                Error (first 0)
        in
        (workload, judge));
  }

let crash_refine ?mutate ?(cap = 48) ?(stride = 1) ?progress g cmds =
  with_fault mutate @@ fun () ->
  let cfg =
    {
      Check.default_config with
      Check.universe = g.universe;
      pmem_bytes = g.nvm_kb * 1024;
      ring_slots = g.ring_slots;
      nshards = g.nshards;
      mask_cap = cap;
      stride;
      scheme = g.scheme;
    }
  in
  Check.explore ?progress ~driver:(crash_driver g cmds) cfg
