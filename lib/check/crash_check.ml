(* Exhaustive crash-space model checker for the Tinca commit protocol.

   The torture tests in test/test_crash.ml sweep every pmem event as a
   crash point but resolve each crash with *randomly sampled* cache-line
   survival outcomes, so low-probability torn states go untested.  This
   checker closes that gap: for a deterministic workload it enumerates
   every pmem event as a crash point and, at each crash, walks the
   survival subsets of the unfenced cache lines *exhaustively* — all 2^d
   torn media images — rather than sampling them.

   d is kept tractable by two reductions, neither of which loses states:
   - lines whose volatile content equals their durable backup are
     dropped from the subset space (their survival cannot change the
     medium), which is what keeps d small at most crash points given the
     protocol's own fencing;
   - post-crash media images are deduplicated by digest, so subsets that
     collapse to the same medium run recovery once.

   When 2^d still exceeds the configured cap (typically inside a torn
   4 KB data-block store, d = 64), the checker falls back to a *seeded
   sample* of the subset space that always includes the all-lost and
   all-survive corners, and reports "explored X of Y" via Logs and the
   final report instead of truncating silently.

   Every explored state must pass three gates:
   1. Tinca.recover succeeds — the facade discriminates the commit
      scheme (logging ring vs. paging indirection table) from the media
      magic, so the same sweep covers both schemes;
   2. Tinca.check_invariants holds on the recovered engine (per-cache
      audit plus: the cross-shard seal must be clear);
   3. the prefix-consistency oracle: the recovered logical state
      (cache overlaying disk, full block content) equals the state as of
      the last acknowledged commit, or that state with the in-flight
      transaction fully applied — never a partial mix.

   With [nshards > 1] the workload's multi-block transactions stripe
   across shards, so the sweep covers every crash point of the striped
   commit scheduler — in particular the window between one shard's Head
   advance and the next, and either side of the cross-shard seal — and
   gate 3 doubles as the all-or-nothing oracle for multi-shard
   transactions: a recovered state where one shard's sub-commit is
   visible and another's is not matches neither the pre-txn nor the
   post-txn image and is flagged. *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk

let log_src = Logs.Src.create "tinca.check" ~doc:"Tinca crash-space model checker"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  seed : int;  (** workload RNG seed *)
  ncommits : int;  (** transactions in the workload *)
  universe : int;  (** disk blocks the workload touches *)
  pmem_bytes : int;  (** NVM size; small enough to force evictions *)
  ring_slots : int;
  mask_cap : int;  (** max survival subsets explored per crash point *)
  sample_seed : int;  (** seed for the capped-sampling fallback *)
  first_event : int;  (** first crash point (1-based), for sub-range sweeps *)
  stride : int;  (** explore every [stride]-th crash point *)
  nshards : int;  (** shards the device is partitioned into *)
  scheme : Tinca.Config.scheme;  (** commit scheme the sweep drives *)
}

let default_config =
  {
    seed = 2024;
    ncommits = 6;
    universe = 48;
    pmem_bytes = 160 * 1024 (* ~30 data blocks: forces evictions *);
    ring_slots = 64;
    mask_cap = 256;
    sample_seed = 1;
    first_event = 1;
    stride = 1;
    nshards = 1;
    scheme = Tinca.Config.Logging Tinca.Batched;
  }

type violation = {
  crash_event : int;  (** the pmem event the crash replaced *)
  surviving : int list;  (** torn lines whose new content reached the medium *)
  lost : int list;  (** torn lines rolled back to their durable content *)
  message : string;
}

type report = {
  span : int;  (** pmem events in the crash-free workload run *)
  crash_points : int;  (** crash points explored *)
  states_checked : int;  (** recovery + invariants + oracle executions *)
  states_deduped : int;  (** survival subsets collapsing to an already-seen medium *)
  subsets_total : float;  (** Σ 2^d over crash points (the full space) *)
  capped_points : int;  (** crash points where the cap forced sampling *)
  max_torn_lines : int;  (** largest d encountered *)
  violations : violation list;
}

(* --- deterministic workload -------------------------------------------- *)

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

(* A pluggable workload + oracle.  [fresh env] formats the media and
   returns the workload thunk (run until it finishes or the armed crash
   countdown fires) and the judge applied to every recovered shard.
   The default driver below is the original fill-byte workload with the
   prefix-consistency oracle; Lockstep supplies a command-sequence
   workload whose judge is full spec refinement. *)
type driver = { fresh : env -> (unit -> unit) * (Tinca.t -> (unit, string) result) }

let mk_env cfg =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem =
    Pmem.create ~seed:(cfg.seed + 1) ~clock ~metrics ~tech:Latency.Pcm ~size:cfg.pmem_bytes ()
  in
  let disk =
    Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:cfg.universe ~block_size:4096
  in
  { pmem; disk; clock; metrics }

let tinca_config cfg =
  {
    Tinca.Config.default with
    Tinca.Config.nvm_bytes = cfg.pmem_bytes;
    ring_slots = cfg.ring_slots;
    nshards = cfg.nshards;
    commit_scheme = cfg.scheme;
  }

(* The workload of test_crash.ml: [ncommits] transactions of 1..4 blocks
   with repeated block choices (exercising COW write hits) and occasional
   reads mixed in.  [oracle] maps a disk block to the fill byte of its
   last acknowledged committed write; [pending] holds the in-flight
   transaction's writes (folded into [oracle] only once commit returns,
   i.e. once the transaction is acknowledged). *)
let run_workload cfg tc oracle pending =
  let rng = Tinca_util.Rng.create cfg.seed in
  for _txn = 1 to cfg.ncommits do
    let n = 1 + Tinca_util.Rng.int rng 4 in
    let h = Tinca.init_txn tc in
    Hashtbl.reset pending;
    for _ = 1 to n do
      let blk = Tinca_util.Rng.int rng cfg.universe in
      let v = Char.chr (Tinca_util.Rng.int rng 256) in
      Tinca.ok_exn (Tinca.write h blk (Bytes.make 4096 v));
      Hashtbl.replace pending blk v
    done;
    if Tinca_util.Rng.chance rng 0.3 then
      ignore (Tinca.read tc (Tinca_util.Rng.int rng cfg.universe));
    Tinca.ok_exn (Tinca.commit h);
    Hashtbl.iter (fun blk v -> Hashtbl.replace oracle blk v) pending;
    Hashtbl.reset pending
  done

let mk_tinca cfg env =
  Tinca.ok_exn
    (Tinca.format ~config:(tinca_config cfg) ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
       ~metrics:env.metrics)

(* Events of a crash-free run, so the sweep covers the whole span.
   [fresh] formats the media before we start counting, matching the
   sweep loop (crash points fall inside the workload only). *)
let total_events driver cfg =
  let env = mk_env cfg in
  let workload, _judge = driver.fresh env in
  let before = Pmem.event_count env.pmem in
  workload ();
  Pmem.event_count env.pmem - before

(* --- the prefix-consistency oracle ------------------------------------- *)

(* Logical content of [blk] after recovery: cache version if cached, else
   the disk's.  Full 4 KB compared, so a torn data block that recovery
   wrongly exposes is caught even when its first byte happens to match. *)
let logical_block tc disk blk =
  match Tinca.peek tc blk with Some data -> data | None -> Disk.read_block disk blk

let first_mismatch tc disk universe expect_of_blk =
  let bad = ref None in
  let blk = ref 0 in
  while !bad = None && !blk < universe do
    let expect = expect_of_blk !blk in
    let data = logical_block tc disk !blk in
    (try Bytes.iter (fun c -> if c <> expect then raise Exit) data
     with Exit -> bad := Some (!blk, expect, data));
    incr blk
  done;
  !bad

let matches tc disk universe table =
  first_mismatch tc disk universe (fun blk ->
      match Hashtbl.find_opt table blk with Some v -> v | None -> '\000')
  = None

let with_pending oracle pending =
  let o = Hashtbl.copy oracle in
  Hashtbl.iter (fun blk v -> Hashtbl.replace o blk v) pending;
  o

(* The default judge: prefix consistency over the fill-byte oracle
   tables the default workload maintains. *)
let prefix_judge env cfg oracle pending recovered =
  let ok_old = matches recovered env.disk cfg.universe oracle in
  let ok_new =
    (not (Hashtbl.length pending = 0))
    && matches recovered env.disk cfg.universe (with_pending oracle pending)
  in
  if ok_old || ok_new then Ok ()
  else
    Error
      (match
         first_mismatch recovered env.disk cfg.universe (fun blk ->
             match Hashtbl.find_opt oracle blk with Some v -> v | None -> '\000')
       with
      | Some (blk, expect, data) ->
          Printf.sprintf
            "prefix consistency: block %d is %C (expected %C pre-txn%s) — recovered \
             state matches neither the last acknowledged commit nor the in-flight \
             commit fully applied"
            blk (Bytes.get data 0) expect
            (match Hashtbl.find_opt pending blk with
            | Some v -> Printf.sprintf ", %C post-txn" v
            | None -> "")
      | None -> "prefix consistency: post-txn image is a partial mix")

let default_driver cfg =
  {
    fresh =
      (fun env ->
        let tc = mk_tinca cfg env in
        let oracle = Hashtbl.create 64 and pending = Hashtbl.create 8 in
        ( (fun () -> run_workload cfg tc oracle pending),
          prefix_judge env cfg oracle pending ));
  }

(* Run the three gates on the current (post-crash) medium.  Recovery goes
   through the facade, which sniffs the scheme from the media magic. *)
let check_state env judge =
  match Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics with
  | exception e -> Error (Printf.sprintf "recovery raised %s" (Printexc.to_string e))
  | Error e -> Error (Printf.sprintf "recovery failed: %s" (Tinca.error_message e))
  | Ok recovered -> (
      match Tinca.check_invariants recovered with
      | exception e -> Error (Printf.sprintf "invariant audit raised %s" (Printexc.to_string e))
      | () -> judge recovered)

(* --- survival-subset enumeration --------------------------------------- *)

(* All 2^d subsets when that fits the cap; otherwise a seeded sample of
   [mask_cap] subsets always containing the two corners (all lost / all
   survive).  Subsets are bit masks over [torn] (bit j = torn line j
   survives). *)
let subset_masks ~d ~cap ~rng =
  let full = 2.0 ** float_of_int d in
  if d <= 29 && (1 lsl d) <= cap then
    (`Exhaustive, List.init (1 lsl d) (fun m -> `Bits m), full)
  else begin
    let masks = ref [] in
    for _ = 1 to max 0 (cap - 2) do
      let tbl = Hashtbl.create 16 in
      for j = 0 to d - 1 do
        if Tinca_util.Rng.bool rng then Hashtbl.replace tbl j ()
      done;
      masks := `Table tbl :: !masks
    done;
    (`Sampled, `Bits 0 :: `All :: !masks, full)
  end

let mask_mem mask j =
  match mask with
  | `Bits m -> m land (1 lsl j) <> 0
  | `All -> true
  | `Table tbl -> Hashtbl.mem tbl j

(* --- the sweep ---------------------------------------------------------- *)

let explore ?(progress = fun (_ : int) (_ : int) -> ()) ?driver cfg =
  if cfg.stride < 1 then invalid_arg "Crash_check.explore: stride must be >= 1";
  if cfg.first_event < 1 then invalid_arg "Crash_check.explore: first_event must be >= 1";
  let driver = match driver with Some d -> d | None -> default_driver cfg in
  let span = total_events driver cfg in
  let sample_rng = Tinca_util.Rng.create cfg.sample_seed in
  let crash_points = ref 0 in
  let states_checked = ref 0 in
  let states_deduped = ref 0 in
  let subsets_total = ref 0.0 in
  let capped_points = ref 0 in
  let max_torn = ref 0 in
  let violations = ref [] in
  let k = ref cfg.first_event in
  while !k <= span do
    let crash_at = !k in
    progress crash_at span;
    let env = mk_env cfg in
    let workload, judge = driver.fresh env in
    Pmem.set_crash_countdown env.pmem (Some crash_at);
    (match workload () with
    | () ->
        (* [span] counts exactly the workload's events, so every armed
           countdown in [1, span] must fire. *)
        failwith
          (Printf.sprintf "Crash_check: countdown %d did not fire within span %d" crash_at span)
    | exception Pmem.Crash_point ->
        incr crash_points;
        (* Only lines whose volatile content differs from their durable
           backup span distinct media images; everything else is fixed. *)
        let torn =
          List.filter (fun idx -> Pmem.line_torn env.pmem idx) (Pmem.unfenced_lines env.pmem)
        in
        let d = List.length torn in
        if d > !max_torn then max_torn := d;
        let torn = Array.of_list torn in
        let torn_bit = Hashtbl.create 16 in
        Array.iteri (fun j idx -> Hashtbl.replace torn_bit idx j) torn;
        let snap = Pmem.snapshot env.pmem in
        let kind, masks, full = subset_masks ~d ~cap:cfg.mask_cap ~rng:sample_rng in
        subsets_total := !subsets_total +. full;
        let explored = List.length masks in
        (if kind = `Sampled then begin
           incr capped_points;
           Log.info (fun m ->
               m "crash point %d/%d: %d torn lines; exploring %d of %.0f survival subsets \
                  (seeded sample, cap %d)"
                 crash_at span d explored full cfg.mask_cap)
         end
         else
           Log.debug (fun m ->
               m "crash point %d/%d: %d torn lines; exploring all %d survival subsets" crash_at
                 span d explored));
        let seen = Hashtbl.create 64 in
        List.iter
          (fun mask ->
            Pmem.restore env.pmem snap;
            Pmem.crash_select env.pmem ~survive:(fun idx ->
                (* Verdicts for untorn lines are irrelevant to the medium;
                   resolve them as survived. *)
                match Hashtbl.find_opt torn_bit idx with
                | Some j -> mask_mem mask j
                | None -> true);
            let digest = Pmem.media_digest env.pmem in
            if Hashtbl.mem seen digest then incr states_deduped
            else begin
              Hashtbl.add seen digest ();
              incr states_checked;
              match check_state env judge with
              | Ok () -> ()
              | Error message ->
                  let surviving = ref [] and lost = ref [] in
                  Array.iteri
                    (fun j l -> if mask_mem mask j then surviving := l :: !surviving
                      else lost := l :: !lost)
                    torn;
                  violations :=
                    {
                      crash_event = crash_at;
                      surviving = List.rev !surviving;
                      lost = List.rev !lost;
                      message;
                    }
                    :: !violations
            end)
          masks);
    k := !k + cfg.stride
  done;
  {
    span;
    crash_points = !crash_points;
    states_checked = !states_checked;
    states_deduped = !states_deduped;
    subsets_total = !subsets_total;
    capped_points = !capped_points;
    max_torn_lines = !max_torn;
    violations = List.rev !violations;
  }

let pp_violation ppf v =
  let lines l = String.concat "," (List.map string_of_int l) in
  Format.fprintf ppf "crash@@event %d survived=[%s] lost=[%s]: %s" v.crash_event
    (lines v.surviving) (lines v.lost) v.message

let report_table r =
  let t = Tinca_util.Tabular.create ~title:"Crash-space exploration" [ "metric"; "value" ] in
  let add k v = Tinca_util.Tabular.add_row t [ k; v ] in
  add "pmem events in workload (span)" (string_of_int r.span);
  add "crash points explored" (string_of_int r.crash_points);
  add "survival-subset space (sum 2^d)" (Printf.sprintf "%.0f" r.subsets_total);
  add "post-crash states checked" (string_of_int r.states_checked);
  add "states deduped (identical media)" (string_of_int r.states_deduped);
  add "crash points capped (sampled)" (string_of_int r.capped_points);
  add "max torn lines at one crash" (string_of_int r.max_torn_lines);
  add "violations" (string_of_int (List.length r.violations));
  t
