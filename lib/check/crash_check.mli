(** Exhaustive crash-space model checker for the Tinca commit protocol.

    The crash-torture suite (test/test_crash.ml) sweeps every pmem event
    as a crash point but resolves each crash with randomly sampled
    cache-line survival outcomes.  This checker instead enumerates, at
    every crash point of a deterministic workload, {e all} survival
    subsets of the lines that are both unfenced and torn (volatile
    content differs from the durable backup) — the full set of media
    images the adversarial crash model can produce — deduplicates
    identical images by digest, and runs recovery plus two oracles on
    each:

    - {!Tinca.check_invariants} on the recovered engine (per-cache audit
      plus the cross-shard seal);
    - prefix consistency: the recovered logical state equals the state
      as of the last acknowledged commit, or that state with the
      in-flight commit fully applied (full 4 KB block compare) — never a
      partial mix.

    With [nshards > 1] the same sweep covers the striped commit
    scheduler: transactions stripe across shards, so crash points fall
    between per-shard Head advances and on either side of the
    cross-shard seal, and the prefix oracle doubles as the all-or-
    nothing check for multi-shard transactions.

    The workload drives the {!Tinca} facade and recovery goes through
    {!Tinca.recover}, which discriminates the commit scheme from the
    media magic — so setting {!config.scheme} to [Paging] sweeps the
    paging engine's indirection-table protocol with the same oracles.

    When the subset count 2^d at a crash point exceeds [mask_cap], the
    checker falls back to a seeded sample (always containing the
    all-lost and all-survive corners) and reports the shortfall both via
    [Logs] and in {!report.capped_points} — coverage loss is never
    silent. *)

type config = {
  seed : int;  (** workload RNG seed *)
  ncommits : int;  (** transactions in the workload *)
  universe : int;  (** disk blocks the workload touches *)
  pmem_bytes : int;  (** NVM size; small enough to force evictions *)
  ring_slots : int;
  mask_cap : int;  (** max survival subsets explored per crash point *)
  sample_seed : int;  (** seed for the capped-sampling fallback *)
  first_event : int;  (** first crash point (1-based), for sub-range sweeps *)
  stride : int;  (** explore every [stride]-th crash point *)
  nshards : int;  (** shards the device is partitioned into *)
  scheme : Tinca.Config.scheme;  (** commit scheme the sweep drives *)
}

(** seed 2024, 6 commits, universe 48, 160 KB NVM, 64 ring slots,
    mask cap 256, full sweep (first_event 1, stride 1), 1 shard,
    logging scheme. *)
val default_config : config

(** The simulated world one sweep iteration lives in; geometry comes
    from {!config} ([pmem_bytes], [universe] disk blocks). *)
type env = {
  pmem : Tinca_pmem.Pmem.t;
  disk : Tinca_blockdev.Disk.t;
  clock : Tinca_sim.Clock.t;
  metrics : Tinca_sim.Metrics.t;
}

(** A pluggable workload + oracle pair.  [fresh env] formats the media
    (so crash points fall inside the workload only) and returns the
    workload thunk together with the judge run on every recovered
    facade (after {!Tinca.check_invariants}).  The judge's [Error]
    message becomes the violation text. *)
type driver = {
  fresh : env -> (unit -> unit) * (Tinca.t -> (unit, string) result);
}

(** The original deterministic fill-byte workload with the
    prefix-consistency oracle. *)
val default_driver : config -> driver

type violation = {
  crash_event : int;  (** the pmem event the crash replaced *)
  surviving : int list;  (** torn lines whose new content reached the medium *)
  lost : int list;  (** torn lines rolled back to their durable content *)
  message : string;
}

type report = {
  span : int;  (** pmem events in the crash-free workload run *)
  crash_points : int;  (** crash points explored *)
  states_checked : int;  (** recovery + invariants + oracle executions *)
  states_deduped : int;  (** subsets collapsing to an already-seen medium *)
  subsets_total : float;  (** sum of 2^d over crash points (the full space) *)
  capped_points : int;  (** crash points where the cap forced sampling *)
  max_torn_lines : int;  (** largest d encountered *)
  violations : violation list;
}

(** [explore cfg] runs the sweep.  [progress crash_at span] is invoked
    before each crash point (for CLI progress display).  [driver]
    (default {!default_driver}) supplies the workload and the oracle —
    {!Lockstep} passes a command-sequence driver whose judge is full
    spec refinement.  Raises only on misconfiguration
    ([Invalid_argument]) or an internal checker error; protocol bugs are
    returned as {!report.violations}. *)
val explore : ?progress:(int -> int -> unit) -> ?driver:driver -> config -> report

val pp_violation : Format.formatter -> violation -> unit

(** Render the report's headline numbers for the experiment harness. *)
val report_table : report -> Tinca_util.Tabular.t
