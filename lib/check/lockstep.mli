(** Lockstep refinement harness: drive the executable {!Spec} and a real
    {!Tinca.t} through the same generated command sequence and fail on
    the first observable difference (ROADMAP item 5).

    Three layers:

    - {!run} — execute a command sequence against both systems,
      checking outcome equality per command and full observational
      equivalence (every block readable through the facade equals the
      spec map, plus the media invariant audit) after every command;
    - {!shrink} — delta-debug a failing sequence to a 1-minimal
      reproducer, printable as a replayable OCaml value ({!pp_cmds});
    - {!crash_refine} — the crash-space integration: run the sequence
      under {!Crash_check.explore} with a driver whose judge is full
      spec refinement, i.e. {e every} recovered state of every survival
      subset of every crash point must equal the spec as of the last
      acknowledged commit, or that state with the in-flight commit fully
      applied.  This upgrades the checker's fill-byte prefix oracle to
      arbitrary workloads and full functional correctness.

    The harness validates itself with planted {!mutation}s: a mutated
    run must diverge, and the shrunk reproducer stays small (the
    acceptance bar is <= 6 commands). *)

(** The command language.  Block payloads are fill bytes (a 4 KB block
    of one repeated byte), which keeps reproducers printable while the
    equivalence check still compares full block content.  Commands
    arriving with no transaction handle yet are no-ops; commands on a
    finished handle are [Txn_not_running] probes. *)
type cmd =
  | Begin  (** [Tinca.init_txn]; abandons any previous handle *)
  | Write of int * int  (** stage (block, fill byte) into the open txn *)
  | Commit
  | Abort
  | Read of int
  | Write_direct of int * int
  | Bad_size_write of int  (** wrong-block-size probe on the open txn *)
  | Commit_async
      (** [Tinca.commit_async] on the open txn: seal now, durable at the
          next batch drain (the ticket joins the outstanding queue) *)
  | Await
      (** [Tinca.await] the oldest outstanding ticket (drains the
          standing batch); a no-op probe when none is outstanding *)

val pp_cmd : Format.formatter -> cmd -> unit

(** Replayable OCaml value, e.g.
    [[| Begin; Write (3, 120); Commit; Read 3 |]]. *)
val pp_cmds : Format.formatter -> cmd array -> unit

(** Cache geometry the sequence runs against.  Deliberately small
    ([default_geometry]: 160 KB NVM = ~30 data blocks, 64-slot ring,
    universe 48 > capacity) so replacement pressure, eviction and
    [Transaction_too_large] rejections are all reachable. *)
type geometry = {
  nvm_kb : int;
  ring_slots : int;
  nshards : int;
  universe : int;  (** disk blocks; also the sweep width *)
  group_window_ns : int;
      (** [Tinca.Config.group_window_ns] for the facade under test;
          0 (the default) = synchronous commits only *)
  scheme : Tinca.Config.scheme;
      (** commit scheme of the facade under test; default
          [Logging Batched].  The spec is scheme-agnostic, so the same
          command sequences refine both engines. *)
}

val default_geometry : geometry

(** Planted commit-path mutations, for harness self-tests: the run must
    diverge (or the crash sweep must report a violation) under each.
    [Lose_writes] silently drops every staged write on the real side
    only; [Abort_commits] turns every real commit into an abort;
    [Skip_seal] suppresses the cross-shard commit record via
    {!Tinca_core.Shard.set_fault} (observable only through
    {!crash_refine} with [nshards >= 2] — without a crash the seal is
    invisible, which is itself a useful property to have pinned);
    [Drop_durable_notify] makes the group committer publish a batch but
    skip its seal and finalize steps while the facade still acknowledges
    durability — the lost-ack bug, likewise observable only through
    {!crash_refine} (with [group_window_ns > 0]): a crash after the
    drain revokes transactions whose awaiters were told they are
    durable.  [Torn_swing] splits the paging scheme's 16 B
    indirection-table entry swing into two 8 B halves with the first
    made durable alone (via {!Tinca_core.Paging.set_fault}) — observable
    only through {!crash_refine} with a [Paging] geometry: recovery must
    detect the half-swung entry, not trust it. *)
type mutation = Lose_writes | Abort_commits | Skip_seal | Drop_durable_notify | Torn_swing

type divergence = { step : int;  (** 0-based command index *) cmd : cmd; reason : string }

val pp_divergence : Format.formatter -> divergence -> unit

type run_stats = {
  ops : int;  (** commands executed *)
  sweeps : int;  (** full-equivalence sweeps (one per command) *)
  blocks_compared : int;
}

(** Seeded command generator: deterministic for a fixed
    [(seed, len, universe)] (pinned by test), mixing reads, writes
    (including out-of-range and wrong-size probes), aborts, commits and
    oversized-transaction probes that exceed the cache capacity.  The
    generator tracks (approximately) whether a transaction is open, so
    even short sequences carry real commit traffic. *)
val gen : seed:int -> len:int -> universe:int -> cmd array

(** Like {!gen} (same determinism contract) but most commits become
    [Commit_async] and the no-handle commit probe becomes [Await], so
    sequences carry mixed acked/unacked transactions for the
    group-commit sweeps. *)
val gen_async : seed:int -> len:int -> universe:int -> cmd array

(** Commits in the sequence whose staged in-range writes stripe to at
    least two shards of [geometry] — the transactions that exercise the
    cross-shard seal.  Used to pick crash-refinement sequences that
    actually cover the striped commit scheduler at [nshards > 1]. *)
val multi_shard_commits : geometry -> cmd array -> int

(** Execute the sequence in lockstep.  [mutate] plants a bug (self-test
    only).  The real system is built fresh on simulated hardware; the
    spec starts from the same all-zeros state. *)
val run : ?mutate:mutation -> geometry -> cmd array -> (run_stats, divergence) result

(** [shrink ~fails cmds] returns a 1-minimal subsequence still failing
    [fails] (removing any single remaining command makes it pass).
    [fails] must be deterministic; [shrink] never returns a sequence
    for which [fails] is false (given [fails cmds] was true). *)
val shrink : fails:(cmd array -> bool) -> cmd array -> cmd array

(** The crash-space integration: sweep every crash point (subject to
    the usual [mask_cap]/[stride] budget) of the command sequence and
    judge every recovered state by spec refinement.  Violations come
    back in the {!Crash_check.report}. *)
val crash_refine :
  ?mutate:mutation ->
  ?cap:int ->
  ?stride:int ->
  ?progress:(int -> int -> unit) ->
  geometry ->
  cmd array ->
  Crash_check.report
