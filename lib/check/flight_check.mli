(** Budgeted crash sweep for the flight recorder (ISSUE 9).

    Complements {!Crash_check} (which proves the commit protocol) with
    the two properties only the recorder can violate:

    + {b recovery-semantics pin}: recovering the same crashed medium
      with flight replay on and off must produce bit-identical
      {e logical} cache state — the recorder is a pure observer;
    + {b dossier-vs-judge agreement}: the post-crash dossier's verdict
      ({!Tinca_obs.Forensics.verdict}) must match an independent oracle
      that tracked acked-durable transactions — [`Clean] at every crash
      point of the correct committer, and [`Dead_acked] naming the
      acked tickets when {!drop_notify_scenario} plants the
      [`Drop_durable_notify] fault.

    The sweep runs a deterministic group-commit workload through the
    {!Tinca} facade with the recorder on, crashes it at every
    [stride]-th pmem event, resolves each crash into a few survival
    subsets of the torn lines (corners + seeded samples), and applies
    both gates plus {!Tinca_core.Shard.check_invariants} to every
    deduplicated post-crash medium. *)

type config = {
  seed : int;
  ncommits : int;
  universe : int;  (** disk blocks the workload touches *)
  pmem_bytes : int;
  ring_slots : int;
  flight_slots : int;  (** per shard; must be positive *)
  nshards : int;
  window_ns : int;  (** group-commit window (large: drains come from triggers) *)
  max_batch : int;
  samples : int;  (** random survival subsets per crash point beyond the corners *)
  first_event : int;  (** first crash point (1-based), for sub-range sweeps *)
  stride : int;  (** explore every [stride]-th crash point *)
}

val default_config : config

type report = {
  span : int;  (** pmem events in the crash-free workload run *)
  crash_points : int;
  states_checked : int;  (** recoveries after media dedup *)
  dossiers_built : int;  (** crash states whose recovery produced a dossier *)
  records_replayed : int;  (** surviving flight records across all dossiers *)
  violations : string list;  (** pin breaks, oracle misses, false convictions *)
}

(** Run the sweep.  [progress crash_at span] is called before each
    crash point.  Raises [Invalid_argument] on a nonsensical config
    ([stride < 1] or [flight_slots <= 0]). *)
val sweep : ?progress:(int -> int -> unit) -> config -> report

(** Plant [`Drop_durable_notify], run two full batches, crash with
    full survival, recover — and require the dossier {e alone} to
    convict every acked ticket of the first (provably dead) batch.
    [Ok dossier] when it does; [Error] describes what it missed. *)
val drop_notify_scenario : config -> (Tinca_obs.Forensics.t, string) result

val report_table : report -> Tinca_util.Tabular.t
