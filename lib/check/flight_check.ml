(* Crash sweep for the flight recorder (ISSUE 9).

   Two properties keep the recorder honest, and both are only provable
   by crashing with it on:

   1. Recovery-semantics pin — the recorder must be a pure observer.
      For every crash state, recovering the SAME crashed medium with
      flight replay on and with it off must yield bit-identical logical
      cache state (every block's content as seen through the cache).
      The media themselves legitimately diverge (replay-on recovery
      appends Recovery_start/Recovery_decision records), so the pin is
      on the logical state, not the medium digest.

   2. Dossier-vs-judge agreement — the dossier's acked-vs-survived
      verdict must match an independent oracle that tracked which
      transactions were acknowledged durable before the crash.  With
      the production committer the dossier must be Clean at every crash
      state (the serial-drain inference has no false positives: batch
      B+1's drain record only reaches the medium after batch B's Tail
      fence).  With the planted [`Drop_durable_notify] fault the
      dossier alone — no model checker, no oracle — must name the
      acked tickets that died ([drop_notify_scenario]).

   The sweep borrows crash_check's mechanics: every pmem event of a
   deterministic group-commit workload is a crash point (budgeted by
   [stride]), and each crash is resolved into a handful of survival
   subsets of the torn lines (the two corners plus seeded samples —
   the exhaustive subset walk is crash_check's job; this sweep needs
   breadth across protocol stages, not depth per crash). *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Shard = Tinca_core.Shard
module Forensics = Tinca_obs.Forensics
module Rng = Tinca_util.Rng

type config = {
  seed : int;
  ncommits : int;
  universe : int;  (** disk blocks the workload touches *)
  pmem_bytes : int;
  ring_slots : int;
  flight_slots : int;  (** per shard; must be > 0 for the sweep to mean anything *)
  nshards : int;
  window_ns : int;  (** group-commit window (> 0: async path) *)
  max_batch : int;
  samples : int;  (** survival subsets per crash point beyond the two corners *)
  first_event : int;
  stride : int;  (** explore every [stride]-th crash point *)
}

let default_config =
  {
    seed = 77;
    ncommits = 6;
    universe = 24;
    pmem_bytes = 384 * 1024;
    ring_slots = 64;
    flight_slots = 64;
    nshards = 1;
    window_ns = 1_000_000_000;
    max_batch = 3;
    samples = 2;
    first_event = 1;
    stride = 1;
  }

type report = {
  span : int;
  crash_points : int;
  states_checked : int;
  dossiers_built : int;  (** crash states whose recovery produced a dossier *)
  records_replayed : int;  (** surviving flight records across all dossiers *)
  violations : string list;  (** replay mismatches + verdict disagreements *)
}

type env = { pmem : Pmem.t; disk : Disk.t; clock : Clock.t; metrics : Metrics.t }

let mk_env cfg =
  let clock = Clock.create () in
  let metrics = Metrics.create () in
  let pmem =
    Pmem.create ~seed:(cfg.seed + 1) ~clock ~metrics ~tech:Latency.Pcm ~size:cfg.pmem_bytes ()
  in
  let disk =
    Disk.create ~clock ~metrics ~kind:Latency.Ssd ~nblocks:cfg.universe ~block_size:4096
  in
  { pmem; disk; clock; metrics }

let tinca_config cfg =
  {
    Tinca.Config.default with
    Tinca.Config.nvm_bytes = cfg.pmem_bytes;
    ring_slots = cfg.ring_slots;
    nshards = cfg.nshards;
    flight_slots = cfg.flight_slots;
    group_window_ns = cfg.window_ns;
    group_max_batch = cfg.max_batch;
  }

(* The deterministic group-commit workload plus its oracle: [durable]
   maps a block to the fill byte of its last ACKNOWLEDGED-DURABLE write
   (folded in from the on_durable callback, i.e. exactly when the facade
   acks); [sealed] additionally folds writes whose commit_async
   returned; [current] holds the in-flight transaction's writes from
   just before its commit_async until the call returns — a drain
   triggered INSIDE that call (max-batch, ring pressure) seals and
   commits the transaction before the workload can fold it, so a crash
   mid-call may recover its writes.  At any crash the recovered state
   must match [durable] (standing batch lost), [sealed] (standing batch
   committed whole) or [sealed]+[current] (committed including the
   mid-call transaction) — batch atomicity admits no other image. *)
let fresh cfg env =
  let t =
    Tinca.ok_exn
      (Tinca.format ~config:(tinca_config cfg) ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
         ~metrics:env.metrics)
  in
  let durable = Hashtbl.create 64 and sealed = Hashtbl.create 64 in
  let current = ref [] in
  let workload () =
    let rng = Rng.create cfg.seed in
    for _ = 1 to cfg.ncommits do
      let n = 1 + Rng.int rng 3 in
      let txn = Tinca.init_txn t in
      let writes =
        List.init n (fun _ -> (Rng.int rng cfg.universe, Char.chr (1 + Rng.int rng 255)))
      in
      List.iter (fun (b, v) -> Tinca.ok_exn (Tinca.write txn b (Bytes.make 4096 v))) writes;
      current := writes;
      let tk = Tinca.ok_exn (Tinca.commit_async txn) in
      current := [];
      List.iter (fun (b, v) -> Hashtbl.replace sealed b v) writes;
      Tinca.on_durable tk (fun () ->
          List.iter (fun (b, v) -> Hashtbl.replace durable b v) writes)
    done;
    Tinca.group_flush t
  in
  (workload, durable, sealed, current)

(* Span of the crash-free workload (events after format), so armed
   countdowns in [1, span] always fire. *)
let total_events cfg =
  let env = mk_env cfg in
  let workload, _, _, _ = fresh cfg env in
  let before = Pmem.event_count env.pmem in
  workload ();
  Pmem.event_count env.pmem - before

(* --- post-crash evaluation ---------------------------------------------- *)

let logical_block shard disk blk =
  match Shard.peek shard blk with Some data -> data | None -> Disk.read_block disk blk

(* One digest over every block's recovered logical content — the value
   the recorder on/off pin compares. *)
let logical_digest shard env universe =
  let buf = Buffer.create (universe * 4096) in
  for blk = 0 to universe - 1 do
    Buffer.add_bytes buf (logical_block shard env.disk blk)
  done;
  Digest.string (Buffer.contents buf)

(* [] when every block carries its table fill byte, else the mismatches
   as [(blk, expected, got)] — got is the block's first byte ('?' for a
   mixed block, which the fill-byte workload never legitimately makes). *)
let mismatches shard env universe table =
  let out = ref [] in
  for blk = universe - 1 downto 0 do
    let expect = match Hashtbl.find_opt table blk with Some v -> v | None -> '\000' in
    let data = logical_block shard env.disk blk in
    let first = Bytes.get data 0 in
    let uniform = ref true in
    Bytes.iter (fun c -> if c <> first then uniform := false) data;
    if (not !uniform) || first <> expect then
      out := (blk, expect, if !uniform then first else '?') :: !out
  done;
  !out

(* Evaluate one post-crash medium.  Returns (violations, dossier option). *)
let check_state cfg env ~durable ~sealed ~current =
  let snap = Pmem.snapshot env.pmem in
  match
    Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics
  with
  | Error e -> ([ Printf.sprintf "recovery (replay on) failed: %s" (Tinca.error_message e) ], None)
  | exception e ->
      ([ Printf.sprintf "recovery (replay on) raised %s" (Printexc.to_string e) ], None)
  | Ok t_on -> (
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      (try Shard.check_invariants (Tinca.shard t_on)
       with e -> err "invariant audit (replay on) raised %s" (Printexc.to_string e));
      let d_on = logical_digest (Tinca.shard t_on) env cfg.universe in
      (* Judge: recovered state must be the acked image or the acked
         image plus the whole standing batch. *)
      let m_durable = mismatches (Tinca.shard t_on) env cfg.universe durable in
      let m_sealed = mismatches (Tinca.shard t_on) env cfg.universe sealed in
      (if m_durable <> [] && m_sealed <> [] then
         (* Third candidate: the transaction whose commit_async the
            crash interrupted was sealed AND drained inside the call. *)
         let with_current = Hashtbl.copy sealed in
         List.iter (fun (b, v) -> Hashtbl.replace with_current b v) current;
         let m_current = mismatches (Tinca.shard t_on) env cfg.universe with_current in
         if m_current <> [] then
           let show (b, e, g) =
             Printf.sprintf "blk %d exp %d got %d" b (Char.code e) (Char.code g)
           in
           err
             "recovered state matches no candidate image: vs acked (%s); vs acked+batch (%s); vs \
              acked+batch+in-flight (%s)"
             (String.concat "; " (List.map show m_durable))
             (String.concat "; " (List.map show m_sealed))
             (String.concat "; " (List.map show m_current)));
      let dossier = Tinca.last_crash_report t_on in
      (* No fault planted: the committer never acked without durability,
         so a Dead_acked verdict would be a false conviction — and it
         must agree with the judge, which just checked that every acked
         write survived. *)
      (match dossier with
      | Some d -> (
          match Forensics.verdict d with
          | `Clean -> ()
          | `Dead_acked dead ->
              err "dossier convicted %d ticket(s) on a fault-free run (first: shard %d batch %d)"
                (List.length dead)
                (match dead with (s, _, _) :: _ -> s | [] -> -1)
                (match dead with (_, b, _) :: _ -> b | [] -> -1))
      | None -> ());
      (* The pin: same crashed medium, replay off -> identical logical
         state. *)
      Pmem.restore env.pmem snap;
      match
        Shard.recover ~flight_replay:false ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
          ~metrics:env.metrics ()
      with
      | exception e -> (
          err "recovery (replay off) raised %s" (Printexc.to_string e);
          (List.rev !errs, dossier))
      | shard_off ->
          let d_off = logical_digest shard_off env cfg.universe in
          if d_on <> d_off then
            err "replay on/off recovered DIFFERENT logical states (recorder is not a pure observer)";
          (List.rev !errs, dossier))

(* --- the sweep ----------------------------------------------------------- *)

let sweep ?(progress = fun (_ : int) (_ : int) -> ()) cfg =
  if cfg.stride < 1 then invalid_arg "Flight_check.sweep: stride must be >= 1";
  if cfg.flight_slots <= 0 then invalid_arg "Flight_check.sweep: flight_slots must be > 0";
  let span = total_events cfg in
  let sample_rng = Rng.create (cfg.seed + 17) in
  let crash_points = ref 0 in
  let states_checked = ref 0 in
  let dossiers_built = ref 0 in
  let records_replayed = ref 0 in
  let violations = ref [] in
  let k = ref cfg.first_event in
  while !k <= span do
    let crash_at = !k in
    progress crash_at span;
    let env = mk_env cfg in
    let workload, durable, sealed, current = fresh cfg env in
    Pmem.set_crash_countdown env.pmem (Some crash_at);
    (match workload () with
    | () ->
        failwith
          (Printf.sprintf "Flight_check: countdown %d did not fire within span %d" crash_at span)
    | exception Pmem.Crash_point ->
        incr crash_points;
        let torn =
          List.filter (fun idx -> Pmem.line_torn env.pmem idx) (Pmem.unfenced_lines env.pmem)
        in
        let torn = Array.of_list torn in
        let d = Array.length torn in
        let snap = Pmem.snapshot env.pmem in
        (* Two corners plus seeded samples; deduplicate identical media. *)
        let masks =
          (fun all_lost all_survive samples -> all_lost :: all_survive :: samples)
            (fun _ -> false)
            (fun _ -> true)
            (List.init (min cfg.samples (max 0 ((1 lsl min d 20) - 2))) (fun _ ->
                 let tbl = Hashtbl.create 16 in
                 Array.iter (fun idx -> if Rng.bool sample_rng then Hashtbl.replace tbl idx ()) torn;
                 fun idx -> Hashtbl.mem tbl idx))
        in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun survive ->
            Pmem.restore env.pmem snap;
            Pmem.crash_select env.pmem ~survive;
            let digest = Pmem.media_digest env.pmem in
            if not (Hashtbl.mem seen digest) then begin
              Hashtbl.add seen digest ();
              incr states_checked;
              let errs, dossier = check_state cfg env ~durable ~sealed ~current:!current in
              (match dossier with
              | Some d ->
                  incr dossiers_built;
                  records_replayed := !records_replayed + d.Forensics.record_count
              | None -> ());
              List.iter
                (fun m ->
                  violations := Printf.sprintf "crash@event %d: %s" crash_at m :: !violations)
                errs
            end)
          masks);
    k := !k + cfg.stride
  done;
  {
    span;
    crash_points = !crash_points;
    states_checked = !states_checked;
    dossiers_built = !dossiers_built;
    records_replayed = !records_replayed;
    violations = List.rev !violations;
  }

(* --- the planted lost-ack scenario --------------------------------------- *)

(* Run >= 2 group drains under [`Drop_durable_notify] (batches publish,
   the facade acks durability, but no batch is ever sealed or
   finalized), crash, recover — and require the DOSSIER ALONE to name
   the acked tickets of every non-final batch.  (The newest batch is
   structurally indistinguishable from a legitimate crash window; the
   inference convicts exactly the batches some later drain proves were
   passed over.)  Every transaction writes one block per shard, so each
   batch drains on every shard and the second batch's drain evidence
   convicts the first on all of them — with fewer shards touched the
   per-shard inference would (correctly) leave untouched shards'
   members unconvicted. *)
let drop_notify_scenario cfg =
  let env = mk_env cfg in
  let t =
    Tinca.ok_exn
      (Tinca.format ~config:(tinca_config cfg) ~pmem:env.pmem ~disk:env.disk ~clock:env.clock
         ~metrics:env.metrics)
  in
  let first_batch = ref [] in
  Shard.set_fault (Some `Drop_durable_notify);
  Fun.protect
    ~finally:(fun () -> Shard.set_fault None)
    (fun () ->
      (* Two full batches of [max_batch] txns on distinct blocks (no
         conflict drains), drained by the max-batch trigger; each txn
         writes [nshards] consecutive blocks so it stripes across every
         shard. *)
      if 2 * cfg.max_batch * cfg.nshards > cfg.universe then
        invalid_arg "Flight_check.drop_notify_scenario: universe too small for the batches";
      for i = 0 to (2 * cfg.max_batch) - 1 do
        let txn = Tinca.init_txn t in
        for s = 0 to cfg.nshards - 1 do
          Tinca.ok_exn
            (Tinca.write txn ((i * cfg.nshards) + s) (Bytes.make 4096 (Char.chr (65 + i))))
        done;
        let tk = Tinca.ok_exn (Tinca.commit_async txn) in
        if i < cfg.max_batch then first_batch := Tinca.ticket_id tk :: !first_batch
      done);
  (* Every ticket was acked durable (the fault's signature), yet nothing
     carries a Tail record.  Crash with full survival: everything the
     faulty committer fenced is on the medium — the best case for the
     bug to hide in. *)
  Pmem.crash_select env.pmem ~survive:(fun _ -> true);
  match Tinca.recover ~pmem:env.pmem ~disk:env.disk ~clock:env.clock ~metrics:env.metrics with
  | Error e -> Error (Printf.sprintf "recovery failed: %s" (Tinca.error_message e))
  | Ok t2 -> (
      match Tinca.last_crash_report t2 with
      | None -> Error "no dossier: flight ring absent or empty"
      | Some dossier -> (
          match Forensics.verdict dossier with
          | `Clean -> Error "dossier verdict Clean: the planted Drop_durable_notify went uncaught"
          | `Dead_acked dead ->
              let convicted = List.map (fun (_, _, tk) -> tk) dead in
              let missing =
                List.filter (fun tk -> not (List.mem tk convicted)) !first_batch
              in
              if missing <> [] then
                Error
                  (Printf.sprintf "dossier missed acked ticket(s) %s of the first dead batch"
                     (String.concat "," (List.map string_of_int missing)))
              else Ok dossier))

let report_table r =
  let t = Tinca_util.Tabular.create ~title:"Flight-recorder crash sweep" [ "metric"; "value" ] in
  let add k v = Tinca_util.Tabular.add_row t [ k; v ] in
  add "pmem events in workload (span)" (string_of_int r.span);
  add "crash points explored" (string_of_int r.crash_points);
  add "post-crash states checked" (string_of_int r.states_checked);
  add "dossiers built" (string_of_int r.dossiers_built);
  add "flight records replayed" (string_of_int r.records_replayed);
  add "violations" (string_of_int (List.length r.violations));
  t
