(** Executable specification of the transactional cache (ROADMAP item 5).

    The dafny-jrnl journal spec is a [map<Addr, Object>] with read/write
    obligations; this is the same idea for Tinca, in ~100 lines of pure
    OCaml: the entire observable state is one [block -> bytes] map (the
    committed image; absent blocks read as zeros) plus an in-flight
    transaction buffer.  No geometry, no ring, no COW, no shards — which
    is exactly what makes it a specification rather than a second
    implementation.

    Obligations encoded here, checked against the real {!Tinca} facade by
    {!Lockstep}:

    - [read] returns exactly the committed map;
    - [commit] applies the whole buffer at once (all-or-nothing — for a
      multi-shard transaction the seal makes this true across shards);
    - [abort], a rejected commit, or a crash before the commit point
      leave the map untouched;
    - validation errors ([Wrong_block_size], [Block_out_of_range],
      [Txn_not_running]) are predicted exactly, with the same constructor
      the facade returns.

    [Transaction_too_large] is the one outcome the spec cannot predict
    (it depends on cache geometry); {!reject} is the transition the
    executor applies when the real system reports it: the transaction is
    terminal and the map is untouched.

    Everything is pure: operations return the successor state, so the
    lockstep executor and the crash-refinement judge can hold onto
    arbitrary historical states for free. *)

type t
(** The committed image: a [block -> bytes] map. *)

type txn
(** An in-flight (or finished) transaction buffer. *)

val create : nblocks:int -> block_size:int -> t
(** All [nblocks] blocks zero-filled. *)

val nblocks : t -> int
val block_size : t -> int

val block : t -> int -> bytes
(** {e Visible} content of a block — the committed map overlaid by the
    sealed queue, newest seal winning (fresh copy; zeros if never
    written).  Total on [0, nblocks); used by the crash-refinement
    judge. *)

val durable_block : t -> int -> bytes
(** Committed (durable) content only — what survives a crash that drops
    the whole sealed queue. *)

val read : t -> int -> (bytes, Tinca.error) result
(** The spec of [Tinca.read]. *)

val init_txn : t -> txn
(** A live transaction with an empty buffer. *)

val live : txn -> bool

val write : t -> txn -> int -> bytes -> (txn, Tinca.error) result
(** Stage a write into the buffer (last write to a block wins).  Errors
    exactly when the facade does: finished handle, wrong size, block out
    of range. *)

val read_in : t -> txn -> int -> (bytes, Tinca.error) result
(** Read-your-writes inside the transaction: the buffer overlays the
    committed map.  (The facade exposes no in-transaction read; this is
    a spec-internal law, pinned by the unit tests.) *)

val commit : t -> txn -> (t * txn, Tinca.error) result
(** Apply the whole buffer to the map, atomically; the returned handle
    is finished.  Drains the sealed queue first (the facade's
    synchronous commit awaits the standing batch).  [Error
    Txn_not_running] on a finished handle. *)

(** {1 Async group commit (ISSUE 8)}

    [Tinca.commit_async] under a nonzero window acknowledges a
    transaction whose durability is deferred: the spec models this as a
    queue of {e sealed} write-sets layered over the committed map.
    Reads see the sealed queue (it is applied volatilely in the real
    cache); a crash may drop it wholesale ({!drop_sealed}) — but never
    partially, because the real committer drains a batch under one
    all-or-nothing pivot.  A drain ({!flush_sealed}) folds sealed
    write-sets into the committed map in seal order. *)

val seal : t -> txn -> (t * txn, Tinca.error) result
(** The spec of [Tinca.commit_async] (nonzero window): append the
    buffer to the sealed queue; the handle is finished.  Same
    validation as {!commit}. *)

val sealed_count : t -> int

val flush_sealed : ?keep:int -> t -> t
(** Fold the oldest sealed write-sets into the committed map, leaving
    the newest [keep] (default 0) still sealed.  The lockstep executor
    reconciles [keep] with the real [Tinca.group_pending] after every
    operation.  Raises [Invalid_argument] if [keep] exceeds the queue
    length. *)

val drop_sealed : t -> t
(** The crash transition for the sealed queue: everything unacked
    vanishes; the committed (durable) map is untouched. *)

val abort : t -> txn -> (t * txn, Tinca.error) result
(** Drop the buffer; the map is untouched. *)

val reject : txn -> txn
(** The [Transaction_too_large] transition: the handle is finished, the
    map (not returned — it is untouched by definition) unchanged. *)

val write_direct : t -> int -> bytes -> (t, Tinca.error) result
(** The spec of [Tinca.write_direct]: a one-block atomic commit. *)

val pending : txn -> (int * bytes) list
(** The buffer, as (block, data) pairs in ascending block order. *)

val apply_pending : t -> txn -> t
(** The committed map with the buffer fully applied — the "in-flight
    commit fully applied" side of the crash-consistency oracle. *)

val equal : t -> t -> bool

val pp_diff : Format.formatter -> t * t -> unit
(** First differing block of two states, for divergence messages. *)
