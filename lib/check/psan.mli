(** Always-on persistence sanitizer (psan).

    A linear-time complement to {!Crash_check}: instead of enumerating
    the crash space of one small workload, psan attaches to a live
    {!Tinca_pmem.Pmem.t} through the event-observer hook and shadows
    every store, flush and fence with a per-cache-line state machine
    (Clean → Dirty → Flush_pending → Persisted) plus a
    {!Tinca_core.Layout}-driven region classifier, flagging
    flush/fence-ordering violations as they happen — on any workload,
    including the full benchmark matrix.

    Rules:
    + {b missing-flush}: the commit-point write (ring Tail advance) is
      fenced while dependent data/entry/ring/head lines are still
      volatile;
    + {b unfenced-ack}: {!txn_end} is reached while lines written since
      {!txn_begin} are not yet durable;
    + {b torn-metadata}: a non-atomic store overlaps a metadata region
      (superblock, Head/Tail words, ring slots, entry table) that the
      protocol updates only with [atomic_write8/16];
    + {b persist-race}: a store lands in a flush-pending metadata line
      (the adversarial [Pmem.dirty_line] resolution);
    + {b redundant-flush}: [clflush] of a clean or already-pending line —
      a performance diagnostic, counted per call-site label
      ({!Tinca_pmem.Pmem.set_site}), not a violation.

    Attach {e after} formatting: format legitimately bulk-initialises
    metadata regions with non-atomic stores.  Layoutless attachment
    (e.g. on a Flashcache or JBD2 stack) classifies every line as data,
    so only the unfenced-ack and redundant-flush rules apply.  The
    sanitizer must not be attached while {!Tinca_pmem.Pmem.restore} is
    used to re-enter snapshots (restores are not observable events). *)

(** [Flight] is the crash-surviving event-recorder ring (ISSUE 9): not
    metadata for rules 3–4 (records are CRC-delimited, torn ones are
    detected at scan time), but subject to the recorder-discipline check
    — a record line still {e dirty} at a commit-point fence means the
    recorder failed to fold it into a protocol fence. *)
type region =
  | Superblock
  | Head
  | Tail
  | Ring
  | Flight
  | Entries
  | Data
  | Epoch  (** paging shard's persistent epoch word (commit point) *)
  | Table  (** paging indirection table: 16 B entries, atomic-swing only *)
  | Pool  (** paging COW page pool: bulk data, no atomicity requirement *)
  | Other
type rule = Missing_flush | Unfenced_ack | Torn_metadata | Persist_race

type violation = {
  rule : rule;
  line : int;  (** offending cache line *)
  region : region;
  site : string;  (** call-site label current when detected *)
  event : int;  (** ordinal of the triggering pmem event *)
  message : string;
}

(** Raised on first violation in strict mode. *)
exception Violation of violation

type t

type report = {
  events : int;  (** pmem events observed *)
  stores : int;  (** non-atomic store events *)
  atomic_writes : int;
  flush_calls : int;  (** clflush calls *)
  line_flushes : int;  (** lines those calls covered *)
  redundant_flushes : int;  (** line flushes of clean/pending lines *)
  redundant_by_site : (string * int) list;  (** descending by count *)
  fences : int;
  crashes : int;
  violations : violation list;  (** oldest first *)
  violations_dropped : int;  (** violations beyond [max_violations] *)
}

(** [attach pmem] installs the sanitizer as the device's event observer
    (replacing any previous observer) with an all-clean shadow state.
    [layout] (one cache) or [layouts] (one per shard of a partitioned
    device; they are combined if both are given) enables the region
    classifier and with it the missing-flush, torn-metadata and
    persist-race rules — each applied per layout, with lines outside
    every layout (shard directory, cross-shard seal, padding) exempt.
    [page_layouts] does the same for paging shards
    ({!Tinca_core.Paging.region_layouts}): the table region rejects
    sub-16 B atomic swings (torn-metadata) and an epoch-word fence — the
    paging commit point — demands every table line durable and flags
    flush-pending pool lines sharing the fence (dirty pool lines are
    exempt: clean fills are legitimately volatile).
    [strict] raises {!Violation} on the first violation; default
    records and logs a warning.  [max_violations] (default 1000) bounds
    the kept list; the overflow is counted in
    {!report.violations_dropped}. *)
val attach :
  ?strict:bool ->
  ?max_violations:int ->
  ?layout:Tinca_core.Layout.t ->
  ?layouts:Tinca_core.Layout.t list ->
  ?page_layouts:Tinca_core.Paging.region_layout list ->
  Tinca_pmem.Pmem.t ->
  t

(** Remove the observer; shadow state and counters remain readable. *)
val detach : t -> unit

(** {1 Transaction scope (unfenced-ack rule)} *)

(** Start tracking stores as part of an acknowledged unit of work. *)
val txn_begin : t -> unit

(** The transaction was acknowledged: every line stored since
    {!txn_begin} must be durable, else unfenced-ack fires (once per
    offending line).  Ends the scope. *)
val txn_end : t -> unit

(** End the scope without the durability check (the transaction raised
    or was aborted — nothing was acknowledged). *)
val txn_abort : t -> unit

(** {1 Results} *)

(** Violations so far, oldest first (capped at [max_violations]). *)
val violations : t -> violation list

(** Total violations detected, including dropped ones. *)
val violation_count : t -> int

val report : t -> report
val pp_violation : Format.formatter -> violation -> unit
val rule_name : rule -> string
val region_name : region -> string

(** Render the report for the experiment harness / CLI. *)
val report_table : report -> Tinca_util.Tabular.t
