(* First-class commit-scheme interface (ISSUE 10 tentpole).

   The commit protocol — how a sealed write-set becomes durable and how
   a crashed medium is rebuilt — is the single axis the logging
   vs. paging ablation varies, so it gets its own module type: the
   facade programs against {!S} and the checkers enumerate both
   implementations through it.

   [Logging] is pure delegation to the existing {!Shard} pipeline
   (ring + role switch, [Per_block]/[Batched]/group commit): not one
   line of cache.ml or shard.ml changes, so the refactored scheme is
   media- and cost-identical to the pre-interface code by construction
   (and pinned by test anyway).  [Paging] delegates to the
   indirection-table engine in {!Paging}. *)

module Flight = Tinca_obs.Flight

module type S = sig
  type t
  type txn

  val name : string
  val nshards : t -> int

  (** {2 The commit protocol} *)

  val init_txn : t -> txn

  (** Buffer one whole-block write into the open transaction. *)
  val stage : txn -> int -> bytes -> unit

  val block_count : txn -> int

  (** Make the write-set durable and visible, atomically — the scheme's
      whole reason to exist.  Synchronous: returns with the transaction
      committed on media. *)
  val publish : ?cause:Flight.cause -> txn -> unit

  val abort : txn -> unit

  (** {2 Block I/O outside transactions} *)

  val read : t -> int -> bytes
  val write_direct : t -> int -> bytes -> unit
  val peek : t -> int -> bytes option
  val contains : t -> int -> bool

  (** Write every dirty block back to disk (decommissioning). *)
  val flush_all : t -> unit

  (** {2 Introspection} *)

  val stats_kv : t -> (string * string) list
  val region_wear : t -> (string * int * int) list
  val check_invariants : t -> unit
  val flight_enabled : t -> bool
  val flight_scans : t -> ((int * Flight.event) list * int) array
end

module Logging : S with type t = Shard.t and type txn = Shard.Txn.handle = struct
  type t = Shard.t
  type txn = Shard.Txn.handle

  let name = "logging"
  let nshards = Shard.nshards
  let init_txn = Shard.Txn.init
  let stage = Shard.Txn.add
  let block_count = Shard.Txn.block_count

  (* The ring pipeline stamps its own causes per stage; the scheme-level
     cause is only meaningful to the paging recorder. *)
  let publish ?cause:_ h = Shard.Txn.commit h
  let abort = Shard.Txn.abort
  let read = Shard.read
  let write_direct = Shard.write_direct
  let peek = Shard.peek
  let contains = Shard.contains
  let flush_all t = Array.iter Cache.flush_all (Shard.caches t)
  let stats_kv t = Shard.stats_kv (Shard.stats t)
  let region_wear = Shard.region_wear
  let check_invariants = Shard.check_invariants
  let flight_enabled = Shard.flight_enabled
  let flight_scans = Shard.flight_scans
end

module Paging_impl : S with type t = Paging.t and type txn = Paging.Txn.handle = struct
  type t = Paging.t
  type txn = Paging.Txn.handle

  let name = "paging"
  let nshards = Paging.nshards
  let init_txn = Paging.Txn.init
  let stage = Paging.Txn.add
  let block_count = Paging.Txn.block_count
  let publish ?(cause = Flight.Sync) h = Paging.Txn.commit ~cause h
  let abort = Paging.Txn.abort
  let read = Paging.read
  let write_direct = Paging.write_direct
  let peek = Paging.peek
  let contains = Paging.contains
  let flush_all = Paging.flush_all
  let stats_kv = Paging.stats_kv
  let region_wear = Paging.region_wear
  let check_invariants = Paging.check_invariants
  let flight_enabled = Paging.flight_enabled
  let flight_scans = Paging.flight_scans
end

(* A scheme instance with its state packed behind the interface, plus
   the transparent engine view for callers that need scheme-specific
   surface (group commit is logging-only; the paging layouts feed psan). *)

type packed = Packed : (module S with type t = 'a and type txn = 'b) * 'a -> packed
type packed_txn = Txn : (module S with type t = 'a and type txn = 'b) * 'b -> packed_txn

type engine = Logging_engine of Shard.t | Paging_engine of Paging.t

let pack = function
  | Logging_engine sh -> Packed ((module Logging), sh)
  | Paging_engine pg -> Packed ((module Paging_impl), pg)

let scheme_name = function Logging_engine _ -> Logging.name | Paging_engine _ -> Paging_impl.name

let init_txn (Packed ((module M), st)) = Txn ((module M), M.init_txn st)
let stage (Txn ((module M), h)) blkno data = M.stage h blkno data
let block_count (Txn ((module M), h)) = M.block_count h
let publish ?cause (Txn ((module M), h)) = M.publish ?cause h
let abort (Txn ((module M), h)) = M.abort h
let read (Packed ((module M), st)) blkno = M.read st blkno
let write_direct (Packed ((module M), st)) blkno data = M.write_direct st blkno data
let peek (Packed ((module M), st)) blkno = M.peek st blkno
let contains (Packed ((module M), st)) blkno = M.contains st blkno
let flush_all (Packed ((module M), st)) = M.flush_all st
let stats_kv (Packed ((module M), st)) = M.stats_kv st
let region_wear (Packed ((module M), st)) = M.region_wear st
let check_invariants (Packed ((module M), st)) = M.check_invariants st
let flight_enabled (Packed ((module M), st)) = M.flight_enabled st
let flight_scans (Packed ((module M), st)) = M.flight_scans st
let name (Packed ((module M), _)) = M.name
let nshards (Packed ((module M), st)) = M.nshards st

(* Crashed media carries its scheme in its first 8 bytes: the paging
   magics dispatch to {!Paging.recover}, anything else (the logging
   superblock, the shard directory, or garbage) to {!Shard.recover},
   which does its own validation. *)
let recover ?flight_replay ~pmem ~disk ~clock ~metrics () =
  let magic = Tinca_util.Codec.get_u64 (Tinca_pmem.Pmem.read pmem ~off:0 ~len:8) 0 in
  if magic = Paging.super_magic || magic = Paging.dir_magic then
    Paging_engine (Paging.recover ~pmem ~disk ~clock ~metrics ())
  else Logging_engine (Shard.recover ?flight_replay ~pmem ~disk ~clock ~metrics ())
