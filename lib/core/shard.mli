(** Sharded Tinca: N independent caches on one NVM device, with a
    striped commit scheduler (ISSUE 5 tentpole).

    The device is partitioned as

    {v
    [ shard dir | seal | shard 0 (full Cache layout) | shard 1 | ... ]
        64 B      64 B
    v}

    Each shard is a complete {!Cache} — its own superblock, Head/Tail,
    ring, entry table, data region, free monitors and LRU — confined to
    its span via {!Cache.format_region}.  Disk block numbers are striped
    across shards by a stable Fibonacci hash, so independent
    transactions on different shards pay no shared-ring serialization.

    A transaction touching several shards commits through a two-phase
    publish: every shard stages its sub-commit (nothing in any ring
    range), then every shard advances its Head, then one atomic
    {e cross-shard commit record} (the "seal") is persisted, then each
    shard finalizes and the seal retires.  Recovery is all-or-nothing
    across shards: a durable seal rolls the transaction {e forward}
    (completing role switches and Tail advances idempotently); an absent
    seal rolls every shard {e back} via the normal per-shard revocation.
    In particular, a crash between per-shard Head advances never exposes
    a partially committed multi-shard transaction.

    With one shard the scheduler degenerates to the plain {!Cache}
    commit (no seal, no extra fences), so N=1 reproduces the single-ring
    numbers exactly. *)

type t

(** Maximum supported shard count (the seal packs a shard mask above a
    32-bit epoch in one 63-bit atomic word). *)
val max_shards : int

(** [format ~nshards ~config ~pmem ~disk ~clock ~metrics] partitions the
    device and formats every shard.  [config] applies per shard (each
    shard gets its own ring of [config.ring_slots] slots).  With
    [nshards = 1] no shard header is written: the media is the plain
    unsharded {!Cache.format} layout, byte for byte, so a one-shard
    cache is indistinguishable from (and numerically identical to) the
    pre-sharding cache.  Raises [Invalid_argument] if [nshards] is
    outside [1, max_shards] or the device is too small. *)
val format :
  nshards:int ->
  config:Cache.config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** Re-attach after a crash.  Media carrying the shard directory magic:
    applies the cross-shard decision (seal durable => roll the sealed
    transaction forward on every shard in its mask; else => nothing),
    then runs the normal per-shard {!Cache.recover_region}.  Media
    without the magic (a one-shard format, or any pre-sharding device)
    recovers as a single plain {!Cache.recover}.  Raises [Failure] on
    unformatted media.

    [flight_replay] is forwarded to each shard's {!Cache.recover_region}
    (default [true]); the roll-forward pass additionally appends
    raw-media [Recovery_decision] flight records for every entry it
    replays, riding its existing role-switch fence. *)
val recover :
  ?flight_replay:bool ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  unit ->
  t

val nshards : t -> int

(** The shard a disk block number is striped to: stable, total,
    balanced. *)
val shard_of : t -> int -> int

(** [stripe ~nshards blkno] — the pure striping function behind
    {!shard_of}, exposed for the property tests. *)
val stripe : nshards:int -> int -> int

(** Direct access to shard [i]'s cache (tests, per-shard stats). *)
val cache : t -> int -> Cache.t

val caches : t -> Cache.t array

(** {1 Block I/O} *)

val read : t -> int -> bytes
val write_direct : t -> int -> bytes -> unit
val contains : t -> int -> bool
val peek : t -> int -> bytes option

(** {1 Transactions} *)

module Txn : sig
  type handle

  val init : t -> handle

  (** Stage a block into its shard's sub-transaction. *)
  val add : handle -> int -> bytes -> unit

  val block_count : handle -> int

  (** Number of distinct shards this transaction touches. *)
  val shard_count : handle -> int

  (** Commit: single-shard transactions take the plain {!Cache.Txn.commit}
      fast path; multi-shard ones run the two-phase publish with the
      cross-shard seal.  Raises {!Cache.Transaction_too_large} if any
      shard rejects its sub-commit — already-staged shards are revoked,
      so the failure is all-or-nothing too. *)
  val commit : handle -> unit

  val abort : handle -> unit

  (** Volatilely seal the whole transaction on every shard it touches
      ({!Cache.Txn.seal} per sub-commit: admission, COW stores, entry
      swings, slot staging — no flush, no fence).  A sealed transaction
      waits for {!commit_group} to make it durable; nothing of it can
      survive a crash before then.  Raises {!Cache.Transaction_too_large}
      if any shard rejects its sub-commit (already-sealed shards are
      unwound, so the failure is all-or-nothing) and [Invalid_argument]
      on an empty or non-running transaction. *)
  val seal : handle -> unit

  (** Tag every sub-handle with the facade's durable-notification
      ticket id before {!seal} (see {!Cache.Txn.set_flight_ticket}). *)
  val set_flight_ticket : handle -> int -> unit
end

(** [commit_group s handles] — one durability sequence for a whole batch
    of sealed transactions (the async group commit, ISSUE 8): per
    touched shard, ONE stage-A flush+fence and ONE slot flush+fence over
    all member sub-commits followed by a single Head advance; when the
    batch spans >= 2 shards, one cross-shard seal over the union mask
    (all-or-nothing across the {e whole batch} at crash); then per shard
    one batched role switch and one Tail persist.  [handles] must all be
    sealed and belong to [s]; they are finished on return.  A batch is
    atomic under crash: recovery yields either none of its transactions
    or all of them.

    [cause] (default [Barrier]) labels the drain in each touched shard's
    flight recorder; it does not affect the commit protocol. *)
val commit_group : ?cause:Tinca_obs.Flight.cause -> t -> Txn.handle list -> unit

(** {1 Parallel-throughput model}

    Shard work executes serially on the one simulated clock; every delta
    is attributed to the owning shard's {e lane}, and cross-shard sync
    points (the phases of a multi-shard commit) equalize lanes.  The
    {e makespan} — the maximum lane — is the wall-clock a per-shard-
    threaded execution would take; with N=1 it equals the serial clock
    time spent in shard operations. *)

val makespan_ns : t -> float

val lane_ns : t -> float array

val reset_lanes : t -> unit

(** {1 Stats} *)

type stats = {
  nshards : int;
  agg : Cache.stats;
      (** structural fields summed across shards; [ring_high_water] is
          the per-shard {e max} (per-ring peaks do not sum) *)
  ring_high_water_per_shard : int array;
  multi_commits : int;
  seals : int;
  roll_forwards : int;
}

val stats : t -> stats

(** Ordered [(key, value)] pairs for {!Tinca_obs.Procfs}: the aggregate
    surface with [ring_high_water_max] plus one [ring_high_water_shard<i>]
    per shard, and the cross-shard commit counters. *)
val stats_kv : stats -> (string * string) list

(** {1 Flight recorder / forensics}

    See {!Cache.flight_note} and {!Tinca_obs.Forensics}. *)

(** Does any shard carry a flight ring? *)
val flight_enabled : t -> bool

(** Per-shard survivor scans from the last recovery — [(records, torn)]
    per shard, shaped for [Tinca_obs.Forensics.build].  Shards without a
    ring (or attached by [format]) contribute [([], 0)]. *)
val flight_scans : t -> ((int * Tinca_obs.Flight.event) list * int) array

(** Region-attributed NVM wear: [(region, total write-backs, max on one
    line)].  One shard: {!Cache.region_wear} verbatim.  Sharded media:
    a ["header"] row (shard directory + seal lines) followed by every
    shard's regions as ["s<i>.<region>"]. *)
val region_wear : t -> (string * int * int) list

(** Per-shard {!Cache.check_invariants} plus: the seal must be clear
    outside a commit. *)
val check_invariants : t -> unit

(** {1 Fault injection (harness self-tests only)}

    [set_fault (Some `Skip_seal)] suppresses the cross-shard commit
    record, recreating the bug class the seal prevents (a crash between
    two shards' finalize steps exposes a partial multi-shard commit).
    [set_fault (Some `Drop_durable_notify)] makes {!commit_group}
    publish a batch but skip its seal and finalize steps while the
    facade still acknowledges durability — a crash before the next
    commit point then revokes acknowledged transactions (the lost-ack
    bug class).  The lockstep refinement harness plants these to prove
    its crash-state oracle catches real commit-path mutations.  Always
    reset to [None] (e.g. with [Fun.protect]). *)
val set_fault : [ `Skip_seal | `Drop_durable_notify ] option -> unit
