(** Tinca's NVM space partition (paper Fig 5, §4.2).

    {v
    [ superblock | Head ptr | Tail ptr | ring buffer | flight ring | entry table | data ]
    v}

    The superblock records geometry and a magic so {!Cache.recover} can
    refuse unformatted media.  Head and Tail live on distinct cache lines
    so that a crash can never couple their survival.  The flight ring is
    the crash-surviving event recorder (ISSUE 9); it occupies zero bytes
    when [flight_slots = 0], making the recorder-off layout identical to
    the historical one. *)

type t = {
  block_size : int;       (** data block size, default 4096 *)
  ring_slots : int;       (** 8 B slots in the ring buffer *)
  nblocks : int;          (** data blocks (= entry slots) *)
  super_off : int;
  head_off : int;
  tail_off : int;
  ring_off : int;
  flight_off : int;       (** flight-recorder ring (64 B records) *)
  flight_slots : int;     (** flight records; 0 = recorder off *)
  entries_off : int;
  data_off : int;
  total_bytes : int;      (** pmem bytes consumed *)
}

(** Bytes per flight-recorder record (one cache line). *)
val flight_record_size : int

(** Fixed bootstrap offset of the superblock — readable (and validated)
    before any layout is known; [compute] places [super_off] here unless
    a [base] is given (sharded devices put a shard directory at offset 0
    and one full layout — superblock included — at each shard's base). *)
val superblock_off : int

(** [compute ~pmem_bytes ~block_size ~ring_slots] sizes the largest data
    region that fits in the first [pmem_bytes] bytes of the device.
    Raises [Invalid_argument] if nothing fits. *)
val compute : pmem_bytes:int -> block_size:int -> ring_slots:int -> t

(** [compute_at ~base ...] is [compute] confined to the region
    [\[base, pmem_bytes)]: all offsets in the result are absolute device
    offsets starting at [base] (a non-negative multiple of 64).  A
    sharded device packs one layout per shard at successive bases. *)
val compute_at : base:int -> pmem_bytes:int -> block_size:int -> ring_slots:int -> t

(** [compute_flight] is {!compute_at} with an explicit flight-recorder
    ring of [flight_slots] 64 B records between the commit ring and the
    entry table.  [compute]/[compute_at] are [compute_flight]
    with [flight_slots = 0]. *)
val compute_flight :
  flight_slots:int -> base:int -> pmem_bytes:int -> block_size:int -> ring_slots:int -> t

(** Byte offset of entry slot [i].  Raises [Invalid_argument] when [i]
    is outside [0, nblocks). *)
val entry_off : t -> int -> int

(** Byte offset of data block [i].  Raises [Invalid_argument] when [i]
    is outside [0, nblocks). *)
val data_block_off : t -> int -> int

val ring_slot_off : t -> int -> int

(** Byte offset of flight-recorder slot [seq mod flight_slots].  Raises
    [Invalid_argument] when the layout has no flight ring. *)
val flight_slot_off : t -> int -> int

(** Fraction of NVM spent on metadata (ring + entries + superblock);
    the paper quotes ~0.4 % for entries on an 8 GB cache. *)
val metadata_fraction : t -> float
