(* Paging commit scheme (ISSUE 10): the "other side" of the logging vs.
   paging ablation (Dulong et al., PAPERS.md).

   Where the logging scheme (Cache/Ring) commits by appending slots to a
   persistent ring and switching entry roles, the paging scheme commits
   by REMAPPING whole NVM pages through a persistent indirection table:

   - every transactional write is COWed into a free NVM page frame;
   - each touched page gets ONE 16 B atomic swing of its indirection-
     table entry, staged under the shard's next epoch;
   - the commit point is a single 8 B atomic swing of the shard's
     persistent epoch word — no ring, no role switch, no Tail;
   - multi-page atomicity comes for free from the epoch word (staged
     entries carry epoch E+1 and stay invisible until the word says
     E+1); multi-shard commits are sealed by the same cross-shard
     mask<<32|epoch seal word the striped logging scheduler uses;
   - recovery = rebuild the volatile index from the table: entries at or
     below the durable epoch are live on their new side, entries above
     it roll back to their old side (or vanish, for misses).

   Per-shard media layout (all offsets relative to the shard base):

     [ superblock | epoch word | flight ring | indirection table | page pool ]
         64 B          64 B      slots*64 B       slots*16 B        n*block

   The table only ever holds DIRTY pages (content differing from disk):
   clean cached blocks live purely in the volatile index, never touch
   the table, and cost no fences to cache or drop.  A dirty page's old
   frame is durable by construction (it was committed), so it is a safe
   rollback target; a staged miss has no old side and rolls back to
   "not cached" (the disk copy).

   Commit cost: 2 sfences for any single-shard transaction of any size
   (stage fence + epoch persist), 4 for a multi-shard one (stage, seal,
   epoch bumps, seal clear) — against the logging pipeline's 5. *)

open Tinca_sim
module Pmem = Tinca_pmem.Pmem
module Disk = Tinca_blockdev.Disk
module Lru = Tinca_cachelib.Lru
module Free_monitor = Tinca_cachelib.Free_monitor
module Histogram = Tinca_util.Histogram
module Codec = Tinca_util.Codec
module Flight = Tinca_obs.Flight

type config = {
  block_size : int;  (** page size; positive multiple of 64 *)
  flight_slots : int;  (** 64 B flight records per shard; 0 disables *)
  headroom : int;
      (** free frames the admission pass keeps in reserve beyond the
          transaction's own need, so replacement never runs the pool
          fully dry; >= 0 *)
}

let default_config = { block_size = 4096; flight_slots = 0; headroom = 0 }

(* One-shard media magic ("TINCAPG1") and the multi-shard directory
   magic ("TINCAPGD"), both distinct from the logging superblock and
   shard-directory magics so recovery can discriminate the scheme from
   the first 8 bytes of the medium. *)
let super_magic = 0x3147_5041_434E_4954L
let dir_magic = 0x4447_5041_434E_4954L

(* Shard directory geometry shared with the logging scheme: a 128 B
   header (magic line + seal line at +64) in front of equal spans. *)
let dir_seal_off = 64
let header_bytes = 128

let entry_size = 16

(* --- per-shard geometry -------------------------------------------------- *)

type geom = {
  base : int;
  block_size : int;
  nframes : int;  (** page frames in the pool (= table slots) *)
  flight_slots : int;
  epoch_off : int;
  flight_off : int;
  table_off : int;
  pool_off : int;
  span : int;  (** bytes of the shard region *)
}

(* Largest pool that fits the span: each frame costs one page plus one
   16 B table entry next to the fixed superblock + epoch + flight lines. *)
let compute_geom ~base ~span ~block_size ~flight_slots =
  if block_size <= 0 || block_size mod 64 <> 0 then
    invalid_arg "Paging: block_size must be a positive multiple of 64";
  if flight_slots < 0 then invalid_arg "Paging: flight_slots must be non-negative";
  let fixed = 64 + 64 + (flight_slots * Flight.record_size) in
  let per_frame = block_size + entry_size in
  let nframes = (span - fixed - 63) / per_frame in
  (* The table is padded to whole lines so the pool starts line-aligned. *)
  if nframes < 2 then invalid_arg "Paging: region too small for a page pool (need >= 2 frames)";
  let table_off = fixed in
  let table_bytes = (nframes * entry_size + 63) / 64 * 64 in
  let pool_off = table_off + table_bytes in
  if pool_off + (nframes * block_size) > span then
    invalid_arg "Paging: region too small for a page pool";
  {
    base;
    block_size;
    nframes;
    flight_slots;
    epoch_off = 64;
    flight_off = 128;
    table_off;
    pool_off;
    span;
  }

let entry_off g slot = g.base + g.table_off + (slot * entry_size)
let frame_off g frame = g.base + g.pool_off + (frame * g.block_size)
let flight_slot_off g i = g.base + g.flight_off + (i * Flight.record_size)

(* psan's region classifier consumes this — the paging analogue of
   {!Layout.t}, with the new Epoch / Table / Pool region classes. *)
type region_layout = {
  r_base : int;
  r_epoch_off : int;  (** absolute offset of the epoch line *)
  r_flight_off : int;
  r_flight_bytes : int;
  r_table_off : int;
  r_table_bytes : int;
  r_pool_off : int;
  r_pool_bytes : int;
  r_total : int;
}

let region_layout_of_geom g =
  {
    r_base = g.base;
    r_epoch_off = g.base + g.epoch_off;
    r_flight_off = g.base + g.flight_off;
    r_flight_bytes = g.flight_slots * Flight.record_size;
    r_table_off = g.base + g.table_off;
    r_table_bytes = g.nframes * entry_size;
    r_pool_off = g.base + g.pool_off;
    r_pool_bytes = g.nframes * g.block_size;
    r_total = g.span;
  }

(* --- the indirection-table entry (16 B, one atomic swing) --------------- *)

(* byte 0      flags: bit0 valid, bit1 has_old
   bytes 1-3   frame_a (u24) — the durable OLD frame, iff has_old
   bytes 4-6   frame_b (u24) — the NEW frame of the entry's last swing
   byte 7      reserved, must be 0 (torn-swing detector)
   bytes 8-11  disk_blkno (u32)
   bytes 12-15 epoch (u32) — live on side B iff epoch <= the shard's
               durable epoch word, else staged (side A, or nothing) *)

type pentry = {
  e_valid : bool;
  e_has_old : bool;
  e_frame_a : int;
  e_frame_b : int;
  e_blkno : int;
  e_epoch : int;
}

let get_u24 b pos = Codec.get_u16 b pos lor (Codec.get_u8 b (pos + 2) lsl 16)

let set_u24 b pos v =
  Codec.set_u16 b pos (v land 0xFFFF);
  Codec.set_u8 b (pos + 2) ((v lsr 16) land 0xFF)

let encode_entry e =
  let b = Bytes.make entry_size '\000' in
  Codec.set_u8 b 0 ((if e.e_valid then 1 else 0) lor if e.e_has_old then 2 else 0);
  set_u24 b 1 e.e_frame_a;
  set_u24 b 4 e.e_frame_b;
  Codec.set_u32 b 8 e.e_blkno;
  Codec.set_u32 b 12 e.e_epoch;
  b

let decode_entry b =
  let flags = Codec.get_u8 b 0 in
  {
    e_valid = flags land 1 <> 0;
    e_has_old = flags land 2 <> 0;
    e_frame_a = get_u24 b 1;
    e_frame_b = get_u24 b 4;
    e_blkno = Codec.get_u32 b 8;
    e_epoch = Codec.get_u32 b 12;
  }

let entry_is_zero b =
  let rec go i = i >= entry_size || (Bytes.get b i = '\000' && go (i + 1)) in
  go 0

(* The committed normal form: no old side, the live frame on side B, at
   or below the shard's durable epoch. *)
let committed_entry ~blkno ~frame ~epoch =
  { e_valid = true; e_has_old = false; e_frame_a = 0; e_frame_b = frame; e_blkno = blkno; e_epoch = epoch }

(* --- volatile state ------------------------------------------------------ *)

(* DRAM bookkeeping for one cached disk block.  [p_slot >= 0] iff the
   block is dirty (has a table entry); clean cached blocks are volatile
   only. *)
type pinfo = {
  p_blkno : int;
  mutable p_frame : int;
  mutable p_slot : int;
  mutable p_pinned : bool;  (* staged in the in-flight publish *)
  mutable p_node : pinfo Lru.node option;
}

type shard_state = {
  geom : geom;
  mutable epoch : int;  (* DRAM mirror of the durable epoch word *)
  index : (int, pinfo) Hashtbl.t;
  lru : pinfo Lru.t;
  free_frames : Free_monitor.t;
  free_slots : Free_monitor.t;
  flight : Flight.cursor option;
  mutable flight_dirty : int list;  (* record lines awaiting a fence *)
  mutable flight_scan : ((int * Flight.event) list * int) option;
  mutable swings : int;  (* table-entry atomic swings *)
  mutable epoch_bumps : int;
  mutable dirty_count : int;
}

type t = {
  cfg : config;
  pmem : Pmem.t;
  disk : Disk.t;
  clock : Clock.t;
  metrics : Metrics.t;
  nshards : int;
  shards : shard_state array;
  txn_sizes : Histogram.t;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable multi_commits : int;
  mutable seals : int;
  mutable roll_forwards : int;
  mutable committing : bool;
}

exception Corrupt = Cache.Corrupt
exception Transaction_too_large = Cache.Transaction_too_large
exception Invariant_violation = Cache.Invariant_violation

let nshards t = t.nshards
let block_size t = t.cfg.block_size
let stripe = Shard.stripe
let shard_of t blkno = stripe ~nshards:t.nshards blkno
let region_layouts t = Array.to_list (Array.map (fun s -> region_layout_of_geom s.geom) t.shards)

(* Test-only fault injection: [`Torn_swing] replaces the one 16 B atomic
   table swing with two 8 B halves and makes the first half durable on
   its own — exactly the torn-swing bug class the crash checker and
   psan must detect, not trust.  Always reset to [None]. *)
let fault : [ `Torn_swing ] option ref = ref None
let set_fault f = fault := f

(* --- flight recorder ----------------------------------------------------- *)

(* Same contract as the logging scheme's recorder: a record is a
   volatile 64 B store whose line is parked in [flight_dirty] and folded
   into the commit path's next existing flush+fence — zero added fences. *)
let flight_note t s ?(batch = -1) ?(cause = Flight.Sync) ?(a = 0) ?(b = 0) ?(c = 0) ?(d = 0) kind =
  match s.flight with
  | None -> ()
  | Some cur ->
      let site = Pmem.site t.pmem in
      Pmem.set_site t.pmem "flight.record";
      let shard_id =
        let rec find i = if t.shards.(i) == s then i else find (i + 1) in
        find 0
      in
      let ev =
        { Flight.kind; shard = shard_id; cause; a; b; c; d; batch;
          t_ns = int_of_float (Clock.now_ns t.clock) }
      in
      let off = flight_slot_off s.geom (Flight.slot_of cur) in
      Pmem.write t.pmem ~off (Flight.encode ~seq:cur.Flight.seq ev);
      cur.Flight.seq <- cur.Flight.seq + 1;
      s.flight_dirty <- (off / Pmem.line_size) :: s.flight_dirty;
      Metrics.incr t.metrics "tinca.flight.records" ~by:1;
      Pmem.set_site t.pmem site
[@@pmem.defer
  "a flight record is deliberately left unflushed: the dirtied line is parked in flight_dirty \
   until the paging commit path folds it into its next existing flush+fence (zero added \
   fences); a record torn by a crash fails its CRC and is dropped by Flight.scan"]

let flight_take s =
  let lines = s.flight_dirty in
  s.flight_dirty <- [];
  lines

let flight_enabled t = Array.exists (fun s -> s.flight <> None) t.shards

let flight_scans t =
  Array.map (fun s -> match s.flight_scan with Some r -> r | None -> ([], 0)) t.shards

(* --- formatting ---------------------------------------------------------- *)

let line_of off = off / Pmem.line_size

let lines_of_range ~off ~len =
  if len <= 0 then []
  else
    let first = line_of off and last = line_of (off + len - 1) in
    List.init (last - first + 1) (fun i -> first + i)

let write_super t g =
  let b = Bytes.make 64 '\000' in
  Codec.set_u64 b 0 super_magic;
  Codec.set_u32 b 8 g.block_size;
  Codec.set_u32 b 12 g.nframes;
  Codec.set_u32 b 16 g.flight_slots;
  Pmem.set_site t.pmem "paging.format";
  Pmem.write t.pmem ~off:g.base b
[@@pmem.defer
  "format-time superblock store: format folds every shard's superblock, epoch, flight and \
   table lines into ONE flush_lines + sfence before returning the handle, so the media is \
   fully durable before any commit can run"]

let mk_shard_state (cfg : config) (g : geom) =
  {
    geom = g;
    epoch = 0;
    index = Hashtbl.create 256;
    lru = Lru.create ();
    free_frames = Free_monitor.create ~n:g.nframes ();
    free_slots = Free_monitor.create ~n:g.nframes ();
    flight = (if cfg.flight_slots > 0 then Some (Flight.cursor ~slots:cfg.flight_slots) else None);
    flight_dirty = [];
    flight_scan = None;
    swings = 0;
    epoch_bumps = 0;
    dirty_count = 0;
  }

let mk_t ~cfg ~pmem ~disk ~clock ~metrics ~nshards shards =
  {
    cfg;
    pmem;
    disk;
    clock;
    metrics;
    nshards;
    shards;
    txn_sizes = Histogram.create ();
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    evictions = 0;
    writebacks = 0;
    multi_commits = 0;
    seals = 0;
    roll_forwards = 0;
    committing = false;
  }

let shard_geoms ~nshards ~pmem_bytes ~block_size ~flight_slots =
  if nshards < 1 || nshards > Shard.max_shards then
    invalid_arg (Printf.sprintf "Paging: nshards %d not in [1, %d]" nshards Shard.max_shards);
  if nshards = 1 then
    [| compute_geom ~base:0 ~span:pmem_bytes ~block_size ~flight_slots |]
  else begin
    let span = (pmem_bytes - header_bytes) / nshards / 64 * 64 in
    Array.init nshards (fun i ->
        compute_geom ~base:(header_bytes + (i * span)) ~span ~block_size ~flight_slots)
  end

let check_geometry ~nshards ~pmem_bytes ~block_size ~flight_slots =
  match shard_geoms ~nshards ~pmem_bytes ~block_size ~flight_slots with
  | _ -> Ok ()
  | exception Invalid_argument m -> Error m

let format ~nshards ~config:cfg ~pmem ~disk ~clock ~metrics =
  if cfg.headroom < 0 then invalid_arg "Paging: headroom must be non-negative";
  let geoms =
    shard_geoms ~nshards ~pmem_bytes:(Pmem.size pmem) ~block_size:cfg.block_size
      ~flight_slots:cfg.flight_slots
  in
  let shards = Array.map (mk_shard_state cfg) geoms in
  let t = mk_t ~cfg ~pmem ~disk ~clock ~metrics ~nshards shards in
  Pmem.set_site pmem "paging.format";
  let lines = ref [] in
  if nshards > 1 then begin
    let hdr = Bytes.make header_bytes '\000' in
    Codec.set_u64 hdr 0 dir_magic;
    Codec.set_u32 hdr 8 nshards;
    Pmem.write pmem ~off:0 hdr;
    lines := lines_of_range ~off:0 ~len:header_bytes @ !lines
  end;
  Array.iter
    (fun s ->
      let g = s.geom in
      write_super t g;
      Pmem.atomic_write8 pmem ~off:(g.base + g.epoch_off) 0L;
      (* The table (and flight ring) must be durably zero: a stale
         nonzero slot would decode as a live mapping after recovery. *)
      let zero_len = g.pool_off - g.flight_off in
      Pmem.fill pmem ~off:(g.base + g.flight_off) ~len:zero_len '\000';
      lines :=
        lines_of_range ~off:g.base ~len:64
        @ lines_of_range ~off:(g.base + g.epoch_off) ~len:8
        @ lines_of_range ~off:(g.base + g.flight_off) ~len:zero_len
        @ !lines)
    shards;
  Pmem.flush_lines pmem !lines;
  Pmem.sfence pmem;
  t

(* --- replacement --------------------------------------------------------- *)

let remove_pinfo s p =
  (match p.p_node with Some n -> Lru.remove s.lru n | None -> ());
  p.p_node <- None;
  Hashtbl.remove s.index p.p_blkno

(* Durably drop a dirty block's table entry (one atomic zero swing +
   persist), then free its slot and frame.  The write-back itself went
   to disk first, so a crash on either side of the swing is consistent:
   entry present = the (now clean) NVM copy still wins, entry absent =
   reads fall through to the identical disk copy. *)
let drop_entry t s p =
  Pmem.set_site t.pmem "paging.evict";
  Pmem.atomic_write16 t.pmem ~off:(entry_off s.geom p.p_slot) (Bytes.make entry_size '\000');
  s.swings <- s.swings + 1;
  Pmem.persist t.pmem ~off:(entry_off s.geom p.p_slot) ~len:entry_size;
  Free_monitor.free s.free_slots p.p_slot;
  s.dirty_count <- s.dirty_count - 1;
  p.p_slot <- -1

let writeback t s p =
  let data = Pmem.read t.pmem ~off:(frame_off s.geom p.p_frame) ~len:s.geom.block_size in
  Disk.write_block t.disk p.p_blkno data;
  t.writebacks <- t.writebacks + 1;
  drop_entry t s p

(* Evict one unpinned block; clean victims are free (purely volatile),
   dirty ones are written back and their entry dropped.  Returns false
   when every cached block is pinned. *)
let evict_one t s =
  match Lru.find_from_lru s.lru ~f:(fun p -> not p.p_pinned) with
  | None -> false
  | Some node ->
      let p = Lru.value node in
      if p.p_slot >= 0 then writeback t s p;
      Free_monitor.free s.free_frames p.p_frame;
      remove_pinfo s p;
      t.evictions <- t.evictions + 1;
      true

(* Make [n] frames (plus the configured headroom) and [nslots] table
   slots available, evicting as needed.  Returns false if the demand
   cannot be met (everything else pinned, or the pool is too small). *)
let make_room t s ~frames ~slots =
  let need_frames = frames + t.cfg.headroom in
  let ok = ref true in
  while !ok && Free_monitor.free_count s.free_frames < need_frames do
    ok := evict_one t s
  done;
  while !ok && Free_monitor.free_count s.free_slots < slots do
    (* Only dirty victims return slots; evict until one does. *)
    ok := evict_one t s
  done;
  !ok && Free_monitor.free_count s.free_frames >= need_frames
  && Free_monitor.free_count s.free_slots >= slots

(* --- reads --------------------------------------------------------------- *)

let read_frame t s p = Pmem.read t.pmem ~off:(frame_off s.geom p.p_frame) ~len:s.geom.block_size

let read t blkno =
  let s = t.shards.(shard_of t blkno) in
  match Hashtbl.find_opt s.index blkno with
  | Some p ->
      t.read_hits <- t.read_hits + 1;
      (match p.p_node with Some n -> Lru.touch s.lru n | None -> ());
      read_frame t s p
  | None ->
      t.read_misses <- t.read_misses + 1;
      let data = Disk.read_block t.disk blkno in
      (* Clean fill: volatile only — no table entry, no flush, no fence.
         The frame's content is not durable; a crash simply un-caches the
         block (recovery rebuilds from the table, which never saw it). *)
      if make_room t s ~frames:1 ~slots:0 then begin
        match Free_monitor.alloc s.free_frames with
        | None -> ()
        | Some frame ->
            Pmem.set_site t.pmem "paging.fill";
            Pmem.write t.pmem ~off:(frame_off s.geom frame) data;
            let p = { p_blkno = blkno; p_frame = frame; p_slot = -1; p_pinned = false; p_node = None } in
            p.p_node <- Some (Lru.push_mru s.lru p);
            Hashtbl.replace s.index blkno p
      end;
      data
[@@pmem.defer
  "read-miss fill of a clean page: no table entry is written, so the frame's durable home \
   stays the disk — a crash simply un-caches the block (recovery rebuilds from the table, \
   which never saw it); flushing the fill would buy nothing"]

let peek t blkno =
  let s = t.shards.(shard_of t blkno) in
  match Hashtbl.find_opt s.index blkno with
  | Some p -> Some (read_frame t s p)
  | None -> None

let contains t blkno = Hashtbl.mem t.shards.(shard_of t blkno).index blkno

(* --- the commit protocol ------------------------------------------------- *)

type staged = {
  st_shard : int;
  st_blkno : int;
  st_slot : int;
  st_frame : int;  (* the new (B-side) frame *)
  st_old : pinfo option;  (* existing cached version, pinned during publish *)
}

(* Write one staged table entry.  The production path is a single 16 B
   atomic swing; the planted [`Torn_swing] fault splits it into two 8 B
   halves and makes the first durable on its own, opening the exact
   window the checkers must catch. *)
let write_entry t s ~slot e =
  let b = encode_entry e in
  let off = entry_off s.geom slot in
  (match !fault with
  | None -> Pmem.atomic_write16 t.pmem ~off b
  | Some `Torn_swing ->
      Pmem.atomic_write8 t.pmem ~off (Codec.get_u64 b 0);
      Pmem.persist t.pmem ~off ~len:8;
      Pmem.atomic_write8 t.pmem ~off:(off + 8) (Codec.get_u64 b 8));
  s.swings <- s.swings + 1
[@@pmem.defer
  "one 16 B atomic entry swing: every caller folds the entry's lines into its own existing \
   flush+fence (the commit's stage fence, unstage's and recovery's guarded fences), and the \
   swing is atomic so an unfenced entry is whole-or-absent, never torn"]

(* Roll a failed or aborted staging back: return frames and fresh slots,
   restore pinned old versions.  Entries already swung to epoch E+1 are
   re-swung to their committed form (or zeroed) — dead media either way
   since the epoch word never moved, but fenced here anyway so no table
   line is left volatile across a later commit point. *)
let unstage t staged =
  let lines = ref [] in
  List.iter
    (fun st ->
      let s = t.shards.(st.st_shard) in
      Free_monitor.free s.free_frames st.st_frame;
      (match st.st_old with
      | Some p when p.p_slot >= 0 ->
          write_entry t s ~slot:p.p_slot
            (committed_entry ~blkno:p.p_blkno ~frame:p.p_frame ~epoch:s.epoch);
          lines := lines_of_range ~off:(entry_off s.geom p.p_slot) ~len:entry_size @ !lines
      | Some _ -> ()
      | None ->
          Pmem.atomic_write16 t.pmem ~off:(entry_off s.geom st.st_slot)
            (Bytes.make entry_size '\000');
          s.swings <- s.swings + 1;
          Free_monitor.free s.free_slots st.st_slot;
          lines := lines_of_range ~off:(entry_off s.geom st.st_slot) ~len:entry_size @ !lines);
      match st.st_old with Some p -> p.p_pinned <- false | None -> ())
    staged;
  if !lines <> [] then (
    Pmem.flush_lines t.pmem !lines;
    Pmem.sfence t.pmem)
[@@pmem.defer
  "every rewritten entry line is fenced by the guarded flush_lines + sfence: the guard \
   `lines <> []` is true exactly when an entry was rewritten, which the syntactic dataflow \
   cannot correlate"]

(* Publish a write-set: COW every page into a free frame, swing every
   table entry under epoch E+1, fence once, then swing the epoch word(s).
   [writes] is (blkno, data) with distinct blknos.  Raises
   [Transaction_too_large] (after full rollback) when the pool cannot
   host the transaction. *)
let publish t writes ~cause =
  match writes with
  | [] -> ()
  | writes ->
      t.committing <- true;
      Fun.protect ~finally:(fun () -> t.committing <- false) @@ fun () ->
      let by_shard = Hashtbl.create 8 in
      List.iter
        (fun (blkno, data) ->
          let sh = shard_of t blkno in
          Hashtbl.replace by_shard sh ((blkno, data) :: (Option.value ~default:[] (Hashtbl.find_opt by_shard sh))))
        writes;
      let shard_ids = Hashtbl.fold (fun k _ acc -> k :: acc) by_shard [] |> List.sort compare in
      (* Pin existing versions first so admission cannot evict a block
         the transaction itself is about to remap. *)
      List.iter
        (fun (blkno, _) ->
          let s = t.shards.(shard_of t blkno) in
          match Hashtbl.find_opt s.index blkno with
          | Some p -> p.p_pinned <- true
          | None -> ())
        writes;
      let unpin () =
        List.iter
          (fun (blkno, _) ->
            let s = t.shards.(shard_of t blkno) in
            match Hashtbl.find_opt s.index blkno with
            | Some p -> p.p_pinned <- false
            | None -> ())
          writes
      in
      (* Admission: every shard must be able to host its sub-set. *)
      let admitted =
        List.for_all
          (fun sh ->
            let sub = Hashtbl.find by_shard sh in
            let s = t.shards.(sh) in
            let slots_needed =
              List.length
                (List.filter
                   (fun (blkno, _) ->
                     match Hashtbl.find_opt s.index blkno with
                     | Some p -> p.p_slot < 0
                     | None -> true)
                   sub)
            in
            make_room t s ~frames:(List.length sub) ~slots:slots_needed)
          shard_ids
      in
      if not admitted then begin
        unpin ();
        raise Transaction_too_large
      end;
      (* Stage: COW data into fresh frames, swing entries under E+1. *)
      let staged = ref [] in
      let lines = ref [] in
      (try
         List.iter
           (fun (blkno, data) ->
             let sh = shard_of t blkno in
             let s = t.shards.(sh) in
             let frame =
               match Free_monitor.alloc s.free_frames with
               | Some f -> f
               | None -> raise Transaction_too_large
             in
             let old = Hashtbl.find_opt s.index blkno in
             let slot =
               match old with
               | Some p when p.p_slot >= 0 -> p.p_slot
               | _ -> (
                   match Free_monitor.alloc s.free_slots with
                   | Some sl -> sl
                   | None ->
                       Free_monitor.free s.free_frames frame;
                       raise Transaction_too_large)
             in
             Pmem.set_site t.pmem "paging.cow";
             Pmem.write t.pmem ~off:(frame_off s.geom frame) data;
             lines := lines_of_range ~off:(frame_off s.geom frame) ~len:s.geom.block_size @ !lines;
             let has_old = match old with Some p when p.p_slot >= 0 -> true | _ -> false in
             let frame_a = match old with Some p when p.p_slot >= 0 -> p.p_frame | _ -> 0 in
             Pmem.set_site t.pmem "paging.swing";
             write_entry t s ~slot
               {
                 e_valid = true;
                 e_has_old = has_old;
                 e_frame_a = frame_a;
                 e_frame_b = frame;
                 e_blkno = blkno;
                 e_epoch = s.epoch + 1;
               };
             lines := lines_of_range ~off:(entry_off s.geom slot) ~len:entry_size @ !lines;
             staged := { st_shard = sh; st_blkno = blkno; st_slot = slot; st_frame = frame; st_old = old } :: !staged)
           writes
       with Transaction_too_large ->
         unstage t !staged;
         unpin ();
         raise Transaction_too_large);
      let staged = !staged in
      let multi = List.length shard_ids > 1 in
      List.iter
        (fun sh ->
          let s = t.shards.(sh) in
          flight_note t s ~cause ~a:(List.length (Hashtbl.find by_shard sh)) Flight.Batch_drain;
          lines := List.rev_append (flight_take s) !lines)
        shard_ids;
      (* Stage fence: all COW pages + staged entries durable, still dead
         (every staged entry sits above the durable epoch word). *)
      Pmem.set_site t.pmem "paging.stage_fence";
      Pmem.flush_lines t.pmem !lines;
      Pmem.sfence t.pmem;
      (* Commit point.  Single shard: ONE atomic swing of the epoch word.
         Multi-shard: seal the union mask first (the existing cross-shard
         epoch mechanism), swing every member epoch, clear the seal. *)
      if multi then begin
        let mask = List.fold_left (fun m sh -> m lor (1 lsl sh)) 0 shard_ids in
        let epoch_global = t.seals + 1 in
        Pmem.set_site t.pmem "paging.seal";
        Pmem.atomic_write8_int t.pmem ~off:dir_seal_off ((mask lsl 32) lor epoch_global);
        Pmem.persist t.pmem ~off:dir_seal_off ~len:8;
        t.seals <- t.seals + 1
      end;
      Pmem.set_site t.pmem "paging.epoch_swing";
      let epoch_lines = ref [] in
      List.iter
        (fun sh ->
          let s = t.shards.(sh) in
          Pmem.atomic_write8_int t.pmem ~off:(s.geom.base + s.geom.epoch_off) (s.epoch + 1);
          s.epoch_bumps <- s.epoch_bumps + 1;
          flight_note t s ~cause ~a:(s.epoch + 1) Flight.Tail_persist;
          epoch_lines :=
            lines_of_range ~off:(s.geom.base + s.geom.epoch_off) ~len:8
            @ List.rev_append (flight_take s) !epoch_lines)
        shard_ids;
      Pmem.flush_lines t.pmem !epoch_lines;
      Pmem.sfence t.pmem;
      if multi then begin
        Pmem.set_site t.pmem "paging.seal_clear";
        Pmem.atomic_write8 t.pmem ~off:dir_seal_off 0L;
        Pmem.persist t.pmem ~off:dir_seal_off ~len:8;
        t.multi_commits <- t.multi_commits + 1
      end;
      (* Durable: fold the new mapping into the volatile state. *)
      List.iter (fun sh -> (t.shards.(sh)).epoch <- t.shards.(sh).epoch + 1) shard_ids;
      List.iter
        (fun st ->
          let s = t.shards.(st.st_shard) in
          match st.st_old with
          | Some p ->
              if p.p_slot >= 0 then t.write_hits <- t.write_hits + 1
              else begin
                (* A clean cached block turned dirty: it now owns a slot. *)
                t.write_hits <- t.write_hits + 1;
                s.dirty_count <- s.dirty_count + 1
              end;
              Free_monitor.free s.free_frames p.p_frame;
              p.p_frame <- st.st_frame;
              p.p_slot <- st.st_slot;
              p.p_pinned <- false;
              (match p.p_node with Some n -> Lru.touch s.lru n | None -> ())
          | None ->
              t.write_misses <- t.write_misses + 1;
              s.dirty_count <- s.dirty_count + 1;
              let p =
                { p_blkno = st.st_blkno; p_frame = st.st_frame; p_slot = st.st_slot;
                  p_pinned = false; p_node = None }
              in
              p.p_node <- Some (Lru.push_mru s.lru p);
              Hashtbl.replace s.index st.st_blkno p)
        (List.rev staged);
      Histogram.add t.txn_sizes (float_of_int (List.length writes))

(* --- transactions -------------------------------------------------------- *)

module Txn = struct
  type handle = {
    ht : t;
    writes : (int, bytes) Hashtbl.t;
    mutable order : int list;  (* first-write order, for stable staging *)
    mutable finished : bool;
  }

  let init t = { ht = t; writes = Hashtbl.create 8; order = []; finished = false }

  (* Transactional writes buffer volatilely until publish: the paging
     scheme touches NVM only inside the commit protocol. *)
  let add h blkno data =
    if h.finished then invalid_arg "Paging.Txn.add: transaction finished";
    if Bytes.length data <> h.ht.cfg.block_size then
      invalid_arg "Paging.Txn.add: wrong block size";
    if not (Hashtbl.mem h.writes blkno) then h.order <- blkno :: h.order;
    Hashtbl.replace h.writes blkno (Bytes.copy data)

  let block_count h = Hashtbl.length h.writes

  let shard_count h =
    let shards = Hashtbl.create 4 in
    Hashtbl.iter (fun blkno _ -> Hashtbl.replace shards (shard_of h.ht blkno) ()) h.writes;
    Hashtbl.length shards

  let commit ?(cause = Flight.Sync) h =
    if h.finished then invalid_arg "Paging.Txn.commit: transaction finished";
    h.finished <- true;
    let writes = List.rev_map (fun b -> (b, Hashtbl.find h.writes b)) h.order in
    publish h.ht writes ~cause

  let abort h =
    if h.finished then invalid_arg "Paging.Txn.abort: transaction finished";
    h.finished <- true;
    Hashtbl.reset h.writes;
    h.order <- []
end

let write_direct t blkno data =
  let h = Txn.init t in
  Txn.add h blkno data;
  Txn.commit ~cause:Flight.Barrier h

(* Write every dirty page back to disk and drop its entry
   (decommissioning, like the logging scheme's flush_all). *)
let flush_all t =
  Array.iter
    (fun s ->
      Lru.iter (fun p -> if p.p_slot >= 0 then writeback t s p) s.lru)
    t.shards

(* --- recovery ------------------------------------------------------------ *)

let read_entry t g slot = decode_entry (Pmem.read t.pmem ~off:(entry_off g slot) ~len:entry_size)

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let read_super pmem ~base =
  let b = Pmem.read pmem ~off:base ~len:24 in
  if Codec.get_u64 b 0 <> super_magic then corrupt "paging superblock magic missing at %d" base;
  let block_size = Codec.get_u32 b 8 in
  let nframes = Codec.get_u32 b 12 in
  let flight_slots = Codec.get_u32 b 16 in
  (block_size, nframes, flight_slots)

(* Recover one shard region: validate the table against itself (frames
   in range, no duplicate blknos, sane epochs — a torn swing is DETECTED
   here, not trusted), resolve staged entries by [roll_forward], and
   rebuild the volatile index and free monitors from the live sides. *)
let recover_shard t ~shard_id ~roll_forward =
  let s = t.shards.(shard_id) in
  let g = s.geom in
  let epoch = Pmem.read_u64_int t.pmem ~off:(g.base + g.epoch_off) in
  (* Flight scan before recovery writes anything; the cursor resumes
     after the highest surviving sequence number. *)
  (match s.flight with
  | Some cur ->
      let read i = Pmem.read t.pmem ~off:(flight_slot_off g i) ~len:Flight.record_size in
      let records, torn = Flight.scan ~slots:g.flight_slots ~read in
      s.flight_scan <- Some (records, torn);
      cur.Flight.seq <- (match List.rev records with (seq, _) :: _ -> seq + 1 | [] -> 0)
  | None -> ());
  let seen_blkno = Hashtbl.create 64 in
  let staged = ref [] in
  let live = ref [] in
  for slot = 0 to g.nframes - 1 do
    let raw = Pmem.read t.pmem ~off:(entry_off g slot) ~len:entry_size in
    if not (entry_is_zero raw) then begin
      let e = decode_entry raw in
      if not e.e_valid then corrupt "paging: slot %d nonzero but invalid (torn swing?)" slot;
      if Codec.get_u8 raw 7 <> 0 then corrupt "paging: slot %d reserved byte nonzero (torn swing?)" slot;
      if e.e_frame_b >= g.nframes then corrupt "paging: slot %d frame_b %d out of range" slot e.e_frame_b;
      if e.e_has_old && (e.e_frame_a >= g.nframes || e.e_frame_a = e.e_frame_b) then
        corrupt "paging: slot %d frame_a %d invalid" slot e.e_frame_a;
      if e.e_blkno >= Disk.nblocks t.disk then
        corrupt "paging: slot %d blkno %d beyond the device" slot e.e_blkno;
      if t.nshards > 1 && stripe ~nshards:t.nshards e.e_blkno <> shard_id then
        corrupt "paging: slot %d blkno %d striped to the wrong shard" slot e.e_blkno;
      if e.e_epoch > epoch + 1 then
        corrupt "paging: slot %d epoch %d above the durable epoch %d + 1" slot e.e_epoch epoch;
      if Hashtbl.mem seen_blkno e.e_blkno then
        corrupt "paging: blkno %d mapped by two table slots" e.e_blkno;
      Hashtbl.replace seen_blkno e.e_blkno slot;
      if e.e_epoch > epoch then staged := (slot, e) :: !staged else live := (slot, e) :: !live
    end
  done;
  flight_note t s ~a:epoch ~c:(match s.flight_scan with Some (r, _) -> List.length r | None -> 0)
    Flight.Recovery_start;
  (* Resolve the staged generation. *)
  let lines = ref [] in
  let bumped =
    roll_forward && !staged <> []
  in
  if bumped then begin
    (* The seal directs roll-forward: the staged generation was fenced
       durable before the seal, so adopting it is safe and idempotent. *)
    Pmem.set_site t.pmem "paging.recover";
    Pmem.atomic_write8_int t.pmem ~off:(g.base + g.epoch_off) (epoch + 1);
    lines := lines_of_range ~off:(g.base + g.epoch_off) ~len:8 @ !lines;
    live := !staged @ !live;
    List.iter
      (fun (_, e) -> flight_note t s ~a:0 ~b:e.e_blkno Flight.Recovery_decision)
      !staged;
    t.roll_forwards <- t.roll_forwards + List.length !staged
  end
  else
    List.iter
      (fun (slot, e) ->
        (* Roll back: the old side (if any) is the durable committed
           version; a staged miss vanishes. *)
        Pmem.set_site t.pmem "paging.recover";
        (if e.e_has_old then
           write_entry t s ~slot (committed_entry ~blkno:e.e_blkno ~frame:e.e_frame_a ~epoch)
         else begin
           Pmem.atomic_write16 t.pmem ~off:(entry_off g slot) (Bytes.make entry_size '\000');
           s.swings <- s.swings + 1
         end);
        lines := lines_of_range ~off:(entry_off g slot) ~len:entry_size @ !lines;
        flight_note t s ~a:1 ~b:e.e_blkno Flight.Recovery_decision;
        if e.e_has_old then live := (slot, { e with e_has_old = false; e_frame_a = 0; e_frame_b = e.e_frame_a; e_epoch = epoch }) :: !live)
      !staged;
  s.epoch <- (if bumped then epoch + 1 else epoch);
  (* Rebuild the volatile index and free monitors from the live sides. *)
  List.iter
    (fun (slot, e) ->
      let p = { p_blkno = e.e_blkno; p_frame = e.e_frame_b; p_slot = slot; p_pinned = false; p_node = None } in
      p.p_node <- Some (Lru.push_mru s.lru p);
      Hashtbl.replace s.index e.e_blkno p;
      Free_monitor.mark_used s.free_frames e.e_frame_b;
      Free_monitor.mark_used s.free_slots slot;
      s.dirty_count <- s.dirty_count + 1)
    !live;
  lines := List.rev_append (flight_take s) !lines;
  if !lines <> [] then begin
    Pmem.flush_lines t.pmem !lines;
    Pmem.sfence t.pmem
  end
[@@pmem.defer
  "every roll-back/roll-forward entry rewrite and flight record is fenced by the guarded \
   flush_lines + sfence: the guard `lines <> []` is true exactly when recovery rewrote \
   media, which the syntactic dataflow cannot correlate"]

let recover ~pmem ~disk ~clock ~metrics () =
  let metrics_ = metrics in
  let magic = Codec.get_u64 (Pmem.read pmem ~off:0 ~len:8) 0 in
  if magic = super_magic then begin
    let block_size, nframes, flight_slots = read_super pmem ~base:0 in
    let g = compute_geom ~base:0 ~span:(Pmem.size pmem) ~block_size ~flight_slots in
    if g.nframes <> nframes then corrupt "paging: superblock frame count %d contradicts the geometry %d" nframes g.nframes;
    let cfg = { default_config with block_size; flight_slots } in
    let t = mk_t ~cfg ~pmem ~disk ~clock ~metrics:metrics_ ~nshards:1 [| mk_shard_state cfg g |] in
    recover_shard t ~shard_id:0 ~roll_forward:false;
    t
  end
  else if magic = dir_magic then begin
    let hdr = Pmem.read pmem ~off:0 ~len:16 in
    let nshards = Codec.get_u32 hdr 8 in
    if nshards < 2 || nshards > Shard.max_shards then
      corrupt "paging: directory shard count %d invalid" nshards;
    let seal = Pmem.read_u64_int pmem ~off:dir_seal_off in
    let mask = seal lsr 32 in
    let span = (Pmem.size pmem - header_bytes) / nshards / 64 * 64 in
    let block_size, _, flight_slots = read_super pmem ~base:header_bytes in
    let cfg = { default_config with block_size; flight_slots } in
    let geoms =
      Array.init nshards (fun i ->
          let base = header_bytes + (i * span) in
          let bs, nf, fs = read_super pmem ~base in
          if bs <> block_size || fs <> flight_slots then
            corrupt "paging: shard %d superblock disagrees with shard 0" i;
          let g = compute_geom ~base ~span ~block_size ~flight_slots in
          if g.nframes <> nf then corrupt "paging: shard %d frame count contradicts geometry" i;
          g)
    in
    let t =
      mk_t ~cfg ~pmem ~disk ~clock ~metrics:metrics_ ~nshards
        (Array.map (mk_shard_state cfg) geoms)
    in
    for i = 0 to nshards - 1 do
      recover_shard t ~shard_id:i ~roll_forward:(mask land (1 lsl i) <> 0)
    done;
    if seal <> 0 then begin
      (* The sealed commit is now fully adopted: retire the seal. *)
      Pmem.set_site pmem "paging.recover";
      Pmem.atomic_write8 pmem ~off:dir_seal_off 0L;
      Pmem.persist pmem ~off:dir_seal_off ~len:8
    end;
    t
  end
  else corrupt "no paging media (magic %Lx)" magic

(* --- stats / wear / invariants ------------------------------------------ *)

let clean_cached t =
  Array.fold_left
    (fun acc s ->
      acc + Hashtbl.fold (fun _ p n -> if p.p_slot < 0 then n + 1 else n) s.index 0)
    0 t.shards

let total_frames t = Array.fold_left (fun acc s -> acc + s.geom.nframes) 0 t.shards
let free_frames t = Array.fold_left (fun acc s -> acc + Free_monitor.free_count s.free_frames) 0 t.shards
let dirty_slots t = Array.fold_left (fun acc s -> acc + s.dirty_count) 0 t.shards
let table_swings t = Array.fold_left (fun acc s -> acc + s.swings) 0 t.shards
let epoch_bumps t = Array.fold_left (fun acc s -> acc + s.epoch_bumps) 0 t.shards

let txn_size_histogram t = t.txn_sizes

let write_hit_rate t =
  let total = t.write_hits + t.write_misses in
  if total = 0 then 0.0 else float_of_int t.write_hits /. float_of_int total

(* Paging-native stats surface.  Deliberately NO ring_high_water, no
   role-switch and no ring rows: those are logging-only concepts and
   their absence (rather than a misleading zero) is pinned by test. *)
let stats_kv t =
  let occupancy =
    let total = total_frames t in
    if total = 0 then 0.0
    else 100.0 *. float_of_int (total - free_frames t) /. float_of_int total
  in
  [
    ("scheme", "paging");
    ("nshards", string_of_int t.nshards);
    ("block_size", string_of_int t.cfg.block_size);
    ("pool_frames", string_of_int (total_frames t));
    ("pool_frames_free", string_of_int (free_frames t));
    ("pool_occupancy_pct", Printf.sprintf "%.1f" occupancy);
    ("table_slots", string_of_int (total_frames t));
    ("table_swings", string_of_int (table_swings t));
    ("epoch_swings", string_of_int (epoch_bumps t));
    ("dirty_pages", string_of_int (dirty_slots t));
    ("clean_cached", string_of_int (clean_cached t));
    ("read_hits", string_of_int t.read_hits);
    ("read_misses", string_of_int t.read_misses);
    ("write_hits", string_of_int t.write_hits);
    ("write_misses", string_of_int t.write_misses);
    ("evictions", string_of_int t.evictions);
    ("writebacks", string_of_int t.writebacks);
    ("multi_shard_commits", string_of_int t.multi_commits);
    ("cross_shard_seals", string_of_int t.seals);
    ("seal_roll_forwards", string_of_int t.roll_forwards);
  ]
  @ List.concat
      (List.mapi
         (fun i s -> if t.nshards = 1 then [] else [ (Printf.sprintf "s%d.epoch" i, string_of_int s.epoch) ])
         (Array.to_list t.shards))

let shard_region_wear t s =
  let g = s.geom in
  let row name ~off ~len =
    (name, Pmem.wear_sum_in t.pmem ~off ~len, Pmem.wear_max_in t.pmem ~off ~len)
  in
  [
    row "super" ~off:g.base ~len:64;
    row "epoch" ~off:(g.base + g.epoch_off) ~len:64;
    row "flight" ~off:(g.base + g.flight_off) ~len:(max 64 (g.flight_slots * Flight.record_size));
    row "table" ~off:(g.base + g.table_off) ~len:(g.pool_off - g.table_off);
    row "pool" ~off:(g.base + g.pool_off) ~len:(g.nframes * g.block_size);
  ]

let region_wear t =
  if t.nshards = 1 then shard_region_wear t t.shards.(0)
  else
    ( "header",
      Pmem.wear_sum_in t.pmem ~off:0 ~len:header_bytes,
      Pmem.wear_max_in t.pmem ~off:0 ~len:header_bytes )
    :: List.concat
         (List.mapi
            (fun i s ->
              List.map (fun (n, a, b) -> (Printf.sprintf "s%d.%s" i n, a, b)) (shard_region_wear t s))
            (Array.to_list t.shards))

let fail_inv fmt = Printf.ksprintf (fun m -> raise (Invariant_violation m)) fmt

let check_invariants t =
  if t.nshards > 1 && not t.committing then begin
    let seal = Pmem.read_u64_int t.pmem ~off:dir_seal_off in
    if seal <> 0 then fail_inv "paging: cross-shard seal %x durable outside a commit" seal
  end;
  Array.iteri
    (fun i s ->
      let g = s.geom in
      let durable_epoch = Pmem.read_u64_int t.pmem ~off:(g.base + g.epoch_off) in
      if durable_epoch <> s.epoch then
        fail_inv "paging shard %d: volatile epoch %d != durable %d" i s.epoch durable_epoch;
      if Lru.length s.lru <> Hashtbl.length s.index then
        fail_inv "paging shard %d: LRU %d != index %d" i (Lru.length s.lru) (Hashtbl.length s.index);
      let dirty = ref 0 in
      Hashtbl.iter
        (fun blkno p ->
          if p.p_blkno <> blkno then fail_inv "paging shard %d: index key %d holds blkno %d" i blkno p.p_blkno;
          if p.p_frame < 0 || p.p_frame >= g.nframes then
            fail_inv "paging shard %d: blkno %d frame %d out of range" i blkno p.p_frame;
          if Free_monitor.is_free s.free_frames p.p_frame then
            fail_inv "paging shard %d: blkno %d frame %d marked free" i blkno p.p_frame;
          if p.p_slot >= 0 then begin
            incr dirty;
            if Free_monitor.is_free s.free_slots p.p_slot then
              fail_inv "paging shard %d: blkno %d slot %d marked free" i blkno p.p_slot;
            let e = read_entry t g p.p_slot in
            if not e.e_valid then fail_inv "paging shard %d: blkno %d slot %d invalid on media" i blkno p.p_slot;
            if e.e_blkno <> blkno then
              fail_inv "paging shard %d: slot %d maps blkno %d, index says %d" i p.p_slot e.e_blkno blkno;
            if e.e_epoch > s.epoch then
              fail_inv "paging shard %d: slot %d staged (epoch %d > %d) outside a commit" i p.p_slot e.e_epoch s.epoch;
            if e.e_frame_b <> p.p_frame then
              fail_inv "paging shard %d: slot %d live frame %d, index says %d" i p.p_slot e.e_frame_b p.p_frame
          end)
        s.index;
      if !dirty <> s.dirty_count then
        fail_inv "paging shard %d: dirty_count %d, counted %d" i s.dirty_count !dirty)
    t.shards
