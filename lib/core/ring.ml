module Pmem = Tinca_pmem.Pmem

type t = {
  pmem : Pmem.t;
  layout : Layout.t;
  (* DRAM mirrors of the persistent pointers, kept in sync. *)
  mutable head : int;
  mutable tail : int;
}

let attach ~pmem ~layout =
  let head = Pmem.read_u64_int pmem ~off:layout.Layout.head_off in
  let tail = Pmem.read_u64_int pmem ~off:layout.Layout.tail_off in
  { pmem; layout; head; tail }

let slots t = t.layout.Layout.ring_slots
let head t = t.head
let tail t = t.tail
let in_flight t = t.head - t.tail

let write_ptr t ~off v =
  Pmem.atomic_write8_int t.pmem ~off v;
  Pmem.persist t.pmem ~off ~len:8

let record t blkno =
  if in_flight t >= slots t then invalid_arg "Ring.record: ring buffer full";
  Pmem.set_site t.pmem "ring.record";
  let slot_off = Layout.ring_slot_off t.layout t.head in
  Pmem.atomic_write8_int t.pmem ~off:slot_off blkno;
  Pmem.persist t.pmem ~off:slot_off ~len:8;
  t.head <- t.head + 1;
  write_ptr t ~off:t.layout.Layout.head_off t.head

let commit_point t =
  Pmem.set_site t.pmem "ring.commit_point";
  t.tail <- t.head;
  write_ptr t ~off:t.layout.Layout.tail_off t.tail

let rewind_head t =
  Pmem.set_site t.pmem "ring.rewind";
  t.head <- t.tail;
  write_ptr t ~off:t.layout.Layout.head_off t.head

let pending_blknos t =
  let acc = ref [] in
  for c = t.head - 1 downto t.tail do
    let off = Layout.ring_slot_off t.layout c in
    acc := Pmem.read_u64_int t.pmem ~off :: !acc
  done;
  !acc

let reload t =
  t.head <- Pmem.read_u64_int t.pmem ~off:t.layout.Layout.head_off;
  t.tail <- Pmem.read_u64_int t.pmem ~off:t.layout.Layout.tail_off

let format t =
  Pmem.set_site t.pmem "ring.format";
  t.head <- 0;
  t.tail <- 0;
  write_ptr t ~off:t.layout.Layout.head_off 0;
  write_ptr t ~off:t.layout.Layout.tail_off 0
