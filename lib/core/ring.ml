module Pmem = Tinca_pmem.Pmem

type t = {
  pmem : Pmem.t;
  layout : Layout.t;
  (* DRAM mirrors of the persistent pointers, kept in sync. *)
  mutable head : int;
  mutable tail : int;
  (* Peak in-flight occupancy since attach/format (volatile stat). *)
  mutable hwm : int;
  (* Slots written past Head by [stage_batch] but not yet covered by a
     [publish] — volatile state of the group committer's pending batch. *)
  mutable staged : int;
}

let attach ~pmem ~layout =
  let head = Pmem.read_u64_int pmem ~off:layout.Layout.head_off in
  let tail = Pmem.read_u64_int pmem ~off:layout.Layout.tail_off in
  { pmem; layout; head; tail; hwm = head - tail; staged = 0 }

let slots t = t.layout.Layout.ring_slots
let head t = t.head
let tail t = t.tail
let in_flight t = t.head - t.tail
let staged t = t.staged
let high_water t = t.hwm

let bump_hwm t = if in_flight t > t.hwm then t.hwm <- in_flight t

let write_ptr t ~off v =
  Pmem.atomic_write8_int t.pmem ~off v;
  Pmem.persist t.pmem ~off ~len:8

let record t blkno =
  if in_flight t >= slots t then invalid_arg "Ring.record: ring buffer full";
  Pmem.set_site t.pmem "ring.record";
  let slot_off = Layout.ring_slot_off t.layout t.head in
  Pmem.atomic_write8_int t.pmem ~off:slot_off blkno;
  Pmem.persist t.pmem ~off:slot_off ~len:8;
  t.head <- t.head + 1;
  write_ptr t ~off:t.layout.Layout.head_off t.head;
  bump_hwm t

(* Batched variant of [record] (group commit): stage every slot of the
   transaction, flush each dirtied slot line once and fence — the slots
   are durable but Head still excludes them, so they are invisible to
   [pending_blknos] and to recovery until [publish].  Eight slots share a
   64 B line, so an n-block transaction dirties ceil(n/8) lines instead
   of paying n separate persists. *)
let record_batch t blknos =
  match blknos with
  | [] -> ()
  | blknos ->
      let n = List.length blknos in
      if in_flight t + t.staged + n > slots t then
        invalid_arg "Ring.record_batch: ring buffer full";
      Pmem.set_site t.pmem "ring.record";
      let lines =
        List.mapi
          (fun i blkno ->
            let off = Layout.ring_slot_off t.layout (t.head + t.staged + i) in
            Pmem.atomic_write8_int t.pmem ~off blkno;
            off / Pmem.line_size)
          blknos
      in
      Pmem.flush_lines t.pmem lines;
      Pmem.sfence t.pmem

(* Volatile half of [record_batch] for the group committer: stage one
   slot per block past any previously staged slots, without flushing or
   fencing, and return the dirtied line indices so the caller can fold
   many transactions' slots into one [Pmem.flush_lines] + fence.  The
   atomic slot writes cannot tear, so an unflushed staged slot either
   survives a crash with its full value or reverts — and Head excludes
   it either way. *)
let stage_batch t blknos =
  match blknos with
  | [] -> []
  | blknos ->
      let n = List.length blknos in
      if in_flight t + t.staged + n > slots t then
        invalid_arg "Ring.stage_batch: ring buffer full";
      Pmem.set_site t.pmem "ring.record";
      let lines =
        List.mapi
          (fun i blkno ->
            let off = Layout.ring_slot_off t.layout (t.head + t.staged + i) in
            Pmem.atomic_write8_int t.pmem ~off blkno;
            off / Pmem.line_size)
          blknos
      in
      t.staged <- t.staged + n;
      lines
[@@pmem.defer
  "volatile half of record_batch: the staged slots are deliberately left unflushed so the group \
   committer can fold many transactions' slots into one flush_lines + fence; the 8 B atomic slot \
   writes cannot tear, and Head excludes staged slots until publish, so an unflushed slot is \
   invisible to recovery either way"]

(* Drop the newest [n] staged (unpublished) slots — the unwinding path
   when a multi-shard seal fails partway.  Purely volatile: the slot
   bytes stay in the cache-line layer but Head never covers them, and a
   later [stage_batch] simply overwrites them. *)
let unstage t n =
  if n < 0 || n > t.staged then invalid_arg "Ring.unstage: bad slot count";
  t.staged <- t.staged - n

(* Advance Head over [n] slots staged by [record_batch] with a single
   persist, making them part of the in-flight range.  The slots were
   fenced durable by [record_batch], so the paper's ordering — entry and
   slot durable strictly before Head covers them — holds for the whole
   batch at the cost of one fence. *)
let publish t n =
  if n < 0 || in_flight t + n > slots t then invalid_arg "Ring.publish: bad slot count";
  if n > 0 then begin
    Pmem.set_site t.pmem "ring.record";
    t.head <- t.head + n;
    t.staged <- max 0 (t.staged - n);
    write_ptr t ~off:t.layout.Layout.head_off t.head;
    bump_hwm t
  end

let commit_point t =
  Pmem.set_site t.pmem "ring.commit_point";
  t.tail <- t.head;
  write_ptr t ~off:t.layout.Layout.tail_off t.tail

let rewind_head t =
  Pmem.set_site t.pmem "ring.rewind";
  t.head <- t.tail;
  t.staged <- 0;
  write_ptr t ~off:t.layout.Layout.head_off t.head

let pending_blknos t =
  let acc = ref [] in
  for c = t.head - 1 downto t.tail do
    let off = Layout.ring_slot_off t.layout c in
    acc := Pmem.read_u64_int t.pmem ~off :: !acc
  done;
  !acc

let reload t =
  t.head <- Pmem.read_u64_int t.pmem ~off:t.layout.Layout.head_off;
  t.tail <- Pmem.read_u64_int t.pmem ~off:t.layout.Layout.tail_off;
  t.staged <- 0

let format t =
  Pmem.set_site t.pmem "ring.format";
  t.head <- 0;
  t.tail <- 0;
  t.hwm <- 0;
  t.staged <- 0;
  write_ptr t ~off:t.layout.Layout.head_off 0;
  write_ptr t ~off:t.layout.Layout.tail_off 0
