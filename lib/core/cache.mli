(** Tinca: the transactional NVM disk cache (paper §4).

    A write-back (default) or write-through cache interposed between a
    file system and a {!Tinca_blockdev.Disk}, storing cached blocks in a
    {!Tinca_pmem.Pmem} and exporting the paper's transactional
    primitives: {!Txn.init} ([tinca_init_txn]), {!Txn.commit}
    ([tinca_commit]) and {!Txn.abort} ([tinca_abort]).

    Consistency guarantees (verified by the crash-injection test suite):
    after a crash at any point and any subset of unflushed cache lines
    surviving, {!recover} restores the cache to exactly the state as of
    the last completed commit — committed transactions are atomic and
    durable, in-flight ones roll back completely.

    Two deliberate refinements of the paper's §4.4/§4.5 prose, recorded
    here because the test suite depends on them:
    - all role-switch flushes are fenced {e before} the Tail update, so a
      crash can never leave Tail advanced while role switches were lost
      (which would make recovery keep half a transaction);
    - recovery revokes the {e union} of blocks named in the ring range
      [Tail, Head) and blocks whose entry still carries the log role — a
      ring-only scan would miss a block whose entry was persisted before
      its ring slot (paper step 1 precedes step 2). *)

type t

type mode = Write_back | Write_through

(** Shape of the commit protocol's persistence traffic (same ordering
    guarantees and crash semantics either way; see {!Txn.commit}).

    [Batched] (default) is the staged group commit: all COW data blocks
    and swung entries flushed under a single fence, all ring slots under
    one more, then one Head persist — a constant number of fences per
    commit however many blocks it carries.  [Per_block] is the paper's
    literal per-block protocol (~4 fences per block), kept as the
    baseline of the [fig_commit_batch] ablation. *)
type pipeline = Per_block | Batched

type config = {
  block_size : int;   (** default 4096 *)
  ring_slots : int;   (** default 131072 = 1 MB of 8 B slots *)
  mode : mode;
  clean_threshold : float;
      (** dirty fraction of the cache beyond which a background flusher
          pre-cleans the oldest dirty buffer blocks (elevator-sorted,
          background device time, blocks stay cached and are marked clean
          persistently), so replacement usually finds clean victims.
          Default 0.7; 1.0 disables pre-cleaning. *)
  alloc_policy : Tinca_cachelib.Free_monitor.policy;
      (** NVM data-block allocation order.  [Lifo] (default) reuses the
          most recently freed block; [Fifo] rotates through the whole
          region, spreading write wear evenly — a wear-leveling extension
          for endurance-limited NVM (the paper's §1 PCM concern). *)
  commit_pipeline : pipeline;
      (** How {!Txn.commit} shapes its flushes and fences; default
          [Batched]. *)
  flight_slots : int;
      (** NVM flight-recorder ring capacity in 64 B records; 0 (default)
          disables the recorder and reproduces the historical layout
          byte for byte.  See {!flight_note}. *)
}

val default_config : config

exception Transaction_too_large

(** Raised by replacement when every cached block is pinned by the
    in-flight transaction, i.e. there is no eviction victim.  Inside
    {!Txn.commit} this is mapped to {!Transaction_too_large} after the
    partial commit has been rolled back, so transaction callers only ever
    see one exception type for capacity problems. *)
exception Cache_exhausted

(** Recovery rejected the media: unformatted NVM, corrupt superblock
    geometry, or an entry table that contradicts itself.  Typed (not a
    bare [Failure]) so callers can distinguish "the medium is bad" from
    an arbitrary internal error; the [Tinca] facade maps it to
    [Tinca.Unformatted]. *)
exception Corrupt of string

(** An internal-invariant audit failed ({!check_invariants}, or a
    bookkeeping structure caught mid-corruption): always a programming
    error, never an API or media error.  Typed (not a bare [Failure])
    so the lockstep sweep and the crash checker key on the audit
    outcome rather than on exception payloads. *)
exception Invariant_violation of string

(** [format ~config ~pmem ~disk ~clock ~metrics] initializes the NVM
    layout (superblock, zeroed pointers and entry table) and returns an
    empty cache. *)
val format :
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** [format_region ~base ~mem_bytes ...] is {!format} confined to the
    device region [\[base, mem_bytes)] — how {!Shard} packs one cache
    (superblock included) per shard onto a single pmem. *)
val format_region :
  base:int ->
  mem_bytes:int ->
  config:config ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  t

(** [recover ~pmem ~disk ~clock ~metrics ()] re-attaches after a crash:
    validates the superblock, scans the entry table to rebuild the DRAM
    index / LRU / free monitor, and revokes every block of the in-flight
    transaction (paper §4.5).  Raises {!Corrupt} on unformatted media.

    When the media carries a flight ring, its surviving records are
    scanned {e before} any recovery write (see {!flight_scan_result})
    and recovery appends its own [Recovery_start] / [Recovery_decision]
    records, riding the fences recovery already pays.
    [~flight_replay:false] suppresses the scan result and the
    recovery-time records (the recorder keeps its write cursor): the
    recovered {e cache} state must be bit-identical either way — pinned
    by the flight crash sweep. *)
val recover :
  ?flight_replay:bool ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  unit ->
  t

(** [recover_region ~base ~mem_bytes ... ()] is {!recover} for the cache
    occupying the device region [\[base, mem_bytes)]. *)
val recover_region :
  ?flight_replay:bool ->
  base:int ->
  mem_bytes:int ->
  pmem:Tinca_pmem.Pmem.t ->
  disk:Tinca_blockdev.Disk.t ->
  clock:Tinca_sim.Clock.t ->
  metrics:Tinca_sim.Metrics.t ->
  unit ->
  t

val layout : t -> Layout.t
val config : t -> config

(** Read and validate the superblock of the cache occupying
    [\[base, mem_bytes)] without attaching to it; raises [Failure] on
    unformatted or corrupt media.  Used by {!Shard} recovery (to locate
    ring and entries for the cross-shard roll-forward before any cache
    is attached) and by the sanitizer's layout discovery. *)
val read_layout : base:int -> mem_bytes:int -> Tinca_pmem.Pmem.t -> Layout.t

(** {1 Block I/O} *)

(** [read t blkno] returns the newest version of the block, from NVM on a
    hit or from disk (filling the cache) on a miss. *)
val read : t -> int -> bytes

(** [write_direct t blkno data] — single-block atomic write outside any
    caller transaction (implemented as a one-block commit). *)
val write_direct : t -> int -> bytes -> unit

(** {1 Transactions} *)

module Txn : sig
  type handle

  (** [tinca_init_txn]: start a running transaction (DRAM-resident). *)
  val init : t -> handle

  (** Stage a block; staging the same block twice keeps the newest data. *)
  val add : handle -> int -> bytes -> unit

  val block_count : handle -> int

  (** [tinca_commit]: run the commit protocol of §4.4.  On return the
      transaction is durable in NVM.  Raises {!Transaction_too_large} if
      the ring, the NVM data region or the entry table cannot host it —
      either up front (admission control; nothing is written) or, should
      replacement still exhaust mid-commit, after the partial commit has
      been revoked (with the [Batched] pipeline the failure is confined
      to the volatile allocation pass, so nothing was ever written).
      Either way the handle is finished and the cache is exactly as
      before the call.

      With the default [Batched] pipeline the protocol runs as a staged
      group commit with a constant fence count (≤ 6 for any transaction
      size, vs ~4n+2 per-block): (A) all COW data blocks written
      (vectored) and all entries swung atomically, every dirtied line
      flushed once, one fence; (B) all ring slots staged and fenced, then
      Head advanced once with a single persist — entries and slots are
      durable strictly before Head covers them; (C) batched role switch,
      fenced before (D) the Tail persist.  Crash atomicity is unchanged:
      before the Head advance a crash leaves the ring quiescent and
      recovery revokes whatever subset of entries became durable via the
      log-role scan; after it, the ring range covers the whole batch. *)
  val commit : handle -> unit

  (** [tinca_abort]: drop a running transaction, or revoke a partially
      committed one (including a [stage]d sub-commit whose Head has not
      moved) to its pre-transaction state. *)
  val abort : handle -> unit

  (** {2 Split commit (the sharded scheduler's building blocks)}

      [commit h] ≡ [stage h; publish h; finalize h] with an identical
      operation, fence and latency sequence.  {!Shard} uses the split to
      run a multi-shard transaction as a two-phase publish: every
      shard's sub-commit is [stage]d first (nothing in any ring range),
      then every Head advances, then a cross-shard commit record seals
      the transaction, and only then does each shard [finalize]. *)

  (** Admission control plus §4.4 steps 1–2 and ring-slot staging: after
      [stage], data and entries are durable and the slots are staged,
      but Head still excludes them — a crash now rolls the sub-commit
      back.  Raises {!Transaction_too_large} exactly as {!commit} does
      (the handle finished, the cache untouched); [Invalid_argument] on
      an empty transaction. *)
  val stage : handle -> unit

  (** Advance this cache's Head over the staged slots (one persist under
      the [Batched] pipeline; no-op for [Per_block], which publishes
      eagerly).  Call exactly once after {!stage}. *)
  val publish : handle -> unit

  (** §4.4 steps 4–5 and post-commit bookkeeping: batched role switch
      (fenced before Tail), Tail := Head, previous-version reclamation,
      stats, optional write-through propagation, background cleaning. *)
  val finalize : handle -> unit

  (** {2 Group commit across transactions (async commit)}

      The fence bill of a commit is constant but still per-transaction;
      the group-commit path amortizes it over a whole batch.  [seal]
      applies a transaction {e volatilely} — admission control, pass-1
      allocation, all COW data and entry stores, ring-slot staging —
      with no flush and no fence: reads already see the new versions
      (the DRAM index points at them) but nothing is durable and Head
      excludes the staged slots, so a crash rolls the transaction back
      completely (surviving log-role entry lines are revoked by
      recovery's entry scan).  [flush_sealed] then makes a whole batch
      durable with one stage-A flush+fence, one slot flush+fence and a
      single Head persist covering every transaction's slots, and
      [finalize_sealed] retires the batch with one batched role switch
      and one Tail persist — ~5 fences per {e batch} instead of per
      commit.  Crash atomicity is batch-granular: before the Head
      persist the whole batch rolls back, after it the ring range names
      the whole batch.

      Sealed handles must all be flushed together (in seal order) by
      the group committer that owns the cache; {!abort} must not be
      called on one (its Head rewind would drop peer transactions'
      staged slots) — use {!unseal} instead. *)

  (** Tag the handle with the facade's durable-notification ticket id
      before {!seal}, so the flight recorder's [Txn_seal] record (and
      post-crash dossiers) can name the acked ticket.  Purely advisory;
      -1 (the initial value) means "no ticket". *)
  val set_flight_ticket : handle -> int -> unit

  (** Volatilely apply the transaction as described above.  Raises
      {!Transaction_too_large} exactly as {!commit} does (handle
      finished, cache untouched, peer sealed transactions undisturbed);
      [Invalid_argument] on an empty transaction or under the
      [Per_block] pipeline. *)
  val seal : handle -> unit

  (** Drop a sealed-but-unflushed transaction: revoke its blocks and
      un-stage its ring slots.  Only valid while its slots are the
      newest staged ones (the scheduler unwinds a partially sealed
      multi-shard transaction immediately, before any later seal). *)
  val unseal : handle -> unit

  (** One stage-A flush+fence, one slot flush+fence and one Head
      persist covering every sealed handle in the list (seal order).
      All handles must be sealed on the same cache.  [cause] (default
      [Barrier]) labels this drain in the flight recorder's
      [Batch_drain] record; it has no effect on the commit protocol. *)
  val flush_sealed : ?cause:Tinca_obs.Flight.cause -> handle list -> unit

  (** One batched role switch and one Tail persist retiring the whole
      flushed batch, then per-transaction post-commit bookkeeping and
      background cleaning. *)
  val finalize_sealed : handle list -> unit

  (** {2 Failure injection (tests and the crash-space checker)} *)

  (** [commit_prefix h k] runs the commit protocol (§4.4 steps 1–3) for
      the first [k] staged blocks and then stops, exactly as an injected
      mid-commit failure would, leaving the handle committing and the
      ring non-quiescent (with [k] published slots; under the [Batched]
      pipeline the prefix runs stages A–B for those [k] blocks).  Follow
      with {!abort} to exercise the production revocation path
      deterministically.  Test-only: a handle driven this way must not
      be [commit]ted. *)
  val commit_prefix : handle -> int -> unit
end

(** {1 Maintenance} *)

(** Write every dirty buffer block back to disk (blocks stay cached and
    are marked clean persistently).  Not needed for durability — commits
    are durable in NVM — only for decommissioning the cache. *)
val flush_all : t -> unit

(** Number of blocks currently cached. *)
val cached_blocks : t -> int

(** Number of vacant NVM data blocks. *)
val free_blocks : t -> int

(** [contains t blkno] *)
val contains : t -> int -> bool

(** Write hit rate so far (paper Fig 12c). *)
val write_hit_rate : t -> float

val read_hit_rate : t -> float

(** Histogram of blocks per committed transaction (paper Fig 13 /
    §5.4.3). *)
val txn_size_histogram : t -> Tinca_util.Histogram.t

(** Peak number of NVM blocks simultaneously pinned by COW previous
    versions (paper §5.4.3 spatial overhead). *)
val peak_cow_blocks : t -> int

(** {1 Stats surface}

    One coherent [/proc/tinca]-style snapshot of the cache's health:
    occupancy, dirty/pinned state, hit ratios, commit/abort/recovery
    totals, ring occupancy high-water mark and NVM wear.  Cheap (no
    media scan) and side-effect free. *)

type stats = {
  capacity_blocks : int;
  cached : int;
  free_data : int;
  free_entries : int;
  dirty : int;
  dirty_ratio : float;  (** dirty / capacity *)
  pinned : int;  (** entries in log role (in-flight transaction) *)
  cow_pinned : int;  (** NVM blocks held as COW previous versions *)
  peak_cow : int;
  read_hits : int;
  read_misses : int;
  read_hit_ratio : float;
  write_hits : int;
  write_misses : int;
  write_hit_ratio : float;
  commits : int;
  aborts : int;
  revoked : int;
  recoveries : int;
  ring_slots : int;
  ring_in_flight : int;
  ring_high_water : int;  (** peak ring occupancy since attach *)
  wear_max : int;  (** max per-line NVM write-backs *)
  wear_mean : float;
}

val stats : t -> stats

(** Render as ordered [(key, value)] strings, ready for
    {!Tinca_obs.Procfs.render}. *)
val stats_kv : stats -> (string * string) list

(** Per-line NVM wear attributed to Layout regions, in layout order:
    [(region, total write-backs, max write-backs on one line)].  Regions
    are [super]/[head]/[tail]/[ring]/[flight]/[entries]/[data]; a
    zero-byte region (e.g. [flight] with the recorder off) reports
    [(name, 0, 0)]. *)
val region_wear : t -> (string * int * int) list

(** {1 Flight recorder (ISSUE 9)}

    When [config.flight_slots > 0], the cache keeps a crash-surviving
    event ring in its NVM region (between the commit ring and the entry
    table): fixed 64 B records, overwrite-oldest, each self-delimited by
    a sequence word and CRC-32 so a torn tail record is detected rather
    than trusted.  Records are {e volatile} stores whose cache lines are
    flushed together with (or immediately before) fences the commit
    protocol already pays — the recorder never adds an sfence, pinned by
    [test_budget] with the recorder enabled. *)

(** Is the recorder on for this cache? *)
val flight_enabled : t -> bool

(** Label this cache's records with a shard index ({!Shard} sets it at
    construction; defaults to 0). *)
val set_flight_shard : t -> int -> unit

(** The batch id the next group drain will take (the drain counter). *)
val flight_next_batch : t -> int

(** Append one record (no-op when the recorder is off).  The commit and
    recovery paths call this at protocol milestones; tests may inject
    extra records.  The record's line is flushed at the next protocol
    fence, not here. *)
val flight_note :
  t ->
  ?batch:int ->
  ?cause:Tinca_obs.Flight.cause ->
  ?a:int ->
  ?b:int ->
  ?c:int ->
  ?d:int ->
  Tinca_obs.Flight.kind ->
  unit

(** The survivor scan {!recover} performed before its first write:
    [(records sorted by sequence, torn count)].  [None] before any
    recovery, or when the ring is absent or [~flight_replay:false]. *)
val flight_scan_result : t -> ((int * Tinca_obs.Flight.event) list * int) option

(** {1 Introspection for tests} *)

(** Decode entry slot [i] from media. *)
val entry_at : t -> int -> Entry.t

(** Newest cached data for [blkno], if cached. *)
val peek : t -> int -> bytes option

(** Full consistency audit of DRAM structures vs NVM media; raises
    {!Invariant_violation} with a description on any violation.  Used by
    tests after every recovery. *)
val check_invariants : t -> unit
